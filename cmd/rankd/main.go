// Command rankd runs one node of the multi-process cluster.
//
// Coordinator (hosts the windows and the ftRMA protocol state, serves the
// epoch-batched wire protocol, detects worker deaths, drives recovery):
//
//	rankd -coordinator -listen 127.0.0.1:7100 -n 4 -phases 12
//
// Worker (drives one rank; the membership handshake assigns the rank id —
// a replacement started after a kill -9 inherits the failed rank and its
// resume phase):
//
//	rankd -join 127.0.0.1:7100
//
// Coordinatorless (symmetric fabric): one process seeds the bootstrap
// rendezvous, N processes join it and run the causal workload entirely
// peer-to-peer — the seed serves no frame after bootstrap and may be
// killed; a replacement worker rejoins through any surviving member:
//
//	rankd -fabric-seed -listen 127.0.0.1:7100 -n 4 -phases 12 -mode causal
//	rankd -fabric-join 127.0.0.1:7100
//
// The coordinator runs the deterministic kvstore workload, waits for
// every rank to finish, then verifies the final windows bit-for-bit
// against an in-process failure-free oracle of the same workload — kill
// -9 a worker mid-run, start a replacement, and the check still passes,
// which is the whole point. Exit status 0 means bit-identical.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/obs"
	"repro/internal/transport/cluster"
)

func main() {
	var (
		coordinator = flag.Bool("coordinator", false, "run the coordinator (window host + recovery driver)")
		listen      = flag.String("listen", "127.0.0.1:7100", "coordinator listen address")
		join        = flag.String("join", "", "worker mode: coordinator address to join")
		n           = flag.Int("n", 4, "number of ranks (coordinator)")
		phases      = flag.Int("phases", 12, "bulk-synchronous rounds (coordinator)")
		inserts     = flag.Int("inserts", 8, "DHT inserts per rank per round (coordinator)")
		slots       = flag.Int("slots", 1024, "hash-table slots per volume (coordinator)")
		phaseDelay  = flag.Duration("phase-delay", 100*time.Millisecond, "wall-clock think time per round (stretches the run so kills land mid-flight)")
		timeout     = flag.Duration("timeout", 2*time.Minute, "coordinator: abort if the run has not completed in time")
		mode        = flag.String("mode", "combining", "workload mode: combining (forces coordinated fallback), causal (conflict-free, recovers by wire replay), locked (causal + a user-locked critical section)")
		fabricSeed  = flag.Bool("fabric-seed", false, "run the coordinatorless bootstrap seed (causal mode only)")
		fabricJoin  = flag.String("fabric-join", "", "symmetric worker mode: seed (or surviving member) address to join")
		debugAddr   = flag.String("debug-addr", "", "serve the debug endpoint (Prometheus /metrics, /flightrec, expvar, pprof) on this address; empty disables (fabric workers also honor REPRO_DEBUG_DIR)")
	)
	flag.Parse()

	switch {
	case *fabricSeed:
		wm, err := parseMode(*mode)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rankd:", err)
			os.Exit(2)
		}
		serveDebug(*debugAddr, nil, nil) // seed: pprof/expvar only; workers carry the metrics
		os.Exit(runFabricSeed(*listen, cluster.Workload{
			Ranks:           *n,
			Phases:          *phases,
			InsertsPerPhase: *inserts,
			TableSlots:      *slots,
			PhaseDelay:      *phaseDelay,
			Mode:            wm,
		}, *timeout))
	case *fabricJoin != "":
		logf := func(format string, args ...any) { fmt.Fprintf(os.Stderr, "rankd fabric: "+format+"\n", args...) }
		if err := cluster.RunFabricWorkerDebugAddr(*fabricJoin, *debugAddr, logf); err != nil {
			fmt.Fprintf(os.Stderr, "rankd fabric worker: %v\n", err)
			os.Exit(1)
		}
	case *coordinator:
		wm, err := parseMode(*mode)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rankd:", err)
			os.Exit(2)
		}
		os.Exit(runCoordinator(*listen, cluster.Workload{
			Ranks:           *n,
			Phases:          *phases,
			InsertsPerPhase: *inserts,
			TableSlots:      *slots,
			PhaseDelay:      *phaseDelay,
			Mode:            wm,
		}, *timeout, *debugAddr))
	case *join != "":
		// A plain worker has no registry of its own (its rank's state is
		// hosted at the coordinator), but pprof and expvar are still worth
		// a listener when asked for.
		serveDebug(*debugAddr, nil, nil)
		if err := cluster.RunWorker(cluster.DialConfig{Addr: *join}); err != nil {
			fmt.Fprintf(os.Stderr, "rankd worker: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "rankd: need -coordinator or -join ADDR")
		os.Exit(2)
	}
}

func runFabricSeed(listen string, wl cluster.Workload, timeout time.Duration) int {
	s, err := cluster.NewFabricSeed(cluster.Config{Listen: listen, Workload: wl, Timeout: timeout})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rankd fabric seed: %v\n", err)
		return 1
	}
	defer s.Close()
	fmt.Printf("rankd fabric seed: rendezvous on %s, %d ranks x %d phases\n", s.Addr(), wl.Ranks, wl.Phases)
	for s.Joined() < wl.Ranks {
		time.Sleep(50 * time.Millisecond)
	}
	members := s.Members()
	frames := s.FramesServed()
	fmt.Printf("rankd fabric seed: bootstrap complete (%d frames served); the run is now coordinatorless\n", frames)
	for _, m := range members {
		// One line per member so harness scripts (scripts/flightrec_demo.sh)
		// can point a replacement at a *survivor* — rejoining through the
		// seed would put post-bootstrap frames on its counter.
		fmt.Printf("member rank %d at %s\n", m.Rank, m.Addr)
	}

	got, err := cluster.CollectFabric(members[0].Addr, wl, timeout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rankd fabric seed: %v\n", err)
		return 1
	}
	if after := s.FramesServed(); after != frames {
		fmt.Fprintf(os.Stderr, "rankd fabric seed: served %d frames after bootstrap — steady state was not coordinatorless\n", after-frames)
		return 1
	}
	cluster.ShutdownFabric(members[0].Addr)
	want, err := wl.Oracle()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rankd fabric seed: oracle: %v\n", err)
		return 1
	}
	for r := range want {
		for i := range want[r] {
			if got[r][i] != want[r][i] {
				fmt.Fprintf(os.Stderr, "MISMATCH: rank %d word %d: got %#x want %#x\n", r, i, got[r][i], want[r][i])
				return 1
			}
		}
	}
	fmt.Println("final windows bit-identical to the failure-free oracle")
	return 0
}

func parseMode(s string) (cluster.WorkloadMode, error) {
	switch s {
	case "combining":
		return cluster.ModeCombining, nil
	case "causal":
		return cluster.ModeCausal, nil
	case "locked":
		return cluster.ModeLocked, nil
	}
	return 0, fmt.Errorf("unknown -mode %q (want combining, causal, or locked)", s)
}

// serveDebug binds the debug endpoint when addr is non-empty; exits the
// process on a bind failure (an explicitly requested endpoint that
// silently is not there is worse than no endpoint).
func serveDebug(addr string, reg *obs.Registry, fr *obs.Recorder) {
	if addr == "" {
		return
	}
	srv, err := obs.Serve(addr, reg, fr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rankd: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "rankd: debug endpoint at http://%s/metrics\n", srv.Addr)
}

func runCoordinator(listen string, wl cluster.Workload, timeout time.Duration, debugAddr string) int {
	c, err := cluster.NewCoordinator(cluster.Config{Listen: listen, Workload: wl, Timeout: timeout})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rankd coordinator: %v\n", err)
		return 1
	}
	defer c.Close()
	serveDebug(debugAddr, c.Obs(), obs.RecorderFromEnv(-1))
	fmt.Printf("rankd coordinator: listening on %s, %d ranks x %d phases\n", c.Addr(), wl.Ranks, wl.Phases)

	go func() {
		// Progress lines for smoke scripts: "phase N done" when the
		// slowest rank completes round N.
		last := 0
		for {
			time.Sleep(50 * time.Millisecond)
			min := wl.Phases
			for r := 0; r < wl.Ranks; r++ {
				if d := c.PhasesDone(r); d < min {
					min = d
				}
			}
			for last < min {
				last++
				fmt.Printf("phase %d done\n", last)
			}
			if last >= wl.Phases {
				return
			}
		}
	}()

	got, err := c.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rankd coordinator: %v\n", err)
		return 1
	}
	st := c.Stats()
	fmt.Printf("run complete: %d recoveries (%d causal replays, %d coordinated fallbacks), %d UC checkpoints, %d CC rounds, %d puts + %d gets logged\n",
		st.Recoveries, st.CausalRecoveries, st.Fallbacks, st.UCCheckpoints, st.CCCheckpoints, st.PutsLogged, st.GetsLogged)
	if st.CausalRecoveries > 0 {
		fmt.Printf("causal recovery wall time: %.0fus total, %d actions replayed\n", st.CausalRecoveryUs, st.ActionsReplayed)
	}
	if st.Fallbacks > 0 {
		fmt.Printf("fallback recovery wall time: %.0fus total\n", st.FallbackRecoveryUs)
	}

	want, err := wl.Oracle()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rankd coordinator: oracle: %v\n", err)
		return 1
	}
	for r := range want {
		for i := range want[r] {
			if got[r][i] != want[r][i] {
				fmt.Fprintf(os.Stderr, "MISMATCH: rank %d word %d: got %#x want %#x\n", r, i, got[r][i], want[r][i])
				return 1
			}
		}
	}
	fmt.Println("final windows bit-identical to the failure-free oracle")
	return 0
}
