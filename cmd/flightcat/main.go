// Command flightcat merges per-rank flight-recorder JSONL dumps into one
// chronological, human-readable timeline. The fabric dumps one file per
// rank on every crisis close (REPRO_FLIGHTREC_DIR) and every debug
// endpoint serves the same lines at /flightrec; flightcat is how a human
// reads a multi-process recovery post-mortem:
//
//	flightcat /tmp/flightrec/flightrec-rank*-crisis1.jsonl
//
// Events carry wall-clock UnixNano timestamps, so dumps from different
// processes on one machine interleave correctly. Timestamps print as
// offsets from the earliest event; the A/B/C arguments are decoded per
// event code (the schema of docs/OBSERVABILITY.md §3).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/obs"
)

// line is one decoded JSONL entry.
type line struct {
	TS   int64  `json:"ts"`
	Rank int    `json:"rank"`
	Ev   string `json:"ev"`
	A    int64  `json:"a"`
	B    int64  `json:"b"`
	C    int64  `json:"c"`
}

// describe renders the A/B/C arguments for humans, per the event schema.
func describe(e line) string {
	switch e.Ev {
	case "frame.send":
		return fmt.Sprintf("frame 0x%02x -> rank %d, size %d", e.A, e.B, e.C)
	case "frame.recv":
		return fmt.Sprintf("frame 0x%02x <- rank %d, size %d", e.A, e.B, e.C)
	case "epoch.open":
		return fmt.Sprintf("phase %d", e.A)
	case "epoch.close":
		return fmt.Sprintf("phase %d, %d targets flushed", e.A, e.B)
	case "gsync":
		return fmt.Sprintf("watermark %d, waited %dus", e.A, e.C)
	case "lease.near_miss":
		return fmt.Sprintf("rank %d silent %dus of a %dus lease", e.A, e.B, e.C)
	case "condemn":
		return fmt.Sprintf("rank %d (incarnation %d)", e.A, e.B)
	case "crisis":
		stage := obs.CrisisStage(e.A).String()
		if e.C == 0 {
			return fmt.Sprintf("begin (victim rank %d)", e.B)
		}
		return fmt.Sprintf("stage %s done in %dus (victim rank %d)", stage, e.C, e.B)
	case "parity.fold":
		return fmt.Sprintf("group %d phase %d, %d dirty ranges", e.A, e.B, e.C)
	case "parity.handoff":
		return fmt.Sprintf("group %d -> new host rank %d (version %d)", e.A, e.B, e.C)
	case "replay.chunk":
		return fmt.Sprintf("%d puts + %d gets installed in %dus", e.A, e.B, e.C)
	}
	return fmt.Sprintf("a=%d b=%d c=%d", e.A, e.B, e.C)
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: flightcat FILE.jsonl...\nmerges per-rank flight-recorder dumps into one timeline\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	var events []line
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flightcat:", err)
			os.Exit(1)
		}
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			if len(sc.Bytes()) == 0 {
				continue
			}
			var e line
			if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
				fmt.Fprintf(os.Stderr, "flightcat: %s: %v\n", path, err)
				os.Exit(1)
			}
			events = append(events, e)
		}
		if err := sc.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "flightcat:", err)
			os.Exit(1)
		}
		f.Close()
	}
	if len(events) == 0 {
		fmt.Println("flightcat: no events")
		return
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })
	t0 := events[0].TS
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for _, e := range events {
		fmt.Fprintf(w, "%+12.3fms  rank %-3d %-16s %s\n",
			float64(e.TS-t0)/1e6, e.Rank, e.Ev, describe(e))
	}
}
