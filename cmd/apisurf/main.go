// Command apisurf prints the module's exported API surface — every
// exported const, var, func, type, struct field, and method of every
// non-main package — in a stable, diffable text form. The committed
// baseline lives in API.txt; scripts/apidiff.sh regenerates the surface
// and fails CI on any unacknowledged difference, so an exported-API
// change (a redesign, a deprecation, an accidental export) is always a
// reviewed diff of the baseline, never a silent drive-by.
//
// The surface is purely syntactic (go/parser, no type checking): doc
// comments, function bodies, and unexported struct fields are stripped;
// declarations are sorted per package. Unexported interface methods are
// kept — they restrict who can implement the interface, which is API.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	root := flag.String("root", ".", "module root to scan")
	flag.Parse()
	module, err := moduleName(filepath.Join(*root, "go.mod"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "apisurf:", err)
		os.Exit(1)
	}
	dirs, err := packageDirs(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apisurf:", err)
		os.Exit(1)
	}
	var out bytes.Buffer
	for _, dir := range dirs {
		rel, _ := filepath.Rel(*root, dir)
		if err := surface(&out, module, rel, dir); err != nil {
			fmt.Fprintln(os.Stderr, "apisurf:", err)
			os.Exit(1)
		}
	}
	os.Stdout.Write(out.Bytes())
}

func moduleName(gomod string) (string, error) {
	b, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	m := regexp.MustCompile(`(?m)^module\s+(\S+)`).FindSubmatch(b)
	if m == nil {
		return "", fmt.Errorf("%s: no module line", gomod)
	}
	return string(m[1]), nil
}

// packageDirs lists every directory under root holding non-test Go
// files, skipping VCS metadata and testdata trees.
func packageDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata", "vendor":
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			seen[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// surface writes one package's exported declarations, sorted.
func surface(out *bytes.Buffer, module, rel, dir string) error {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return err
	}
	for _, pkg := range pkgs {
		if pkg.Name == "main" || strings.HasSuffix(pkg.Name, "_test") {
			continue
		}
		var decls []string
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				for _, s := range exportedDecl(d) {
					decls = append(decls, render(fset, s))
				}
			}
		}
		if len(decls) == 0 {
			continue
		}
		sort.Strings(decls)
		path := module
		if rel != "." {
			path += "/" + filepath.ToSlash(rel)
		}
		fmt.Fprintf(out, "# %s\n", path)
		for _, d := range decls {
			out.WriteString(d)
			out.WriteString("\n")
		}
		out.WriteString("\n")
	}
	return nil
}

// exportedDecl filters one top-level declaration down to its exported
// parts, returning zero or more printable declarations.
func exportedDecl(d ast.Decl) []ast.Decl {
	switch d := d.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || recvUnexported(d) {
			return nil
		}
		cp := *d
		cp.Doc, cp.Body = nil, nil
		return []ast.Decl{&cp}
	case *ast.GenDecl:
		var out []ast.Decl
		for _, sp := range d.Specs {
			switch sp := sp.(type) {
			case *ast.ValueSpec:
				if v := exportedValueSpec(sp); v != nil {
					out = append(out, &ast.GenDecl{Tok: d.Tok, Specs: []ast.Spec{v}})
				}
			case *ast.TypeSpec:
				if !sp.Name.IsExported() {
					continue
				}
				cp := *sp
				cp.Doc, cp.Comment = nil, nil
				cp.Type = filterType(sp.Type)
				out = append(out, &ast.GenDecl{Tok: d.Tok, Specs: []ast.Spec{&cp}})
			}
		}
		return out
	}
	return nil
}

// recvUnexported reports a method on an unexported receiver type.
func recvUnexported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return false
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return !tt.IsExported()
		default:
			return true
		}
	}
}

// exportedValueSpec keeps only the exported names of a const/var spec.
// Specs mixing exported and unexported names with per-name values are
// printed whole — dropping a name would desynchronize the values.
func exportedValueSpec(sp *ast.ValueSpec) *ast.ValueSpec {
	any := false
	for _, n := range sp.Names {
		if n.IsExported() {
			any = true
		}
	}
	if !any {
		return nil
	}
	cp := *sp
	cp.Doc, cp.Comment = nil, nil
	return &cp
}

// filterType strips unexported struct fields; everything else passes
// through (interface methods stay whole — see the package comment).
func filterType(t ast.Expr) ast.Expr {
	st, ok := t.(*ast.StructType)
	if !ok || st.Fields == nil {
		return t
	}
	kept := &ast.FieldList{}
	for _, f := range st.Fields.List {
		cf := *f
		cf.Doc, cf.Comment = nil, nil
		if len(f.Names) == 0 { // embedded: exported iff the type name is
			if embeddedExported(f.Type) {
				kept.List = append(kept.List, &cf)
			}
			continue
		}
		var names []*ast.Ident
		for _, n := range f.Names {
			if n.IsExported() {
				names = append(names, n)
			}
		}
		if len(names) > 0 {
			cf.Names = names
			kept.List = append(kept.List, &cf)
		}
	}
	return &ast.StructType{Struct: st.Struct, Fields: kept}
}

func embeddedExported(t ast.Expr) bool {
	switch tt := t.(type) {
	case *ast.StarExpr:
		return embeddedExported(tt.X)
	case *ast.SelectorExpr:
		return tt.Sel.IsExported()
	case *ast.Ident:
		return tt.IsExported()
	case *ast.IndexExpr:
		return embeddedExported(tt.X)
	case *ast.IndexListExpr:
		return embeddedExported(tt.X)
	}
	return false
}

// render prints one declaration on normalized whitespace: the printer's
// position-driven line breaks are collapsed so the output depends only
// on the declaration's content, never on source formatting.
func render(fset *token.FileSet, d ast.Decl) string {
	var b bytes.Buffer
	cfg := printer.Config{Mode: printer.RawFormat}
	if err := cfg.Fprint(&b, fset, d); err != nil {
		return fmt.Sprintf("<!render error: %v>", err)
	}
	fields := strings.Fields(b.String())
	return strings.Join(fields, " ")
}
