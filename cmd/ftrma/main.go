// Command ftrma regenerates the paper's tables and figures. Usage:
//
//	ftrma [-quick] [experiment ...]
//
// Experiments: table1, fig10a, fig10b, fig10c, fig10d, fig11a, fig11b,
// fig11c, fig12, overheads, all (default). -quick selects the smoke-test
// scale used by the benchmarks; the default scale is laptop-sized and takes
// a few minutes for the FFT figures.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	quick := flag.Bool("quick", false, "use the small smoke-test scale")
	flag.Parse()
	sc := harness.DefaultScale()
	if *quick {
		sc = harness.QuickScale()
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"all"}
	}
	run := map[string]bool{}
	for _, a := range args {
		run[a] = true
	}
	all := run["all"]

	show := func(id string, f func() harness.Result) {
		if all || run[id] {
			f().Print(os.Stdout)
		}
	}
	if all || run["table1"] {
		fmt.Print(harness.Table1())
		fmt.Println()
	}
	show("fig10a", func() harness.Result { return harness.Fig10ab(1, sc) })
	show("fig10b", func() harness.Result { return harness.Fig10ab(2, sc) })
	show("fig10c", harness.Fig10c)
	show("fig10d", func() harness.Result { return harness.Fig10d(sc) })
	show("fig11a", func() harness.Result { return harness.Fig11a(sc) })
	show("fig11b", func() harness.Result { return harness.Fig11b(sc) })
	show("fig11c", func() harness.Result { return harness.Fig11c(sc) })
	show("fig12", func() harness.Result { return harness.Fig12(sc) })
	show("overheads", func() harness.Result { return harness.Overheads(sc) })
	show("resilience", harness.ResilienceCurve)

	known := map[string]bool{"all": true, "table1": true, "fig10a": true, "fig10b": true,
		"fig10c": true, "fig10d": true, "fig11a": true, "fig11b": true, "fig11c": true,
		"fig12": true, "overheads": true, "resilience": true}
	for a := range run {
		if !known[a] {
			fmt.Fprintf(os.Stderr, "ftrma: unknown experiment %q\n", a)
			os.Exit(2)
		}
	}
}
