// Command pcf evaluates the probability of a catastrophic failure (Eq. 9 of
// the paper) for a given machine, process count, checksum-process fraction,
// and t-awareness level. Defaults reproduce the §7.1 study (TSUBAME2.0,
// N=4000).
//
// Usage:
//
//	pcf [-n 4000] [-ch 5] [-level nodes] [-m 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/failure"
	"repro/internal/machine"
	"repro/internal/reliability"
)

func main() {
	n := flag.Int("n", 4000, "number of compute processes")
	chPct := flag.Float64("ch", 5, "checksum processes as % of n")
	levelName := flag.String("level", "nodes", "t-awareness level: none, nodes, PSUs, switches, racks")
	m := flag.Int("m", 1, "checksum processes per group")
	flag.Parse()

	fdh := machine.TSUBAME2()
	level := 0
	if *levelName != "none" {
		level = fdh.LevelIndex(*levelName)
		if level == 0 {
			fmt.Fprintf(os.Stderr, "pcf: unknown level %q (use none, nodes, PSUs, switches, racks)\n", *levelName)
			os.Exit(2)
		}
	}
	numCH := int(float64(*n) * *chPct / 100)
	if numCH < 1 {
		numCH = 1
	}
	grouping, err := machine.NewGrouping(*n, numCH, *m)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcf: %v\n", err)
		os.Exit(1)
	}
	model := reliability.Model{
		FDH:         fdh,
		PDFs:        failure.TSUBAMEPDFs(),
		GroupSize:   grouping.GroupSize(),
		TAwareLevel: level,
	}
	p, err := model.Pcf()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcf: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("machine:        TSUBAME2.0 (%d nodes, %d PSUs, %d switches, %d racks)\n",
		fdh.Count(1), fdh.Count(2), fdh.Count(3), fdh.Count(4))
	fmt.Printf("processes:      %d CMs + %d CHs (m=%d, |G|=%d)\n",
		*n, grouping.NumChecksum(), *m, grouping.GroupSize())
	fmt.Printf("t-awareness:    %s\n", *levelName)
	fmt.Printf("P_cf per day:   %.6g\n", p)
	fmt.Printf("MTB-CF:         %.4g days\n", 1/p)
}
