package main

import (
	"strings"
	"testing"
)

// gate over one metric, one baseline entry, default tolerance.
func testGate(metrics ...string) *gateSpec {
	return &gateSpec{Section: "after", Metrics: metrics, Tolerance: 0.25}
}

func TestEvalGatePasses(t *testing.T) {
	entries := map[string]map[string]float64{
		"BenchmarkFlush": {"allocs_per_flush": 10, "ns_per_op": 1234},
	}
	results := map[string]map[string]float64{
		"BenchmarkFlush": {"allocs_per_flush": 10, "ns_per_op": 999},
	}
	var out strings.Builder
	failures, checks := evalGate(&out, "BENCH_x.json", testGate("allocs_per_flush"), entries, results)
	if failures != 0 || checks != 1 {
		t.Fatalf("failures=%d checks=%d, want 0/1\n%s", failures, checks, out.String())
	}
}

func TestEvalGateRegressionFails(t *testing.T) {
	entries := map[string]map[string]float64{
		"BenchmarkFlush": {"allocs_per_flush": 10},
	}
	results := map[string]map[string]float64{
		"BenchmarkFlush": {"allocs_per_flush": 20}, // 2x the baseline, way past 25%
	}
	var out strings.Builder
	failures, _ := evalGate(&out, "BENCH_x.json", testGate("allocs_per_flush"), entries, results)
	if failures != 1 {
		t.Fatalf("failures=%d, want 1\n%s", failures, out.String())
	}
}

// A gated metric the baseline expects but the run's output lacks must be a
// failure with a message naming the metric — not a silent skip.
func TestEvalGateMissingMetricFails(t *testing.T) {
	entries := map[string]map[string]float64{
		"BenchmarkFlush": {"allocs_per_flush": 10},
	}
	results := map[string]map[string]float64{
		"BenchmarkFlush": {"ns_per_op": 999}, // ran, but never reported allocs_per_flush
	}
	var out strings.Builder
	failures, checks := evalGate(&out, "BENCH_x.json", testGate("allocs_per_flush"), entries, results)
	if failures != 1 || checks != 0 {
		t.Fatalf("failures=%d checks=%d, want 1/0\n%s", failures, checks, out.String())
	}
	if !strings.Contains(out.String(), "lacks gated metric allocs_per_flush") {
		t.Fatalf("failure message does not name the missing metric:\n%s", out.String())
	}
}

// A gate metric that matches no baseline entry means the gate performs zero
// checks for it; that must fail rather than silently pass.
func TestEvalGateUncheckedMetricFails(t *testing.T) {
	entries := map[string]map[string]float64{
		"BenchmarkFlush": {"ns_per_op": 1234}, // no entry carries the gated key
	}
	results := map[string]map[string]float64{
		"BenchmarkFlush": {"ns_per_op": 1234},
	}
	var out strings.Builder
	failures, checks := evalGate(&out, "BENCH_x.json", testGate("allocs_per_flush"), entries, results)
	if failures != 1 || checks != 0 {
		t.Fatalf("failures=%d checks=%d, want 1/0\n%s", failures, checks, out.String())
	}
	if !strings.Contains(out.String(), "matched no baseline entry") {
		t.Fatalf("failure message does not explain the unchecked gate metric:\n%s", out.String())
	}
}

func TestEvalGateMissingBenchmarkFails(t *testing.T) {
	entries := map[string]map[string]float64{
		"BenchmarkFlush": {"allocs_per_flush": 10},
	}
	var out strings.Builder
	failures, _ := evalGate(&out, "BENCH_x.json", testGate("allocs_per_flush"), entries, map[string]map[string]float64{})
	// Both the absent benchmark and the consequently unchecked gate metric fail.
	if failures != 2 {
		t.Fatalf("failures=%d, want 2\n%s", failures, out.String())
	}
}

func TestEvalGateRatio(t *testing.T) {
	gate := testGate("ckpt_us_virtual")
	gate.Ratios = []ratioSpec{{Name: "pipelined-vs-serial", Metric: "ckpt_us_virtual", Base: "BenchmarkSerial", Test: "BenchmarkPipelined", Min: 1.5}}
	entries := map[string]map[string]float64{
		"BenchmarkSerial": {"ckpt_us_virtual": 100},
	}
	results := map[string]map[string]float64{
		"BenchmarkSerial":    {"ckpt_us_virtual": 100},
		"BenchmarkPipelined": {"ckpt_us_virtual": 90}, // only 1.11x faster, min is 1.5x
	}
	var out strings.Builder
	failures, checks := evalGate(&out, "BENCH_x.json", gate, entries, results)
	if failures != 1 || checks != 2 {
		t.Fatalf("failures=%d checks=%d, want 1/2\n%s", failures, checks, out.String())
	}
}
