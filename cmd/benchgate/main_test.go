package main

import (
	"strings"
	"testing"
)

// gate over one metric, one baseline entry, default tolerance.
func testGate(metrics ...string) *gateSpec {
	return &gateSpec{Section: "after", Metrics: metrics, Tolerance: 0.25}
}

func TestEvalGatePasses(t *testing.T) {
	entries := map[string]map[string]float64{
		"BenchmarkFlush": {"allocs_per_flush": 10, "ns_per_op": 1234},
	}
	results := map[string]map[string]float64{
		"BenchmarkFlush": {"allocs_per_flush": 10, "ns_per_op": 999},
	}
	var out strings.Builder
	failures, checks := evalGate(&out, "BENCH_x.json", testGate("allocs_per_flush"), entries, results)
	if failures != 0 || checks != 1 {
		t.Fatalf("failures=%d checks=%d, want 0/1\n%s", failures, checks, out.String())
	}
}

func TestEvalGateRegressionFails(t *testing.T) {
	entries := map[string]map[string]float64{
		"BenchmarkFlush": {"allocs_per_flush": 10},
	}
	results := map[string]map[string]float64{
		"BenchmarkFlush": {"allocs_per_flush": 20}, // 2x the baseline, way past 25%
	}
	var out strings.Builder
	failures, _ := evalGate(&out, "BENCH_x.json", testGate("allocs_per_flush"), entries, results)
	if failures != 1 {
		t.Fatalf("failures=%d, want 1\n%s", failures, out.String())
	}
}

// A gated metric the baseline expects but the run's output lacks must be a
// failure with a message naming the metric — not a silent skip.
func TestEvalGateMissingMetricFails(t *testing.T) {
	entries := map[string]map[string]float64{
		"BenchmarkFlush": {"allocs_per_flush": 10},
	}
	results := map[string]map[string]float64{
		"BenchmarkFlush": {"ns_per_op": 999}, // ran, but never reported allocs_per_flush
	}
	var out strings.Builder
	failures, checks := evalGate(&out, "BENCH_x.json", testGate("allocs_per_flush"), entries, results)
	if failures != 1 || checks != 0 {
		t.Fatalf("failures=%d checks=%d, want 1/0\n%s", failures, checks, out.String())
	}
	if !strings.Contains(out.String(), "lacks gated metric allocs_per_flush") {
		t.Fatalf("failure message does not name the missing metric:\n%s", out.String())
	}
}

// A gate metric that matches no baseline entry means the gate performs zero
// checks for it; that must fail rather than silently pass.
func TestEvalGateUncheckedMetricFails(t *testing.T) {
	entries := map[string]map[string]float64{
		"BenchmarkFlush": {"ns_per_op": 1234}, // no entry carries the gated key
	}
	results := map[string]map[string]float64{
		"BenchmarkFlush": {"ns_per_op": 1234},
	}
	var out strings.Builder
	failures, checks := evalGate(&out, "BENCH_x.json", testGate("allocs_per_flush"), entries, results)
	if failures != 1 || checks != 0 {
		t.Fatalf("failures=%d checks=%d, want 1/0\n%s", failures, checks, out.String())
	}
	if !strings.Contains(out.String(), "matched no baseline entry") {
		t.Fatalf("failure message does not explain the unchecked gate metric:\n%s", out.String())
	}
}

func TestEvalGateMissingBenchmarkFails(t *testing.T) {
	entries := map[string]map[string]float64{
		"BenchmarkFlush": {"allocs_per_flush": 10},
	}
	var out strings.Builder
	failures, _ := evalGate(&out, "BENCH_x.json", testGate("allocs_per_flush"), entries, map[string]map[string]float64{})
	// Both the absent benchmark and the consequently unchecked gate metric fail.
	if failures != 2 {
		t.Fatalf("failures=%d, want 2\n%s", failures, out.String())
	}
}

func TestHigherIsBetterDirections(t *testing.T) {
	for key, want := range map[string]bool{
		"mb_per_s":        true, // wire throughput
		"ops_per_s":       true, // soak steady-state throughput
		"replay_speedup":  true,
		"ns_per_op":       false,
		"p999_us":         false,
		"ckpt_us_virtual": false,
		"bytes_per_op":    false,
		"fallbacks":       false,
	} {
		if got := higherIsBetter(key); got != want {
			t.Errorf("higherIsBetter(%q) = %v, want %v", key, got, want)
		}
	}
}

// A throughput (higher-is-better) collapse and a tail (lower-is-better)
// blowup must both fail; movement in the good direction must not.
func TestEvalGateRateDirection(t *testing.T) {
	gate := testGate("ops_per_s", "p999_us")
	entries := map[string]map[string]float64{
		"BenchmarkSoak": {"ops_per_s": 1000, "p999_us": 100},
	}
	run := func(ops, tail float64) int {
		var out strings.Builder
		failures, _ := evalGate(&out, "BENCH_x.json", gate, entries,
			map[string]map[string]float64{"BenchmarkSoak": {"ops_per_s": ops, "p999_us": tail}})
		return failures
	}
	if f := run(900, 120); f != 0 { // both within 25%
		t.Fatalf("in-tolerance run: failures=%d, want 0", f)
	}
	if f := run(2000, 50); f != 0 { // both improved
		t.Fatalf("improved run: failures=%d, want 0", f)
	}
	if f := run(500, 100); f != 1 { // throughput halved
		t.Fatalf("throughput drop: failures=%d, want 1", f)
	}
	if f := run(1000, 200); f != 1 { // tail doubled
		t.Fatalf("tail blowup: failures=%d, want 1", f)
	}
}

// Deterministic zeros (fallbacks on a causal-only soak) must gate
// exactly: zero passes, anything else fails at any tolerance.
func TestEvalGateZeroBaseline(t *testing.T) {
	gate := testGate("fallbacks")
	entries := map[string]map[string]float64{
		"BenchmarkSoak": {"fallbacks": 0},
	}
	var out strings.Builder
	failures, _ := evalGate(&out, "BENCH_x.json", gate, entries,
		map[string]map[string]float64{"BenchmarkSoak": {"fallbacks": 0}})
	if failures != 0 {
		t.Fatalf("exact-zero run: failures=%d\n%s", failures, out.String())
	}
	out.Reset()
	failures, _ = evalGate(&out, "BENCH_x.json", gate, entries,
		map[string]map[string]float64{"BenchmarkSoak": {"fallbacks": 2}})
	if failures != 1 {
		t.Fatalf("nonzero fallbacks passed a zero baseline\n%s", out.String())
	}
}

func TestMetricKeyUnits(t *testing.T) {
	for unit, want := range map[string]string{
		"ns/op":             "ns_per_op",
		"MB/s":              "mb_per_s",
		"B/op":              "bytes_per_op",
		"allocs/op":         "allocs_per_op",
		"ops_per_s":         "ops_per_s",
		"wire-bytes-per-op": "wire_bytes_per_op",
	} {
		if got := metricKey(unit); got != want {
			t.Errorf("metricKey(%q) = %q, want %q", unit, got, want)
		}
	}
}

func TestEvalGateRatio(t *testing.T) {
	gate := testGate("ckpt_us_virtual")
	gate.Ratios = []ratioSpec{{Name: "pipelined-vs-serial", Metric: "ckpt_us_virtual", Base: "BenchmarkSerial", Test: "BenchmarkPipelined", Min: 1.5}}
	entries := map[string]map[string]float64{
		"BenchmarkSerial": {"ckpt_us_virtual": 100},
	}
	results := map[string]map[string]float64{
		"BenchmarkSerial":    {"ckpt_us_virtual": 100},
		"BenchmarkPipelined": {"ckpt_us_virtual": 90}, // only 1.11x faster, min is 1.5x
	}
	var out strings.Builder
	failures, checks := evalGate(&out, "BENCH_x.json", gate, entries, results)
	if failures != 1 || checks != 2 {
		t.Fatalf("failures=%d checks=%d, want 1/2\n%s", failures, checks, out.String())
	}
}
