// Command benchgate compares a `go test -bench` run against committed
// BENCH_*.json baselines and fails on throughput regressions beyond a
// tolerance threshold. CI runs it after the bench step; `make ci` mirrors
// it locally.
//
// A baseline file opts into gating with a top-level "gate" object:
//
//	"gate": {
//	  "section":   "after",                  // which top-level section holds the expectations
//	  "metrics":   ["ckpt_us_virtual"],      // which metric keys to compare
//	  "tolerance": 0.25,                     // relative regression allowed
//	  "tolerances": {                        // optional per-metric overrides of "tolerance"
//	    "allocs_per_flush": 0.35             // so deterministic metrics can stay tight while
//	  },                                     // noisier ones get room
//	  "ratios": [{                           // optional cross-benchmark invariants
//	    "name":   "pipelined-vs-serial",
//	    "metric": "ckpt_us_virtual",
//	    "base":   "BenchmarkFoo/serial",     // numerator
//	    "test":   "BenchmarkFoo/pipelined",  // denominator
//	    "min":    1.5                        // base/test must stay >= min
//	  }]
//	}
//
// Files without a "gate" object are documentation-only and are skipped.
// Metric direction: *_per_s rates (mb_per_s, ops_per_s, ...) and *speedup*
// metrics are higher-is-better; everything else (ns_per_op, *_us_virtual,
// allocs_per_op, ...) is lower-is-better. Modeled virtual-time metrics are deterministic and gate
// tightly; wall-clock metrics should only be gated with generous tolerance
// (they are machine-dependent tripwires, not precision checks).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

type ratioSpec struct {
	Name   string  `json:"name"`
	Metric string  `json:"metric"`
	Base   string  `json:"base"`
	Test   string  `json:"test"`
	Min    float64 `json:"min"`
}

type gateSpec struct {
	Section    string             `json:"section"`
	Metrics    []string           `json:"metrics"`
	Tolerance  float64            `json:"tolerance"`
	Tolerances map[string]float64 `json:"tolerances"`
	Ratios     []ratioSpec        `json:"ratios"`
}

// toleranceFor resolves a metric's allowed relative regression: the
// per-metric override when present, the gate default otherwise.
func (g *gateSpec) toleranceFor(key string) float64 {
	if t, ok := g.Tolerances[key]; ok && t > 0 {
		return t
	}
	return g.Tolerance
}

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

// metricKey normalizes a bench output unit to the JSON key convention of
// the BENCH_*.json files.
func metricKey(unit string) string {
	switch unit {
	case "ns/op":
		return "ns_per_op"
	case "MB/s":
		return "mb_per_s"
	case "B/op":
		return "bytes_per_op"
	case "allocs/op":
		return "allocs_per_op"
	}
	return strings.NewReplacer("/", "_", "-", "_").Replace(unit)
}

func higherIsBetter(key string) bool {
	return strings.HasSuffix(key, "_per_s") || strings.Contains(key, "speedup")
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// parseBench extracts per-benchmark metric maps from go test -bench output.
func parseBench(path string) (map[string]map[string]float64, error) {
	f := os.Stdin
	if path != "-" {
		var err error
		if f, err = os.Open(path); err != nil {
			return nil, err
		}
		defer f.Close()
	}
	out := map[string]map[string]float64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name, rest := m[1], strings.Fields(m[2])
		metrics := out[name]
		if metrics == nil {
			metrics = map[string]float64{}
			out[name] = metrics
		}
		for i := 0; i+1 < len(rest); i += 2 {
			v, err := strconv.ParseFloat(rest[i], 64)
			if err != nil {
				continue
			}
			metrics[metricKey(rest[i+1])] = v
		}
	}
	return out, sc.Err()
}

// loadBaseline returns the gate spec (nil when the file does not gate) and
// the expectation entries of the gated section.
func loadBaseline(path string) (*gateSpec, map[string]map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(raw, &top); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	gRaw, ok := top["gate"]
	if !ok {
		return nil, nil, nil
	}
	var gate gateSpec
	if err := json.Unmarshal(gRaw, &gate); err != nil {
		return nil, nil, fmt.Errorf("%s: gate: %w", path, err)
	}
	if gate.Tolerance <= 0 {
		gate.Tolerance = 0.25
	}
	sRaw, ok := top[gate.Section]
	if !ok {
		return nil, nil, fmt.Errorf("%s: gate section %q missing", path, gate.Section)
	}
	var section map[string]json.RawMessage
	if err := json.Unmarshal(sRaw, &section); err != nil {
		return nil, nil, fmt.Errorf("%s: section %q: %w", path, gate.Section, err)
	}
	entries := map[string]map[string]float64{}
	for name, eRaw := range section {
		if !strings.HasPrefix(name, "Benchmark") {
			continue // prose keys like "notes"
		}
		var fields map[string]any
		if err := json.Unmarshal(eRaw, &fields); err != nil {
			continue
		}
		metrics := map[string]float64{}
		for k, v := range fields {
			if f, ok := v.(float64); ok {
				metrics[k] = f
			}
		}
		entries[name] = metrics
	}
	return &gate, entries, nil
}

// evalGate compares one gated baseline against the run's results, printing
// one line per check to w. It returns (failures, checks). A gated metric
// that a matched benchmark's run output lacks is a failure, and so is a
// gate metric that matched no baseline entry at all — a gate that performs
// zero checks for a listed metric must scream, not pass: a renamed
// ReportMetric unit or a mistyped gate list would otherwise disable the
// gate silently.
func evalGate(w io.Writer, path string, gate *gateSpec, entries, results map[string]map[string]float64) (failures, checks int) {
	gated := map[string]bool{}
	for _, m := range gate.Metrics {
		gated[m] = true
	}
	// checked counts, per gate metric, how many baseline entries carried it.
	checked := map[string]int{}
	for name, want := range entries {
		got, ok := results[name]
		if !ok {
			fmt.Fprintf(w, "FAIL %s: benchmark %s missing from this run\n", path, name)
			failures++
			continue
		}
		for key, base := range want {
			if !gated[key] {
				continue
			}
			checked[key]++
			cur, ok := got[key]
			if !ok {
				fmt.Fprintf(w, "FAIL %s: %s lacks gated metric %s in this run's output (baseline expects %.4g)\n", path, name, key, base)
				failures++
				continue
			}
			checks++
			tol := gate.toleranceFor(key)
			bad := false
			if higherIsBetter(key) {
				bad = cur < base*(1-tol)
			} else {
				bad = cur > base*(1+tol)
			}
			status := "ok  "
			if bad {
				status = "FAIL"
				failures++
			}
			fmt.Fprintf(w, "%s %s %s: %s = %.4g (baseline %.4g, tolerance %.0f%%)\n",
				status, path, name, key, cur, base, tol*100)
		}
	}
	for _, m := range gate.Metrics {
		if checked[m] == 0 {
			fmt.Fprintf(w, "FAIL %s: gate metric %s matched no baseline entry — the gate checked nothing for it (stale gate list or renamed metric?)\n", path, m)
			failures++
		}
	}
	for _, r := range gate.Ratios {
		base, okB := results[r.Base][r.Metric]
		test, okT := results[r.Test][r.Metric]
		if !okB || !okT || test == 0 {
			fmt.Fprintf(w, "FAIL %s ratio %s: missing %s for %s or %s\n", path, r.Name, r.Metric, r.Base, r.Test)
			failures++
			continue
		}
		checks++
		ratio := base / test
		status := "ok  "
		if ratio < r.Min {
			status = "FAIL"
			failures++
		}
		fmt.Fprintf(w, "%s %s ratio %s: %.3gx (min %.3gx)\n", status, path, r.Name, ratio, r.Min)
	}
	return failures, checks
}

func main() {
	var baselines multiFlag
	benchPath := flag.String("bench", "-", "go test -bench output file (- for stdin)")
	outPath := flag.String("out", "", "write the parsed current results as JSON (CI artifact)")
	flag.Var(&baselines, "baseline", "BENCH_*.json baseline file (repeatable)")
	flag.Parse()

	results, err := parseBench(*benchPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if *outPath != "" {
		blob, _ := json.MarshalIndent(results, "", "  ")
		if err := os.WriteFile(*outPath, blob, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
	}

	failures, checks := 0, 0
	for _, path := range baselines {
		gate, entries, err := loadBaseline(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		if gate == nil {
			fmt.Printf("%-60s documentation-only (no gate), skipped\n", path)
			continue
		}
		f, c := evalGate(os.Stdout, path, gate, entries, results)
		failures += f
		checks += c
	}
	if failures > 0 {
		fmt.Printf("benchgate: %d of %d checks failed\n", failures, checks)
		os.Exit(1)
	}
	fmt.Printf("benchgate: all %d checks passed\n", checks)
}
