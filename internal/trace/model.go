// Package trace implements the paper's formal model of RMA executions
// (§2.4): action tuples with determinants, the four orders — program order
// (po), synchronization order (so), happened-before (hb), and consistency
// order (co) — plus the RMA-consistency condition for coordinated
// checkpoints (Definition 1) and the operation taxonomy of Table 1.
//
// A Recorder can be attached to an rma.World to build the trace of a live
// run; tests use it to verify the theorems of §3 and §4 on real executions.
package trace

import "fmt"

// Type enumerates event types: communication actions, synchronization
// actions, and internal actions (Eq. 4's split of events into A and I).
type Type int

const (
	// TypePut is a communication action transferring data src -> trg.
	TypePut Type = iota
	// TypeGet is a communication action transferring data trg -> src.
	TypeGet
	// TypeLock acquires a structure lock at trg.
	TypeLock
	// TypeUnlock releases a structure lock at trg and closes the epoch.
	TypeUnlock
	// TypeFlush closes the epoch src -> trg.
	TypeFlush
	// TypeGsync is the collective memory synchronization.
	TypeGsync
	// TypeRead is an internal action: a local variable load.
	TypeRead
	// TypeWrite is an internal action: a local variable store.
	TypeWrite
	// TypeCheckpoint is an internal action: C_p^i.
	TypeCheckpoint
	// TypeBarrier is a collective synchronization without memory effects.
	TypeBarrier
)

// String names the type.
func (t Type) String() string {
	switch t {
	case TypePut:
		return "put"
	case TypeGet:
		return "get"
	case TypeLock:
		return "lock"
	case TypeUnlock:
		return "unlock"
	case TypeFlush:
		return "flush"
	case TypeGsync:
		return "gsync"
	case TypeRead:
		return "read"
	case TypeWrite:
		return "write"
	case TypeCheckpoint:
		return "checkpoint"
	case TypeBarrier:
		return "barrier"
	}
	return "unknown"
}

// IsComm reports whether the type is a communication action (a put or get
// in the model's sense; atomics are recorded as both).
func (t Type) IsComm() bool { return t == TypePut || t == TypeGet }

// IsSync reports whether the type is a synchronization action.
func (t Type) IsSync() bool {
	switch t {
	case TypeLock, TypeUnlock, TypeFlush, TypeGsync, TypeBarrier:
		return true
	}
	return false
}

// Event is one event of a trace: the action tuple of Eqs. (1)–(3) plus
// bookkeeping indices. Data is deliberately not stored — Determinant
// captures exactly the tuple-without-data of Eq. (2).
type Event struct {
	ID      int
	Type    Type
	Src     int
	Trg     int // -1 for collectives and internal actions
	Combine bool
	EC      int // epoch counter at issue (Eq. 1's EC field)
	GC      int
	SC      int
	GNC     int
	Str     int // structure id for sync actions
	PoIdx   int // position in Src's program order
	SoIdx   int // global synchronization-order index, -1 if not ordered by so
}

// Determinant is #a: the event without its payload (Eq. 2). Two events with
// equal determinants replay identically under access determinism.
type Determinant struct {
	Type    Type
	Src     int
	Trg     int
	Combine bool
	EC      int
	GC      int
	SC      int
	GNC     int
}

// Det extracts the determinant of an event.
func (e Event) Det() Determinant {
	return Determinant{
		Type: e.Type, Src: e.Src, Trg: e.Trg, Combine: e.Combine,
		EC: e.EC, GC: e.GC, SC: e.SC, GNC: e.GNC,
	}
}

// String formats an event in the paper's arrow notation.
func (e Event) String() string {
	switch e.Type {
	case TypePut:
		return fmt.Sprintf("put(%d=>%d)@E%d", e.Src, e.Trg, e.EC)
	case TypeGet:
		return fmt.Sprintf("get(%d<=%d)@E%d", e.Src, e.Trg, e.EC)
	case TypeGsync, TypeBarrier:
		return fmt.Sprintf("%s(%d->*)", e.Type, e.Src)
	case TypeCheckpoint:
		return fmt.Sprintf("C_%d", e.Src)
	default:
		return fmt.Sprintf("%s(%d->%d)", e.Type, e.Src, e.Trg)
	}
}
