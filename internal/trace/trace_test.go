package trace

import (
	"testing"

	"repro/internal/rma"
)

// runTraced executes body on a fresh world and returns the recorded trace.
func runTraced(t *testing.T, n, words int, body func(w *rma.World, r int)) []Event {
	t.Helper()
	w := rma.NewWorld(rma.Config{N: n, WindowWords: words})
	rec := NewRecorder()
	w.SetTracer(rec)
	w.Run(func(r int) { body(w, r) })
	w.SetTracer(nil)
	return rec.Events()
}

func find(events []Event, typ Type, src int) []Event {
	var out []Event
	for _, e := range events {
		if e.Type == typ && e.Src == src {
			out = append(out, e)
		}
	}
	return out
}

func TestRecorderBasicFields(t *testing.T) {
	events := runTraced(t, 2, 8, func(w *rma.World, r int) {
		if r != 0 {
			return
		}
		p := w.Proc(0)
		p.PutValue(1, 0, 1)
		p.Flush(1)
		p.PutValue(1, 0, 2)
		p.Flush(1)
	})
	puts := find(events, TypePut, 0)
	if len(puts) != 2 {
		t.Fatalf("got %d puts", len(puts))
	}
	if puts[0].EC != 0 || puts[1].EC != 1 {
		t.Errorf("put epochs = %d, %d; want 0, 1", puts[0].EC, puts[1].EC)
	}
	if puts[0].PoIdx >= puts[1].PoIdx {
		t.Error("po indices not increasing")
	}
	if puts[1].GC != 1 {
		t.Errorf("second put GC = %d, want 1 (one flush before)", puts[1].GC)
	}
}

func TestAtomicsRecordedAsPutAndGet(t *testing.T) {
	events := runTraced(t, 2, 8, func(w *rma.World, r int) {
		if r == 0 {
			w.Proc(0).CompareAndSwap(1, 0, 0, 1)
			w.Proc(0).FetchAndOp(1, 1, 1, rma.OpSum)
		}
	})
	if got := len(find(events, TypePut, 0)); got != 2 {
		t.Errorf("atomics produced %d put events, want 2", got)
	}
	if got := len(find(events, TypeGet, 0)); got != 2 {
		t.Errorf("atomics produced %d get events, want 2", got)
	}
	// CAS is combining in the model's sense (must not replay twice).
	if !find(events, TypePut, 0)[0].Combine {
		t.Error("CAS put not marked combining")
	}
}

func TestPoOrder(t *testing.T) {
	events := runTraced(t, 2, 8, func(w *rma.World, r int) {
		p := w.Proc(r)
		p.PutValue((r+1)%2, 0, 1)
		p.Flush((r + 1) % 2)
	})
	o := NewOrders(events)
	p0 := find(events, TypePut, 0)[0]
	f0 := find(events, TypeFlush, 0)[0]
	p1 := find(events, TypePut, 1)[0]
	if !o.Po(p0, f0) || o.Po(f0, p0) {
		t.Error("po within rank 0 wrong")
	}
	if o.Po(p0, p1) {
		t.Error("po must not relate different ranks")
	}
}

func TestSoOrdersSyncActions(t *testing.T) {
	events := runTraced(t, 2, 8, func(w *rma.World, r int) {
		p := w.Proc(r)
		p.Lock(0, rma.StrWindow)
		p.Unlock(0, rma.StrWindow)
	})
	o := NewOrders(events)
	locks := find(events, TypeLock, 0)
	locks = append(locks, find(events, TypeLock, 1)...)
	if len(locks) != 2 {
		t.Fatalf("got %d locks", len(locks))
	}
	// The two lock acquisitions are so-ordered one way or the other.
	if !o.So(locks[0], locks[1]) && !o.So(locks[1], locks[0]) {
		t.Error("contending locks not so-ordered")
	}
	// Puts are not part of so.
	events2 := runTraced(t, 2, 8, func(w *rma.World, r int) {
		if r == 0 {
			w.Proc(0).PutValue(1, 0, 1)
			w.Proc(0).Flush(1)
		}
	})
	put := find(events2, TypePut, 0)[0]
	if put.SoIdx != -1 {
		t.Error("put has a so index")
	}
}

func TestHbThroughLockSuccession(t *testing.T) {
	// Rank 0 unlocks, rank 1 locks the same structure afterwards: every
	// action of rank 0 before the unlock happens-before rank 1's actions
	// after the lock.
	events := runTraced(t, 2, 8, func(w *rma.World, r int) {
		p := w.Proc(r)
		if r == 0 {
			p.Lock(0, rma.StrWindow)
			p.PutValue(1, 0, 1)
			p.Unlock(0, rma.StrWindow)
		} else {
			p.Lock(0, rma.StrWindow)
			p.Unlock(0, rma.StrWindow)
		}
	})
	o := NewOrders(events)
	unlock0 := find(events, TypeUnlock, 0)[0]
	lock1 := find(events, TypeLock, 1)[0]
	unlock1 := find(events, TypeUnlock, 1)[0]
	lock0 := find(events, TypeLock, 0)[0]
	// Exactly one ordering ran; check hb accordingly.
	if lock0.SoIdx < lock1.SoIdx {
		if !o.Hb(unlock0, lock1) {
			t.Error("unlock(0) should happen-before the successor lock(1)")
		}
		put0 := find(events, TypePut, 0)[0]
		if !o.Hb(put0, unlock1) {
			t.Error("hb not transitive through lock succession")
		}
	} else if !o.Hb(unlock1, lock0) {
		t.Error("unlock(1) should happen-before the successor lock(0)")
	}
}

func TestHbThroughGsync(t *testing.T) {
	events := runTraced(t, 3, 8, func(w *rma.World, r int) {
		p := w.Proc(r)
		p.PutValue((r+1)%3, 0, 1)
		p.Gsync()
		p.PutValue((r+1)%3, 1, 2)
		p.Gsync()
	})
	o := NewOrders(events)
	// Every pre-gsync put happens-before every post-gsync put, across ranks.
	for src := 0; src < 3; src++ {
		pre := find(events, TypePut, src)[0]
		for trg := 0; trg < 3; trg++ {
			post := find(events, TypePut, trg)[1]
			if !o.Hb(pre, post) {
				t.Errorf("put by %d before gsync does not hb put by %d after", src, trg)
			}
			if o.Hb(post, pre) {
				t.Errorf("hb inverted across gsync (%d, %d)", src, trg)
			}
		}
	}
	// An event does not happen before itself.
	g := find(events, TypeGsync, 0)[0]
	if o.Hb(g, g) {
		t.Error("event happens before itself")
	}
}

func TestCoWithinEpochsAndAcrossGsync(t *testing.T) {
	events := runTraced(t, 3, 8, func(w *rma.World, r int) {
		p := w.Proc(r)
		if r == 0 {
			p.PutValue(2, 0, 1)
			p.Flush(2)
			p.PutValue(2, 0, 2)
			p.Flush(2)
		}
		if r == 1 {
			p.PutValue(2, 1, 3)
			p.Flush(2)
		}
		p.Gsync()
		if r == 1 {
			p.PutValue(2, 1, 4)
			p.Flush(2)
		}
	})
	o := NewOrders(events)
	puts0 := find(events, TypePut, 0)
	puts1 := find(events, TypePut, 1)
	// Same source, same target, different epochs: co-ordered (§4.1 A).
	if !o.Co(puts0[0], puts0[1]) || o.Co(puts0[1], puts0[0]) {
		t.Error("epoch-separated puts not co-ordered")
	}
	// Different sources, same gsync phase: unordered (access determinism).
	if !o.CoParallel(puts0[0], puts1[0]) {
		t.Error("concurrent puts by different sources should be ||co")
	}
	// Across a gsync: ordered (§4.1 E).
	if !o.Co(puts0[0], puts1[1]) {
		t.Error("puts across gsync phases should be co-ordered")
	}
}

func TestRMAConsistencyOfGsyncScheme(t *testing.T) {
	// The Gsync scheme: checkpoint right after a gsync. The resulting
	// checkpoint set must satisfy Definition 1 (Theorem 3.1).
	events := runTraced(t, 3, 8, func(w *rma.World, r int) {
		p := w.Proc(r)
		p.PutValue((r+1)%3, 0, uint64(r))
		p.Gsync()
		w.Emit(rma.TraceAction{Kind: "checkpoint", Src: r})
		p.PutValue((r+2)%3, 1, uint64(r))
		p.Gsync()
	})
	if err := CheckRMAConsistent(events, 0); err != nil {
		t.Errorf("Gsync-scheme checkpoint flagged inconsistent: %v", err)
	}
}

func TestRMAConsistencyViolationDetected(t *testing.T) {
	// Rank 0 checkpoints, THEN issues and commits a put into rank 1, and
	// only afterwards does rank 1 checkpoint: the saved state of rank 1
	// reflects an access rank 0's checkpoint knows nothing about.
	events := runTraced(t, 2, 8, func(w *rma.World, r int) {
		p := w.Proc(r)
		if r == 0 {
			w.Emit(rma.TraceAction{Kind: "checkpoint", Src: 0})
			p.PutValue(1, 0, 7)
			p.Flush(1)
			p.Barrier()
		} else {
			p.Barrier() // wait until the put committed
			w.Emit(rma.TraceAction{Kind: "checkpoint", Src: 1})
		}
	})
	if err := CheckRMAConsistent(events, 0); err == nil {
		t.Error("inconsistent checkpoint set not detected")
	}
}

func TestCheckRMAConsistentErrors(t *testing.T) {
	if err := CheckRMAConsistent(nil, 0); err == nil {
		t.Error("accepted empty trace")
	}
	events := []Event{{Type: TypeCheckpoint, Src: 0}}
	if err := CheckRMAConsistent(events, 3); err == nil {
		t.Error("accepted out-of-range checkpoint index")
	}
}

func TestDeterminant(t *testing.T) {
	e := Event{Type: TypePut, Src: 1, Trg: 2, Combine: true, EC: 3, GC: 4, SC: 5, GNC: 6, PoIdx: 9}
	d := e.Det()
	want := Determinant{Type: TypePut, Src: 1, Trg: 2, Combine: true, EC: 3, GC: 4, SC: 5, GNC: 6}
	if d != want {
		t.Errorf("determinant = %+v", d)
	}
}

func TestSCAssignedUnderLocks(t *testing.T) {
	// Puts issued while holding a lock carry the lock's synchronization
	// counter (§4.1 C).
	events := runTraced(t, 3, 8, func(w *rma.World, r int) {
		p := w.Proc(r)
		if r == 2 {
			return
		}
		p.Lock(2, rma.StrWindow)
		p.PutValue(2, r, uint64(r+1))
		p.Unlock(2, rma.StrWindow)
	})
	puts := append(find(events, TypePut, 0), find(events, TypePut, 1)...)
	if len(puts) != 2 {
		t.Fatalf("got %d puts", len(puts))
	}
	if puts[0].SC == puts[1].SC {
		t.Errorf("both puts have SC %d; lock-separated puts need distinct SCs", puts[0].SC)
	}
	for _, p := range puts {
		if p.SC < 1 || p.SC > 2 {
			t.Errorf("put SC = %d, want 1 or 2", p.SC)
		}
	}
}

func TestGNCCountsGsyncs(t *testing.T) {
	events := runTraced(t, 2, 8, func(w *rma.World, r int) {
		p := w.Proc(r)
		p.PutValue((r+1)%2, 0, 1)
		p.Gsync()
		p.PutValue((r+1)%2, 1, 2)
	})
	puts := find(events, TypePut, 0)
	if puts[0].GNC != 0 || puts[1].GNC != 1 {
		t.Errorf("GNCs = %d, %d; want 0, 1", puts[0].GNC, puts[1].GNC)
	}
}

func TestTable1Categorization(t *testing.T) {
	cases := map[string]Category{
		"MPI_Put":              CatPut,
		"MPI_Get":              CatGet,
		"MPI_Accumulate":       CatPut,
		"MPI_Compare_and_swap": CatPut | CatGet,
		"MPI_Fetch_and_op":     CatPut | CatGet,
		"MPI_Win_lock":         CatLock,
		"MPI_Win_unlock_all":   CatUnlock,
		"MPI_Win_fence":        CatGsync,
		"MPI_Win_flush":        CatFlush,
		"upc_memput":           CatPut,
		"upc_memcpy":           CatPut | CatGet,
		"upc_barrier":          CatGsync,
		"upc_fence":            CatFlush,
		"caf_sync_all":         CatGsync,
		"caf_sync_memory":      CatFlush,
		"caf_assignment":       CatPut | CatGet,
	}
	for op, want := range cases {
		if got := Categorize(op); got != want {
			t.Errorf("Categorize(%s) = %v, want %v", op, got, want)
		}
	}
	if Categorize("MPI_Send") != 0 {
		t.Error("message-passing op categorized as RMA")
	}
	if len(Table1Ops()) < 20 {
		t.Errorf("Table1Ops lists only %d ops", len(Table1Ops()))
	}
}

func TestTypeStringAndPredicates(t *testing.T) {
	if TypePut.String() != "put" || TypeGsync.String() != "gsync" {
		t.Error("type names wrong")
	}
	if !TypePut.IsComm() || TypeFlush.IsComm() {
		t.Error("IsComm wrong")
	}
	if !TypeLock.IsSync() || TypePut.IsSync() {
		t.Error("IsSync wrong")
	}
	if CatPut.String() != "put" || (CatPut|CatGet).String() != "put+get" {
		t.Error("category names wrong")
	}
	if Category(0).String() != "none" {
		t.Error("empty category name wrong")
	}
}
