package trace

import "fmt"

// Orders answers order queries (po, so, hb, co) over a recorded trace. It
// materializes the happened-before relation as a DAG: program-order edges,
// lock-succession edges (an unlock happens-before the next lock of the same
// structure), and collective synchronization points (each matched set of
// gsync/barrier calls acts as a single graph node, as the paper assumes
// gsync may introduce a global hb order).
type Orders struct {
	events []Event
	// adj is the successor list over node ids. Nodes 0..len(events)-1 are
	// events; higher ids are collective sync points.
	adj   [][]int
	nodes int
}

// NewOrders builds the order relations of a trace.
func NewOrders(events []Event) *Orders {
	o := &Orders{events: events, nodes: len(events)}
	// First pass: count collective sync points (k-th collective of every
	// rank joins group k; gsyncs and barriers both synchronize globally).
	collIdx := map[int]int{} // per-rank running collective count
	groupNode := map[int]int{}
	type edge struct{ from, to int }
	var edges []edge
	lastPo := map[int]int{}        // rank -> last event node
	lastUnlock := map[[2]int]int{} // (trg,str) -> last unlock node
	for i, e := range events {
		// Program order.
		if prev, ok := lastPo[e.Src]; ok {
			edges = append(edges, edge{prev, i})
		}
		lastPo[e.Src] = i
		switch e.Type {
		case TypeGsync, TypeBarrier:
			k := collIdx[e.Src]
			collIdx[e.Src]++
			g, ok := groupNode[k]
			if !ok {
				g = o.nodes
				o.nodes++
				groupNode[k] = g
			}
			edges = append(edges, edge{i, g}, edge{g, i})
		case TypeLock:
			key := [2]int{e.Trg, e.Str}
			if u, ok := lastUnlock[key]; ok {
				edges = append(edges, edge{u, i})
			}
		case TypeUnlock:
			lastUnlock[[2]int{e.Trg, e.Str}] = i
		}
	}
	o.adj = make([][]int, o.nodes)
	for _, e := range edges {
		o.adj[e.from] = append(o.adj[e.from], e.to)
	}
	return o
}

// Po reports a po-> b: same rank, issued earlier.
func (o *Orders) Po(a, b Event) bool {
	return a.Src == b.Src && a.PoIdx < b.PoIdx
}

// So reports a so-> b: both synchronization actions, a globally ordered
// before b.
func (o *Orders) So(a, b Event) bool {
	return a.SoIdx >= 0 && b.SoIdx >= 0 && a.SoIdx < b.SoIdx
}

// Hb reports a hb-> b: b reachable from a in the happened-before DAG.
// Collective cycles (a gsync group) count as mutual synchronization, but an
// event does not happen before itself.
func (o *Orders) Hb(a, b Event) bool {
	if a.ID == b.ID {
		return false
	}
	seen := make([]bool, o.nodes)
	stack := []int{a.ID}
	seen[a.ID] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, m := range o.adj[n] {
			if m == b.ID {
				return true
			}
			if !seen[m] {
				seen[m] = true
				stack = append(stack, m)
			}
		}
	}
	return false
}

// Co reports a co-> b for communication actions: the memory effects of a
// are globally visible before b. Two accesses by the same source to the
// same target in different epochs are co-ordered (§2.2); accesses separated
// by a gsync phase are co-ordered through the global consistency the gsync
// enforces.
func (o *Orders) Co(a, b Event) bool {
	if !a.Type.IsComm() || !b.Type.IsComm() {
		return false
	}
	if a.Src == b.Src && a.Trg == b.Trg && a.EC < b.EC {
		return true
	}
	return a.GNC < b.GNC
}

// CoParallel reports a ||co b.
func (o *Orders) CoParallel(a, b Event) bool { return !o.Co(a, b) && !o.Co(b, a) }

// CoHb reports a cohb-> b (both co and hb, §2.3).
func (o *Orders) CoHb(a, b Event) bool { return o.Co(a, b) && o.Hb(a, b) }

// Checkpoints returns the checkpoint events grouped per rank, in po order.
func Checkpoints(events []Event) map[int][]Event {
	out := map[int][]Event{}
	for _, e := range events {
		if e.Type == TypeCheckpoint {
			out[e.Src] = append(out[e.Src], e)
		}
	}
	return out
}

// CheckRMAConsistent verifies Definition 1 on the i-th coordinated
// checkpoint of every rank: the saved global state must not reflect a
// memory access that was not issued before the issuer's own checkpoint.
//
// Concretely it finds every put (the state-modifying access) that committed
// at its target before the target's i-th checkpoint — commitment is the
// first epoch-closing synchronization by the source covering the put's
// epoch — but was issued after the source's i-th checkpoint in program
// order. Such a put makes the checkpoint set inconsistent.
func CheckRMAConsistent(events []Event, i int) error {
	ckpts := Checkpoints(events)
	if len(ckpts) == 0 {
		return fmt.Errorf("trace: no checkpoints recorded")
	}
	nth := map[int]Event{}
	for rank, cs := range ckpts {
		if i >= len(cs) {
			return fmt.Errorf("trace: rank %d has only %d checkpoints, want index %d", rank, len(cs), i)
		}
		nth[rank] = cs[i]
	}
	for _, put := range events {
		if put.Type != TypePut || put.Trg < 0 {
			continue
		}
		cSrc, okSrc := nth[put.Src]
		cTrg, okTrg := nth[put.Trg]
		if !okSrc || !okTrg {
			continue
		}
		commit, ok := commitEvent(events, put)
		if !ok {
			continue // never committed: cannot be in any checkpoint
		}
		committedBeforeTargetCkpt := commit.ID < cTrg.ID
		issuedBeforeSourceCkpt := put.PoIdx < cSrc.PoIdx
		if committedBeforeTargetCkpt && !issuedBeforeSourceCkpt {
			return fmt.Errorf("trace: checkpoint set %d inconsistent: %v committed at rank %d's checkpoint but issued after rank %d's",
				i, put, put.Trg, put.Src)
		}
	}
	return nil
}

// commitEvent returns the synchronization event that made the put globally
// visible: the first flush/unlock towards the put's target (or a collective
// flush/gsync) issued by the same source at or after the put in program
// order.
func commitEvent(events []Event, put Event) (Event, bool) {
	for _, e := range events {
		if e.Src != put.Src || e.PoIdx <= put.PoIdx {
			continue
		}
		switch e.Type {
		case TypeFlush, TypeUnlock:
			if e.Trg == put.Trg || e.Trg == -1 {
				return e, true
			}
		case TypeGsync:
			return e, true
		}
	}
	return Event{}, false
}
