package trace

import (
	"sync"

	"repro/internal/rma"
)

// Recorder builds a trace from a live rma.World run. It implements
// rma.Tracer; attach with world.SetTracer(recorder).
//
// The recorder derives the paper's order-information counters the same way
// ftRMA does (§4.1):
//
//   - EC is the issuing epoch E(src->trg), taken from the runtime.
//   - GC (Get Counter) counts flushes issued by the source (pattern B).
//   - SC (Synchronization Counter) is a per-target lock sequence number
//     fetched at lock time (pattern C).
//   - GNC (GsyNc Counter) counts gsyncs at the source (pattern E).
//
// Atomics (cas, fao) are recorded as both a put and a get, following
// Table 1.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	poIdx  map[int]int    // per-rank program-order counter
	soIdx  int            // global synchronization-order counter
	gnc    map[int]int    // per-rank gsync count
	gc     map[int]int    // per-rank flush count
	scAt   map[int]int    // per-target lock sequence number
	scHeld map[[2]int]int // (src,trg) -> SC fetched by src's latest lock at trg
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		poIdx:  make(map[int]int),
		gnc:    make(map[int]int),
		gc:     make(map[int]int),
		scAt:   make(map[int]int),
		scHeld: make(map[[2]int]int),
	}
}

var _ rma.Tracer = (*Recorder)(nil)

// OnAction converts a runtime action into model events.
func (r *Recorder) OnAction(a rma.TraceAction) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch a.Kind {
	case "put", "accumulate":
		r.append(Event{Type: TypePut, Src: a.Src, Trg: a.Trg, Combine: a.Combine, EC: a.Epoch})
	case "get":
		r.append(Event{Type: TypeGet, Src: a.Src, Trg: a.Trg, EC: a.Epoch})
	case "cas", "fao", "getaccumulate":
		// Atomics fall into the family of both puts and gets (§2.1.1).
		r.append(Event{Type: TypePut, Src: a.Src, Trg: a.Trg, Combine: a.Combine, EC: a.Epoch})
		r.append(Event{Type: TypeGet, Src: a.Src, Trg: a.Trg, EC: a.Epoch})
	case "lock":
		r.scAt[a.Trg]++
		r.scHeld[[2]int{a.Src, a.Trg}] = r.scAt[a.Trg]
		r.appendSync(Event{Type: TypeLock, Src: a.Src, Trg: a.Trg, Str: a.Str, EC: a.Epoch})
	case "unlock":
		r.appendSync(Event{Type: TypeUnlock, Src: a.Src, Trg: a.Trg, Str: a.Str, EC: a.Epoch})
	case "flush":
		r.gc[a.Src]++
		r.appendSync(Event{Type: TypeFlush, Src: a.Src, Trg: a.Trg, EC: a.Epoch})
	case "gsync":
		r.gnc[a.Src]++
		r.appendSync(Event{Type: TypeGsync, Src: a.Src, Trg: -1})
	case "barrier":
		r.appendSync(Event{Type: TypeBarrier, Src: a.Src, Trg: -1})
	case "checkpoint":
		r.append(Event{Type: TypeCheckpoint, Src: a.Src, Trg: -1})
	case "read":
		r.append(Event{Type: TypeRead, Src: a.Src, Trg: -1})
	case "write":
		r.append(Event{Type: TypeWrite, Src: a.Src, Trg: -1})
	}
}

// append stamps and stores a non-synchronization event. Callers hold r.mu.
func (r *Recorder) append(e Event) {
	e.ID = len(r.events)
	e.PoIdx = r.poIdx[e.Src]
	r.poIdx[e.Src]++
	e.SoIdx = -1
	e.GNC = r.gnc[e.Src]
	e.GC = r.gc[e.Src]
	if e.Type.IsComm() && e.Trg >= 0 {
		e.SC = r.scHeld[[2]int{e.Src, e.Trg}]
	}
	r.events = append(r.events, e)
}

// appendSync stamps and stores a synchronization event. Callers hold r.mu.
func (r *Recorder) appendSync(e Event) {
	e.ID = len(r.events)
	e.PoIdx = r.poIdx[e.Src]
	r.poIdx[e.Src]++
	e.SoIdx = r.soIdx
	r.soIdx++
	e.GNC = r.gnc[e.Src]
	e.GC = r.gc[e.Src]
	r.events = append(r.events, e)
}

// Events returns a snapshot of the trace.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}
