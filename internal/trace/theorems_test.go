package trace_test

// Cross-layer tests: the theorems of §3 verified on live protocol
// executions — the ftRMA layer runs over the RMA runtime with a trace
// recorder attached, and the resulting checkpoint sets are checked against
// Definition 1.

import (
	"testing"

	"repro/internal/ftrma"
	"repro/internal/rma"
	"repro/internal/trace"
)

// TestTheorem31GsyncSchemeConsistent runs an application that communicates
// with puts and synchronizes with gsyncs under the transparent Gsync
// checkpointing scheme and verifies that every coordinated checkpoint set
// satisfies the RMA-consistency condition (Theorem 3.1). The run also
// terminates, witnessing deadlock freedom.
func TestTheorem31GsyncSchemeConsistent(t *testing.T) {
	w := rma.NewWorld(rma.Config{N: 4, WindowWords: 32})
	sys, err := ftrma.NewSystem(w, ftrma.Config{
		Groups: 2, ChecksumsPerGroup: 1,
		FixedInterval: 1e-12, // checkpoint at every gsync after the anchor
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	w.SetTracer(rec)
	w.Run(func(r int) {
		p := sys.Process(r)
		for it := 0; it < 4; it++ {
			p.PutValue((r+1)%4, it, uint64(r*10+it))
			p.PutValue((r+2)%4, 8+it, uint64(r*10+it))
			p.Gsync()
		}
	})
	w.SetTracer(nil)
	events := rec.Events()
	ckpts := trace.Checkpoints(events)
	if len(ckpts) != 4 {
		t.Fatalf("checkpoints at %d ranks, want 4", len(ckpts))
	}
	rounds := len(ckpts[0])
	if rounds < 2 {
		t.Fatalf("only %d checkpoint rounds", rounds)
	}
	for i := 0; i < rounds; i++ {
		if err := trace.CheckRMAConsistent(events, i); err != nil {
			t.Errorf("round %d violates Definition 1: %v", i, err)
		}
	}
}

// TestTheorem32LocksSchemeConsistent does the same for the Locks scheme:
// lock/unlock-synchronized puts, collective checkpoints at LC=0
// (Theorem 3.2).
func TestTheorem32LocksSchemeConsistent(t *testing.T) {
	w := rma.NewWorld(rma.Config{N: 3, WindowWords: 16})
	sys, err := ftrma.NewSystem(w, ftrma.Config{
		Groups: 1, ChecksumsPerGroup: 1,
		Scheme: ftrma.CCLocks,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	w.SetTracer(rec)
	w.Run(func(r int) {
		p := sys.Process(r)
		for it := 0; it < 3; it++ {
			trg := (r + 1) % 3
			p.Lock(trg, rma.StrWindow)
			p.PutValue(trg, it, uint64(r+1))
			p.Unlock(trg, rma.StrWindow)
			p.CheckpointLocks()
		}
	})
	w.SetTracer(nil)
	events := rec.Events()
	ckpts := trace.Checkpoints(events)
	if len(ckpts) != 3 {
		t.Fatalf("checkpoints at %d ranks, want 3", len(ckpts))
	}
	for i := 0; i < len(ckpts[0]); i++ {
		if err := trace.CheckRMAConsistent(events, i); err != nil {
			t.Errorf("round %d violates Definition 1: %v", i, err)
		}
	}
}

// TestUCCheckpointEpochCondition verifies that demand checkpoints recorded
// through the tracer appear only at epoch boundaries: no put by the
// checkpointing rank is pending (issued but not yet committed) when its
// checkpoint event is recorded.
func TestUCCheckpointEpochCondition(t *testing.T) {
	w := rma.NewWorld(rma.Config{N: 2, WindowWords: 64})
	sys, err := ftrma.NewSystem(w, ftrma.Config{
		Groups: 1, ChecksumsPerGroup: 1,
		LogPuts:        true,
		LogBudgetBytes: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	w.SetTracer(rec)
	w.Run(func(r int) {
		if r != 0 {
			return
		}
		p := sys.Process(0)
		for it := 0; it < 40; it++ {
			p.Put(1, 0, make([]uint64, 16))
			p.Flush(1)
		}
	})
	w.Run(func(r int) {
		if r == 1 {
			sys.Process(1).FlushAll() // services any pending demand flag
		}
	})
	w.SetTracer(nil)
	events := rec.Events()
	for _, ck := range trace.Checkpoints(events) {
		for _, c := range ck {
			// Every put by the checkpointing rank before the checkpoint
			// must have a commit (epoch close) also before it.
			for _, e := range events {
				if e.Type != trace.TypePut || e.Src != c.Src || e.PoIdx > c.PoIdx {
					continue
				}
				committed := false
				for _, f := range events {
					if f.Src == e.Src && f.PoIdx > e.PoIdx && f.PoIdx < c.PoIdx &&
						(f.Type == trace.TypeFlush || f.Type == trace.TypeUnlock || f.Type == trace.TypeGsync) {
						committed = true
						break
					}
				}
				if !committed {
					t.Fatalf("checkpoint %v taken with uncommitted put %v", c, e)
				}
			}
		}
	}
}
