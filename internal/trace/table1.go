package trace

import "sort"

// Category is an operation category of the model (Table 1): communication
// actions are puts and gets; synchronization actions are lock, unlock,
// gsync, and flush.
type Category int

const (
	CatPut Category = 1 << iota
	CatGet
	CatLock
	CatUnlock
	CatGsync
	CatFlush
)

// String names a (possibly combined) category.
func (c Category) String() string {
	names := []struct {
		bit  Category
		name string
	}{
		{CatPut, "put"}, {CatGet, "get"}, {CatLock, "lock"},
		{CatUnlock, "unlock"}, {CatGsync, "gsync"}, {CatFlush, "flush"},
	}
	out := ""
	for _, n := range names {
		if c&n.bit != 0 {
			if out != "" {
				out += "+"
			}
			out += n.name
		}
	}
	if out == "" {
		return "none"
	}
	return out
}

// table1 reproduces the categorization of MPI-3 One Sided, UPC, and Fortran
// 2008 operations in the paper's model (Table 1). Atomic functions fall
// into the family of both puts and gets.
var table1 = map[string]Category{
	// MPI-3 One Sided — communication.
	"MPI_Put":              CatPut,
	"MPI_Accumulate":       CatPut,
	"MPI_Get":              CatGet,
	"MPI_Get_accumulate":   CatPut | CatGet,
	"MPI_Fetch_and_op":     CatPut | CatGet,
	"MPI_Compare_and_swap": CatPut | CatGet,
	// MPI-3 One Sided — synchronization.
	"MPI_Win_lock":       CatLock,
	"MPI_Win_lock_all":   CatLock,
	"MPI_Win_unlock":     CatUnlock,
	"MPI_Win_unlock_all": CatUnlock,
	"MPI_Win_fence":      CatGsync,
	"MPI_Win_flush":      CatFlush,
	"MPI_Win_flush_all":  CatFlush,
	"MPI_Win_sync":       CatFlush,
	// UPC.
	"upc_memput":     CatPut,
	"upc_memget":     CatGet,
	"upc_memcpy":     CatPut | CatGet,
	"upc_memset":     CatPut | CatGet,
	"upc_assignment": CatPut | CatGet,
	"upc_collective": CatPut | CatGet,
	"upc_lock":       CatLock,
	"upc_unlock":     CatUnlock,
	"upc_barrier":    CatGsync,
	"upc_fence":      CatFlush,
	// Fortran 2008 (coarrays).
	"caf_assignment":  CatPut | CatGet,
	"caf_lock":        CatLock,
	"caf_unlock":      CatUnlock,
	"caf_sync_all":    CatGsync,
	"caf_sync_team":   CatGsync,
	"caf_sync_images": CatGsync,
	"caf_sync_memory": CatFlush,
}

// Categorize returns the model category of a language operation, or 0 when
// the operation is not part of Table 1.
func Categorize(op string) Category { return table1[op] }

// Table1Ops returns the operations of Table 1 in sorted order (for the
// cmd/ftrma table1 reproduction).
func Table1Ops() []string {
	ops := make([]string, 0, len(table1))
	for op := range table1 {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	return ops
}
