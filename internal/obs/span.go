package obs

import "time"

func nowUnixNano() int64 { return time.Now().UnixNano() }

// Span times one stage of a larger operation: End observes the elapsed
// microseconds into a histogram and records a flight event carrying the
// duration in C. Spans are plain values (no allocation); nil histogram
// and nil recorder are both fine, so an uninstrumented caller pays
// nothing.
type Span struct {
	h    *Histogram
	rec  *Recorder
	code EventCode
	a, b int64
	t0   time.Time
}

// StartSpan opens a span that will record (code, a, b, elapsed-us).
func StartSpan(h *Histogram, rec *Recorder, code EventCode, a, b int64) Span {
	return Span{h: h, rec: rec, code: code, a: a, b: b, t0: time.Now()}
}

// End closes the span and returns the elapsed duration. Durations are
// floored at 1us so a completed stage is always distinguishable from one
// that never ran (a sub-microsecond stage would otherwise observe 0 and
// leave the histogram sum empty).
func (s Span) End() time.Duration {
	d := time.Since(s.t0)
	us := int64(d / time.Microsecond)
	if us < 1 {
		us = 1
	}
	if s.h != nil {
		s.h.Observe(uint64(us))
	}
	s.rec.Record(s.code, s.a, s.b, us)
	return d
}
