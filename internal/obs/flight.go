package obs

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// EventCode identifies a flight-recorder event type. The A/B/C argument
// meanings per code are part of the schema (docs/OBSERVABILITY.md §3);
// flightcat decodes them for humans.
type EventCode uint8

const (
	// EvFrameSend: a=frame type byte, b=peer rank (-1 unknown), c=size
	// (op count on the tcp path, payload bytes on the fabric path).
	EvFrameSend EventCode = 1 + iota
	// EvFrameRecv: a=frame type byte, b=peer rank (-1 unknown), c=size
	// (op count on the tcp and fabric batch paths).
	EvFrameRecv
	// EvEpochOpen: a=phase.
	EvEpochOpen
	// EvEpochClose: a=phase, b=targets flushed, c=flush us.
	EvEpochClose
	// EvGsync: a=watermark reached, c=barrier wait us.
	EvGsync
	// EvLeaseNearMiss: a=peer rank (-1 unknown), b=gap us, c=lease window us.
	EvLeaseNearMiss
	// EvCondemn: a=condemned rank, b=incarnation.
	EvCondemn
	// EvCrisis: a=CrisisStage, b=victim rank, c=stage duration us (0 on begin).
	EvCrisis
	// EvParityFold: a=group, b=member phase, c=delta ranges.
	EvParityFold
	// EvParityHandoff: a=group, b=new host rank, c=hosting version.
	EvParityHandoff
	// EvReplayChunk: a=put records, b=get records, c=install us.
	EvReplayChunk
)

var eventNames = map[EventCode]string{
	EvFrameSend:     "frame.send",
	EvFrameRecv:     "frame.recv",
	EvEpochOpen:     "epoch.open",
	EvEpochClose:    "epoch.close",
	EvGsync:         "gsync",
	EvLeaseNearMiss: "lease.near_miss",
	EvCondemn:       "condemn",
	EvCrisis:        "crisis",
	EvParityFold:    "parity.fold",
	EvParityHandoff: "parity.handoff",
	EvReplayChunk:   "replay.chunk",
}

func (c EventCode) String() string {
	if n, ok := eventNames[c]; ok {
		return n
	}
	return fmt.Sprintf("ev(%d)", uint8(c))
}

// CrisisStage identifies a recovery stage; it rides in the A field of
// EvCrisis events and names the crisis.<stage>.us span histograms.
type CrisisStage int64

const (
	CrisisQuiesce CrisisStage = iota
	CrisisGather
	CrisisRebuild
	CrisisInstall
	CrisisTotal
)

// CrisisStages lists every stage in timeline order; the chaos harness
// asserts a nonzero span duration for each.
var CrisisStages = []CrisisStage{CrisisQuiesce, CrisisGather, CrisisRebuild, CrisisInstall, CrisisTotal}

func (s CrisisStage) String() string {
	switch s {
	case CrisisQuiesce:
		return "quiesce"
	case CrisisGather:
		return "gather"
	case CrisisRebuild:
		return "rebuild"
	case CrisisInstall:
		return "install"
	case CrisisTotal:
		return "total"
	}
	return fmt.Sprintf("stage(%d)", int64(s))
}

// HistName returns the span histogram name for the stage,
// "crisis.<stage>.us".
func (s CrisisStage) HistName() string { return "crisis." + s.String() + ".us" }

// Event is one flight-recorder entry: a wall-clock timestamp (UnixNano,
// so timelines from different processes on one machine merge), the code,
// and three code-specific arguments.
type Event struct {
	TS      int64
	Code    EventCode
	A, B, C int64
}

// Recorder is a fixed-size per-rank ring of Events. The disabled fast
// path — one atomic load — is what hot paths pay when flight recording
// is off; recording takes a mutex (no allocation either way). A nil
// *Recorder is valid and permanently disabled.
type Recorder struct {
	enabled atomic.Bool
	rank    int

	mu   sync.Mutex
	ring []Event
	n    uint64 // total events ever recorded
}

// DefaultRingEvents is the flight-recorder ring size when none is given
// (overridable with REPRO_FLIGHTREC_EVENTS).
const DefaultRingEvents = 4096

// NewRecorder returns a disabled recorder for rank holding the last
// size events (rounded up to a power of two; <=0 means
// DefaultRingEvents).
func NewRecorder(rank, size int) *Recorder {
	if size <= 0 {
		size = DefaultRingEvents
	}
	pow := 1
	for pow < size {
		pow <<= 1
	}
	return &Recorder{rank: rank, ring: make([]Event, pow)}
}

// Rank returns the rank label.
func (r *Recorder) Rank() int {
	if r == nil {
		return -1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rank
}

// SetRank relabels the recorder (see Registry.SetRank).
func (r *Recorder) SetRank(rank int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.rank = rank
	r.mu.Unlock()
}

// SetEnabled turns recording on or off.
func (r *Recorder) SetEnabled(on bool) {
	if r != nil {
		r.enabled.Store(on)
	}
}

// Enabled reports whether Record currently stores events.
func (r *Recorder) Enabled() bool { return r != nil && r.enabled.Load() }

// Record appends one event (dropping the oldest when the ring is full).
// It allocates nothing on either path.
func (r *Recorder) Record(code EventCode, a, b, c int64) {
	if r == nil || !r.enabled.Load() {
		return
	}
	ts := nowUnixNano()
	r.mu.Lock()
	e := &r.ring[r.n&uint64(len(r.ring)-1)]
	e.TS, e.Code, e.A, e.B, e.C = ts, code, a, b, c
	r.n++
	r.mu.Unlock()
}

// Events returns the retained events in chronological order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	size := uint64(len(r.ring))
	start, count := uint64(0), r.n
	if r.n > size {
		start, count = r.n-size, size
	}
	out := make([]Event, 0, count)
	for i := uint64(0); i < count; i++ {
		out = append(out, r.ring[(start+i)&(size-1)])
	}
	return out
}

// Total returns how many events were ever recorded (including ones the
// ring has since dropped).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// WriteJSONL dumps the retained events as one JSON object per line:
// {"ts":<unixnano>,"rank":R,"ev":"name","a":..,"b":..,"c":..}.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range r.Events() {
		if _, err := fmt.Fprintf(bw, `{"ts":%d,"rank":%d,"ev":%q,"a":%d,"b":%d,"c":%d}`+"\n",
			e.TS, r.Rank(), e.Code.String(), e.A, e.B, e.C); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DumpTo writes the ring as JSONL to dir/flightrec-rank<R>-<tag>.jsonl
// and returns the path. It is what the fabric calls on crisis close.
func (r *Recorder) DumpTo(dir, tag string) (string, error) {
	if r == nil {
		return "", nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("flightrec-rank%d-%s.jsonl", r.Rank(), tag))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := r.WriteJSONL(f); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// Environment knobs (documented in docs/CONFIG.md).
const (
	// EnvDebugDir: when set, fabric workers bind a debug endpoint on an
	// ephemeral port and drop "<dir>/rank<R>.addr" files so harnesses can
	// scrape every rank post-run.
	EnvDebugDir = "REPRO_DEBUG_DIR"
	// EnvFlightDir: when set, fabric nodes dump their flight ring here as
	// JSONL on every crisis close.
	EnvFlightDir = "REPRO_FLIGHTREC_DIR"
	// EnvFlightEvents overrides the ring size (events, rounded up to a
	// power of two).
	EnvFlightEvents = "REPRO_FLIGHTREC_EVENTS"
	// EnvFlight disables ("0") or forces ("1") flight recording; fabric
	// nodes default to enabled.
	EnvFlight = "REPRO_FLIGHTREC"
)

// RecorderFromEnv builds rank's recorder honoring the env knobs:
// ring size from REPRO_FLIGHTREC_EVENTS, enabled by default unless
// REPRO_FLIGHTREC=0.
func RecorderFromEnv(rank int) *Recorder {
	size := 0
	if s := os.Getenv(EnvFlightEvents); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			size = v
		}
	}
	r := NewRecorder(rank, size)
	r.SetEnabled(os.Getenv(EnvFlight) != "0")
	return r
}

// failer is the slice of testing.TB the dump-on-failure hook needs.
type failer interface {
	Failed() bool
	Cleanup(func())
	Logf(format string, args ...any)
}

// DumpOnFailure registers a test cleanup that logs the flight ring when
// the test failed, so a red chaos run carries its own timeline.
func DumpOnFailure(t failer, r *Recorder) {
	t.Cleanup(func() {
		if !t.Failed() || r == nil {
			return
		}
		evs := r.Events()
		sort.Slice(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })
		for _, e := range evs {
			t.Logf("flightrec rank %d: ts=%d ev=%s a=%d b=%d c=%d", r.Rank(), e.TS, e.Code, e.A, e.B, e.C)
		}
	})
}
