package obs

import "testing"

func snapOf(h *Histogram) HistogramSnapshot {
	hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum(), Buckets: map[int]uint64{}}
	for k := 0; k < HistBuckets; k++ {
		if v := h.Bucket(k); v != 0 {
			hs.Buckets[k] = v
		}
	}
	return hs
}

func TestQuantileBounds(t *testing.T) {
	var h Histogram
	// 90 observations of ~100us, 9 of ~1000us, 1 of ~100000us: p50 must
	// land in 100's bucket, p99 in 1000's, p999 in 100000's. Buckets are
	// powers of two, so the quantile is the bucket's upper edge.
	for i := 0; i < 90; i++ {
		h.Observe(100)
	}
	for i := 0; i < 9; i++ {
		h.Observe(1000)
	}
	h.Observe(100000)
	hs := snapOf(&h)
	if got, want := hs.Quantile(0.5), uint64(127); got != want {
		t.Fatalf("p50 = %d, want %d", got, want)
	}
	if got, want := hs.Quantile(0.99), uint64(1023); got != want {
		t.Fatalf("p99 = %d, want %d", got, want)
	}
	if got, want := hs.Quantile(0.999), uint64(131071); got != want {
		t.Fatalf("p999 = %d, want %d", got, want)
	}
	if got := hs.Quantile(1); got != 131071 {
		t.Fatalf("p100 = %d, want 131071", got)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty HistogramSnapshot
	if got := empty.Quantile(0.99); got != 0 {
		t.Fatalf("empty quantile = %d, want 0", got)
	}
	var h Histogram
	h.Observe(0)
	h.Observe(0)
	if got := snapOf(&h).Quantile(0.5); got != 0 {
		t.Fatalf("all-zero quantile = %d, want 0", got)
	}
	h.Observe(^uint64(0))
	if got := snapOf(&h).Quantile(1); got != ^uint64(0) {
		t.Fatalf("max-value quantile = %d, want max", got)
	}
}

func TestHistogramDelta(t *testing.T) {
	var h Histogram
	h.Observe(100)
	h.Observe(100)
	before := snapOf(&h)
	h.Observe(100)
	h.Observe(5000)
	after := snapOf(&h)
	d := after.Delta(before)
	if d.Count != 2 || d.Sum != 5100 {
		t.Fatalf("delta count/sum = %d/%d, want 2/5100", d.Count, d.Sum)
	}
	if d.Buckets[7] != 1 || d.Buckets[13] != 1 || len(d.Buckets) != 2 {
		t.Fatalf("delta buckets = %v", d.Buckets)
	}
	// The window's p99 reflects only the new observations.
	if got, want := d.Quantile(0.99), uint64(8191); got != want {
		t.Fatalf("delta p99 = %d, want %d", got, want)
	}
}
