package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"sync"
)

// NewMux builds the debug endpoint for one rank:
//
//	/metrics     Prometheus text exposition of the registry
//	/flightrec   flight-recorder ring as JSONL
//	/debug/vars  expvar (process-wide vars + the registry snapshot)
//	/debug/pprof net/http/pprof
//
// reg and rec may be nil; the corresponding handlers then serve empty
// bodies.
func NewMux(reg *Registry, rec *Recorder) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if reg != nil {
			_ = reg.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/flightrec", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl")
		if rec != nil {
			_ = rec.WriteJSONL(w)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running debug endpoint.
type Server struct {
	Addr string // actual listen address (useful with ":0")
	srv  *http.Server
	ln   net.Listener
}

// Close shuts the listener down.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

var expvarMu sync.Mutex

// publishExpvar exposes the registry snapshot under /debug/vars as
// "obs" (or "obs_rank<R>"). expvar names are process-global and cannot
// be unpublished; the first registry to claim a name keeps it, which is
// the right call for the long-lived worker processes this serves.
func publishExpvar(reg *Registry) {
	if reg == nil {
		return
	}
	name := "obs"
	if reg.Rank() >= 0 {
		name = fmt.Sprintf("obs_rank%d", reg.Rank())
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvar.Get(name) == nil {
		expvar.Publish(name, expvar.Func(func() any { return reg.Snapshot() }))
	}
}

// Serve starts the debug endpoint on addr (for example "127.0.0.1:0")
// and returns once the listener is bound; requests are served on a
// background goroutine.
func Serve(addr string, reg *Registry, rec *Recorder) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen %s: %w", addr, err)
	}
	publishExpvar(reg)
	srv := &http.Server{Handler: NewMux(reg, rec)}
	go func() { _ = srv.Serve(ln) }()
	return &Server{Addr: ln.Addr().String(), srv: srv, ln: ln}, nil
}

// WriteAddrFile records a rank's debug address as <dir>/rank<R>.addr so
// a harness (or scripts/check_metrics.sh) can find every endpoint of a
// multi-process run. A replacement taking over the rank overwrites the
// victim's file.
func WriteAddrFile(dir string, rank int, addr string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, fmt.Sprintf("rank%d.addr", rank)), []byte(addr+"\n"), 0o644)
}
