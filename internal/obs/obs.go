// Package obs is the runtime's observability layer: a per-rank metrics
// registry of lock-free counters, gauges, and power-of-two-bucket latency
// histograms; a fixed-size flight recorder of binary events; and
// recovery-timeline spans that decompose a crisis into per-stage
// durations. The design constraint throughout is zero steady-state
// allocation: hot paths pre-resolve their instruments once (a map lookup
// at construction, a plain atomic add afterwards), the flight recorder's
// disabled fast path is a single atomic load, and recording an event
// writes into a preallocated ring. docs/OBSERVABILITY.md is the catalog
// of metric names, the event schema, and the span model; the debug HTTP
// endpoint in this package serves all of it live.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing lock-free counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a lock-free instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// HistBuckets is the number of histogram buckets: bucket k counts the
// observations v with bits.Len64(v) == k, i.e. v in [2^(k-1), 2^k);
// bucket 0 counts exact zeros. Power-of-two bucketing costs one BSR per
// observation and spans the full uint64 range, which is all a latency
// tail needs.
const HistBuckets = 65

// Histogram is a lock-free power-of-two-bucket histogram. Observations
// are dimensionless uint64s; by convention the fabric feeds microseconds
// (the ".us" name suffix in the catalog).
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [HistBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bits.Len64(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveSince records the microseconds elapsed since t0 and returns the
// elapsed duration.
func (h *Histogram) ObserveSince(t0 time.Time) time.Duration {
	d := time.Since(t0)
	h.Observe(uint64(d / time.Microsecond))
	return d
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Bucket returns the count in bucket k.
func (h *Histogram) Bucket(k int) uint64 { return h.buckets[k].Load() }

// Registry is one rank's metric namespace: dotted stable names (for
// example "fabric.flush.us") resolved once to their instrument. Lookup
// takes a mutex and is meant for construction and collection; hot paths
// hold the returned pointer.
type Registry struct {
	rank int

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	order    []string // registration order, for deterministic export
	kinds    map[string]byte
}

// New returns an empty registry labeled with rank (use -1 for a
// process-wide registry with no rank label).
func New(rank int) *Registry {
	return &Registry{
		rank:     rank,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		kinds:    make(map[string]byte),
	}
}

// Rank returns the rank label (-1 if unlabeled).
func (r *Registry) Rank() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rank
}

// SetRank relabels the registry. A fabric worker's rank is assigned by
// the join handshake, after the registry already exists; the fabric
// relabels an unlabeled registry the moment the rank is known.
func (r *Registry) SetRank(rank int) {
	r.mu.Lock()
	r.rank = rank
	r.mu.Unlock()
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '.', c == '_':
		default:
			return false
		}
	}
	return true
}

func (r *Registry) register(name string, kind byte) {
	if !validName(name) {
		panic("obs: invalid metric name " + name)
	}
	if k, dup := r.kinds[name]; dup {
		if k != kind {
			panic("obs: metric " + name + " registered with two kinds")
		}
		return
	}
	r.kinds[name] = kind
	r.order = append(r.order, name)
}

// Counter returns the counter registered under name, creating it on
// first use. Idempotent; panics if name is already a gauge or histogram.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.register(name, 'c')
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.register(name, 'g')
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.register(name, 'h')
	h := &Histogram{}
	r.hists[name] = h
	return h
}

// Names returns every registered dotted name, sorted. The drift gate
// (scripts/check_metrics.sh) compares this set — rendered through the
// Prometheus endpoint — against the catalog in docs/OBSERVABILITY.md.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]string(nil), r.order...)
	sort.Strings(out)
	return out
}

// HistogramSnapshot is one histogram's state at snapshot time.
type HistogramSnapshot struct {
	Count, Sum uint64
	// Buckets maps bucket index (bits.Len64 of the value) to count;
	// empty buckets are omitted.
	Buckets map[int]uint64
}

// Mean returns Sum/Count, or 0 with no observations.
func (hs HistogramSnapshot) Mean() float64 {
	if hs.Count == 0 {
		return 0
	}
	return float64(hs.Sum) / float64(hs.Count)
}

// Snapshot is a point-in-time copy of a registry, safe to read while the
// instruments keep moving.
type Snapshot struct {
	Rank       int
	Counters   map[string]uint64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Snapshot copies every instrument's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Rank:       r.rank,
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for n, c := range r.counters {
		s.Counters[n] = c.Load()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Load()
	}
	for n, h := range r.hists {
		hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum(), Buckets: map[int]uint64{}}
		for k := 0; k < HistBuckets; k++ {
			if v := h.Bucket(k); v != 0 {
				hs.Buckets[k] = v
			}
		}
		s.Histograms[n] = hs
	}
	return s
}

// PromName converts a dotted metric name to its Prometheus rendering
// (dots become underscores).
func PromName(name string) string {
	b := []byte(name)
	for i, c := range b {
		if c == '.' {
			b[i] = '_'
		}
	}
	return string(b)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format. Histograms are cumulative with le bounds at 2^k-1 (only
// occupied buckets are emitted; the +Inf bucket always is). A rank >= 0
// becomes a {rank="r"} label on every sample.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	r.mu.Lock()
	order := append([]string(nil), r.order...)
	kinds := make(map[string]byte, len(r.kinds))
	for k, v := range r.kinds {
		kinds[k] = v
	}
	r.mu.Unlock()

	label := ""
	if snap.Rank >= 0 {
		label = fmt.Sprintf("{rank=%q}", fmt.Sprint(snap.Rank))
	}
	lbl := func(extra string) string {
		if extra == "" {
			return label
		}
		if snap.Rank >= 0 {
			return fmt.Sprintf("{rank=%q,%s}", fmt.Sprint(snap.Rank), extra)
		}
		return "{" + extra + "}"
	}
	for _, name := range order {
		pn := PromName(name)
		switch kinds[name] {
		case 'c':
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s%s %d\n", pn, pn, label, snap.Counters[name]); err != nil {
				return err
			}
		case 'g':
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s%s %d\n", pn, pn, label, snap.Gauges[name]); err != nil {
				return err
			}
		case 'h':
			hs := snap.Histograms[name]
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
				return err
			}
			idx := make([]int, 0, len(hs.Buckets))
			for k := range hs.Buckets {
				idx = append(idx, k)
			}
			sort.Ints(idx)
			cum := uint64(0)
			for _, k := range idx {
				cum += hs.Buckets[k]
				// Bucket k holds v with bits.Len64(v)==k: v <= 2^k - 1.
				var le uint64
				if k > 0 {
					le = 1<<uint(k) - 1
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", pn, lbl(fmt.Sprintf("le=%q", fmt.Sprint(le))), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", pn, lbl(`le="+Inf"`), hs.Count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %d\n%s_count%s %d\n", pn, label, hs.Sum, pn, label, hs.Count); err != nil {
				return err
			}
		}
	}
	return nil
}
