package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Scrape fetches and parses the Prometheus endpoint of one debug
// address ("host:port" or a full URL). The chaos harness calls this for
// every rank post-run.
func Scrape(addr string) (map[string]float64, error) {
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	url = strings.TrimSuffix(url, "/") + "/metrics"
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("obs: scrape %s: status %s", url, resp.Status)
	}
	return ParseProm(resp.Body)
}

// ParseProm parses Prometheus text exposition into a flat map of sample
// name (labels stripped, _bucket/_sum/_count suffixes kept) to value.
// Samples that differ only in labels are summed.
func ParseProm(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// "name{labels} value" or "name value".
		name := line
		if i := strings.IndexByte(line, '{'); i >= 0 {
			name = line[:i]
		} else if i := strings.IndexByte(line, ' '); i >= 0 {
			name = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			return nil, fmt.Errorf("obs: bad sample %q: %w", line, err)
		}
		out[name] += v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// BaseNames reduces a ParseProm map to the sorted set of metric base
// names: histogram series collapse (_bucket/_sum/_count stripped). This
// is the name set the drift gate diffs against the docs catalog.
func BaseNames(samples map[string]float64) []string {
	set := make(map[string]bool)
	for name := range samples {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if s := strings.TrimSuffix(name, suf); s != name {
				name = s
				break
			}
		}
		set[name] = true
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// FormatReport renders per-rank scrapes as a per-section report: metrics
// group by their first name segment (fabric, crisis, tcp, ...), ranks
// become columns. Zero-valued rows are elided to keep chaos logs
// readable.
func FormatReport(byRank map[int]map[string]float64) string {
	ranks := make([]int, 0, len(byRank))
	for r := range byRank {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)

	names := make(map[string]bool)
	for _, m := range byRank {
		for n := range m {
			names[n] = true
		}
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	var b strings.Builder
	fmt.Fprintf(&b, "%-34s", "metric")
	for _, r := range ranks {
		fmt.Fprintf(&b, " %12s", fmt.Sprintf("rank%d", r))
	}
	b.WriteByte('\n')
	section := ""
	for _, n := range sorted {
		nz := false
		for _, r := range ranks {
			if byRank[r][n] != 0 {
				nz = true
				break
			}
		}
		if !nz {
			continue
		}
		if s, _, _ := strings.Cut(n, "_"); s != section {
			section = s
			fmt.Fprintf(&b, "-- %s --\n", section)
		}
		fmt.Fprintf(&b, "%-34s", n)
		for _, r := range ranks {
			v, ok := byRank[r][n]
			if !ok {
				fmt.Fprintf(&b, " %12s", "-")
				continue
			}
			fmt.Fprintf(&b, " %12s", strconv.FormatFloat(v, 'g', -1, 64))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
