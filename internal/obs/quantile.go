package obs

// Quantile and Delta turn HistogramSnapshots into the windowed tail
// statistics of the soak report (internal/soak): the harness snapshots a
// latency histogram at window boundaries (kill, recovered), subtracts,
// and reads the p50/p99/p999 of just that window.

// Quantile returns an upper bound of the q-quantile (0 < q <= 1) of the
// snapshot: the inclusive upper edge 2^k-1 of the first bucket at which
// the cumulative count reaches ceil(q * Count). Power-of-two buckets
// bound the estimate to within 2x of the true value, which is the
// resolution the bucketing chose for tails; zero observations yield 0.
func (hs HistogramSnapshot) Quantile(q float64) uint64 {
	if hs.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	need := uint64(q * float64(hs.Count))
	if float64(need) < q*float64(hs.Count) || need == 0 {
		need++ // ceil, and at least one observation
	}
	var cum uint64
	for k := 0; k < HistBuckets; k++ {
		cum += hs.Buckets[k]
		if cum >= need {
			if k == 0 {
				return 0 // bucket 0 holds exact zeros
			}
			if k >= 64 {
				return ^uint64(0)
			}
			return 1<<uint(k) - 1
		}
	}
	return ^uint64(0)
}

// Delta returns the histogram of the observations made after prev was
// taken: counts, sum, and per-bucket counts all subtracted. prev must be
// an earlier snapshot of the same histogram (counters are monotone);
// buckets that did not move are omitted, like Registry.Snapshot does.
func (hs HistogramSnapshot) Delta(prev HistogramSnapshot) HistogramSnapshot {
	d := HistogramSnapshot{
		Count:   hs.Count - prev.Count,
		Sum:     hs.Sum - prev.Sum,
		Buckets: make(map[int]uint64),
	}
	for k, v := range hs.Buckets {
		if dv := v - prev.Buckets[k]; dv != 0 {
			d.Buckets[k] = dv
		}
	}
	return d
}
