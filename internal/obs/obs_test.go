package obs

import (
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New(3)
	c := r.Counter("fabric.batch.sent")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("fabric.batch.sent") != c {
		t.Fatal("Counter not idempotent")
	}
	g := r.Gauge("fabric.members.alive")
	g.Set(4)
	g.Add(-1)
	if got := g.Load(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New(-1)
	h := r.Histogram("x.us")
	for _, v := range []uint64{0, 1, 2, 3, 4, 1023, 1024} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if h.Sum() != 0+1+2+3+4+1023+1024 {
		t.Fatalf("sum = %d", h.Sum())
	}
	// bits.Len64: 0→b0, 1→b1, 2,3→b2, 4→b3, 1023→b10, 1024→b11.
	want := map[int]uint64{0: 1, 1: 1, 2: 2, 3: 1, 10: 1, 11: 1}
	for k, n := range want {
		if got := h.Bucket(k); got != n {
			t.Fatalf("bucket[%d] = %d, want %d", k, got, n)
		}
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind conflict")
		}
	}()
	r := New(0)
	r.Counter("a.b")
	r.Gauge("a.b")
}

func TestPrometheusRoundTrip(t *testing.T) {
	r := New(2)
	r.Counter("fabric.batch.sent").Add(7)
	r.Gauge("fabric.phase").Set(5)
	h := r.Histogram("fabric.flush.us")
	h.Observe(3)
	h.Observe(900)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		`fabric_batch_sent{rank="2"} 7`,
		`fabric_phase{rank="2"} 5`,
		`fabric_flush_us_sum{rank="2"} 903`,
		`fabric_flush_us_count{rank="2"} 2`,
		`fabric_flush_us_bucket{rank="2",le="+Inf"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, text)
		}
	}

	parsed, err := ParseProm(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if parsed["fabric_batch_sent"] != 7 {
		t.Fatalf("parsed counter = %v", parsed["fabric_batch_sent"])
	}
	if parsed["fabric_flush_us_sum"] != 903 {
		t.Fatalf("parsed sum = %v", parsed["fabric_flush_us_sum"])
	}
	base := BaseNames(parsed)
	want := []string{"fabric_batch_sent", "fabric_flush_us", "fabric_phase"}
	if len(base) != len(want) {
		t.Fatalf("base names = %v, want %v", base, want)
	}
	for i := range want {
		if base[i] != want[i] {
			t.Fatalf("base names = %v, want %v", base, want)
		}
	}
}

func TestFlightRecorder(t *testing.T) {
	fr := NewRecorder(1, 4)
	fr.Record(EvCondemn, 9, 9, 9) // disabled: dropped
	fr.SetEnabled(true)
	for i := int64(0); i < 6; i++ {
		fr.Record(EvFrameSend, i, 0, 0)
	}
	evs := fr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(evs))
	}
	if evs[0].A != 2 || evs[3].A != 5 {
		t.Fatalf("ring order wrong: %+v", evs)
	}
	if fr.Total() != 6 {
		t.Fatalf("total = %d, want 6", fr.Total())
	}
	var b strings.Builder
	if err := fr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(b.String(), "\n"); n != 4 {
		t.Fatalf("jsonl lines = %d, want 4", n)
	}
	if !strings.Contains(b.String(), `"ev":"frame.send"`) {
		t.Fatalf("jsonl missing event name: %s", b.String())
	}

	// A nil recorder is valid and inert everywhere.
	var nilrec *Recorder
	nilrec.Record(EvCondemn, 0, 0, 0)
	if nilrec.Enabled() || nilrec.Events() != nil {
		t.Fatal("nil recorder not inert")
	}
}

func TestSpanFloorsAtOneMicrosecond(t *testing.T) {
	r := New(0)
	fr := NewRecorder(0, 8)
	fr.SetEnabled(true)
	h := r.Histogram(CrisisQuiesce.HistName())
	sp := StartSpan(h, fr, EvCrisis, int64(CrisisQuiesce), 3)
	sp.End()
	if h.Count() != 1 || h.Sum() == 0 {
		t.Fatalf("span histogram count=%d sum=%d, want nonzero sum", h.Count(), h.Sum())
	}
	evs := fr.Events()
	if len(evs) != 1 || evs[0].Code != EvCrisis || evs[0].A != int64(CrisisQuiesce) || evs[0].C < 1 {
		t.Fatalf("span event = %+v", evs)
	}
}

// The satellite alloc pins: counter increment, histogram observe, and a
// disabled flight-recorder event must cost zero allocations — these are
// the exact operations the tcp flush and fabric fBatch hot paths run.
func TestZeroAllocInstruments(t *testing.T) {
	r := New(0)
	c := r.Counter("hot.counter")
	h := r.Histogram("hot.us")
	off := NewRecorder(0, 16)
	on := NewRecorder(0, 16)
	on.SetEnabled(true)

	cases := []struct {
		name string
		f    func()
	}{
		{"counter-inc", func() { c.Inc() }},
		{"histogram-observe", func() { h.Observe(17) }},
		{"flight-disabled", func() { off.Record(EvFrameSend, 1, 2, 3) }},
		{"flight-enabled", func() { on.Record(EvFrameSend, 1, 2, 3) }},
		{"span", func() { StartSpan(h, off, EvCrisis, 0, 0).End() }},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(200, tc.f); n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, n)
		}
	}
}

// Snapshot/WritePrometheus race against concurrent increments; the race
// job runs this under -race.
func TestConcurrentSnapshotWhileIncrement(t *testing.T) {
	r := New(0)
	c := r.Counter("race.counter")
	h := r.Histogram("race.us")
	fr := NewRecorder(0, 64)
	fr.SetEnabled(true)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(42)
					fr.Record(EvGsync, 1, 0, 0)
				}
			}
		}()
	}
	deadline := time.Now().Add(50 * time.Millisecond)
	for time.Now().Before(deadline) {
		_ = r.Snapshot()
		_ = r.WritePrometheus(&strings.Builder{})
		_ = fr.Events()
		r.Counter("race.late") // registration racing reads
	}
	close(stop)
	wg.Wait()
	if c.Load() == 0 || h.Count() == 0 {
		t.Fatal("no concurrent increments observed")
	}
}

func TestServeEndpoints(t *testing.T) {
	r := New(4)
	r.Counter("fabric.batch.sent").Add(11)
	fr := NewRecorder(4, 16)
	fr.SetEnabled(true)
	fr.Record(EvCondemn, 2, 1, 0)

	srv, err := Serve("127.0.0.1:0", r, fr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	samples, err := Scrape(srv.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if samples["fabric_batch_sent"] != 11 {
		t.Fatalf("scraped %v", samples)
	}

	for path, want := range map[string]string{
		"/flightrec":  `"ev":"condemn"`,
		"/debug/vars": "cmdline",
	} {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1<<16)
		n, _ := resp.Body.Read(buf)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(buf[:n]), want) {
			t.Fatalf("%s missing %q: %s", path, want, buf[:n])
		}
	}
}

func TestFormatReport(t *testing.T) {
	rep := FormatReport(map[int]map[string]float64{
		0: {"fabric_batch_sent": 3, "crisis_total_us_sum": 120},
		1: {"fabric_batch_sent": 5},
	})
	for _, want := range []string{"-- fabric --", "-- crisis --", "fabric_batch_sent", "rank0", "rank1"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}
