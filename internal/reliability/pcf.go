// Package reliability implements the analytic model of the probability of a
// catastrophic failure (P_cf) from §5.2 of the paper, Eqs. (7)–(9): given a
// failure-domain hierarchy, per-level concurrent-failure distributions, a
// process-group size |G| with m=1 checksum processes (XOR coding), and a
// t-awareness level n, it computes the per-day probability that some group
// suffers two or more concurrent member losses, forcing a full restart.
package reliability

import (
	"errors"
	"fmt"

	"repro/internal/failure"
	"repro/internal/machine"
)

// Model holds the parameters of one P_cf evaluation.
type Model struct {
	// FDH is the hardware hierarchy (H_j element counts).
	FDH machine.FDH
	// PDFs are the per-level simultaneous-failure distributions;
	// PDFs[j-1] corresponds to hierarchy level j.
	PDFs []failure.PDF
	// GroupSize is |G|, the number of processes per group including the
	// checksum process.
	GroupSize int
	// TAwareLevel is n: placement is topology-aware at levels 1..n. Zero
	// means no topology awareness (every failure is catastrophic in the
	// worst case).
	TAwareLevel int
	// MaxConcurrent caps the x_j summation; zero means sum to H_j.
	MaxConcurrent int
}

// Validate checks the model parameters.
func (m Model) Validate() error {
	if err := m.FDH.Validate(); err != nil {
		return err
	}
	if len(m.PDFs) < m.FDH.Levels() {
		return fmt.Errorf("reliability: %d PDFs for %d levels", len(m.PDFs), m.FDH.Levels())
	}
	if m.GroupSize < 2 {
		return errors.New("reliability: group size must be at least 2")
	}
	if m.TAwareLevel < 0 || m.TAwareLevel > m.FDH.Levels() {
		return fmt.Errorf("reliability: t-awareness level %d out of range 0..%d",
			m.TAwareLevel, m.FDH.Levels())
	}
	return nil
}

// condCF returns P_j(x_j,cf | x_j): the worst-case probability that x_j
// concurrent failures at level j are catastrophic, per Eq. (8). Using the
// identity C(H-2, x-2)/C(H, x) = x(x-1)/(H(H-1)), the full term
//
//	D_j * C(|G|,2) * C(H_j-2, x_j-2) / C(H_j, x_j)
//
// reduces to D_j * |G|(|G|-1)/2 * x(x-1)/(H(H-1)), clamped to [0,1].
func (m Model) condCF(j, x int) float64 {
	h := float64(m.FDH.Count(j))
	g := float64(m.GroupSize)
	if m.GroupSize > m.FDH.Count(j) {
		// Eq. 6 is unsatisfiable at this level: the placement cannot be
		// t-aware here, so conservatively any failure is catastrophic.
		return 1
	}
	if x < 2 {
		// With m=1 a single element loss never kills two members of a
		// t-aware group.
		return 0
	}
	d := float64(m.FDH.Count(j) / m.GroupSize) // D_j = floor(H_j / |G|)
	p := d * g * (g - 1) / 2 * float64(x) * float64(x-1) / (h * (h - 1))
	if p > 1 {
		return 1
	}
	return p
}

// LevelTerm returns level j's contribution to P_cf: the inner sum over x_j
// of P_j(x_j) * P_j(x_j,cf|x_j), with the conditional probability equal to 1
// beyond the t-awareness level (Eq. 9).
func (m Model) LevelTerm(j int) float64 {
	hj := m.FDH.Count(j)
	max := hj
	if m.MaxConcurrent > 0 && m.MaxConcurrent < max {
		max = m.MaxConcurrent
	}
	sum := 0.0
	for x := 1; x <= max; x++ {
		px := m.PDFs[j-1].At(x)
		if j <= m.TAwareLevel {
			px *= m.condCF(j, x)
		}
		sum += px
	}
	return sum
}

// Pcf evaluates Eq. (9): the per-day probability of a catastrophic failure.
func (m Model) Pcf() (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	total := 0.0
	for j := 1; j <= m.FDH.Levels(); j++ {
		total += m.LevelTerm(j)
	}
	if total > 1 {
		total = 1
	}
	return total, nil
}

// Point is one sample of a P_cf curve.
type Point struct {
	CHPercent float64 // |CH| as a percentage of N
	NumCH     int     // number of checksum processes (= number of groups, m=1)
	GroupSize int     // |G|
	Pcf       float64
}

// Curve computes P_cf for |CH| swept from 1% to maxPercent% of N compute
// processes at the given t-awareness level (0 = no-topo), reproducing one
// series of Fig. 10c. Steps sets the number of samples.
func Curve(fdh machine.FDH, pdfs []failure.PDF, n int, tAwareLevel int, maxPercent float64, steps int) ([]Point, error) {
	if steps < 2 {
		return nil, errors.New("reliability: need at least 2 curve steps")
	}
	pts := make([]Point, 0, steps)
	for i := 0; i < steps; i++ {
		pct := 1 + (maxPercent-1)*float64(i)/float64(steps-1)
		numCH := int(float64(n) * pct / 100)
		if numCH < 1 {
			numCH = 1
		}
		grouping, err := machine.NewGrouping(n, numCH, 1)
		if err != nil {
			return nil, err
		}
		mdl := Model{
			FDH:         fdh,
			PDFs:        pdfs,
			GroupSize:   grouping.GroupSize(),
			TAwareLevel: tAwareLevel,
		}
		p, err := mdl.Pcf()
		if err != nil {
			return nil, err
		}
		pts = append(pts, Point{CHPercent: pct, NumCH: numCH, GroupSize: grouping.GroupSize(), Pcf: p})
	}
	return pts, nil
}
