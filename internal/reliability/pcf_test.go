package reliability

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/failure"
	"repro/internal/machine"
)

func model(groupSize, level int) Model {
	return Model{
		FDH:         machine.TSUBAME2(),
		PDFs:        failure.TSUBAMEPDFs(),
		GroupSize:   groupSize,
		TAwareLevel: level,
	}
}

func TestValidate(t *testing.T) {
	m := model(21, 1)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := m
	bad.GroupSize = 1
	if err := bad.Validate(); err == nil {
		t.Error("accepted group size 1")
	}
	bad = m
	bad.TAwareLevel = 9
	if err := bad.Validate(); err == nil {
		t.Error("accepted out-of-range t-awareness level")
	}
	bad = m
	bad.PDFs = bad.PDFs[:2]
	if err := bad.Validate(); err == nil {
		t.Error("accepted too few PDFs")
	}
}

func TestNoTopoIndependentOfGroupSize(t *testing.T) {
	// Without t-awareness every failure is catastrophic, so P_cf must not
	// depend on |CH| (the flat no-topo line of Fig. 10c).
	p1, err := model(5, 0).Pcf()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := model(500, 0).Pcf()
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatalf("no-topo P_cf varies with group size: %g vs %g", p1, p2)
	}
	// And it equals the plain sum of all failure probabilities.
	want := 0.0
	fdh := machine.TSUBAME2()
	for j := 1; j <= fdh.Levels(); j++ {
		for x := 1; x <= fdh.Count(j); x++ {
			want += failure.TSUBAMEPDFs()[j-1].At(x)
		}
	}
	if math.Abs(p1-want) > 1e-15 {
		t.Fatalf("no-topo P_cf = %g, want %g", p1, want)
	}
}

func TestTAwarenessImproves(t *testing.T) {
	// Higher t-awareness levels must monotonically lower P_cf (Fig. 10c).
	prev := math.Inf(1)
	for level := 0; level <= 4; level++ {
		p, err := model(21, level).Pcf()
		if err != nil {
			t.Fatal(err)
		}
		if p > prev {
			t.Errorf("P_cf at level %d (%g) exceeds level %d (%g)", level, p, level-1, prev)
		}
		prev = p
	}
}

func TestTAwareOrdersOfMagnitude(t *testing.T) {
	// The paper: "all t-aware schemes are 1-3 orders of magnitude more
	// resilient than no-topo". With |CH| = 5% of 4000 CMs, |G| = 21.
	noTopo, err := model(21, 0).Pcf()
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := model(21, 1).Pcf()
	if err != nil {
		t.Fatal(err)
	}
	if nodes >= noTopo/10 {
		t.Errorf("node t-awareness only improved P_cf from %g to %g (< 10x)", noTopo, nodes)
	}
	// And switch-level awareness beats node-level by a noticeable factor
	// (the paper reports ~4x at |CH| = 5% N).
	switches, err := model(21, 3).Pcf()
	if err != nil {
		t.Fatal(err)
	}
	ratio := nodes / switches
	if ratio < 1.5 || ratio > 50 {
		t.Errorf("nodes/switches P_cf ratio = %g, expected a few x", ratio)
	}
}

func TestSingleFailureNeverCatastrophicWhenTAware(t *testing.T) {
	// With m=1 and t-aware placement, one element failure kills at most one
	// group member; condCF(j, 1) must be zero at feasible levels.
	m := model(21, 4)
	for j := 1; j <= 4; j++ {
		if got := m.condCF(j, 1); got != 0 {
			t.Errorf("condCF(%d, 1) = %g, want 0", j, got)
		}
	}
}

func TestCondCFClamped(t *testing.T) {
	m := model(21, 4)
	prop := func(jRaw, xRaw uint8) bool {
		j := int(jRaw)%4 + 1
		x := int(xRaw)%m.FDH.Count(j) + 1
		p := m.condCF(j, x)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestCondCFInfeasibleLevel(t *testing.T) {
	// |G| = 101 > 44 racks: rack-level t-awareness impossible, the model
	// must fall back to "any failure is catastrophic".
	m := model(101, 4)
	if got := m.condCF(4, 1); got != 1 {
		t.Fatalf("condCF at infeasible level = %g, want 1", got)
	}
}

func TestMoreChecksumsLowerPcf(t *testing.T) {
	// Growing |CH| (shrinking |G|) lowers P_cf until the exponential tails
	// dominate — the dominant trend of Fig. 10c.
	pSmallGroups, err := model(11, 1).Pcf() // |CH| = 10% of N
	if err != nil {
		t.Fatal(err)
	}
	pBigGroups, err := model(41, 1).Pcf() // |CH| = 2.5% of N
	if err != nil {
		t.Fatal(err)
	}
	if pSmallGroups >= pBigGroups {
		t.Errorf("P_cf(|G|=11) = %g not below P_cf(|G|=41) = %g", pSmallGroups, pBigGroups)
	}
}

func TestCurveShape(t *testing.T) {
	pts, err := Curve(machine.TSUBAME2(), failure.TSUBAMEPDFs(), 4000, 1, 20, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 10 {
		t.Fatalf("got %d points, want 10", len(pts))
	}
	if pts[0].CHPercent != 1 || pts[len(pts)-1].CHPercent != 20 {
		t.Fatalf("curve endpoints wrong: %v .. %v", pts[0], pts[len(pts)-1])
	}
	// P_cf decreases from the first to the last point.
	if pts[len(pts)-1].Pcf >= pts[0].Pcf {
		t.Errorf("curve not decreasing: %g .. %g", pts[0].Pcf, pts[len(pts)-1].Pcf)
	}
	for _, p := range pts {
		if p.Pcf < 0 || p.Pcf > 1 {
			t.Fatalf("P_cf out of range: %+v", p)
		}
	}
}

func TestCurveStrategyOrdering(t *testing.T) {
	// At every sampled |CH|, a higher t-awareness level gives lower or
	// equal P_cf: the strict ordering of the Fig. 10c series.
	var curves [5][]Point
	for lvl := 0; lvl <= 4; lvl++ {
		pts, err := Curve(machine.TSUBAME2(), failure.TSUBAMEPDFs(), 4000, lvl, 20, 8)
		if err != nil {
			t.Fatal(err)
		}
		curves[lvl] = pts
	}
	for i := range curves[0] {
		for lvl := 1; lvl <= 4; lvl++ {
			if curves[lvl][i].Pcf > curves[lvl-1][i].Pcf+1e-18 {
				t.Errorf("at |CH|=%.1f%%: level %d P_cf %g exceeds level %d P_cf %g",
					curves[lvl][i].CHPercent, lvl, curves[lvl][i].Pcf, lvl-1, curves[lvl-1][i].Pcf)
			}
		}
	}
}

func TestPcfProperty(t *testing.T) {
	// Property: P_cf is always a probability, for arbitrary group sizes and
	// levels.
	prop := func(gRaw uint16, lvlRaw uint8) bool {
		gs := int(gRaw)%1000 + 2
		lvl := int(lvlRaw) % 5
		p, err := model(gs, lvl).Pcf()
		if err != nil {
			return false
		}
		return p >= 0 && p <= 1 && !math.IsNaN(p)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
