package resilience

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/ftrma"
	"repro/internal/rma"
)

// CorrelatedConfig describes a correlated-failure simulation: ranks are
// placed on nodes, and a hardware failure takes out a whole node — every
// rank on it — at once. This is the dynamic counterpart of the paper's
// t-awareness study (§5.1): whether a node loss is survivable depends on
// how process groups map onto nodes.
type CorrelatedConfig struct {
	// Nodes and RanksPerNode define the machine: N = Nodes*RanksPerNode.
	Nodes        int
	RanksPerNode int
	// Iters is the number of workload iterations.
	Iters int
	// NodeMTBF is the per-system mean time between node failures in
	// virtual seconds.
	NodeMTBF float64
	// Seed fixes failure times and victims.
	Seed int64
	// TAware selects the placement: true spreads each group across nodes
	// (no two members share a node, Eq. 6); false packs group members
	// onto the same node — the worst case of Fig. 8.
	TAware bool
	// Groups is the number of process groups (m = 1, XOR parity).
	Groups int
	// CheckpointInterval is the coordinated-checkpoint interval in
	// iterations' worth of virtual time (approximate); node-failure
	// recovery rolls back to the last coordinated checkpoint.
	CheckpointEveryIters int
	// PeerParityHosts places each group's parity shards on elected peer
	// ranks (ftrma's ElectParityHost policy) instead of the paper's
	// infallible checksum processes. The cluster and fabric runtimes host
	// parity this way, so predictions meant to match a real cluster run
	// must set it: a node loss can then take a group's member copy and
	// the parity guarding it down together — the §5.1 catastrophic case —
	// which infallible-checksum simulations never see.
	PeerParityHosts bool
}

// Verdict classifies the recovery one fail-stop crash admits.
type Verdict int

const (
	// VerdictCausal: a single rank died; its mutual logs survive on the
	// peers, so causal replay restores it without rollback.
	VerdictCausal Verdict = iota
	// VerdictFallback: multiple ranks died at once (mutual logs gone),
	// but every group can still reconstruct — the coordinated rollback
	// survives.
	VerdictFallback
	// VerdictCatastrophic: some group lost more state than its parity
	// covers; no software recovery exists.
	VerdictCatastrophic
)

func (v Verdict) String() string {
	switch v {
	case VerdictCausal:
		return "causal"
	case VerdictFallback:
		return "fallback"
	case VerdictCatastrophic:
		return "catastrophic"
	}
	return fmt.Sprintf("verdict(%d)", int(v))
}

// CorrelatedReport summarizes a correlated-failure simulation.
type CorrelatedReport struct {
	NodeFailures     int
	Rollbacks        int  // successful coordinated fallbacks
	Catastrophic     bool // a group lost more members than its parity covers
	RedoneIterations int
	Verified         bool
	Efficiency       float64
}

// rankOfSlot maps (node, slot) to a rank under the chosen placement. The
// ftrma grouping is fixed (round-robin: rank r is in group r mod Groups), so
// placement controls correlation:
//   - t-aware: consecutive ranks per node — a node holds ranks of
//     RanksPerNode *different* groups (when Groups >= RanksPerNode);
//   - not t-aware: a node holds ranks that are Nodes apart; when Groups
//     divides Nodes every node is group-pure, so one node failure kills
//     several members of one group.
func (c CorrelatedConfig) rankOfSlot(node, slot int) int {
	if c.TAware {
		return node*c.RanksPerNode + slot
	}
	return node + slot*c.Nodes
}

// RankOfSlot exposes the placement's (node, slot) -> rank mapping: the
// cluster chaos harness derives its correlated whole-node kill schedules
// from the same mapping the simulation uses.
func (c CorrelatedConfig) RankOfSlot(node, slot int) int { return c.rankOfSlot(node, slot) }

// Validate checks the configuration.
func (c CorrelatedConfig) Validate() error {
	n := c.Nodes * c.RanksPerNode
	switch {
	case c.Nodes < 2 || c.RanksPerNode < 1:
		return errors.New("resilience: need at least 2 nodes")
	case c.Iters < 1:
		return errors.New("resilience: need at least 1 iteration")
	case c.Groups < 1 || c.Groups > n:
		return fmt.Errorf("resilience: %d groups for %d ranks", c.Groups, n)
	case c.TAware && c.Groups < c.RanksPerNode:
		return errors.New("resilience: t-aware placement needs Groups >= RanksPerNode")
	case !c.TAware && c.Nodes%c.Groups != 0:
		return errors.New("resilience: non-t-aware correlation needs Groups dividing Nodes")
	}
	return nil
}

// SimulateCorrelated runs the workload under whole-node failures.
func SimulateCorrelated(cfg CorrelatedConfig) (CorrelatedReport, error) {
	if err := cfg.Validate(); err != nil {
		return CorrelatedReport{}, err
	}
	n := cfg.Nodes * cfg.RanksPerNode

	ref := rma.NewWorld(rma.Config{N: n, WindowWords: windowWords(n)})
	ref.Run(func(r int) {
		for it := 0; it < cfg.Iters; it++ {
			step(ref.Proc(r), it)
		}
	})
	ideal := ref.MaxTime()

	w := rma.NewWorld(rma.Config{N: n, WindowWords: windowWords(n)})
	ftCfg := ftrma.Config{
		Groups: cfg.Groups, ChecksumsPerGroup: 1,
		Log:             ftrma.LogConfig{Puts: true},
		PeerParityHosts: cfg.PeerParityHosts,
	}
	if cfg.CheckpointEveryIters > 0 {
		// Calibrate the fixed interval from the fault-free iteration time.
		ftCfg.FixedInterval = ideal / float64(cfg.Iters) * float64(cfg.CheckpointEveryIters) * 0.99
	}
	sys, err := ftrma.NewSystem(w, ftCfg)
	if err != nil {
		return CorrelatedReport{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	nextFailure := failureTime(rng, cfg.NodeMTBF, 0)

	rep := CorrelatedReport{}
	it := 0
	for it < cfg.Iters {
		cur := it
		w.Run(func(r int) { step(sys.Process(r), cur) })
		it++
		if cfg.NodeMTBF > 0 && it < cfg.Iters && w.MaxTime() >= nextFailure {
			node := rng.Intn(cfg.Nodes)
			for slot := 0; slot < cfg.RanksPerNode; slot++ {
				w.Kill(cfg.rankOfSlot(node, slot))
			}
			rep.NodeFailures++
			// A whole node died: causal recovery is impossible (the
			// victims' mutual logs are gone); Recover detects the
			// concurrent failures and rolls back to the coordinated
			// level, which survives iff no group lost 2+ members.
			res, err := sys.Recover(cfg.rankOfSlot(node, 0))
			switch {
			case errors.Is(err, ftrma.ErrFallback):
				rep.Rollbacks++
				resume := res.Proc.GNC()
				if resume > it {
					return rep, fmt.Errorf("resilience: rollback to the future")
				}
				rep.RedoneIterations += it - resume
				it = resume
			case err != nil:
				// Catastrophic: the parity could not reconstruct the
				// group (Fig. 8's worst case).
				rep.Catastrophic = true
				rep.Efficiency = 0
				return rep, nil
			default:
				// Single-rank node: causal recovery applies.
				w.RunRank(cfg.rankOfSlot(node, 0), func() { res.Proc.ReplayAll(res.Logs) })
			}
			nextFailure = failureTime(rng, cfg.NodeMTBF, w.MaxTime())
		}
	}
	if t := w.MaxTime(); t > 0 {
		rep.Efficiency = ideal / t
	}
	rep.Verified = true
	for r := 0; r < n; r++ {
		a := ref.Proc(r).ReadAt(0, windowWords(n))
		b := w.Proc(r).ReadAt(0, windowWords(n))
		for i := range a {
			if a[i] != b[i] {
				rep.Verified = false
			}
		}
	}
	return rep, nil
}

// PredictCrash classifies the recovery one simultaneous fail-stop crash
// of the given ranks admits under this config's grouping and parity
// placement, by actually running it: warmIters workload iterations on
// the in-process ft runtime, the crash, then Recover. The chaos and soak
// harnesses derive their survivability expectations from this — the same
// grouping, election policy, and reconstruction math the cluster runs,
// minus the wire — so a cluster run disagreeing with the prediction is a
// runtime bug, not a modeling gap. Set PeerParityHosts when the run
// under test hosts parity on peer ranks (the cluster and fabric do).
func (c CorrelatedConfig) PredictCrash(warmIters int, ranks []int) (Verdict, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if len(ranks) == 0 {
		return 0, errors.New("resilience: empty crash")
	}
	if len(ranks) == 1 {
		return VerdictCausal, nil
	}
	n := c.Nodes * c.RanksPerNode
	w := rma.NewWorld(rma.Config{N: n, WindowWords: windowWords(n)})
	sys, err := ftrma.NewSystem(w, ftrma.Config{
		Groups: c.Groups, ChecksumsPerGroup: 1,
		Log:             ftrma.LogConfig{Puts: true},
		PeerParityHosts: c.PeerParityHosts,
	})
	if err != nil {
		return 0, err
	}
	if warmIters < 1 {
		warmIters = 1
	}
	for it := 0; it < warmIters; it++ {
		cur := it
		w.Run(func(r int) { step(sys.Process(r), cur) })
	}
	for _, r := range ranks {
		if r < 0 || r >= n {
			return 0, fmt.Errorf("resilience: rank %d out of range 0..%d", r, n-1)
		}
		w.Kill(r)
	}
	switch _, err := sys.Recover(ranks[0]); {
	case errors.Is(err, ftrma.ErrFallback):
		return VerdictFallback, nil
	case err != nil:
		return VerdictCatastrophic, nil
	default:
		return VerdictCausal, nil
	}
}
