// Package resilience is the end-to-end driver tying the stack together: it
// runs a synthetic RMA workload under the full ftRMA protocol, injects
// fail-stop failures at a configurable MTBF (exponential inter-arrival
// times over virtual time, per the failure model of §7.1), performs the
// appropriate recovery after every crash — causal replay when the logs
// allow it, coordinated rollback when an N/M flag forbids it, stable
// storage as the last resort — and reports the achieved efficiency: useful
// fault-free work over total virtual time.
//
// This is the dynamic counterpart of the paper's static analyses: Daly's
// interval (§6.1) exists precisely to maximize this efficiency, and the
// simulation lets the choice be evaluated under actual failures.
package resilience

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/ftrma"
	"repro/internal/rma"
)

// Config describes one simulation.
type Config struct {
	// Ranks is the number of compute processes.
	Ranks int
	// Iters is the number of workload iterations (each an all-to-all put
	// exchange closed by a gsync).
	Iters int
	// MTBF is the system-wide mean time between injected failures in
	// virtual seconds. Zero disables failure injection.
	MTBF float64
	// Seed fixes the failure times and victims.
	Seed int64
	// FT is the protocol configuration. LogPuts should be on for causal
	// recovery to ever succeed.
	FT ftrma.Config
}

// Report summarizes a simulation.
type Report struct {
	Iterations       int
	Failures         int
	CausalRecoveries int
	Fallbacks        int
	RedoneIterations int
	TotalTime        float64 // virtual makespan including recoveries
	IdealTime        float64 // fault-free makespan of the same workload
	Efficiency       float64 // IdealTime / TotalTime
	Verified         bool    // final state matches the fault-free run
}

// windowWords is the workload's per-rank window: one slot per peer.
func windowWords(ranks int) int { return ranks }

// step runs workload iteration it on one rank: every rank puts a value
// derived from (iteration, source) into every peer's window at the source's
// slot, then gsyncs. All window state is put-written, so causal replay
// recovers a failed rank completely.
func step(p rma.API, it int) {
	for q := 0; q < p.N(); q++ {
		p.PutValue(q, p.Rank(), uint64(1000*it+10*p.Rank()+7))
	}
	p.Compute(5e5) // some local work per iteration
	p.Gsync()
}

// Simulate runs the workload under failures and returns the report.
func Simulate(cfg Config) (Report, error) {
	if cfg.Ranks < 2 {
		return Report{}, errors.New("resilience: need at least 2 ranks")
	}
	if cfg.Iters < 1 {
		return Report{}, errors.New("resilience: need at least 1 iteration")
	}

	// Fault-free reference: final state and ideal makespan.
	ref := rma.NewWorld(rma.Config{N: cfg.Ranks, WindowWords: windowWords(cfg.Ranks)})
	ref.Run(func(r int) {
		for it := 0; it < cfg.Iters; it++ {
			step(ref.Proc(r), it)
		}
	})
	ideal := ref.MaxTime()

	w := rma.NewWorld(rma.Config{N: cfg.Ranks, WindowWords: windowWords(cfg.Ranks)})
	sys, err := ftrma.NewSystem(w, cfg.FT)
	if err != nil {
		return Report{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	nextFailure := failureTime(rng, cfg.MTBF, 0)

	rep := Report{Iterations: cfg.Iters, IdealTime: ideal}
	it := 0
	for it < cfg.Iters {
		cur := it
		w.Run(func(r int) { step(sys.Process(r), cur) })
		it++
		// Inject at iteration boundaries whose virtual time passed the
		// scheduled failure — but not after the final iteration: pure
		// replay restores remote contributions, and the next iteration's
		// re-execution regenerates the victim's own (its self-put logs
		// died with it, Fig. 3); after the last gsync there is no next
		// iteration, which is when an application-level Recover (as in
		// apps/fft) would re-execute instead.
		if cfg.MTBF > 0 && it < cfg.Iters && w.MaxTime() >= nextFailure {
			victim := rng.Intn(cfg.Ranks)
			w.Kill(victim)
			rep.Failures++
			res, err := sys.Recover(victim)
			switch {
			case err == nil:
				w.RunRank(victim, func() { res.Proc.ReplayAll(res.Logs) })
				rep.CausalRecoveries++
			case errors.Is(err, ftrma.ErrFallback):
				rep.Fallbacks++
				// Every rank is back at the coordinated checkpoint; its
				// gsync counter tells which iteration to redo from (one
				// gsync per iteration; checkpoint rounds add none to GNC).
				resume := res.Proc.GNC()
				if resume > it {
					return rep, fmt.Errorf("resilience: rollback to the future (GNC %d > it %d)", resume, it)
				}
				rep.RedoneIterations += it - resume
				it = resume
			default:
				return rep, err
			}
			nextFailure = failureTime(rng, cfg.MTBF, w.MaxTime())
		}
	}
	rep.TotalTime = w.MaxTime()
	if rep.TotalTime > 0 {
		rep.Efficiency = ideal / rep.TotalTime
	}

	// Verify the final state against the fault-free reference.
	rep.Verified = true
	for r := 0; r < cfg.Ranks; r++ {
		a := ref.Proc(r).ReadAt(0, windowWords(cfg.Ranks))
		b := w.Proc(r).ReadAt(0, windowWords(cfg.Ranks))
		for i := range a {
			if a[i] != b[i] {
				rep.Verified = false
			}
		}
	}
	return rep, nil
}

// failureTime draws the next failure time after now.
func failureTime(rng *rand.Rand, mtbf, now float64) float64 {
	if mtbf <= 0 {
		return 1e308
	}
	return now + rng.ExpFloat64()*mtbf
}
