package resilience

import "testing"

func TestCorrelatedTAwarePlacementSurvives(t *testing.T) {
	// Multi-rank nodes, t-aware placement: every node failure hits each
	// group at most once, the coordinated fallback reconstructs all
	// victims, and the run finishes verified.
	rep, err := SimulateCorrelated(CorrelatedConfig{
		Nodes: 4, RanksPerNode: 2, Iters: 16,
		NodeMTBF: 3e-4, Seed: 5,
		TAware: true, Groups: 4,
		CheckpointEveryIters: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NodeFailures == 0 {
		t.Fatal("no node failures injected")
	}
	if rep.Catastrophic {
		t.Fatal("t-aware placement suffered a catastrophic failure")
	}
	if rep.Rollbacks != rep.NodeFailures {
		t.Fatalf("rollbacks %d != node failures %d", rep.Rollbacks, rep.NodeFailures)
	}
	if !rep.Verified {
		t.Fatal("final state does not match the fault-free reference")
	}
	if rep.RedoneIterations == 0 {
		t.Error("rollbacks redid no iterations (checkpoint cadence broken?)")
	}
}

func TestCorrelatedNaivePlacementIsCatastrophic(t *testing.T) {
	// Same machine, same failures, but group members packed onto the same
	// node: one node loss kills 2 members of one group — beyond the XOR
	// parity — which the paper calls a catastrophic failure (§5.1).
	rep, err := SimulateCorrelated(CorrelatedConfig{
		Nodes: 4, RanksPerNode: 2, Iters: 16,
		NodeMTBF: 3e-4, Seed: 5,
		TAware: false, Groups: 4,
		CheckpointEveryIters: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NodeFailures == 0 {
		t.Fatal("no node failures injected")
	}
	if !rep.Catastrophic {
		t.Fatal("naive placement survived a whole-node loss with XOR parity")
	}
	if rep.Efficiency != 0 {
		t.Fatal("catastrophic run reported nonzero efficiency")
	}
}

func TestCorrelatedSingleRankNodesUseCausalRecovery(t *testing.T) {
	// One rank per node: a node failure is a single-rank failure, so the
	// causal path applies and nothing rolls back.
	rep, err := SimulateCorrelated(CorrelatedConfig{
		Nodes: 6, RanksPerNode: 1, Iters: 16,
		NodeMTBF: 3e-4, Seed: 9,
		TAware: true, Groups: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NodeFailures == 0 {
		t.Fatal("no failures injected")
	}
	if rep.Rollbacks != 0 {
		t.Fatalf("single-rank failures caused %d rollbacks", rep.Rollbacks)
	}
	if !rep.Verified {
		t.Fatal("state mismatch after causal recoveries")
	}
}

func TestPredictCrashVerdicts(t *testing.T) {
	// The chaos harness's machine: 2 nodes x 2 ranks, 2 groups, t-aware,
	// parity hosted on peer ranks like the cluster runtime.
	cfg := CorrelatedConfig{
		Nodes: 2, RanksPerNode: 2, Iters: 8,
		TAware: true, Groups: 2, PeerParityHosts: true,
	}
	node := func(n int) []int {
		return []int{cfg.RankOfSlot(n, 0), cfg.RankOfSlot(n, 1)}
	}
	for _, tc := range []struct {
		name  string
		ranks []int
		want  Verdict
	}{
		// Any lone death replays causally, whoever it is.
		{"single-rank", []int{2}, VerdictCausal},
		// Node 0 = ranks {0,1}: one member per group lost, both parity
		// hosts (ranks 2 and 3) alive — the coordinated rollback covers it.
		{"node0-fallback", node(0), VerdictFallback},
		// Node 1 = ranks {2,3}: a group member dies together with a
		// parity host guarding a group it belongs to — member copy and
		// parity gone at once, the §5.1 catastrophic case.
		{"node1-catastrophic", node(1), VerdictCatastrophic},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := cfg.PredictCrash(3, tc.ranks)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("PredictCrash(%v) = %v, want %v", tc.ranks, got, tc.want)
			}
		})
	}
}

func TestPredictCrashMatchesInfallibleSim(t *testing.T) {
	// Without peer parity hosts the predictor must agree with the
	// infallible-checksum simulation: t-aware node losses are fallbacks
	// (TestCorrelatedTAwarePlacementSurvives), packed ones catastrophic
	// (TestCorrelatedNaivePlacementIsCatastrophic).
	taware := CorrelatedConfig{Nodes: 4, RanksPerNode: 2, Iters: 8, TAware: true, Groups: 4}
	v, err := taware.PredictCrash(3, []int{taware.RankOfSlot(1, 0), taware.RankOfSlot(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if v != VerdictFallback {
		t.Fatalf("t-aware node loss predicted %v, want fallback", v)
	}
	packed := CorrelatedConfig{Nodes: 4, RanksPerNode: 2, Iters: 8, TAware: false, Groups: 4}
	v, err = packed.PredictCrash(3, []int{packed.RankOfSlot(1, 0), packed.RankOfSlot(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if v != VerdictCatastrophic {
		t.Fatalf("packed node loss predicted %v, want catastrophic", v)
	}
}

func TestCorrelatedConfigValidation(t *testing.T) {
	bad := []CorrelatedConfig{
		{Nodes: 1, RanksPerNode: 2, Iters: 4, Groups: 1},
		{Nodes: 4, RanksPerNode: 2, Iters: 0, Groups: 2},
		{Nodes: 4, RanksPerNode: 2, Iters: 4, Groups: 0},
		{Nodes: 4, RanksPerNode: 4, Iters: 4, Groups: 2, TAware: true},
		{Nodes: 5, RanksPerNode: 2, Iters: 4, Groups: 2, TAware: false},
	}
	for i, cfg := range bad {
		if _, err := SimulateCorrelated(cfg); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}
