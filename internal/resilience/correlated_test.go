package resilience

import "testing"

func TestCorrelatedTAwarePlacementSurvives(t *testing.T) {
	// Multi-rank nodes, t-aware placement: every node failure hits each
	// group at most once, the coordinated fallback reconstructs all
	// victims, and the run finishes verified.
	rep, err := SimulateCorrelated(CorrelatedConfig{
		Nodes: 4, RanksPerNode: 2, Iters: 16,
		NodeMTBF: 3e-4, Seed: 5,
		TAware: true, Groups: 4,
		CheckpointEveryIters: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NodeFailures == 0 {
		t.Fatal("no node failures injected")
	}
	if rep.Catastrophic {
		t.Fatal("t-aware placement suffered a catastrophic failure")
	}
	if rep.Rollbacks != rep.NodeFailures {
		t.Fatalf("rollbacks %d != node failures %d", rep.Rollbacks, rep.NodeFailures)
	}
	if !rep.Verified {
		t.Fatal("final state does not match the fault-free reference")
	}
	if rep.RedoneIterations == 0 {
		t.Error("rollbacks redid no iterations (checkpoint cadence broken?)")
	}
}

func TestCorrelatedNaivePlacementIsCatastrophic(t *testing.T) {
	// Same machine, same failures, but group members packed onto the same
	// node: one node loss kills 2 members of one group — beyond the XOR
	// parity — which the paper calls a catastrophic failure (§5.1).
	rep, err := SimulateCorrelated(CorrelatedConfig{
		Nodes: 4, RanksPerNode: 2, Iters: 16,
		NodeMTBF: 3e-4, Seed: 5,
		TAware: false, Groups: 4,
		CheckpointEveryIters: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NodeFailures == 0 {
		t.Fatal("no node failures injected")
	}
	if !rep.Catastrophic {
		t.Fatal("naive placement survived a whole-node loss with XOR parity")
	}
	if rep.Efficiency != 0 {
		t.Fatal("catastrophic run reported nonzero efficiency")
	}
}

func TestCorrelatedSingleRankNodesUseCausalRecovery(t *testing.T) {
	// One rank per node: a node failure is a single-rank failure, so the
	// causal path applies and nothing rolls back.
	rep, err := SimulateCorrelated(CorrelatedConfig{
		Nodes: 6, RanksPerNode: 1, Iters: 16,
		NodeMTBF: 3e-4, Seed: 9,
		TAware: true, Groups: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NodeFailures == 0 {
		t.Fatal("no failures injected")
	}
	if rep.Rollbacks != 0 {
		t.Fatalf("single-rank failures caused %d rollbacks", rep.Rollbacks)
	}
	if !rep.Verified {
		t.Fatal("state mismatch after causal recoveries")
	}
}

func TestCorrelatedConfigValidation(t *testing.T) {
	bad := []CorrelatedConfig{
		{Nodes: 1, RanksPerNode: 2, Iters: 4, Groups: 1},
		{Nodes: 4, RanksPerNode: 2, Iters: 0, Groups: 2},
		{Nodes: 4, RanksPerNode: 2, Iters: 4, Groups: 0},
		{Nodes: 4, RanksPerNode: 4, Iters: 4, Groups: 2, TAware: true},
		{Nodes: 5, RanksPerNode: 2, Iters: 4, Groups: 2, TAware: false},
	}
	for i, cfg := range bad {
		if _, err := SimulateCorrelated(cfg); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}
