package resilience

import (
	"testing"

	"repro/internal/ftrma"
)

func ftCfg(groups int) ftrma.Config {
	return ftrma.Config{
		Groups:            groups,
		ChecksumsPerGroup: 1,
		LogPuts:           true,
	}
}

func TestSimulateFaultFree(t *testing.T) {
	rep, err := Simulate(Config{Ranks: 4, Iters: 6, MTBF: 0, FT: ftCfg(1)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 0 || rep.CausalRecoveries != 0 {
		t.Fatalf("fault-free run reported failures: %+v", rep)
	}
	if !rep.Verified {
		t.Fatal("fault-free run does not match reference")
	}
	// The protocol (logging) costs something, so efficiency < 1; but it
	// must be substantial.
	if rep.Efficiency <= 0.3 || rep.Efficiency > 1.0000001 {
		t.Fatalf("efficiency = %g", rep.Efficiency)
	}
}

func TestSimulateWithFailures(t *testing.T) {
	// An aggressive failure rate: several crashes over the run, all
	// recovered causally, final state still exact.
	rep, err := Simulate(Config{
		Ranks: 6, Iters: 20, MTBF: 2e-4, Seed: 7, FT: ftCfg(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures == 0 {
		t.Fatal("aggressive MTBF injected no failures")
	}
	if rep.CausalRecoveries != rep.Failures {
		t.Fatalf("recoveries %d != failures %d (workload is fully put-written)",
			rep.CausalRecoveries, rep.Failures)
	}
	if !rep.Verified {
		t.Fatal("recovered run does not match the fault-free reference")
	}
	if rep.Efficiency >= 1 {
		t.Fatalf("failures cost nothing? efficiency = %g", rep.Efficiency)
	}
}

func TestSimulateEfficiencyDegradesWithFailureRate(t *testing.T) {
	run := func(mtbf float64) Report {
		rep, err := Simulate(Config{Ranks: 4, Iters: 24, MTBF: mtbf, Seed: 3, FT: ftCfg(1)})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Verified {
			t.Fatal("state mismatch")
		}
		return rep
	}
	rare := run(1.0) // essentially failure-free
	often := run(1e-4)
	if often.Failures <= rare.Failures {
		t.Fatalf("failure counts: rare=%d often=%d", rare.Failures, often.Failures)
	}
	if often.Efficiency >= rare.Efficiency {
		t.Fatalf("efficiency did not degrade: rare=%g often=%g", rare.Efficiency, often.Efficiency)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	cfg := Config{Ranks: 4, Iters: 12, MTBF: 5e-4, Seed: 11, FT: ftCfg(2)}
	a, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Failures != b.Failures || a.CausalRecoveries != b.CausalRecoveries {
		t.Fatalf("simulation not reproducible: %+v vs %+v", a, b)
	}
}

func TestSimulateRejectsBadConfig(t *testing.T) {
	if _, err := Simulate(Config{Ranks: 1, Iters: 5, FT: ftCfg(1)}); err == nil {
		t.Error("accepted one rank")
	}
	if _, err := Simulate(Config{Ranks: 4, Iters: 0, FT: ftCfg(1)}); err == nil {
		t.Error("accepted zero iterations")
	}
	bad := ftCfg(1)
	bad.Groups = 9
	if _, err := Simulate(Config{Ranks: 4, Iters: 5, FT: bad}); err == nil {
		t.Error("accepted invalid FT config")
	}
}
