// Package sim provides the virtual-time substrate used by the simulated
// cluster: per-rank logical clocks, a LogGP-style cost model of the
// interconnect, shared-bandwidth resources (the parallel file system), and
// virtual-time collective barriers.
//
// The fault-tolerance protocols in this repository are evaluated against a
// simulated machine rather than a Cray XE6 (see DESIGN.md §2). Every rank
// owns a Clock; RMA operations, local computation, and checkpoint traffic
// charge time to it. Collectives resolve the maximum clock across
// participants, which is how a bulk-synchronous execution experiences
// stragglers. Reported performance figures are work divided by the final
// virtual time.
package sim

// Params holds the cost-model constants of the simulated machine. The
// defaults approximate a Gemini-interconnect Cray XE6 node (the machine used
// in the paper's evaluation): single-digit-microsecond RMA latency, a few
// GB/s of injection bandwidth per rank, and a parallel file system whose
// aggregate bandwidth is shared by all writers.
type Params struct {
	// FlopRate is the per-rank compute rate in flop/s.
	FlopRate float64
	// MemBW is the local memory copy bandwidth in bytes/s (used for taking
	// in-memory checkpoints and computing XOR checksums).
	MemBW float64
	// NetLatency is the one-way network latency L in seconds.
	NetLatency float64
	// NetBW is the per-rank network bandwidth in bytes/s (the LogGP 1/G).
	NetBW float64
	// OpOverhead is the CPU overhead o charged at the source for every
	// injected RMA operation, in seconds.
	OpOverhead float64
	// AtomicLatency is the round-trip cost of a remote atomic
	// (CAS/FetchAndOp/Accumulate completion), in seconds.
	AtomicLatency float64
	// BarrierBase and BarrierPerStage model a dissemination barrier:
	// cost = BarrierBase + BarrierPerStage*ceil(log2(n)).
	BarrierBase     float64
	BarrierPerStage float64
	// PFSBW is the aggregate parallel-file-system bandwidth in bytes/s,
	// shared by all concurrent writers. PFSLatency is the per-request I/O
	// setup cost in seconds.
	PFSBW      float64
	PFSLatency float64
}

// DefaultParams returns the Cray-XE6-like machine model used throughout the
// benchmarks.
func DefaultParams() Params {
	return Params{
		FlopRate:        2.0e9,  // 2 Gflop/s sustained per rank
		MemBW:           4.0e9,  // 4 GB/s local copy
		NetLatency:      1.5e-6, // 1.5 us one-way
		NetBW:           3.0e9,  // 3 GB/s injection
		OpOverhead:      0.3e-6, // 0.3 us per issued op
		AtomicLatency:   2.0e-6, // 2 us remote atomic round trip
		BarrierBase:     1.0e-6,
		BarrierPerStage: 1.2e-6,
		PFSBW:           8.0e9,  // 8 GB/s aggregate PFS
		PFSLatency:      2.0e-3, // 2 ms I/O setup
	}
}

// CompTime returns the virtual time needed for the given number of floating
// point operations.
func (p Params) CompTime(flops float64) float64 {
	if p.FlopRate <= 0 {
		return 0
	}
	return flops / p.FlopRate
}

// CopyTime returns the virtual time for a local memory copy of n bytes.
func (p Params) CopyTime(n int) float64 {
	if p.MemBW <= 0 {
		return 0
	}
	return float64(n) / p.MemBW
}

// InjectTime returns the source-side time to inject an RMA operation
// carrying n payload bytes.
func (p Params) InjectTime(n int) float64 {
	if p.NetBW <= 0 {
		return p.OpOverhead
	}
	return p.OpOverhead + float64(n)/p.NetBW
}

// TransferTime returns the end-to-end network time of an n-byte transfer
// (latency plus serialization).
func (p Params) TransferTime(n int) float64 {
	t := p.NetLatency
	if p.NetBW > 0 {
		t += float64(n) / p.NetBW
	}
	return t
}

// BarrierTime returns the cost of an n-rank dissemination barrier.
func (p Params) BarrierTime(n int) float64 {
	stages := 0
	for v := 1; v < n; v <<= 1 {
		stages++
	}
	return p.BarrierBase + float64(stages)*p.BarrierPerStage
}
