package sim

import "sync"

// SharedResource models a serially shared bandwidth resource such as the
// parallel file system: concurrent transfers queue behind each other. It is
// safe for concurrent use by multiple ranks.
type SharedResource struct {
	mu      sync.Mutex
	bw      float64 // bytes/s
	latency float64 // per-request setup time
	freeAt  float64 // virtual time at which the resource becomes idle
	busy    float64 // accumulated busy time (for utilization reporting)
}

// NewSharedResource creates a resource with the given aggregate bandwidth
// (bytes/s) and per-request latency (seconds).
func NewSharedResource(bw, latency float64) *SharedResource {
	return &SharedResource{bw: bw, latency: latency}
}

// Transfer models moving n bytes through the resource starting no earlier
// than virtual time start. It returns the completion time. Requests are
// serviced in arrival order of the calls.
func (r *SharedResource) Transfer(start float64, n int) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	begin := start
	if r.freeAt > begin {
		begin = r.freeAt
	}
	dur := r.latency
	if r.bw > 0 {
		dur += float64(n) / r.bw
	}
	end := begin + dur
	r.freeAt = end
	r.busy += dur
	return end
}

// BusyTime reports the total virtual time the resource spent servicing
// transfers.
func (r *SharedResource) BusyTime() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.busy
}

// Reset returns the resource to the idle state at time zero.
func (r *SharedResource) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.freeAt = 0
	r.busy = 0
}
