package sim

import "sync"

// Barrier is a reusable virtual-time barrier with identified participants.
// Each participant passes its id and current virtual time to Wait; when
// every member has arrived, all are released with the maximum of the
// submitted times. The caller adds the barrier's own cost
// (Params.BarrierTime).
//
// Members can permanently Leave (a rank failed) or Join (a replacement rank
// was spawned), which is how collectives keep making progress across
// fail-stop events. Leave of a member that already arrived in the current
// generation retracts its arrival, so generations never release early.
type Barrier struct {
	mu       sync.Mutex
	cond     *sync.Cond
	members  map[int]bool
	arrived  map[int]float64 // member id -> arrival time, current generation
	gen      int
	releases map[int]float64 // generation -> release time
}

// NewBarrier creates a barrier whose members are ids 0..n-1.
func NewBarrier(n int) *Barrier {
	b := &Barrier{
		members:  make(map[int]bool, n),
		arrived:  make(map[int]float64, n),
		releases: make(map[int]float64),
	}
	for i := 0; i < n; i++ {
		b.members[i] = true
	}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks participant id until all current members have arrived and
// returns the maximum virtual time across them. A caller that is no longer
// a member (it was killed while heading here) returns immediately with its
// own time; it is about to unwind anyway.
func (b *Barrier) Wait(id int, t float64) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.members[id] {
		return t
	}
	gen := b.gen
	b.arrived[id] = t
	if b.complete() {
		b.release()
		return b.releases[gen]
	}
	for {
		if rt, ok := b.releases[gen]; ok && gen != b.gen {
			return rt
		}
		if !b.members[id] {
			// Removed while waiting (killed): the generation completed or
			// will complete without us.
			return t
		}
		b.cond.Wait()
	}
}

// complete reports whether every member has arrived. Callers hold b.mu.
func (b *Barrier) complete() bool {
	if len(b.members) == 0 {
		return false
	}
	for m := range b.members {
		if _, ok := b.arrived[m]; !ok {
			return false
		}
	}
	return true
}

// release completes the current generation with the maximum arrival time
// of the *current members* — a dead rank's retracted arrival does not hold
// the survivors' clocks. Callers must hold b.mu.
func (b *Barrier) release() {
	max := 0.0
	for m := range b.members {
		if t := b.arrived[m]; t > max {
			max = t
		}
	}
	b.releases[b.gen] = max
	delete(b.releases, b.gen-4) // keep a short history only
	b.gen++
	b.arrived = make(map[int]float64, len(b.members))
	b.cond.Broadcast()
}

// Leave permanently removes a member (a failed rank). If the departed rank
// was the only one missing from the current generation, the generation
// completes; if it had already arrived, its arrival is retracted.
func (b *Barrier) Leave(id int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.members[id] {
		return
	}
	delete(b.members, id)
	delete(b.arrived, id)
	if b.complete() {
		b.release()
	} else {
		// Wake a waiter that may itself be the departed rank.
		b.cond.Broadcast()
	}
}

// Join permanently adds a member (a recovered rank).
func (b *Barrier) Join(id int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.members[id] = true
}

// Participants reports the current number of members.
func (b *Barrier) Participants() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.members)
}
