package sim

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %g, want 0", c.Now())
	}
	c.Advance(1.5)
	c.Advance(0.5)
	if got := c.Now(); got != 2.0 {
		t.Fatalf("clock at %g, want 2.0", got)
	}
	c.AdvanceTo(1.0) // backwards: no-op
	if got := c.Now(); got != 2.0 {
		t.Fatalf("AdvanceTo moved clock backwards to %g", got)
	}
	c.AdvanceTo(3.25)
	if got := c.Now(); got != 3.25 {
		t.Fatalf("clock at %g, want 3.25", got)
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("reset clock at %g, want 0", c.Now())
	}
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative advance did not panic")
		}
	}()
	NewClock().Advance(-1)
}

func TestClockMonotone(t *testing.T) {
	f := func(steps []float64) bool {
		c := NewClock()
		prev := 0.0
		for _, s := range steps {
			d := math.Abs(s)
			if math.IsNaN(d) || math.IsInf(d, 0) {
				continue
			}
			c.Advance(d)
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParamsCosts(t *testing.T) {
	p := DefaultParams()
	if got := p.CompTime(p.FlopRate); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("CompTime(FlopRate) = %g, want 1.0", got)
	}
	if got := p.CopyTime(int(p.MemBW)); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("CopyTime(MemBW) = %g, want 1.0", got)
	}
	if got := p.InjectTime(0); got != p.OpOverhead {
		t.Errorf("InjectTime(0) = %g, want OpOverhead %g", got, p.OpOverhead)
	}
	if got := p.TransferTime(0); got != p.NetLatency {
		t.Errorf("TransferTime(0) = %g, want NetLatency %g", got, p.NetLatency)
	}
	// Larger transfers take longer.
	if p.TransferTime(1<<20) <= p.TransferTime(1<<10) {
		t.Error("TransferTime not monotone in size")
	}
}

func TestBarrierTimeStages(t *testing.T) {
	p := DefaultParams()
	// 1 rank: zero stages.
	if got := p.BarrierTime(1); got != p.BarrierBase {
		t.Errorf("BarrierTime(1) = %g, want base %g", got, p.BarrierBase)
	}
	// 8 ranks: 3 stages; 9 ranks: 4 stages.
	want8 := p.BarrierBase + 3*p.BarrierPerStage
	if got := p.BarrierTime(8); math.Abs(got-want8) > 1e-15 {
		t.Errorf("BarrierTime(8) = %g, want %g", got, want8)
	}
	if p.BarrierTime(9) <= p.BarrierTime(8) {
		t.Error("BarrierTime(9) should exceed BarrierTime(8)")
	}
}

func TestSharedResourceSerializes(t *testing.T) {
	r := NewSharedResource(1000, 0) // 1000 B/s, no latency
	end1 := r.Transfer(0, 500)      // 0.5 s
	end2 := r.Transfer(0, 500)      // queued behind: 1.0 s
	if end1 != 0.5 || end2 != 1.0 {
		t.Fatalf("transfers ended at %g, %g; want 0.5, 1.0", end1, end2)
	}
	// A request arriving after the resource is free starts immediately.
	end3 := r.Transfer(5, 1000)
	if end3 != 6.0 {
		t.Fatalf("transfer ended at %g, want 6.0", end3)
	}
	if got := r.BusyTime(); math.Abs(got-2.0) > 1e-12 {
		t.Fatalf("busy time %g, want 2.0", got)
	}
	r.Reset()
	if r.BusyTime() != 0 {
		t.Fatal("reset did not clear busy time")
	}
}

func TestSharedResourceConcurrent(t *testing.T) {
	r := NewSharedResource(1e6, 0)
	var wg sync.WaitGroup
	const n = 64
	ends := make([]float64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ends[i] = r.Transfer(0, 1000) // each takes 1ms
		}(i)
	}
	wg.Wait()
	// All end times must be distinct multiples of 1ms up to n ms.
	seen := make(map[int]bool)
	for _, e := range ends {
		k := int(math.Round(e * 1000))
		if k < 1 || k > n || seen[k] {
			t.Fatalf("unexpected completion time %g", e)
		}
		seen[k] = true
	}
}

func TestBarrierReleasesMax(t *testing.T) {
	const n = 8
	b := NewBarrier(n)
	var wg sync.WaitGroup
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = b.Wait(i, float64(i))
		}(i)
	}
	wg.Wait()
	for i, v := range out {
		if v != float64(n-1) {
			t.Fatalf("rank %d released with %g, want %g", i, v, float64(n-1))
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	const n = 4
	b := NewBarrier(n)
	var wg sync.WaitGroup
	for round := 0; round < 3; round++ {
		want := float64(round*10 + n - 1)
		got := make([]float64, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				got[i] = b.Wait(i, float64(round*10+i))
			}(i)
		}
		wg.Wait()
		for i := range got {
			if got[i] != want {
				t.Fatalf("round %d rank %d: released with %g, want %g", round, i, got[i], want)
			}
		}
	}
}

func TestBarrierLeaveUnblocks(t *testing.T) {
	b := NewBarrier(3)
	done := make(chan float64, 2)
	for i := 0; i < 2; i++ {
		go func(i int) { done <- b.Wait(i, float64(i)) }(i)
	}
	// Neither can proceed yet; the third participant dies instead of
	// arriving.
	b.Leave(2)
	for i := 0; i < 2; i++ {
		if v := <-done; v != 1.0 {
			t.Fatalf("released with %g, want 1.0", v)
		}
	}
	if b.Participants() != 2 {
		t.Fatalf("participants = %d, want 2", b.Participants())
	}
}

func TestBarrierLeaveAfterArrivalRetracts(t *testing.T) {
	// Rank 2 arrives, then dies. The generation must NOT release with its
	// stale arrival: ranks 0 and 1 still complete it by themselves, and
	// the following generation needs exactly ranks 0 and 1 again.
	b := NewBarrier(3)
	done := make(chan float64, 3)
	go func() { done <- b.Wait(2, 9) }()
	// Wait until rank 2 has arrived.
	for {
		b.mu.Lock()
		_, arrived := b.arrived[2]
		b.mu.Unlock()
		if arrived {
			break
		}
	}
	b.Leave(2)
	<-done // rank 2's Wait returns (no longer a member)
	go func() { done <- b.Wait(0, 1) }()
	go func() { done <- b.Wait(1, 2) }()
	for i := 0; i < 2; i++ {
		if v := <-done; v != 2 {
			t.Fatalf("released with %g, want 2 (stale arrival not retracted)", v)
		}
	}
	// Next generation still works with the two members.
	go func() { done <- b.Wait(0, 5) }()
	go func() { done <- b.Wait(1, 6) }()
	for i := 0; i < 2; i++ {
		if v := <-done; v != 6 {
			t.Fatalf("second generation released with %g, want 6", v)
		}
	}
}

func TestBarrierJoin(t *testing.T) {
	b := NewBarrier(1)
	b.Join(1)
	if b.Participants() != 2 {
		t.Fatalf("participants = %d, want 2", b.Participants())
	}
	done := make(chan float64, 2)
	go func() { done <- b.Wait(0, 5) }()
	go func() { done <- b.Wait(1, 7) }()
	for i := 0; i < 2; i++ {
		if v := <-done; v != 7 {
			t.Fatalf("released with %g, want 7", v)
		}
	}
}

func TestBarrierWaitNonMemberReturns(t *testing.T) {
	b := NewBarrier(2)
	b.Leave(1)
	if v := b.Wait(1, 3.5); v != 3.5 {
		t.Fatalf("non-member Wait returned %g, want own time", v)
	}
}
