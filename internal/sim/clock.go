package sim

import "fmt"

// Clock is a per-rank virtual clock. It is owned by exactly one goroutine
// (the rank it belongs to); cross-rank time resolution happens only through
// Barrier and SharedResource, which are synchronized.
type Clock struct {
	t float64
}

// NewClock returns a clock starting at time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time in seconds.
func (c *Clock) Now() float64 { return c.t }

// Advance moves the clock forward by dt seconds. Negative advances are a
// programming error and panic.
func (c *Clock) Advance(dt float64) {
	if dt < 0 {
		panic(fmt.Sprintf("sim: negative clock advance %g", dt))
	}
	c.t += dt
}

// AdvanceTo moves the clock forward to time t. Moving backwards is a no-op:
// virtual time is monotone.
func (c *Clock) AdvanceTo(t float64) {
	if t > c.t {
		c.t = t
	}
}

// Reset sets the clock back to zero. Only used between independent
// experiment runs.
func (c *Clock) Reset() { c.t = 0 }
