package failure

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/machine"
)

func TestPDFAt(t *testing.T) {
	p := PDF{A: 2, B: math.Ln2}
	if got := p.At(1); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("At(1) = %g, want 1.0", got)
	}
	if got := p.At(2); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("At(2) = %g, want 0.5", got)
	}
}

func TestTSUBAMEPDFValues(t *testing.T) {
	// Spot-check against the constants printed in Figs. 10a/10b.
	if got := TSUBAMENodePDF.At(1); math.Abs(got-0.30142e-2*math.Exp(-1.3567)) > 1e-12 {
		t.Fatalf("node PDF at 1 = %g", got)
	}
	pdfs := TSUBAMEPDFs()
	if len(pdfs) != 4 {
		t.Fatalf("want 4 level PDFs, got %d", len(pdfs))
	}
	// Single-node failures are far more likely than single-rack failures.
	if pdfs[0].At(1) <= pdfs[3].At(1) {
		t.Error("node failures should dominate rack failures")
	}
	// Probabilities decay with the number of simultaneous failures.
	for _, p := range pdfs {
		for x := 1; x < 7; x++ {
			if p.At(x+1) >= p.At(x) {
				t.Errorf("%v not decreasing at x=%d", p, x)
			}
		}
	}
}

func TestFitExponentialRecoversParams(t *testing.T) {
	// Generate a synthetic history from the node PDF, then fit; the fit
	// must recover the generating parameters. This is the Fig. 10a pipeline.
	rng := rand.New(rand.NewSource(42))
	const days = 400000 // long period so every bin is populated
	evs := GenerateHistory(rng, []PDF{TSUBAMENodePDF}, days, 7)
	hist := Histogram(evs, 1, 7)
	fit, err := FitExponential(hist, days)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(fit.B-TSUBAMENodePDF.B) / TSUBAMENodePDF.B; rel > 0.15 {
		t.Errorf("fitted B = %g, want ~%g (rel err %g)", fit.B, TSUBAMENodePDF.B, rel)
	}
	if rel := math.Abs(fit.A-TSUBAMENodePDF.A) / TSUBAMENodePDF.A; rel > 0.25 {
		t.Errorf("fitted A = %g, want ~%g (rel err %g)", fit.A, TSUBAMENodePDF.A, rel)
	}
}

func TestFitExponentialErrors(t *testing.T) {
	if _, err := FitExponential([]int{0, 5, 3}, 0); err == nil {
		t.Error("accepted zero-day period")
	}
	if _, err := FitExponential([]int{0, 5}, 10); err == nil {
		t.Error("accepted single-bin histogram")
	}
	if _, err := FitExponential([]int{0, 0, 0}, 10); err == nil {
		t.Error("accepted empty histogram")
	}
}

func TestFitExponentialExact(t *testing.T) {
	// A noiseless exponential histogram must be fitted exactly.
	days := 1000
	gen := PDF{A: 0.5, B: 0.8}
	hist := make([]int, 8)
	for x := 1; x < len(hist); x++ {
		hist[x] = int(math.Round(gen.At(x) * float64(days) * 1000))
	}
	fit, err := FitExponential(hist, days*1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.B-gen.B) > 0.02 || math.Abs(fit.A-gen.A)/gen.A > 0.02 {
		t.Errorf("fit = %v, want %v", fit, gen)
	}
}

func TestFitExponentialProperty(t *testing.T) {
	// Property: fitting a noiseless histogram generated from random
	// parameters recovers them.
	prop := func(aRaw, bRaw uint8) bool {
		a := 0.1 + float64(aRaw)/256.0     // 0.1 .. 1.1
		b := 0.3 + float64(bRaw)/256.0*1.5 // 0.3 .. 1.8
		gen := PDF{A: a, B: b}
		const scale = 1e7
		hist := make([]int, 7)
		for x := 1; x < len(hist); x++ {
			hist[x] = int(math.Round(gen.At(x) * scale))
		}
		fit, err := FitExponential(hist, int(scale))
		if err != nil {
			return false
		}
		return math.Abs(fit.B-b) < 0.05 && math.Abs(fit.A-a)/a < 0.05
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHistogramFilters(t *testing.T) {
	evs := []Event{
		{Day: 0, Level: 1, Size: 1},
		{Day: 1, Level: 1, Size: 1},
		{Day: 1, Level: 2, Size: 1},
		{Day: 2, Level: 1, Size: 3},
		{Day: 2, Level: 1, Size: 99}, // out of range
	}
	h := Histogram(evs, 1, 5)
	if h[1] != 2 || h[3] != 1 {
		t.Fatalf("histogram = %v", h)
	}
	sum := 0
	for _, c := range h {
		sum += c
	}
	if sum != 3 {
		t.Fatalf("histogram total = %d, want 3", sum)
	}
}

func TestSampleScheduleKillsPlacedRanks(t *testing.T) {
	// A small fully occupied machine so sampled element failures always
	// hit placed ranks.
	fdh := machine.FDH{LevelNames: []string{"nodes"}, Counts: []int{16}}
	pl, err := machine.BlockPlacement(fdh, 128, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	// High-rate PDF so the schedule is non-empty.
	pdfs := []PDF{{A: 0.5, B: 0.5}}
	sched := SampleSchedule(rng, pl, pdfs, 100*86400, 3)
	if len(sched) == 0 {
		t.Fatal("empty schedule at high failure rate")
	}
	prev := 0.0
	for _, c := range sched {
		if c.Time < prev {
			t.Fatal("schedule not time-ordered")
		}
		prev = c.Time
		for _, r := range c.Ranks {
			if r < 0 || r >= 128 {
				t.Fatalf("rank %d out of range", r)
			}
		}
	}
	if sched.TotalRanksKilled() == 0 {
		t.Fatal("no ranks killed")
	}
}

func TestSampleScheduleRespectsRate(t *testing.T) {
	fdh := machine.TSUBAME2()
	pl, err := machine.BlockPlacement(fdh, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	// Zero rate: no failures ever.
	sched := SampleSchedule(rng, pl, []PDF{{A: 0, B: 1}}, 365*86400, 4)
	if len(sched) != 0 {
		t.Fatalf("zero-rate schedule has %d crashes", len(sched))
	}
}
