// Package failure models hardware failures: the per-level exponential
// probability density functions fitted from the TSUBAME2.0 failure history
// in §7.1 of the paper, a synthetic failure-history generator, a
// least-squares exponential fitter (reproducing the pipeline behind
// Figs. 10a/10b), and fail-stop failure schedules for injection into the
// simulated runtime.
package failure

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// PDF is an exponential concurrent-failure distribution P_j(x) = A*exp(-B*x):
// the probability, per day, that exactly x elements of one hierarchy level
// fail simultaneously.
type PDF struct {
	A float64
	B float64
}

// At evaluates the distribution at x simultaneous failures.
func (p PDF) At(x int) float64 {
	return p.A * math.Exp(-p.B*float64(x))
}

// String formats the PDF the way the paper annotates its figures.
func (p PDF) String() string {
	return fmt.Sprintf("%.5g e^(-%.5g x)", p.A, p.B)
}

// The four distributions fitted from the 1962 crashes in the TSUBAME2.0
// failure history (§7.1): nodes, PSUs, edge switches, racks. Units are
// failures per day.
var (
	TSUBAMENodePDF   = PDF{A: 0.30142e-2, B: 1.3567}
	TSUBAMEPSUPDF    = PDF{A: 1.1836e-4, B: 1.4831}
	TSUBAMESwitchPDF = PDF{A: 3.9249e-5, B: 1.5902}
	TSUBAMERackPDF   = PDF{A: 3.2257e-5, B: 1.5488}
)

// TSUBAMEPDFs returns the level-indexed distributions matching
// machine.TSUBAME2 (index 0 = level 1 = nodes).
func TSUBAMEPDFs() []PDF {
	return []PDF{TSUBAMENodePDF, TSUBAMEPSUPDF, TSUBAMESwitchPDF, TSUBAMERackPDF}
}

// Event is one entry of a failure history: on a given day, Size elements of
// hierarchy level Level (1-based) failed simultaneously.
type Event struct {
	Day   int
	Level int
	Size  int
}

// GenerateHistory draws a synthetic failure history of the given number of
// days from per-level PDFs (pdfs[j-1] is level j). For every day, level, and
// candidate size x in 1..maxSize, an event of that size occurs independently
// with probability PDF.At(x). This inverts the paper's measurement: the
// paper fitted PDFs to a real history; we generate a history from the
// published PDFs so the fitting pipeline can be exercised end to end.
func GenerateHistory(rng *rand.Rand, pdfs []PDF, days, maxSize int) []Event {
	var evs []Event
	for d := 0; d < days; d++ {
		for j, pdf := range pdfs {
			for x := 1; x <= maxSize; x++ {
				if rng.Float64() < pdf.At(x) {
					evs = append(evs, Event{Day: d, Level: j + 1, Size: x})
				}
			}
		}
	}
	return evs
}

// Histogram bins a history: result[x] is the number of events of the given
// level with exactly x simultaneous failures (index 0 unused).
func Histogram(evs []Event, level, maxSize int) []int {
	h := make([]int, maxSize+1)
	for _, e := range evs {
		if e.Level == level && e.Size >= 1 && e.Size <= maxSize {
			h[e.Size]++
		}
	}
	return h
}

// FitExponential fits P(x) = A*exp(-B*x) to a per-day event-rate histogram
// by least squares on the log-transformed counts, exactly the technique
// behind the annotations of Figs. 10a/10b. hist[x] is the event count for
// size x over the observation period of the given number of days; zero bins
// are skipped. It needs at least two non-empty bins.
func FitExponential(hist []int, days int) (PDF, error) {
	if days <= 0 {
		return PDF{}, errors.New("failure: non-positive observation period")
	}
	var xs, ys []float64
	for x := 1; x < len(hist); x++ {
		if hist[x] <= 0 {
			continue
		}
		rate := float64(hist[x]) / float64(days)
		xs = append(xs, float64(x))
		ys = append(ys, math.Log(rate))
	}
	if len(xs) < 2 {
		return PDF{}, fmt.Errorf("failure: %d non-empty bins, need at least 2", len(xs))
	}
	// Ordinary least squares: y = a + b*x with a = ln A, b = -B.
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return PDF{}, errors.New("failure: degenerate fit")
	}
	b := (n*sxy - sx*sy) / den
	a := (sy - b*sx) / n
	return PDF{A: math.Exp(a), B: -b}, nil
}
