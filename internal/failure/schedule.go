package failure

import (
	"math/rand"
	"sort"

	"repro/internal/machine"
)

// Crash is a concrete fail-stop event: the listed ranks die at the given
// virtual time.
type Crash struct {
	Time  float64
	Ranks []int
}

// Schedule is a time-ordered list of crashes to inject into a run.
type Schedule []Crash

// SampleSchedule draws a failure schedule for a run of the given virtual
// duration (seconds) on the placed machine. For each hierarchy level it
// samples simultaneous-failure events from the per-level PDFs (interpreting
// PDF.At(x) as a per-day event rate), picks the failed elements uniformly,
// and kills every rank placed on them. Ranks are identified through the
// placement's map M.
func SampleSchedule(rng *rand.Rand, pl machine.Placement, pdfs []PDF, duration float64, maxSize int) Schedule {
	const day = 86400.0
	var sched Schedule
	days := duration / day
	for j := 1; j <= pl.FDH.Levels() && j <= len(pdfs); j++ {
		hj := pl.FDH.Count(j)
		for x := 1; x <= maxSize && x <= hj; x++ {
			rate := pdfs[j-1].At(x) // events per day
			// Poisson arrivals over the run; thin to exponential gaps.
			t := 0.0
			for {
				if rate <= 0 {
					break
				}
				t += rng.ExpFloat64() / rate * day
				if t > days*day {
					break
				}
				elems := rng.Perm(hj)[:x]
				var ranks []int
				for p := range pl.NodeOf {
					for _, e := range elems {
						if pl.M(p, j) == e {
							ranks = append(ranks, p)
							break
						}
					}
				}
				if len(ranks) > 0 {
					sched = append(sched, Crash{Time: t, Ranks: ranks})
				}
			}
		}
	}
	sort.Slice(sched, func(a, b int) bool { return sched[a].Time < sched[b].Time })
	return sched
}

// TotalRanksKilled counts rank deaths across the schedule (a rank appearing
// in several crashes is counted each time).
func (s Schedule) TotalRanksKilled() int {
	n := 0
	for _, c := range s {
		n += len(c.Ranks)
	}
	return n
}
