// Package core is the façade over the paper's primary contribution. The
// implementation lives in the sibling packages; core re-exports the types a
// downstream user composes:
//
//   - rma.World / rma.Proc — the RMA runtime (the substrate, §2);
//   - ftrma.System / ftrma.Process — the holistic fault-tolerance protocol
//     (logging, demand and coordinated checkpointing, causal recovery,
//     §3–§6);
//   - reliability.Model — the P_cf analysis (§5.2);
//   - machine.FDH / machine.Grouping — failure domains and process groups.
//
// A minimal fault-tolerant program:
//
//	w := core.NewWorld(core.WorldConfig{N: 16, WindowWords: 1 << 16})
//	sys, err := core.NewSystem(w, core.Config{
//	    Groups: 4, ChecksumsPerGroup: 1,
//	    UseDaly: true, MTBF: 86400,
//	    Log: core.LogConfig{Puts: true, Gets: true},
//	})
//	...
//	w.Run(func(r int) { app(sys.Process(r)) })
//	// on failure:
//	w.Kill(victim)
//	res, err := sys.Recover(victim)
//	w.RunRank(victim, func() { res.Proc.ReplayAll(res.Logs) })
package core

import (
	"repro/internal/ftrma"
	"repro/internal/machine"
	"repro/internal/reliability"
	"repro/internal/rma"
)

// Runtime substrate.
type (
	// World is the simulated RMA machine.
	World = rma.World
	// WorldConfig configures a World.
	WorldConfig = rma.Config
	// API is the programming interface applications are written against.
	API = rma.API
)

// NewWorld builds a simulated RMA machine.
func NewWorld(cfg WorldConfig) *World { return rma.NewWorld(cfg) }

// Fault-tolerance protocol.
type (
	// System is the ftRMA protocol attached to a World.
	System = ftrma.System
	// Config tunes the protocol.
	Config = ftrma.Config
	// LogConfig groups Config.Log, the access-logging knobs.
	LogConfig = ftrma.LogConfig
	// StreamConfig groups Config.Stream, the demand-checkpoint
	// streaming knobs.
	StreamConfig = ftrma.StreamConfig
	// Process is the per-rank protocol wrapper (implements API).
	Process = ftrma.Process
	// RecoverResult is the outcome of recovering a failed rank.
	RecoverResult = ftrma.RecoverResult
)

// ErrFallback reports a causal recovery that rolled back to the last
// coordinated checkpoint.
var ErrFallback = ftrma.ErrFallback

// NewSystem attaches the protocol to a world.
func NewSystem(w *World, cfg Config) (*System, error) { return ftrma.NewSystem(w, cfg) }

// Reliability analysis.
type (
	// ReliabilityModel evaluates the probability of catastrophic failure.
	ReliabilityModel = reliability.Model
	// FDH is a hardware failure-domain hierarchy.
	FDH = machine.FDH
	// Grouping is the CM/CH process-group structure.
	Grouping = machine.Grouping
)
