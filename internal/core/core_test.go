package core_test

import (
	"errors"
	"testing"

	"repro/internal/core"
)

// TestFacadeEndToEnd exercises the documented public surface: build a
// world, attach the protocol, run an exchange, kill a rank, recover it.
func TestFacadeEndToEnd(t *testing.T) {
	const n = 4
	w := core.NewWorld(core.WorldConfig{N: n, WindowWords: 16})
	sys, err := core.NewSystem(w, core.Config{
		Groups: 2, ChecksumsPerGroup: 1,
		LogPuts: true, LogGets: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Run(func(r int) {
		var p core.API = sys.Process(r)
		p.PutValue((r+1)%n, r, uint64(100+r))
		p.Gsync()
	})
	const victim = 1
	w.Kill(victim)
	res, err := sys.Recover(victim)
	if err != nil {
		t.Fatal(err)
	}
	if res.FellBack {
		t.Fatal("unexpected fallback")
	}
	w.RunRank(victim, func() { res.Proc.ReplayAll(res.Logs) })
	if got := w.Proc(victim).Local()[victim-1]; got != uint64(100+victim-1) {
		t.Fatalf("recovered cell = %d", got)
	}
}

// TestFacadeFallbackError checks the exported sentinel matches the
// underlying one.
func TestFacadeFallbackError(t *testing.T) {
	w := core.NewWorld(core.WorldConfig{N: 2, WindowWords: 8})
	sys, err := core.NewSystem(w, core.Config{
		Groups: 1, ChecksumsPerGroup: 1,
		LogPuts: true, LogGets: true,
		FixedInterval: 1e-12,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Run(func(r int) {
		p := sys.Process(r)
		p.Gsync() // anchor
		p.Gsync() // coordinated checkpoint
		if r == 0 {
			p.GetInto(1, 0, 1, 0) // open epoch: N flag raised
		}
	})
	w.Kill(0)
	_, err = sys.Recover(0)
	if !errors.Is(err, core.ErrFallback) {
		t.Fatalf("err = %v, want core.ErrFallback", err)
	}
}

// TestReliabilityFacade evaluates P_cf through the re-exported types.
func TestReliabilityFacade(t *testing.T) {
	var fdh core.FDH
	fdh.LevelNames = []string{"nodes"}
	fdh.Counts = []int{64}
	_ = fdh // type usability check
	var g core.Grouping
	_ = g
	var m core.ReliabilityModel
	_ = m
}
