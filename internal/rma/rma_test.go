package rma

import (
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
)

func newTestWorld(n, words int) *World {
	return NewWorld(Config{N: n, WindowWords: words})
}

func TestPutVisibleAfterFlushOnly(t *testing.T) {
	w := newTestWorld(2, 16)
	w.Run(func(r int) {
		p := w.Proc(r)
		if r == 0 {
			p.Put(1, 3, []uint64{42})
			// Relaxed consistency: not visible before the epoch closes.
			if got := w.Proc(1).LocalRead(3, 1)[0]; got != 0 {
				t.Errorf("put visible before flush: %d", got)
			}
			p.Flush(1)
			if got := w.Proc(1).LocalRead(3, 1)[0]; got != 42 {
				t.Errorf("put not visible after flush: %d", got)
			}
		}
	})
}

func TestPutCopiesSourceBuffer(t *testing.T) {
	// The source buffer may be reused after issuing; the runtime must have
	// copied it (MPI would not guarantee this, we do — documented).
	w := newTestWorld(2, 8)
	w.Run(func(r int) {
		p := w.Proc(r)
		if r == 0 {
			buf := []uint64{7}
			p.Put(1, 0, buf)
			buf[0] = 99
			p.Flush(1)
			if got := w.Proc(1).LocalRead(0, 1)[0]; got != 7 {
				t.Errorf("put delivered %d, want the issue-time value 7", got)
			}
		}
	})
}

func TestGetFilledAtEpochClose(t *testing.T) {
	w := newTestWorld(2, 8)
	w.Proc(1).Local()[5] = 1234
	w.Run(func(r int) {
		p := w.Proc(r)
		if r == 0 {
			dest := p.Get(1, 5, 1)
			if dest[0] != 0 {
				t.Error("get destination filled before epoch close")
			}
			p.Flush(1)
			if dest[0] != 1234 {
				t.Errorf("get returned %d, want 1234", dest[0])
			}
		}
	})
}

func TestGetBlocking(t *testing.T) {
	w := newTestWorld(2, 8)
	w.Proc(1).Local()[2] = 77
	w.Run(func(r int) {
		if r == 0 {
			got := w.Proc(0).GetBlocking(1, 2, 1)
			if got[0] != 77 {
				t.Errorf("blocking get = %d, want 77", got[0])
			}
		}
	})
}

func TestAccumulateSum(t *testing.T) {
	w := newTestWorld(3, 8)
	w.Run(func(r int) {
		p := w.Proc(r)
		if r != 2 {
			p.Accumulate(2, 0, []uint64{10}, OpSum)
			p.Flush(2)
		}
		p.Barrier()
		if r == 2 {
			if got := p.Local()[0]; got != 20 {
				t.Errorf("accumulated %d, want 20", got)
			}
		}
	})
}

func TestAccumulateOps(t *testing.T) {
	w := newTestWorld(2, 8)
	w.Proc(1).Local()[0] = 5
	w.Proc(1).Local()[1] = 5
	w.Proc(1).Local()[2] = 5
	w.Proc(1).Local()[3] = 0b1100
	w.Run(func(r int) {
		if r != 0 {
			return
		}
		p := w.Proc(0)
		p.Accumulate(1, 0, []uint64{3}, OpMax)
		p.Accumulate(1, 1, []uint64{3}, OpMin)
		p.Accumulate(1, 2, []uint64{3}, OpReplace)
		p.Accumulate(1, 3, []uint64{0b1010}, OpXor)
		p.Flush(1)
		loc := w.Proc(1).Local()
		if loc[0] != 5 || loc[1] != 3 || loc[2] != 3 || loc[3] != 0b0110 {
			t.Errorf("accumulate results = %v", loc[:4])
		}
	})
}

func TestEpochCountsPerTarget(t *testing.T) {
	w := newTestWorld(3, 8)
	p := w.Proc(0)
	w.Run(func(r int) {
		if r != 0 {
			return
		}
		if p.Epoch(1) != 0 || p.Epoch(2) != 0 {
			t.Error("fresh epochs not zero")
		}
		p.Put(1, 0, []uint64{1})
		p.Flush(1)
		p.Flush(1)
		if p.Epoch(1) != 2 || p.Epoch(2) != 0 {
			t.Errorf("epochs = %d,%d; want 2,0", p.Epoch(1), p.Epoch(2))
		}
		p.FlushAll()
		if p.Epoch(1) != 3 || p.Epoch(2) != 1 {
			t.Errorf("after FlushAll epochs = %d,%d; want 3,1", p.Epoch(1), p.Epoch(2))
		}
	})
}

func TestGsyncIncrementsAllEpochsAndSyncs(t *testing.T) {
	w := newTestWorld(4, 8)
	w.Run(func(r int) {
		p := w.Proc(r)
		p.PutValue((r+1)%4, 0, uint64(r+1))
		p.Gsync()
		// After gsync every epoch advanced and all puts are visible.
		for q := 0; q < 4; q++ {
			if p.Epoch(q) != 1 {
				t.Errorf("rank %d epoch(%d) = %d, want 1", r, q, p.Epoch(q))
			}
		}
		want := uint64((r+3)%4 + 1)
		if got := p.LocalRead(0, 1)[0]; got != want {
			t.Errorf("rank %d saw %d, want %d", r, got, want)
		}
	})
}

func TestCASAndFAO(t *testing.T) {
	w := newTestWorld(2, 8)
	w.Run(func(r int) {
		if r != 0 {
			return
		}
		p := w.Proc(0)
		if prev := p.CompareAndSwap(1, 0, 0, 9); prev != 0 {
			t.Errorf("CAS prev = %d, want 0", prev)
		}
		if prev := p.CompareAndSwap(1, 0, 0, 11); prev != 9 {
			t.Errorf("failed CAS prev = %d, want 9", prev)
		}
		if got := w.Proc(1).LocalRead(0, 1)[0]; got != 9 {
			t.Errorf("CAS result = %d, want 9", got)
		}
		if prev := p.FetchAndOp(1, 1, 5, OpSum); prev != 0 {
			t.Errorf("FAO prev = %d, want 0", prev)
		}
		if prev := p.FetchAndOp(1, 1, 5, OpSum); prev != 5 {
			t.Errorf("FAO prev = %d, want 5", prev)
		}
	})
}

func TestFAOConcurrentAtomicity(t *testing.T) {
	// All ranks increment one counter; the total must be exact.
	const n, per = 8, 200
	w := newTestWorld(n, 4)
	w.Run(func(r int) {
		p := w.Proc(r)
		for i := 0; i < per; i++ {
			p.FetchAndOp(0, 0, 1, OpSum)
		}
		p.Barrier()
		if got := p.World().Proc(0).LocalRead(0, 1)[0]; got != n*per {
			t.Errorf("rank %d sees counter %d, want %d", r, got, n*per)
		}
	})
}

func TestLockMutualExclusion(t *testing.T) {
	const n, per = 6, 100
	w := newTestWorld(n, 4)
	w.Run(func(r int) {
		p := w.Proc(r)
		for i := 0; i < per; i++ {
			p.Lock(0, StrWindow)
			// Non-atomic read-modify-write protected by the lock.
			v := w.Proc(0).LocalRead(0, 1)[0]
			w.Proc(0).world.windows[0].applyPut(0, []uint64{v + 1})
			p.Unlock(0, StrWindow)
		}
	})
	if got := w.Proc(0).Local()[0]; got != n*per {
		t.Errorf("counter = %d, want %d", got, n*per)
	}
}

func TestLockAdvancesVirtualTime(t *testing.T) {
	w := newTestWorld(2, 4)
	w.Run(func(r int) {
		if r != 0 {
			return
		}
		p := w.Proc(0)
		before := p.Now()
		p.Lock(1, StrWindow)
		if p.Now() <= before {
			t.Error("lock did not advance the clock")
		}
		p.Unlock(1, StrWindow)
	})
}

func TestUnlockClosesEpoch(t *testing.T) {
	w := newTestWorld(2, 8)
	w.Run(func(r int) {
		if r != 0 {
			return
		}
		p := w.Proc(0)
		p.Lock(1, StrWindow)
		p.Put(1, 0, []uint64{5})
		e := p.Epoch(1)
		p.Unlock(1, StrWindow)
		if p.Epoch(1) != e+1 {
			t.Error("unlock did not close the epoch")
		}
		if got := w.Proc(1).LocalRead(0, 1)[0]; got != 5 {
			t.Error("unlock did not apply pending put")
		}
	})
}

func TestComputeAndVirtualTime(t *testing.T) {
	w := NewWorld(Config{N: 1, WindowWords: 1, Params: sim.Params{
		FlopRate: 100, NetLatency: 1, NetBW: 8, OpOverhead: 0,
	}})
	w.Run(func(r int) {
		p := w.Proc(0)
		p.Compute(200) // 2 s at 100 flop/s
		if p.Now() != 2 {
			t.Errorf("clock = %g, want 2", p.Now())
		}
	})
}

func TestVirtualTimePutFlush(t *testing.T) {
	params := sim.DefaultParams()
	w := NewWorld(Config{N: 2, WindowWords: 1 << 16, Params: params})
	w.Run(func(r int) {
		if r != 0 {
			return
		}
		p := w.Proc(0)
		p.Put(1, 0, make([]uint64, 1<<10)) // 8 KiB
		afterPut := p.Now()
		if afterPut < params.InjectTime(8<<10) {
			t.Error("put did not charge injection time")
		}
		p.Flush(1)
		if p.Now() < afterPut+params.NetLatency {
			t.Error("flush did not charge completion latency")
		}
	})
}

func TestBarrierResolvesMaxTime(t *testing.T) {
	w := newTestWorld(3, 4)
	w.Run(func(r int) {
		p := w.Proc(r)
		p.Compute(float64(r) * 2e9) // ranks finish at 0s, 1s, 2s
		p.Barrier()
		if p.Now() < 2.0 {
			t.Errorf("rank %d released at %g, want >= 2", r, p.Now())
		}
	})
}

func TestKillLosesMemoryAndUnwinds(t *testing.T) {
	w := newTestWorld(3, 8)
	w.Proc(2).Local()[0] = 555
	var mu sync.Mutex
	reached := map[int]bool{}
	w.Run(func(r int) {
		p := w.Proc(r)
		p.Barrier()
		if r == 0 {
			w.Kill(2)
		}
		// Rank 2 unwinds at its next call; others proceed.
		p.Barrier()
		mu.Lock()
		reached[r] = true
		mu.Unlock()
	})
	if !reached[0] || !reached[1] || reached[2] {
		t.Fatalf("reached = %v", reached)
	}
	if w.Alive(2) {
		t.Fatal("rank 2 still alive after kill")
	}
	if got := w.windows[2].words[0]; got != 0 {
		t.Fatalf("dead rank's memory survived: %d", got)
	}
}

func TestAccessToDeadTargetPanics(t *testing.T) {
	w := newTestWorld(2, 8)
	w.Kill(1)
	defer func() {
		if _, ok := recover().(TargetFailedError); !ok {
			t.Fatal("expected TargetFailedError")
		}
	}()
	w.Run(func(r int) {
		w.Proc(r).PutValue(1, 0, 1)
		w.Proc(r).Flush(1)
	})
}

func TestKillReleasesHeldLocks(t *testing.T) {
	w := newTestWorld(2, 8)
	w.Run(func(r int) {
		p := w.Proc(r)
		if r == 1 {
			p.Lock(0, StrWindow)
			w.Kill(1)
			p.Barrier() // unwinds here; the lock must have been released
		} else {
			// Wait until rank 1 is dead, then take the lock.
			for w.Alive(1) {
			}
			p.Lock(0, StrWindow)
			p.Unlock(0, StrWindow)
		}
	})
}

// TestReleaseLocksHeldByUnblocksWaiters is the lock-aware crisis' core
// guarantee, per structure: when a condemned rank dies holding a lock —
// any protocol structure lock or a user lock — force-releasing its locks
// must wake a survivor already blocked in Lock, promptly and without
// killing the holder first (Kill is gated on a collective the blocked
// survivor could otherwise never reach). Also pins the sweep idiom: the
// first ReleaseLocksHeldBy reports a release, a second reports none.
func TestReleaseLocksHeldByUnblocksWaiters(t *testing.T) {
	structures := []struct {
		name string
		s    int
	}{
		{"StrWindow", StrWindow},
		{"StrMeta", StrMeta},
		{"StrLP", StrLP},
		{"StrLG", StrLG},
		{"UserLock", NumStructures}, // first extra lock
	}
	for _, tc := range structures {
		t.Run(tc.name, func(t *testing.T) {
			w := NewWorld(Config{N: 3, WindowWords: 8, ExtraLocks: 1})
			held := make(chan struct{})
			released := make(chan bool, 1)
			var waited time.Duration
			w.Run(func(r int) {
				p := w.Proc(r)
				switch r {
				case 1:
					p.Lock(0, tc.s)
					close(held)
					// Condemned: unwinds without ever unlocking.
				case 2:
					<-held
					go func() {
						// Give the Lock below time to actually block, so
						// the release exercises the waiter-wakeup path
						// (the no-contention order is safe either way).
						time.Sleep(20 * time.Millisecond)
						released <- w.ReleaseLocksHeldBy(1)
					}()
					start := time.Now()
					p.Lock(0, tc.s)
					waited = time.Since(start)
					p.Unlock(0, tc.s)
				}
			})
			if !<-released {
				t.Fatal("ReleaseLocksHeldBy reported no lock held by the condemned rank")
			}
			if w.ReleaseLocksHeldBy(1) {
				t.Fatal("second sweep found a lock the first should have released")
			}
			if waited > 5*time.Second {
				t.Fatalf("survivor waited %v for the force-released lock", waited)
			}
		})
	}
}

func TestRespawnJoinsCollectives(t *testing.T) {
	w := newTestWorld(3, 8)
	w.Kill(1)
	w.Run(func(r int) {
		w.Proc(r).Compute(1e9)
	})
	p := w.Respawn(1)
	if !w.Alive(1) {
		t.Fatal("respawned rank not alive")
	}
	if p.Now() == 0 {
		t.Fatal("respawned rank's clock not advanced to survivors' time")
	}
	// All three participate in collectives again.
	w.Run(func(r int) {
		w.Proc(r).Barrier()
		w.Proc(r).Gsync()
	})
}

func TestRespawnLiveRankPanics(t *testing.T) {
	w := newTestWorld(2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("respawn of live rank did not panic")
		}
	}()
	w.Respawn(0)
}

func TestStatsCounting(t *testing.T) {
	w := newTestWorld(2, 16)
	w.Run(func(r int) {
		if r != 0 {
			return
		}
		p := w.Proc(0)
		p.Put(1, 0, []uint64{1, 2})
		p.Get(1, 0, 3)
		p.Accumulate(1, 0, []uint64{1}, OpSum)
		p.CompareAndSwap(1, 4, 0, 1)
		p.FetchAndOp(1, 5, 1, OpSum)
		p.Flush(1)
		s := p.Stats()
		if s.Puts != 1 || s.Gets != 1 || s.Accumulates != 1 || s.CAS != 1 || s.FAO != 1 || s.Flushes != 1 {
			t.Errorf("stats = %+v", s)
		}
		if s.WordsPut != 3 || s.WordsGot != 3 {
			t.Errorf("word counts = %d put, %d got", s.WordsPut, s.WordsGot)
		}
	})
	total := w.TotalOps()
	if total.Puts != 1 {
		t.Errorf("TotalOps.Puts = %d", total.Puts)
	}
}

func TestOutOfRangeAccessPanics(t *testing.T) {
	w := newTestWorld(2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range access did not panic")
		}
	}()
	w.Run(func(r int) {
		if r == 0 {
			p := w.Proc(0)
			p.Put(1, 3, []uint64{1, 2, 3})
			p.Flush(1)
		}
	})
}

type recordingTracer struct {
	mu   sync.Mutex
	acts []TraceAction
}

func (rt *recordingTracer) OnAction(a TraceAction) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.acts = append(rt.acts, a)
}

func TestTracerObservesActions(t *testing.T) {
	w := newTestWorld(2, 8)
	rt := &recordingTracer{}
	w.SetTracer(rt)
	w.Run(func(r int) {
		if r == 0 {
			p := w.Proc(0)
			p.PutValue(1, 0, 1)
			p.Flush(1)
		}
	})
	w.SetTracer(nil)
	kinds := map[string]int{}
	for _, a := range rt.acts {
		kinds[a.Kind]++
	}
	if kinds["put"] != 1 || kinds["flush"] != 1 {
		t.Fatalf("traced kinds = %v", kinds)
	}
}

func TestPendingToAndDroppedOnDeadTarget(t *testing.T) {
	w := newTestWorld(3, 8)
	w.Run(func(r int) {
		if r != 0 {
			return
		}
		p := w.Proc(0)
		p.PutValue(1, 0, 1)
		if p.PendingTo(1) != 1 {
			t.Error("pending op not buffered")
		}
		w.Kill(1)
		p.FlushAll() // must drop, not apply, the pending op
		if p.PendingTo(1) != 0 {
			t.Error("pending op to dead rank not dropped")
		}
	})
}
