package rma

import (
	"fmt"
	"slices"
	"sync"
)

// lockState is one lockable structure of a rank's memory: a real mutex for
// mutual exclusion plus virtual-time metadata modeling the queueing delay of
// remote lock acquisition.
type lockState struct {
	mu sync.Mutex // held between Lock and Unlock

	meta        sync.Mutex // guards the fields below
	holder      int        // rank currently holding the lock, -1 if free
	availableAt float64    // virtual time at which the lock was last released
}

// dirtyChunkWords is the granularity of dirty-region tracking: one
// generation stamp per 64-word (512-byte) chunk of the window.
const dirtyChunkWords = 64

// DirtyRange is a half-open word range [Off, Off+Len) of a window reported
// as modified by LocalReadDirty.
type DirtyRange struct{ Off, Len int }

// window is the shared memory a rank exposes, plus its lockable structures.
type window struct {
	mu    sync.Mutex // serializes physical access (applies, atomics, reads)
	words []uint64
	locks []lockState

	// Dirty-region tracking for incremental checkpoints (§6.2): gen counts
	// mutations, chunkGen[c] records the generation of the last write that
	// touched chunk c. aliased is set once Local hands out a raw reference
	// to the words — from then on writes can bypass the runtime, so change
	// detection falls back to comparing contents against the caller's
	// checkpoint base (exact, just not free).
	gen      uint64
	chunkGen []uint64
	aliased  bool
}

func newWindow(words, numLocks int) *window {
	w := &window{
		words:    make([]uint64, words),
		locks:    make([]lockState, numLocks),
		chunkGen: make([]uint64, (words+dirtyChunkWords-1)/dirtyChunkWords),
	}
	for i := range w.locks {
		w.locks[i].holder = -1
	}
	return w
}

// markDirty stamps the chunks covering [off, off+n) with a fresh
// generation. Callers hold w.mu.
func (w *window) markDirty(off, n int) {
	if n <= 0 {
		return
	}
	w.gen++
	for c := off / dirtyChunkWords; c <= (off+n-1)/dirtyChunkWords; c++ {
		w.chunkGen[c] = w.gen
	}
}

// alias returns the raw words and permanently downgrades dirty tracking to
// content comparison (writes through the returned slice are invisible to
// the runtime). Only Local and GetInto take this path; the non-aliasing
// ReadAt/GetCopy reads go through readInto and leave the stamps exact.
func (w *window) alias() []uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.aliased = true
	return w.words
}

// readDirtyInto copies into dst every chunk modified since generation
// `since` and returns the merged dirty ranges plus the generation cursor
// for the next call. base must be the caller's copy of the window contents
// as of `since`: when the window has been aliased, modified chunks are
// found by comparing against it instead of trusting the write stamps.
func (w *window) readDirtyInto(dst, base []uint64, since uint64) ([]DirtyRange, uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := len(w.words)
	var ranges []DirtyRange
	for off := 0; off < n; off += dirtyChunkWords {
		ln := dirtyChunkWords
		if off+ln > n {
			ln = n - off
		}
		if w.aliased {
			if slices.Equal(w.words[off:off+ln], base[off:off+ln]) {
				continue
			}
		} else if w.chunkGen[off/dirtyChunkWords] <= since {
			continue
		}
		if k := len(ranges); k > 0 && ranges[k-1].Off+ranges[k-1].Len == off {
			ranges[k-1].Len += ln
		} else {
			ranges = append(ranges, DirtyRange{Off: off, Len: ln})
		}
		copy(dst[off:off+ln], w.words[off:off+ln])
	}
	return ranges, w.gen
}

// checkRange panics on out-of-bounds accesses: usage errors abort the run,
// as an RMA runtime would.
func (w *window) checkRange(off, n int) {
	if off < 0 || n < 0 || off+n > len(w.words) {
		panic(fmt.Sprintf("rma: access [%d, %d) outside window of %d words", off, off+n, len(w.words)))
	}
}

// applyPut writes data at off under the window lock.
func (w *window) applyPut(off int, data []uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.checkRange(off, len(data))
	copy(w.words[off:], data)
	w.markDirty(off, len(data))
}

// applyAccumulate combines data at off under the window lock.
func (w *window) applyAccumulate(off int, data []uint64, op ReduceOp) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.checkRange(off, len(data))
	for i, v := range data {
		w.words[off+i] = op.apply(w.words[off+i], v)
	}
	w.markDirty(off, len(data))
}

// readInto copies n words from off into dst under the window lock.
func (w *window) readInto(off int, dst []uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.checkRange(off, len(dst))
	copy(dst, w.words[off:off+len(dst)])
}

// cas performs an atomic compare-and-swap on one word.
func (w *window) cas(off int, old, new uint64) uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.checkRange(off, 1)
	prev := w.words[off]
	if prev == old {
		w.words[off] = new
		w.markDirty(off, 1)
	}
	return prev
}

// getAccumulate atomically combines data into the window at off and
// returns the previous contents (MPI_Get_accumulate).
func (w *window) getAccumulate(off int, data []uint64, op ReduceOp) []uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.checkRange(off, len(data))
	prev := make([]uint64, len(data))
	copy(prev, w.words[off:off+len(data)])
	for i, v := range data {
		w.words[off+i] = op.apply(w.words[off+i], v)
	}
	w.markDirty(off, len(data))
	return prev
}

// fao performs an atomic fetch-and-op on one word.
func (w *window) fao(off int, operand uint64, op ReduceOp) uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.checkRange(off, 1)
	prev := w.words[off]
	w.words[off] = op.apply(prev, operand)
	w.markDirty(off, 1)
	return prev
}

// clear zeroes the window: the volatile memory of a crashed rank is gone.
func (w *window) clear() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := range w.words {
		w.words[i] = 0
	}
	w.markDirty(0, len(w.words))
}

// acquire takes structure lock str on behalf of rank p whose virtual clock
// reads now; it returns the virtual time after acquisition.
func (w *window) acquire(str, p int, now, latency float64) float64 {
	ls := &w.locks[str]
	ls.mu.Lock()
	ls.meta.Lock()
	defer ls.meta.Unlock()
	start := now
	if ls.availableAt > start {
		start = ls.availableAt
	}
	ls.holder = p
	// Request + grant round trip.
	return start + 2*latency
}

// release drops structure lock str; now is the holder's virtual clock.
func (w *window) release(str, p int, now, latency float64) {
	ls := &w.locks[str]
	ls.meta.Lock()
	if ls.holder != p {
		ls.meta.Unlock()
		panic(fmt.Sprintf("rma: rank %d releasing lock %d held by %d", p, str, ls.holder))
	}
	ls.holder = -1
	ls.availableAt = now + latency
	ls.meta.Unlock()
	ls.mu.Unlock()
}

// releaseIfHeldBy force-releases the lock if rank p holds it (crash
// cleanup). Reports whether a release happened.
func (w *window) releaseIfHeldBy(p int) bool {
	released := false
	for i := range w.locks {
		ls := &w.locks[i]
		ls.meta.Lock()
		if ls.holder == p {
			ls.holder = -1
			ls.meta.Unlock()
			ls.mu.Unlock()
			released = true
			continue
		}
		ls.meta.Unlock()
	}
	return released
}
