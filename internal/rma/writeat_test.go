package rma

import (
	"testing"

	"repro/internal/transport"
)

// TestReduceOpWireCodes pins the value-for-value correspondence between
// rma.ReduceOp and the transport wire codes (transport cannot import rma,
// so the two enumerations are mirrored by convention — this test is the
// convention's enforcement).
func TestReduceOpWireCodes(t *testing.T) {
	pairs := []struct {
		op  ReduceOp
		red uint8
	}{
		{OpReplace, transport.RedReplace},
		{OpSum, transport.RedSum},
		{OpMax, transport.RedMax},
		{OpMin, transport.RedMin},
		{OpXor, transport.RedXor},
	}
	for _, p := range pairs {
		if uint8(p.op) != p.red {
			t.Fatalf("ReduceOp %v = %d, wire code %d", p.op, uint8(p.op), p.red)
		}
		if redToOp(p.red) != p.op {
			t.Fatalf("wire code %d decodes to %v, want %v", p.red, redToOp(p.red), p.op)
		}
	}
	if transport.ValidRed(uint8(len(pairs))) {
		t.Fatalf("wire accepts reduce code %d beyond the enumeration", len(pairs))
	}
}

// TestSelfEpochGetIntoPutOrdering pins the program-order interleaving of
// self-communication epochs across the transport seam: a GetInto landing
// and an overlapping self-put must apply in issue order, whichever comes
// first (the delivery path must not batch the landing past the put).
func TestSelfEpochGetIntoPutOrdering(t *testing.T) {
	w := NewWorld(Config{N: 1, WindowWords: 16})
	p := w.Proc(0)
	p.WriteAt(0, []uint64{7})

	p.GetInto(0, 0, 1, 4)     // landing writes window[4] = 7
	p.Put(0, 4, []uint64{99}) // later same-epoch put must win
	p.Flush(0)
	if got := p.ReadAt(4, 1)[0]; got != 99 {
		t.Fatalf("put after GetInto landing lost: window[4] = %d, want 99", got)
	}

	p.Put(0, 5, []uint64{50})
	p.GetInto(0, 0, 1, 5) // later landing must win over the earlier put
	p.Flush(0)
	if got := p.ReadAt(5, 1)[0]; got != 7 {
		t.Fatalf("GetInto landing after put lost: window[5] = %d, want 7", got)
	}
}

// TestWriteAtPreservesStamps: the non-aliasing write path keeps
// generation-stamp dirty tracking exact, unlike writes through Local().
func TestWriteAtPreservesStamps(t *testing.T) {
	w := NewWorld(Config{N: 1, WindowWords: 4 * dirtyChunkWords})
	p := w.Proc(0)

	p.WriteAt(dirtyChunkWords, []uint64{1, 2, 3})
	if p.WindowAliased() {
		t.Fatalf("WriteAt downgraded dirty tracking to content diffing")
	}
	dst := make([]uint64, 4*dirtyChunkWords)
	base := make([]uint64, 4*dirtyChunkWords)
	ranges, gen := p.LocalReadDirty(dst, base, 0)
	if len(ranges) != 1 || ranges[0].Off != dirtyChunkWords || ranges[0].Len != dirtyChunkWords {
		t.Fatalf("dirty ranges after WriteAt: %v", ranges)
	}

	// No writes since the cursor: nothing dirty.
	copy(base, dst)
	if ranges, _ := p.LocalReadDirty(dst, base, gen); len(ranges) != 0 {
		t.Fatalf("phantom dirty ranges: %v", ranges)
	}

	// A Local() alias, by contrast, is the documented downgrade.
	_ = p.Local()
	if !p.WindowAliased() {
		t.Fatalf("Local() did not mark the window aliased")
	}
}
