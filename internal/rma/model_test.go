package rma

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// refModel is a sequential reference implementation of the RMA memory
// semantics: windows as plain slices, puts/gets buffered per (src, trg) and
// applied at epoch close, atomics immediate. Random programs executed
// rank-by-rank (deterministically scheduled) must produce identical memory
// on the concurrent runtime.
type refModel struct {
	n       int
	windows [][]uint64
	pending map[[2]int][]refOp
}

type refOp struct {
	isPut bool
	off   int
	data  []uint64
	dest  int // localOff for GetInto
	op    ReduceOp
}

func newRefModel(n, words int) *refModel {
	m := &refModel{n: n, pending: map[[2]int][]refOp{}}
	m.windows = make([][]uint64, n)
	for i := range m.windows {
		m.windows[i] = make([]uint64, words)
	}
	return m
}

func (m *refModel) put(src, trg, off int, data []uint64, op ReduceOp) {
	d := append([]uint64(nil), data...)
	m.pending[[2]int{src, trg}] = append(m.pending[[2]int{src, trg}], refOp{isPut: true, off: off, data: d, op: op})
}

func (m *refModel) getInto(src, trg, off, n, localOff int) {
	m.pending[[2]int{src, trg}] = append(m.pending[[2]int{src, trg}], refOp{off: off, data: make([]uint64, n), dest: localOff})
}

func (m *refModel) flush(src, trg int) {
	key := [2]int{src, trg}
	for _, o := range m.pending[key] {
		if o.isPut {
			for i, v := range o.data {
				m.windows[trg][o.off+i] = o.op.apply(m.windows[trg][o.off+i], v)
			}
		} else {
			copy(m.windows[src][o.dest:], m.windows[trg][o.off:o.off+len(o.data)])
		}
	}
	m.pending[key] = nil
}

func (m *refModel) fao(src, trg, off int, operand uint64, op ReduceOp) {
	m.windows[trg][off] = op.apply(m.windows[trg][off], operand)
	_ = src
}

func (m *refModel) flushAll(src int) {
	for trg := 0; trg < m.n; trg++ {
		m.flush(src, trg)
	}
}

// step is one instruction of a random program.
type step struct {
	kind    int // 0 put, 1 accumulate, 2 getInto, 3 fao, 4 flush, 5 flushAll
	trg     int
	off     int
	n       int
	dest    int
	operand uint64
	op      ReduceOp
}

// genProgram builds a per-rank instruction list with valid offsets.
func genProgram(rng *rand.Rand, n, words, steps int) [][]step {
	progs := make([][]step, n)
	ops := []ReduceOp{OpReplace, OpSum, OpMax, OpMin, OpXor}
	for r := 0; r < n; r++ {
		for s := 0; s < steps; s++ {
			ln := 1 + rng.Intn(3)
			st := step{
				kind:    rng.Intn(6),
				trg:     rng.Intn(n),
				off:     rng.Intn(words - 4),
				n:       ln,
				dest:    rng.Intn(words - 4),
				operand: rng.Uint64() % 100,
				op:      ops[rng.Intn(len(ops))],
			}
			progs[r] = append(progs[r], st)
		}
	}
	return progs
}

// TestRuntimeMatchesReferenceModel executes random programs twice — on the
// concurrent runtime with a deterministic round-robin schedule (one rank
// acts per turn, enforced by running ranks one Run at a time) and on the
// sequential reference model — and compares all windows. Gsyncs between
// turns remove scheduling freedom, so results must be identical.
func TestRuntimeMatchesReferenceModel(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n, words, turns = 3, 16, 12
		progs := genProgram(rng, n, words, turns)

		w := newTestWorld(n, words)
		ref := newRefModel(n, words)
		payload := func(st step, turn, r int) []uint64 {
			out := make([]uint64, st.n)
			for i := range out {
				out[i] = st.operand + uint64(1000*turn+100*r+i)
			}
			return out
		}
		for turn := 0; turn < turns; turn++ {
			// One rank at a time: fully deterministic interleaving.
			for r := 0; r < n; r++ {
				st := progs[r][turn]
				rr := r
				w.RunRank(rr, func() {
					p := w.Proc(rr)
					switch st.kind {
					case 0:
						p.Put(st.trg, st.off, payload(st, turn, rr))
						p.Flush(st.trg)
					case 1:
						p.Accumulate(st.trg, st.off, payload(st, turn, rr), st.op)
						p.Flush(st.trg)
					case 2:
						if st.trg != rr {
							p.GetInto(st.trg, st.off, st.n, st.dest)
							p.Flush(st.trg)
						}
					case 3:
						p.FetchAndOp(st.trg, st.off, st.operand, st.op)
					case 4:
						p.Flush(st.trg)
					case 5:
						p.FlushAll()
					}
				})
				// Mirror on the reference model.
				switch st.kind {
				case 0:
					ref.put(r, st.trg, st.off, payload(st, turn, r), OpReplace)
					ref.flush(r, st.trg)
				case 1:
					ref.put(r, st.trg, st.off, payload(st, turn, r), st.op)
					ref.flush(r, st.trg)
				case 2:
					if st.trg != r {
						ref.getInto(r, st.trg, st.off, st.n, st.dest)
						ref.flush(r, st.trg)
					}
				case 3:
					ref.fao(r, st.trg, st.off, st.operand, st.op)
				case 4:
					ref.flush(r, st.trg)
				case 5:
					ref.flushAll(r)
				}
			}
		}
		for r := 0; r < n; r++ {
			got := w.Proc(r).Local()
			want := ref.windows[r]
			for i := range want {
				if got[i] != want[i] {
					t.Logf("seed %d rank %d cell %d: got %d want %d", seed, r, i, got[i], want[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
