package rma

import "testing"

// TestGetCopyNonAliasing checks the non-aliasing read path at the runtime
// level: GetCopy's returned slice is private (filled at epoch close), the
// data still lands in the window through the runtime (stamps advance), and
// the window never enters the content-diff fallback.
func TestGetCopyNonAliasing(t *testing.T) {
	const words = 4 * dirtyChunkWords
	w := NewWorld(Config{N: 2, WindowWords: words})
	w.Run(func(r int) {
		p := w.Proc(r)
		if r == 1 {
			p.LocalWrite(0, []uint64{7, 8, 9})
		}
		p.Barrier()
		if r == 0 {
			dest := p.GetCopy(1, 0, 3, 2*dirtyChunkWords)
			if dest[0] != 0 {
				t.Error("GetCopy dest filled before the epoch closed")
			}
			p.Flush(1)
			if dest[0] != 7 || dest[1] != 8 || dest[2] != 9 {
				t.Errorf("GetCopy dest = %v, want [7 8 9]", dest[:3])
			}
			// Writes through the returned slice must NOT reach the window.
			dest[0] = 0xbad
			if got := p.LocalRead(2*dirtyChunkWords, 1)[0]; got != 7 {
				t.Errorf("window word = %#x; GetCopy returned an alias", got)
			}
			if p.WindowAliased() {
				t.Error("GetCopy marked the window aliased")
			}
		}
		p.Gsync()
	})
}

// TestGetCopyMarksLandingDirty checks that the landing applied at epoch
// close is visible to generation-stamp dirty tracking — the property that
// makes GetCopy checkpoint-safe without the content-diff downgrade.
func TestGetCopyMarksLandingDirty(t *testing.T) {
	const words = 4 * dirtyChunkWords
	w := NewWorld(Config{N: 2, WindowWords: words})
	dst := make([]uint64, words)
	base := make([]uint64, words)
	_, gen := w.Proc(0).LocalReadDirty(dst, base, 0)
	w.Run(func(r int) {
		p := w.Proc(r)
		if r == 1 {
			p.LocalWrite(0, []uint64{41})
		}
		p.Barrier()
		if r == 0 {
			p.GetCopy(1, 0, 1, 3*dirtyChunkWords)
			p.Flush(1)
		}
		p.Gsync()
	})
	ranges, _ := w.Proc(0).LocalReadDirty(dst, base, gen)
	found := false
	for _, r := range ranges {
		if r.Off <= 3*dirtyChunkWords && 3*dirtyChunkWords < r.Off+r.Len {
			found = true
		}
	}
	if !found {
		t.Fatalf("GetCopy landing not stamped dirty (ranges %v)", ranges)
	}
	if dst[3*dirtyChunkWords] != 41 {
		t.Fatalf("landing word = %#x, want 41", dst[3*dirtyChunkWords])
	}
}

// TestReadAtNonAliasing checks ReadAt returns an atomic private copy.
func TestReadAtNonAliasing(t *testing.T) {
	w := NewWorld(Config{N: 1, WindowWords: 16})
	p := w.Proc(0)
	p.LocalWrite(0, []uint64{1, 2, 3})
	got := p.ReadAt(0, 3)
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("ReadAt = %v", got)
	}
	got[0] = 99
	if p.LocalRead(0, 1)[0] != 1 {
		t.Fatal("ReadAt returned an alias")
	}
	if p.WindowAliased() {
		t.Fatal("ReadAt marked the window aliased")
	}
}
