// Package rma is a from-scratch Remote Memory Access runtime: the substrate
// the paper's fault-tolerance protocols sit on, replacing foMPI/MPI-3 One
// Sided (see DESIGN.md §2).
//
// Ranks execute as goroutines inside a World. Each rank exposes a window of
// 64-bit words. Communication actions (puts, gets, accumulates, atomics) and
// synchronization actions (lock, unlock, flush, gsync) follow the semantics
// of §2 of the paper:
//
//   - Puts, gets, and accumulates are non-blocking. They are buffered at the
//     source and become visible only when the current epoch towards the
//     target closes (Flush, Unlock, or Gsync) — the relaxed consistency of
//     MPI-3/UPC. A Get returns a buffer whose contents are defined only
//     after the epoch closes.
//   - Atomics (CompareAndSwap, FetchAndOp) are blocking and complete
//     immediately, like MPI-3 atomics; they count as both puts and gets.
//   - Lock/Unlock provide exclusive access to named structures in a remote
//     rank's memory; Unlock also closes the epoch towards that rank.
//   - Gsync is collective: it closes all epochs at every rank and (as in
//     many MPI implementations, which the paper's schemes assume) also
//     introduces a global happened-before edge.
//
// Every rank carries a virtual clock (package sim); operations charge LogGP
// costs, so a run yields both a functional result and a performance
// estimate. Fail-stop faults are injected with World.Kill: the victim's
// window (volatile memory) is lost and its goroutine unwinds at its next
// runtime call.
//
// # The transport seam
//
// Delivery — what physically happens when an epoch closes — is pluggable
// through package transport. A Proc buffers puts, gets, and accumulates per
// target; closing the epoch hands the whole buffered batch to the rank's
// transport.Transport in one Flush call, and blocking atomics and structure
// locks go through the same interface as request/response operations. The
// default (Config.Transport == nil) is the in-process loopback: direct
// window access, the semantics this runtime always had. Swapping in the tcp
// transport runs the very same worlds over real sockets, one framed flush
// message per epoch close per target; the conformance suite in
// internal/transport holds every implementation to the loopback's behavior.
// Window memory itself (Local, ReadAt, WriteAt, LocalReadDirty) is always
// local — the seam covers remote access, not the rank's own window.
package rma

// ReduceOp selects the combining operation of Accumulate and FetchAndOp.
type ReduceOp int

const (
	// OpReplace overwrites the target word (a "replacing put" /
	// MPI_REPLACE).
	OpReplace ReduceOp = iota
	// OpSum adds to the target word (a "combining put" / MPI_SUM).
	OpSum
	// OpMax keeps the maximum of target and operand.
	OpMax
	// OpMin keeps the minimum of target and operand.
	OpMin
	// OpXor xors into the target word.
	OpXor
)

// Combining reports whether the op combines with existing target data (true
// for everything but OpReplace). Replaying a combining put twice corrupts
// state, which is why the paper's M_p[q] flag exists (§4.2).
func (op ReduceOp) Combining() bool { return op != OpReplace }

// String returns the conventional name of the op.
func (op ReduceOp) String() string {
	switch op {
	case OpReplace:
		return "replace"
	case OpSum:
		return "sum"
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	case OpXor:
		return "xor"
	}
	return "unknown"
}

// apply combines old and operand.
func (op ReduceOp) apply(old, operand uint64) uint64 {
	switch op {
	case OpReplace:
		return operand
	case OpSum:
		return old + operand
	case OpMax:
		if operand > old {
			return operand
		}
		return old
	case OpMin:
		if operand < old {
			return operand
		}
		return old
	case OpXor:
		return old ^ operand
	}
	panic("rma: unknown reduce op")
}

// API is the programming interface applications are written against. It is
// implemented by *Proc (the raw runtime, "no-FT"), by the fault-tolerance
// layers (ftrma, scr, mlog) — which intercept the calls exactly like a PMPI
// shim intercepts MPI calls (§6.1) — and by the fabric's symmetric Node.
//
// The local-memory surface is deliberately orthogonal: every interface
// path in and out of the local window (ReadAt, WriteAt, GetCopy's
// landing) is non-aliasing, so an implementation's dirty tracking stays
// exact and a distributed implementation never has to pin window memory
// in the caller's address space. The aliasing escape hatches — Local()
// (the raw window slice) and GetInto (a get landing that aliases the
// window) — are not part of the interface: Local survives only as a
// concrete-type test hook on the in-process implementations, and GetInto
// is interface-level but documented as unsupported by implementations
// that cannot alias (the fabric rejects it; use GetCopy).
type API interface {
	// Rank returns this process's rank.
	Rank() int
	// N returns the number of application-visible ranks.
	N() int
	// ReadAt returns a copy of n words of the local window starting at
	// off, read atomically with respect to concurrent remote accesses.
	// The returned slice does not alias the window, so generation-stamp
	// dirty tracking is preserved.
	ReadAt(off, n int) []uint64
	// WriteAt stores data at off in the local window through the runtime,
	// atomically with respect to concurrent remote accesses. It is the
	// write-path counterpart of ReadAt: because the write goes through
	// the runtime, the window's generation-stamp dirty tracking stays
	// exact.
	WriteAt(off int, data []uint64)

	// Put transfers data into target's window at word offset off
	// (non-blocking, visible after the epoch closes).
	Put(target, off int, data []uint64)
	// PutValue is a single-word Put.
	PutValue(target, off int, v uint64)
	// Accumulate combines data into target's window with op
	// (non-blocking). OpReplace makes it a replacing put.
	Accumulate(target, off int, data []uint64, op ReduceOp)
	// Get starts reading n words from target at off; the returned slice is
	// filled when the epoch towards target closes.
	Get(target, off, n int) []uint64
	// GetInto starts reading n words from target at off into the local
	// window at localOff; the data lands in exposed (recoverable) memory
	// when the epoch closes. The returned slice aliases the local window,
	// which permanently downgrades the window's dirty tracking from
	// generation stamps to content diffing; get-heavy applications that
	// do not need the alias should use GetCopy instead. Implementations
	// whose window cannot be aliased (the fabric runtime) panic here —
	// GetCopy is the portable spelling.
	GetInto(target, off, n, localOff int) []uint64
	// GetCopy is the non-aliasing variant of GetInto: the data still lands
	// in the local window at localOff (recoverable memory), but the
	// returned slice is a private copy filled at epoch close, so
	// generation-stamp dirty tracking survives.
	GetCopy(target, off, n, localOff int) []uint64
	// GetBlocking reads and closes the epoch immediately.
	GetBlocking(target, off, n int) []uint64
	// CompareAndSwap atomically replaces the word at target/off with new
	// if it equals old; it returns the previous value. Blocking.
	CompareAndSwap(target, off int, old, new uint64) uint64
	// FetchAndOp atomically combines operand into the word at target/off
	// and returns the previous value. Blocking.
	FetchAndOp(target, off int, operand uint64, op ReduceOp) uint64
	// GetAccumulate atomically combines data into target's window at off
	// and returns the previous contents. Blocking.
	GetAccumulate(target, off int, data []uint64, op ReduceOp) []uint64

	// Lock acquires exclusive access to structure str of target's memory.
	Lock(target, str int)
	// Unlock releases the structure and closes the epoch towards target.
	Unlock(target, str int)
	// Flush closes the epoch towards target: all outstanding accesses
	// between the caller and target complete.
	Flush(target int)
	// FlushAll closes the epochs towards every target.
	FlushAll()
	// Gsync is the collective memory synchronization: closes all epochs
	// everywhere and synchronizes all ranks.
	Gsync()
	// Barrier synchronizes all ranks without memory effects.
	Barrier()

	// Compute charges flops of local computation to the virtual clock.
	Compute(flops float64)
	// Now returns the rank's virtual time.
	Now() float64
}

// ReadWindow fills dst with the window contents starting at offset 0
// through the non-aliasing read path: the allocation-free ReadInto when
// the implementation offers it (every in-tree implementation does),
// falling back to the interface's ReadAt. Writer applications that
// re-read the window every phase (stencil, FFT) share one scratch buffer
// through it.
func ReadWindow(api API, dst []uint64) {
	if r, ok := api.(interface{ ReadInto(int, []uint64) }); ok {
		r.ReadInto(0, dst)
		return
	}
	copy(dst, api.ReadAt(0, len(dst)))
}

// Structure identifiers for Lock/Unlock. Applications use StrWindow; the
// fault-tolerance layers use the others for their protocol structures
// (Table 2 of the paper).
const (
	StrWindow = iota // the application window
	StrLP            // put logs LP_p
	StrLG            // get logs LG_q
	StrCkpt          // checkpoint storage
	StrMeta          // protocol metadata (N, M flags, counters)
	NumStructures
)
