package rma

import "testing"

func TestGetAccumulate(t *testing.T) {
	w := newTestWorld(2, 8)
	w.Proc(1).Local()[0] = 10
	w.Proc(1).Local()[1] = 20
	w.Run(func(r int) {
		if r != 0 {
			return
		}
		p := w.Proc(0)
		prev := p.GetAccumulate(1, 0, []uint64{1, 2}, OpSum)
		if prev[0] != 10 || prev[1] != 20 {
			t.Errorf("previous contents = %v, want [10 20]", prev)
		}
		if got := w.Proc(1).LocalRead(0, 2); got[0] != 11 || got[1] != 22 {
			t.Errorf("combined contents = %v, want [11 22]", got)
		}
		// OpReplace makes it a swap.
		prev = p.GetAccumulate(1, 0, []uint64{5, 6}, OpReplace)
		if prev[0] != 11 || prev[1] != 22 {
			t.Errorf("swap returned %v", prev)
		}
		if got := w.Proc(1).LocalRead(0, 2); got[0] != 5 || got[1] != 6 {
			t.Errorf("swapped contents = %v", got)
		}
	})
}

func TestGetAccumulateConcurrentExact(t *testing.T) {
	// Concurrent vector accumulates must not lose updates.
	const n, per = 6, 50
	w := newTestWorld(n, 4)
	w.Run(func(r int) {
		p := w.Proc(r)
		for i := 0; i < per; i++ {
			p.GetAccumulate(0, 0, []uint64{1, 2}, OpSum)
		}
		p.Barrier()
		got := p.World().Proc(0).LocalRead(0, 2)
		if got[0] != n*per || got[1] != 2*n*per {
			t.Errorf("rank %d sees %v, want [%d %d]", r, got, n*per, 2*n*per)
		}
	})
}

func TestGetAccumulateStats(t *testing.T) {
	w := newTestWorld(2, 8)
	w.Run(func(r int) {
		if r == 0 {
			w.Proc(0).GetAccumulate(1, 0, []uint64{1, 2, 3}, OpSum)
		}
	})
	s := w.Proc(0).Stats()
	if s.Accumulates != 1 || s.Gets != 1 || s.WordsPut != 3 || s.WordsGot != 3 {
		t.Errorf("stats = %+v", s)
	}
}
