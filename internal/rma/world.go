package rma

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/transport/loopback"
)

// TransportFactory builds one rank's transport over the world's window
// endpoints. endpoint(q) is rank q's window (nil out of range); the factory
// may serve it to remote peers (tcp) or address it directly (loopback).
type TransportFactory func(rank, n int, endpoint func(int) transport.Endpoint) (transport.Transport, error)

// Config describes a simulated RMA world.
type Config struct {
	// N is the number of ranks.
	N int
	// WindowWords is the size of each rank's exposed window in 64-bit
	// words.
	WindowWords int
	// Params is the machine cost model; zero value means sim.DefaultParams.
	Params sim.Params
	// ExtraLocks adds lockable structures beyond the standard set
	// (NumStructures) to every rank.
	ExtraLocks int
	// Transport, when non-nil, builds each rank's delivery transport; nil
	// selects the in-process loopback (direct window access — the
	// semantics this World always had). The conformance suite swaps in the
	// tcp transport here to run the same worlds over real sockets.
	Transport TransportFactory
	// Metrics optionally mirrors the world's fault events into a metrics
	// registry (rma.ranks gauge, rma.kills / rma.respawns counters). nil
	// keeps a private registry.
	Metrics *obs.Registry
}

// World is a set of ranks plus the simulated machine they run on.
type World struct {
	cfg        Config
	params     sim.Params
	procs      []*Proc
	windows    []*window
	failed     []atomic.Bool
	barrier    *sim.Barrier
	pfs        *sim.SharedResource
	transports []transport.Transport

	// kills and respawns count fault events into the Config.Metrics
	// registry (a private one when unset — pointers are always valid).
	kills    *obs.Counter
	respawns *obs.Counter

	tracer atomic.Pointer[tracerBox]
}

// tracerBox wraps the Tracer interface so it can live in an atomic.Pointer.
type tracerBox struct{ t Tracer }

// killed is the panic value used to unwind a killed rank's goroutine.
type killed struct{ rank int }

// IsKillUnwind reports whether a recovered panic value is the runtime's
// fail-stop unwind of a killed rank. Drivers that run rank code on their
// own goroutines (the multi-process cluster's per-rank sessions, instead of
// World.Run) use it to swallow the unwind exactly as Run does.
func IsKillUnwind(e any) bool {
	_, ok := e.(killed)
	return ok
}

// TargetFailedError is the panic value raised when a rank accesses the
// window of a failed rank. Recovery protocols catch it via RunRank.
type TargetFailedError struct{ Rank int }

func (e TargetFailedError) Error() string {
	return fmt.Sprintf("rma: target rank %d has failed", e.Rank)
}

// NewWorld builds a world of cfg.N ranks.
func NewWorld(cfg Config) *World {
	if cfg.N <= 0 {
		panic("rma: world needs at least one rank")
	}
	if cfg.WindowWords < 0 {
		panic("rma: negative window size")
	}
	if cfg.Params == (sim.Params{}) {
		cfg.Params = sim.DefaultParams()
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.New(-1)
	}
	w := &World{
		cfg:      cfg,
		params:   cfg.Params,
		barrier:  sim.NewBarrier(cfg.N),
		pfs:      sim.NewSharedResource(cfg.Params.PFSBW, cfg.Params.PFSLatency),
		failed:   make([]atomic.Bool, cfg.N),
		kills:    reg.Counter("rma.kills"),
		respawns: reg.Counter("rma.respawns"),
	}
	reg.Gauge("rma.ranks").Set(int64(cfg.N))
	w.windows = make([]*window, cfg.N)
	w.procs = make([]*Proc, cfg.N)
	for r := 0; r < cfg.N; r++ {
		w.windows[r] = newWindow(cfg.WindowWords, NumStructures+cfg.ExtraLocks)
		w.procs[r] = newProc(w, r)
	}
	w.transports = make([]transport.Transport, cfg.N)
	for r := 0; r < cfg.N; r++ {
		if cfg.Transport == nil {
			w.transports[r] = loopback.New(w.EndpointOf)
			continue
		}
		t, err := cfg.Transport(r, cfg.N, w.EndpointOf)
		if err != nil {
			panic(fmt.Sprintf("rma: transport for rank %d: %v", r, err))
		}
		w.transports[r] = t
	}
	return w
}

// Close shuts down the ranks' transports (listeners, peer connections).
// The default loopback holds no resources, so single-process worlds may
// skip it; worlds over tcp must call it.
func (w *World) Close() {
	for _, t := range w.transports {
		if t != nil {
			t.Close()
		}
	}
}

// N returns the number of ranks.
func (w *World) N() int { return w.cfg.N }

// Params returns the machine cost model.
func (w *World) Params() sim.Params { return w.params }

// PFS returns the shared parallel-file-system resource.
func (w *World) PFS() *sim.SharedResource { return w.pfs }

// Proc returns rank r's runtime handle.
func (w *World) Proc(r int) *Proc { return w.procs[r] }

// Alive reports whether rank r has not failed.
func (w *World) Alive(r int) bool { return !w.failed[r].Load() }

// SetTracer installs a Tracer that observes every action (for the formal
// order checks in package trace). Pass nil to disable.
func (w *World) SetTracer(t Tracer) {
	if t == nil {
		w.tracer.Store(nil)
		return
	}
	w.tracer.Store(&tracerBox{t: t})
}

// Emit delivers an action to the installed tracer. The fault-tolerance
// layers use it to record internal actions (checkpoints) into the same
// trace as the runtime's communication and synchronization actions.
func (w *World) Emit(a TraceAction) {
	w.trace(func(t Tracer) { t.OnAction(a) })
}

func (w *World) trace(fn func(Tracer)) {
	if box := w.tracer.Load(); box != nil {
		fn(box.t)
	}
}

// Kill fail-stops rank r: its window contents (volatile memory) are lost,
// any structure locks it holds anywhere are broken, and its goroutine
// unwinds at its next runtime call. Killing a dead rank is a no-op.
func (w *World) Kill(r int) {
	if w.failed[r].Swap(true) {
		return
	}
	w.kills.Inc()
	w.windows[r].clear()
	for _, win := range w.windows {
		win.releaseIfHeldBy(r)
	}
	// The dead rank permanently leaves all collectives so survivors keep
	// making progress. If it is currently blocked inside a barrier it is
	// released together with the survivors and unwinds right after.
	w.barrier.Leave(r)
}

// ReleaseLocksHeldBy force-releases every structure lock rank r holds on
// any rank's window, without fail-stopping r. It is the lock half of Kill,
// split out for crisis protocols that must break a condemned rank's locks
// *before* the machine can quiesce: a survivor blocked in Lock on a lock
// the dead rank held can never drain into the collective rendezvous that
// gates Kill itself. Only call it for ranks that are certainly dead or
// condemned — force-releasing a live holder's lock corrupts the critical
// section (and the holder's own Unlock will panic). Reports whether any
// lock was released.
func (w *World) ReleaseLocksHeldBy(r int) bool {
	released := false
	for _, win := range w.windows {
		if win.releaseIfHeldBy(r) {
			released = true
		}
	}
	return released
}

// Respawn replaces a failed rank with a fresh process (the batch system
// providing p_new, §4.3): a zeroed window, reset epochs, and a new clock
// starting at the maximum virtual time of the surviving ranks (the
// replacement cannot start in the past). The caller is responsible for
// restoring memory contents via a recovery protocol and for re-running the
// rank with RunRank.
func (w *World) Respawn(r int) *Proc {
	if !w.failed[r].Load() {
		panic(fmt.Sprintf("rma: respawn of live rank %d", r))
	}
	w.respawns.Inc()
	w.windows[r] = newWindow(w.cfg.WindowWords, NumStructures+w.cfg.ExtraLocks)
	p := newProc(w, r)
	start := 0.0
	for i, q := range w.procs {
		if i != r && w.Alive(i) && q.clock.Now() > start {
			start = q.clock.Now()
		}
	}
	p.clock.AdvanceTo(start)
	w.procs[r] = p
	w.failed[r].Store(false)
	w.barrier.Join(r)
	return p
}

// Run executes body once per live rank, each in its own goroutine, and
// waits for all of them. A rank killed mid-run unwinds cleanly (leaving
// collective operations), any other panic is re-raised on the caller.
func (w *World) Run(body func(rank int)) {
	var wg sync.WaitGroup
	panics := make(chan interface{}, w.cfg.N)
	for r := 0; r < w.cfg.N; r++ {
		if !w.Alive(r) {
			continue
		}
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if e := recover(); e != nil {
					if _, ok := e.(killed); ok {
						// Kill already removed the rank from all
						// collectives; just unwind.
						return
					}
					panics <- e
				}
			}()
			body(r)
		}(r)
	}
	wg.Wait()
	select {
	case e := <-panics:
		panic(e)
	default:
	}
}

// RunRank executes body on a single (re)spawned rank and waits; used to run
// recovery code for p_new while survivors are parked elsewhere.
func (w *World) RunRank(r int, body func()) {
	done := make(chan interface{}, 1)
	go func() {
		defer func() {
			if e := recover(); e != nil {
				if _, ok := e.(killed); ok {
					done <- nil
					return
				}
				done <- e
				return
			}
			done <- nil
		}()
		body()
	}()
	if e := <-done; e != nil {
		panic(e)
	}
}

// MaxTime returns the maximum virtual time across live ranks: the makespan
// of the run so far.
func (w *World) MaxTime() float64 {
	max := 0.0
	for r, p := range w.procs {
		if w.Alive(r) && p.clock.Now() > max {
			max = p.clock.Now()
		}
	}
	return max
}

// TotalOps sums the operation statistics across live ranks.
func (w *World) TotalOps() OpStats {
	var total OpStats
	for r, p := range w.procs {
		if w.Alive(r) {
			total.add(p.Stats())
		}
	}
	return total
}
