package rma

import (
	"fmt"

	"repro/internal/transport"
)

// redToOp converts a wire reduce-op code to the runtime's ReduceOp. The two
// enumerations mirror each other value for value (TestReduceOpWireCodes
// pins the correspondence); an out-of-range code is a protocol error.
func redToOp(r uint8) ReduceOp {
	if !transport.ValidRed(r) {
		panic(fmt.Sprintf("rma: invalid wire reduce op %d", r))
	}
	return ReduceOp(r)
}

// windowEndpoint adapts one rank's window to transport.Endpoint. It holds
// the world, not the window, so a Respawn's fresh window is picked up
// automatically; all methods delegate to the window's lock-guarded
// primitives, which is what makes delivery atomic against local accesses.
type windowEndpoint struct {
	w    *World
	rank int
}

var _ transport.Endpoint = windowEndpoint{}

func (e windowEndpoint) win() *window { return e.w.windows[e.rank] }

func (e windowEndpoint) ApplyPut(off int, data []uint64) { e.win().applyPut(off, data) }

func (e windowEndpoint) ApplyAccumulate(off int, data []uint64, red uint8) {
	e.win().applyAccumulate(off, data, redToOp(red))
}

func (e windowEndpoint) ReadInto(off int, dst []uint64) { e.win().readInto(off, dst) }

func (e windowEndpoint) CompareAndSwap(off int, old, new uint64) uint64 {
	return e.win().cas(off, old, new)
}

func (e windowEndpoint) FetchAndOp(off int, operand uint64, red uint8) uint64 {
	return e.win().fao(off, operand, redToOp(red))
}

func (e windowEndpoint) GetAccumulate(off int, data []uint64, red uint8) []uint64 {
	return e.win().getAccumulate(off, data, redToOp(red))
}

func (e windowEndpoint) Lock(str, src int, now, latency float64) float64 {
	return e.win().acquire(str, src, now, latency)
}

func (e windowEndpoint) Unlock(str, src int, now, latency float64) {
	e.win().release(str, src, now, latency)
}

// EndpointOf returns rank r's window endpoint, or nil when r is out of
// range. Transport factories receive it so out-of-process transports can
// serve the local rank's window to remote peers; note that a dead rank's
// endpoint stays addressable (its window exists, cleared) — liveness is the
// runtime's business (checkTarget), not the endpoint's.
func (w *World) EndpointOf(r int) transport.Endpoint {
	if r < 0 || r >= w.cfg.N {
		return nil
	}
	return windowEndpoint{w: w, rank: r}
}
