package rma

import (
	"repro/internal/sim"
	"repro/internal/transport"
)

// pendingOp is a buffered non-blocking access: issued now, applied (puts)
// or satisfied (gets) when the epoch towards its target closes.
type pendingOp struct {
	isPut      bool
	off        int
	data       []uint64 // put/accumulate payload (copied into the per-target arena at issue time)
	dest       []uint64 // get destination, filled at epoch close
	localOff   int      // window destination for GetInto; -1 for plain Get
	op         ReduceOp
	completeAt float64 // virtual completion time on the wire
}

// OpStats counts issued operations; used by tests and the benchmark
// harness.
type OpStats struct {
	Puts, Gets, Accumulates, CAS, FAO int
	Flushes, Locks, Unlocks, Gsyncs   int
	WordsPut, WordsGot                int
}

func (s *OpStats) add(o OpStats) {
	s.Puts += o.Puts
	s.Gets += o.Gets
	s.Accumulates += o.Accumulates
	s.CAS += o.CAS
	s.FAO += o.FAO
	s.Flushes += o.Flushes
	s.Locks += o.Locks
	s.Unlocks += o.Unlocks
	s.Gsyncs += o.Gsyncs
	s.WordsPut += o.WordsPut
	s.WordsGot += o.WordsGot
}

// TraceAction is the event delivered to a Tracer; package trace turns these
// into the formal model's action tuples.
type TraceAction struct {
	Kind    string // put, get, accumulate, cas, fao, lock, unlock, flush, gsync, barrier
	Src     int
	Trg     int // -1 for collectives
	Str     int
	Words   int
	Combine bool
	Epoch   int // E(src->trg) when the action was issued
}

// Tracer observes every runtime action.
type Tracer interface {
	OnAction(TraceAction)
}

// Proc is one rank's runtime handle. It implements API. A Proc is owned by
// the goroutine running that rank; only the window it exposes is touched by
// other ranks.
type Proc struct {
	world   *World
	rank    int
	clock   *sim.Clock
	epoch   []int
	pending [][]pendingOp
	putbuf  [][]uint64     // per-target arenas for buffered put payloads
	batch   []transport.Op // scratch for epoch-close flush batches
	stats   OpStats
}

var _ API = (*Proc)(nil)

func newProc(w *World, rank int) *Proc {
	return &Proc{
		world:   w,
		rank:    rank,
		clock:   sim.NewClock(),
		epoch:   make([]int, w.cfg.N),
		pending: make([][]pendingOp, w.cfg.N),
		putbuf:  make([][]uint64, w.cfg.N),
	}
}

// checkAlive unwinds the goroutine if this rank has been killed.
func (p *Proc) checkAlive() {
	if p.world.failed[p.rank].Load() {
		panic(killed{p.rank})
	}
}

// checkTarget panics with TargetFailedError when addressing a dead rank.
func (p *Proc) checkTarget(q int) {
	if q < 0 || q >= p.world.cfg.N {
		panic(TargetFailedError{q})
	}
	if p.world.failed[q].Load() {
		panic(TargetFailedError{q})
	}
}

// Rank returns this rank's id.
func (p *Proc) Rank() int { return p.rank }

// N returns the world size.
func (p *Proc) N() int { return p.world.cfg.N }

// Now returns this rank's virtual time.
func (p *Proc) Now() float64 { return p.clock.Now() }

// Epoch returns E(p->q), the current epoch number towards rank q.
func (p *Proc) Epoch(q int) int { return p.epoch[q] }

// Stats returns a copy of the operation counters.
func (p *Proc) Stats() OpStats { return p.stats }

// World returns the world this rank belongs to.
func (p *Proc) World() *World { return p.world }

// Compute charges flops of local work to the virtual clock.
func (p *Proc) Compute(flops float64) {
	p.checkAlive()
	p.clock.Advance(p.world.params.CompTime(flops))
}

// AdvanceTime charges dt seconds of non-compute local activity (used by the
// FT layers for memory copies and by applications for think time).
func (p *Proc) AdvanceTime(dt float64) {
	p.checkAlive()
	p.clock.Advance(dt)
}

// AdvanceTo moves the virtual clock forward to t (no-op if already past);
// used by the FT layers when waiting on shared resources.
func (p *Proc) AdvanceTo(t float64) {
	p.checkAlive()
	p.clock.AdvanceTo(t)
}

// Local returns the rank's own window. It is a concrete-type test hook,
// deliberately absent from the API interface: handing out the raw slice
// lets writes bypass the runtime, which downgrades the window's dirty
// tracking from write stamps to exact content comparison (see
// LocalReadDirty). Applications use ReadAt/WriteAt (non-aliasing,
// tracking-exact); tests poking window internals use Local.
func (p *Proc) Local() []uint64 {
	p.checkAlive()
	return p.world.windows[p.rank].alias()
}

// WindowWords returns the size of this rank's window in words without
// touching its contents (unlike Local, it does not affect dirty tracking).
func (p *Proc) WindowWords() int {
	return len(p.world.windows[p.rank].words)
}

// LocalReadDirty copies into dst (a full window-sized buffer) the words of
// the local window modified since the generation cursor `since`, holding
// the window lock against concurrent remote applies. base must be the
// caller's copy of the window contents as of `since`; it anchors exact
// change detection when the window has been aliased by Local. It returns
// the merged dirty word ranges and the cursor to pass to the next call.
// The first call (since == 0, base all-zero) reports every chunk written
// since the window was created.
func (p *Proc) LocalReadDirty(dst, base []uint64, since uint64) ([]DirtyRange, uint64) {
	p.checkAlive()
	return p.world.windows[p.rank].readDirtyInto(dst, base, since)
}

// LocalRead copies n words starting at off from the local window, holding
// the window lock against concurrent remote applies.
func (p *Proc) LocalRead(off, n int) []uint64 {
	p.checkAlive()
	dst := make([]uint64, n)
	p.world.windows[p.rank].readInto(off, dst)
	return dst
}

// ReadAt is the non-aliasing read path of the API: a copy of n words of
// the local window starting at off. Unlike Local it never marks the window
// aliased, so generation-stamp dirty tracking stays exact and incremental
// checkpoints keep skipping the content-diff scan.
func (p *Proc) ReadAt(off, n int) []uint64 { return p.LocalRead(off, n) }

// ReadInto is ReadAt into a caller-provided buffer: the same non-aliasing
// read with no allocation, for hot loops that re-read the window every
// phase (the stencil and FFT kernels discover it by interface assertion).
func (p *Proc) ReadInto(off int, dst []uint64) {
	p.checkAlive()
	p.world.windows[p.rank].readInto(off, dst)
}

// WriteAt is the non-aliasing write path: data lands in the local window at
// off under the window lock, stamped by the runtime's dirty tracking. The
// counterpart of ReadAt for writer applications that would otherwise mutate
// Local()'s alias (and thereby downgrade tracking to content diffing).
func (p *Proc) WriteAt(off int, data []uint64) { p.LocalWrite(off, data) }

// WindowAliased reports whether the window has handed out a raw alias
// (Local or GetInto) and dirty tracking has therefore fallen back to
// content diffing. Tests and profiling hooks use it.
func (p *Proc) WindowAliased() bool {
	w := p.world.windows[p.rank]
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.aliased
}

// LocalWrite stores data at off in the local window under the window lock.
func (p *Proc) LocalWrite(off int, data []uint64) {
	p.checkAlive()
	p.world.windows[p.rank].applyPut(off, data)
}

// Put issues a non-blocking put of data into target's window at off.
func (p *Proc) Put(target, off int, data []uint64) {
	p.putInternal(target, off, data, OpReplace, "put")
}

// PutValue issues a single-word Put.
func (p *Proc) PutValue(target, off int, v uint64) {
	p.Put(target, off, []uint64{v})
}

// Accumulate issues a non-blocking combining put.
func (p *Proc) Accumulate(target, off int, data []uint64, op ReduceOp) {
	p.putInternal(target, off, data, op, "accumulate")
}

func (p *Proc) putInternal(target, off int, data []uint64, op ReduceOp, kind string) {
	p.checkAlive()
	p.checkTarget(target)
	bytes := len(data) * 8
	p.clock.Advance(p.world.params.InjectTime(bytes))
	buf := p.arenaAlloc(target, len(data))
	copy(buf, data)
	p.pending[target] = append(p.pending[target], pendingOp{
		isPut:      true,
		off:        off,
		data:       buf,
		op:         op,
		completeAt: p.clock.Now() + p.world.params.TransferTime(bytes),
	})
	if op == OpReplace && kind == "put" {
		p.stats.Puts++
	} else {
		p.stats.Accumulates++
	}
	p.stats.WordsPut += len(data)
	p.world.trace(func(t Tracer) {
		t.OnAction(TraceAction{Kind: kind, Src: p.rank, Trg: target, Words: len(data),
			Combine: op.Combining(), Epoch: p.epoch[target]})
	})
}

// arenaAlloc carves n words out of the per-target put arena. The epoch's
// buffered payloads share one backing slab, reset when the epoch towards
// that target closes — steady state, an epoch of puts allocates nothing.
// Growth mid-epoch switches to a fresh slab: ops issued against the old
// one keep it alive through their own slices, and it falls to the GC once
// the flush consumes them.
func (p *Proc) arenaAlloc(q, n int) []uint64 {
	a := p.putbuf[q]
	if cap(a)-len(a) < n {
		c := max(2*cap(a), n, 64)
		a = make([]uint64, 0, c)
	}
	p.putbuf[q] = a[:len(a)+n]
	return p.putbuf[q][len(a) : len(a)+n]
}

// Get issues a non-blocking get of n words from target at off. The returned
// slice is filled when the epoch towards target closes.
func (p *Proc) Get(target, off, n int) []uint64 {
	return p.getInternal(target, off, n, -1, false)
}

// GetInto issues a non-blocking get of n words from target at off whose
// destination is the local window at localOff. Unlike Get, the received
// data lands in exposed (and therefore checkpointable and recoverable)
// memory — this is how applications should receive data they cannot afford
// to lose. The returned slice aliases the local window, which downgrades
// dirty tracking to content diffing; use GetCopy to avoid that.
func (p *Proc) GetInto(target, off, n, localOff int) []uint64 {
	p.world.windows[p.rank].checkRange(localOff, n)
	return p.getInternal(target, off, n, localOff, true)
}

// GetCopy is the non-aliasing GetInto: the received data lands in the local
// window at localOff exactly as with GetInto (same recoverability, same
// logging semantics in the FT layers), but the returned slice is a private
// copy filled at epoch close. Because no raw window reference escapes, the
// window's generation-stamp dirty tracking survives — this is the read path
// get-heavy applications should prefer.
func (p *Proc) GetCopy(target, off, n, localOff int) []uint64 {
	p.world.windows[p.rank].checkRange(localOff, n)
	return p.getInternal(target, off, n, localOff, false)
}

func (p *Proc) getInternal(target, off, n, localOff int, aliasRet bool) []uint64 {
	p.checkAlive()
	p.checkTarget(target)
	bytes := n * 8
	p.clock.Advance(p.world.params.InjectTime(0)) // request is small
	dest := make([]uint64, n)
	p.pending[target] = append(p.pending[target], pendingOp{
		off:        off,
		dest:       dest,
		localOff:   localOff,
		completeAt: p.clock.Now() + p.world.params.TransferTime(bytes),
	})
	p.stats.Gets++
	p.stats.WordsGot += n
	p.world.trace(func(t Tracer) {
		t.OnAction(TraceAction{Kind: "get", Src: p.rank, Trg: target, Words: n,
			Epoch: p.epoch[target]})
	})
	if localOff >= 0 && aliasRet {
		// The returned slice aliases the local window, so writes through it
		// bypass the runtime: downgrade dirty tracking to content diffing,
		// exactly as Local does. (GetCopy lands in the window all the same —
		// via the runtime's applyPut at epoch close — but returns the
		// private dest buffer, so the stamps stay trustworthy.)
		return p.world.windows[p.rank].alias()[localOff : localOff+n]
	}
	return dest
}

// GetBlocking gets n words and closes the epoch towards target.
func (p *Proc) GetBlocking(target, off, n int) []uint64 {
	dest := p.Get(target, off, n)
	p.Flush(target)
	return dest
}

// CompareAndSwap atomically swaps the word at target/off if it equals old,
// returning the previous value. Blocking; counts as both a put and a get
// (Table 1).
func (p *Proc) CompareAndSwap(target, off int, old, new uint64) uint64 {
	p.checkAlive()
	p.checkTarget(target)
	p.clock.Advance(p.world.params.AtomicLatency)
	prev, err := p.world.transports[p.rank].CompareAndSwap(p.rank, target, off, old, new)
	p.transportErr(target, err)
	p.stats.CAS++
	p.world.trace(func(t Tracer) {
		t.OnAction(TraceAction{Kind: "cas", Src: p.rank, Trg: target, Words: 1,
			Combine: true, Epoch: p.epoch[target]})
	})
	return prev
}

// GetAccumulate atomically combines data into target's window at off and
// returns the previous contents (MPI_Get_accumulate). Blocking; counts as
// both a put and a get (Table 1).
func (p *Proc) GetAccumulate(target, off int, data []uint64, op ReduceOp) []uint64 {
	p.checkAlive()
	p.checkTarget(target)
	bytes := 8 * len(data)
	p.clock.Advance(p.world.params.AtomicLatency + p.world.params.InjectTime(bytes))
	prev, err := p.world.transports[p.rank].GetAccumulate(p.rank, target, off, data, uint8(op))
	p.transportErr(target, err)
	p.stats.Accumulates++
	p.stats.Gets++
	p.stats.WordsPut += len(data)
	p.stats.WordsGot += len(data)
	p.world.trace(func(t Tracer) {
		t.OnAction(TraceAction{Kind: "getaccumulate", Src: p.rank, Trg: target,
			Words: len(data), Combine: op.Combining(), Epoch: p.epoch[target]})
	})
	return prev
}

// FetchAndOp atomically combines operand into the word at target/off,
// returning the previous value. Blocking; counts as both a put and a get.
func (p *Proc) FetchAndOp(target, off int, operand uint64, op ReduceOp) uint64 {
	p.checkAlive()
	p.checkTarget(target)
	p.clock.Advance(p.world.params.AtomicLatency)
	prev, err := p.world.transports[p.rank].FetchAndOp(p.rank, target, off, operand, uint8(op))
	p.transportErr(target, err)
	p.stats.FAO++
	p.world.trace(func(t Tracer) {
		t.OnAction(TraceAction{Kind: "fao", Src: p.rank, Trg: target, Words: 1,
			Combine: op.Combining(), Epoch: p.epoch[target]})
	})
	return prev
}

// transportErr maps a transport failure onto the runtime's fail-stop
// semantics: a dead peer surfaces as TargetFailedError (exactly as if
// checkTarget had caught it), anything else is a runtime error.
func (p *Proc) transportErr(target int, err error) {
	if err == nil {
		return
	}
	if _, ok := err.(transport.PeerDeadError); ok {
		panic(TargetFailedError{target})
	}
	panic(err)
}

// applyPending completes all buffered accesses towards target q by handing
// the whole epoch to the rank's transport as one batch (the loopback
// applies it to q's window directly; the tcp transport frames it as a
// single flush message — one round trip per epoch close). Get destinations
// are filled on return; GetInto destinations additionally land in the local
// window. The caller's clock advances past the last modeled completion.
func (p *Proc) applyPending(q int) {
	ops := p.pending[q]
	if len(ops) == 0 {
		return
	}
	p.pending[q] = p.pending[q][:0]
	// Reset the put arena's watermark now (panic-safe: a dead-target
	// unwind must not leave it growing forever). The slab's contents stay
	// intact — ops reference them until the flush below consumes the
	// batch, and nothing writes to the arena before this call returns.
	p.putbuf[q] = p.putbuf[q][:0]
	maxT := p.clock.Now()
	for i := range ops {
		if ops[i].completeAt > maxT {
			maxT = ops[i].completeAt
		}
	}
	if q == p.rank {
		// Self-communication: the batch's target window IS the local
		// window, so GetInto landings must interleave with the other ops
		// in program order (a later self-put may legally overwrite a
		// landing, and vice versa). Deliver op by op; self-delivery never
		// touches a wire, so there is no batching to lose.
		for i := range ops {
			op := &ops[i]
			err := p.world.transports[p.rank].Flush(p.rank, q, p.asBatch(op))
			p.transportErr(q, err)
			if !op.isPut && op.localOff >= 0 {
				p.world.windows[p.rank].applyPut(op.localOff, op.dest)
			}
		}
		if len(p.batch) > 0 {
			p.batch[0] = transport.Op{}
			p.batch = p.batch[:0]
		}
		p.clock.AdvanceTo(maxT)
		return
	}
	batch := p.batch[:0]
	for i := range ops {
		batch = append(batch, toOp(&ops[i]))
	}
	err := p.world.transports[p.rank].Flush(p.rank, q, batch)
	// Drop the payload references before parking the scratch slice, so
	// one large epoch does not pin its buffers for the Proc's lifetime.
	for i := range batch {
		batch[i] = transport.Op{}
	}
	p.batch = batch[:0]
	p.transportErr(q, err)
	// GetInto landings touch the local window while the batch touched the
	// remote one, so applying them after the flush preserves program
	// order; multiple landings still apply in issue order.
	for i := range ops {
		op := &ops[i]
		if !op.isPut && op.localOff >= 0 {
			p.world.windows[p.rank].applyPut(op.localOff, op.dest)
		}
	}
	p.clock.AdvanceTo(maxT)
}

// toOp converts one buffered access to its transport form.
func toOp(op *pendingOp) transport.Op {
	if op.isPut {
		kind := transport.KindPut
		if op.op != OpReplace {
			kind = transport.KindAcc
		}
		return transport.Op{Kind: kind, Red: uint8(op.op), Off: op.off, Data: op.data}
	}
	return transport.Op{Kind: transport.KindGet, Off: op.off, Dest: op.dest}
}

// asBatch wraps one op in the Proc's single-op scratch batch.
func (p *Proc) asBatch(op *pendingOp) []transport.Op {
	if cap(p.batch) < 1 {
		p.batch = make([]transport.Op, 0, 1)
	}
	p.batch = p.batch[:1]
	p.batch[0] = toOp(op)
	return p.batch
}

// Flush closes the epoch towards target: all outstanding accesses complete
// and E(p->target) increments.
func (p *Proc) Flush(target int) {
	p.checkAlive()
	p.checkTarget(target)
	p.applyPending(target)
	p.clock.Advance(p.world.params.NetLatency) // remote completion ack
	p.epoch[target]++
	p.stats.Flushes++
	p.world.trace(func(t Tracer) {
		t.OnAction(TraceAction{Kind: "flush", Src: p.rank, Trg: target, Epoch: p.epoch[target]})
	})
}

// FlushAll closes the epochs towards all live targets.
func (p *Proc) FlushAll() {
	p.checkAlive()
	for q := 0; q < p.world.cfg.N; q++ {
		switch {
		case q == p.rank:
			// Self-communication is legal RMA; apply buffered self-puts.
			p.applyPending(q)
		case !p.world.Alive(q):
			// Accesses in flight towards a dead rank are lost with it.
			p.pending[q] = p.pending[q][:0]
			p.putbuf[q] = p.putbuf[q][:0]
		default:
			p.applyPending(q)
		}
		p.epoch[q]++
	}
	p.clock.Advance(p.world.params.NetLatency)
	p.stats.Flushes++
	p.world.trace(func(t Tracer) {
		t.OnAction(TraceAction{Kind: "flush", Src: p.rank, Trg: -1})
	})
}

// lockLatency returns the latency of lock traffic towards target: network
// latency for remote locks, CPU overhead for self-locks (which the logging
// layer issues on every put, §3.2.3).
func (p *Proc) lockLatency(target int) float64 {
	if target == p.rank {
		return p.world.params.OpOverhead
	}
	return p.world.params.NetLatency
}

// Lock acquires exclusive access to structure str in target's memory.
func (p *Proc) Lock(target, str int) {
	p.checkAlive()
	p.checkTarget(target)
	after, err := p.world.transports[p.rank].Lock(p.rank, target, str, p.clock.Now(), p.lockLatency(target))
	p.transportErr(target, err)
	if p.world.failed[p.rank].Load() {
		// Killed while blocked on the lock: release it (Kill's cleanup may
		// already have, releaseIfHeldBy is idempotent) and unwind. This
		// crash cleanup intentionally bypasses the transport seam: it is
		// the world's fail-stop teardown (like Kill's own lock sweep), not
		// a rank-issued access, and every deployment that hosts windows
		// remotely must run its own cleanup at the window host anyway.
		p.world.windows[target].releaseIfHeldBy(p.rank)
		panic(killed{p.rank})
	}
	p.clock.AdvanceTo(after)
	p.stats.Locks++
	p.world.trace(func(t Tracer) {
		t.OnAction(TraceAction{Kind: "lock", Src: p.rank, Trg: target, Str: str,
			Epoch: p.epoch[target]})
	})
}

// Unlock releases structure str at target and closes the epoch towards it
// (an unlock enforces consistency of the structure, §2.1.2).
func (p *Proc) Unlock(target, str int) {
	p.checkAlive()
	p.applyPending(target)
	lat := p.lockLatency(target)
	p.transportErr(target, p.world.transports[p.rank].Unlock(p.rank, target, str, p.clock.Now(), lat))
	p.clock.Advance(lat)
	p.epoch[target]++
	p.stats.Unlocks++
	p.world.trace(func(t Tracer) {
		t.OnAction(TraceAction{Kind: "unlock", Src: p.rank, Trg: target, Str: str,
			Epoch: p.epoch[target]})
	})
}

// Gsync is the collective memory synchronization: every rank's epochs close
// and all ranks synchronize (it also establishes a global happened-before
// edge, as the paper's schemes assume of gsync implementations).
func (p *Proc) Gsync() {
	p.checkAlive()
	for q := 0; q < p.world.cfg.N; q++ {
		switch {
		case q == p.rank:
			// Self-communication is legal RMA; apply buffered self-puts.
			p.applyPending(q)
		case !p.world.Alive(q):
			p.pending[q] = p.pending[q][:0]
			p.putbuf[q] = p.putbuf[q][:0]
		default:
			p.applyPending(q)
		}
		p.epoch[q]++
	}
	t := p.world.barrier.Wait(p.rank, p.clock.Now())
	p.checkAlive()
	p.clock.AdvanceTo(t + p.world.params.BarrierTime(p.world.barrier.Participants()))
	p.stats.Gsyncs++
	p.world.trace(func(tr Tracer) {
		tr.OnAction(TraceAction{Kind: "gsync", Src: p.rank, Trg: -1})
	})
}

// Barrier synchronizes all live ranks without memory effects.
func (p *Proc) Barrier() {
	p.checkAlive()
	t := p.world.barrier.Wait(p.rank, p.clock.Now())
	p.checkAlive()
	p.clock.AdvanceTo(t + p.world.params.BarrierTime(p.world.barrier.Participants()))
	p.world.trace(func(tr Tracer) {
		tr.OnAction(TraceAction{Kind: "barrier", Src: p.rank, Trg: -1})
	})
}

// PendingTo reports the number of buffered accesses towards target (used by
// the FT layers to decide whether an epoch is dirty).
func (p *Proc) PendingTo(target int) int { return len(p.pending[target]) }
