package rma

import (
	"math/rand"
	"testing"
)

// TestDirtyTrackingRanges checks that tracked writes surface as merged
// chunk-granular ranges and that a second read with the returned cursor
// sees nothing.
func TestDirtyTrackingRanges(t *testing.T) {
	const words = 4 * dirtyChunkWords
	w := NewWorld(Config{N: 1, WindowWords: words})
	p := w.Proc(0)
	dst := make([]uint64, words)
	base := make([]uint64, words)

	// Fresh window: nothing written, nothing dirty.
	ranges, gen := p.LocalReadDirty(dst, base, 0)
	if len(ranges) != 0 {
		t.Fatalf("fresh window reported dirty ranges %v", ranges)
	}

	// One word in chunk 0, one in chunk 2.
	p.LocalWrite(3, []uint64{7})
	p.LocalWrite(2*dirtyChunkWords+5, []uint64{9})
	ranges, gen = p.LocalReadDirty(dst, base, gen)
	want := []DirtyRange{
		{Off: 0, Len: dirtyChunkWords},
		{Off: 2 * dirtyChunkWords, Len: dirtyChunkWords},
	}
	if len(ranges) != len(want) || ranges[0] != want[0] || ranges[1] != want[1] {
		t.Fatalf("ranges = %v, want %v", ranges, want)
	}
	if dst[3] != 7 || dst[2*dirtyChunkWords+5] != 9 {
		t.Fatal("dirty read did not copy the written words")
	}

	// Cursor advanced: no new writes, no dirty chunks.
	copy(base, dst)
	if ranges, _ = p.LocalReadDirty(dst, base, gen); len(ranges) != 0 {
		t.Fatalf("clean window reported dirty ranges %v", ranges)
	}

	// Adjacent chunks merge into one range.
	p.LocalWrite(dirtyChunkWords-1, []uint64{1, 2}) // spans chunks 0 and 1
	ranges, _ = p.LocalReadDirty(dst, base, gen)
	if len(ranges) != 1 || ranges[0].Off != 0 || ranges[0].Len != 2*dirtyChunkWords {
		t.Fatalf("spanning write produced ranges %v", ranges)
	}
}

// TestDirtyTrackingRemoteOps checks that remote puts, accumulates, and
// atomics mark the target's window dirty.
func TestDirtyTrackingRemoteOps(t *testing.T) {
	const words = 4 * dirtyChunkWords
	w := NewWorld(Config{N: 2, WindowWords: words})
	dst := make([]uint64, words)
	base := make([]uint64, words)
	_, gen := w.Proc(1).LocalReadDirty(dst, base, 0)
	w.Run(func(r int) {
		if r != 0 {
			return
		}
		p := w.Proc(0)
		p.Put(1, 0, []uint64{42})
		p.Flush(1)
		p.FetchAndOp(1, 3*dirtyChunkWords, 5, OpSum)
	})
	ranges, _ := w.Proc(1).LocalReadDirty(dst, base, gen)
	if len(ranges) != 2 {
		t.Fatalf("remote writes produced ranges %v, want two chunks", ranges)
	}
	if dst[0] != 42 || dst[3*dirtyChunkWords] != 5 {
		t.Fatal("dirty read missed remotely written words")
	}
}

// TestDirtyTrackingAliasedWindow checks the content-diff fallback: after
// Local() hands out the raw slice, writes through it bypass the runtime
// but must still be detected against the caller's base copy.
func TestDirtyTrackingAliasedWindow(t *testing.T) {
	const words = 8 * dirtyChunkWords
	w := NewWorld(Config{N: 1, WindowWords: words})
	p := w.Proc(0)
	dst := make([]uint64, words)
	base := make([]uint64, words)

	win := p.Local() // aliases the window
	rng := rand.New(rand.NewSource(1))
	touched := map[int]bool{}
	for i := 0; i < 5; i++ {
		c := rng.Intn(8)
		touched[c] = true
		win[c*dirtyChunkWords+rng.Intn(dirtyChunkWords)] = rng.Uint64() | 1
	}
	ranges, gen := p.LocalReadDirty(dst, base, 0)
	covered := map[int]bool{}
	for _, r := range ranges {
		for c := r.Off / dirtyChunkWords; c < (r.Off+r.Len)/dirtyChunkWords; c++ {
			covered[c] = true
		}
	}
	for c := range touched {
		if !covered[c] {
			t.Fatalf("aliased write to chunk %d not detected (ranges %v)", c, ranges)
		}
	}
	// Sync base; clean re-read.
	copy(base, dst)
	if ranges, _ = p.LocalReadDirty(dst, base, gen); len(ranges) != 0 {
		t.Fatalf("unchanged aliased window reported %v", ranges)
	}
	// A later aliased write must be seen even with an advanced cursor.
	win[5*dirtyChunkWords] ^= 0xdeadbeef
	ranges, _ = p.LocalReadDirty(dst, base, gen)
	if len(ranges) != 1 || ranges[0].Off != 5*dirtyChunkWords {
		t.Fatalf("late aliased write produced ranges %v", ranges)
	}
}
