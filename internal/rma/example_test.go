package rma_test

import (
	"fmt"

	"repro/internal/rma"
)

// ExampleNewWorld shows the core RMA cycle: non-blocking puts buffer in
// the source's epoch towards the target and become visible when the
// epoch closes (Flush), exactly like MPI-3 RMA passive-target epochs.
func ExampleNewWorld() {
	w := rma.NewWorld(rma.Config{N: 2, WindowWords: 8})
	w.Run(func(r int) {
		p := w.Proc(r)
		if r == 0 {
			p.Put(1, 0, []uint64{42})
			p.Flush(1) // close the epoch: the put is now applied
		}
		p.Barrier()
		if r == 1 {
			// ReadAt is the non-aliasing local read: it returns a private
			// copy, so the window's generation-stamp dirty tracking (which
			// makes incremental checkpoints cheap) stays intact.
			fmt.Println(p.ReadAt(0, 1)[0])
		}
	})
	// Output: 42
}

// ExampleProc_GetBlocking shows the blocking read path and a fetch-and-op
// atomic. Atomics execute immediately (no epoch), like MPI_Fetch_and_op.
func ExampleProc_GetBlocking() {
	w := rma.NewWorld(rma.Config{N: 2, WindowWords: 4})
	w.Run(func(r int) {
		p := w.Proc(r)
		if r == 0 {
			p.FetchAndOp(1, 0, 5, rma.OpSum) // target word += 5, returns old
			fmt.Println(p.GetBlocking(1, 0, 1)[0])
		}
	})
	// Output: 5
}
