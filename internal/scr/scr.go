// Package scr is the baseline the paper compares against in §7.2.1: a
// Scalable Checkpoint/Restart-like library. It provides blocking,
// coordinated, collective checkpointing with XOR group encoding — but no
// access logging — saving either to peer RAM (SCR-RAM, tmpfs-style) or to
// the shared parallel file system (SCR-PFS).
//
// The cost structure follows SCR's XOR scheme: at a checkpoint, every rank
// copies its state, exchanges it around its group ring to build the XOR
// redundancy block (a full extra window transfer per member), and — in PFS
// mode — flushes through the shared file-system resource, whose bandwidth
// all writers contend for. Compared to ftRMA's Gsync scheme this costs one
// extra collective and a full data exchange, which is exactly why the paper
// measures 21–37% (RAM) and 46–67% (PFS) overheads against ftRMA's 1–5%.
package scr

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/machine"
	"repro/internal/rma"
	"repro/internal/sim"
)

// Mode selects the checkpoint destination.
type Mode int

const (
	// RAM saves checkpoints to in-memory storage (tmpfs).
	RAM Mode = iota
	// PFS flushes checkpoints to the parallel file system.
	PFS
)

// String names the mode.
func (m Mode) String() string {
	if m == PFS {
		return "SCR-PFS"
	}
	return "SCR-RAM"
}

// Config tunes the library.
type Config struct {
	// Mode selects RAM or PFS storage.
	Mode Mode
	// Interval is the fixed time between coordinated checkpoints in
	// virtual seconds (SCR does not derive Daly intervals by itself).
	// Zero disables checkpointing.
	Interval float64
	// Groups is the number of XOR groups (matching ftRMA's |G| for a fair
	// comparison, as §7.2.1 configures).
	Groups int
}

// System is the per-world SCR state.
type System struct {
	world    *rma.World
	cfg      Config
	grouping machine.Grouping
	procs    []*Process
	// exchange serializes each group's XOR-set communication: SCR's
	// redundancy scheme moves every member's checkpoint through the group,
	// and the members share the links.
	exchange []*sim.SharedResource

	mu     sync.Mutex
	stored map[int][]uint64 // rank -> last checkpoint copy
	parity [][]uint64       // per group XOR block
	rounds int
}

// NewSystem attaches SCR to a world.
func NewSystem(w *rma.World, cfg Config) (*System, error) {
	if cfg.Groups < 1 || cfg.Groups > w.N() {
		return nil, fmt.Errorf("scr: %d groups for %d ranks", cfg.Groups, w.N())
	}
	if cfg.Interval < 0 {
		return nil, errors.New("scr: negative interval")
	}
	grouping, err := machine.NewGrouping(w.N(), cfg.Groups, 1)
	if err != nil {
		return nil, err
	}
	words := w.Proc(0).WindowWords()
	s := &System{
		world:    w,
		cfg:      cfg,
		grouping: grouping,
		stored:   make(map[int][]uint64),
		parity:   make([][]uint64, cfg.Groups),
	}
	s.exchange = make([]*sim.SharedResource, cfg.Groups)
	for g := range s.parity {
		s.parity[g] = make([]uint64, words)
		s.exchange[g] = sim.NewSharedResource(w.Params().NetBW, w.Params().NetLatency)
	}
	s.procs = make([]*Process, w.N())
	for r := 0; r < w.N(); r++ {
		s.procs[r] = &Process{Proc: w.Proc(r), sys: s}
	}
	return s, nil
}

// Process returns the SCR wrapper of a rank.
func (s *System) Process(r int) *Process { return s.procs[r] }

// Rounds reports completed checkpoint rounds.
func (s *System) Rounds() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rounds
}

// Process wraps an rma.Proc: all operations pass through unchanged (SCR
// does not log accesses); Gsync additionally drives the fixed-interval
// coordinated checkpoint.
type Process struct {
	*rma.Proc
	sys    *System
	lastCC float64
}

var _ rma.API = (*Process)(nil)

// Gsync synchronizes and, when the fixed interval elapsed, takes a
// blocking collective checkpoint.
func (p *Process) Gsync() {
	p.Proc.Gsync()
	if p.sys.cfg.Interval <= 0 {
		return
	}
	tSync := p.Now() // equal across ranks right after the gsync
	if p.lastCC == 0 {
		// The first gsync anchors the schedule.
		p.lastCC = tSync
		return
	}
	if tSync-p.lastCC < p.sys.cfg.Interval {
		return
	}
	p.checkpoint()
}

// Checkpoint forces a collective checkpoint now (every rank must call it).
func (p *Process) Checkpoint() { p.checkpoint() }

func (p *Process) checkpoint() {
	params := p.sys.world.Params()
	// SCR's blocking scheme: quiesce (barrier), save, encode, barrier.
	p.Proc.Barrier()
	words := p.Proc.LocalRead(0, p.Proc.WindowWords())
	bytes := 8 * len(words)
	p.Proc.AdvanceTime(params.CopyTime(bytes)) // local save

	// XOR redundancy block: every member moves its checkpoint into the
	// group's XOR set and receives redundancy data back — two full-window
	// transfers over the group's shared links — then combines locally.
	g := p.sys.grouping.GroupOf(p.Rank())
	ex := p.sys.exchange[g]
	end := ex.Transfer(p.Now(), bytes)
	end = ex.Transfer(end, bytes)
	p.Proc.AdvanceTo(end)
	p.Proc.AdvanceTime(params.CopyTime(bytes)) // XOR combine

	if p.sys.cfg.Mode == PFS {
		// Flush through the shared file system: all writers contend.
		end := p.sys.world.PFS().Transfer(p.Now(), bytes)
		p.Proc.AdvanceTo(end)
	}

	p.sys.mu.Lock()
	if old, ok := p.sys.stored[p.Rank()]; ok {
		for i := range old {
			p.sys.parity[g][i] ^= old[i]
		}
	}
	for i := range words {
		p.sys.parity[g][i] ^= words[i]
	}
	p.sys.stored[p.Rank()] = words
	if p.Rank() == 0 {
		p.sys.rounds++
	}
	p.sys.mu.Unlock()

	p.Proc.Barrier()
	p.lastCC = p.Now()
}

// Restore rolls every rank back to its last checkpoint; the failed rank's
// copy is rebuilt from the group parity (single failure per group, XOR).
// Call when no application code is running.
func (s *System) Restore(failed int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.grouping.GroupOf(failed)
	words := s.world.Proc(0).WindowWords()
	rec := make([]uint64, words)
	copy(rec, s.parity[g])
	for _, r := range s.grouping.ComputeMembers(g) {
		if r == failed {
			continue
		}
		c, ok := s.stored[r]
		if !ok {
			return fmt.Errorf("scr: member %d has no checkpoint", r)
		}
		for i := range c {
			rec[i] ^= c[i]
		}
	}
	if !s.world.Alive(failed) {
		inner := s.world.Respawn(failed)
		s.procs[failed] = &Process{Proc: inner, sys: s}
	}
	for r := 0; r < s.world.N(); r++ {
		data := s.stored[r]
		if r == failed {
			data = rec
		}
		if data == nil {
			return fmt.Errorf("scr: rank %d has no checkpoint", r)
		}
		rr, dd := r, data
		s.world.RunRank(rr, func() {
			s.procs[rr].Proc.LocalWrite(0, dd)
		})
		s.stored[r] = append([]uint64(nil), data...)
	}
	// Rebuild parity from the restored copies (the failed rank's copy is
	// back in the set).
	for gi := range s.parity {
		for i := range s.parity[gi] {
			s.parity[gi][i] = 0
		}
	}
	for r, c := range s.stored {
		gi := s.grouping.GroupOf(r)
		for i := range c {
			s.parity[gi][i] ^= c[i]
		}
	}
	return nil
}
