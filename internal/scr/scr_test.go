package scr

import (
	"testing"

	"repro/internal/rma"
)

func newSys(t *testing.T, n, words int, cfg Config) (*rma.World, *System) {
	t.Helper()
	w := rma.NewWorld(rma.Config{N: n, WindowWords: words})
	s, err := NewSystem(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w, s
}

func TestConfigRejected(t *testing.T) {
	w := rma.NewWorld(rma.Config{N: 2, WindowWords: 4})
	if _, err := NewSystem(w, Config{Groups: 0}); err == nil {
		t.Error("accepted zero groups")
	}
	if _, err := NewSystem(w, Config{Groups: 3}); err == nil {
		t.Error("accepted more groups than ranks")
	}
	if _, err := NewSystem(w, Config{Groups: 1, Interval: -1}); err == nil {
		t.Error("accepted negative interval")
	}
}

func TestCheckpointAtInterval(t *testing.T) {
	w, s := newSys(t, 4, 16, Config{Groups: 2, Interval: 1e-9})
	w.Run(func(r int) {
		p := s.Process(r)
		for it := 0; it < 3; it++ {
			p.PutValue((r+1)%4, 0, uint64(it))
			p.Gsync()
		}
	})
	// The first gsync anchors the schedule; the remaining two checkpoint.
	if s.Rounds() != 2 {
		t.Errorf("rounds = %d, want 2", s.Rounds())
	}
}

func TestNoCheckpointWhenDisabled(t *testing.T) {
	w, s := newSys(t, 2, 8, Config{Groups: 1, Interval: 0})
	w.Run(func(r int) {
		s.Process(r).Gsync()
		s.Process(r).Gsync()
	})
	if s.Rounds() != 0 {
		t.Errorf("rounds = %d, want 0", s.Rounds())
	}
}

func TestPFSSlowerThanRAM(t *testing.T) {
	run := func(mode Mode) float64 {
		w, s := newSys(t, 8, 1<<14, Config{Groups: 2, Interval: 1e-9, Mode: mode})
		w.Run(func(r int) {
			p := s.Process(r)
			for it := 0; it < 3; it++ {
				p.Gsync()
			}
		})
		return w.MaxTime()
	}
	ram := run(RAM)
	pfs := run(PFS)
	if pfs <= ram {
		t.Errorf("PFS run (%g) not slower than RAM run (%g)", pfs, ram)
	}
}

func TestRestoreReconstructsFailedRank(t *testing.T) {
	w, s := newSys(t, 4, 8, Config{Groups: 1, Interval: 0})
	w.Run(func(r int) {
		p := s.Process(r)
		for i := 0; i < 8; i++ {
			p.Local()[i] = uint64(10*r + i)
		}
		p.Checkpoint()
		// Post-checkpoint modifications must be rolled back by Restore.
		p.Local()[0] = 999
	})
	w.Kill(2)
	if err := s.Restore(2); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		for i := 0; i < 8; i++ {
			want := uint64(10*r + i)
			if got := w.Proc(r).Local()[i]; got != want {
				t.Fatalf("rank %d cell %d = %d, want %d", r, i, got, want)
			}
		}
	}
	if !w.Alive(2) {
		t.Error("failed rank not respawned")
	}
}

func TestRestoreWithoutCheckpointFails(t *testing.T) {
	w, s := newSys(t, 2, 4, Config{Groups: 1})
	w.Kill(1)
	if err := s.Restore(1); err == nil {
		t.Error("restored without any checkpoint")
	}
}

func TestModeString(t *testing.T) {
	if RAM.String() != "SCR-RAM" || PFS.String() != "SCR-PFS" {
		t.Error("mode names wrong")
	}
}
