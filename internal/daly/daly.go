// Package daly implements optimal checkpoint-interval estimates: Daly's
// higher-order formula (used by ftRMA's coordinated layer, §6.1 of the
// paper) and Young's first-order approximation for comparison.
package daly

import (
	"errors"
	"math"
)

// Interval returns Daly's higher-order estimate of the optimum compute time
// between checkpoints:
//
//	sqrt(2*delta*M) * [1 + 1/3*sqrt(delta/(2M)) + 1/9*(delta/(2M))] - delta
//
// for delta < 2M, and M otherwise. delta is the time to take a checkpoint
// and M is the mean time between failures, both in seconds.
func Interval(delta, mtbf float64) (float64, error) {
	if delta < 0 {
		return 0, errors.New("daly: negative checkpoint cost")
	}
	if mtbf <= 0 {
		return 0, errors.New("daly: non-positive MTBF")
	}
	if delta >= 2*mtbf {
		return mtbf, nil
	}
	r := delta / (2 * mtbf)
	t := math.Sqrt(2*delta*mtbf)*(1+math.Sqrt(r)/3+r/9) - delta
	if t < 0 {
		t = 0
	}
	return t, nil
}

// Young returns Young's first-order approximation sqrt(2*delta*M).
func Young(delta, mtbf float64) (float64, error) {
	if delta < 0 {
		return 0, errors.New("daly: negative checkpoint cost")
	}
	if mtbf <= 0 {
		return 0, errors.New("daly: non-positive MTBF")
	}
	return math.Sqrt(2 * delta * mtbf), nil
}

// Overhead returns the expected fraction of run time spent on
// fault-tolerance bookkeeping when checkpointing every tau seconds with cost
// delta on a machine with the given MTBF: the checkpoint fraction plus the
// expected lost-work fraction. Used to sanity-check chosen intervals.
func Overhead(tau, delta, mtbf float64) float64 {
	if tau <= 0 || mtbf <= 0 {
		return math.Inf(1)
	}
	ckpt := delta / (tau + delta)
	lost := (tau + delta) / (2 * mtbf)
	return ckpt + lost
}
