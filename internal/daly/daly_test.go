package daly

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIntervalKnownValue(t *testing.T) {
	// delta = 2.7s checkpoint on an MTBF of 1 day (the f-no-daly
	// configuration of §7.2.1 uses ~2.7s).
	got, err := Interval(2.7, 86400)
	if err != nil {
		t.Fatal(err)
	}
	// First-order value sqrt(2*2.7*86400) = 683.1s; higher-order terms add
	// a little and subtracting delta removes 2.7s.
	young, _ := Young(2.7, 86400)
	if got < young-3 || got > young*1.05 {
		t.Fatalf("Interval = %g, Young = %g; want close", got, young)
	}
}

func TestIntervalDegenerate(t *testing.T) {
	// delta >= 2M: the formula saturates at M.
	got, err := Interval(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Fatalf("saturated interval = %g, want MTBF 4", got)
	}
	// Zero checkpoint cost: checkpoint continuously (interval 0).
	got, err = Interval(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("zero-cost interval = %g, want 0", got)
	}
}

func TestIntervalErrors(t *testing.T) {
	if _, err := Interval(-1, 10); err == nil {
		t.Error("accepted negative delta")
	}
	if _, err := Interval(1, 0); err == nil {
		t.Error("accepted zero MTBF")
	}
	if _, err := Young(-1, 10); err == nil {
		t.Error("Young accepted negative delta")
	}
	if _, err := Young(1, -5); err == nil {
		t.Error("Young accepted negative MTBF")
	}
}

func TestIntervalProperties(t *testing.T) {
	// Properties: 0 <= interval <= MTBF for delta < 2M; interval grows with
	// MTBF; Daly >= Young - delta.
	prop := func(dRaw, mRaw uint16) bool {
		delta := float64(dRaw)/100 + 0.01 // 0.01 .. 655
		mtbf := float64(mRaw) + 1         // 1 .. 65536
		got, err := Interval(delta, mtbf)
		if err != nil {
			return false
		}
		if got < 0 || math.IsNaN(got) {
			return false
		}
		if delta < 2*mtbf {
			young, _ := Young(delta, mtbf)
			if got < young-delta-1e-9 {
				return false
			}
			bigger, err := Interval(delta, mtbf*4)
			if err != nil || bigger < got {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOverheadNearOptimum(t *testing.T) {
	// The Daly interval should give (near-)minimal overhead among a sweep
	// of candidate intervals.
	const delta, mtbf = 5.0, 3600.0
	opt, err := Interval(delta, mtbf)
	if err != nil {
		t.Fatal(err)
	}
	best := Overhead(opt, delta, mtbf)
	for _, tau := range []float64{opt / 4, opt / 2, opt * 2, opt * 4} {
		if Overhead(tau, delta, mtbf) < best*0.98 {
			t.Errorf("interval %g has lower overhead than Daly's %g", tau, opt)
		}
	}
	if math.IsInf(Overhead(0, delta, mtbf), 1) != true {
		t.Error("zero interval should have infinite overhead")
	}
}
