package erasure

import (
	"encoding/binary"
	"os"
	"runtime"
	"sync"
)

// fallbackForced reports whether the REPRO_ERASURE_NOASM environment knob
// demands the portable SWAR kernels even though SIMD is available. It is
// the runtime twin of the `noasm` build tag: CI's kernel matrix builds one
// leg with the tag and cross-checks the other with the knob, so the
// fallback is exercised on every push, not only on machines without AVX2.
func fallbackForced() bool {
	v := os.Getenv("REPRO_ERASURE_NOASM")
	return v != "" && v != "0"
}

// KernelPath names the kernel implementation selected at init: "avx2" when
// the SIMD path is live, "swar" for the portable word-parallel fallback
// (foreign architecture, `noasm` build tag, or REPRO_ERASURE_NOASM). Tests
// and CI logs use it to prove which leg of the kernel matrix ran.
func KernelPath() string {
	if simdEnabled {
		return "avx2"
	}
	return "swar"
}

// This file is the word-parallel GF(256) kernel layer. All slice arithmetic
// of the XOR and Reed–Solomon codes funnels through the kernels below, which
// process eight (or, with SIMD, thirty-two) field elements per step instead
// of one byte at a time through the log/exp tables:
//
//   - per-coefficient split-nibble tables decompose every product as
//     c·b = c·(b&15) ^ c·(b>>4<<4), turning multiplication into two tiny
//     table lookups — the exact form byte-shuffle SIMD consumes 32 lanes at
//     a time (kernel_amd64.s) and the seed for the fused 256-entry rows;
//   - the portable fallback is a SWAR bit-broadcast kernel: eight uint64
//     mask-multiply steps compute all eight byte lanes of a word at once,
//     with no table loads in the inner loop;
//   - []uint64-native entry points let word-based callers (the checkpoint
//     pipeline) run without ever serializing through bytes;
//   - large buffers shard across runtime.NumCPU() goroutines.

// mulTable[c][b] = c·b in GF(256). 64 KiB total; the scalar byte tails pull
// one 256-byte row, which stays L1-resident for the whole pass.
var mulTable [256][256]byte

// mulTabLo[c][n] = c·n and mulTabHi[c][n] = c·(n<<4): the split-nibble
// tables. mulTabLo/Hi[c] are the 16-byte shuffle tables the SIMD kernel
// broadcasts into vector registers; the fused rows above are built from
// exactly these pairs.
var mulTabLo, mulTabHi [256][16]byte

// mulXT[c][i] = c·2^i broadcast is the doubling ladder the SWAR fallback
// uses: the product of c with a byte b is the XOR of c·2^i over b's set
// bits, evaluated for all eight byte lanes of a word at once.
var mulXT [256][8]uint64

func init() {
	// Built with the table-free peasant multiply so this init does not
	// depend on the log/exp tables of gf256.go being populated first.
	for c := 0; c < 256; c++ {
		for n := 0; n < 16; n++ {
			mulTabLo[c][n] = gfMulBitwise(byte(c), byte(n))
			mulTabHi[c][n] = gfMulBitwise(byte(c), byte(n<<4))
		}
		for b := 0; b < 256; b++ {
			mulTable[c][b] = mulTabLo[c][b&15] ^ mulTabHi[c][b>>4]
		}
		d := byte(c)
		for i := 0; i < 8; i++ {
			mulXT[c][i] = uint64(d)
			hi := d & 0x80
			d <<= 1
			if hi != 0 {
				d ^= gfPoly & 0xff
			}
		}
	}
}

// gfMulBitwise is the Russian-peasant carry-less multiply mod 0x11d, used
// only to seed the tables.
func gfMulBitwise(a, b byte) byte {
	var p byte
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= gfPoly & 0xff
		}
		b >>= 1
	}
	return p
}

// lsbLanes selects bit 0 of each of the eight byte lanes of a word.
const lsbLanes = 0x0101010101010101

// mulWordXT multiplies the eight byte lanes of w by the coefficient whose
// doubling ladder is xt: lane-parallel Russian-peasant multiplication.
// Each mask isolates one bit position of every lane; multiplying the 0/1
// lane mask by the byte c·2^i broadcasts that partial product into exactly
// the lanes whose bit is set (no cross-lane carries, since 1·(c·2^i) < 256).
func mulWordXT(xt *[8]uint64, w uint64) uint64 {
	r := (w & lsbLanes) * xt[0]
	r ^= ((w >> 1) & lsbLanes) * xt[1]
	r ^= ((w >> 2) & lsbLanes) * xt[2]
	r ^= ((w >> 3) & lsbLanes) * xt[3]
	r ^= ((w >> 4) & lsbLanes) * xt[4]
	r ^= ((w >> 5) & lsbLanes) * xt[5]
	r ^= ((w >> 6) & lsbLanes) * xt[6]
	r ^= ((w >> 7) & lsbLanes) * xt[7]
	return r
}

// MulSliceXorWords folds coef·src into dst lane-wise: dst[i] ^= coef·src[i]
// for every byte lane. len(src) must not exceed len(dst).
func MulSliceXorWords(coef byte, dst, src []uint64) {
	switch coef {
	case 0:
		return
	case 1:
		XorWords(dst, src)
		return
	}
	if simdEnabled && len(src) >= simdMinWords {
		n := len(src) &^ (wordsPerVec - 1)
		mulSliceXorSIMDWords(coef, dst[:n], src[:n])
		dst, src = dst[n:], src[n:]
	}
	xt := &mulXT[coef]
	for i, w := range src {
		dst[i] ^= mulWordXT(xt, w)
	}
}

// MulDeltaXorWords folds coef·(old^new) into dst without materializing the
// delta: the fused form of an incremental parity update.
func MulDeltaXorWords(coef byte, dst, old, new []uint64) {
	switch coef {
	case 0:
		return
	case 1:
		XorDeltaWords(dst, old, new)
		return
	}
	if simdEnabled && len(old) >= simdMinWords {
		n := len(old) &^ (wordsPerVec - 1)
		mulDeltaXorSIMDWords(coef, dst[:n], old[:n], new[:n])
		dst, old, new = dst[n:], old[n:], new[n:]
	}
	xt := &mulXT[coef]
	for i := range old {
		if d := old[i] ^ new[i]; d != 0 {
			dst[i] ^= mulWordXT(xt, d)
		}
	}
}

// XorWords xors src into dst: dst[i] ^= src[i].
func XorWords(dst, src []uint64) {
	if simdEnabled && len(src) >= simdMinWords {
		n := len(src) &^ (wordsPerVec - 1)
		xorSliceSIMDWords(dst[:n], src[:n])
		dst, src = dst[n:], src[n:]
	}
	for i, w := range src {
		dst[i] ^= w
	}
}

// XorDeltaWords folds a change into an XOR parity: dst[i] ^= old[i]^new[i].
func XorDeltaWords(dst, old, new []uint64) {
	if simdEnabled && len(old) >= simdMinWords {
		n := len(old) &^ (wordsPerVec - 1)
		xorDeltaSIMDWords(dst[:n], old[:n], new[:n])
		dst, old, new = dst[n:], old[n:], new[n:]
	}
	for i := range old {
		dst[i] ^= old[i] ^ new[i]
	}
}

// ---- byte-slice kernels ----------------------------------------------------
//
// The byte API keeps working on []byte shards; internally it walks the
// slices a vector (or word) at a time and finishes the tail with the fused
// product row.

// mulSliceXor folds coef·src into dst byte-wise.
func mulSliceXor(coef byte, dst, src []byte) {
	switch coef {
	case 0:
		return
	case 1:
		xorSlice(dst, src)
		return
	}
	i := 0
	if simdEnabled && len(src) >= bytesPerVec {
		n := len(src) &^ (bytesPerVec - 1)
		mulSliceXorSIMD(coef, dst[:n], src[:n])
		i = n
	}
	xt := &mulXT[coef]
	for ; i+8 <= len(src); i += 8 {
		w := binary.LittleEndian.Uint64(src[i:])
		d := binary.LittleEndian.Uint64(dst[i:])
		binary.LittleEndian.PutUint64(dst[i:], d^mulWordXT(xt, w))
	}
	t := &mulTable[coef]
	for ; i < len(src); i++ {
		dst[i] ^= t[src[i]]
	}
}

// xorSlice xors src into dst, 8 bytes per iteration.
func xorSlice(dst, src []byte) {
	i := 0
	if simdEnabled && len(src) >= bytesPerVec {
		n := len(src) &^ (bytesPerVec - 1)
		xorSliceSIMDBytes(dst[:n], src[:n])
		i = n
	}
	for ; i+8 <= len(src); i += 8 {
		w := binary.LittleEndian.Uint64(src[i:])
		d := binary.LittleEndian.Uint64(dst[i:])
		binary.LittleEndian.PutUint64(dst[i:], d^w)
	}
	for ; i < len(src); i++ {
		dst[i] ^= src[i]
	}
}

// ---- parallel sharding -----------------------------------------------------

// parallelMinBytes is the buffer size below which sharding is not worth the
// goroutine handoffs; the kernels chew through 128 KiB in ~10 µs.
const parallelMinBytes = 128 << 10

// kernelWorkers caps the fan-out; beyond ~8 shards the kernels are
// memory-bandwidth-bound and extra goroutines only add scheduling noise.
var kernelWorkers = func() int {
	n := runtime.NumCPU()
	if n > 8 {
		n = 8
	}
	return n
}()

// pshard splits [0,n) into per-worker spans whose boundaries are multiples
// of align and runs f on each span concurrently. Small n runs inline.
func pshard(n, align, minN int, f func(lo, hi int)) {
	if n < minN || kernelWorkers < 2 {
		f(0, n)
		return
	}
	chunk := (n/kernelWorkers + align) &^ (align - 1)
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// pshardBytes shards a byte-indexed loop on vector boundaries.
func pshardBytes(n int, f func(lo, hi int)) { pshard(n, bytesPerVec, parallelMinBytes, f) }

// pshardWords shards a word-indexed loop on vector boundaries.
func pshardWords(n int, f func(lo, hi int)) { pshard(n, wordsPerVec, parallelMinBytes/8, f) }
