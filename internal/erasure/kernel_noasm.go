//go:build !amd64 || noasm

package erasure

// Without the assembly kernels — foreign architectures, or the `noasm`
// build tag the CI kernel matrix uses to force this path on amd64 —
// everything runs through the SWAR word paths; the vector geometry
// degenerates to single words and the SIMD dispatch branches are dead
// code.
const (
	bytesPerVec  = 8
	wordsPerVec  = 1
	simdMinWords = 1
)

const simdEnabled = false

func mulSliceXorSIMDWords(coef byte, dst, src []uint64)      { panic("erasure: no SIMD") }
func mulDeltaXorSIMDWords(coef byte, dst, old, new []uint64) { panic("erasure: no SIMD") }
func xorSliceSIMDWords(dst, src []uint64)                    { panic("erasure: no SIMD") }
func xorDeltaSIMDWords(dst, old, new []uint64)               { panic("erasure: no SIMD") }
func mulSliceXorSIMD(coef byte, dst, src []byte)             { panic("erasure: no SIMD") }
func xorSliceSIMDBytes(dst, src []byte)                      { panic("erasure: no SIMD") }
