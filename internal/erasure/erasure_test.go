package erasure

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGFAxioms(t *testing.T) {
	// Field sanity on a pseudo-random sample: commutativity,
	// associativity, distributivity, inverses.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b, c := byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))
		if gfMul(a, b) != gfMul(b, a) {
			t.Fatalf("mul not commutative for %d,%d", a, b)
		}
		if gfMul(gfMul(a, b), c) != gfMul(a, gfMul(b, c)) {
			t.Fatalf("mul not associative for %d,%d,%d", a, b, c)
		}
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			t.Fatalf("mul not distributive for %d,%d,%d", a, b, c)
		}
		if a != 0 {
			if gfMul(a, gfInv(a)) != 1 {
				t.Fatalf("inverse broken for %d", a)
			}
			if gfDiv(gfMul(a, b), a) != b {
				t.Fatalf("div broken for %d,%d", a, b)
			}
		}
		if gfMul(a, 1) != a || gfMul(a, 0) != 0 {
			t.Fatalf("identity/zero broken for %d", a)
		}
	}
}

func TestGFExpPow(t *testing.T) {
	for a := 1; a < 256; a++ {
		if gfExpPow(byte(a), 0) != 1 {
			t.Fatalf("a^0 != 1 for %d", a)
		}
		if gfExpPow(byte(a), 1) != byte(a) {
			t.Fatalf("a^1 != a for %d", a)
		}
		want := gfMul(byte(a), byte(a))
		if gfExpPow(byte(a), 2) != want {
			t.Fatalf("a^2 mismatch for %d", a)
		}
	}
	if gfExpPow(0, 0) != 1 || gfExpPow(0, 3) != 0 {
		t.Fatal("0 powers wrong")
	}
}

func TestMatInvert(t *testing.T) {
	m := [][]byte{{1, 2}, {3, 4}}
	inv, ok := matInvert([][]byte{{1, 2}, {3, 4}})
	if !ok {
		t.Fatal("invertible matrix reported singular")
	}
	prod := matMul(m, inv)
	for i := range prod {
		for j := range prod[i] {
			want := byte(0)
			if i == j {
				want = 1
			}
			if prod[i][j] != want {
				t.Fatalf("m * inv(m) = %v, not identity", prod)
			}
		}
	}
	// Singular matrix (duplicate rows).
	if _, ok := matInvert([][]byte{{1, 2}, {1, 2}}); ok {
		t.Fatal("singular matrix inverted")
	}
}

func randShards(rng *rand.Rand, k, n int) [][]byte {
	out := make([][]byte, k)
	for i := range out {
		out[i] = make([]byte, n)
		rng.Read(out[i])
	}
	return out
}

func TestXORRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	shards := randShards(rng, 5, 64)
	parity, err := EncodeXOR(shards)
	if err != nil {
		t.Fatal(err)
	}
	for lost := 0; lost < 5; lost++ {
		damaged := make([][]byte, 5)
		copy(damaged, shards)
		damaged[lost] = nil
		got, err := ReconstructXOR(damaged, parity)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, shards[lost]) {
			t.Fatalf("reconstruction of shard %d wrong", lost)
		}
	}
}

func TestXORErrors(t *testing.T) {
	if _, err := EncodeXOR(nil); err == nil {
		t.Error("accepted no shards")
	}
	if _, err := EncodeXOR([][]byte{{}}); err == nil {
		t.Error("accepted empty shards")
	}
	if _, err := EncodeXOR([][]byte{{1, 2}, {3}}); err == nil {
		t.Error("accepted ragged shards")
	}
	if _, err := ReconstructXOR([][]byte{{1}, {2}}, []byte{3}); err == nil {
		t.Error("accepted reconstruction with nothing missing")
	}
	if _, err := ReconstructXOR([][]byte{nil, nil}, []byte{3}); err == nil {
		t.Error("accepted two missing shards")
	}
	if err := UpdateXOR([]byte{1, 2}, []byte{1}); err == nil {
		t.Error("accepted mismatched update")
	}
}

func TestXORIncrementalUpdate(t *testing.T) {
	// Folding out an old shard and folding in a new one must equal a fresh
	// encode — the demand-checkpoint integration path of §6.2.
	rng := rand.New(rand.NewSource(3))
	shards := randShards(rng, 4, 32)
	parity, err := EncodeXOR(shards)
	if err != nil {
		t.Fatal(err)
	}
	newShard := make([]byte, 32)
	rng.Read(newShard)
	if err := UpdateXOR(parity, shards[2]); err != nil { // remove old
		t.Fatal(err)
	}
	if err := UpdateXOR(parity, newShard); err != nil { // add new
		t.Fatal(err)
	}
	shards[2] = newShard
	fresh, err := EncodeXOR(shards)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(parity, fresh) {
		t.Fatal("incremental parity differs from fresh encode")
	}
}

func TestXORProperty(t *testing.T) {
	prop := func(data [][]byte, lostRaw uint8) bool {
		var shards [][]byte
		n := 0
		for _, d := range data {
			if len(d) > 0 {
				if n == 0 {
					n = len(d)
				}
				shards = append(shards, d[:min(len(d), n)])
			}
		}
		// Normalize lengths.
		for i := range shards {
			s := make([]byte, n)
			copy(s, shards[i])
			shards[i] = s
		}
		if len(shards) < 2 || n == 0 {
			return true
		}
		parity, err := EncodeXOR(shards)
		if err != nil {
			return false
		}
		lost := int(lostRaw) % len(shards)
		orig := shards[lost]
		damaged := make([][]byte, len(shards))
		copy(damaged, shards)
		damaged[lost] = nil
		got, err := ReconstructXOR(damaged, parity)
		if err != nil {
			return false
		}
		return bytes.Equal(got, orig)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRSRoundTripAllErasurePatterns(t *testing.T) {
	const k, m, n = 6, 3, 48
	rs, err := NewRS(k, m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	data := randShards(rng, k, n)
	parity, err := rs.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	full := append(append([][]byte{}, data...), parity...)
	// Try every pattern of up to m erasures.
	var patterns [][]int
	total := k + m
	for a := 0; a < total; a++ {
		patterns = append(patterns, []int{a})
		for b := a + 1; b < total; b++ {
			patterns = append(patterns, []int{a, b})
			for c := b + 1; c < total; c++ {
				patterns = append(patterns, []int{a, b, c})
			}
		}
	}
	for _, pat := range patterns {
		shards := make([][]byte, total)
		copy(shards, full)
		for _, i := range pat {
			shards[i] = nil
		}
		if err := rs.Reconstruct(shards); err != nil {
			t.Fatalf("pattern %v: %v", pat, err)
		}
		for i := range shards {
			if !bytes.Equal(shards[i], full[i]) {
				t.Fatalf("pattern %v: shard %d wrong", pat, i)
			}
		}
	}
}

func TestRSTooManyErasures(t *testing.T) {
	rs, err := NewRS(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	data := randShards(rng, 4, 16)
	parity, err := rs.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	shards := append(append([][]byte{}, data...), parity...)
	shards[0], shards[1], shards[2] = nil, nil, nil
	if err := rs.Reconstruct(shards); err == nil {
		t.Fatal("repaired more erasures than the code tolerates")
	}
}

func TestRSParams(t *testing.T) {
	if _, err := NewRS(0, 1); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := NewRS(1, 0); err == nil {
		t.Error("accepted m=0")
	}
	if _, err := NewRS(200, 56); err == nil {
		t.Error("accepted k+m > 255")
	}
	rs, err := NewRS(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Encode(randShards(rand.New(rand.NewSource(1)), 2, 8)); err == nil {
		t.Error("accepted wrong shard count")
	}
	if _, err := rs.Encode([][]byte{{1}, {2, 3}, {4}}); err == nil {
		t.Error("accepted ragged shards")
	}
	if err := rs.Reconstruct(make([][]byte, 4)); err == nil {
		t.Error("accepted wrong total shard count")
	}
}

func TestRSMatchesXORForM1(t *testing.T) {
	// A k+1 systematic RS code's single parity shard must equal the XOR
	// parity (both are the unique single-erasure-correcting parity).
	const k, n = 5, 32
	rs, err := NewRS(k, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	data := randShards(rng, k, n)
	parity, err := rs.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	// RS parity with all-ones generator row equals XOR; with a general
	// Vandermonde-derived row it may differ, but reconstruction must still
	// work for any single loss. Verify reconstruction instead of equality.
	shards := append(append([][]byte{}, data...), parity...)
	for lost := 0; lost <= k; lost++ {
		damaged := make([][]byte, len(shards))
		copy(damaged, shards)
		damaged[lost] = nil
		if err := rs.Reconstruct(damaged); err != nil {
			t.Fatalf("lost %d: %v", lost, err)
		}
		if !bytes.Equal(damaged[lost], shards[lost]) {
			t.Fatalf("lost %d: wrong reconstruction", lost)
		}
	}
}

func TestRSProperty(t *testing.T) {
	// Property: encode ∘ erase(m random shards) ∘ reconstruct = identity.
	rng := rand.New(rand.NewSource(7))
	prop := func(kRaw, mRaw, nRaw uint8, seed int64) bool {
		k := int(kRaw)%10 + 1
		m := int(mRaw)%4 + 1
		n := int(nRaw)%100 + 1
		rs, err := NewRS(k, m)
		if err != nil {
			return false
		}
		local := rand.New(rand.NewSource(seed))
		data := randShards(local, k, n)
		parity, err := rs.Encode(data)
		if err != nil {
			return false
		}
		full := append(append([][]byte{}, data...), parity...)
		shards := make([][]byte, len(full))
		copy(shards, full)
		for _, i := range local.Perm(k + m)[:m] {
			shards[i] = nil
		}
		if err := rs.Reconstruct(shards); err != nil {
			return false
		}
		for i := range shards {
			if !bytes.Equal(shards[i], full[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
