// Package erasure implements the erasure codes used for group checkpoints:
// XOR parity for m=1 (the RAID5-like scheme of §5.2 and §6) and systematic
// Reed–Solomon over GF(2⁸) for m>1 checksum processes (the generalization
// the paper attributes to Reed–Solomon coding).
package erasure

// GF(2⁸) arithmetic with the AES polynomial x⁸+x⁴+x³+x²+1 (0x11d is the
// conventional Rijndael-compatible reducing polynomial used by most RS
// implementations).
const gfPoly = 0x11d

var (
	gfExp [512]byte
	gfLog [256]int
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = i
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// gfMul multiplies two field elements.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[gfLog[a]+gfLog[b]]
}

// gfDiv divides a by b; b must be non-zero.
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("erasure: division by zero in GF(256)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[gfLog[a]-gfLog[b]+255]
}

// gfInv returns the multiplicative inverse; a must be non-zero.
func gfInv(a byte) byte { return gfDiv(1, a) }

// gfExpPow returns a**n for field element a.
func gfExpPow(a byte, n int) byte {
	if a == 0 {
		if n == 0 {
			return 1
		}
		return 0
	}
	return gfExp[(gfLog[a]*n)%255]
}

// matMul multiplies two GF(256) matrices.
func matMul(a, b [][]byte) [][]byte {
	rows, inner, cols := len(a), len(b), len(b[0])
	out := make([][]byte, rows)
	for i := range out {
		out[i] = make([]byte, cols)
		for j := 0; j < cols; j++ {
			var acc byte
			for k := 0; k < inner; k++ {
				acc ^= gfMul(a[i][k], b[k][j])
			}
			out[i][j] = acc
		}
	}
	return out
}

// matInvert inverts a square GF(256) matrix with Gauss–Jordan elimination.
// It returns false if the matrix is singular.
func matInvert(m [][]byte) ([][]byte, bool) {
	n := len(m)
	// Augment with identity.
	aug := make([][]byte, n)
	for i := range aug {
		aug[i] = make([]byte, 2*n)
		copy(aug[i], m[i])
		aug[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		// Find a pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if aug[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, false
		}
		aug[col], aug[pivot] = aug[pivot], aug[col]
		// Scale the pivot row.
		inv := gfInv(aug[col][col])
		for j := 0; j < 2*n; j++ {
			aug[col][j] = gfMul(aug[col][j], inv)
		}
		// Eliminate the column everywhere else.
		for r := 0; r < n; r++ {
			if r == col || aug[r][col] == 0 {
				continue
			}
			f := aug[r][col]
			for j := 0; j < 2*n; j++ {
				aug[r][j] ^= gfMul(f, aug[col][j])
			}
		}
	}
	out := make([][]byte, n)
	for i := range out {
		out[i] = aug[i][n:]
	}
	return out, true
}
