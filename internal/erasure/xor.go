package erasure

import (
	"errors"
	"fmt"
)

// XOR is the m=1 parity code used by the default ftRMA configuration: a
// single checksum process per group stores the XOR of the members'
// checkpoints, and any single lost checkpoint is reconstructed from the
// parity and the surviving members (as in an additional RAID5 disk, §5.2).
type XOR struct{}

// EncodeXOR returns the byte-wise XOR of the shards. All shards must have
// equal, non-zero length.
func EncodeXOR(shards [][]byte) ([]byte, error) {
	if len(shards) == 0 {
		return nil, errors.New("erasure: no shards")
	}
	n := len(shards[0])
	if n == 0 {
		return nil, errors.New("erasure: empty shards")
	}
	parity := make([]byte, n)
	for i, s := range shards {
		if len(s) != n {
			return nil, fmt.Errorf("erasure: shard %d has length %d, want %d", i, len(s), n)
		}
		for j, b := range s {
			parity[j] ^= b
		}
	}
	return parity, nil
}

// UpdateXOR folds a new shard into an existing parity in place (the
// incremental "integrate the received checkpoint data into the existing XOR
// checksum" operation of §6.2). To replace a member's old checkpoint, fold
// the old data out first (XOR is its own inverse).
func UpdateXOR(parity, shard []byte) error {
	if len(parity) != len(shard) {
		return fmt.Errorf("erasure: parity length %d != shard length %d", len(parity), len(shard))
	}
	for j, b := range shard {
		parity[j] ^= b
	}
	return nil
}

// ReconstructXOR recovers the single missing shard (marked nil) from the
// survivors and the parity. It returns the reconstructed shard.
func ReconstructXOR(shards [][]byte, parity []byte) ([]byte, error) {
	missing := -1
	for i, s := range shards {
		if s == nil {
			if missing >= 0 {
				return nil, errors.New("erasure: XOR can reconstruct only one missing shard")
			}
			missing = i
		}
	}
	if missing < 0 {
		return nil, errors.New("erasure: nothing to reconstruct")
	}
	out := make([]byte, len(parity))
	copy(out, parity)
	for i, s := range shards {
		if i == missing {
			continue
		}
		if len(s) != len(parity) {
			return nil, fmt.Errorf("erasure: shard %d has length %d, want %d", i, len(s), len(parity))
		}
		for j, b := range s {
			out[j] ^= b
		}
	}
	return out, nil
}
