package erasure

import (
	"errors"
	"fmt"
)

// XOR is the m=1 parity code used by the default ftRMA configuration: a
// single checksum process per group stores the XOR of the members'
// checkpoints, and any single lost checkpoint is reconstructed from the
// parity and the surviving members (as in an additional RAID5 disk, §5.2).
type XOR struct{}

// EncodeXOR returns the byte-wise XOR of the shards. All shards must have
// equal, non-zero length.
func EncodeXOR(shards [][]byte) ([]byte, error) {
	if len(shards) == 0 {
		return nil, errors.New("erasure: no shards")
	}
	n := len(shards[0])
	if n == 0 {
		return nil, errors.New("erasure: empty shards")
	}
	for i, s := range shards {
		if len(s) != n {
			return nil, fmt.Errorf("erasure: shard %d has length %d, want %d", i, len(s), n)
		}
	}
	parity := make([]byte, n)
	pshardBytes(n, func(lo, hi int) {
		for _, s := range shards {
			xorSlice(parity[lo:hi], s[lo:hi])
		}
	})
	return parity, nil
}

// EncodeXORWords returns the word-wise XOR of the shards without byte
// serialization. All shards must have equal, non-zero length.
func EncodeXORWords(shards [][]uint64) ([]uint64, error) {
	if len(shards) == 0 {
		return nil, errors.New("erasure: no shards")
	}
	n := len(shards[0])
	if n == 0 {
		return nil, errors.New("erasure: empty shards")
	}
	for i, s := range shards {
		if len(s) != n {
			return nil, fmt.Errorf("erasure: shard %d has length %d, want %d", i, len(s), n)
		}
	}
	parity := make([]uint64, n)
	pshardWords(n, func(lo, hi int) {
		for _, s := range shards {
			XorWords(parity[lo:hi], s[lo:hi])
		}
	})
	return parity, nil
}

// UpdateXOR folds a new shard into an existing parity in place (the
// incremental "integrate the received checkpoint data into the existing XOR
// checksum" operation of §6.2). To replace a member's old checkpoint, fold
// the old data out first (XOR is its own inverse).
func UpdateXOR(parity, shard []byte) error {
	if len(parity) != len(shard) {
		return fmt.Errorf("erasure: parity length %d != shard length %d", len(parity), len(shard))
	}
	pshardBytes(len(shard), func(lo, hi int) {
		xorSlice(parity[lo:hi], shard[lo:hi])
	})
	return nil
}

// UpdateXORWords folds a word shard into an existing word parity in place.
func UpdateXORWords(parity, shard []uint64) error {
	if len(parity) != len(shard) {
		return fmt.Errorf("erasure: parity length %d != shard length %d", len(parity), len(shard))
	}
	pshardWords(len(shard), func(lo, hi int) {
		XorWords(parity[lo:hi], shard[lo:hi])
	})
	return nil
}

// missingIndex finds the single nil shard and validates the survivors'
// lengths against the parity length (shared by both element widths).
func missingIndex[E byte | uint64](shards [][]E, parityLen int) (int, error) {
	missing := -1
	for i, s := range shards {
		if s == nil {
			if missing >= 0 {
				return -1, errors.New("erasure: XOR can reconstruct only one missing shard")
			}
			missing = i
			continue
		}
		if len(s) != parityLen {
			return -1, fmt.Errorf("erasure: shard %d has length %d, want %d", i, len(s), parityLen)
		}
	}
	if missing < 0 {
		return -1, errors.New("erasure: nothing to reconstruct")
	}
	return missing, nil
}

// ReconstructXOR recovers the single missing shard (marked nil) from the
// survivors and the parity. It returns the reconstructed shard.
func ReconstructXOR(shards [][]byte, parity []byte) ([]byte, error) {
	missing, err := missingIndex(shards, len(parity))
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(parity))
	copy(out, parity)
	pshardBytes(len(parity), func(lo, hi int) {
		for i, s := range shards {
			if i == missing {
				continue
			}
			xorSlice(out[lo:hi], s[lo:hi])
		}
	})
	return out, nil
}

// ReconstructXORWords recovers the single missing word shard (marked nil)
// from the survivors and the word parity.
func ReconstructXORWords(shards [][]uint64, parity []uint64) ([]uint64, error) {
	missing, err := missingIndex(shards, len(parity))
	if err != nil {
		return nil, err
	}
	out := make([]uint64, len(parity))
	copy(out, parity)
	pshardWords(len(parity), func(lo, hi int) {
		for i, s := range shards {
			if i == missing {
				continue
			}
			XorWords(out[lo:hi], s[lo:hi])
		}
	})
	return out, nil
}
