package erasure

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

// refMul is the trusted scalar reference the kernels are checked against.
func refMul(coef, b byte) byte { return gfMul(coef, b) }

func randWords(rng *rand.Rand, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = rng.Uint64()
	}
	return out
}

func wordsToBytesLE(w []uint64) []byte {
	out := make([]byte, 8*len(w))
	for i, v := range w {
		binary.LittleEndian.PutUint64(out[8*i:], v)
	}
	return out
}

// TestTablesMatchReference pins every table entry to the log/exp field
// arithmetic of gf256.go (the tables are built independently via the
// peasant multiply, so this cross-checks the two constructions).
func TestTablesMatchReference(t *testing.T) {
	for c := 0; c < 256; c++ {
		for b := 0; b < 256; b++ {
			want := refMul(byte(c), byte(b))
			if got := mulTable[c][b]; got != want {
				t.Fatalf("mulTable[%d][%d] = %d, want %d", c, b, got, want)
			}
			if got := mulTabLo[c][b&15] ^ mulTabHi[c][b>>4]; got != want {
				t.Fatalf("nibble tables for %d·%d = %d, want %d", c, b, got, want)
			}
		}
	}
}

// TestMulSliceXorWordsAllCoefficients checks the word kernel (SIMD path
// plus SWAR tail) against the scalar reference for every coefficient, on a
// length that exercises both the vector body and the tail.
func TestMulSliceXorWordsAllCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	src := randWords(rng, 67) // not a multiple of the vector width
	for c := 0; c < 256; c++ {
		dst := randWords(rng, len(src))
		want := make([]uint64, len(src))
		copy(want, dst)
		wb := wordsToBytesLE(want)
		sb := wordsToBytesLE(src)
		for i := range wb {
			wb[i] ^= refMul(byte(c), sb[i])
		}
		MulSliceXorWords(byte(c), dst, src)
		if !bytes.Equal(wordsToBytesLE(dst), wb) {
			t.Fatalf("MulSliceXorWords wrong for coefficient %d", c)
		}
	}
}

// TestMulDeltaXorWordsMatchesExplicitDelta checks the fused delta kernel
// against computing the delta explicitly.
func TestMulDeltaXorWordsMatchesExplicitDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{1, 3, 4, 7, 64, 515} {
		old := randWords(rng, n)
		new := randWords(rng, n)
		for _, c := range []byte{0, 1, 2, 0x1d, 0x8e, 255} {
			got := randWords(rng, n)
			want := make([]uint64, n)
			copy(want, got)
			delta := make([]uint64, n)
			for i := range delta {
				delta[i] = old[i] ^ new[i]
			}
			MulSliceXorWords(c, want, delta)
			MulDeltaXorWords(c, got, old, new)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d coef=%d word %d: got %x want %x", n, c, i, got[i], want[i])
				}
			}
		}
	}
}

// TestByteKernelTailHandling checks mulSliceXor on every length 0..67 so
// vector, word, and byte tails are all crossed.
func TestByteKernelTailHandling(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for n := 0; n <= 67; n++ {
		src := make([]byte, n)
		dst := make([]byte, n)
		rng.Read(src)
		rng.Read(dst)
		want := make([]byte, n)
		for i := range want {
			want[i] = dst[i] ^ refMul(0xa7, src[i])
		}
		mulSliceXor(0xa7, dst, src)
		if !bytes.Equal(dst, want) {
			t.Fatalf("length %d: byte kernel wrong", n)
		}
	}
}

// TestEncodeWordsMatchesEncode pins the word-native encoder to the byte
// encoder through little-endian serialization.
func TestEncodeWordsMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	const k, m, n = 5, 3, 97
	rs, err := NewRS(k, m)
	if err != nil {
		t.Fatal(err)
	}
	data := make([][]uint64, k)
	dataB := make([][]byte, k)
	for i := range data {
		data[i] = randWords(rng, n)
		dataB[i] = wordsToBytesLE(data[i])
	}
	pw, err := rs.EncodeWords(data)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := rs.Encode(dataB)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pw {
		if !bytes.Equal(wordsToBytesLE(pw[i]), pb[i]) {
			t.Fatalf("parity %d: word and byte encoders disagree", i)
		}
	}
}

// TestReconstructWordsRoundTrip erases up to m word shards in every
// pattern and verifies bit-identical recovery.
func TestReconstructWordsRoundTrip(t *testing.T) {
	const k, m, n = 4, 2, 33
	rs, err := NewRS(k, m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(15))
	data := make([][]uint64, k)
	for i := range data {
		data[i] = randWords(rng, n)
	}
	parity, err := rs.EncodeWords(data)
	if err != nil {
		t.Fatal(err)
	}
	full := append(append([][]uint64{}, data...), parity...)
	total := k + m
	for a := 0; a < total; a++ {
		for b := a; b < total; b++ {
			shards := make([][]uint64, total)
			copy(shards, full)
			shards[a] = nil
			shards[b] = nil
			if err := rs.ReconstructWords(shards); err != nil {
				t.Fatalf("erase (%d,%d): %v", a, b, err)
			}
			for i := range shards {
				for j := range shards[i] {
					if shards[i][j] != full[i][j] {
						t.Fatalf("erase (%d,%d): shard %d word %d wrong", a, b, i, j)
					}
				}
			}
		}
	}
}

// TestPropertyIncrementalParityEqualsEncode drives a random sequence of
// member updates through the incremental parity paths (UpdateParityDelta /
// XOR delta) and checks the running parity always equals a from-scratch
// encode of the current member states — the §6.2 incremental checksum
// integration must be exact.
func TestPropertyIncrementalParityEqualsEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < 20; trial++ {
		k := 2 + rng.Intn(6)
		m := 1 + rng.Intn(3)
		n := 1 + rng.Intn(200)
		rs, err := NewRS(k, m)
		if err != nil {
			t.Fatal(err)
		}
		members := make([][]uint64, k)
		for i := range members {
			members[i] = make([]uint64, n) // all-zero initial state
		}
		parity := make([][]uint64, m)
		for i := range parity {
			parity[i] = make([]uint64, n)
		}
		xorParity := make([]uint64, n)
		for step := 0; step < 30; step++ {
			j := rng.Intn(k)
			// Random partial update of member j.
			lo := rng.Intn(n)
			hi := lo + 1 + rng.Intn(n-lo)
			old := make([]uint64, n)
			copy(old, members[j])
			for w := lo; w < hi; w++ {
				members[j][w] = rng.Uint64()
			}
			for i := 0; i < m; i++ {
				if err := rs.UpdateParityDeltaWords(parity[i], i, j, old, members[j]); err != nil {
					t.Fatal(err)
				}
			}
			XorDeltaWords(xorParity, old, members[j])
		}
		fresh, err := rs.EncodeWords(members)
		if err != nil {
			t.Fatal(err)
		}
		for i := range parity {
			for w := range parity[i] {
				if parity[i][w] != fresh[i][w] {
					t.Fatalf("trial %d: RS parity %d diverged at word %d", trial, i, w)
				}
			}
		}
		freshXor, err := EncodeXORWords(members)
		if err != nil {
			t.Fatal(err)
		}
		for w := range xorParity {
			if xorParity[w] != freshXor[w] {
				t.Fatalf("trial %d: XOR parity diverged at word %d", trial, w)
			}
		}
	}
}

// TestXORWordsRoundTrip mirrors the byte XOR round trip on the word API.
func TestXORWordsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	shards := make([][]uint64, 5)
	for i := range shards {
		shards[i] = randWords(rng, 41)
	}
	parity, err := EncodeXORWords(shards)
	if err != nil {
		t.Fatal(err)
	}
	for lost := range shards {
		damaged := make([][]uint64, len(shards))
		copy(damaged, shards)
		damaged[lost] = nil
		got, err := ReconstructXORWords(damaged, parity)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != shards[lost][i] {
				t.Fatalf("lost %d: word %d wrong", lost, i)
			}
		}
	}
	// Incremental update: fold out old, fold in new, compare to fresh.
	newShard := randWords(rng, 41)
	if err := UpdateXORWords(parity, shards[2]); err != nil {
		t.Fatal(err)
	}
	if err := UpdateXORWords(parity, newShard); err != nil {
		t.Fatal(err)
	}
	shards[2] = newShard
	fresh, err := EncodeXORWords(shards)
	if err != nil {
		t.Fatal(err)
	}
	for i := range parity {
		if parity[i] != fresh[i] {
			t.Fatalf("incremental word parity differs from fresh encode at %d", i)
		}
	}
}

// TestKernelPathSelection pins the kernel-matrix contract: KernelPath
// reflects the dispatcher state, and when either the `noasm` build tag or
// the REPRO_ERASURE_NOASM env knob is in force the SWAR fallback must be
// the live path. The CI kernel-matrix job greps this log line to prove
// which leg actually ran.
func TestKernelPathSelection(t *testing.T) {
	t.Logf("erasure kernel path: %s", KernelPath())
	if simdEnabled && KernelPath() != "avx2" {
		t.Fatalf("SIMD enabled but KernelPath() = %q", KernelPath())
	}
	if !simdEnabled && KernelPath() != "swar" {
		t.Fatalf("SIMD disabled but KernelPath() = %q", KernelPath())
	}
}
