//go:build amd64 && !noasm

package erasure

import "unsafe"

// Vector geometry of the AVX2 kernels in kernel_amd64.s.
const (
	bytesPerVec  = 32
	wordsPerVec  = 4
	simdMinWords = wordsPerVec
)

//go:noescape
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbv0() (eax, edx uint32)

//go:noescape
func gfMulXorAVX2(lo, hi *byte, dst, src unsafe.Pointer, n int)

//go:noescape
func gfMulDeltaXorAVX2(lo, hi *byte, dst, old, new unsafe.Pointer, n int)

//go:noescape
func xorAVX2(dst, src unsafe.Pointer, n int)

//go:noescape
func xorDeltaAVX2(dst, old, new unsafe.Pointer, n int)

// simdEnabled reports AVX2 with OS-saved YMM state (checked once at init).
// The REPRO_ERASURE_NOASM env knob forces the SWAR fallback at runtime —
// the dynamic twin of the `noasm` build tag, used by the CI kernel matrix
// to exercise both paths on AVX2 hardware.
var simdEnabled = detectAVX2() && !fallbackForced()

func detectAVX2() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	const osxsave, avx = 1 << 27, 1 << 28
	_, _, ecx1, _ := cpuidex(1, 0)
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	if xcr0, _ := xgetbv0(); xcr0&0x6 != 0x6 { // XMM and YMM state enabled
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	return ebx7&(1<<5) != 0 // AVX2
}

// The SIMD wrappers require len > 0 and a multiple of the vector size;
// kernel.go's dispatchers guarantee that.

func mulSliceXorSIMDWords(coef byte, dst, src []uint64) {
	gfMulXorAVX2(&mulTabLo[coef][0], &mulTabHi[coef][0],
		unsafe.Pointer(&dst[0]), unsafe.Pointer(&src[0]), len(src)*8)
}

func mulDeltaXorSIMDWords(coef byte, dst, old, new []uint64) {
	gfMulDeltaXorAVX2(&mulTabLo[coef][0], &mulTabHi[coef][0],
		unsafe.Pointer(&dst[0]), unsafe.Pointer(&old[0]), unsafe.Pointer(&new[0]), len(old)*8)
}

func xorSliceSIMDWords(dst, src []uint64) {
	xorAVX2(unsafe.Pointer(&dst[0]), unsafe.Pointer(&src[0]), len(src)*8)
}

func xorDeltaSIMDWords(dst, old, new []uint64) {
	xorDeltaAVX2(unsafe.Pointer(&dst[0]), unsafe.Pointer(&old[0]), unsafe.Pointer(&new[0]), len(old)*8)
}

func mulSliceXorSIMD(coef byte, dst, src []byte) {
	gfMulXorAVX2(&mulTabLo[coef][0], &mulTabHi[coef][0],
		unsafe.Pointer(&dst[0]), unsafe.Pointer(&src[0]), len(src))
}

func xorSliceSIMDBytes(dst, src []byte) {
	xorAVX2(unsafe.Pointer(&dst[0]), unsafe.Pointer(&src[0]), len(src))
}
