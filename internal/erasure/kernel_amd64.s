// AVX2 GF(256) kernels: the split-nibble tables of kernel.go broadcast into
// vector registers, so one VPSHUFB pair multiplies 32 field elements per
// step. Plan 9 operand order throughout (dst last).

//go:build amd64 && !noasm

#include "textflag.h"

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func gfMulXorAVX2(lo, hi *byte, dst, src unsafe.Pointer, n int)
// dst[i] ^= coef·src[i] for n bytes; n > 0 and a multiple of 32.
// Y4/Y5 hold the coefficient's lo/hi nibble product tables, Y6 the 0x0F
// lane mask. Per 32 bytes: split nibbles, shuffle-lookup both halves, XOR.
TEXT ·gfMulXorAVX2(SB), NOSPLIT, $0-40
	MOVQ lo+0(FP), AX
	MOVQ hi+8(FP), BX
	MOVQ dst+16(FP), DI
	MOVQ src+24(FP), SI
	MOVQ n+32(FP), CX
	VBROADCASTI128 (AX), Y4
	VBROADCASTI128 (BX), Y5
	MOVQ $0x0f0f0f0f0f0f0f0f, DX
	VMOVQ DX, X6
	VPBROADCASTQ X6, Y6

mulloop:
	VMOVDQU (SI), Y0
	VPSRLW  $4, Y0, Y1
	VPAND   Y6, Y0, Y0
	VPAND   Y6, Y1, Y1
	VPSHUFB Y0, Y4, Y0
	VPSHUFB Y1, Y5, Y1
	VPXOR   Y0, Y1, Y0
	VPXOR   (DI), Y0, Y0
	VMOVDQU Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNE     mulloop
	VZEROUPPER
	RET

// func gfMulDeltaXorAVX2(lo, hi *byte, dst, old, new unsafe.Pointer, n int)
// dst[i] ^= coef·(old[i]^new[i]) for n bytes; n > 0 and a multiple of 32.
TEXT ·gfMulDeltaXorAVX2(SB), NOSPLIT, $0-48
	MOVQ lo+0(FP), AX
	MOVQ hi+8(FP), BX
	MOVQ dst+16(FP), DI
	MOVQ old+24(FP), SI
	MOVQ new+32(FP), R8
	MOVQ n+40(FP), CX
	VBROADCASTI128 (AX), Y4
	VBROADCASTI128 (BX), Y5
	MOVQ $0x0f0f0f0f0f0f0f0f, DX
	VMOVQ DX, X6
	VPBROADCASTQ X6, Y6

deltaloop:
	VMOVDQU (SI), Y0
	VPXOR   (R8), Y0, Y0
	VPSRLW  $4, Y0, Y1
	VPAND   Y6, Y0, Y0
	VPAND   Y6, Y1, Y1
	VPSHUFB Y0, Y4, Y0
	VPSHUFB Y1, Y5, Y1
	VPXOR   Y0, Y1, Y0
	VPXOR   (DI), Y0, Y0
	VMOVDQU Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	ADDQ    $32, R8
	SUBQ    $32, CX
	JNE     deltaloop
	VZEROUPPER
	RET

// func xorAVX2(dst, src unsafe.Pointer, n int)
// dst[i] ^= src[i] for n bytes; n > 0 and a multiple of 32.
TEXT ·xorAVX2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX

xorloop:
	VMOVDQU (SI), Y0
	VPXOR   (DI), Y0, Y0
	VMOVDQU Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNE     xorloop
	VZEROUPPER
	RET

// func xorDeltaAVX2(dst, old, new unsafe.Pointer, n int)
// dst[i] ^= old[i]^new[i] for n bytes; n > 0 and a multiple of 32.
TEXT ·xorDeltaAVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ old+8(FP), SI
	MOVQ new+16(FP), R8
	MOVQ n+24(FP), CX

xdloop:
	VMOVDQU (SI), Y0
	VPXOR   (R8), Y0, Y0
	VPXOR   (DI), Y0, Y0
	VMOVDQU Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	ADDQ    $32, R8
	SUBQ    $32, CX
	JNE     xdloop
	VZEROUPPER
	RET
