package erasure

import (
	"errors"
	"fmt"
)

// RS is a systematic Reed–Solomon code with k data shards and m parity
// shards over GF(2⁸). Any m lost shards (data or parity) can be
// reconstructed. It generalizes the XOR scheme to groups that must survive
// m concurrent member crashes (§5: "every group can resist m concurrent
// process crashes").
type RS struct {
	K int
	M int
	// gen is the (k+m) x k systematic generator matrix: the top k rows are
	// the identity, the bottom m rows produce parity.
	gen [][]byte
}

// NewRS constructs a code for k data and m parity shards. k+m must not
// exceed 255 (the field size minus one, so Vandermonde rows stay distinct).
func NewRS(k, m int) (*RS, error) {
	if k < 1 || m < 1 {
		return nil, errors.New("erasure: k and m must be positive")
	}
	if k+m > 255 {
		return nil, fmt.Errorf("erasure: k+m = %d exceeds 255", k+m)
	}
	// Build a (k+m) x k Vandermonde matrix with distinct evaluation points,
	// then normalize the top k x k block to the identity so the code is
	// systematic. Every square submatrix of a Vandermonde matrix with
	// distinct points is invertible, and row reduction preserves that.
	vand := make([][]byte, k+m)
	for r := range vand {
		vand[r] = make([]byte, k)
		for c := 0; c < k; c++ {
			vand[r][c] = gfExpPow(gfExp[r%255], c)
		}
	}
	top := make([][]byte, k)
	for i := range top {
		top[i] = make([]byte, k)
		copy(top[i], vand[i])
	}
	inv, ok := matInvert(top)
	if !ok {
		return nil, errors.New("erasure: Vandermonde top block singular")
	}
	gen := matMul(vand, inv)
	return &RS{K: k, M: m, gen: gen}, nil
}

// UpdateParity folds a data-shard change into parity shard i in place,
// without touching the other data shards: because the code is linear,
// parity_i ^= coef(i, j) * (old ^ new) when data shard j changes. delta is
// old XOR new. This is the Reed–Solomon analogue of the incremental XOR
// checksum integration of §6.2.
func (rs *RS) UpdateParity(parity []byte, i, j int, delta []byte) error {
	if i < 0 || i >= rs.M {
		return fmt.Errorf("erasure: parity index %d out of range 0..%d", i, rs.M-1)
	}
	if j < 0 || j >= rs.K {
		return fmt.Errorf("erasure: data index %d out of range 0..%d", j, rs.K-1)
	}
	if len(parity) != len(delta) {
		return fmt.Errorf("erasure: parity length %d != delta length %d", len(parity), len(delta))
	}
	coef := rs.gen[rs.K+i][j]
	if coef == 0 {
		return nil
	}
	for b, d := range delta {
		parity[b] ^= gfMul(coef, d)
	}
	return nil
}

// Encode computes the m parity shards for the k data shards. All data
// shards must have equal, non-zero length.
func (rs *RS) Encode(data [][]byte) ([][]byte, error) {
	if len(data) != rs.K {
		return nil, fmt.Errorf("erasure: %d data shards, want %d", len(data), rs.K)
	}
	n := len(data[0])
	if n == 0 {
		return nil, errors.New("erasure: empty shards")
	}
	for i, s := range data {
		if len(s) != n {
			return nil, fmt.Errorf("erasure: shard %d has length %d, want %d", i, len(s), n)
		}
	}
	parity := make([][]byte, rs.M)
	for p := 0; p < rs.M; p++ {
		row := rs.gen[rs.K+p]
		out := make([]byte, n)
		for c := 0; c < rs.K; c++ {
			coef := row[c]
			if coef == 0 {
				continue
			}
			src := data[c]
			for j := 0; j < n; j++ {
				out[j] ^= gfMul(coef, src[j])
			}
		}
		parity[p] = out
	}
	return parity, nil
}

// Reconstruct fills in the missing (nil) shards. shards holds the k data
// shards followed by the m parity shards; at most m entries may be nil.
// Present shards are left untouched; missing ones are replaced with
// reconstructed data.
func (rs *RS) Reconstruct(shards [][]byte) error {
	if len(shards) != rs.K+rs.M {
		return fmt.Errorf("erasure: %d shards, want %d", len(shards), rs.K+rs.M)
	}
	var present []int
	var missing []int
	n := 0
	for i, s := range shards {
		if s == nil {
			missing = append(missing, i)
		} else {
			present = append(present, i)
			if n == 0 {
				n = len(s)
			} else if len(s) != n {
				return fmt.Errorf("erasure: shard %d has length %d, want %d", i, len(s), n)
			}
		}
	}
	if len(missing) == 0 {
		return nil
	}
	if len(missing) > rs.M {
		return fmt.Errorf("erasure: %d shards missing, can repair at most %d", len(missing), rs.M)
	}
	if n == 0 {
		return errors.New("erasure: no surviving shards")
	}
	// Pick k surviving rows of the generator, invert, and recompute the
	// data shards; then re-encode any missing parity.
	rows := present[:rs.K]
	sub := make([][]byte, rs.K)
	for i, r := range rows {
		sub[i] = rs.gen[r]
	}
	inv, ok := matInvert(sub)
	if !ok {
		return errors.New("erasure: surviving-row matrix singular")
	}
	// data[c] = sum_i inv[c][i] * shards[rows[i]]
	needData := false
	for _, mi := range missing {
		if mi < rs.K {
			needData = true
		}
	}
	if needData {
		for _, mi := range missing {
			if mi >= rs.K {
				continue
			}
			out := make([]byte, n)
			for i, r := range rows {
				coef := inv[mi][i]
				if coef == 0 {
					continue
				}
				src := shards[r]
				for j := 0; j < n; j++ {
					out[j] ^= gfMul(coef, src[j])
				}
			}
			shards[mi] = out
		}
	}
	// Recompute missing parity from (now complete) data.
	for _, mi := range missing {
		if mi < rs.K {
			continue
		}
		row := rs.gen[mi]
		out := make([]byte, n)
		for c := 0; c < rs.K; c++ {
			coef := row[c]
			if coef == 0 {
				continue
			}
			src := shards[c]
			if src == nil {
				return errors.New("erasure: data shard still missing during parity rebuild")
			}
			for j := 0; j < n; j++ {
				out[j] ^= gfMul(coef, src[j])
			}
		}
		shards[mi] = out
	}
	return nil
}
