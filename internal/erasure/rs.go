package erasure

import (
	"errors"
	"fmt"
)

// RS is a systematic Reed–Solomon code with k data shards and m parity
// shards over GF(2⁸). Any m lost shards (data or parity) can be
// reconstructed. It generalizes the XOR scheme to groups that must survive
// m concurrent member crashes (§5: "every group can resist m concurrent
// process crashes").
//
// All bulk arithmetic runs through the word-parallel kernels of kernel.go;
// the Words variants operate on []uint64 shards directly so word-based
// callers (the checkpoint pipeline) never serialize through bytes.
type RS struct {
	K int
	M int
	// gen is the (k+m) x k systematic generator matrix: the top k rows are
	// the identity, the bottom m rows produce parity.
	gen [][]byte
}

// NewRS constructs a code for k data and m parity shards. k+m must not
// exceed 255 (the field size minus one, so Vandermonde rows stay distinct).
func NewRS(k, m int) (*RS, error) {
	if k < 1 || m < 1 {
		return nil, errors.New("erasure: k and m must be positive")
	}
	if k+m > 255 {
		return nil, fmt.Errorf("erasure: k+m = %d exceeds 255", k+m)
	}
	// Build a (k+m) x k Vandermonde matrix with distinct evaluation points,
	// then normalize the top k x k block to the identity so the code is
	// systematic. Every square submatrix of a Vandermonde matrix with
	// distinct points is invertible, and row reduction preserves that.
	vand := make([][]byte, k+m)
	for r := range vand {
		vand[r] = make([]byte, k)
		for c := 0; c < k; c++ {
			vand[r][c] = gfExpPow(gfExp[r%255], c)
		}
	}
	top := make([][]byte, k)
	for i := range top {
		top[i] = make([]byte, k)
		copy(top[i], vand[i])
	}
	inv, ok := matInvert(top)
	if !ok {
		return nil, errors.New("erasure: Vandermonde top block singular")
	}
	gen := matMul(vand, inv)
	return &RS{K: k, M: m, gen: gen}, nil
}

// coef returns the generator coefficient applied to data shard j when
// producing parity shard i.
func (rs *RS) coef(i, j int) byte { return rs.gen[rs.K+i][j] }

func (rs *RS) checkParityIndex(i, j int) error {
	if i < 0 || i >= rs.M {
		return fmt.Errorf("erasure: parity index %d out of range 0..%d", i, rs.M-1)
	}
	if j < 0 || j >= rs.K {
		return fmt.Errorf("erasure: data index %d out of range 0..%d", j, rs.K-1)
	}
	return nil
}

// UpdateParity folds a data-shard change into parity shard i in place,
// without touching the other data shards: because the code is linear,
// parity_i ^= coef(i, j) * (old ^ new) when data shard j changes. delta is
// old XOR new. This is the Reed–Solomon analogue of the incremental XOR
// checksum integration of §6.2.
func (rs *RS) UpdateParity(parity []byte, i, j int, delta []byte) error {
	if err := rs.checkParityIndex(i, j); err != nil {
		return err
	}
	if len(parity) != len(delta) {
		return fmt.Errorf("erasure: parity length %d != delta length %d", len(parity), len(delta))
	}
	c := rs.coef(i, j)
	pshardBytes(len(delta), func(lo, hi int) {
		mulSliceXor(c, parity[lo:hi], delta[lo:hi])
	})
	return nil
}

// UpdateParityDeltaWords folds a data-shard change (old -> new) of shard j
// into word parity shard i in place, fusing the delta computation into the
// kernel so no temporary is allocated.
func (rs *RS) UpdateParityDeltaWords(parity []uint64, i, j int, old, new []uint64) error {
	if err := rs.checkParityIndex(i, j); err != nil {
		return err
	}
	if len(parity) != len(old) || len(old) != len(new) {
		return fmt.Errorf("erasure: parity/old/new lengths %d/%d/%d differ",
			len(parity), len(old), len(new))
	}
	c := rs.coef(i, j)
	pshardWords(len(old), func(lo, hi int) {
		MulDeltaXorWords(c, parity[lo:hi], old[lo:hi], new[lo:hi])
	})
	return nil
}

// UpdateParityWords folds a precomputed word delta (old XOR new) of data
// shard j into parity shard i in place: parity ^= coef(i, j)·delta. The
// wire-fed parity hosts use it — the member computes the delta once and
// ships it, the host folds it where the parity lives. Bit-identical to
// UpdateParityDeltaWords over the same old/new pair (the code is linear).
func (rs *RS) UpdateParityWords(parity []uint64, i, j int, delta []uint64) error {
	if err := rs.checkParityIndex(i, j); err != nil {
		return err
	}
	if len(parity) != len(delta) {
		return fmt.Errorf("erasure: parity length %d != delta length %d", len(parity), len(delta))
	}
	c := rs.coef(i, j)
	pshardWords(len(delta), func(lo, hi int) {
		MulSliceXorWords(c, parity[lo:hi], delta[lo:hi])
	})
	return nil
}

// AddShardWords folds complete data shard j into parity shard i:
// parity ^= coef(i, j)·data. Used to (re)build a parity shard from shard
// copies without going through a delta (e.g. re-seeding group parity after
// a rollback).
func (rs *RS) AddShardWords(parity []uint64, i, j int, data []uint64) error {
	if err := rs.checkParityIndex(i, j); err != nil {
		return err
	}
	if len(parity) != len(data) {
		return fmt.Errorf("erasure: parity length %d != data length %d", len(parity), len(data))
	}
	c := rs.coef(i, j)
	pshardWords(len(data), func(lo, hi int) {
		MulSliceXorWords(c, parity[lo:hi], data[lo:hi])
	})
	return nil
}

// Encode computes the m parity shards for the k data shards. All data
// shards must have equal, non-zero length.
func (rs *RS) Encode(data [][]byte) ([][]byte, error) {
	if len(data) != rs.K {
		return nil, fmt.Errorf("erasure: %d data shards, want %d", len(data), rs.K)
	}
	n := len(data[0])
	if n == 0 {
		return nil, errors.New("erasure: empty shards")
	}
	for i, s := range data {
		if len(s) != n {
			return nil, fmt.Errorf("erasure: shard %d has length %d, want %d", i, len(s), n)
		}
	}
	parity := make([][]byte, rs.M)
	for p := range parity {
		parity[p] = make([]byte, n)
	}
	pshardBytes(n, func(lo, hi int) {
		for p := 0; p < rs.M; p++ {
			out := parity[p][lo:hi]
			for c := 0; c < rs.K; c++ {
				mulSliceXor(rs.coef(p, c), out, data[c][lo:hi])
			}
		}
	})
	return parity, nil
}

// EncodeWords computes the m parity shards for k word shards without any
// byte serialization. All shards must have equal, non-zero length.
func (rs *RS) EncodeWords(data [][]uint64) ([][]uint64, error) {
	if len(data) != rs.K {
		return nil, fmt.Errorf("erasure: %d data shards, want %d", len(data), rs.K)
	}
	n := len(data[0])
	if n == 0 {
		return nil, errors.New("erasure: empty shards")
	}
	for i, s := range data {
		if len(s) != n {
			return nil, fmt.Errorf("erasure: shard %d has length %d, want %d", i, len(s), n)
		}
	}
	parity := make([][]uint64, rs.M)
	for p := range parity {
		parity[p] = make([]uint64, n)
	}
	pshardWords(n, func(lo, hi int) {
		for p := 0; p < rs.M; p++ {
			out := parity[p][lo:hi]
			for c := 0; c < rs.K; c++ {
				MulSliceXorWords(rs.coef(p, c), out, data[c][lo:hi])
			}
		}
	})
	return parity, nil
}

// solveMissing picks k surviving generator rows and returns their inverse,
// the decoding matrix: data[c] = sum_i inv[c][i] * shards[rows[i]].
func (rs *RS) solveMissing(present []int) (rows []int, inv [][]byte, err error) {
	rows = present[:rs.K]
	sub := make([][]byte, rs.K)
	for i, r := range rows {
		sub[i] = rs.gen[r]
	}
	inv, ok := matInvert(sub)
	if !ok {
		return nil, nil, errors.New("erasure: surviving-row matrix singular")
	}
	return rows, inv, nil
}

// splitShards partitions shard indices into present and missing and
// validates counts and lengths; n is the common shard length (counted in
// whatever unit the caller indexes by).
func (rs *RS) splitShards(total int, length func(i int) (int, bool)) (present, missing []int, n int, err error) {
	if total != rs.K+rs.M {
		return nil, nil, 0, fmt.Errorf("erasure: %d shards, want %d", total, rs.K+rs.M)
	}
	for i := 0; i < total; i++ {
		l, ok := length(i)
		if !ok {
			missing = append(missing, i)
			continue
		}
		present = append(present, i)
		if n == 0 {
			n = l
		} else if l != n {
			return nil, nil, 0, fmt.Errorf("erasure: shard %d has length %d, want %d", i, l, n)
		}
	}
	if len(missing) == 0 {
		return present, missing, n, nil
	}
	if len(missing) > rs.M {
		return nil, nil, 0, fmt.Errorf("erasure: %d shards missing, can repair at most %d", len(missing), rs.M)
	}
	if n == 0 {
		return nil, nil, 0, errors.New("erasure: no surviving shards")
	}
	return present, missing, n, nil
}

// Reconstruct fills in the missing (nil) shards. shards holds the k data
// shards followed by the m parity shards; at most m entries may be nil.
// Present shards are left untouched; missing ones are replaced with
// reconstructed data.
func (rs *RS) Reconstruct(shards [][]byte) error {
	present, missing, n, err := rs.splitShards(len(shards), func(i int) (int, bool) {
		if shards[i] == nil {
			return 0, false
		}
		return len(shards[i]), true
	})
	if err != nil || len(missing) == 0 {
		return err
	}
	rows, inv, err := rs.solveMissing(present)
	if err != nil {
		return err
	}
	// Rebuild missing data shards from the decoding matrix.
	for _, mi := range missing {
		if mi >= rs.K {
			continue
		}
		out := make([]byte, n)
		pshardBytes(n, func(lo, hi int) {
			for i, r := range rows {
				mulSliceXor(inv[mi][i], out[lo:hi], shards[r][lo:hi])
			}
		})
		shards[mi] = out
	}
	// Recompute missing parity from (now complete) data.
	for _, mi := range missing {
		if mi < rs.K {
			continue
		}
		out := make([]byte, n)
		pshardBytes(n, func(lo, hi int) {
			for c := 0; c < rs.K; c++ {
				mulSliceXor(rs.gen[mi][c], out[lo:hi], shards[c][lo:hi])
			}
		})
		shards[mi] = out
	}
	return nil
}

// ReconstructWords fills in the missing (nil) word shards, the []uint64
// mirror of Reconstruct: k data shards followed by m parity shards, at most
// m entries nil, present shards left untouched.
func (rs *RS) ReconstructWords(shards [][]uint64) error {
	present, missing, n, err := rs.splitShards(len(shards), func(i int) (int, bool) {
		if shards[i] == nil {
			return 0, false
		}
		return len(shards[i]), true
	})
	if err != nil || len(missing) == 0 {
		return err
	}
	rows, inv, err := rs.solveMissing(present)
	if err != nil {
		return err
	}
	for _, mi := range missing {
		if mi >= rs.K {
			continue
		}
		out := make([]uint64, n)
		pshardWords(n, func(lo, hi int) {
			for i, r := range rows {
				MulSliceXorWords(inv[mi][i], out[lo:hi], shards[r][lo:hi])
			}
		})
		shards[mi] = out
	}
	for _, mi := range missing {
		if mi < rs.K {
			continue
		}
		out := make([]uint64, n)
		pshardWords(n, func(lo, hi int) {
			for c := 0; c < rs.K; c++ {
				MulSliceXorWords(rs.gen[mi][c], out[lo:hi], shards[c][lo:hi])
			}
		})
		shards[mi] = out
	}
	return nil
}
