// Package harness regenerates every table and figure of the paper's
// evaluation (§7): the failure-distribution fits (Figs. 10a/10b), the
// P_cf reliability study (Fig. 10c), the NAS 3D FFT performance figures
// (Figs. 10d, 11a, 11b, 12), the key-value-store logging figure (Fig. 11c),
// and the operation taxonomy (Table 1). Each experiment returns a Result
// whose series mirror the paper's plot series; cmd/ftrma prints them and
// bench_test.go wraps them in testing.B benchmarks.
//
// Absolute numbers come from the virtual-time machine model, not a Cray
// XE6, so only the *shape* of each figure is expected to match the paper
// (see EXPERIMENTS.md for the paper-vs-measured record).
package harness

import (
	"fmt"
	"io"
	"sort"
)

// Point is one sample of a series.
type Point struct {
	X     float64
	Y     float64
	Label string // optional annotation (e.g. demand-checkpoint count)
}

// Series is one line of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Result is a regenerated table or figure.
type Result struct {
	ID     string // e.g. "fig10d"
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Print renders the result as an aligned text table, one row per X value
// and one column per series — the same rows/series the paper plots.
func (r Result) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	// Collect the x values.
	xs := map[float64]bool{}
	for _, s := range r.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	fmt.Fprintf(w, "%-14s", r.XLabel)
	for _, s := range r.Series {
		fmt.Fprintf(w, " %16s", s.Name)
	}
	fmt.Fprintf(w, "    [%s]\n", r.YLabel)
	for _, x := range sorted {
		fmt.Fprintf(w, "%-14.6g", x)
		for _, s := range r.Series {
			found := false
			for _, p := range s.Points {
				if p.X == x {
					if p.Label != "" {
						fmt.Fprintf(w, " %10.5g (%s)", p.Y, p.Label)
					} else {
						fmt.Fprintf(w, " %16.6g", p.Y)
					}
					found = true
					break
				}
			}
			if !found {
				fmt.Fprintf(w, " %16s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Scale selects experiment sizes. The paper ran 100-500 processes of NAS
// class A/C on a Cray; the defaults here are laptop-sized but preserve the
// figures' shapes.
type Scale struct {
	// FFTProcs are the rank counts for the FFT figures; each must be a
	// perfect square whose root divides FFTN.
	FFTProcs []int
	// FFTN is the FFT cube edge (a power of two).
	FFTN int
	// FFTIters is the number of FFT iterations per run.
	FFTIters int
	// KVProcs are the rank counts for the key-value-store figure.
	KVProcs []int
	// KVInsertsPerRank is the number of inserts each rank performs.
	KVInsertsPerRank int
	// HistoryDays is the synthetic failure-history length for
	// Figs. 10a/10b.
	HistoryDays int
}

// QuickScale is used by unit benches and smoke tests.
func QuickScale() Scale {
	return Scale{
		FFTProcs:         []int{4, 16},
		FFTN:             16,
		FFTIters:         4,
		KVProcs:          []int{4, 8},
		KVInsertsPerRank: 48,
		HistoryDays:      20000,
	}
}

// DefaultScale regenerates the figures at a laptop-feasible size.
func DefaultScale() Scale {
	return Scale{
		FFTProcs:         []int{16, 64, 256},
		FFTN:             64,
		FFTIters:         10,
		KVProcs:          []int{16, 64, 128},
		KVInsertsPerRank: 64,
		HistoryDays:      200000,
	}
}
