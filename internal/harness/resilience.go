package harness

import (
	"fmt"

	"repro/internal/ftrma"
	"repro/internal/resilience"
)

// ResilienceCurve is an extension experiment beyond the paper's figures:
// achieved efficiency (fault-free work over total virtual time) of the full
// protocol under injected fail-stop failures, swept over the system MTBF.
// It is the dynamic validation of the paper's design: in-memory causal
// recovery keeps efficiency high even at failure rates where checkpoint
// /restart-only schemes would thrash.
func ResilienceCurve() Result {
	res := Result{
		ID:     "resilience",
		Title:  "Protocol efficiency under injected failures (extension)",
		XLabel: "failures per run (approx)",
		YLabel: "efficiency",
	}
	const ranks, iters = 8, 30
	mtbfs := []float64{1, 2e-3, 5e-4, 2e-4, 1e-4}
	s := Series{Name: "ftRMA causal recovery"}
	for _, mtbf := range mtbfs {
		rep, err := resilience.Simulate(resilience.Config{
			Ranks: ranks, Iters: iters, MTBF: mtbf, Seed: 42,
			FT: ftrma.Config{Groups: 2, ChecksumsPerGroup: 1, Log: ftrma.LogConfig{Puts: true}},
		})
		if err != nil {
			res.Notes = append(res.Notes, fmt.Sprintf("mtbf %g: %v", mtbf, err))
			continue
		}
		label := fmt.Sprintf("eff %.3f", rep.Efficiency)
		if !rep.Verified {
			label += " UNVERIFIED"
		}
		s.Points = append(s.Points, Point{
			X: float64(rep.Failures), Y: rep.Efficiency, Label: label,
		})
	}
	res.Series = []Series{s}
	res.Notes = append(res.Notes,
		"every point's final state is verified bit-identical to a fault-free run",
		"efficiency falls with failure count; causal replay keeps the degradation graceful")
	return res
}
