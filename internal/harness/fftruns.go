package harness

import (
	"fmt"
	"math"

	"repro/internal/apps/fft"
	"repro/internal/ftrma"
	"repro/internal/mlog"
	"repro/internal/rma"
	"repro/internal/scr"
)

// fftProto names a protocol configuration of the FFT experiments.
type fftProto struct {
	name string
	// build wraps the world with the protocol and returns the per-rank
	// API plus an optional post-run stats hook.
	build func(w *rma.World, cal fftCalibration) (func(r int) rma.API, func() string)
}

// fftCalibration carries run-derived scheduling constants so every
// protocol checkpoints at comparable cadences.
type fftCalibration struct {
	iterTime  float64 // virtual seconds per iteration, no-FT
	ckptDelta float64 // estimated checkpoint cost
	groups    int
}

// calibrateFFT measures the no-FT per-iteration virtual time (iteration
// portion only; initialization excluded).
func calibrateFFT(cfg fft.Config) fftCalibration {
	w := rma.NewWorld(rma.Config{N: cfg.Q * cfg.Q, WindowWords: cfg.WindowWords()})
	w.Run(func(r int) { fft.Init(w.Proc(r), cfg) })
	t0 := w.MaxTime()
	w.Run(func(r int) { fft.Run(w.Proc(r), cfg, 0, 2) })
	params := w.Params()
	bytes := 8 * cfg.WindowWords()
	return fftCalibration{
		iterTime:  (w.MaxTime() - t0) / 2,
		ckptDelta: params.CopyTime(bytes) + params.TransferTime(bytes),
	}
}

// runFFT executes the benchmark under one protocol and returns GFlop/s
// (total flops over the virtual time of the iteration portion, matching the
// paper's steady-state fault-free measurement) and an annotation.
func runFFT(cfg fft.Config, proto fftProto, cal fftCalibration) (float64, string) {
	p := cfg.Q * cfg.Q
	w := rma.NewWorld(rma.Config{N: p, WindowWords: cfg.WindowWords()})
	apiFor, note := proto.build(w, cal)
	w.Run(func(r int) { fft.Init(apiFor(r), cfg) })
	t0 := w.MaxTime()
	w.Run(func(r int) { fft.Run(apiFor(r), cfg, 0, cfg.Iters) })
	gflops := cfg.TotalFlops(cfg.Iters) / (w.MaxTime() - t0) / 1e9
	annotation := ""
	if note != nil {
		annotation = note()
	}
	return gflops, annotation
}

// chGroups returns the group count giving |CH| = pct% of |CM| (at least 1).
func chGroups(p int, pct float64) int {
	g := int(float64(p) * pct / 100)
	if g < 1 {
		g = 1
	}
	return g
}

// The protocol lineup of Fig. 10d. The fixed interval is 2.5 no-FT
// iterations (a frequent-checkpoint regime, like the paper's ~2.7 s); the
// Daly configuration derives its longer interval from an MTBF chosen so
// that sqrt(2*delta*M) spans several iterations — checkpointing rarely,
// which is the point of Daly's formula.
func fig10dProtos(p int) []fftProto {
	return []fftProto{
		{name: "no-FT", build: func(w *rma.World, cal fftCalibration) (func(int) rma.API, func() string) {
			return func(r int) rma.API { return w.Proc(r) }, nil
		}},
		{name: "f-daly", build: func(w *rma.World, cal fftCalibration) (func(int) rma.API, func() string) {
			interval := 8 * cal.iterTime
			mtbf := interval * interval / (2 * cal.ckptDelta)
			sys, err := ftrma.NewSystem(w, ftrma.Config{
				Groups: chGroups(p, 12.5), ChecksumsPerGroup: 1,
				UseDaly: true, MTBF: mtbf,
			})
			if err != nil {
				panic(err)
			}
			return func(r int) rma.API { return sys.Process(r) },
				func() string { return fmt.Sprintf("cc=%d", sys.Stats().CCCheckpoints) }
		}},
		{name: "f-no-daly", build: func(w *rma.World, cal fftCalibration) (func(int) rma.API, func() string) {
			sys, err := ftrma.NewSystem(w, ftrma.Config{
				Groups: chGroups(p, 12.5), ChecksumsPerGroup: 1,
				FixedInterval: 2.5 * cal.iterTime,
			})
			if err != nil {
				panic(err)
			}
			return func(r int) rma.API { return sys.Process(r) },
				func() string { return fmt.Sprintf("cc=%d", sys.Stats().CCCheckpoints) }
		}},
		{name: "SCR-RAM", build: func(w *rma.World, cal fftCalibration) (func(int) rma.API, func() string) {
			sys, err := scr.NewSystem(w, scr.Config{
				Mode: scr.RAM, Interval: 2.5 * cal.iterTime, Groups: chGroups(p, 12.5),
			})
			if err != nil {
				panic(err)
			}
			return func(r int) rma.API { return sys.Process(r) }, nil
		}},
		{name: "SCR-PFS", build: func(w *rma.World, cal fftCalibration) (func(int) rma.API, func() string) {
			sys, err := scr.NewSystem(w, scr.Config{
				Mode: scr.PFS, Interval: 2.5 * cal.iterTime, Groups: chGroups(p, 12.5),
			})
			if err != nil {
				panic(err)
			}
			return func(r int) rma.API { return sys.Process(r) }, nil
		}},
	}
}

// Fig10d regenerates the coordinated-checkpointing performance figure:
// NAS FFT fault-free GFlop/s for no-FT, ftRMA with and without Daly's
// interval, SCR-RAM, and SCR-PFS.
func Fig10d(sc Scale) Result {
	res := Result{
		ID:     "fig10d",
		Title:  "NAS 3D FFT fault-free runs: coordinated checkpointing",
		XLabel: "Processes",
		YLabel: "GFlop/s (virtual)",
	}
	type cell struct {
		x, y float64
		note string
	}
	series := map[string][]cell{}
	order := []string{}
	for _, p := range sc.FFTProcs {
		q := intSqrt(p)
		cfg := fft.Config{N: sc.FFTN, Q: q, Iters: sc.FFTIters}
		cal := calibrateFFT(cfg)
		for _, proto := range fig10dProtos(p) {
			g, note := runFFT(cfg, proto, cal)
			if _, ok := series[proto.name]; !ok {
				order = append(order, proto.name)
			}
			series[proto.name] = append(series[proto.name], cell{float64(p), g, note})
		}
	}
	for _, name := range order {
		s := Series{Name: name}
		for _, c := range series[name] {
			s.Points = append(s.Points, Point{X: c.x, Y: c.y, Label: c.note})
		}
		res.Series = append(res.Series, s)
	}
	res.Notes = append(res.Notes,
		"expected shape (paper §7.2.1): no-FT > f-daly > f-no-daly > SCR-RAM > SCR-PFS",
		"paper overheads vs no-FT: f-daly 1-5%, f-no-daly 1-15%, SCR-RAM 21-37%, SCR-PFS 46-67%")
	return res
}

// Fig11a regenerates the demand-checkpointing figure: FFT performance
// against the per-process log memory budget, annotated with the number of
// demand-checkpoint requests (the bar labels of the paper's plot).
func Fig11a(sc Scale) Result {
	res := Result{
		ID:     "fig11a",
		Title:  "NAS 3D FFT fault-free runs: demand checkpointing",
		XLabel: "Log budget [KiB/process]",
		YLabel: "GFlop/s (virtual)",
	}
	p := sc.FFTProcs[len(sc.FFTProcs)-1]
	q := intSqrt(p)
	cfg := fft.Config{N: sc.FFTN, Q: q, Iters: sc.FFTIters}
	// Budgets straddling the natural per-rank log volume.
	natural := estimateLogBytes(cfg)
	budgets := []int{natural / 8, natural / 4, natural / 2, natural, 2 * natural}
	s := Series{Name: "ftRMA (f-puts)"}
	for _, budget := range budgets {
		w := rma.NewWorld(rma.Config{N: p, WindowWords: cfg.WindowWords()})
		sys, err := ftrma.NewSystem(w, ftrma.Config{
			Groups: chGroups(p, 12.5), ChecksumsPerGroup: 1,
			Log: ftrma.LogConfig{Puts: true, BudgetBytes: budget},
		})
		if err != nil {
			panic(err)
		}
		w.Run(func(r int) { fft.Init(sys.Process(r), cfg) })
		t0 := w.MaxTime()
		w.Run(func(r int) { fft.Run(sys.Process(r), cfg, 0, cfg.Iters) })
		g := cfg.TotalFlops(cfg.Iters) / (w.MaxTime() - t0) / 1e9
		s.Points = append(s.Points, Point{
			X:     float64(budget) / 1024,
			Y:     g,
			Label: fmt.Sprintf("%d demand ckpts", sys.Stats().DemandRequests),
		})
	}
	res.Series = []Series{s}
	res.Notes = append(res.Notes,
		"expected shape (paper Fig. 11a): small budgets trigger demand checkpoints and cost performance; above the natural log volume none occur")
	return res
}

// estimateLogBytes estimates the per-rank put-log volume of a full run.
func estimateLogBytes(cfg fft.Config) int {
	// 3 transposes x Q blocks x blockBytes per iteration, plus record
	// overhead.
	perIter := 3 * cfg.Q * (8*2*(cfg.N/cfg.Q)*(cfg.N/cfg.Q)*(cfg.N/cfg.Q) + 64)
	return perIter * cfg.Iters
}

// Fig11b regenerates the FFT access-logging figure: no-FT vs ftRMA put
// logging vs the message-logging baseline.
func Fig11b(sc Scale) Result {
	res := Result{
		ID:     "fig11b",
		Title:  "NAS 3D FFT fault-free runs: access logging",
		XLabel: "Processes",
		YLabel: "GFlop/s (virtual)",
	}
	protos := []fftProto{
		{name: "no-FT", build: func(w *rma.World, cal fftCalibration) (func(int) rma.API, func() string) {
			return func(r int) rma.API { return w.Proc(r) }, nil
		}},
		{name: "ftRMA", build: func(w *rma.World, cal fftCalibration) (func(int) rma.API, func() string) {
			sys, err := ftrma.NewSystem(w, ftrma.Config{
				Groups: cal.groups, ChecksumsPerGroup: 1,
				Log: ftrma.LogConfig{Puts: true},
			})
			if err != nil {
				panic(err)
			}
			return func(r int) rma.API { return sys.Process(r) }, nil
		}},
		{name: "ML", build: func(w *rma.World, cal fftCalibration) (func(int) rma.API, func() string) {
			sys, err := mlog.NewSystem(w, mlog.Config{RanksPerLogger: 8})
			if err != nil {
				panic(err)
			}
			return func(r int) rma.API { return sys.Process(r) }, nil
		}},
	}
	for _, proto := range protos {
		s := Series{Name: proto.name}
		for _, p := range sc.FFTProcs {
			q := intSqrt(p)
			cfg := fft.Config{N: sc.FFTN, Q: q, Iters: sc.FFTIters}
			cal := calibrateFFT(cfg)
			cal.groups = chGroups(p, 12.5)
			g, _ := runFFT(cfg, proto, cal)
			s.Points = append(s.Points, Point{X: float64(p), Y: g})
		}
		res.Series = append(res.Series, s)
	}
	res.Notes = append(res.Notes,
		"expected shape (paper Fig. 11b): ftRMA adds ~8-9% over no-FT and consistently outperforms ML by ~9%")
	return res
}

// Fig12 regenerates the recovery-from-demand-checkpoint figure: the FFT
// with a forced checkpoint/checksum transfer after every iteration, under
// |CH| = 12.5% and 6.25% of |CM| — fewer checksum processes mean more
// contention on each and a slower run.
func Fig12(sc Scale) Result {
	res := Result{
		ID:     "fig12",
		Title:  "NAS 3D FFT: recovery from a demand checkpoint (checksum transfers each iteration)",
		XLabel: "Processes",
		YLabel: "GFlop/s (virtual)",
	}
	type variant struct {
		name string
		pct  float64
	}
	variants := []variant{{"no-FT", 0}, {"f-12.5-nodes", 12.5}, {"f-6.25-nodes", 6.25}}
	for _, v := range variants {
		s := Series{Name: v.name}
		for _, p := range sc.FFTProcs {
			q := intSqrt(p)
			cfg := fft.Config{N: sc.FFTN, Q: q, Iters: sc.FFTIters}
			w := rma.NewWorld(rma.Config{N: p, WindowWords: cfg.WindowWords()})
			var sys *ftrma.System
			if v.pct > 0 {
				var err error
				sys, err = ftrma.NewSystem(w, ftrma.Config{
					Groups: chGroups(p, v.pct), ChecksumsPerGroup: 1,
				})
				if err != nil {
					panic(err)
				}
			}
			apiFor := func(r int) rma.API {
				if sys != nil {
					return sys.Process(r)
				}
				return w.Proc(r)
			}
			w.Run(func(r int) { fft.Init(apiFor(r), cfg) })
			t0 := w.MaxTime()
			w.Run(func(r int) {
				api := apiFor(r)
				for it := 0; it < cfg.Iters; it++ {
					fft.Run(api, cfg, it, it+1)
					if sys != nil {
						// The per-iteration checksum transfer of §7.2.1.
						sys.Process(r).UCCheckpoint()
					}
				}
			})
			g := cfg.TotalFlops(cfg.Iters) / (w.MaxTime() - t0) / 1e9
			s.Points = append(s.Points, Point{X: float64(p), Y: g})
		}
		res.Series = append(res.Series, s)
	}
	res.Notes = append(res.Notes,
		"expected shape (paper Fig. 12): no-FT fastest; f-12.5 above f-6.25 (fewer CHs serialize more checkpoint traffic)")
	return res
}

// Overheads derives the §7.2.1 overhead percentages from Fig. 10d/11b runs.
func Overheads(sc Scale) Result {
	res := Result{
		ID:     "overheads",
		Title:  "Fault-tolerance overheads vs no-FT (derived from fig10d/fig11b)",
		XLabel: "Processes",
		YLabel: "overhead %",
	}
	f10 := Fig10d(sc)
	base := f10.Series[0]
	for _, s := range f10.Series[1:] {
		os := Series{Name: s.Name}
		for i, pt := range s.Points {
			ov := (base.Points[i].Y - pt.Y) / base.Points[i].Y * 100
			os.Points = append(os.Points, Point{X: pt.X, Y: ov})
		}
		res.Series = append(res.Series, os)
	}
	res.Notes = append(res.Notes,
		"paper §7.2.1: f-daly 1-5%, f-no-daly 1-15%, SCR-RAM 21-37%, SCR-PFS 46-67%")
	return res
}

// intSqrt returns the integer square root of a perfect square.
func intSqrt(p int) int {
	q := int(math.Round(math.Sqrt(float64(p))))
	if q*q != p {
		panic(fmt.Sprintf("harness: %d is not a perfect square", p))
	}
	return q
}
