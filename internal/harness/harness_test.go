package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestFig10abFitsCloseToPaper(t *testing.T) {
	sc := DefaultScale()
	for _, level := range []int{1, 2} {
		res := Fig10ab(level, sc)
		if len(res.Series) != 2 {
			t.Fatalf("level %d: %d series", level, len(res.Series))
		}
		foundFit := false
		for _, n := range res.Notes {
			if strings.HasPrefix(n, "fitted:") {
				foundFit = true
			}
		}
		if !foundFit {
			t.Errorf("level %d: no fit note: %v", level, res.Notes)
		}
	}
}

func TestFig10cShape(t *testing.T) {
	res := Fig10c()
	if len(res.Series) != 5 {
		t.Fatalf("%d series, want 5", len(res.Series))
	}
	// no-topo flat.
	nt := res.Series[0]
	for _, p := range nt.Points[1:] {
		if p.Y != nt.Points[0].Y {
			t.Error("no-topo curve not flat")
			break
		}
	}
	// At the largest |CH|, deeper t-awareness is at least as good, and the
	// overall gap spans an order of magnitude or more.
	last := len(nt.Points) - 1
	for i := 1; i < 5; i++ {
		if res.Series[i].Points[last].Y > res.Series[i-1].Points[last].Y*1.0000001 {
			t.Errorf("series %s above %s at max |CH|", res.Series[i].Name, res.Series[i-1].Name)
		}
	}
	if res.Series[4].Points[last].Y > nt.Points[0].Y/10 {
		t.Error("rack-level t-awareness less than 10x better than no-topo")
	}
}

func TestFig10dOrdering(t *testing.T) {
	res := Fig10d(QuickScale())
	if len(res.Series) != 5 {
		t.Fatalf("%d series", len(res.Series))
	}
	byName := map[string][]Point{}
	for _, s := range res.Series {
		byName[s.Name] = s.Points
	}
	// At every process count: no-FT fastest, SCR-PFS slowest, ftRMA
	// between no-FT and SCR-RAM. Comparisons carry a hair of tolerance: a
	// protocol that happened to take no checkpoints ties no-FT exactly.
	const eps = 1e-9
	ge := func(a, b float64) bool { return a >= b*(1-eps) }
	for i := range byName["no-FT"] {
		noft := byName["no-FT"][i].Y
		fdaly := byName["f-daly"][i].Y
		fnodaly := byName["f-no-daly"][i].Y
		ram := byName["SCR-RAM"][i].Y
		pfs := byName["SCR-PFS"][i].Y
		if !(ge(noft, fdaly) && ge(fdaly, fnodaly)) {
			t.Errorf("p=%g: want no-FT >= f-daly >= f-no-daly; got %g, %g, %g",
				byName["no-FT"][i].X, noft, fdaly, fnodaly)
		}
		if !(ge(fnodaly, ram) && ge(ram, pfs)) {
			t.Errorf("p=%g: want f-no-daly >= SCR-RAM >= SCR-PFS; got %g, %g, %g",
				byName["no-FT"][i].X, fnodaly, ram, pfs)
		}
	}
}

func TestFig11aDemandCheckpointTrend(t *testing.T) {
	res := Fig11a(QuickScale())
	pts := res.Series[0].Points
	if len(pts) < 3 {
		t.Fatalf("%d points", len(pts))
	}
	// The largest budget must trigger no demand checkpoints and run
	// fastest (or equal); the smallest budget must trigger some.
	first, last := pts[0], pts[len(pts)-1]
	if !strings.Contains(last.Label, "0 demand") {
		t.Errorf("largest budget still demanded checkpoints: %s", last.Label)
	}
	if strings.Contains(first.Label, " 0 demand") || strings.HasPrefix(first.Label, "0 demand") {
		t.Errorf("smallest budget demanded no checkpoints: %s", first.Label)
	}
	if first.Y > last.Y {
		t.Errorf("tiny budget (%g) outperformed unlimited budget (%g)", first.Y, last.Y)
	}
}

func TestFig11bOrdering(t *testing.T) {
	res := Fig11b(QuickScale())
	byName := map[string][]Point{}
	for _, s := range res.Series {
		byName[s.Name] = s.Points
	}
	for i := range byName["no-FT"] {
		noft := byName["no-FT"][i].Y
		ft := byName["ftRMA"][i].Y
		ml := byName["ML"][i].Y
		if !(noft > ft && ft > ml) {
			t.Errorf("p=%g: want no-FT > ftRMA > ML; got %g, %g, %g",
				byName["no-FT"][i].X, noft, ft, ml)
		}
	}
}

func TestFig11cOrdering(t *testing.T) {
	res := Fig11c(QuickScale())
	byName := map[string][]Point{}
	for _, s := range res.Series {
		byName[s.Name] = s.Points
	}
	for i := range byName["no-FT"] {
		noft := byName["no-FT"][i].Y
		fp := byName["f-puts"][i].Y
		fpg := byName["f-puts-gets"][i].Y
		ml := byName["ML"][i].Y
		if !(noft > fp && fp > fpg && fpg > ml) {
			t.Errorf("p=%g: want no-FT > f-puts > f-puts-gets > ML; got %g %g %g %g",
				byName["no-FT"][i].X, noft, fp, fpg, ml)
		}
	}
}

func TestFig12Ordering(t *testing.T) {
	res := Fig12(QuickScale())
	byName := map[string][]Point{}
	for _, s := range res.Series {
		byName[s.Name] = s.Points
	}
	for i := range byName["no-FT"] {
		p := int(byName["no-FT"][i].X)
		noft := byName["no-FT"][i].Y
		ch125 := byName["f-12.5-nodes"][i].Y
		ch625 := byName["f-6.25-nodes"][i].Y
		if !(noft > ch125) {
			t.Errorf("p=%d: want no-FT > f-12.5; got %g %g", p, noft, ch125)
		}
		if chGroups(p, 12.5) == chGroups(p, 6.25) {
			// At small scales both percentages floor to the same group
			// count — the two runs are config-identical and their virtual
			// rates differ only by scheduling noise in the shared-resource
			// queues. Require near-equality instead of a strict order.
			if ch125 < 0.95*ch625 || ch625 < 0.95*ch125 {
				t.Errorf("p=%d: config-identical CH variants diverge: %g vs %g", p, ch125, ch625)
			}
			continue
		}
		if ch125 < ch625 {
			t.Errorf("p=%d: want f-12.5 >= f-6.25; got %g %g", p, ch125, ch625)
		}
	}
}

func TestOverheadsDerived(t *testing.T) {
	res := Overheads(QuickScale())
	if len(res.Series) != 4 {
		t.Fatalf("%d series", len(res.Series))
	}
	for _, s := range res.Series {
		for _, p := range s.Points {
			// Allow a whisker of floating-point noise below zero (a
			// protocol that never checkpointed costs exactly nothing).
			if p.Y < -0.01 || p.Y > 100 {
				t.Errorf("%s at %g: overhead %g%% out of range", s.Name, p.X, p.Y)
			}
		}
	}
}

func TestResilienceCurve(t *testing.T) {
	res := ResilienceCurve()
	pts := res.Series[0].Points
	if len(pts) < 3 {
		t.Fatalf("%d points", len(pts))
	}
	for _, p := range pts {
		if p.Y <= 0 || p.Y > 1.0000001 {
			t.Errorf("efficiency %g out of range at %g failures", p.Y, p.X)
		}
		if strings.Contains(p.Label, "UNVERIFIED") {
			t.Errorf("unverified recovery at %g failures", p.X)
		}
	}
	// More failures, lower or equal efficiency between the endpoints.
	if pts[len(pts)-1].Y > pts[0].Y {
		t.Errorf("efficiency rose with failures: %g -> %g", pts[0].Y, pts[len(pts)-1].Y)
	}
}

func TestTable1Rendered(t *testing.T) {
	out := Table1()
	for _, want := range []string{"MPI_Put", "put+get", "upc_barrier", "gsync", "caf_sync_memory"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q", want)
		}
	}
}

func TestResultPrint(t *testing.T) {
	res := Result{
		ID: "t", Title: "T", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "a", Points: []Point{{X: 1, Y: 2}, {X: 2, Y: 3, Label: "n"}}},
			{Name: "b", Points: []Point{{X: 1, Y: 4}}},
		},
		Notes: []string{"hello"},
	}
	var buf bytes.Buffer
	res.Print(&buf)
	out := buf.String()
	for _, want := range []string{"== t: T ==", "a", "b", "hello", "(n)", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("print output missing %q in:\n%s", want, out)
		}
	}
}
