package harness

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/apps/kvstore"
	"repro/internal/failure"
	"repro/internal/ftrma"
	"repro/internal/machine"
	"repro/internal/mlog"
	"repro/internal/reliability"
	"repro/internal/rma"
	"repro/internal/trace"
)

// Fig10ab regenerates the failure-distribution fits of Figs. 10a (nodes,
// level 1) and 10b (PSUs, level 2): a synthetic history is drawn from the
// published PDF, binned, and re-fitted; the series show the histogram rate
// and the fitted exponential.
func Fig10ab(level int, sc Scale) Result {
	pdfs := failure.TSUBAMEPDFs()
	names := machine.TSUBAME2().LevelNames
	pdf := pdfs[level-1]
	id := "fig10a"
	if level == 2 {
		id = "fig10b"
	}
	res := Result{
		ID:     id,
		Title:  fmt.Sprintf("Distribution of simultaneous %s failures (samples and fit)", names[level-1]),
		XLabel: fmt.Sprintf("Simultaneous %s failures", names[level-1]),
		YLabel: "P per day",
	}
	rng := rand.New(rand.NewSource(int64(level)))
	const maxSize = 7
	// Rarer hierarchy levels need a longer observation period to populate
	// several histogram bins (the paper had 1962 real crashes).
	days := sc.HistoryDays
	for l := 1; l < level; l++ {
		days *= 8
	}
	evs := failure.GenerateHistory(rng, []failure.PDF{pdf}, days, maxSize)
	hist := failure.Histogram(evs, 1, maxSize)
	sampled := Series{Name: "samples"}
	for x := 1; x <= maxSize; x++ {
		sampled.Points = append(sampled.Points, Point{
			X: float64(x), Y: float64(hist[x]) / float64(days),
		})
	}
	fit, err := failure.FitExponential(hist, days)
	fitted := Series{Name: "fit"}
	if err == nil {
		for x := 1; x <= maxSize; x++ {
			fitted.Points = append(fitted.Points, Point{X: float64(x), Y: fit.At(x)})
		}
		res.Notes = append(res.Notes,
			fmt.Sprintf("fitted: %s", fit),
			fmt.Sprintf("paper:  %s", pdf))
	} else {
		res.Notes = append(res.Notes, fmt.Sprintf("fit failed: %v", err))
	}
	res.Series = []Series{sampled, fitted}
	return res
}

// Fig10c regenerates the probability-of-catastrophic-failure figure:
// P_cf per day against |CH| for the five t-awareness strategies, with
// N = 4000 processes on the TSUBAME2.0 hierarchy.
func Fig10c() Result {
	res := Result{
		ID:     "fig10c",
		Title:  "Probability of a catastrophic failure, TSUBAME2.0, N=4000",
		XLabel: "|CH| (% of N)",
		YLabel: "P_cf / day",
	}
	fdh := machine.TSUBAME2()
	pdfs := failure.TSUBAMEPDFs()
	strategies := []struct {
		name  string
		level int
	}{
		{"no-topo", 0}, {"nodes", 1}, {"PSUs", 2}, {"switches", 3}, {"racks", 4},
	}
	for _, st := range strategies {
		pts, err := reliability.Curve(fdh, pdfs, 4000, st.level, 20, 10)
		if err != nil {
			res.Notes = append(res.Notes, fmt.Sprintf("%s: %v", st.name, err))
			continue
		}
		s := Series{Name: st.name}
		for _, p := range pts {
			s.Points = append(s.Points, Point{X: p.CHPercent, Y: p.Pcf})
		}
		res.Series = append(res.Series, s)
	}
	res.Notes = append(res.Notes,
		"expected shape (paper Fig. 10c): no-topo flat; t-aware curves fall with |CH|; higher levels 1-3 orders of magnitude better")
	return res
}

// Fig11c regenerates the key-value-store logging figure: aggregate
// inserts/s for no-FT, f-puts, f-puts-gets, and the ML baseline.
func Fig11c(sc Scale) Result {
	res := Result{
		ID:     "fig11c",
		Title:  "Key-value store fault-free runs: access logging",
		XLabel: "Processes",
		YLabel: "Inserts/s (virtual)",
	}
	kinds := []string{"no-FT", "f-puts", "f-puts-gets", "ML"}
	for _, kind := range kinds {
		s := Series{Name: kind}
		for _, p := range sc.KVProcs {
			s.Points = append(s.Points, Point{X: float64(p), Y: runKV(kind, p, sc)})
		}
		res.Series = append(res.Series, s)
	}
	res.Notes = append(res.Notes,
		"expected shape (paper Fig. 11c, N=256): overhead vs no-FT ~12% f-puts, ~33% f-puts-gets, ~40% ML")
	return res
}

// runKV measures aggregate inserts per virtual second under one protocol.
func runKV(kind string, p int, sc Scale) float64 {
	cfg := kvstore.Config{
		TableSlots: 4 * sc.KVInsertsPerRank,
		HeapCells:  4 * sc.KVInsertsPerRank,
		ThinkScale: 40e-6, // §7.2.2: inserts are a small fraction of runtime
		ThinkRate:  1,
	}
	w := rma.NewWorld(rma.Config{N: p, WindowWords: cfg.WindowWords()})
	var apiFor func(r int) rma.API
	switch kind {
	case "no-FT":
		apiFor = func(r int) rma.API { return w.Proc(r) }
	case "f-puts", "f-puts-gets":
		sys, err := ftrma.NewSystem(w, ftrma.Config{
			Groups: chGroups(p, 12.5), ChecksumsPerGroup: 1,
			Log: ftrma.LogConfig{Puts: true, Gets: kind == "f-puts-gets"},
		})
		if err != nil {
			panic(err)
		}
		apiFor = func(r int) rma.API { return sys.Process(r) }
	case "ML":
		sys, err := mlog.NewSystem(w, mlog.Config{RanksPerLogger: 8, LogGets: true})
		if err != nil {
			panic(err)
		}
		apiFor = func(r int) rma.API { return sys.Process(r) }
	default:
		panic("harness: unknown kv protocol " + kind)
	}
	total := 0
	stores := make([]*kvstore.Store, p)
	w.Run(func(r int) {
		s, err := kvstore.New(apiFor(r), cfg, int64(r)*7919)
		if err != nil {
			panic(err)
		}
		stores[r] = s
		for i := 0; i < sc.KVInsertsPerRank; i++ {
			s.Insert(uint64(r*sc.KVInsertsPerRank+i) + 1)
		}
	})
	for _, s := range stores {
		total += s.Inserted
	}
	return float64(total) / w.MaxTime()
}

// Table1 renders the operation-categorization table (Table 1 of the
// paper): every MPI-3 One Sided / UPC / Fortran 2008 operation and its
// category in the model.
func Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== table1: Categorization of RMA operations in the model ==\n")
	fmt.Fprintf(&b, "%-24s %s\n", "operation", "category")
	for _, op := range trace.Table1Ops() {
		fmt.Fprintf(&b, "%-24s %s\n", op, trace.Categorize(op))
	}
	return b.String()
}
