package soak

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/obs"
)

// Report is one soak run's SPEChpc-style result: five sections, each
// fed from the ranks' obs registries, serialized as the payload behind
// BENCH_cluster.json. Wall-clock figures are machine-dependent
// documentation; the deterministic counts (ops, kills, recoveries,
// fallbacks, frames) are what the gate holds tight.
type Report struct {
	Transport string `json:"transport"`
	Ranks     int    `json:"ranks"`
	Phases    int    `json:"phases"`
	Seed      int64  `json:"seed"`

	Throughput ThroughputSection `json:"throughput"`
	Latency    LatencySection    `json:"latency"`
	Recovery   RecoverySection   `json:"recovery"`
	Checkpoint CheckpointSection `json:"checkpoint"`
	Wire       WireSection       `json:"wire"`
	Chaos      ChaosSection      `json:"chaos"`
}

// ThroughputSection is steady-state delivered work.
type ThroughputSection struct {
	Ops         uint64  `json:"ops"`
	WallSeconds float64 `json:"wall_seconds"`
	OpsPerSec   float64 `json:"ops_per_s"`
}

// WindowLatency is the flush-latency distribution of one window class,
// aggregated across every rank alive during it.
type WindowLatency struct {
	Count  uint64 `json:"count"`
	P50Us  uint64 `json:"p50_us"`
	P99Us  uint64 `json:"p99_us"`
	P999Us uint64 `json:"p999_us"`
}

// LatencySection contrasts quiet windows against kill/recover windows:
// the same fabric.flush.us histograms, split at crisis boundaries.
type LatencySection struct {
	Quiet  WindowLatency `json:"quiet"`
	Crisis WindowLatency `json:"crisis"`
}

// StageStats is one crisis stage's timing across every crisis of the run.
type StageStats struct {
	Count  uint64  `json:"count"`
	MeanUs float64 `json:"mean_us"`
	P99Us  uint64  `json:"p99_us"`
}

// RecoverySection is recovery time per crisis stage (quiesce, gather,
// rebuild, install, total), keyed by stage name in timeline order.
type RecoverySection struct {
	Stages map[string]StageStats `json:"stages"`
}

// CheckpointSection is the Sync-time checkpoint cost: total time spent
// folding parity, and that time as a percentage of aggregate rank-time.
type CheckpointSection struct {
	Count       uint64  `json:"count"`
	TotalUs     uint64  `json:"total_us"`
	OverheadPct float64 `json:"overhead_pct"`
}

// WireSection is bytes on the wire (data frames, headers included,
// heartbeats excluded) per delivered workload op.
type WireSection struct {
	BytesSent  uint64  `json:"bytes_sent"`
	BytesRecv  uint64  `json:"bytes_recv"`
	BytesPerOp float64 `json:"bytes_per_op"`
}

// ChaosSection is the injected schedule and the fabric's deterministic
// response to it. Fallbacks counts departures from the causal path and
// must stay zero on causal-only schedules — the gate pins it.
type ChaosSection struct {
	Kills      int      `json:"kills"`
	NodeKills  int      `json:"node_kills"`
	Mutes      int      `json:"mutes"`
	Recoveries int      `json:"recoveries"`
	Fallbacks  uint64   `json:"fallbacks"`
	Events     []string `json:"events,omitempty"`
}

// WriteJSON serializes the report, indented.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// String renders the report as the human-readable per-section summary
// the soak targets print.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "soak %s: %d ranks, %d phases, seed %d\n", r.Transport, r.Ranks, r.Phases, r.Seed)
	fmt.Fprintf(&b, "  throughput: %.0f ops/s (%d ops in %.2fs)\n",
		r.Throughput.OpsPerSec, r.Throughput.Ops, r.Throughput.WallSeconds)
	fmt.Fprintf(&b, "  latency quiet:  p50 %dus p99 %dus p999 %dus (%d flushes)\n",
		r.Latency.Quiet.P50Us, r.Latency.Quiet.P99Us, r.Latency.Quiet.P999Us, r.Latency.Quiet.Count)
	fmt.Fprintf(&b, "  latency crisis: p50 %dus p99 %dus p999 %dus (%d flushes)\n",
		r.Latency.Crisis.P50Us, r.Latency.Crisis.P99Us, r.Latency.Crisis.P999Us, r.Latency.Crisis.Count)
	stages := make([]string, 0, len(r.Recovery.Stages))
	for s := range r.Recovery.Stages {
		stages = append(stages, s)
	}
	sort.Strings(stages)
	for _, s := range stages {
		st := r.Recovery.Stages[s]
		fmt.Fprintf(&b, "  recovery %-8s mean %.0fus p99 %dus (%d)\n", s+":", st.MeanUs, st.P99Us, st.Count)
	}
	fmt.Fprintf(&b, "  checkpoint: %d folds, %dus total, %.2f%% of rank-time\n",
		r.Checkpoint.Count, r.Checkpoint.TotalUs, r.Checkpoint.OverheadPct)
	fmt.Fprintf(&b, "  wire: %d sent / %d recv = %.0f bytes/op\n",
		r.Wire.BytesSent, r.Wire.BytesRecv, r.Wire.BytesPerOp)
	fmt.Fprintf(&b, "  chaos: %d kills, %d node-kills, %d mutes -> %d recoveries, %d fallbacks\n",
		r.Chaos.Kills, r.Chaos.NodeKills, r.Chaos.Mutes, r.Chaos.Recoveries, r.Chaos.Fallbacks)
	return b.String()
}

// mergeHist sums one named histogram across rank snapshots.
func mergeHist(snaps []obs.Snapshot, name string) obs.HistogramSnapshot {
	out := obs.HistogramSnapshot{Buckets: map[int]uint64{}}
	for _, s := range snaps {
		hs, ok := s.Histograms[name]
		if !ok {
			continue
		}
		out.Count += hs.Count
		out.Sum += hs.Sum
		for k, v := range hs.Buckets {
			out.Buckets[k] += v
		}
	}
	return out
}

// sumCounter sums one named counter across rank snapshots.
func sumCounter(snaps []obs.Snapshot, name string) uint64 {
	var out uint64
	for _, s := range snaps {
		out += s.Counters[name]
	}
	return out
}

// sumCountersMatching sums every counter whose name contains substr.
func sumCountersMatching(snaps []obs.Snapshot, substr string) uint64 {
	var out uint64
	for _, s := range snaps {
		for n, v := range s.Counters {
			if strings.Contains(n, substr) {
				out += v
			}
		}
	}
	return out
}

func windowLatency(hs obs.HistogramSnapshot) WindowLatency {
	return WindowLatency{
		Count:  hs.Count,
		P50Us:  hs.Quantile(0.50),
		P99Us:  hs.Quantile(0.99),
		P999Us: hs.Quantile(0.999),
	}
}

// buildReport assembles the sections from final rank snapshots plus the
// crisis-window flush histogram accumulated by the chaos controller.
func buildReport(tr Transport, wl Workload, seed int64, wallSec float64,
	ops uint64, snaps []obs.Snapshot, crisisFlush obs.HistogramSnapshot,
	chaos ChaosSection) Report {

	totalFlush := mergeHist(snaps, "fabric.flush.us")
	quiet := totalFlush.Delta(crisisFlush)

	rec := RecoverySection{Stages: map[string]StageStats{}}
	for _, st := range obs.CrisisStages {
		hs := mergeHist(snaps, st.HistName())
		rec.Stages[st.String()] = StageStats{
			Count:  hs.Count,
			MeanUs: hs.Mean(),
			P99Us:  hs.Quantile(0.99),
		}
	}

	ckpt := mergeHist(snaps, "fabric.ckpt.us")
	rankTimeUs := wallSec * 1e6 * float64(wl.Ranks)
	overhead := 0.0
	if rankTimeUs > 0 {
		overhead = float64(ckpt.Sum) / rankTimeUs * 100
	}

	sent := sumCounter(snaps, "fabric.wire.bytes.sent")
	recv := sumCounter(snaps, "fabric.wire.bytes.recv")
	perOp := 0.0
	if ops > 0 {
		perOp = float64(sent) / float64(ops)
	}

	chaos.Fallbacks = sumCountersMatching(snaps, "fallback")

	r := Report{
		Transport: tr.String(),
		Ranks:     wl.Ranks,
		Phases:    wl.Phases,
		Seed:      seed,
		Throughput: ThroughputSection{
			Ops:         ops,
			WallSeconds: wallSec,
			OpsPerSec:   float64(ops) / wallSec,
		},
		Latency: LatencySection{
			Quiet:  windowLatency(quiet),
			Crisis: windowLatency(crisisFlush),
		},
		Recovery:   rec,
		Checkpoint: CheckpointSection{Count: ckpt.Count, TotalUs: ckpt.Sum, OverheadPct: overhead},
		Wire:       WireSection{BytesSent: sent, BytesRecv: recv, BytesPerOp: perOp},
		Chaos:      chaos,
	}
	return r
}
