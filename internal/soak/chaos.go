package soak

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/failure"
	"repro/internal/machine"
)

// EventKind is one chaos event's type.
type EventKind int

const (
	// EvKill: fail-stop one rank (survivable; causal replay recovers it).
	EvKill EventKind = iota
	// EvNodeKill: fail-stop every rank of one placement node at once — a
	// correlated failure. With more than one rank per node this exceeds
	// the fabric's single-failure scope and the run must fail cleanly.
	EvNodeKill
	// EvMute: blackhole one rank's links both ways for less than the
	// lease window, then restore — a transient transport fault the
	// membership must ride out without condemning anybody.
	EvMute
)

func (k EventKind) String() string {
	switch k {
	case EvKill:
		return "kill"
	case EvNodeKill:
		return "node-kill"
	case EvMute:
		return "mute"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one scheduled chaos action, fired when every live rank's
// watermark has reached Phase (so it lands mid-run, in think time).
type Event struct {
	Phase int
	Kind  EventKind
	Ranks []int
}

func (e Event) String() string {
	return fmt.Sprintf("%v@phase%d ranks %v", e.Kind, e.Phase, e.Ranks)
}

// Chaos configures the seeded fault schedule of a soak run.
type Chaos struct {
	// Seed fixes the whole schedule (victims and order).
	Seed int64
	// Kills is how many single-rank fail-stops to inject, executed
	// sequentially (the fabric recovers one failure at a time).
	Kills int
	// NodeKill, when > 0, additionally fail-stops every rank of
	// placement node NodeKill-1 simultaneously at the end of the
	// schedule (1-based so the zero value schedules no node kill).
	NodeKill int
	// Mutes is how many transient both-ways mute windows to inject.
	Mutes int
	// RanksPerNode partitions ranks onto placement nodes (default 1).
	RanksPerNode int
}

// Schedule derives the concrete event list for a run of wl by sampling
// TSUBAME failure schedules from internal/failure over a block placement
// of the workload's ranks — the same machinery the resilience simulations
// use, executed for real. Sampled crash times are rescaled onto the run's
// phase axis; single-rank crashes become EvKill, and the correlated
// whole-node crash (when requested) targets NodeKill's placement node.
// Mute victims are drawn from the same stream. Events are ordered by
// phase with the node kill last.
func (c Chaos) Schedule(wl Workload) ([]Event, error) {
	perNode := c.RanksPerNode
	if perNode < 1 {
		perNode = 1
	}
	if wl.Ranks%perNode != 0 {
		return nil, fmt.Errorf("soak: %d ranks not divisible by %d per node", wl.Ranks, perNode)
	}
	nodes := wl.Ranks / perNode
	fdh := machine.FDH{LevelNames: []string{"node"}, Counts: []int{nodes}}
	pl, err := machine.BlockPlacement(fdh, wl.Ranks, perNode)
	if err != nil {
		return nil, err
	}
	killNode := c.NodeKill - 1 // -1: none
	if killNode >= nodes {
		return nil, fmt.Errorf("soak: node kill %d on a %d-node placement", killNode, nodes)
	}

	// Sample seeded schedules until the draw covers the requested event
	// counts. Single-rank kills are process fail-stops, sampled over a
	// one-rank-per-node placement (a node-level placement can only lose
	// whole nodes); the correlated node kill samples the real placement.
	// The PDFs are per-day rates, so the run's horizon is scanned as many
	// virtual years as it takes.
	pdfs := failure.TSUBAMEPDFs()
	var kills [][]int
	if c.Kills > 0 {
		rankPl, err := machine.BlockPlacement(
			machine.FDH{LevelNames: []string{"node"}, Counts: []int{wl.Ranks}}, wl.Ranks, 1)
		if err != nil {
			return nil, err
		}
		for attempt := int64(0); attempt < 1000 && len(kills) < c.Kills; attempt++ {
			rng := rand.New(rand.NewSource(c.Seed + attempt))
			for _, crash := range failure.SampleSchedule(rng, rankPl, pdfs, 365*86400, 1) {
				if len(crash.Ranks) == 1 && len(kills) < c.Kills {
					kills = append(kills, crash.Ranks)
				}
			}
		}
		if len(kills) < c.Kills {
			return nil, fmt.Errorf("soak: sampled schedules yielded %d single-rank crashes, want %d", len(kills), c.Kills)
		}
	}
	var nodeKill []int
	if killNode >= 0 {
		for attempt := int64(0); attempt < 1000 && nodeKill == nil; attempt++ {
			rng := rand.New(rand.NewSource(splitmixInt(c.Seed) + attempt))
			for _, crash := range failure.SampleSchedule(rng, pl, pdfs, 365*86400, 1) {
				if len(crash.Ranks) >= 2 && pl.NodeOf[crash.Ranks[0]] == killNode {
					nodeKill = append([]int(nil), crash.Ranks...)
					break
				}
			}
		}
		if nodeKill == nil {
			return nil, fmt.Errorf("soak: sampled schedules yielded no whole-node crash of node %d", killNode)
		}
	}

	// Mute victims from the same seeded stream.
	rng := rand.New(rand.NewSource(splitmixInt(c.Seed)))
	var mutes []int
	for i := 0; i < c.Mutes; i++ {
		mutes = append(mutes, rng.Intn(wl.Ranks))
	}

	// Spread events across the run's interior phases: chaos must land
	// mid-flight, never before phase 1 or so late nothing is left to do.
	var evs []Event
	for _, r := range kills {
		evs = append(evs, Event{Kind: EvKill, Ranks: r})
	}
	for _, m := range mutes {
		evs = append(evs, Event{Kind: EvMute, Ranks: []int{m}})
	}
	// Deterministic interleave of kills and mutes by seeded shuffle.
	rng.Shuffle(len(evs), func(i, j int) { evs[i], evs[j] = evs[j], evs[i] })
	if nodeKill != nil {
		evs = append(evs, Event{Kind: EvNodeKill, Ranks: nodeKill})
	}
	// Distinct phases per event: two fail-stops in one phase would be an
	// accidental double failure, turning a survivable schedule
	// catastrophic. Strictly increasing assignment needs span >= events.
	span := wl.Phases - 2
	if len(evs) > 0 && span < len(evs) {
		return nil, fmt.Errorf("soak: %d chaos events need at least %d phases, got %d",
			len(evs), len(evs)+2, wl.Phases)
	}
	for i := range evs {
		evs[i].Phase = 1 + i*span/len(evs)
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Phase < evs[j].Phase })
	return evs, nil
}

func splitmixInt(x int64) int64 { return int64(splitmix(uint64(x))) }
