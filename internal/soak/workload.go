// Package soak is the one-box scale-out soak harness: it launches a
// 64–256-rank symmetric fabric in-process (real sockets over tcp, real
// mmap rings over shm, or a mix through the Dialer seam), drives a long
// mixed stencil/FFT/kvstore workload under seeded chaos — flaky
// transport faults plus single, multi, and correlated kill schedules
// drawn from internal/failure — and emits a SPEChpc-style per-section
// report (throughput, quiet-vs-crisis tail latency, per-stage recovery
// time, checkpoint overhead, bytes on wire per op) from the ranks' obs
// registries. Every survivable run is judged bit-identical against an
// in-process oracle; unsurvivable schedules must fail cleanly, never
// hang. TestSoak runs the short 64-rank leg in `go test ./...`; `make
// soak` runs the full matrix. docs/SOAK.md describes how to read the
// output.
package soak

import (
	"fmt"
	"time"

	"repro/internal/rma"
)

// Workload is the mixed soak workload: phases cycle stencil → FFT → kv,
// all in the conflict-free causal shape (per-(source, phase) disjoint
// replacing puts, a blocking verify of the previous phase's own writes,
// and a copy-get landing in a per-phase scratch word) so the identical
// access sequence drives the fabric and the raw in-process oracle to
// bit-identical windows, and any think-time kill is recoverable by
// causal replay. Only the *communication pattern* varies by phase kind:
// ring-neighbor halo exchange (stencil), butterfly partners (FFT), and
// hashed owners (kv).
type Workload struct {
	Ranks   int
	Phases  int
	Inserts int // words per (source, phase) block
	// PhaseDelay is per-phase think time; chaos events land inside it.
	PhaseDelay time.Duration
	// Seed drives the kv phases' owner hashing.
	Seed int64
}

// Validate checks the workload shape.
func (w Workload) Validate() error {
	switch {
	case w.Ranks < 4:
		return fmt.Errorf("soak: %d ranks; need at least 4", w.Ranks)
	case w.Phases < 2:
		return fmt.Errorf("soak: %d phases; need at least 2", w.Phases)
	case w.Inserts < 1:
		return fmt.Errorf("soak: %d inserts per phase; need at least 1", w.Inserts)
	}
	return nil
}

// WindowWords is each rank's window size: one block per (source, phase)
// plus one scratch word per phase for the copy-get landings.
func (w Workload) WindowWords() int { return w.Ranks*w.Phases*w.Inserts + w.Phases }

func (w Workload) off(src, phase int) int { return (src*w.Phases + phase) * w.Inserts }

func (w Workload) scratch(phase int) int { return w.Ranks*w.Phases*w.Inserts + phase }

func (w Workload) val(rank, phase, i int) uint64 {
	return uint64(rank+1)<<40 | uint64(phase+1)<<20 | uint64(i+1)
}

// PhaseKind names the communication pattern of a phase.
type PhaseKind int

const (
	KindStencil PhaseKind = iota
	KindFFT
	KindKV
)

func (k PhaseKind) String() string {
	switch k {
	case KindStencil:
		return "stencil"
	case KindFFT:
		return "fft"
	case KindKV:
		return "kv"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Kind returns the pattern phase p runs.
func (w Workload) Kind(p int) PhaseKind { return PhaseKind(p % 3) }

// splitmix is the kv phases' owner hash: deterministic, seed-salted,
// well-mixed (the splitmix64 finalizer).
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Targets returns the distinct peers rank writes to in phase p, in issue
// order. Never empty, never containing rank itself.
func (w Workload) Targets(rank, p int) []int {
	n := w.Ranks
	var raw []int
	switch w.Kind(p) {
	case KindStencil:
		// Ring halo exchange: both neighbors.
		raw = []int{(rank + n - 1) % n, (rank + 1) % n}
	case KindFFT:
		// Butterfly: partner at a stride that doubles every FFT phase.
		bit := 1 << uint((p/3)%6)
		partner := rank ^ bit
		if partner >= n {
			partner = (rank + bit) % n
		}
		raw = []int{partner}
	case KindKV:
		// Two hashed owners, as a kvstore writing replicated entries.
		h := splitmix(uint64(w.Seed)<<32 ^ uint64(rank)<<16 ^ uint64(p))
		raw = []int{int(h % uint64(n)), int((h >> 32) % uint64(n))}
	}
	out := raw[:0]
	seen := map[int]bool{rank: true}
	for _, t := range raw {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	if len(out) == 0 {
		out = append(out, (rank+1)%n)
	}
	return out
}

// RunPhase issues phase p of the workload for the calling rank on api and
// returns the number of RMA operations issued. The shape mirrors the
// cluster's causal mode: replacing puts of this rank's (rank, p) block to
// every target, a blocking readback of the previous phase's own writes
// from one of its targets, and a copy-get of this phase's block landing
// in the per-phase scratch word, flushed towards the get's target. The
// caller closes the epoch (Sync/Gsync) afterwards.
func (w Workload) RunPhase(api rma.API, p int) (int, error) {
	rank := api.Rank()
	data := make([]uint64, w.Inserts)
	for i := range data {
		data[i] = w.val(rank, p, i)
	}
	targets := w.Targets(rank, p)
	ops := 0
	for _, t := range targets {
		api.Put(t, w.off(rank, p), data)
		ops++
	}
	if p > 0 {
		prev := w.Targets(rank, p-1)[0]
		got := api.GetBlocking(prev, w.off(rank, p-1), w.Inserts)
		ops++
		for i, v := range got {
			if want := w.val(rank, p-1, i); v != want {
				return ops, fmt.Errorf("soak: rank %d phase %d (%v) readback word %d = %#x, want %#x",
					rank, p, w.Kind(p), i, v, want)
			}
		}
	}
	api.GetCopy(targets[0], w.off(rank, p), 1, w.scratch(p))
	ops++
	api.Flush(targets[0])
	ops++
	return ops, nil
}

// ExpectedOps is the deterministic total operation count of a complete
// run: every (rank, phase) is issued exactly once — a victim killed at a
// phase top never issues that phase, its replacement issues it instead —
// so the count is independent of transport, schedule, and timing. The
// bench gate pins it.
func (w Workload) ExpectedOps() int {
	total := 0
	for r := 0; r < w.Ranks; r++ {
		for p := 0; p < w.Phases; p++ {
			total += len(w.Targets(r, p)) + 2
			if p > 0 {
				total++
			}
		}
	}
	return total
}

// Oracle runs the workload failure-free on the raw in-process runtime
// and returns every rank's final window — the bit-identity reference.
func (w Workload) Oracle() ([][]uint64, error) {
	world := rma.NewWorld(rma.Config{N: w.Ranks, WindowWords: w.WindowWords()})
	defer world.Close()
	errs := make(chan error, w.Ranks)
	world.Run(func(r int) {
		p := world.Proc(r)
		for phase := 0; phase < w.Phases; phase++ {
			if _, err := w.RunPhase(p, phase); err != nil {
				errs <- err
				return
			}
			p.Gsync()
		}
	})
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	out := make([][]uint64, w.Ranks)
	for r := range out {
		out[r] = world.Proc(r).ReadAt(0, w.WindowWords())
	}
	return out, nil
}
