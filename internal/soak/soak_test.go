package soak

import (
	"math/rand"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/transport/flaky"
)

func vLogf(t *testing.T) func(string, ...any) {
	if testing.Verbose() {
		return t.Logf
	}
	return nil
}

// assertSoakReport checks the deterministic section values of a
// survivable run: exact op count, zero fallbacks (the whole point of the
// causal path), one recovery per kill, and every section populated.
func assertSoakReport(t *testing.T, rep *Report, wl Workload, kills int) {
	t.Helper()
	if want := uint64(wl.ExpectedOps()); rep.Throughput.Ops != want {
		t.Errorf("ops = %d, want %d (each (rank, phase) issued exactly once)", rep.Throughput.Ops, want)
	}
	if rep.Chaos.Fallbacks != 0 {
		t.Errorf("%d fallbacks on a causal-only schedule", rep.Chaos.Fallbacks)
	}
	if rep.Chaos.Recoveries != kills {
		t.Errorf("recoveries = %d, want %d (one per kill)", rep.Chaos.Recoveries, kills)
	}
	if rep.Latency.Quiet.Count == 0 {
		t.Error("no quiet-window flushes recorded")
	}
	if kills > 0 {
		if rep.Latency.Crisis.Count == 0 {
			t.Error("kills happened but no crisis-window flushes recorded")
		}
		for _, stage := range []string{"quiesce", "gather", "rebuild", "install", "total"} {
			if rep.Recovery.Stages[stage].Count == 0 {
				t.Errorf("crisis stage %q never timed", stage)
			}
		}
	}
	if rep.Checkpoint.Count == 0 {
		t.Error("no checkpoint folds timed")
	}
	if rep.Wire.BytesSent == 0 || rep.Wire.BytesRecv == 0 {
		t.Errorf("wire section empty: %+v", rep.Wire)
	}
	if testing.Verbose() {
		t.Logf("\n%s", rep)
	}
}

// TestSoak is the suite's entry point. The 64-rank kill leg and the
// catastrophic leg run in plain `go test ./...`; the full matrix (shm,
// mixed, mutes, 128 ranks) runs when REPRO_SOAK is set — `make soak`.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak legs exceed the -short budget")
	}
	t.Run("kill64", func(t *testing.T) {
		// The CI leg: 64 tcp ranks, one sampled mid-run fail-stop,
		// causal replay, bit-identical finish (Run verifies).
		wl := Workload{Ranks: 64, Phases: 6, Inserts: 2, Seed: 42}
		rep, err := Run(Config{
			Transport: TransportTCP,
			Workload:  wl,
			Chaos:     Chaos{Seed: 7, Kills: 1},
			Timeout:   4 * time.Minute,
			Logf:      vLogf(t),
		})
		if err != nil {
			t.Fatal(err)
		}
		assertSoakReport(t, rep, wl, 1)
	})
	t.Run("catastrophic", func(t *testing.T) {
		// A sampled whole-node crash (2 ranks at once) is beyond the
		// single-failure causal path: the run must fail with a clean
		// catastrophic error, promptly, never hang.
		wl := Workload{Ranks: 8, Phases: 6, Inserts: 2, Seed: 43}
		start := time.Now()
		_, err := Run(Config{
			Transport: TransportTCP,
			Workload:  wl,
			Chaos:     Chaos{Seed: 11, NodeKill: 1, RanksPerNode: 2},
			Timeout:   2 * time.Minute,
			Logf:      vLogf(t),
		})
		if err == nil {
			t.Fatal("correlated node loss survived; the fabric recovers single failures only")
		}
		if !strings.Contains(err.Error(), "catastrophic") {
			t.Fatalf("unsurvivable schedule failed without a catastrophic error: %v", err)
		}
		if el := time.Since(start); el > 90*time.Second {
			t.Fatalf("catastrophic failure took %v to surface", el)
		}
		t.Logf("catastrophic schedule failed cleanly in %v: %v", time.Since(start), err)
	})
}

// TestSoakFull is the scale-out matrix behind `make soak`: shm rings,
// the mixed transport (shm intra-node, tcp inter-node), transient mute
// faults riding along with kills, and a 128-rank fabric. Each leg ends
// bit-identical to the oracle with zero fallbacks.
func TestSoakFull(t *testing.T) {
	if os.Getenv("REPRO_SOAK") == "" {
		t.Skip("set REPRO_SOAK=1 (or run `make soak`) for the full matrix")
	}
	for _, tc := range []struct {
		name  string
		tr    Transport
		wl    Workload
		chaos Chaos
	}{
		{"shm64-kills-mute", TransportSHM,
			Workload{Ranks: 64, Phases: 9, Inserts: 2, Seed: 42},
			Chaos{Seed: 7, Kills: 2, Mutes: 1}},
		{"mixed64-kill-mute", TransportMixed,
			Workload{Ranks: 64, Phases: 8, Inserts: 2, Seed: 44},
			Chaos{Seed: 9, Kills: 1, Mutes: 1, RanksPerNode: 8}},
		{"shm128-kill", TransportSHM,
			Workload{Ranks: 128, Phases: 6, Inserts: 2, Seed: 45},
			Chaos{Seed: 13, Kills: 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := Run(Config{
				Transport: tc.tr,
				Workload:  tc.wl,
				Chaos:     tc.chaos,
				RingBytes: 32 << 10,
				Timeout:   2 * time.Minute,
				Logf:      vLogf(t),
			})
			if err != nil {
				t.Fatal(err)
			}
			assertSoakReport(t, rep, tc.wl, tc.chaos.Kills)
		})
	}
}

// TestSoakXL is the 256-rank leg. Its lazily-dialed full mesh maps
// ~130k ring regions, past the default vm.max_map_count of 65530 —
// see docs/SOAK.md for the sysctl it needs — so it wants its own opt-in
// on top of REPRO_SOAK.
func TestSoakXL(t *testing.T) {
	if os.Getenv("REPRO_SOAK_XL") == "" {
		t.Skip("set REPRO_SOAK_XL=1 for the 256-rank leg (needs vm.max_map_count >= 262144)")
	}
	wl := Workload{Ranks: 256, Phases: 5, Inserts: 1, Seed: 46}
	rep, err := Run(Config{
		Transport: TransportSHM,
		Workload:  wl,
		Chaos:     Chaos{Seed: 17, Kills: 1},
		RingBytes: 16 << 10,
		Timeout:   20 * time.Minute,
		Logf:      vLogf(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSoakReport(t, rep, wl, 1)
}

// TestMembershipConvergenceUnderPartitions is the membership property
// test: between every workload phase — the fabric quiescent, heartbeats
// and gossip still flowing — a seeded injector opens a transient Mute
// (blackholed frames on live sockets) or Refuse (failed fresh dials)
// partition around one rank, each shorter than the lease window.
// Property: the workload completes bit-identical, and the ranks converge
// to one incarnation-consistent view with no live rank condemned. The
// seed is pinned; failures print it for replay.
func TestMembershipConvergenceUnderPartitions(t *testing.T) {
	if testing.Short() {
		t.Skip("partition property test exceeds the -short budget")
	}
	const seed = 1
	rng := rand.New(rand.NewSource(seed))
	wl := Workload{Ranks: 8, Phases: 8, Inserts: 2, Seed: 47}
	tun := fabric.Tuning{LeaseInterval: 100 * time.Millisecond, LeaseMiss: 15, GossipInterval: 25 * time.Millisecond}

	eps, err := buildEndpoints(TransportTCP, wl.Ranks, 0, 1, "", 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	defer eps.Close()
	fseed, err := fabric.NewSeed(fabric.SeedConfig{
		N: wl.Ranks, WindowWords: wl.WindowWords(), Groups: 2,
		Tuning: tun, Listener: eps.seedLn, Logf: vLogf(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fseed.Close()
	type joined struct {
		nd  *fabric.Node
		ep  int
		err error
	}
	jch := make(chan joined, wl.Ranks)
	for i := 0; i < wl.Ranks; i++ {
		i := i
		go func() {
			nd, err := fabric.Join(fabric.JoinConfig{
				Join: fseed.Addr(), Addr: eps.eps[i].addr,
				Listener: eps.eps[i].ln, Dialer: eps.eps[i].dialer,
				Logf: vLogf(t),
			})
			jch <- joined{nd: nd, ep: i, err: err}
		}()
	}
	nodes := make([]*fabric.Node, wl.Ranks)
	dialers := make([]*flaky.Dialer, wl.Ranks)
	for i := 0; i < wl.Ranks; i++ {
		j := <-jch
		if j.err != nil {
			t.Fatalf("seed %d: join: %v", seed, j.err)
		}
		nodes[j.nd.Rank()] = j.nd
		dialers[j.nd.Rank()] = eps.eps[j.ep].dialer
	}
	for _, nd := range nodes {
		nd := nd
		defer nd.Close()
	}

	// Lockstep: run each phase to completion across every rank, then —
	// with no workload call in flight (a muted link destroys frames, it
	// does not delay them, so an in-flight call would strand forever) —
	// open one seeded partition window, lift it, and go again.
	window := tun.LeaseInterval * time.Duration(tun.LeaseMiss) / 4
	errs := make(chan error, wl.Ranks)
	for p := 0; p < wl.Phases; p++ {
		for _, nd := range nodes {
			nd := nd
			go func() {
				if _, err := wl.RunPhase(nd, p); err != nil {
					errs <- err
					return
				}
				errs <- nd.Sync()
			}()
		}
		for range nodes {
			if err := <-errs; err != nil {
				t.Fatalf("seed %d: phase %d: %v", seed, p, err)
			}
		}
		if p == wl.Phases-1 {
			break
		}
		victim := rng.Intn(wl.Ranks)
		refuse := rng.Intn(2) == 0
		vAddr := nodes[victim].Addr()
		for r, d := range dialers {
			if r == victim {
				continue
			}
			if refuse {
				d.Refuse(vAddr)
				dialers[victim].Refuse(nodes[r].Addr())
			} else {
				d.Mute(vAddr)
				dialers[victim].Mute(nodes[r].Addr())
			}
		}
		time.Sleep(window)
		for r, d := range dialers {
			if r == victim {
				continue
			}
			if refuse {
				d.Unrefuse(vAddr)
				dialers[victim].Unrefuse(nodes[r].Addr())
			} else {
				d.Unmute(vAddr)
				dialers[victim].Unmute(nodes[r].Addr())
			}
		}
	}

	// Convergence: every node's view says everyone is alive at
	// incarnation 0, and all views agree.
	want := nodes[0].Members()
	for r, nd := range nodes {
		ms := nd.Members()
		for i, m := range ms {
			if !m.Alive {
				t.Errorf("seed %d: rank %d condemned live rank %d under transient partitions", seed, r, m.Rank)
			}
			if m.Incarnation != 0 {
				t.Errorf("seed %d: rank %d sees rank %d at incarnation %d", seed, r, m.Rank, m.Incarnation)
			}
			if m.Rank != want[i].Rank || m.Incarnation != want[i].Incarnation || m.Alive != want[i].Alive {
				t.Errorf("seed %d: rank %d's view of rank %d diverges from rank 0's", seed, r, m.Rank)
			}
		}
	}

	// Frames flowed to the right places: bit-identity with the oracle.
	oracle, err := wl.Oracle()
	if err != nil {
		t.Fatal(err)
	}
	for r, nd := range nodes {
		got := nd.ReadAt(0, wl.WindowWords())
		for i := range got {
			if got[i] != oracle[r][i] {
				t.Fatalf("seed %d: rank %d word %d: fabric %#x, oracle %#x", seed, r, i, got[i], oracle[r][i])
			}
		}
	}
}

// TestChaosScheduleDeterministic pins the schedule derivation: same seed
// same events, distinct phases, node kills last, and the whole-node
// crash really is one placement node.
func TestChaosScheduleDeterministic(t *testing.T) {
	wl := Workload{Ranks: 16, Phases: 10, Inserts: 2, Seed: 42}
	c := Chaos{Seed: 7, Kills: 2, Mutes: 1, NodeKill: 2, RanksPerNode: 2}
	a, err := c.Schedule(wl)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Schedule(wl)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 4 {
		t.Fatalf("got %d events, want 4: %v", len(a), a)
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("schedule not deterministic: %v vs %v", a[i], b[i])
		}
		if i > 0 && a[i].Phase <= a[i-1].Phase {
			t.Fatalf("phases not strictly increasing: %v", a)
		}
		if a[i].Phase < 1 || a[i].Phase >= wl.Phases {
			t.Fatalf("event outside interior phases: %v", a[i])
		}
	}
	last := a[len(a)-1]
	if last.Kind != EvNodeKill {
		t.Fatalf("node kill not last: %v", a)
	}
	if len(last.Ranks) < 2 {
		t.Fatalf("node kill of %v is not correlated", last.Ranks)
	}
	node := last.Ranks[0] / 2
	if node != 1 {
		t.Fatalf("node kill hit node %d, want 1", node)
	}
	for _, r := range last.Ranks {
		if r/2 != node {
			t.Fatalf("node kill victims %v span nodes", last.Ranks)
		}
	}
}

// TestWorkloadOracleAndTargets pins the workload shape: valid targets,
// deterministic oracle, and the documented op count.
func TestWorkloadOracleAndTargets(t *testing.T) {
	wl := Workload{Ranks: 8, Phases: 6, Inserts: 2, Seed: 42}
	for r := 0; r < wl.Ranks; r++ {
		for p := 0; p < wl.Phases; p++ {
			ts := wl.Targets(r, p)
			if len(ts) == 0 {
				t.Fatalf("rank %d phase %d: no targets", r, p)
			}
			seen := map[int]bool{}
			for _, q := range ts {
				if q == r || q < 0 || q >= wl.Ranks || seen[q] {
					t.Fatalf("rank %d phase %d: bad targets %v", r, p, ts)
				}
				seen[q] = true
			}
		}
	}
	a, err := wl.Oracle()
	if err != nil {
		t.Fatal(err)
	}
	b, err := wl.Oracle()
	if err != nil {
		t.Fatal(err)
	}
	for r := range a {
		for i := range a[r] {
			if a[r][i] != b[r][i] {
				t.Fatalf("oracle not deterministic at rank %d word %d", r, i)
			}
		}
	}
	// Spot-check a committed block landed where the layout says.
	r, p := 3, 2
	trg := wl.Targets(r, p)[0]
	if got, want := a[trg][wl.off(r, p)], wl.val(r, p, 0); got != want {
		t.Fatalf("block (%d,%d) word 0 at rank %d = %#x, want %#x", r, p, trg, got, want)
	}
	if wl.ExpectedOps() <= wl.Ranks*wl.Phases*2 {
		t.Fatalf("ExpectedOps %d implausibly small", wl.ExpectedOps())
	}
}
