package soak

import (
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/transport"
	"repro/internal/transport/flaky"
	"repro/internal/transport/shm"
)

// Transport selects how the soak's ranks talk to each other.
type Transport int

const (
	// TransportTCP: every rank a real localhost socket.
	TransportTCP Transport = iota
	// TransportSHM: every rank an mmap ring endpoint of one shm fabric.
	TransportSHM
	// TransportMixed: shm rings between co-located ranks (same placement
	// node), tcp otherwise — the one-box model of a multi-node machine.
	TransportMixed
)

func (t Transport) String() string {
	switch t {
	case TransportTCP:
		return "tcp"
	case TransportSHM:
		return "shm"
	case TransportMixed:
		return "mixed"
	}
	return fmt.Sprintf("transport(%d)", int(t))
}

// endpoint is one rank-slot's transport attachment: the listener it
// accepts on, the fault-injectable dialer it dials through, and the
// address peers reach it at.
type endpoint struct {
	addr   string
	ln     net.Listener
	dialer *flaky.Dialer
}

// endpoints builds the transport for n ranks plus spares replacement
// slots (slot n+k is the k-th replacement's attachment). The returned
// cleanup closes what the fabric nodes do not own (the shm fabric and
// any unused listeners are closed by their nodes' Close or by cleanup).
type endpoints struct {
	eps     []endpoint
	seedLn  net.Listener
	seedTCP bool
	shmFab  *shm.Fabric
}

func (e *endpoints) Close() {
	for _, ep := range e.eps {
		ep.ln.Close()
	}
	if e.seedLn != nil {
		e.seedLn.Close()
	}
	if e.shmFab != nil {
		e.shmFab.Close()
	}
}

// mixAddr encodes a mixed-transport address: "mx|<node>|<shm endpoint>|<tcp addr>".
// Plain addresses (no "mx|" prefix) are tcp — the seed's, notably.
func mixAddr(node, shmEp int, tcpAddr string) string {
	return fmt.Sprintf("mx|%d|%d|%s", node, shmEp, tcpAddr)
}

// mixDialer routes by co-location: targets on the same placement node go
// over the shm rings, everything else over tcp.
type mixDialer struct {
	node int
	shm  transport.Dialer
	tcp  transport.Dialer
}

func (d mixDialer) Dial(addr string) (net.Conn, error) {
	if !strings.HasPrefix(addr, "mx|") {
		return d.tcp.Dial(addr)
	}
	parts := strings.SplitN(addr, "|", 4)
	if len(parts) != 4 {
		return nil, fmt.Errorf("soak: malformed mixed address %q", addr)
	}
	node, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("soak: malformed mixed address %q", addr)
	}
	if node == d.node {
		return d.shm.Dial(parts[2])
	}
	return d.tcp.Dial(parts[3])
}

// muxListener merges accepts from several listeners (a rank's shm ring
// and tcp socket) into one.
type muxListener struct {
	lns   []net.Listener
	conns chan net.Conn
	done  chan struct{}
	once  sync.Once
	addr  strAddr
}

type strAddr string

func (a strAddr) Network() string { return "soak" }
func (a strAddr) String() string  { return string(a) }

func newMux(addr string, lns ...net.Listener) *muxListener {
	m := &muxListener{lns: lns, conns: make(chan net.Conn), done: make(chan struct{}), addr: strAddr(addr)}
	for _, ln := range lns {
		ln := ln
		go func() {
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				select {
				case m.conns <- c:
				case <-m.done:
					c.Close()
					return
				}
			}
		}()
	}
	return m
}

func (m *muxListener) Accept() (net.Conn, error) {
	select {
	case c := <-m.conns:
		return c, nil
	case <-m.done:
		return nil, net.ErrClosed
	}
}

func (m *muxListener) Close() error {
	m.once.Do(func() {
		close(m.done)
		for _, ln := range m.lns {
			ln.Close()
		}
	})
	return nil
}

func (m *muxListener) Addr() net.Addr { return m.addr }

// buildEndpoints constructs the rank attachments for the chosen
// transport. ranksPerNode partitions ranks into placement nodes (used by
// the mixed transport for co-location and by chaos for correlation);
// slots beyond n are replacement attachments placed on the node of the
// rank they may replace — unknown ahead of time, so spares get one shm
// endpoint each and dial everything remote in mixed mode (a replacement
// is a fresh host joining the machine).
func buildEndpoints(tr Transport, n, spares, ranksPerNode int, dir string, ringBytes int) (*endpoints, error) {
	out := &endpoints{}
	total := n + spares
	// Big fabrics on few cores die by a thousand wakeups: the ring poll
	// is only a backstop (in-process bells deliver wakeups immediately),
	// but tens of thousands of ring goroutines polling every 200µs is a
	// scheduler collapse all by itself. Long poll, minimal spin.
	shmCfg := shm.FabricConfig{
		Dir: dir, RingBytes: ringBytes,
		SpinYield: 4, PollInterval: 200 * time.Millisecond,
	}
	switch tr {
	case TransportTCP:
		for i := 0; i < total; i++ {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				out.Close()
				return nil, err
			}
			out.eps = append(out.eps, endpoint{
				addr:   ln.Addr().String(),
				ln:     ln,
				dialer: flaky.WrapDialer(transport.NetDialer{}),
			})
		}
		seedLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			out.Close()
			return nil, err
		}
		out.seedLn, out.seedTCP = seedLn, true
		return out, nil

	case TransportSHM:
		fab, err := shm.NewFabric(total+1, shmCfg)
		if err != nil {
			return nil, err
		}
		out.shmFab = fab
		for i := 0; i < total; i++ {
			out.eps = append(out.eps, endpoint{
				addr:   strconv.Itoa(i),
				ln:     fab.Listener(i),
				dialer: flaky.WrapDialer(fab.Dialer(i)),
			})
		}
		out.seedLn = fab.Listener(total)
		return out, nil

	case TransportMixed:
		if ranksPerNode < 1 {
			ranksPerNode = 1
		}
		fab, err := shm.NewFabric(total, shmCfg)
		if err != nil {
			return nil, err
		}
		out.shmFab = fab
		for i := 0; i < total; i++ {
			tln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				out.Close()
				return nil, err
			}
			node := i / ranksPerNode
			if i >= n {
				// Replacements are fresh hosts: their own node, all-tcp
				// to existing ranks, shm reachable for future co-location.
				node = -1 - (i - n)
			}
			out.eps = append(out.eps, endpoint{
				addr: mixAddr(node, i, tln.Addr().String()),
				ln:   newMux(mixAddr(node, i, tln.Addr().String()), fab.Listener(i), tln),
				dialer: flaky.WrapDialer(mixDialer{
					node: node, shm: fab.Dialer(i), tcp: transport.NetDialer{},
				}),
			})
		}
		seedLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			out.Close()
			return nil, err
		}
		out.seedLn, out.seedTCP = seedLn, true
		return out, nil
	}
	return nil, fmt.Errorf("soak: unknown transport %v", tr)
}
