package soak

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/transport/flaky"
)

// Config is one soak run.
type Config struct {
	Transport Transport
	Workload  Workload
	Chaos     Chaos
	// Tuning's zero value resolves to soak defaults sized for a loaded
	// one-box machine (big fabrics on few cores need patient leases).
	Tuning fabric.Tuning
	// Groups is the parity group count; 0 picks the cluster default.
	Groups int
	// Dir backs the shm rings; empty uses a fresh temp dir.
	Dir string
	// RingBytes sizes each shm ring direction. 0 picks 64 KiB — small
	// enough that a big fabric's O(ranks²) lazily-dialed ring regions
	// fit in memory, big enough for every soak frame.
	RingBytes int
	// Timeout bounds the whole run. On expiry every node is closed and
	// Run returns an error — the harness never hangs. Default 10m.
	Timeout time.Duration
	Logf    func(format string, args ...any)
}

// soakTuning is the default fabric timing for big in-process fabrics:
// hundreds of goroutine ranks sharing few cores miss heartbeats under
// scheduler pressure, so leases are long; gossip is repair-only (kills
// surface through connection resets) and can idle.
var soakTuning = fabric.Tuning{
	LeaseInterval:  500 * time.Millisecond,
	LeaseMiss:      20, // 10s of silence condemns
	GossipInterval: 250 * time.Millisecond,
}

// member is one live fabric node under the harness: the node, its
// metrics registry, and the endpoint slot it is attached to.
type member struct {
	nd  *fabric.Node
	reg *obs.Registry
	ep  int
}

// firing is one chaos event armed for execution: each participant claims
// its entry once (a replacement re-driving the same phase must not
// re-fire), and barrier events rendezvous — node-kill victims so they
// fail together, mutes so the whole fabric is quiescent. The quiescence
// matters: a muted link destroys frames rather than delaying them, so a
// workload call in flight during the window would hang forever — exactly
// the silent-peer model the lease detector covers, but fatal to a run
// that still expects those frames. Real silence (a stalled NIC) stalls
// TCP, which retransmits; the injectable mute does not, so the harness
// only opens windows while no calls are outstanding.
type firing struct {
	ev      Event // Ranks translated to live fabric ranks
	global  bool  // every rank participates (mute barriers)
	mu      sync.Mutex
	claimed map[int]bool
	arrived int
	release chan struct{}
}

type driveResult struct {
	rank     int
	ops      int
	err      error
	killedAt int // -1 unless the driver executed a kill
	kind     EventKind
	pre      obs.HistogramSnapshot // merged flush.us at the kill
}

type runState struct {
	cfg     Config
	wl      Workload
	eps     *endpoints
	results chan driveResult
	muteDur time.Duration
	done    chan struct{} // closed by closeAll; unblocks barrier waits

	deadline time.Time

	mu          sync.Mutex
	byRank      map[int]*member
	regs        []*obs.Registry
	byPhase     map[int][]*firing
	spareNext   int
	crisisFlush obs.HistogramSnapshot
	closed      bool
}

// Run executes one soak: bootstrap the fabric over the chosen transport,
// drive the mixed workload under the seeded chaos schedule, verify the
// final state bit-identical to the in-process oracle and the membership
// converged, and return the per-section report. Unsurvivable schedules
// (node kills) return an error marked catastrophic; nothing hangs — the
// run is bounded by cfg.Timeout.
func Run(cfg Config) (*Report, error) {
	wl := cfg.Workload
	if err := wl.Validate(); err != nil {
		return nil, err
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 10 * time.Minute
	}
	tun := cfg.Tuning
	if tun == (fabric.Tuning{}) {
		tun = soakTuning
		if wl.Ranks >= 96 {
			// O(ranks²) heartbeating connections on a small core count
			// starve individual conns past the lease window in bursts
			// (phase flush storms, GC); one expiry EOF-cascades into mass
			// condemnation. Fewer, more patient heartbeats. Kill detection
			// stays fast — a dead process resets its conns immediately.
			tun.LeaseInterval = time.Second
			tun.LeaseMiss = 30
		}
	}
	groups := cfg.Groups
	if groups == 0 {
		groups = 2
		if wl.Ranks < 4 {
			groups = 1
		}
	}
	evs, err := cfg.Chaos.Schedule(wl)
	if err != nil {
		return nil, err
	}
	spares := 0
	for _, ev := range evs {
		if ev.Kind == EvKill {
			spares++
		}
	}
	perNode := cfg.Chaos.RanksPerNode
	if perNode < 1 {
		perNode = 1
	}
	ring := cfg.RingBytes
	if ring == 0 {
		ring = 64 << 10
	}
	eps, err := buildEndpoints(cfg.Transport, wl.Ranks, spares, perNode, cfg.Dir, ring)
	if err != nil {
		return nil, err
	}
	defer eps.Close()

	s := &runState{
		cfg: cfg, wl: wl, eps: eps,
		deadline:    time.Now().Add(cfg.Timeout),
		results:     make(chan driveResult, wl.Ranks+2*spares),
		muteDur:     tun.LeaseInterval * time.Duration(tun.LeaseMiss) / 4,
		done:        make(chan struct{}),
		byRank:      map[int]*member{},
		byPhase:     map[int][]*firing{},
		spareNext:   wl.Ranks,
		crisisFlush: obs.HistogramSnapshot{Buckets: map[int]uint64{}},
	}

	// Bootstrap: seed plus wl.Ranks concurrent joins. Rank assignment is
	// first-come, so the endpoint slot a rank landed on is only known
	// afterwards — slotRank translates the chaos schedule's placement
	// slots into live fabric ranks.
	seed, err := fabric.NewSeed(fabric.SeedConfig{
		N: wl.Ranks, WindowWords: wl.WindowWords(), Groups: groups,
		Tuning: tun, Listener: eps.seedLn, Logf: cfg.Logf,
	})
	if err != nil {
		return nil, err
	}
	defer seed.Close()
	seedAddr := strconv.Itoa(wl.Ranks + spares)
	if eps.seedTCP {
		seedAddr = eps.seedLn.Addr().String()
	}
	type joined struct {
		m   *member
		err error
	}
	jch := make(chan joined, wl.Ranks)
	for i := 0; i < wl.Ranks; i++ {
		i := i
		go func() {
			reg := obs.New(0)
			nd, err := fabric.Join(fabric.JoinConfig{
				Join: seedAddr, Addr: eps.eps[i].addr,
				Listener: eps.eps[i].ln, Dialer: eps.eps[i].dialer,
				Obs: reg, Logf: cfg.Logf,
			})
			if err != nil {
				jch <- joined{err: err}
				return
			}
			reg.SetRank(nd.Rank())
			jch <- joined{m: &member{nd: nd, reg: reg, ep: i}}
		}()
	}
	slotRank := make([]int, wl.Ranks)
	for i := 0; i < wl.Ranks; i++ {
		j := <-jch
		if j.err != nil {
			s.closeAll()
			return nil, fmt.Errorf("soak: join: %w", j.err)
		}
		s.byRank[j.m.nd.Rank()] = j.m
		s.regs = append(s.regs, j.m.reg)
		slotRank[j.m.ep] = j.m.nd.Rank()
	}
	seed.Close() // steady state is peer-to-peer; replacements join via survivors

	// Arm the schedule, slots translated to ranks.
	hasNodeKill := false
	killCount := make([]int, wl.Ranks)
	for _, ev := range evs {
		live := Event{Phase: ev.Phase, Kind: ev.Kind, Ranks: make([]int, len(ev.Ranks))}
		for i, slot := range ev.Ranks {
			live.Ranks[i] = slotRank[slot]
		}
		f := &firing{ev: live, claimed: map[int]bool{}, release: make(chan struct{})}
		s.byPhase[ev.Phase] = append(s.byPhase[ev.Phase], f)
		switch ev.Kind {
		case EvNodeKill:
			hasNodeKill = true
		case EvKill:
			killCount[live.Ranks[0]]++
		case EvMute:
			f.global = true // whole fabric rendezvous: mute only when quiescent
		}
		cfg.Logf("soak: armed %v", live)
	}

	start := time.Now()
	outstanding := 0
	for _, m := range s.byRank {
		m := m
		outstanding++
		go s.drive(m, 0)
	}

	var fatal error
	totalOps := 0
	recovered := 0
	for outstanding > 0 {
		select {
		case res := <-s.results:
			outstanding--
			totalOps += res.ops
			switch {
			case res.killedAt >= 0 && res.kind == EvKill:
				if fatal != nil {
					break // the run is already being torn down
				}
				m, rerr := s.replace(res.rank)
				if rerr != nil {
					fatal = fmt.Errorf("soak: replacing rank %d: %w", res.rank, rerr)
					s.closeAll()
					break
				}
				outstanding++
				from := m.nd.Phase()
				go s.drive(m, from)
				s.settle(m, from)
				post := s.snapshotFlush()
				s.addCrisis(post.Delta(res.pre))
				recovered++
			case res.killedAt >= 0:
				// node kill: unsurvivable by design, no replacement;
				// the survivors' failure is the expected outcome
			case res.err != nil:
				if fatal == nil {
					fatal = res.err
					s.closeAll() // unblock everything promptly
				}
			}
		case <-time.After(time.Until(s.deadline)):
			if fatal == nil {
				fatal = fmt.Errorf("%w after %v", errTimeout, cfg.Timeout)
			}
			s.closeAll()
		}
	}
	wall := time.Since(start).Seconds()

	if fatal != nil {
		if hasNodeKill && !errors.Is(fatal, errTimeout) {
			return nil, fmt.Errorf("soak: catastrophic correlated failure (as scheduled): %w", fatal)
		}
		return nil, fatal
	}

	// Verification: converged membership with the expected incarnations,
	// then window-for-window bit-identity against the in-process oracle.
	if err := s.verifyMembership(killCount); err != nil {
		s.closeAll()
		return nil, err
	}
	oracle, err := wl.Oracle()
	if err != nil {
		s.closeAll()
		return nil, fmt.Errorf("soak: oracle: %w", err)
	}
	words := wl.WindowWords()
	for r := 0; r < wl.Ranks; r++ {
		got := s.byRank[r].nd.ReadAt(0, words)
		for i := range got {
			if got[i] != oracle[r][i] {
				s.closeAll()
				return nil, fmt.Errorf("soak: rank %d word %d: fabric %#x, oracle %#x", r, i, got[i], oracle[r][i])
			}
		}
	}

	// Report from the final registries (dead incarnations included:
	// counts are cumulative across the whole run).
	chaos := ChaosSection{Recoveries: recovered}
	for _, ev := range evs {
		chaos.Events = append(chaos.Events, ev.String())
		switch ev.Kind {
		case EvKill:
			chaos.Kills++
		case EvNodeKill:
			chaos.NodeKills++
		case EvMute:
			chaos.Mutes++
		}
	}
	s.mu.Lock()
	snaps := make([]obs.Snapshot, len(s.regs))
	for i, reg := range s.regs {
		snaps[i] = reg.Snapshot()
	}
	crisisFlush := s.crisisFlush
	s.mu.Unlock()
	rep := buildReport(cfg.Transport, wl, cfg.Chaos.Seed, wall, uint64(totalOps), snaps, crisisFlush, chaos)
	s.closeAll()
	return &rep, nil
}

var errTimeout = errors.New("soak: timed out")

// drive runs phases [from, Phases) on one member, executing any chaos
// events scheduled for its rank at each phase top (think time), and
// reports exactly one result.
func (s *runState) drive(m *member, from int) {
	res := driveResult{rank: m.nd.Rank(), killedAt: -1}
	for p := from; p < s.wl.Phases; p++ {
		if f := s.claim(p, m.nd.Rank()); f != nil {
			switch f.ev.Kind {
			case EvKill, EvNodeKill:
				res.pre = s.snapshotFlush()
				s.awaitKillBarrier(f)
				m.nd.Close()
				res.killedAt, res.kind = p, f.ev.Kind
				s.results <- res
				return
			case EvMute:
				s.muteBarrier(f)
			}
		}
		if s.wl.PhaseDelay > 0 {
			time.Sleep(s.wl.PhaseDelay)
		}
		n, err := s.wl.RunPhase(m.nd, p)
		res.ops += n
		if err != nil {
			// A readback mismatch on a failed node is a symptom, not the
			// cause: surface the node's terminal error when there is one.
			if serr := m.nd.Sync(); serr != nil {
				err = serr
			}
			res.err = err
			s.results <- res
			return
		}
		if err := m.nd.Sync(); err != nil {
			res.err = err
			s.results <- res
			return
		}
	}
	s.results <- res
}

// claim returns the unconsumed firing for (phase, rank), if any. Global
// firings (mute barriers) match every rank.
func (s *runState) claim(phase, rank int) *firing {
	s.mu.Lock()
	fs := s.byPhase[phase]
	s.mu.Unlock()
	for _, f := range fs {
		involved := f.global
		for _, r := range f.ev.Ranks {
			if r == rank {
				involved = true
				break
			}
		}
		if !involved {
			continue
		}
		f.mu.Lock()
		had := f.claimed[rank]
		f.claimed[rank] = true
		f.mu.Unlock()
		if had {
			return nil
		}
		return f
	}
	return nil
}

// awaitKillBarrier makes correlated victims die together: every rank of
// a node-kill event arrives at its phase top, then all close at once.
func (s *runState) awaitKillBarrier(f *firing) {
	f.mu.Lock()
	f.arrived++
	if f.arrived == len(f.ev.Ranks) {
		close(f.release)
	}
	f.mu.Unlock()
	select {
	case <-f.release:
	case <-s.done:
	}
}

// muteBarrier rendezvouses the whole fabric at the mute event's phase
// top — everyone between Sync and the next phase, so no workload call is
// in flight — then the last arriver blackholes the victim's links both
// ways for a quarter of the lease window and restores them before
// releasing the fabric. The membership must ride the silence out without
// condemning anybody (verifyMembership checks afterwards).
func (s *runState) muteBarrier(f *firing) {
	f.mu.Lock()
	f.arrived++
	last := f.arrived == s.wl.Ranks
	f.mu.Unlock()
	if last {
		s.muteQuiesced(f.ev.Ranks[0])
		close(f.release)
		return
	}
	select {
	case <-f.release:
	case <-s.done:
	}
}

// muteQuiesced runs one both-ways mute window against rank. The caller
// guarantees the fabric is quiescent (only heartbeats and gossip flow,
// both fire-and-forget, so a destroyed frame strands nobody).
func (s *runState) muteQuiesced(rank int) {
	type edge struct {
		d    *flaky.Dialer
		addr string
	}
	var edges []edge
	s.mu.Lock()
	victim := s.byRank[rank]
	if victim == nil || s.closed {
		s.mu.Unlock()
		return
	}
	vAddr := victim.nd.Addr()
	vd := s.eps.eps[victim.ep].dialer
	for r, m := range s.byRank {
		if r == rank {
			continue
		}
		edges = append(edges,
			edge{s.eps.eps[m.ep].dialer, vAddr},
			edge{vd, m.nd.Addr()})
	}
	s.mu.Unlock()
	s.cfg.Logf("soak: muting rank %d both ways for %v", rank, s.muteDur)
	for _, e := range edges {
		e.d.Mute(e.addr)
	}
	time.Sleep(s.muteDur)
	for _, e := range edges {
		e.d.Unmute(e.addr)
	}
}

// replace waits for the kill to be detected, then joins a replacement
// for the victim's rank through a survivor, on the next spare endpoint.
func (s *runState) replace(rank int) (*member, error) {
	s.mu.Lock()
	var through *member
	for r := 0; r < s.wl.Ranks; r++ {
		if r != rank && s.byRank[r] != nil {
			through = s.byRank[r]
			break
		}
	}
	ep := s.spareNext
	s.spareNext++
	s.mu.Unlock()
	if through == nil {
		return nil, errors.New("no survivor to join through")
	}
	if err := s.awaitCondemned(through.nd, rank); err != nil {
		return nil, err
	}
	// A replacement host retries until the crisis hands it a world: the
	// fabric's own join patience (60s per attempt) can expire while a big
	// fabric's recovery is still grinding through its survivors.
	reg := obs.New(0)
	var nd *fabric.Node
	var err error
	for {
		nd, err = fabric.Join(fabric.JoinConfig{
			Join: through.nd.Addr(), Addr: s.eps.eps[ep].addr,
			Listener: s.eps.eps[ep].ln, Dialer: s.eps.eps[ep].dialer,
			Obs: reg, Logf: s.cfg.Logf,
		})
		if err == nil {
			break
		}
		if time.Now().After(s.deadline) {
			return nil, err
		}
		s.cfg.Logf("soak: replacement join for rank %d retrying: %v", rank, err)
	}
	if nd.Rank() != rank {
		nd.Close()
		return nil, fmt.Errorf("replacement took rank %d, want %d", nd.Rank(), rank)
	}
	reg.SetRank(rank)
	m := &member{nd: nd, reg: reg, ep: ep}
	s.mu.Lock()
	s.byRank[rank] = m
	s.regs = append(s.regs, reg)
	s.mu.Unlock()
	s.cfg.Logf("soak: rank %d replaced (inc %d), resuming at phase %d", rank, nd.Self().Incarnation, nd.Phase())
	return m, nil
}

// awaitCondemned polls observer's membership until rank is marked dead.
func (s *runState) awaitCondemned(observer *fabric.Node, rank int) error {
	for {
		for _, m := range observer.Members() {
			if m.Rank == rank && !m.Alive {
				return nil
			}
		}
		if time.Now().After(s.deadline) {
			return fmt.Errorf("%w awaiting condemnation of rank %d", errTimeout, rank)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// settle waits until the replacement commits its first resumed phase —
// the survivors' barrier is released, closing the crisis window.
func (s *runState) settle(m *member, from int) {
	for m.nd.Self().Watermark <= from && !time.Now().After(s.deadline) {
		time.Sleep(2 * time.Millisecond)
	}
}

func (s *runState) snapshotFlush() obs.HistogramSnapshot {
	s.mu.Lock()
	snaps := make([]obs.Snapshot, len(s.regs))
	for i, reg := range s.regs {
		snaps[i] = reg.Snapshot()
	}
	s.mu.Unlock()
	return mergeHist(snaps, "fabric.flush.us")
}

func (s *runState) addCrisis(delta obs.HistogramSnapshot) {
	s.mu.Lock()
	s.crisisFlush.Count += delta.Count
	s.crisisFlush.Sum += delta.Sum
	for k, v := range delta.Buckets {
		s.crisisFlush.Buckets[k] += v
	}
	s.mu.Unlock()
}

func (s *runState) closeAll() {
	s.mu.Lock()
	first := !s.closed
	s.closed = true
	ms := make([]*member, 0, len(s.byRank))
	for _, m := range s.byRank {
		ms = append(ms, m)
	}
	s.mu.Unlock()
	if first {
		close(s.done)
	}
	for _, m := range ms {
		m.nd.Close()
	}
}

// verifyMembership demands every live node hold the same converged view:
// all ranks alive, each at exactly the incarnation its kill history
// implies — and in particular no live rank condemned by a transient mute.
func (s *runState) verifyMembership(killCount []int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for r, m := range s.byRank {
		for _, mb := range m.nd.Members() {
			if !mb.Alive {
				return fmt.Errorf("soak: rank %d still sees rank %d dead after the run", r, mb.Rank)
			}
			if mb.Incarnation != killCount[mb.Rank] {
				return fmt.Errorf("soak: rank %d sees rank %d at incarnation %d, want %d (one per kill)",
					r, mb.Rank, mb.Incarnation, killCount[mb.Rank])
			}
		}
	}
	return nil
}
