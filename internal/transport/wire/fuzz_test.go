package wire

import (
	"bytes"
	"testing"
)

// FuzzDecAdversarial drives every Dec reader over arbitrary bytes. The
// decoder's contract under garbage is: poison, never panic, never spin —
// and the alignment bookkeeping must keep offsets consistent however the
// input is shaped. `go test` runs the seed corpus, so these adversarial
// shapes are part of the ordinary suite.
func FuzzDecAdversarial(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x05})                               // word count with no words
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x1F}) // uvarint ~2^37: past the int cap
	f.Add(bytes.Repeat([]byte{0x80}, 11))             // non-terminating uvarint
	var e Enc
	mixedPayload(&e)
	f.Add(e.Bytes())
	f.Add(append(e.Bytes(), 0xAB)) // trailing garbage

	f.Fuzz(func(t *testing.T, b []byte) {
		scratch := make([]uint64, 16)
		// Walk the payload with a rotation of readers; the input's own
		// bytes pick the order, so the corpus explores interleavings.
		d := NewDec(b)
		for i := 0; !d.Failed() && d.Rem() > 0 && i < len(b)+8; i++ {
			switch i % 7 {
			case 0:
				d.B()
			case 1:
				d.U()
			case 2:
				d.I()
			case 3:
				d.W64()
			case 4:
				d.Str()
			case 5:
				d.WordsView(scratch)
			case 6:
				d.SkipWords()
			}
		}
		// A poisoned decoder must stay poisoned and keep returning zeros.
		if d.Failed() {
			if got := d.Words(); got != nil {
				t.Fatalf("poisoned Words = %v", got)
			}
			if d.Rem() != 0 {
				t.Fatalf("poisoned Rem = %d", d.Rem())
			}
		}
	})
}

// FuzzWordsRoundTrip pins Enc.Words/Dec.Words (and the Vec gather
// production) as exact inverses at every payload offset.
func FuzzWordsRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint64(0))
	f.Add(uint8(3), uint8(7), uint64(0x0123456789abcdef))
	f.Add(uint8(64), uint8(1), ^uint64(0))

	f.Fuzz(func(t *testing.T, count, prefix uint8, seed uint64) {
		w := make([]uint64, int(count))
		for i := range w {
			w[i] = seed + uint64(i)*0x9e3779b97f4a7c15
		}
		var e Enc
		v := NewVec()
		for i := 0; i < int(prefix); i++ {
			e.B(byte(i))
			v.B(byte(i))
		}
		e.Words(w)
		v.Words(w)
		if flat := v.appendTo(nil); !bytes.Equal(flat, e.Bytes()) {
			t.Fatalf("Vec production diverges from Enc:\n vec %x\n enc %x", flat, e.Bytes())
		}
		v.Release()

		d := NewDec(e.Bytes())
		for i := 0; i < int(prefix); i++ {
			if got := d.B(); got != byte(i) {
				t.Fatalf("prefix byte %d = %#x", i, got)
			}
		}
		got := d.Words()
		if d.Failed() || len(got) != len(w) {
			t.Fatalf("decode failed=%v len=%d want %d", d.Failed(), len(got), len(w))
		}
		for i := range w {
			if got[i] != w[i] {
				t.Fatalf("word %d = %#x, want %#x", i, got[i], w[i])
			}
		}
		if d.Rem() != 0 {
			t.Fatalf("Rem = %d", d.Rem())
		}
	})
}
