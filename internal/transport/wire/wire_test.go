package wire

import (
	"bytes"
	"math"
	"net"
	"testing"
	"time"
	"unsafe"
)

// mixedPayload writes one of every primitive at awkward offsets so the
// word-vector alignment padding is actually exercised.
func mixedPayload(e *Enc) {
	e.B(0x7)
	e.U(300)
	e.I(42)
	e.Str("hello")
	e.Words([]uint64{1, 2, 3})
	e.F(3.5)
	e.W64(0xdeadbeef)
	e.B(9) // odd offset before the next vector
	e.Words([]uint64{^uint64(0)})
	e.Words(nil)
}

func decodeMixed(t *testing.T, d *Dec) {
	t.Helper()
	if got := d.B(); got != 0x7 {
		t.Fatalf("B = %#x", got)
	}
	if got := d.U(); got != 300 {
		t.Fatalf("U = %d", got)
	}
	if got := d.I(); got != 42 {
		t.Fatalf("I = %d", got)
	}
	if got := d.Str(); got != "hello" {
		t.Fatalf("Str = %q", got)
	}
	if got := d.Words(); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("Words = %v", got)
	}
	if got := d.F(); got != 3.5 {
		t.Fatalf("F = %v", got)
	}
	if got := d.W64(); got != 0xdeadbeef {
		t.Fatalf("W64 = %#x", got)
	}
	if got := d.B(); got != 9 {
		t.Fatalf("B = %d", got)
	}
	if got := d.Words(); len(got) != 1 || got[0] != ^uint64(0) {
		t.Fatalf("Words = %v", got)
	}
	if got := d.Words(); len(got) != 0 {
		t.Fatalf("empty Words = %v", got)
	}
	if d.Failed() {
		t.Fatal("decoder poisoned on valid payload")
	}
	if d.Rem() != 0 {
		t.Fatalf("Rem = %d after full decode", d.Rem())
	}
}

func TestEncDecRoundTrip(t *testing.T) {
	var e Enc
	mixedPayload(&e)
	decodeMixed(t, NewDec(e.Bytes()))
}

// TestVecMatchesEnc pins that the gather builder produces the exact same
// bytes as the staging encoder, both flattened (appendTo, the small-frame
// path) and chunked (buffers, the vectored path).
func TestVecMatchesEnc(t *testing.T) {
	var e Enc
	mixedPayload(&e)
	want := e.Bytes()

	v := NewVec()
	v.B(0x7)
	v.U(300)
	v.I(42)
	v.Str("hello")
	v.Words([]uint64{1, 2, 3})
	v.F(3.5)
	v.W64(0xdeadbeef)
	v.B(9)
	v.Words([]uint64{^uint64(0)})
	v.Words(nil)

	if v.Len() != len(want) {
		t.Fatalf("Vec.Len = %d, want %d", v.Len(), len(want))
	}
	flat := v.appendTo(nil)
	if !bytes.Equal(flat, want) {
		t.Fatalf("appendTo mismatch:\n got %x\nwant %x", flat, want)
	}
	hdr := []byte{0xAA}
	var chunked []byte
	for i, ch := range v.buffers(nil, hdr) {
		if i == 0 {
			if &ch[0] != &hdr[0] {
				t.Fatal("buffers: first chunk is not the frame header")
			}
			continue
		}
		chunked = append(chunked, ch...)
	}
	if !bytes.Equal(chunked, want) {
		t.Fatalf("buffers mismatch:\n got %x\nwant %x", chunked, want)
	}
	v.Release()
}

// TestWordsAlignment pins the wire rule: a word run starts at an 8-byte
// multiple of the payload offset, with zero padding in between.
func TestWordsAlignment(t *testing.T) {
	for pre := 0; pre < 9; pre++ {
		var e Enc
		for i := 0; i < pre; i++ {
			e.B(0xFF)
		}
		e.Words([]uint64{0x0101010101010101})
		b := e.Bytes()
		run := len(b) - 8
		if run&7 != 0 {
			t.Fatalf("prefix %d: word run at offset %d, not 8-aligned", pre, run)
		}
		for i := pre + 1; i < run; i++ { // count byte, then padding
			if b[i] != 0 {
				t.Fatalf("prefix %d: padding byte %d = %#x, want 0", pre, i, b[i])
			}
		}
		d := NewDec(b)
		for i := 0; i < pre; i++ {
			d.B()
		}
		if got := d.Words(); len(got) != 1 || got[0] != 0x0101010101010101 {
			t.Fatalf("prefix %d: decode = %v, failed=%v", pre, got, d.Failed())
		}
	}
}

// TestWordsView pins the zero-copy receive contract: an aligned payload
// yields an alias of the frame bytes; an undersized scratch poisons.
func TestWordsView(t *testing.T) {
	var e Enc
	e.B(1)
	e.Words([]uint64{10, 20, 30})
	payload := e.Bytes()

	d := NewDec(payload)
	d.B()
	scratch := make([]uint64, 8)
	view := d.WordsView(scratch)
	if len(view) != 3 || view[0] != 10 || view[2] != 30 {
		t.Fatalf("view = %v", view)
	}
	if hostLittle && uintptr(unsafe.Pointer(&payload[0]))&7 == 0 {
		// Mutating the payload must show through the view: it aliases.
		payload[len(payload)-8] = 0x63
		if view[2] != 0x63 {
			t.Fatalf("aligned WordsView did not alias the payload: %v", view)
		}
	}

	d = NewDec(payload)
	d.B()
	if got := d.WordsView(make([]uint64, 2)); got != nil || !d.Failed() {
		t.Fatalf("undersized scratch: got %v, failed=%v, want poison", got, d.Failed())
	}
}

func TestWordsIntoPrefixAndSkip(t *testing.T) {
	var e Enc
	e.Words([]uint64{5, 6})
	e.Words([]uint64{7})
	b := e.Bytes()

	d := NewDec(b)
	if n := d.SkipWords(); n != 2 || d.Failed() {
		t.Fatalf("SkipWords = %d, failed=%v", n, d.Failed())
	}
	buf := make([]uint64, 4)
	if n := d.WordsIntoPrefix(buf); n != 1 || buf[0] != 7 {
		t.Fatalf("WordsIntoPrefix = %d, buf=%v", n, buf)
	}

	d = NewDec(b)
	dst := make([]uint64, 2)
	if !d.WordsInto(dst) || dst[0] != 5 || dst[1] != 6 {
		t.Fatalf("WordsInto = %v, failed=%v", dst, d.Failed())
	}
	if d.WordsInto(make([]uint64, 3)) { // length mismatch must poison
		t.Fatal("WordsInto accepted a length mismatch")
	}
}

// TestDecIntBounds is the regression for the unchecked int(uvarint)
// conversion: values at or above 2^32 must poison the decoder rather than
// flow into handlers (where they would wrap negative on 32-bit GOARCH).
func TestDecIntBounds(t *testing.T) {
	var e Enc
	e.U(1 << 32)
	d := NewDec(e.Bytes())
	if got := d.I(); got != 0 || !d.Failed() {
		t.Fatalf("I on 2^32 = %d, failed=%v, want poison", got, d.Failed())
	}

	// Boundary: 2^32-1 passes the protocol cap (on 64-bit hosts).
	if v, ok := intFromWire(1<<32-1, maxWireInt); !ok || v != 1<<32-1 {
		t.Fatalf("intFromWire(2^32-1) = %d, %v", v, ok)
	}
	// Simulated 32-bit platform: MaxInt32 is the platform cap; one past
	// it is exactly the value the old cast wrapped negative.
	if _, ok := intFromWire(uint64(math.MaxInt32)+1, math.MaxInt32); ok {
		t.Fatal("intFromWire accepted a value above the platform cap")
	}
	if v, ok := intFromWire(math.MaxInt32, math.MaxInt32); !ok || v != math.MaxInt32 {
		t.Fatalf("intFromWire(MaxInt32) = %d, %v", v, ok)
	}
}

// TestEncINegativePanics pins the audit outcome: negative ints have no
// wire representation; encoding one is a caller bug, caught loudly.
func TestEncINegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Enc.I(-1) did not panic")
		}
	}()
	var e Enc
	e.I(-1)
}

// TestDecTruncationPoisons walks every reader over short payloads.
func TestDecTruncationPoisons(t *testing.T) {
	var e Enc
	e.Words([]uint64{1, 2, 3, 4})
	full := e.Bytes()
	for cut := 0; cut < len(full); cut++ {
		d := NewDec(full[:cut])
		d.Words()
		if !d.Failed() {
			t.Fatalf("truncation at %d/%d not detected", cut, len(full))
		}
	}
	d := NewDec([]byte{0x05}) // claims 5 words, carries none
	if got := d.Words(); got != nil || !d.Failed() {
		t.Fatalf("oversized count: got %v, failed=%v", got, d.Failed())
	}
	d = NewDec([]byte{0x10}) // string length past the end
	if got := d.Str(); got != "" || !d.Failed() {
		t.Fatalf("oversized string: got %q, failed=%v", got, d.Failed())
	}
}

// TestConnCallVec round-trips small and large frames through the gather
// write path and the pooled read path over an in-memory pipe.
func TestConnCallVec(t *testing.T) {
	cn, sn := net.Pipe()
	const typeEcho = 0x21
	server := New(sn, Config{VecHandler: func(ty byte, payload []byte) (byte, *Vec, error) {
		d := NewDec(payload)
		w := d.Words()
		if d.Failed() {
			t.Error("server: malformed echo payload")
		}
		v := NewVec()
		v.Words(w)
		return ty, v, nil
	}})
	defer server.Close()
	client := New(cn, Config{})
	defer client.Close()

	// Small (flattened) and large (vectored, beyond smallFrame) frames.
	for _, n := range []int{1, 16, smallFrame / 4, smallFrame} {
		w := make([]uint64, n)
		for i := range w {
			w[i] = uint64(i) * 3
		}
		v := NewVec()
		v.Words(w)
		reply, err := client.CallVec(typeEcho, v)
		if err != nil {
			t.Fatalf("n=%d: CallVec: %v", n, err)
		}
		d := NewDec(reply)
		got := d.Words()
		if d.Failed() || len(got) != n {
			t.Fatalf("n=%d: bad echo reply (failed=%v len=%d)", n, d.Failed(), len(got))
		}
		for i := range got {
			if got[i] != uint64(i)*3 {
				t.Fatalf("n=%d: word %d = %d", n, i, got[i])
			}
		}
		Recycle(reply)
	}
}

// TestConnVecHandlerError maps a handler error onto a RemoteFail at the
// caller.
func TestConnVecHandlerError(t *testing.T) {
	cn, sn := net.Pipe()
	server := New(sn, Config{VecHandler: func(byte, []byte) (byte, *Vec, error) {
		return 0, nil, RemoteFail{Code: CodeGeneric, Msg: "nope"}
	}})
	defer server.Close()
	client := New(cn, Config{})
	defer client.Close()

	_, err := client.Call(0x21, []byte{1})
	rf, ok := err.(RemoteFail)
	if !ok || rf.Msg != "nope" {
		t.Fatalf("err = %v, want RemoteFail{nope}", err)
	}
}

// TestConnDownFreesVec pins that a CallVec against a dead conn still
// releases the Vec (its OnRelease must run so pooled scratch returns).
func TestConnDownFreesVec(t *testing.T) {
	cn, sn := net.Pipe()
	client := New(cn, Config{})
	client.Close()
	sn.Close()

	released := make(chan struct{})
	v := NewVec()
	v.W64(1)
	v.OnRelease(func() { close(released) })
	if _, err := client.CallVec(0x21, v); err == nil {
		t.Fatal("CallVec on a closed conn succeeded")
	}
	select {
	case <-released:
	case <-time.After(2 * time.Second):
		t.Fatal("Vec not released after failed CallVec")
	}
}

// TestNearMissDetection pins the lease near-miss accounting: frames that
// arrive after ReadTimeout-Heartbeat of silence count as near misses
// (without taking the connection down), punctual frames do not.
func TestNearMissDetection(t *testing.T) {
	cn, sn := net.Pipe()
	var gaps []time.Duration
	gapc := make(chan time.Duration, 16)
	receiver := New(sn, Config{
		Heartbeat:   150 * time.Millisecond,
		ReadTimeout: 600 * time.Millisecond, // near-miss threshold: 450ms
		OnDown:      func(err error) { t.Logf("receiver down: %v", err) },
		OnNearMiss:  func(gap time.Duration) { gapc <- gap },
	})
	defer receiver.Close()
	sender := New(cn, Config{}) // no auto-heartbeat: the test times every frame
	defer sender.Close()

	// Punctual traffic: well inside the window, no near misses.
	for i := 0; i < 3; i++ {
		time.Sleep(50 * time.Millisecond)
		if err := sender.Notify(TypeHeartbeat, nil); err != nil {
			t.Fatalf("punctual notify %d: %v", i, err)
		}
	}
	if n := receiver.NearMisses(); n != 0 {
		t.Fatalf("punctual frames produced %d near misses", n)
	}

	// Tardy traffic: inside the last slice of the window, but inside it —
	// the connection must survive with the near misses counted.
	for i := 0; i < 2; i++ {
		time.Sleep(500 * time.Millisecond)
		if err := sender.Notify(TypeHeartbeat, nil); err != nil {
			t.Fatalf("tardy notify %d: %v (lease expired?)", i, err)
		}
	}
	deadline := time.After(2 * time.Second)
	for len(gaps) < 2 {
		select {
		case g := <-gapc:
			gaps = append(gaps, g)
		case <-deadline:
			t.Fatalf("saw %d near misses, want 2 (counter=%d)", len(gaps), receiver.NearMisses())
		}
	}
	for _, g := range gaps {
		if g < 450*time.Millisecond {
			t.Fatalf("near-miss gap %v below threshold", g)
		}
	}
	if n := receiver.NearMisses(); n < 2 {
		t.Fatalf("NearMisses = %d, want >= 2", n)
	}
	// The tardy frames arrived before lease expiry: still up.
	if err := sender.Notify(TypeHeartbeat, nil); err != nil {
		t.Fatalf("connection died despite frames inside the lease: %v", err)
	}
}
