// Package wire is the framing layer of the tcp transport and the cluster
// runtime: length-prefixed binary frames over a net.Conn, matched
// request/response calls, background dispatch of incoming requests, and
// heartbeat-based liveness.
//
// Frame layout:
//
//	uint32  length (big endian, of everything after itself)
//	uint8   type   (high bit set = reply; 0xFF = error reply; 0x01 = heartbeat)
//	uint32  id     (big endian; matches replies to calls, 0 = notification)
//	payload
//
// Payloads are encoded with Enc/Dec: uvarints for counts and offsets,
// fixed little-endian 64-bit for window words (word-aligned, so a batch
// decode is one pass over the byte slice), IEEE bits for the virtual-time
// floats of the lock protocol.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Reserved frame types. User protocols must use types >= 0x10 with the
// high bit clear.
const (
	TypeHeartbeat byte = 0x01
	typeErr       byte = 0xFF
	replyBit      byte = 0x80
)

// MaxFrame bounds a frame's encoded size; a peer announcing more is
// corrupt (or hostile) and the connection is dropped.
const MaxFrame = 64 << 20

// RemoteFail is an error reply decoded from the wire. Code distinguishes
// protocol-level failure classes (the tcp transport maps CodePeerDead to
// transport.PeerDeadError); Msg travels verbatim.
type RemoteFail struct {
	Code byte
	Rank int
	Msg  string
}

// Error codes of RemoteFail.
const (
	CodeGeneric  byte = 0
	CodePeerDead byte = 1
	CodeCrisis   byte = 2 // cluster: a recovery is pending, retry after Await
)

func (e RemoteFail) Error() string {
	return fmt.Sprintf("wire: remote failure (code %d, rank %d): %s", e.Code, e.Rank, e.Msg)
}

// ErrDown reports a connection that died (closed, reset, or heartbeat
// timeout); the underlying cause is wrapped.
var ErrDown = errors.New("wire: connection down")

// Handler serves one incoming request frame and returns the reply type and
// payload, or an error (sent as an error reply). Handlers run on their own
// goroutine per frame, so a handler may block (structure locks, barriers)
// without stalling the connection.
type Handler func(t byte, payload []byte) (byte, []byte, error)

// Config tunes a Conn.
type Config struct {
	// Handler serves incoming requests; nil rejects them.
	Handler Handler
	// Heartbeat is the interval of outgoing heartbeat frames; 0 disables.
	Heartbeat time.Duration
	// ReadTimeout is the rolling per-frame read deadline — the failure
	// detector's patience. 0 disables. It must comfortably exceed the
	// peer's heartbeat interval.
	ReadTimeout time.Duration
	// OnDown is called exactly once when the connection dies, with the
	// cause. It runs on the reader goroutine; it must not block.
	OnDown func(error)
}

// Conn is a framed, multiplexed connection.
type Conn struct {
	nc  net.Conn
	cfg Config

	wmu    sync.Mutex
	nextID atomic.Uint32

	pmu     sync.Mutex
	pending map[uint32]chan frame
	downErr error // set under pmu once down

	downOnce sync.Once
	sent     atomic.Uint64
	received atomic.Uint64
}

type frame struct {
	t       byte
	id      uint32
	payload []byte
}

// New wraps nc and starts the reader (and heartbeat sender, if configured).
func New(nc net.Conn, cfg Config) *Conn {
	c := &Conn{nc: nc, cfg: cfg, pending: make(map[uint32]chan frame)}
	go c.readLoop()
	if cfg.Heartbeat > 0 {
		go c.heartbeatLoop()
	}
	return c
}

// Sent returns the number of data frames written (requests, replies, and
// notifications; heartbeats excluded). The frame-count assertions of the
// conformance suite read it.
func (c *Conn) Sent() uint64 { return c.sent.Load() }

// Received returns the number of frames read.
func (c *Conn) Received() uint64 { return c.received.Load() }

// Close tears the connection down.
func (c *Conn) Close() error {
	c.markDown(ErrDown)
	return nil
}

func (c *Conn) markDown(err error) {
	c.downOnce.Do(func() {
		c.pmu.Lock()
		c.downErr = err
		waiters := c.pending
		c.pending = nil
		c.pmu.Unlock()
		c.nc.Close()
		for _, ch := range waiters {
			close(ch)
		}
		if c.cfg.OnDown != nil {
			c.cfg.OnDown(err)
		}
	})
}

// ErrFrameTooLarge reports a payload exceeding MaxFrame. The connection
// stays up — the frame was never sent — so the caller can surface a
// diagnostic instead of the receiver dropping the link as corrupt.
var ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")

func (c *Conn) writeFrame(t byte, id uint32, payload []byte) error {
	if len(payload)+5 > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	buf := make([]byte, 9+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(5+len(payload)))
	buf[4] = t
	binary.BigEndian.PutUint32(buf[5:], id)
	copy(buf[9:], payload)
	c.wmu.Lock()
	_, err := c.nc.Write(buf)
	c.wmu.Unlock()
	if err != nil {
		c.markDown(fmt.Errorf("%w: write: %v", ErrDown, err))
		return c.down()
	}
	if t != TypeHeartbeat {
		c.sent.Add(1)
	}
	return nil
}

func (c *Conn) down() error {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	if c.downErr != nil {
		return c.downErr
	}
	return ErrDown
}

// Call sends a request and blocks for its reply payload. A RemoteFail from
// the peer is returned as the error; a dead connection returns ErrDown
// (wrapped).
func (c *Conn) Call(t byte, payload []byte) ([]byte, error) {
	id := c.nextID.Add(1)
	if id == 0 {
		id = c.nextID.Add(1)
	}
	ch := make(chan frame, 1)
	c.pmu.Lock()
	if c.downErr != nil {
		err := c.downErr
		c.pmu.Unlock()
		return nil, err
	}
	c.pending[id] = ch
	c.pmu.Unlock()

	if err := c.writeFrame(t, id, payload); err != nil {
		c.pmu.Lock()
		if c.pending != nil {
			delete(c.pending, id)
		}
		c.pmu.Unlock()
		return nil, err
	}
	f, ok := <-ch
	if !ok {
		return nil, c.down()
	}
	if f.t == typeErr {
		return nil, decodeFail(f.payload)
	}
	return f.payload, nil
}

// Notify sends a fire-and-forget frame (id 0, no reply expected).
func (c *Conn) Notify(t byte, payload []byte) error {
	return c.writeFrame(t, 0, payload)
}

func (c *Conn) heartbeatLoop() {
	tick := time.NewTicker(c.cfg.Heartbeat)
	defer tick.Stop()
	for range tick.C {
		if c.Notify(TypeHeartbeat, nil) != nil {
			return
		}
	}
}

func (c *Conn) readLoop() {
	hdr := make([]byte, 4)
	for {
		if c.cfg.ReadTimeout > 0 {
			c.nc.SetReadDeadline(time.Now().Add(c.cfg.ReadTimeout))
		}
		if err := readFull(c.nc, hdr); err != nil {
			c.markDown(fmt.Errorf("%w: read: %v", ErrDown, err))
			return
		}
		n := binary.BigEndian.Uint32(hdr)
		if n < 5 || n > MaxFrame {
			c.markDown(fmt.Errorf("%w: bad frame length %d", ErrDown, n))
			return
		}
		body := make([]byte, n)
		if err := readFull(c.nc, body); err != nil {
			c.markDown(fmt.Errorf("%w: read: %v", ErrDown, err))
			return
		}
		c.received.Add(1)
		f := frame{t: body[0], id: binary.BigEndian.Uint32(body[1:5]), payload: body[5:]}
		switch {
		case f.t == TypeHeartbeat:
			// Liveness only; the read itself reset the deadline.
		case f.t&replyBit != 0 || f.t == typeErr:
			c.pmu.Lock()
			ch := c.pending[f.id]
			delete(c.pending, f.id)
			c.pmu.Unlock()
			if ch != nil {
				ch <- f
			}
		default:
			go c.serve(f)
		}
	}
}

func (c *Conn) serve(f frame) {
	if c.cfg.Handler == nil {
		if f.id != 0 {
			c.writeFrame(typeErr, f.id, encodeFail(RemoteFail{Code: CodeGeneric, Msg: "no handler"}))
		}
		return
	}
	rt, payload, err := func() (rt byte, payload []byte, err error) {
		defer func() {
			if e := recover(); e != nil {
				err = RemoteFail{Code: CodeGeneric, Msg: fmt.Sprint(e)}
			}
		}()
		return c.cfg.Handler(f.t, f.payload)
	}()
	if f.id == 0 {
		return // notification: nothing to reply to
	}
	if err != nil {
		var rf RemoteFail
		if !errors.As(err, &rf) {
			rf = RemoteFail{Code: CodeGeneric, Msg: err.Error()}
		}
		c.writeFrame(typeErr, f.id, encodeFail(rf))
		return
	}
	c.writeFrame(rt|replyBit, f.id, payload)
}

func readFull(nc net.Conn, buf []byte) error {
	_, err := io.ReadFull(nc, buf)
	return err
}

func encodeFail(f RemoteFail) []byte {
	var e Enc
	e.B(f.Code)
	e.I(f.Rank)
	e.Str(f.Msg)
	return e.Bytes()
}

func decodeFail(b []byte) error {
	d := NewDec(b)
	f := RemoteFail{Code: d.B(), Rank: d.I(), Msg: d.Str()}
	if d.Failed() {
		return RemoteFail{Code: CodeGeneric, Msg: "undecodable error reply"}
	}
	return f
}

// ---- Payload encoding -------------------------------------------------------

// Enc builds a payload: uvarints, raw bytes, 64-bit words, floats, strings.
type Enc struct{ b []byte }

// B appends one byte.
func (e *Enc) B(v byte) { e.b = append(e.b, v) }

// U appends a uvarint.
func (e *Enc) U(v uint64) { e.b = binary.AppendUvarint(e.b, v) }

// I appends a non-negative int as a uvarint.
func (e *Enc) I(v int) { e.U(uint64(v)) }

// F appends a float64 as its IEEE bits.
func (e *Enc) F(v float64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v))
}

// W64 appends one word, fixed width.
func (e *Enc) W64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }

// Words appends a length-prefixed word vector, fixed 8 bytes per word so
// the decode side can alias or bulk-copy word-aligned runs.
func (e *Enc) Words(w []uint64) {
	e.I(len(w))
	for _, v := range w {
		e.W64(v)
	}
}

// Str appends a length-prefixed string.
func (e *Enc) Str(s string) {
	e.I(len(s))
	e.b = append(e.b, s...)
}

// Bytes returns the encoded payload.
func (e *Enc) Bytes() []byte { return e.b }

// Dec consumes a payload. A malformed payload poisons the decoder (Failed
// reports it) instead of panicking; zero values are returned after poison.
type Dec struct {
	b    []byte
	fail bool
}

// NewDec wraps a payload.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// Failed reports whether any read ran off the payload.
func (d *Dec) Failed() bool { return d.fail }

func (d *Dec) poison() {
	d.fail = true
	d.b = nil
}

// B reads one byte.
func (d *Dec) B() byte {
	if len(d.b) < 1 {
		d.poison()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

// U reads a uvarint.
func (d *Dec) U() uint64 {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.poison()
		return 0
	}
	d.b = d.b[n:]
	return v
}

// I reads a uvarint as an int, rejecting values no legitimate count,
// offset, or length of this protocol can reach (they would otherwise
// wrap negative or drive pathological allocations in handlers).
func (d *Dec) I() int {
	v := d.U()
	if v >= 1<<32 {
		d.poison()
		return 0
	}
	return int(v)
}

// F reads a float64.
func (d *Dec) F() float64 { return math.Float64frombits(d.W64()) }

// W64 reads one fixed-width word.
func (d *Dec) W64() uint64 {
	if len(d.b) < 8 {
		d.poison()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

// Words reads a length-prefixed word vector into a fresh slice.
func (d *Dec) Words() []uint64 {
	n := d.I()
	if d.fail || n > len(d.b)/8 {
		d.poison()
		return nil
	}
	out := make([]uint64, n)
	d.wordsInto(out)
	return out
}

// WordsInto reads a length-prefixed word vector into dst; the vector's
// length must equal len(dst). This is the zero-allocation decode path the
// tcp server uses to move put payloads and get replies straight into
// window-destined buffers.
func (d *Dec) WordsInto(dst []uint64) bool {
	n := d.I()
	if d.fail || n != len(dst) || n > len(d.b)/8 {
		d.poison()
		return false
	}
	d.wordsInto(dst)
	return !d.fail
}

func (d *Dec) wordsInto(dst []uint64) {
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint64(d.b[8*i:])
	}
	d.b = d.b[8*len(dst):]
}

// WordsIntoPrefix reads a length-prefixed word vector into the front of
// dst and returns its length (which must fit dst). Batch decoders carve
// consecutive vectors out of one shared backing buffer with it.
func (d *Dec) WordsIntoPrefix(dst []uint64) int {
	n := d.I()
	if d.fail || n > len(dst) || n > len(d.b)/8 {
		d.poison()
		return 0
	}
	d.wordsInto(dst[:n])
	return n
}

// SkipWords advances past a length-prefixed word vector without decoding
// it, returning its length. Two-pass decoders use it to size one shared
// backing buffer before converting payloads.
func (d *Dec) SkipWords() int {
	n := d.I()
	if d.fail || n > len(d.b)/8 {
		d.poison()
		return 0
	}
	d.b = d.b[8*n:]
	return n
}

// Str reads a length-prefixed string.
func (d *Dec) Str() string {
	n := d.I()
	if d.fail || n > len(d.b) {
		d.poison()
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}
