// Package wire is the framing layer of the tcp transport and the cluster
// runtime: length-prefixed binary frames over a net.Conn, matched
// request/response calls, background dispatch of incoming requests, and
// heartbeat-based liveness.
//
// Frame layout:
//
//	uint32  length (big endian, of everything after itself)
//	uint8   type   (high bit set = reply; 0xFF = error reply; 0x01 = heartbeat)
//	uint32  id     (big endian; matches replies to calls, 0 = notification)
//	payload
//
// Payloads are encoded with Enc/Dec: uvarints for counts and offsets,
// fixed little-endian 64-bit for window words, IEEE bits for the virtual-
// time floats of the lock protocol. Word vectors (Words and friends) are
// 8-byte aligned relative to the payload start: after the uvarint count,
// zero padding advances the stream to the next multiple of 8, so a
// receiver that places the payload on an aligned boundary can hand out
// zero-copy []uint64 views of put payloads (WordsView) instead of
// decoding word by word. docs/WIRE.md is the normative spec.
//
// # Zero-copy paths
//
// The flush hot path avoids staging copies in both directions:
//
//   - Send: a Vec assembles a frame from encoded header bytes interleaved
//     with externally owned word slices; writeFrameVec writes it with one
//     vectored write (net.Buffers/writev on TCP), so put payloads travel
//     from the caller's buffers to the socket without an intermediate
//     copy. Small frames flatten into a pooled staging buffer instead —
//     one syscall, no per-frame allocation.
//   - Receive: request frame bodies come from a pool, are handed to the
//     handler, and are recycled when it returns — the handler must not
//     retain the payload (every decoder in this repo copies what it
//     keeps). Word vectors can be viewed in place via Dec.WordsView.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// Reserved frame types. User protocols must use types >= 0x10 with the
// high bit clear.
const (
	TypeHeartbeat byte = 0x01
	typeErr       byte = 0xFF
	replyBit      byte = 0x80
)

// MaxFrame bounds a frame's encoded size; a peer announcing more is
// corrupt (or hostile) and the connection is dropped.
const MaxFrame = 64 << 20

// hostLittle reports whether this machine stores words little-endian —
// i.e. whether a []uint64 viewed as bytes IS the wire representation of
// its words. On the (rare) big-endian hosts every bulk word path falls
// back to per-word conversion.
var hostLittle = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// wordBytes views a word slice as its little-endian wire bytes without
// copying. Only valid when hostLittle; callers must check.
func wordBytes(w []uint64) []byte {
	if len(w) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&w[0])), 8*len(w))
}

// RemoteFail is an error reply decoded from the wire. Code distinguishes
// protocol-level failure classes (the tcp transport maps CodePeerDead to
// transport.PeerDeadError); Msg travels verbatim.
type RemoteFail struct {
	Code byte
	Rank int
	Msg  string
}

// Error codes of RemoteFail.
const (
	CodeGeneric  byte = 0
	CodePeerDead byte = 1
	CodeCrisis   byte = 2 // cluster: a recovery is pending, retry after Await
)

func (e RemoteFail) Error() string {
	return fmt.Sprintf("wire: remote failure (code %d, rank %d): %s", e.Code, e.Rank, e.Msg)
}

// ErrDown reports a connection that died (closed, reset, or heartbeat
// timeout); the underlying cause is wrapped.
var ErrDown = errors.New("wire: connection down")

// Handler serves one incoming request frame and returns the reply type and
// payload, or an error (sent as an error reply). Handlers run on their own
// goroutine per frame, so a handler may block (structure locks, barriers)
// without stalling the connection.
//
// The payload is only valid until the handler returns: request bodies are
// pooled and recycled. A handler that keeps data must copy it (Dec's
// Words/Str already do).
type Handler func(t byte, payload []byte) (byte, []byte, error)

// VecHandler is the zero-copy variant of Handler: it may return a
// vectored reply (a *Vec) whose chunks alias handler-owned memory. The
// connection writes the frame and then releases the Vec — its OnRelease
// hook is where pooled reply scratch goes back to its pool. Returning a
// nil Vec means an empty reply payload. The same payload-lifetime rule as
// Handler applies.
type VecHandler func(t byte, payload []byte) (byte, *Vec, error)

// Config tunes a Conn.
type Config struct {
	// Handler serves incoming requests; nil rejects them (unless
	// VecHandler is set).
	Handler Handler
	// VecHandler, when set, serves incoming requests instead of Handler
	// and may reply with a vectored frame (see VecHandler's doc). The tcp
	// transport uses it so flush get-replies gather straight from the
	// ops' destination buffers.
	VecHandler VecHandler
	// Heartbeat is the interval of outgoing heartbeat frames; 0 disables.
	Heartbeat time.Duration
	// ReadTimeout is the rolling per-frame read deadline — the failure
	// detector's patience. 0 disables. It must comfortably exceed the
	// peer's heartbeat interval.
	ReadTimeout time.Duration
	// OnDown is called exactly once when the connection dies, with the
	// cause. It runs on the reader goroutine; it must not block.
	OnDown func(error)
	// OnNearMiss is called when a frame arrives inside the last slice of
	// the lease window — after ReadTimeout-Heartbeat of silence (the last
	// quarter of ReadTimeout when Heartbeat is unset or no smaller than
	// ReadTimeout). The connection survived, but only just: a scheduler
	// hiccup would have condemned the peer, so chaos runs count these to
	// catch lease tunings that pass by luck. Runs on the reader
	// goroutine; it must not block. NearMisses counts regardless.
	OnNearMiss func(gap time.Duration)
	// BytesOut and BytesIn, when set, receive one Add per data frame with
	// the frame's full on-wire size (header included, heartbeats excluded)
	// so a host with many connections can aggregate bytes-on-wire into one
	// cumulative counter (obs.Counter satisfies ByteSink). The per-Conn
	// BytesSent/BytesReceived accessors count regardless.
	BytesOut, BytesIn ByteSink
}

// ByteSink accumulates on-wire byte counts; obs.Counter satisfies it.
type ByteSink interface{ Add(n uint64) }

// nearMissThreshold resolves the silence gap beyond which a surviving
// frame counts as a lease near miss.
func nearMissThreshold(cfg Config) time.Duration {
	if cfg.ReadTimeout <= 0 {
		return 0
	}
	if cfg.Heartbeat > 0 && cfg.Heartbeat < cfg.ReadTimeout {
		return cfg.ReadTimeout - cfg.Heartbeat
	}
	return cfg.ReadTimeout * 3 / 4
}

// Conn is a framed, multiplexed connection.
type Conn struct {
	nc  net.Conn
	cfg Config

	wmu    sync.Mutex
	wbufs  net.Buffers // scratch chunk list, guarded by wmu
	nextID atomic.Uint32

	pmu     sync.Mutex
	pending map[uint32]chan frame
	downErr error // set under pmu once down

	downOnce  sync.Once
	sent      atomic.Uint64
	received  atomic.Uint64
	sentBytes atomic.Uint64
	recvBytes atomic.Uint64
	nearMiss  atomic.Uint64
}

type frame struct {
	t       byte
	id      uint32
	payload []byte
}

// New wraps nc and starts the reader (and heartbeat sender, if configured).
func New(nc net.Conn, cfg Config) *Conn {
	c := &Conn{nc: nc, cfg: cfg, pending: make(map[uint32]chan frame)}
	go c.readLoop()
	if cfg.Heartbeat > 0 {
		go c.heartbeatLoop()
	}
	return c
}

// Sent returns the number of data frames written (requests, replies, and
// notifications; heartbeats excluded). The frame-count assertions of the
// conformance suite read it.
func (c *Conn) Sent() uint64 { return c.sent.Load() }

// Received returns the number of frames read.
func (c *Conn) Received() uint64 { return c.received.Load() }

// BytesSent returns the on-wire bytes of every data frame written
// (9-byte header included; heartbeats excluded, like Sent).
func (c *Conn) BytesSent() uint64 { return c.sentBytes.Load() }

// BytesReceived returns the on-wire bytes of every data frame read
// (header included, heartbeats excluded).
func (c *Conn) BytesReceived() uint64 { return c.recvBytes.Load() }

// countSent records one outgoing data frame of on-wire size n.
func (c *Conn) countSent(n int) {
	c.sent.Add(1)
	c.sentBytes.Add(uint64(n))
	if c.cfg.BytesOut != nil {
		c.cfg.BytesOut.Add(uint64(n))
	}
}

// NearMisses returns how many frames arrived in the last slice of the
// lease window (see Config.OnNearMiss).
func (c *Conn) NearMisses() uint64 { return c.nearMiss.Load() }

// Close tears the connection down.
func (c *Conn) Close() error {
	c.markDown(ErrDown)
	return nil
}

func (c *Conn) markDown(err error) {
	first := false
	c.downOnce.Do(func() {
		first = true
		c.pmu.Lock()
		c.downErr = err
		waiters := c.pending
		c.pending = nil
		c.pmu.Unlock()
		c.nc.Close()
		for _, ch := range waiters {
			close(ch)
		}
	})
	// OnDown runs outside the Once body: callbacks close other
	// connections (a condemnation drops the peer's conn, whose own
	// OnDown condemns back), and two connections tearing each other
	// down from inside their Once bodies deadlock on the Once mutexes.
	// The first marker still fires the callback exactly once.
	if first && c.cfg.OnDown != nil {
		c.cfg.OnDown(err)
	}
}

// ErrFrameTooLarge reports a payload exceeding MaxFrame. The connection
// stays up — the frame was never sent — so the caller can surface a
// diagnostic instead of the receiver dropping the link as corrupt.
var ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")

// bufPool recycles frame bodies and small-frame staging buffers. Getting
// a too-small buffer allocates a fresh one and drops the small one, so
// the pool's contents converge towards each connection's steady-state
// frame sizes.
var bufPool sync.Pool

func getBuf(n int) []byte {
	if v := bufPool.Get(); v != nil {
		if b := v.([]byte); cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

// Recycle returns a payload obtained from a Call (or a handler) to the
// frame-body pool. Strictly optional — callers that skip it just leave
// the buffer to the GC — and only legal once every value decoded from
// the payload has been copied out: the buffer will be overwritten by a
// future frame.
func Recycle(b []byte) {
	if cap(b) >= 16 {
		bufPool.Put(b[:cap(b)])
	}
}

// smallFrame is the flatten threshold of the vectored write path: frames
// up to this size are assembled in one pooled staging buffer (a single
// Write, no per-frame allocation); larger frames go out as one vectored
// write whose chunks alias the caller's payload slices.
const smallFrame = 2048

func (c *Conn) writeFrame(t byte, id uint32, payload []byte) error {
	if len(payload)+5 > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	buf := getBuf(9 + len(payload))
	binary.BigEndian.PutUint32(buf, uint32(5+len(payload)))
	buf[4] = t
	binary.BigEndian.PutUint32(buf[5:], id)
	copy(buf[9:], payload)
	c.wmu.Lock()
	_, err := c.nc.Write(buf)
	c.wmu.Unlock()
	Recycle(buf)
	if err != nil {
		c.markDown(fmt.Errorf("%w: write: %v", ErrDown, err))
		return c.down()
	}
	if t != TypeHeartbeat {
		c.countSent(9 + len(payload))
	}
	return nil
}

// writeFrameVec writes one frame assembled from v's chunks, then releases
// v (pool return + OnRelease hook), whatever the outcome. A nil v is an
// empty payload.
func (c *Conn) writeFrameVec(t byte, id uint32, v *Vec) error {
	if v == nil {
		return c.writeFrame(t, id, nil)
	}
	defer v.free()
	n := v.Len()
	if n+5 > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	var err error
	if n+9 <= smallFrame {
		// Small frame: flatten into one pooled buffer, one Write.
		buf := getBuf(9 + n)
		binary.BigEndian.PutUint32(buf, uint32(5+n))
		buf[4] = t
		binary.BigEndian.PutUint32(buf[5:], id)
		v.appendTo(buf[9:9])
		c.wmu.Lock()
		_, err = c.nc.Write(buf)
		c.wmu.Unlock()
		Recycle(buf)
	} else {
		var hdr [9]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(5+n))
		hdr[4] = t
		binary.BigEndian.PutUint32(hdr[5:], id)
		c.wmu.Lock()
		// One vectored write: writev on *net.TCPConn, sequential writes on
		// anything else (still one frame — wmu holds across the chunks).
		full := v.buffers(c.wbufs[:0], hdr[:])
		bufs := full
		_, err = bufs.WriteTo(c.nc) // consumes bufs, not full
		for i := range full {
			full[i] = nil // drop chunk refs so the scratch pins nothing
		}
		c.wbufs = full[:0]
		c.wmu.Unlock()
	}
	if err != nil {
		c.markDown(fmt.Errorf("%w: write: %v", ErrDown, err))
		return c.down()
	}
	if t != TypeHeartbeat {
		c.countSent(9 + n)
	}
	return nil
}

func (c *Conn) down() error {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	if c.downErr != nil {
		return c.downErr
	}
	return ErrDown
}

// Call sends a request and blocks for its reply payload. A RemoteFail from
// the peer is returned as the error; a dead connection returns ErrDown
// (wrapped).
func (c *Conn) Call(t byte, payload []byte) ([]byte, error) {
	return c.call(t, payload, nil)
}

// CallVec is Call with a vectored request: the frame is assembled from
// v's chunks without staging the payload slices through a copy (for
// frames above the flatten threshold). v is consumed — the connection
// releases it after the write, whatever the outcome.
func (c *Conn) CallVec(t byte, v *Vec) ([]byte, error) {
	return c.call(t, nil, v)
}

func (c *Conn) call(t byte, payload []byte, v *Vec) ([]byte, error) {
	id := c.nextID.Add(1)
	if id == 0 {
		id = c.nextID.Add(1)
	}
	ch := make(chan frame, 1)
	c.pmu.Lock()
	if c.downErr != nil {
		err := c.downErr
		c.pmu.Unlock()
		if v != nil {
			v.free()
		}
		return nil, err
	}
	c.pending[id] = ch
	c.pmu.Unlock()

	var err error
	if v != nil {
		err = c.writeFrameVec(t, id, v)
	} else {
		err = c.writeFrame(t, id, payload)
	}
	if err != nil {
		c.pmu.Lock()
		if c.pending != nil {
			delete(c.pending, id)
		}
		c.pmu.Unlock()
		return nil, err
	}
	f, ok := <-ch
	if !ok {
		return nil, c.down()
	}
	if f.t == typeErr {
		return nil, decodeFail(f.payload)
	}
	return f.payload, nil
}

// Notify sends a fire-and-forget frame (id 0, no reply expected).
func (c *Conn) Notify(t byte, payload []byte) error {
	return c.writeFrame(t, 0, payload)
}

func (c *Conn) heartbeatLoop() {
	tick := time.NewTicker(c.cfg.Heartbeat)
	defer tick.Stop()
	for range tick.C {
		if c.Notify(TypeHeartbeat, nil) != nil {
			return
		}
	}
}

func (c *Conn) readLoop() {
	hdr := make([]byte, 9)
	nearThresh := nearMissThreshold(c.cfg)
	for {
		var waitStart time.Time
		if c.cfg.ReadTimeout > 0 {
			waitStart = time.Now()
			c.nc.SetReadDeadline(waitStart.Add(c.cfg.ReadTimeout))
		}
		if err := readFull(c.nc, hdr); err != nil {
			c.markDown(fmt.Errorf("%w: read: %v", ErrDown, err))
			return
		}
		if nearThresh > 0 {
			if gap := time.Since(waitStart); gap >= nearThresh {
				c.nearMiss.Add(1)
				if c.cfg.OnNearMiss != nil {
					c.cfg.OnNearMiss(gap)
				}
			}
		}
		n := binary.BigEndian.Uint32(hdr)
		if n < 5 || n > MaxFrame {
			c.markDown(fmt.Errorf("%w: bad frame length %d", ErrDown, n))
			return
		}
		f := frame{t: hdr[4], id: binary.BigEndian.Uint32(hdr[5:9])}
		pn := int(n) - 5
		// The payload buffer starts at its allocation, so the aligned word
		// vectors of the encoding land 8-byte aligned in memory and
		// WordsView can alias them. Request bodies come from the pool and
		// are recycled when the handler returns; reply payloads escape to
		// the caller of Call, which may Recycle them once decoded.
		if pn > 0 {
			f.payload = getBuf(pn)
			if err := readFull(c.nc, f.payload); err != nil {
				c.markDown(fmt.Errorf("%w: read: %v", ErrDown, err))
				return
			}
		}
		c.received.Add(1)
		if f.t != TypeHeartbeat {
			c.recvBytes.Add(uint64(4 + n))
			if c.cfg.BytesIn != nil {
				c.cfg.BytesIn.Add(uint64(4 + n))
			}
		}
		switch {
		case f.t == TypeHeartbeat:
			// Liveness only; the read itself reset the deadline.
			if f.payload != nil {
				Recycle(f.payload)
			}
		case f.t&replyBit != 0 || f.t == typeErr:
			c.pmu.Lock()
			ch := c.pending[f.id]
			delete(c.pending, f.id)
			c.pmu.Unlock()
			if ch != nil {
				ch <- f
			}
		default:
			go c.serve(f)
		}
	}
}

func (c *Conn) serve(f frame) {
	defer func() {
		if f.payload != nil {
			Recycle(f.payload)
		}
	}()
	if c.cfg.Handler == nil && c.cfg.VecHandler == nil {
		if f.id != 0 {
			c.writeFrame(typeErr, f.id, encodeFail(RemoteFail{Code: CodeGeneric, Msg: "no handler"}))
		}
		return
	}
	if c.cfg.VecHandler != nil {
		rt, reply, err := func() (rt byte, reply *Vec, err error) {
			defer func() {
				if e := recover(); e != nil {
					if reply != nil {
						reply.free()
						reply = nil
					}
					err = RemoteFail{Code: CodeGeneric, Msg: fmt.Sprint(e)}
				}
			}()
			return c.cfg.VecHandler(f.t, f.payload)
		}()
		if f.id == 0 {
			if reply != nil {
				reply.free()
			}
			return // notification: nothing to reply to
		}
		if err != nil {
			if reply != nil {
				reply.free()
			}
			c.writeFrame(typeErr, f.id, encodeFail(toRemoteFail(err)))
			return
		}
		c.writeFrameVec(rt|replyBit, f.id, reply)
		return
	}
	rt, reply, err := func() (rt byte, reply []byte, err error) {
		defer func() {
			if e := recover(); e != nil {
				err = RemoteFail{Code: CodeGeneric, Msg: fmt.Sprint(e)}
			}
		}()
		return c.cfg.Handler(f.t, f.payload)
	}()
	if f.id == 0 {
		return // notification: nothing to reply to
	}
	if err != nil {
		c.writeFrame(typeErr, f.id, encodeFail(toRemoteFail(err)))
		return
	}
	c.writeFrame(rt|replyBit, f.id, reply)
}

func readFull(nc net.Conn, buf []byte) error {
	_, err := io.ReadFull(nc, buf)
	return err
}

func toRemoteFail(err error) RemoteFail {
	var rf RemoteFail
	if errors.As(err, &rf) {
		return rf
	}
	return RemoteFail{Code: CodeGeneric, Msg: err.Error()}
}

func encodeFail(f RemoteFail) []byte {
	var e Enc
	e.B(f.Code)
	e.I(f.Rank)
	e.Str(f.Msg)
	return e.Bytes()
}

func decodeFail(b []byte) error {
	d := NewDec(b)
	f := RemoteFail{Code: d.B(), Rank: d.I(), Msg: d.Str()}
	if d.Failed() {
		return RemoteFail{Code: CodeGeneric, Msg: "undecodable error reply"}
	}
	return f
}

// ---- Vectored payload assembly ----------------------------------------------

// Vec assembles a frame payload from encoded header bytes interleaved
// with externally owned word slices ("gather"). The external slices are
// aliased, not copied: they must stay unmodified until the Vec is written
// (writes are synchronous — by the time CallVec or a handler's reply
// write returns, the wire no longer references them).
//
// Vecs are pooled: obtain one with NewVec; passing it to CallVec or
// returning it from a VecHandler consumes it.
type Vec struct {
	hdr       Enc      // accumulated header/metadata bytes
	cuts      []int    // hdr offsets where an external chunk splices in
	exts      [][]byte // external chunks, parallel to cuts
	extLen    int      // total bytes across exts
	onRelease func()
}

var vecPool = sync.Pool{New: func() any { return new(Vec) }}

// NewVec returns an empty Vec from the pool.
func NewVec() *Vec {
	return vecPool.Get().(*Vec)
}

// Release resets the Vec and returns it to the pool, running the
// OnRelease hook first. Only for Vecs that were never handed to the
// connection — CallVec and VecHandler replies release automatically once
// the frame is written (or abandoned), and a second release corrupts the
// pool.
func (v *Vec) Release() { v.free() }

// free resets the Vec and returns it to the pool, running the OnRelease
// hook first. Called by the connection once the frame is written (or
// abandoned).
func (v *Vec) free() {
	if v.onRelease != nil {
		v.onRelease()
		v.onRelease = nil
	}
	v.hdr.b = v.hdr.b[:0]
	v.cuts = v.cuts[:0]
	for i := range v.exts {
		v.exts[i] = nil
	}
	v.exts = v.exts[:0]
	v.extLen = 0
	vecPool.Put(v)
}

// OnRelease registers f to run when the Vec is released after its frame
// is written — where pooled scratch that the chunks alias goes back to
// its pool.
func (v *Vec) OnRelease(f func()) { v.onRelease = f }

// Len returns the total payload length assembled so far.
func (v *Vec) Len() int { return len(v.hdr.b) + v.extLen }

// B appends one byte.
func (v *Vec) B(b byte) { v.hdr.B(b) }

// U appends a uvarint.
func (v *Vec) U(u uint64) { v.hdr.U(u) }

// I appends a non-negative int as a uvarint.
func (v *Vec) I(i int) { v.hdr.I(i) }

// F appends a float64 as its IEEE bits.
func (v *Vec) F(f float64) { v.hdr.F(f) }

// W64 appends one word, fixed width.
func (v *Vec) W64(w uint64) { v.hdr.W64(w) }

// Str appends a length-prefixed string.
func (v *Vec) Str(s string) { v.hdr.Str(s) }

// Raw appends bytes verbatim.
func (v *Vec) Raw(b []byte) { v.hdr.b = append(v.hdr.b, b...) }

// Words appends a length-prefixed, 8-aligned word vector — the same
// production as Enc.Words — aliasing w instead of copying it (on
// little-endian hosts; big-endian falls back to an in-header copy).
func (v *Vec) Words(w []uint64) {
	v.hdr.I(len(w))
	v.pad8()
	if len(w) == 0 {
		return
	}
	if !hostLittle {
		for _, x := range w {
			v.hdr.W64(x)
		}
		return
	}
	v.cuts = append(v.cuts, len(v.hdr.b))
	v.exts = append(v.exts, wordBytes(w))
	v.extLen += 8 * len(w)
}

// pad8 advances the payload to the next multiple of 8 with zero bytes.
func (v *Vec) pad8() {
	for (len(v.hdr.b)+v.extLen)&7 != 0 {
		v.hdr.B(0)
	}
}

// appendTo flattens the payload into buf (the small-frame path).
func (v *Vec) appendTo(buf []byte) []byte {
	prev := 0
	for i, cut := range v.cuts {
		buf = append(buf, v.hdr.b[prev:cut]...)
		buf = append(buf, v.exts[i]...)
		prev = cut
	}
	return append(buf, v.hdr.b[prev:]...)
}

// buffers appends the frame's chunk list (header first) to dst.
func (v *Vec) buffers(dst net.Buffers, hdr []byte) net.Buffers {
	dst = append(dst, hdr)
	prev := 0
	for i, cut := range v.cuts {
		if cut > prev {
			dst = append(dst, v.hdr.b[prev:cut])
		}
		dst = append(dst, v.exts[i])
		prev = cut
	}
	if len(v.hdr.b) > prev {
		dst = append(dst, v.hdr.b[prev:])
	}
	return dst
}

// ---- Payload encoding -------------------------------------------------------

// Enc builds a payload: uvarints, raw bytes, 64-bit words, floats, strings.
type Enc struct{ b []byte }

// B appends one byte.
func (e *Enc) B(v byte) { e.b = append(e.b, v) }

// U appends a uvarint.
func (e *Enc) U(v uint64) { e.b = binary.AppendUvarint(e.b, v) }

// I appends a non-negative int as a uvarint. Negative values have no
// representation in this protocol (counts, offsets, lengths): encoding
// one is a programming error and panics rather than framing a value the
// peer would decode as a huge count. Callers with -1 sentinels shift
// them non-negative first (the cluster encodes localOff+1).
func (e *Enc) I(v int) {
	if v < 0 {
		panic(fmt.Sprintf("wire: Enc.I(%d): negative values are not encodable", v))
	}
	e.U(uint64(v))
}

// F appends a float64 as its IEEE bits.
func (e *Enc) F(v float64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v))
}

// W64 appends one word, fixed width.
func (e *Enc) W64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }

// Words appends a length-prefixed word vector: a uvarint count, zero
// padding up to the next 8-byte boundary of the payload, then the words
// as fixed little-endian 64-bit. The alignment lets decode sides alias
// or bulk-copy the run (see Dec.WordsView).
func (e *Enc) Words(w []uint64) {
	e.I(len(w))
	for len(e.b)&7 != 0 {
		e.b = append(e.b, 0)
	}
	if hostLittle {
		e.b = append(e.b, wordBytes(w)...)
		return
	}
	for _, v := range w {
		e.W64(v)
	}
}

// Str appends a length-prefixed string.
func (e *Enc) Str(s string) {
	e.I(len(s))
	e.b = append(e.b, s...)
}

// Bytes returns the encoded payload.
func (e *Enc) Bytes() []byte { return e.b }

// Dec consumes a payload. A malformed payload poisons the decoder (Failed
// reports it) instead of panicking; zero values are returned after poison.
//
// Dec tracks its offset from the payload start so the word-vector
// alignment padding (see Enc.Words) is deterministic on both sides;
// construct it on a whole frame payload, not a sub-slice, or the
// alignment bookkeeping goes wrong.
type Dec struct {
	b    []byte
	n0   int // initial payload length; offset consumed = n0 - len(b)
	fail bool
}

// NewDec wraps a payload.
func NewDec(b []byte) *Dec { return &Dec{b: b, n0: len(b)} }

// Failed reports whether any read ran off the payload.
func (d *Dec) Failed() bool { return d.fail }

// Rem returns the number of unconsumed payload bytes. Protocols that pin
// "no trailing garbage" (the tcp flush batch does) check Rem() == 0
// after a full decode.
func (d *Dec) Rem() int { return len(d.b) }

func (d *Dec) off() int { return d.n0 - len(d.b) }

func (d *Dec) poison() {
	d.fail = true
	d.b = nil
}

// B reads one byte.
func (d *Dec) B() byte {
	if len(d.b) < 1 {
		d.poison()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

// U reads a uvarint.
func (d *Dec) U() uint64 {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.poison()
		return 0
	}
	d.b = d.b[n:]
	return v
}

// maxWireInt bounds Dec.I: no legitimate count, offset, or length of this
// protocol reaches 2^32, and nothing above the platform's MaxInt can be
// represented as an int at all (on 32-bit GOARCH the int cast would wrap
// negative — rejecting here is what keeps "lengths are non-negative" an
// invariant handlers can rely on).
const maxWireInt = math.MaxInt

// intFromWire converts a decoded uvarint to an int, enforcing both the
// protocol cap (2^32) and the platform cap (maxInt — math.MaxInt in
// production; tests pass MaxInt32 to exercise the 32-bit rejection on a
// 64-bit host). Reports ok=false when the value is unrepresentable.
func intFromWire(v uint64, maxInt uint64) (int, bool) {
	if v >= 1<<32 || v > maxInt {
		return 0, false
	}
	return int(v), true
}

// I reads a uvarint as an int, rejecting values no legitimate count,
// offset, or length of this protocol can reach (they would otherwise
// wrap negative or drive pathological allocations in handlers).
func (d *Dec) I() int {
	v, ok := intFromWire(d.U(), maxWireInt)
	if !ok {
		d.poison()
		return 0
	}
	return v
}

// F reads a float64.
func (d *Dec) F() float64 { return math.Float64frombits(d.W64()) }

// W64 reads one fixed-width word.
func (d *Dec) W64() uint64 {
	if len(d.b) < 8 {
		d.poison()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

// wordsHeader consumes a word vector's count and alignment padding and
// returns the count, verifying the padded words fit the remaining
// payload.
func (d *Dec) wordsHeader() int {
	n := d.I()
	if d.fail {
		return 0
	}
	for d.off()&7 != 0 {
		if len(d.b) == 0 {
			d.poison()
			return 0
		}
		d.b = d.b[1:]
	}
	if n > len(d.b)/8 {
		d.poison()
		return 0
	}
	return n
}

// Words reads a length-prefixed word vector into a fresh slice.
func (d *Dec) Words() []uint64 {
	n := d.wordsHeader()
	if d.fail {
		return nil
	}
	out := make([]uint64, n)
	d.wordsInto(out)
	return out
}

// WordsInto reads a length-prefixed word vector into dst; the vector's
// length must equal len(dst). This is the zero-allocation decode path the
// tcp client uses to move get replies straight into their destination
// buffers.
func (d *Dec) WordsInto(dst []uint64) bool {
	n := d.wordsHeader()
	if d.fail || n != len(dst) {
		d.poison()
		return false
	}
	d.wordsInto(dst)
	return !d.fail
}

func (d *Dec) wordsInto(dst []uint64) {
	if len(dst) == 0 {
		return
	}
	if hostLittle {
		copy(wordBytes(dst), d.b[:8*len(dst)])
	} else {
		for i := range dst {
			dst[i] = binary.LittleEndian.Uint64(d.b[8*i:])
		}
	}
	d.b = d.b[8*len(dst):]
}

// WordsIntoPrefix reads a length-prefixed word vector into the front of
// dst and returns its length (which must fit dst). Batch decoders carve
// consecutive vectors out of one shared backing buffer with it.
func (d *Dec) WordsIntoPrefix(dst []uint64) int {
	n := d.wordsHeader()
	if d.fail || n > len(dst) {
		d.poison()
		return 0
	}
	d.wordsInto(dst[:n])
	return n
}

// WordsView reads a length-prefixed word vector ZERO-COPY where
// possible: when the underlying bytes are 8-byte aligned in memory (the
// encoder's alignment padding makes that the common case for payloads
// starting on an aligned buffer) the returned slice aliases the payload;
// otherwise the words decode into the front of scratch, which must be at
// least as long as the vector (the decoder poisons if not — batch
// decoders size it in a validation pass). Either way the returned slice
// is valid only as long as the payload buffer is: callers hand it to
// sinks that copy (the window's ApplyPut/ApplyAccumulate), never retain
// it.
func (d *Dec) WordsView(scratch []uint64) []uint64 {
	n := d.wordsHeader()
	if d.fail || n > len(scratch) {
		d.poison()
		return nil
	}
	if n == 0 {
		return scratch[:0]
	}
	if hostLittle && uintptr(unsafe.Pointer(&d.b[0]))&7 == 0 {
		view := unsafe.Slice((*uint64)(unsafe.Pointer(&d.b[0])), n)
		d.b = d.b[8*n:]
		return view
	}
	d.wordsInto(scratch[:n])
	return scratch[:n]
}

// SkipWords advances past a length-prefixed word vector without decoding
// it, returning its length. Two-pass decoders use it to size one shared
// backing buffer before converting payloads.
func (d *Dec) SkipWords() int {
	n := d.wordsHeader()
	if d.fail {
		return 0
	}
	d.b = d.b[8*n:]
	return n
}

// Str reads a length-prefixed string.
func (d *Dec) Str() string {
	n := d.I()
	if d.fail || n > len(d.b) {
		d.poison()
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}
