// Package loopback is the in-process transport: delivery by direct window
// access, exactly the proc→window plumbing the single-process World always
// used. It is the reference implementation of the transport semantics — the
// conformance suite holds every other transport to its behavior.
package loopback

import "repro/internal/transport"

// Loopback delivers batches by calling the target Endpoint directly.
type Loopback struct {
	ep func(rank int) transport.Endpoint
}

var _ transport.Transport = (*Loopback)(nil)

// New builds a loopback transport over an endpoint lookup. The lookup is
// consulted on every call (not cached), so respawned ranks with fresh
// windows are picked up automatically.
func New(ep func(rank int) transport.Endpoint) *Loopback {
	return &Loopback{ep: ep}
}

func (l *Loopback) endpoint(target int) (transport.Endpoint, error) {
	e := l.ep(target)
	if e == nil {
		return nil, transport.PeerDeadError{Rank: target}
	}
	return e, nil
}

// Flush applies the epoch's batch to the target window in issue order:
// puts and accumulates land in the window, gets read it into their
// destination buffers. One call, however many accesses the epoch buffered.
func (l *Loopback) Flush(src, target int, ops []transport.Op) error {
	e, err := l.endpoint(target)
	if err != nil {
		return err
	}
	for _, op := range ops {
		switch op.Kind {
		case transport.KindPut:
			e.ApplyPut(op.Off, op.Data)
		case transport.KindAcc:
			e.ApplyAccumulate(op.Off, op.Data, op.Red)
		case transport.KindGet:
			e.ReadInto(op.Off, op.Dest)
		}
	}
	return nil
}

func (l *Loopback) CompareAndSwap(src, target, off int, old, new uint64) (uint64, error) {
	e, err := l.endpoint(target)
	if err != nil {
		return 0, err
	}
	return e.CompareAndSwap(off, old, new), nil
}

func (l *Loopback) FetchAndOp(src, target, off int, operand uint64, red uint8) (uint64, error) {
	e, err := l.endpoint(target)
	if err != nil {
		return 0, err
	}
	return e.FetchAndOp(off, operand, red), nil
}

func (l *Loopback) GetAccumulate(src, target, off int, data []uint64, red uint8) ([]uint64, error) {
	e, err := l.endpoint(target)
	if err != nil {
		return nil, err
	}
	return e.GetAccumulate(off, data, red), nil
}

func (l *Loopback) Lock(src, target, str int, now, latency float64) (float64, error) {
	e, err := l.endpoint(target)
	if err != nil {
		return 0, err
	}
	return e.Lock(str, src, now, latency), nil
}

func (l *Loopback) Unlock(src, target, str int, now, latency float64) error {
	e, err := l.endpoint(target)
	if err != nil {
		return err
	}
	e.Unlock(str, src, now, latency)
	return nil
}

// Close is a no-op; the loopback owns no resources.
func (l *Loopback) Close() error { return nil }
