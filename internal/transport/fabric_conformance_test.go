package transport_test

// Symmetric-fabric conformance: the coordinatorless runtime's peer
// epoch exchange, lease-expiry failure detection, and coordinator-absent
// recovery, in-process over real localhost sockets (plus the benign
// scenario over the shm ring transport through the same Dialer seam) and
// all judged the same way as the transport scenarios — bit-identical
// final windows against an in-process oracle (a raw rma.World running
// the identical access sequence on the loopback transport).

import (
	"fmt"
	"net"
	"strconv"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/rma"
	"repro/internal/transport"
	"repro/internal/transport/flaky"
	"repro/internal/transport/shm"
)

const (
	fabPhases  = 6
	fabInserts = 3
)

// confTuning keeps lease expiry fast enough to test but tolerant of a
// loaded test machine (the whole suite runs packages in parallel).
var confTuning = fabric.Tuning{
	LeaseInterval:  50 * time.Millisecond,
	LeaseMiss:      10, // 500ms of silence before a peer is condemned
	GossipInterval: 10 * time.Millisecond,
}

// The miniature causal workload: per-(source, phase) disjoint replacing
// puts to every peer, a blocking verify of the previous phase's own
// writes, and a copy-get landing in a per-phase scratch word — the same
// shape the cluster's causal mode uses, small enough to inline here.
func fabWindowWords(n int) int { return n*fabPhases*fabInserts + fabPhases }

func fabOff(src, phase int) int { return (src*fabPhases + phase) * fabInserts }

func fabScratch(n, phase int) int { return n * fabPhases * fabInserts + phase }

func fabVal(rank, phase, i int) uint64 {
	return uint64(rank+1)<<40 | uint64(phase+1)<<20 | uint64(i+1)
}

func runFabPhase(api rma.API, n, rank, phase int) error {
	data := make([]uint64, fabInserts)
	for i := range data {
		data[i] = fabVal(rank, phase, i)
	}
	for q := 0; q < n; q++ {
		if q != rank {
			api.Put(q, fabOff(rank, phase), data)
		}
	}
	peer := (rank + 1) % n
	if phase > 0 {
		got := api.GetBlocking(peer, fabOff(rank, phase-1), fabInserts)
		for i, v := range got {
			if want := fabVal(rank, phase-1, i); v != want {
				return fmt.Errorf("rank %d phase %d readback word %d = %#x, want %#x", rank, phase, i, v, want)
			}
		}
	}
	api.GetCopy(peer, fabOff(rank, phase), 1, fabScratch(n, phase))
	api.Flush(peer)
	return nil
}

// fabOracle runs the workload failure-free on the in-process runtime and
// returns every rank's final window.
func fabOracle(t *testing.T, n int) [][]uint64 {
	t.Helper()
	w := rma.NewWorld(rma.Config{N: n, WindowWords: fabWindowWords(n)})
	defer w.Close()
	var firstErr error
	w.Run(func(r int) {
		p := w.Proc(r)
		for phase := 0; phase < fabPhases; phase++ {
			if err := runFabPhase(p, n, r, phase); err != nil && firstErr == nil {
				firstErr = err
				return
			}
			p.Gsync()
		}
	})
	if firstErr != nil {
		t.Fatalf("oracle: %v", firstErr)
	}
	out := make([][]uint64, n)
	for r := range out {
		out[r] = w.Proc(r).ReadAt(0, fabWindowWords(n))
	}
	return out
}

// fabNode is one in-process fabric member with its own listener and
// fault-injectable dialer.
type fabNode struct {
	nd     *fabric.Node
	dialer *flaky.Dialer
}

// startFabric bootstraps an n-rank fabric in-process: one seed, n nodes
// joined concurrently through it, returned in rank order.
func startFabric(t *testing.T, n, groups int) (*fabric.Seed, []*fabNode) {
	t.Helper()
	seedLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("seed listener: %v", err)
	}
	seed, err := fabric.NewSeed(fabric.SeedConfig{
		N: n, WindowWords: fabWindowWords(n), Groups: groups,
		Tuning: confTuning, Listener: seedLn, Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("seed: %v", err)
	}
	t.Cleanup(func() { seed.Close() })

	type joined struct {
		fn  *fabNode
		err error
	}
	ch := make(chan joined, n)
	for i := 0; i < n; i++ {
		go func() {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				ch <- joined{err: err}
				return
			}
			d := flaky.WrapDialer(transport.NetDialer{})
			nd, err := fabric.Join(fabric.JoinConfig{
				Join: seed.Addr(), Addr: ln.Addr().String(),
				Listener: ln, Dialer: d, Logf: t.Logf,
			})
			ch <- joined{fn: &fabNode{nd: nd, dialer: d}, err: err}
		}()
	}
	nodes := make([]*fabNode, n)
	for i := 0; i < n; i++ {
		j := <-ch
		if j.err != nil {
			t.Fatalf("join: %v", j.err)
		}
		nodes[j.fn.nd.Rank()] = j.fn
	}
	for _, fn := range nodes {
		fn := fn
		t.Cleanup(func() { fn.nd.Close() })
	}
	return seed, nodes
}

// drive runs phases [from, to) on one node, reporting the first error.
func drive(nd *fabric.Node, n, from, to int) error {
	for p := from; p < to; p++ {
		if err := runFabPhase(nd, n, nd.Rank(), p); err != nil {
			return err
		}
		if err := nd.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// compareFabric demands window-for-window bit-identity with the oracle.
// byRank maps each rank to the node currently authoritative for it.
func compareFabric(t *testing.T, byRank map[int]*fabric.Node, want [][]uint64) {
	t.Helper()
	for r, nd := range byRank {
		got := nd.ReadAt(0, len(want[r]))
		for i := range got {
			if got[i] != want[r][i] {
				t.Fatalf("rank %d word %d: got %#x, want %#x", r, i, got[i], want[r][i])
			}
		}
	}
}

// awaitCondemned polls until observer's membership shows rank dead.
func awaitCondemned(t *testing.T, observer *fabric.Node, rank int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		for _, m := range observer.Members() {
			if m.Rank == rank && !m.Alive {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("rank %d was never condemned by rank %d", rank, observer.Rank())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// awaitSelfWatermark polls until the node's own watermark reaches wm.
func awaitSelfWatermark(t *testing.T, nd *fabric.Node, wm int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for nd.Self().Watermark < wm {
		if time.Now().After(deadline) {
			t.Fatalf("rank %d watermark stuck at %d, want %d", nd.Rank(), nd.Self().Watermark, wm)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFabricPeerEpochExchange: the benign path. Epoch closes, gsync
// watermarks, and checkpoint folds travel rank-to-rank only; the seed
// serves exactly one frame per join and none after; the final windows
// are bit-identical to the in-process oracle.
func TestFabricPeerEpochExchange(t *testing.T) {
	const n = 4
	seed, nodes := startFabric(t, n, 2)
	if got := seed.FramesServed(); got != n {
		t.Fatalf("bootstrap served %d frames, want %d", got, n)
	}
	errs := make(chan error, n)
	for _, fn := range nodes {
		fn := fn
		go func() { errs <- drive(fn.nd, n, 0, fabPhases) }()
	}
	for range nodes {
		if err := <-errs; err != nil {
			t.Fatalf("drive: %v", err)
		}
	}
	if got := seed.FramesServed(); got != n {
		t.Fatalf("seed served %d frames after bootstrap — steady state is not peer-to-peer", got-n)
	}
	byRank := map[int]*fabric.Node{}
	for r, fn := range nodes {
		byRank[r] = fn.nd
		if rec := fn.nd.Recoveries(); rec != 0 {
			t.Fatalf("benign run recovered %d times on rank %d", rec, r)
		}
		for _, m := range fn.nd.Members() {
			if !m.Alive || m.Incarnation != 0 {
				t.Fatalf("benign run perturbed membership on rank %d: %+v", r, m)
			}
		}
	}
	compareFabric(t, byRank, fabOracle(t, n))
}

// TestFabricLeaseExpiryCrisis: a rank goes silent without dying — every
// conn stays up at the socket level, but no frame (heartbeats included)
// gets through. Only the lease detector can see this. The survivors must
// condemn it, arbitrate a crisis, install a replacement joined through a
// non-arbiter survivor (exercising the join redirect), and still finish
// bit-identical to the oracle.
func TestFabricLeaseExpiryCrisis(t *testing.T) {
	const n, victim, stopAt = 4, 2, 3
	_, nodes := startFabric(t, n, 2)
	errs := make(chan error, n)
	for r, fn := range nodes {
		r, fn := r, fn
		to := fabPhases
		if r == victim {
			to = stopAt // completes phases [0, stopAt), then idles
		}
		go func() { errs <- drive(fn.nd, n, 0, to) }()
	}
	// Wait until the victim has committed its last phase and the
	// survivors are parked at the next watermark barrier.
	awaitSelfWatermark(t, nodes[victim].nd, stopAt)
	if err := <-errs; err != nil { // the victim's driver is the first to return
		t.Fatalf("victim drive: %v", err)
	}
	for _, fn := range nodes {
		awaitSelfWatermark(t, fn.nd, stopAt)
	}

	// Mute both directions: the victim's heartbeats reach no one and it
	// hears no one, but every socket stays open — a hung process, not a
	// dead one. The survivors' outbound leases must expire.
	vAddr := nodes[victim].nd.Addr()
	for r, fn := range nodes {
		if r == victim {
			for q, other := range nodes {
				if q != victim {
					fn.dialer.Mute(other.nd.Addr())
				}
			}
			continue
		}
		fn.dialer.Mute(vAddr)
	}
	for r, fn := range nodes {
		if r != victim {
			awaitCondemned(t, fn.nd, victim)
		}
	}

	// Replacement joins through a non-arbiter survivor: rank 3 redirects
	// to the crisis arbiter (rank 0, the lowest survivor).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("replacement listener: %v", err)
	}
	repl, err := fabric.Join(fabric.JoinConfig{
		Join: nodes[3].nd.Addr(), Addr: ln.Addr().String(),
		Listener: ln, Dialer: flaky.WrapDialer(transport.NetDialer{}), Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("replacement join: %v", err)
	}
	t.Cleanup(func() { repl.Close() })
	if repl.Rank() != victim || repl.Self().Incarnation != 1 {
		t.Fatalf("replacement is rank %d inc %d, want rank %d inc 1", repl.Rank(), repl.Self().Incarnation, victim)
	}
	if repl.Phase() != stopAt {
		t.Fatalf("replacement resumes at phase %d, want %d (committed %d + 1)", repl.Phase(), stopAt, stopAt-1)
	}
	if err := drive(repl, n, repl.Phase(), fabPhases); err != nil {
		t.Fatalf("replacement drive: %v", err)
	}
	for r := range nodes {
		if r == victim {
			continue
		}
		if err := <-errs; err != nil {
			t.Fatalf("survivor drive: %v", err)
		}
	}
	byRank := map[int]*fabric.Node{victim: repl}
	for r, fn := range nodes {
		if r != victim {
			byRank[r] = fn.nd
			if fn.nd.Recoveries() == 0 {
				t.Fatalf("survivor rank %d observed no recovery", r)
			}
		}
	}
	compareFabric(t, byRank, fabOracle(t, n))
}

// TestFabricCoordinatorAbsentRecovery: the seed is closed the moment
// bootstrap completes, then a rank dies. Failure detection, crisis
// arbitration, state reconstruction, and the replacement's join all run
// with no coordinator process in existence.
func TestFabricCoordinatorAbsentRecovery(t *testing.T) {
	const n, victim, stopAt = 4, 1, 2
	seed, nodes := startFabric(t, n, 2)
	seed.Close() // nothing asymmetric survives past bootstrap

	errs := make(chan error, n)
	for r, fn := range nodes {
		r, fn := r, fn
		to := fabPhases
		if r == victim {
			to = stopAt
		}
		go func() { errs <- drive(fn.nd, n, 0, to) }()
	}
	awaitSelfWatermark(t, nodes[victim].nd, stopAt)
	if err := <-errs; err != nil {
		t.Fatalf("victim drive: %v", err)
	}
	for _, fn := range nodes {
		awaitSelfWatermark(t, fn.nd, stopAt)
	}
	nodes[victim].nd.Close() // fail-stop: sockets die, peers see EOF
	for r, fn := range nodes {
		if r != victim {
			awaitCondemned(t, fn.nd, victim)
		}
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("replacement listener: %v", err)
	}
	repl, err := fabric.Join(fabric.JoinConfig{
		Join: nodes[2].nd.Addr(), Addr: ln.Addr().String(),
		Listener: ln, Dialer: flaky.WrapDialer(transport.NetDialer{}), Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("replacement join: %v", err)
	}
	t.Cleanup(func() { repl.Close() })
	if err := drive(repl, n, repl.Phase(), fabPhases); err != nil {
		t.Fatalf("replacement drive: %v", err)
	}
	for r := range nodes {
		if r == victim {
			continue
		}
		if err := <-errs; err != nil {
			t.Fatalf("survivor drive: %v", err)
		}
	}
	byRank := map[int]*fabric.Node{victim: repl}
	for r, fn := range nodes {
		if r != victim {
			byRank[r] = fn.nd
		}
	}
	compareFabric(t, byRank, fabOracle(t, n))
}

// TestFabricPeerEpochExchangeSHM runs the benign scenario over the
// shared-memory ring transport instead of localhost sockets: the seed
// and every node listen and dial through one shm.Fabric (endpoint ids
// as addresses), proving the fabric is transport-agnostic behind the
// Dialer seam. The in-process oracle doubles as the loopback leg — all
// three transports must land on the same windows bit for bit.
func TestFabricPeerEpochExchangeSHM(t *testing.T) {
	const n = 4
	// Endpoints 0..n-1 are the ranks, endpoint n is the seed.
	shmFab, err := shm.NewFabric(n+1, shm.FabricConfig{})
	if err != nil {
		t.Fatalf("shm fabric: %v", err)
	}
	t.Cleanup(func() { shmFab.Close() })
	seed, err := fabric.NewSeed(fabric.SeedConfig{
		N: n, WindowWords: fabWindowWords(n), Groups: 2,
		Tuning: confTuning, Listener: shmFab.Listener(n), Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("seed: %v", err)
	}
	t.Cleanup(func() { seed.Close() })

	type joined struct {
		nd  *fabric.Node
		err error
	}
	ch := make(chan joined, n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			nd, err := fabric.Join(fabric.JoinConfig{
				Join: strconv.Itoa(n), Addr: strconv.Itoa(i),
				Listener: shmFab.Listener(i), Dialer: shmFab.Dialer(i), Logf: t.Logf,
			})
			ch <- joined{nd: nd, err: err}
		}()
	}
	nodes := make([]*fabric.Node, n)
	for i := 0; i < n; i++ {
		j := <-ch
		if j.err != nil {
			t.Fatalf("join: %v", j.err)
		}
		nodes[j.nd.Rank()] = j.nd
	}
	for _, nd := range nodes {
		nd := nd
		t.Cleanup(func() { nd.Close() })
	}
	if got := seed.FramesServed(); got != n {
		t.Fatalf("bootstrap served %d frames, want %d", got, n)
	}

	errs := make(chan error, n)
	for _, nd := range nodes {
		nd := nd
		go func() { errs <- drive(nd, n, 0, fabPhases) }()
	}
	for range nodes {
		if err := <-errs; err != nil {
			t.Fatalf("drive: %v", err)
		}
	}
	if got := seed.FramesServed(); got != n {
		t.Fatalf("seed served %d frames after bootstrap — steady state is not peer-to-peer", got-n)
	}
	byRank := map[int]*fabric.Node{}
	for r, nd := range nodes {
		byRank[r] = nd
		if rec := nd.Recoveries(); rec != 0 {
			t.Fatalf("benign run recovered %d times on rank %d", rec, r)
		}
	}
	compareFabric(t, byRank, fabOracle(t, n))
}
