package shm

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"repro/internal/transport"
)

// FabricConfig tunes a Fabric. The zero value is usable.
type FabricConfig struct {
	// Dir holds the region files. Default: a fresh temp directory, removed
	// on Close.
	Dir string
	// RingBytes is each direction's ring capacity, a power of two.
	// Default 1 MiB. A frame larger than the ring still flows — the writer
	// streams it through in ring-sized windows — but sizing the ring above
	// the common frame size keeps flushes single-publish.
	RingBytes int
	// SpinYield is how many runtime.Gosched() yields a waiter burns before
	// parking on its doorbell. Default 64.
	SpinYield int
	// PollInterval backstops a parked waiter: the longest a publish can go
	// unnoticed if the doorbell is missed (doorbells are process-local; a
	// peer mapped from another process relies on this poll). Default 200µs.
	PollInterval time.Duration
}

func (c FabricConfig) withDefaults() FabricConfig {
	if c.RingBytes == 0 {
		c.RingBytes = defaultRingKB << 10
	}
	if c.SpinYield == 0 {
		c.SpinYield = defaultSpin
	}
	if c.PollInterval == 0 {
		c.PollInterval = defaultPoll
	}
	return c
}

// Fabric is the shared-memory plane of one world: the region files, the
// per-rank accept queues, and the ring tuning. Build it once, hand it to
// every rank's Config, and Close it after the Peers are closed (their
// conns hold views into the mapped regions).
type Fabric struct {
	cfg FabricConfig
	n   int
	dir string

	mu        sync.Mutex
	regions   []*region
	seq       int
	closed    bool
	listeners []*ringListener
}

// NewFabric prepares the shared plane of an n-rank world.
func NewFabric(n int, cfg FabricConfig) (*Fabric, error) {
	if n < 1 {
		return nil, fmt.Errorf("shm: world size %d, need at least one rank", n)
	}
	cfg = cfg.withDefaults()
	if cfg.RingBytes < minRingBytes || cfg.RingBytes&(cfg.RingBytes-1) != 0 {
		return nil, fmt.Errorf("shm: ring size %d must be a power of two >= %d", cfg.RingBytes, minRingBytes)
	}
	if cfg.SpinYield < 0 || cfg.PollInterval < 0 {
		return nil, fmt.Errorf("shm: negative spin or poll interval")
	}
	dir := cfg.Dir
	if dir == "" {
		d, err := os.MkdirTemp("", "shm-fabric-")
		if err != nil {
			return nil, fmt.Errorf("shm: fabric dir: %w", err)
		}
		dir = d
	}
	f := &Fabric{cfg: cfg, n: n, dir: dir}
	f.listeners = make([]*ringListener, n)
	for r := range f.listeners {
		f.listeners[r] = &ringListener{
			ch:   make(chan net.Conn, n),
			done: make(chan struct{}),
			addr: shmAddr{fmt.Sprintf("%s/rank-%d", dir, r)},
		}
	}
	return f, nil
}

// Close unmaps and removes every region. Only legal once every Peer of
// the fabric is closed: live conns hold views into the mappings.
func (f *Fabric) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	regions := f.regions
	f.regions = nil
	f.mu.Unlock()
	for _, l := range f.listeners {
		l.Close()
	}
	var first error
	for _, r := range regions {
		if err := r.close(); err != nil && first == nil {
			first = err
		}
	}
	if f.cfg.Dir == "" {
		os.RemoveAll(f.dir)
	}
	return first
}

// listener returns rank's accept side.
func (f *Fabric) listener(rank int) net.Listener { return f.listeners[rank] }

// Listener exposes rank's accept side for runtimes that drive the wire
// protocol directly over the fabric (the symmetric fabric's in-process
// conformance scenarios).
func (f *Fabric) Listener(rank int) net.Listener { return f.listener(rank) }

// Dialer returns the transport.Dialer of one endpoint id: addresses are
// decimal endpoint ids ("0", "1", ...), each dial opening a fresh
// two-ring region towards that endpoint's listener. It is the ring-pair
// counterpart of transport.NetDialer — the shm transport plugs it into
// the tcp protocol engine, and the symmetric fabric can dial its peers
// through it unchanged.
func (f *Fabric) Dialer(self int) transport.Dialer {
	return transport.DialerFunc(func(addr string) (net.Conn, error) {
		dst, err := strconv.Atoi(addr)
		if err != nil {
			return nil, fmt.Errorf("shm: dial address %q: want a decimal endpoint id", addr)
		}
		return f.dial(self, dst)
	})
}

// dial creates one duplex connection src->dst: a fresh two-ring region,
// the dialer's endpoint returned, the acceptor's endpoint queued on dst's
// listener.
func (f *Fabric) dial(src, dst int) (net.Conn, error) {
	if dst < 0 || dst >= f.n {
		return nil, fmt.Errorf("shm: dial rank %d outside world of %d ranks", dst, f.n)
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, fmt.Errorf("shm: fabric closed")
	}
	f.seq++
	seq := f.seq
	f.mu.Unlock()

	size := 2 * (ringHdrBytes + f.cfg.RingBytes)
	name := fmt.Sprintf("conn-%d-%d-%d.ring", src, dst, seq)
	reg, err := newRegion(filepath.Join(f.dir, name), size)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		reg.close()
		return nil, fmt.Errorf("shm: fabric closed")
	}
	f.regions = append(f.regions, reg)
	f.mu.Unlock()

	// Ring A carries src->dst, ring B dst->src. Both endpoints are built
	// here, over one mapping, so the doorbell channels are shared — the
	// in-process fast path. (A cross-process attach would map the same
	// file and run bell-less on the poll backstop.)
	a := ringAt(reg, 0, f.cfg.RingBytes, f.cfg.SpinYield, f.cfg.PollInterval)
	b := ringAt(reg, ringHdrBytes+f.cfg.RingBytes, f.cfg.RingBytes, f.cfg.SpinYield, f.cfg.PollInterval)
	dialer := &conn{snd: a, rcv: b,
		local:  shmAddr{fmt.Sprintf("%s:%d", f.listeners[src].addr.s, seq)},
		remote: f.listeners[dst].addr,
	}
	acceptor := &conn{snd: b, rcv: a,
		local:  f.listeners[dst].addr,
		remote: shmAddr{fmt.Sprintf("%s:%d", f.listeners[src].addr.s, seq)},
	}
	if !f.listeners[dst].deliver(acceptor) {
		dialer.Close()
		return nil, fmt.Errorf("shm: rank %d is not accepting", dst)
	}
	return dialer, nil
}

// ringListener is a rank's accept side: dial queues the acceptor endpoint
// here, the tcp accept loop picks it up.
type ringListener struct {
	ch   chan net.Conn
	done chan struct{}
	once sync.Once
	addr shmAddr

	mu     sync.Mutex
	closed bool
}

var _ net.Listener = (*ringListener)(nil)

// deliver queues the acceptor endpoint, refusing once the listener has
// closed (the mutex orders delivery against Close's drain, so no conn can
// slip into the queue after it — its dialer would block on a hello
// forever). The queue holds one slot per rank, covering every peer's one
// cached connection; a full queue means the rank stopped accepting.
func (l *ringListener) deliver(c net.Conn) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return false
	}
	select {
	case l.ch <- c:
		return true
	default:
		return false
	}
}

func (l *ringListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *ringListener) Close() error {
	l.once.Do(func() {
		l.mu.Lock()
		l.closed = true
		close(l.done)
		// Conns queued but never accepted would leave their dialers
		// blocked on a hello forever; close them out.
		for {
			select {
			case c := <-l.ch:
				c.Close()
			default:
				l.mu.Unlock()
				return
			}
		}
	})
	return nil
}

func (l *ringListener) Addr() net.Addr { return l.addr }
