package shm

import (
	"fmt"
	"os"
	"sync"
)

// region is one connection's shared block: a file mapped MAP_SHARED so a
// co-located process attaching the same path would see the same rings.
// Platforms without mmap (and mmap failures) fall back to process-heap
// memory — the rings still work, confined to one process.
type region struct {
	path string
	f    *os.File
	mem  []byte
	heap bool

	// mu fences ring memory accesses against the munmap in close: rings
	// hold it shared strictly across cursor loads and data copies (never
	// while parked), close holds it exclusive while unmapping — so a
	// fabric torn down under a straggling reader produces a clean "ring
	// gone" error, not a fault on unmapped pages.
	mu       sync.RWMutex
	unmapped bool
}

// acquire takes the shared fence; false means the region is gone.
func (r *region) acquire() bool {
	r.mu.RLock()
	if r.unmapped {
		r.mu.RUnlock()
		return false
	}
	return true
}

func (r *region) release() { r.mu.RUnlock() }

// newRegion creates path exclusively (a leftover file from a previous
// crashed run must not be silently adopted as live rings), sizes it, and
// maps it shared.
func newRegion(path string, size int) (*region, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return nil, fmt.Errorf("shm: region %s: %w", path, err)
	}
	if err := f.Truncate(int64(size)); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("shm: region %s: truncate: %w", path, err)
	}
	mem, err := mapShared(f, size)
	if err != nil {
		f.Close()
		os.Remove(path)
		return &region{mem: make([]byte, size), heap: true}, nil
	}
	return &region{path: path, f: f, mem: mem}, nil
}

func (r *region) close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.unmapped {
		return nil
	}
	r.unmapped = true
	if r.heap {
		return nil
	}
	err := unmap(r.mem)
	r.f.Close()
	os.Remove(r.path)
	return err
}
