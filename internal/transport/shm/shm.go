// Package shm is the co-located transport: the same wire protocol as the
// tcp transport — the same frames, the same one-flush-per-epoch batching,
// the same fail-stop liveness — spoken over shared-memory rings instead
// of sockets, for ranks placed on one machine.
//
// A Fabric owns the shared state of one world: an mmap'd region per
// dialed connection, each holding two single-producer single-consumer
// byte rings (one per direction) with atomic head/tail cursors on
// separate cache lines. A connection is a net.Conn over a ring pair, and
// the transport.Dialer seam plugs it in — shm.Peer IS a tcp.Peer whose
// bytes travel through memory. Everything above the conn (framing,
// call matching, scatter/gather, heartbeats, peer-death bookkeeping) is
// shared code, which is what keeps the three transports bit-identical
// under the conformance suite.
//
// Waiting is futex-style, pure Go: a consumer that finds its ring empty
// spins a configured number of yields, then parks on a doorbell channel
// the producer rings after publishing; a timed poll backstops the park so
// progress never depends on the bell (the cursors in shared memory are
// the ground truth — a cross-process attach, where channels cannot
// reach, degrades to the poll path, and a co-located dead rank is caught
// exactly like a dead tcp peer: its heartbeats stop, the read deadline
// expires, and the peer is declared down). docs/SHM.md documents the ring
// layout and the doorbell protocol.
package shm

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/transport/tcp"
)

// Config describes one rank's shm transport.
type Config struct {
	// Self is this rank's id.
	Self int
	// N is the world size; peer ranks are 0..N-1.
	N int
	// Fabric is the world's shared-memory fabric. All ranks of one world
	// share one Fabric, which must outlive every Peer built on it.
	Fabric *Fabric
	// Local handles operations that target Self (and is served to remote
	// peers). Typically the world's loopback over its window endpoints.
	Local transport.Handler
	// HeartbeatInterval is the liveness beacon period. Default 500ms;
	// negative disables heartbeats (and the read deadline).
	HeartbeatInterval time.Duration
	// HeartbeatMiss is how many intervals of silence declare a peer dead.
	// Default 4.
	HeartbeatMiss int
	// OnPeerDown is called (once per rank, from a connection goroutine)
	// when a peer is declared dead.
	OnPeerDown func(rank int)
	// Metrics and Flight are passed through to the embedded tcp protocol
	// peer: the shm transport's flushes and atomics count into the same
	// tcp.* instrument names (the catalog is per-protocol, not per-medium).
	// Both may be nil.
	Metrics *obs.Registry
	Flight  *obs.Recorder
}

// Validate rejects nonsensical configurations with descriptive errors.
func (c Config) Validate() error {
	if c.Fabric == nil {
		return fmt.Errorf("shm: need a Fabric")
	}
	if c.N != c.Fabric.n {
		return fmt.Errorf("shm: world size %d does not match fabric of %d ranks", c.N, c.Fabric.n)
	}
	if c.Self < 0 || c.Self >= c.N {
		return fmt.Errorf("shm: self rank %d outside world of %d ranks", c.Self, c.N)
	}
	// Everything else (Self, N, Local, heartbeat knobs) is validated by
	// the embedded tcp transport's own Validate.
	return nil
}

// Peer is one rank's shm transport. It is the tcp protocol peer verbatim,
// dialing ring pairs instead of sockets.
type Peer struct {
	*tcp.Peer
}

var _ transport.Transport = (*Peer)(nil)

// New validates cfg and registers the rank on its fabric.
func New(cfg Config) (*Peer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f := cfg.Fabric
	// Peer addresses on the shm fabric are endpoint ids; the fabric's
	// Dialer turns them back into ring pairs.
	peers := make(map[int]string, cfg.N)
	for r := 0; r < cfg.N; r++ {
		if r != cfg.Self {
			peers[r] = strconv.Itoa(r)
		}
	}
	p, err := tcp.New(tcp.Config{
		Self:              cfg.Self,
		N:                 cfg.N,
		Listener:          f.listener(cfg.Self),
		Peers:             peers,
		Dialer:            f.Dialer(cfg.Self),
		Local:             cfg.Local,
		HeartbeatInterval: cfg.HeartbeatInterval,
		HeartbeatMiss:     cfg.HeartbeatMiss,
		OnPeerDown:        cfg.OnPeerDown,
		Metrics:           cfg.Metrics,
		Flight:            cfg.Flight,
	})
	if err != nil {
		return nil, err
	}
	return &Peer{Peer: p}, nil
}
