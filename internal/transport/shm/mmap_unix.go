//go:build unix

package shm

import (
	"os"
	"syscall"
)

// mapShared maps size bytes of f MAP_SHARED, read-write. The mapping is
// page aligned, which over-satisfies the rings' 8-byte atomics.
func mapShared(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
}

func unmap(b []byte) error {
	return syscall.Munmap(b)
}
