//go:build !unix

package shm

import (
	"errors"
	"os"
)

// mapShared is unavailable without mmap; newRegion falls back to heap
// memory (rings confined to one process).
func mapShared(*os.File, int) ([]byte, error) {
	return nil, errors.New("shm: no mmap on this platform")
}

func unmap([]byte) error { return nil }
