package shm

import (
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// Ring layout inside a region (one ring per direction, two per region):
//
//	offset   0  head   (atomic uint64, consumer cursor, free-running)
//	offset  64  tail   (atomic uint64, producer cursor, free-running)
//	offset 128  closed (atomic uint32; either side sets it)
//	offset 192  data   (ringBytes, power of two)
//
// head and tail sit on their own cache lines so the producer and the
// consumer never write the same line. Cursors count bytes ever
// consumed/produced (they are never wrapped); fill = tail-head, and the
// byte at stream position p lives at data[p & (ringBytes-1)]. The
// producer writes payload bytes first and publishes them with an atomic
// tail store; the consumer's atomic tail load acquires them — the pair
// is the happens-before edge, in-process (where the race detector checks
// it) and cross-process alike.
const (
	ringHdrBytes  = 192
	offHead       = 0
	offTail       = 64
	offClosed     = 128
	minRingBytes  = 4096
	defaultSpin   = 64
	defaultPoll   = 200 * time.Microsecond
	defaultRingKB = 1024
)

// ring is one process's view of one SPSC byte ring. The cursors and data
// live in the (potentially shared) mapped region; the doorbells are
// process-local channels — a peer in another process misses the bell and
// the waiter falls back to its timed poll.
type ring struct {
	reg    *region // fences accesses against the region's unmap
	head   *atomic.Uint64
	tail   *atomic.Uint64
	closed *atomic.Uint32
	data   []byte
	mask   uint64

	spin int
	poll time.Duration

	// bellData is rung by the producer after publishing bytes; bellSpace
	// by the consumer after freeing space. Buffered(1): a bell is a level,
	// not a count.
	bellData  chan struct{}
	bellSpace chan struct{}

	// Each side of an SPSC ring has exactly one waiter, so one parked
	// timer per role suffices.
	readTimer  *time.Timer
	writeTimer *time.Timer
}

// ringAt builds the process-local view of the ring at reg.mem[off:]. The
// memory is 8-byte aligned (mmap regions are page aligned; the heap
// fallback is size-class aligned) and off a multiple of 64.
func ringAt(reg *region, off, size, spin int, poll time.Duration) *ring {
	if size&(size-1) != 0 {
		panic(fmt.Sprintf("shm: ring size %d not a power of two", size))
	}
	mem := reg.mem
	return &ring{
		reg:       reg,
		head:      (*atomic.Uint64)(unsafe.Pointer(&mem[off+offHead])),
		tail:      (*atomic.Uint64)(unsafe.Pointer(&mem[off+offTail])),
		closed:    (*atomic.Uint32)(unsafe.Pointer(&mem[off+offClosed])),
		data:      mem[off+ringHdrBytes : off+ringHdrBytes+size],
		mask:      uint64(size - 1),
		spin:      spin,
		poll:      poll,
		bellData:  make(chan struct{}, 1),
		bellSpace: make(chan struct{}, 1),
		readTimer: time.NewTimer(time.Hour), writeTimer: time.NewTimer(time.Hour),
	}
}

func ringBell(bell chan struct{}) {
	select {
	case bell <- struct{}{}:
	default:
	}
}

// park blocks until the bell rings or the poll interval elapses; the
// caller rechecks its condition either way.
func park(bell chan struct{}, timer *time.Timer, poll time.Duration) {
	if !timer.Stop() {
		select {
		case <-timer.C:
		default:
		}
	}
	timer.Reset(poll)
	select {
	case <-bell:
	case <-timer.C:
	}
}

// markClosed sets the shared closed flag and wakes both sides.
func (r *ring) markClosed() {
	if r.reg.acquire() {
		r.closed.Store(1)
		r.reg.release()
	}
	ringBell(r.bellData)
	ringBell(r.bellSpace)
}

// read copies up to len(p) available bytes, blocking until at least one
// byte, the ring closes (io.EOF once drained), or the deadline passes.
func (r *ring) read(p []byte, deadline time.Time) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	spun := 0
	for {
		if !r.reg.acquire() {
			return 0, io.EOF // fabric torn down under us
		}
		head := r.head.Load()
		tail := r.tail.Load() // acquire: bytes below tail are visible
		if avail := tail - head; avail > 0 {
			n := uint64(len(p))
			if n > avail {
				n = avail
			}
			r.copyOut(p[:n], head)
			r.head.Store(head + n)
			r.reg.release()
			ringBell(r.bellSpace)
			return int(n), nil
		}
		closed := r.closed.Load() != 0
		r.reg.release()
		if closed {
			return 0, io.EOF
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return 0, os.ErrDeadlineExceeded
		}
		if spun < r.spin {
			spun++
			runtime.Gosched()
			continue
		}
		poll := r.poll
		if !deadline.IsZero() {
			if until := time.Until(deadline); until < poll {
				poll = until
			}
		}
		park(r.bellData, r.readTimer, poll)
	}
}

// write publishes all of p, blocking as the consumer frees space.
func (r *ring) write(p []byte) (int, error) {
	written := 0
	spun := 0
	for len(p) > 0 {
		if !r.reg.acquire() {
			return written, io.ErrClosedPipe
		}
		if r.closed.Load() != 0 {
			r.reg.release()
			return written, io.ErrClosedPipe
		}
		head := r.head.Load()
		tail := r.tail.Load() // own cursor: only this side stores it
		if space := uint64(len(r.data)) - (tail - head); space > 0 {
			n := uint64(len(p))
			if n > space {
				n = space
			}
			r.copyIn(p[:n], tail)
			r.tail.Store(tail + n) // release: publish the bytes
			r.reg.release()
			ringBell(r.bellData)
			p = p[n:]
			written += int(n)
			spun = 0
			continue
		}
		r.reg.release()
		if spun < r.spin {
			spun++
			runtime.Gosched()
			continue
		}
		park(r.bellSpace, r.writeTimer, r.poll)
	}
	return written, nil
}

// copyOut copies n bytes of the stream starting at cursor pos into p,
// splitting at the ring's wrap point.
func (r *ring) copyOut(p []byte, pos uint64) {
	start := pos & r.mask
	first := copy(p, r.data[start:])
	if first < len(p) {
		copy(p[first:], r.data)
	}
}

func (r *ring) copyIn(p []byte, pos uint64) {
	start := pos & r.mask
	first := copy(r.data[start:], p)
	if first < len(p) {
		copy(r.data, p[first:])
	}
}

// ---- net.Conn over a ring pair ----------------------------------------------

// conn is one endpoint's duplex view: it writes into snd and reads from
// rcv (the peer endpoint holds them swapped).
type conn struct {
	snd, rcv *ring
	local    shmAddr
	remote   shmAddr

	mu       sync.Mutex
	deadline time.Time // read deadline; zero = none
	closed   bool
}

var _ net.Conn = (*conn)(nil)

func (c *conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	deadline := c.deadline
	c.mu.Unlock()
	return c.rcv.read(p, deadline)
}

func (c *conn) Write(p []byte) (int, error) {
	return c.snd.write(p)
}

// Close marks both directions closed: the peer's reader drains and hits
// EOF, our own blocked reader/writer wakes immediately.
func (c *conn) Close() error {
	c.mu.Lock()
	already := c.closed
	c.closed = true
	c.mu.Unlock()
	if already {
		return nil
	}
	c.snd.markClosed()
	c.rcv.markClosed()
	return nil
}

func (c *conn) LocalAddr() net.Addr  { return c.local }
func (c *conn) RemoteAddr() net.Addr { return c.remote }

func (c *conn) SetDeadline(t time.Time) error { return c.SetReadDeadline(t) }

func (c *conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.deadline = t
	c.mu.Unlock()
	return nil
}

// SetWriteDeadline is accepted and ignored: a full ring with a live peer
// drains in microseconds, and a dead peer is caught by the read deadline
// (the wire layer's failure detector only arms read deadlines).
func (c *conn) SetWriteDeadline(time.Time) error { return nil }

// shmAddr names a ring endpoint.
type shmAddr struct{ s string }

func (a shmAddr) Network() string { return "shm" }
func (a shmAddr) String() string  { return a.s }
