package shm

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"
)

func newTestFabric(t *testing.T, n, ringBytes int) *Fabric {
	t.Helper()
	f, err := NewFabric(n, FabricConfig{RingBytes: ringBytes})
	if err != nil {
		t.Fatalf("NewFabric: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// dialPair returns both endpoints of one rank-0 -> rank-1 connection.
func dialPair(t *testing.T, f *Fabric) (dialer, acceptor net.Conn) {
	t.Helper()
	d, err := f.dial(0, 1)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	a, err := f.listener(1).Accept()
	if err != nil {
		t.Fatalf("accept: %v", err)
	}
	return d, a
}

func TestRingTransferAndWrap(t *testing.T) {
	f := newTestFabric(t, 2, minRingBytes)
	d, a := dialPair(t, f)

	// Stream several ring-capacities of patterned data one way while the
	// other side drains: the cursors wrap many times and every byte must
	// land in order.
	const total = 10 * minRingBytes
	src := make([]byte, total)
	for i := range src {
		src[i] = byte(i * 31)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := d.Write(src)
		errc <- err
	}()
	got := make([]byte, 0, total)
	buf := make([]byte, 1500) // deliberately not a divisor of the ring size
	for len(got) < total {
		n, err := a.Read(buf)
		if err != nil {
			t.Fatalf("read after %d bytes: %v", len(got), err)
		}
		got = append(got, buf[:n]...)
	}
	if err := <-errc; err != nil {
		t.Fatalf("write: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("bytes corrupted across the ring")
	}
}

func TestRingDuplex(t *testing.T) {
	f := newTestFabric(t, 2, minRingBytes)
	d, a := dialPair(t, f)
	go func() {
		buf := make([]byte, 16)
		n, _ := a.Read(buf)
		a.Write(bytes.ToUpper(buf[:n]))
	}()
	if _, err := d.Write([]byte("ping")); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 16)
	n, err := d.Read(buf)
	if err != nil || string(buf[:n]) != "PING" {
		t.Fatalf("read = %q, %v", buf[:n], err)
	}
}

func TestReadDeadline(t *testing.T) {
	f := newTestFabric(t, 2, minRingBytes)
	d, _ := dialPair(t, f)
	d.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	start := time.Now()
	_, err := d.Read(make([]byte, 8))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("deadline ignored for seconds")
	}
}

func TestCloseUnblocksPeerWithEOF(t *testing.T) {
	f := newTestFabric(t, 2, minRingBytes)
	d, a := dialPair(t, f)
	if _, err := d.Write([]byte("tail")); err != nil {
		t.Fatalf("write: %v", err)
	}
	d.Close()
	// The peer drains buffered bytes first, then sees EOF.
	buf := make([]byte, 16)
	n, err := a.Read(buf)
	if err != nil || string(buf[:n]) != "tail" {
		t.Fatalf("drain = %q, %v", buf[:n], err)
	}
	if _, err := a.Read(buf); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
	if _, err := a.Write([]byte("x")); err == nil {
		t.Fatal("write to a closed ring succeeded")
	}
}

// TestFabricCloseUnderBlockedReader is the regression for the unmap
// race: tearing the fabric down while a reader is parked inside
// ring.read must fence the reader out cleanly (EOF), not fault on
// unmapped pages.
func TestFabricCloseUnderBlockedReader(t *testing.T) {
	f, err := NewFabric(2, FabricConfig{RingBytes: minRingBytes})
	if err != nil {
		t.Fatalf("NewFabric: %v", err)
	}
	d, err := f.dial(0, 1)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	readErr := make(chan error, 1)
	go func() {
		_, err := d.Read(make([]byte, 8))
		readErr <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the reader park
	if err := f.Close(); err != nil {
		t.Fatalf("fabric close: %v", err)
	}
	select {
	case err := <-readErr:
		if err != io.EOF {
			t.Fatalf("reader err = %v, want EOF", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader still blocked after fabric close")
	}
}

func TestListenerCloseFailsDial(t *testing.T) {
	f := newTestFabric(t, 2, minRingBytes)
	f.listener(1).Close()
	if _, err := f.dial(0, 1); err == nil {
		t.Fatal("dial to a closed listener succeeded")
	}
}

func TestFabricValidation(t *testing.T) {
	if _, err := NewFabric(0, FabricConfig{}); err == nil {
		t.Fatal("world of 0 ranks accepted")
	}
	if _, err := NewFabric(2, FabricConfig{RingBytes: 3000}); err == nil {
		t.Fatal("non-power-of-two ring accepted")
	}
	if _, err := NewFabric(2, FabricConfig{RingBytes: 2048}); err == nil {
		t.Fatal("undersized ring accepted")
	}
	f := newTestFabric(t, 2, 0) // defaults
	if f.cfg.RingBytes != defaultRingKB<<10 {
		t.Fatalf("default ring = %d", f.cfg.RingBytes)
	}
	if _, err := f.dial(0, 7); err == nil {
		t.Fatal("dial outside the world accepted")
	}
}

// TestRegionFileBacked pins that rings really live in the mapped file
// (the cross-process story): bytes written through one endpoint are
// visible in the region file on mmap-capable platforms.
func TestRegionFileBacked(t *testing.T) {
	f := newTestFabric(t, 2, minRingBytes)
	d, _ := dialPair(t, f)
	f.mu.Lock()
	reg := f.regions[0]
	f.mu.Unlock()
	if reg.heap {
		t.Skip("no mmap on this platform: rings are heap-backed")
	}
	if _, err := d.Write([]byte{0x5A}); err != nil {
		t.Fatalf("write: %v", err)
	}
	blob, err := os.ReadFile(reg.path)
	if err != nil {
		t.Fatalf("read region file: %v", err)
	}
	if blob[ringHdrBytes] != 0x5A {
		t.Fatalf("region file byte = %#x, want 0x5A", blob[ringHdrBytes])
	}
}
