// Package flaky wraps a transport with deterministic, seeded fault
// injection for tests: wall-clock delivery delays, reordering of
// commutable accesses within a flush batch, and forced peer deaths after a
// configured operation count. It plays the role the streamDelay hook plays
// for the checkpoint pipeline — an adversarial schedule generator — at the
// transport seam.
package flaky

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
)

// Config tunes the injected faults. The zero value injects nothing.
type Config struct {
	// Seed fixes the fault schedule.
	Seed int64
	// MaxDelay sleeps a uniform [0, MaxDelay) before each delivery,
	// modeling wire jitter. Virtual-time results are unaffected (the cost
	// model is charged by the runtime, not the transport); what it shakes
	// out is real concurrency between ranks.
	MaxDelay time.Duration
	// Reorder permutes ops within a flush batch where semantics allow:
	// only ops whose target ranges do not overlap any other op's range are
	// moved, so the batch's outcome is unchanged — what is exercised is
	// every transport's indifference to intra-epoch order of independent
	// accesses.
	Reorder bool
	// DropAfter, when > 0, declares the peer dead after that many
	// operations towards it (per target): subsequent operations fail with
	// transport.PeerDeadError, like a mid-epoch crash of the target.
	DropAfter map[int]int
	// Metrics optionally counts the injected faults (flaky.delays,
	// flaky.reorders, flaky.drops) so a chaos run's scrape shows what the
	// adversary actually did. nil keeps a private registry.
	Metrics *obs.Registry
}

// Transport is the fault-injecting wrapper.
type Transport struct {
	inner transport.Transport
	cfg   Config

	// Injected-fault counters (pre-resolved from Config.Metrics).
	delays   *obs.Counter
	reorders *obs.Counter
	drops    *obs.Counter

	mu   sync.Mutex
	rng  *rand.Rand
	sent map[int]int // operations so far, per target
}

var _ transport.Transport = (*Transport)(nil)

// New wraps inner with the configured faults.
func New(inner transport.Transport, cfg Config) *Transport {
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.New(-1)
	}
	return &Transport{
		inner:    inner,
		cfg:      cfg,
		delays:   reg.Counter("flaky.delays"),
		reorders: reg.Counter("flaky.reorders"),
		drops:    reg.Counter("flaky.drops"),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		sent:     make(map[int]int),
	}
}

// perturb injects the pre-delivery faults for one operation towards
// target; it reports whether the peer is (now) dead.
func (t *Transport) perturb(target int) error {
	t.mu.Lock()
	t.sent[target]++
	dead := false
	if limit, ok := t.cfg.DropAfter[target]; ok && limit > 0 && t.sent[target] > limit {
		dead = true
	}
	var delay time.Duration
	if t.cfg.MaxDelay > 0 {
		delay = time.Duration(t.rng.Int63n(int64(t.cfg.MaxDelay)))
	}
	t.mu.Unlock()
	if dead {
		t.drops.Inc()
		return transport.PeerDeadError{Rank: target}
	}
	if delay > 0 {
		t.delays.Inc()
		time.Sleep(delay)
	}
	return nil
}

// overlaps reports whether two ops touch intersecting word ranges.
func overlaps(a, b *transport.Op) bool {
	aEnd := a.Off + a.Words()
	bEnd := b.Off + b.Words()
	return a.Off < bEnd && b.Off < aEnd
}

// shuffleIndependent permutes the independent ops of a batch (those whose
// ranges intersect no other op's range); dependent ops keep their slots,
// preserving the batch's semantics.
func (t *Transport) shuffleIndependent(ops []transport.Op) []transport.Op {
	free := make([]int, 0, len(ops))
	for i := range ops {
		indep := true
		for j := range ops {
			if i != j && overlaps(&ops[i], &ops[j]) {
				indep = false
				break
			}
		}
		if indep {
			free = append(free, i)
		}
	}
	if len(free) < 2 {
		return ops
	}
	t.reorders.Inc()
	out := make([]transport.Op, len(ops))
	copy(out, ops)
	t.mu.Lock()
	perm := t.rng.Perm(len(free))
	t.mu.Unlock()
	for k, pk := range perm {
		out[free[k]] = ops[free[pk]]
	}
	return out
}

func (t *Transport) Flush(src, target int, ops []transport.Op) error {
	if err := t.perturb(target); err != nil {
		return err
	}
	if t.cfg.Reorder {
		ops = t.shuffleIndependent(ops)
	}
	return t.inner.Flush(src, target, ops)
}

func (t *Transport) CompareAndSwap(src, target, off int, old, new uint64) (uint64, error) {
	if err := t.perturb(target); err != nil {
		return 0, err
	}
	return t.inner.CompareAndSwap(src, target, off, old, new)
}

func (t *Transport) FetchAndOp(src, target, off int, operand uint64, red uint8) (uint64, error) {
	if err := t.perturb(target); err != nil {
		return 0, err
	}
	return t.inner.FetchAndOp(src, target, off, operand, red)
}

func (t *Transport) GetAccumulate(src, target, off int, data []uint64, red uint8) ([]uint64, error) {
	if err := t.perturb(target); err != nil {
		return nil, err
	}
	return t.inner.GetAccumulate(src, target, off, data, red)
}

func (t *Transport) Lock(src, target, str int, now, latency float64) (float64, error) {
	if err := t.perturb(target); err != nil {
		return 0, err
	}
	return t.inner.Lock(src, target, str, now, latency)
}

func (t *Transport) Unlock(src, target, str int, now, latency float64) error {
	// Unlocks are never dropped: a lost unlock would wedge the structure
	// lock rather than model a fail-stop death (Kill's cleanup releases
	// locks; a transport drop would not).
	return t.inner.Unlock(src, target, str, now, latency)
}

func (t *Transport) Close() error { return t.inner.Close() }
