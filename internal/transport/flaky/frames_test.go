package flaky

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

// TestWrapFrameFaultsTransparency pins the wrapper's semantics: it may
// only ever delay — type, payload, reply, and error must flow through
// bit-unchanged for every frame, in and out of the perturbed range — and
// a zero config must not even interpose.
func TestWrapFrameFaultsTransparency(t *testing.T) {
	inner := func(ft byte, payload []byte) (byte, []byte, error) {
		if ft == 0x33 {
			return 0, nil, errors.New("boom")
		}
		out := append([]byte{ft}, payload...)
		return ft + 1, out, nil
	}

	if w := WrapFrameFaults(inner, FrameConfig{}); reflect.ValueOf(w).Pointer() != reflect.ValueOf(inner).Pointer() {
		t.Fatal("zero config did not return the inner handler unchanged")
	}

	w := WrapFrameFaults(inner, FrameConfig{Seed: 7, MaxDelay: 2 * time.Millisecond, MinType: 0x30, MaxType: 0x3a})
	for _, ft := range []byte{0x20, 0x30, 0x35, 0x3a, 0x40} {
		rt, reply, err := w(ft, []byte{1, 2, 3})
		if err != nil {
			t.Fatalf("frame %#x: %v", ft, err)
		}
		if rt != ft+1 || len(reply) != 4 || reply[0] != ft {
			t.Fatalf("frame %#x perturbed: type %#x, reply %v", ft, rt, reply)
		}
	}
	if _, _, err := w(0x33, nil); err == nil || err.Error() != "boom" {
		t.Fatalf("inner error not propagated: %v", err)
	}

	// Frames outside [MinType, MaxType] must never sleep: with an
	// absurdly large MaxDelay any accidental in-range classification
	// would hang far past the deadline.
	slow := WrapFrameFaults(inner, FrameConfig{Seed: 1, MaxDelay: time.Hour, MinType: 0x30, MaxType: 0x3a})
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			slow(0x20, nil)
			slow(0x3b, nil)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("out-of-range frames were delayed")
	}
}
