package flaky

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/transport"
)

// Dialer wraps a transport.Dialer with per-address fault injection, for
// driving the wire layer's lease/heartbeat failure detector in tests
// without killing a process. Two faults are supported:
//
//   - Refuse: dials towards the address fail immediately, as if the
//     listener were gone.
//   - Mute: the address is blackholed — connections towards it (already
//     open ones included) silently discard every write and deliver no
//     reads. The conn stays "up" at the socket level, so the only way the
//     user of the conn notices is its own read deadline expiring: exactly
//     the silent-peer scenario the heartbeat + lease detector exists for.
//
// Both faults are keyed by dial address (the same dialer-specific syntax
// the wrapped Dialer speaks) and can be set and cleared at runtime.
type Dialer struct {
	inner transport.Dialer

	mu     sync.Mutex
	faults map[string]*addrFault
}

type addrFault struct {
	muted  atomic.Bool
	refuse atomic.Bool
}

var _ transport.Dialer = (*Dialer)(nil)

// WrapDialer wraps inner; with no faults set it is transparent.
func WrapDialer(inner transport.Dialer) *Dialer {
	return &Dialer{inner: inner, faults: make(map[string]*addrFault)}
}

func (d *Dialer) fault(addr string) *addrFault {
	d.mu.Lock()
	defer d.mu.Unlock()
	f := d.faults[addr]
	if f == nil {
		f = &addrFault{}
		d.faults[addr] = f
	}
	return f
}

// Mute blackholes addr: every current and future conn dialed to it
// discards writes and starves reads until Unmute.
func (d *Dialer) Mute(addr string) { d.fault(addr).muted.Store(true) }

// Unmute lifts a Mute. Frames sent while muted are gone, not delayed.
func (d *Dialer) Unmute(addr string) { d.fault(addr).muted.Store(false) }

// Refuse makes future dials towards addr fail immediately.
func (d *Dialer) Refuse(addr string) { d.fault(addr).refuse.Store(true) }

// Unrefuse lifts a Refuse.
func (d *Dialer) Unrefuse(addr string) { d.fault(addr).refuse.Store(false) }

// Dial implements transport.Dialer.
func (d *Dialer) Dial(addr string) (net.Conn, error) {
	f := d.fault(addr)
	if f.refuse.Load() {
		return nil, fmt.Errorf("flaky: dial %s refused by fault injection", addr)
	}
	nc, err := d.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &muteConn{Conn: nc, fault: f}, nil
}

// muteConn starves its user while the address is muted: writes report
// success without transmitting, reads discard whatever arrives and keep
// waiting, so the caller's read deadline — not an error — is what fires.
type muteConn struct {
	net.Conn
	fault *addrFault
}

func (c *muteConn) Read(b []byte) (int, error) {
	for {
		n, err := c.Conn.Read(b)
		if !c.fault.muted.Load() {
			return n, err
		}
		if err != nil {
			// Deadline expiries and closes surface even while muted — the
			// fault models a silent peer, not a hung kernel.
			return 0, err
		}
		// Data arrived while muted: drop it and keep starving the caller.
	}
}

func (c *muteConn) Write(b []byte) (int, error) {
	if c.fault.muted.Load() {
		return len(b), nil
	}
	return c.Conn.Write(b)
}
