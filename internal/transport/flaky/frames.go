package flaky

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/transport/wire"
)

// FrameConfig tunes wire-frame fault injection (WrapFrameFaults). The
// zero value injects nothing.
type FrameConfig struct {
	// Seed fixes the fault schedule.
	Seed int64
	// MaxDelay sleeps a uniform [0, MaxDelay) before handling each
	// in-range frame, modeling service-side jitter on the host-service
	// plane (log fetch, parity folds, replay installs).
	MaxDelay time.Duration
	// MinType and MaxType bound (inclusive) the frame types perturbed;
	// frames outside the range pass through untouched.
	MinType, MaxType byte
}

// WrapFrameFaults wraps a wire handler with seeded, deterministic
// per-frame delays for frame types in [MinType, MaxType]. Frames are
// delayed, never dropped or reordered in-stream: the wire layer treats a
// failed host-service call as a peer death (callers panic their way into
// the crisis protocol), so a "dropped" frame is not a new fault mode —
// the kill tests own it. What delays shake out is every ordering the
// protocol claims to be indifferent to: log appends racing fetches,
// parity folds racing trims, replay installs racing the catch-up run.
func WrapFrameFaults(inner wire.Handler, cfg FrameConfig) wire.Handler {
	if cfg.MaxDelay <= 0 {
		return inner
	}
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(cfg.Seed))
	return func(t byte, payload []byte) (byte, []byte, error) {
		if t >= cfg.MinType && t <= cfg.MaxType {
			mu.Lock()
			delay := time.Duration(rng.Int63n(int64(cfg.MaxDelay)))
			mu.Unlock()
			if delay > 0 {
				time.Sleep(delay)
			}
		}
		return inner(t, payload)
	}
}
