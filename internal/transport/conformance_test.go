package transport_test

// The transport conformance suite: one table of semantic scenarios —
// intra-epoch ordering, epoch visibility, blocking atomics, structure
// locks, kill-mid-epoch — executed against every transport implementation
// (loopback, tcp over real localhost sockets, shm over mmap'd rings, and
// the fault-injecting flaky wrapper), asserting that each produces
// bit-identical final state. The loopback is the reference; the others
// must match it exactly.

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/rma"
	"repro/internal/transport"
	"repro/internal/transport/flaky"
	"repro/internal/transport/loopback"
	"repro/internal/transport/shm"
	"repro/internal/transport/tcp"
)

const confWords = 256

// worldFactory builds a world of n ranks over one transport flavor.
type worldFactory struct {
	name string
	make func(t *testing.T, n int) *rma.World
}

func loopbackWorld(t *testing.T, n int) *rma.World {
	w := rma.NewWorld(rma.Config{N: n, WindowWords: confWords})
	t.Cleanup(w.Close)
	return w
}

// tcpWorld runs every rank of the world behind its own tcp peer on
// localhost: windows are only ever reached through real sockets (except a
// rank's own window, which short-circuits like any RMA runtime).
func tcpWorld(t *testing.T, n int) *rma.World {
	peers, factory := tcpFactory(t, n)
	w := rma.NewWorld(rma.Config{N: n, WindowWords: confWords, Transport: factory})
	t.Cleanup(w.Close)
	_ = peers
	return w
}

// tcpFactory pre-binds one listener per rank (so every peer knows every
// address before the world exists) and returns the per-rank transport
// factory plus the created peers.
func tcpFactory(t *testing.T, n int) ([]*tcp.Peer, rma.TransportFactory) {
	t.Helper()
	lns, addrs := bindListeners(t, n)
	peers := make([]*tcp.Peer, n)
	factory := func(rank, worldN int, endpoint func(int) transport.Endpoint) (transport.Transport, error) {
		p, err := tcp.New(tcp.Config{
			Self:              rank,
			N:                 worldN,
			Listener:          lns[rank],
			Peers:             addrs,
			Local:             loopback.New(endpoint),
			HeartbeatInterval: -1, // liveness handled by the test, not timers
		})
		if err != nil {
			return nil, err
		}
		peers[rank] = p
		return p, nil
	}
	return peers, factory
}

// shmWorld runs every rank over the shared-memory transport: one fabric
// for the world, each window only ever reached through mmap'd rings
// (except a rank's own, which short-circuits like any RMA runtime).
func shmWorld(t *testing.T, n int) *rma.World {
	_, factory := shmFactory(t, n)
	w := rma.NewWorld(rma.Config{N: n, WindowWords: confWords, Transport: factory})
	t.Cleanup(w.Close)
	return w
}

// shmFactory builds the world's fabric (cleaned up after the world: live
// conns hold views into its mappings) and the per-rank factory.
func shmFactory(t *testing.T, n int) ([]*shm.Peer, rma.TransportFactory) {
	t.Helper()
	fab, err := shm.NewFabric(n, shm.FabricConfig{})
	if err != nil {
		t.Fatalf("shm fabric: %v", err)
	}
	t.Cleanup(func() { fab.Close() })
	peers := make([]*shm.Peer, n)
	factory := func(rank, worldN int, endpoint func(int) transport.Endpoint) (transport.Transport, error) {
		p, err := shm.New(shm.Config{
			Self:              rank,
			N:                 worldN,
			Fabric:            fab,
			Local:             loopback.New(endpoint),
			HeartbeatInterval: -1, // liveness handled by the test, not timers
		})
		if err != nil {
			return nil, err
		}
		peers[rank] = p
		return p, nil
	}
	return peers, factory
}

func flakyWorld(t *testing.T, n int) *rma.World {
	factory := func(rank, worldN int, endpoint func(int) transport.Endpoint) (transport.Transport, error) {
		return flaky.New(loopback.New(endpoint), flaky.Config{
			Seed:     int64(rank) + 42,
			MaxDelay: 200 * time.Microsecond,
			Reorder:  true,
		}), nil
	}
	w := rma.NewWorld(rma.Config{N: n, WindowWords: confWords, Transport: factory})
	t.Cleanup(w.Close)
	return w
}

var factories = []worldFactory{
	{"loopback", loopbackWorld},
	{"tcp", tcpWorld},
	{"shm", shmWorld},
	{"flaky", flakyWorld},
}

// scenario is one conformance case: run returns deterministic observations
// (beyond the final windows) to compare across transports.
type scenario struct {
	name  string
	ranks int
	run   func(t *testing.T, w *rma.World) []uint64
}

var scenarios = []scenario{
	{
		// Same-offset accesses within one epoch apply in issue order: the
		// epoch's batch is ordered, whatever moves it.
		name:  "ordering-within-epoch",
		ranks: 2,
		run: func(t *testing.T, w *rma.World) []uint64 {
			p := w.Proc(0)
			p.Put(1, 0, []uint64{1, 1, 1, 1})
			p.Accumulate(1, 0, []uint64{10, 10, 10, 10}, rma.OpSum)
			p.Put(1, 2, []uint64{5})
			p.Accumulate(1, 3, []uint64{100}, rma.OpMax)
			p.Flush(1)
			return nil
		},
	},
	{
		// Puts become visible at the target only when the epoch closes.
		name:  "epoch-visibility",
		ranks: 2,
		run: func(t *testing.T, w *rma.World) []uint64 {
			obs := make([]uint64, 2)
			w.Run(func(r int) {
				p := w.Proc(r)
				if r == 0 {
					p.Put(1, 7, []uint64{99})
				}
				p.Barrier() // no memory effects: the put stays buffered
				if r == 1 {
					obs[0] = p.ReadAt(7, 1)[0] // must still be zero
				}
				p.Barrier()
				if r == 0 {
					p.Flush(1)
				}
				p.Barrier()
				if r == 1 {
					obs[1] = p.ReadAt(7, 1)[0] // now visible
				}
			})
			if obs[0] != 0 {
				t.Fatalf("put visible before epoch close: %d", obs[0])
			}
			if obs[1] != 99 {
				t.Fatalf("put not visible after epoch close: %d", obs[1])
			}
			return obs
		},
	},
	{
		// A get's destination is defined only after the epoch closes; a
		// GetCopy additionally lands in the local window.
		name:  "get-fill-and-getcopy-landing",
		ranks: 2,
		run: func(t *testing.T, w *rma.World) []uint64 {
			w.Proc(1).WriteAt(3, []uint64{41, 42, 43})
			p := w.Proc(0)
			dest := p.Get(1, 3, 3)
			cp := p.GetCopy(1, 4, 2, 10)
			if dest[0] != 0 || cp[0] != 0 {
				t.Fatalf("get destination defined before epoch close")
			}
			p.Flush(1)
			if dest[0] != 41 || dest[2] != 43 {
				t.Fatalf("get filled wrong: %v", dest)
			}
			if cp[0] != 42 || cp[1] != 43 {
				t.Fatalf("getcopy filled wrong: %v", cp)
			}
			if got := p.ReadAt(10, 2); got[0] != 42 || got[1] != 43 {
				t.Fatalf("getcopy did not land in window: %v", got)
			}
			return append(dest, cp...)
		},
	},
	{
		// Blocking atomics: CAS hit and miss, FAO, GetAccumulate previous
		// contents — sequential, so the returned values are deterministic.
		name:  "atomics-sequential",
		ranks: 2,
		run: func(t *testing.T, w *rma.World) []uint64 {
			p := w.Proc(0)
			var obs []uint64
			obs = append(obs, p.CompareAndSwap(1, 0, 0, 7))                       // hit: 0
			obs = append(obs, p.CompareAndSwap(1, 0, 0, 9))                       // miss: 7
			obs = append(obs, p.FetchAndOp(1, 0, 5, rma.OpSum))                   // 7
			obs = append(obs, p.GetAccumulate(1, 0, []uint64{100}, rma.OpMax)...) // 12
			if obs[0] != 0 || obs[1] != 7 || obs[2] != 7 || obs[3] != 12 {
				t.Fatalf("atomic results wrong: %v", obs)
			}
			return obs
		},
	},
	{
		// Concurrent commutative atomics from every rank sum correctly.
		name:  "atomics-concurrent-sum",
		ranks: 4,
		run: func(t *testing.T, w *rma.World) []uint64 {
			w.Run(func(r int) {
				p := w.Proc(r)
				for i := 0; i < 20; i++ {
					p.FetchAndOp(0, 5, uint64(r+1), rma.OpSum)
				}
				p.Barrier()
			})
			want := uint64(20 * (1 + 2 + 3 + 4))
			if got := w.Proc(0).ReadAt(5, 1)[0]; got != want {
				t.Fatalf("concurrent FAO sum = %d, want %d", got, want)
			}
			return nil
		},
	},
	{
		// Structure locks exclude each other across the transport: a
		// read-modify-write under Lock/Unlock never loses an update.
		name:  "lock-unlock-exclusion",
		ranks: 4,
		run: func(t *testing.T, w *rma.World) []uint64 {
			const per = 8
			w.Run(func(r int) {
				p := w.Proc(r)
				for i := 0; i < per; i++ {
					p.Lock(0, rma.StrWindow)
					v := p.GetBlocking(0, 9, 1)[0]
					p.Put(0, 9, []uint64{v + 1})
					p.Unlock(0, rma.StrWindow)
				}
			})
			if got := w.Proc(0).ReadAt(9, 1)[0]; got != uint64(4*per) {
				t.Fatalf("locked counter = %d, want %d", got, 4*per)
			}
			return nil
		},
	},
	{
		// Kill mid-epoch: accesses buffered towards a dead rank are lost
		// with it; an explicit flush towards it fails fail-stop, FlushAll
		// silently drops them, and survivors' state is untouched.
		name:  "kill-mid-epoch",
		ranks: 3,
		run: func(t *testing.T, w *rma.World) []uint64 {
			p := w.Proc(0)
			p.Put(1, 0, []uint64{11})
			p.Put(2, 0, []uint64{22})
			w.Kill(1)
			failed := func() (failed bool) {
				defer func() {
					if e := recover(); e != nil {
						if _, ok := e.(rma.TargetFailedError); !ok {
							panic(e)
						}
						failed = true
					}
				}()
				p.Flush(1)
				return false
			}()
			if !failed {
				t.Fatalf("flush towards killed rank did not fail")
			}
			p.FlushAll() // drops the dead rank's ops, applies the rest
			if got := w.Proc(2).ReadAt(0, 1)[0]; got != 22 {
				t.Fatalf("survivor put lost: %d", got)
			}
			return nil
		},
	},
}

// TestTransportConformance runs every scenario on every transport and
// demands bit-identical final windows and observations across them.
func TestTransportConformance(t *testing.T) {
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			var golden []uint64
			var goldenFrom string
			for _, f := range factories {
				f := f
				t.Run(f.name, func(t *testing.T) {
					w := f.make(t, sc.ranks)
					obs := sc.run(t, w)
					state := append([]uint64(nil), obs...)
					for r := 0; r < sc.ranks; r++ {
						if !w.Alive(r) {
							continue // a killed rank's volatile window is gone
						}
						state = append(state, w.Proc(r).ReadAt(0, confWords)...)
					}
					if golden == nil {
						golden = state
						goldenFrom = f.name
						return
					}
					if len(state) != len(golden) {
						t.Fatalf("state length %d differs from %s's %d", len(state), goldenFrom, len(golden))
					}
					for i := range state {
						if state[i] != golden[i] {
							t.Fatalf("state[%d] = %d differs from %s's %d", i, state[i], goldenFrom, golden[i])
						}
					}
				})
			}
		})
	}
}

// TestTCPFlushIsOneFrame pins the epoch-batching guarantee: however many
// puts, accumulates, and gets an epoch buffers towards a target, closing
// the epoch sends exactly one flush frame (plus the one reply).
func TestTCPFlushIsOneFrame(t *testing.T) {
	peers, factory := tcpFactory(t, 2)
	w := rma.NewWorld(rma.Config{N: 2, WindowWords: confWords, Transport: factory})
	t.Cleanup(w.Close)
	p := w.Proc(0)

	// Warm up the connection (dial + hello) so only data frames remain.
	p.PutValue(1, 0, 1)
	p.Flush(1)

	before := peers[0].FramesTo(1)
	for i := 0; i < 16; i++ {
		p.Put(1, i, []uint64{uint64(i)})
	}
	p.Accumulate(1, 0, []uint64{1, 2, 3}, rma.OpSum)
	dest := p.Get(1, 0, 8)
	p.Flush(1)
	if dest[1] != 3 { // 1 + acc 2
		t.Fatalf("flush result wrong: %v", dest)
	}
	if got := peers[0].FramesTo(1) - before; got != 1 {
		t.Fatalf("epoch close sent %d frames, want exactly 1", got)
	}

	// A blocking atomic, by contrast, is its own round trip.
	before = peers[0].FramesTo(1)
	p.FetchAndOp(1, 0, 1, rma.OpSum)
	if got := peers[0].FramesTo(1) - before; got != 1 {
		t.Fatalf("atomic sent %d frames, want 1", got)
	}
}

// TestTCPPeerDeathMapsToTargetFailed closes a peer's transport outright (a
// stand-in for a kill -9 of its process) and asserts the survivor's next
// operation towards it fails with the runtime's fail-stop error.
func TestTCPPeerDeathMapsToTargetFailed(t *testing.T) {
	peers, factory := tcpFactory(t, 2)
	w := rma.NewWorld(rma.Config{N: 2, WindowWords: confWords, Transport: factory})
	t.Cleanup(w.Close)
	p := w.Proc(0)
	p.PutValue(1, 0, 1)
	p.Flush(1) // establish the connection
	peers[1].Close()

	defer func() {
		e := recover()
		if e == nil {
			t.Fatalf("operation towards dead peer did not fail")
		}
		tf, ok := e.(rma.TargetFailedError)
		if !ok || tf.Rank != 1 {
			t.Fatalf("wrong failure: %v", e)
		}
	}()
	for i := 0; i < 100; i++ { // the death may race the first few sends
		p.PutValue(1, 0, uint64(i))
		p.Flush(1)
	}
}

// TestFlakyDropMapsToTargetFailed: the flaky wrapper's forced peer drop
// surfaces exactly like a fail-stop target death.
func TestFlakyDropMapsToTargetFailed(t *testing.T) {
	factory := func(rank, n int, endpoint func(int) transport.Endpoint) (transport.Transport, error) {
		return flaky.New(loopback.New(endpoint), flaky.Config{
			Seed:      7,
			DropAfter: map[int]int{1: 3},
		}), nil
	}
	w := rma.NewWorld(rma.Config{N: 2, WindowWords: confWords, Transport: factory})
	t.Cleanup(w.Close)
	p := w.Proc(0)
	defer func() {
		e := recover()
		tf, ok := e.(rma.TargetFailedError)
		if !ok || tf.Rank != 1 {
			t.Fatalf("wrong failure: %v", e)
		}
	}()
	for i := 0; i < 10; i++ {
		p.FetchAndOp(1, 0, 1, rma.OpSum)
	}
	t.Fatalf("flaky drop never surfaced")
}

// TestTCPConfigValidate pins the descriptive rejections of the transport
// knobs (satellite of the PR 3 hardening style).
func TestTCPConfigValidate(t *testing.T) {
	base := func() tcp.Config {
		return tcp.Config{Self: 0, N: 2, Listen: "127.0.0.1:0", Local: loopback.New(func(int) transport.Endpoint { return nil })}
	}
	cases := []struct {
		name string
		mut  func(*tcp.Config)
		want string
	}{
		{"ok", func(c *tcp.Config) {}, ""},
		{"no-ranks", func(c *tcp.Config) { c.N = 0 }, "at least one rank"},
		{"self-out-of-range", func(c *tcp.Config) { c.Self = 5 }, "outside world"},
		{"no-listener", func(c *tcp.Config) { c.Listen = "" }, "Listener or a Listen address"},
		{"bad-listen", func(c *tcp.Config) { c.Listen = "nonsense" }, "listen address"},
		{"no-local", func(c *tcp.Config) { c.Local = nil }, "Local handler"},
		{"negative-dial-timeout", func(c *tcp.Config) { c.DialTimeout = -time.Second }, "dial timeout"},
		{"negative-heartbeat-miss", func(c *tcp.Config) { c.HeartbeatMiss = -1 }, "heartbeat miss"},
		{"peer-out-of-range", func(c *tcp.Config) { c.Peers = map[int]string{9: "127.0.0.1:1"} }, "peer rank 9"},
		{"peer-bad-addr", func(c *tcp.Config) { c.Peers = map[int]string{1: "bogus"} }, "address"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mut(&cfg)
			err := cfg.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("valid config rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid config accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// bindListeners pre-binds n localhost listeners and returns them with the
// rank -> address map every peer needs before any peer exists.
func bindListeners(t *testing.T, n int) ([]net.Listener, map[int]string) {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make(map[int]string, n)
	for r := 0; r < n; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("bind listener %d: %v", r, err)
		}
		lns[r] = ln
		addrs[r] = ln.Addr().String()
	}
	return lns, addrs
}
