package cluster

// Coordinatorless execution: the same causal Workload, run on the
// symmetric fabric instead of the hub-and-spoke coordinator. The seed
// only performs the bootstrap rendezvous (NewFabricSeed); every phase,
// checkpoint, failure detection, and recovery afterwards is peer-to-peer
// among the RunFabricWorker processes. The collection path is symmetric
// too: each rank is the sole authority for its own window, so final
// state is gathered with one fabric.FetchWindow per member.

import (
	"fmt"
	"net"
	"os"
	"time"

	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/transport/wire"
)

// encodeWorkloadMeta packs the Workload into the opaque seed Meta blob
// every joining rank receives, so workers need no side channel to learn
// what to run.
func encodeWorkloadMeta(wl Workload) []byte {
	var e wire.Enc
	e.B(byte(wl.Mode))
	e.I(wl.Ranks)
	e.I(wl.Phases)
	e.I(wl.InsertsPerPhase)
	e.I(wl.TableSlots)
	e.I(int(wl.PhaseDelay))
	return e.Bytes()
}

// decodeWorkloadMeta is the worker-side inverse.
func decodeWorkloadMeta(meta []byte) (Workload, error) {
	d := wire.NewDec(meta)
	wl := Workload{
		Mode:            WorkloadMode(d.B()),
		Ranks:           d.I(),
		Phases:          d.I(),
		InsertsPerPhase: d.I(),
		TableSlots:      d.I(),
		PhaseDelay:      time.Duration(d.I()),
	}
	if d.Failed() {
		return Workload{}, fmt.Errorf("cluster: undecodable fabric workload meta")
	}
	return wl, wl.Validate()
}

// fabricGroups mirrors the coordinator's default parity grouping so the
// two runtimes protect the same workload with the same redundancy.
func fabricGroups(n int) int { return defaultFT(n).Groups }

// NewFabricSeed starts the bootstrap rendezvous for a coordinatorless
// run of cfg.Workload. Only ModeCausal is supported: the symmetric
// fabric deliberately carries no lock manager or combining pipeline (the
// coordinator runtime remains the reference for those), and the causal
// mode is the one whose recovery is pure peer-to-peer replay.
func NewFabricSeed(cfg Config) (*fabric.Seed, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Workload.Mode != ModeCausal {
		return nil, fmt.Errorf("cluster: the fabric runtime supports only the causal workload mode, got mode %d", cfg.Workload.Mode)
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		if ln, err = net.Listen("tcp", cfg.Listen); err != nil {
			return nil, err
		}
	}
	return fabric.NewSeed(fabric.SeedConfig{
		N:           cfg.Workload.Ranks,
		WindowWords: cfg.Workload.WindowWords(),
		Groups:      fabricGroups(cfg.Workload.Ranks),
		Tuning:      cfg.Fabric,
		Meta:        encodeWorkloadMeta(cfg.Workload),
		Listener:    ln,
	})
}

// RunFabricWorker joins the fabric through joinAddr (the seed during
// bootstrap, any surviving member when rejoining as a replacement), runs
// the causal workload from its resume phase — phase 0 for a fresh rank,
// the first un-checkpointed phase for a replacement installed by the
// crisis arbiter — and parks until the run-over notify. logf may be nil.
//
// Observability: the worker always carries a metrics registry and a
// flight recorder (configured from the REPRO_FLIGHTREC* environment);
// when RunFabricWorkerDebugAddr or REPRO_DEBUG_DIR asks for it, the
// debug HTTP endpoint (Prometheus metrics, flight-ring JSONL, expvar,
// pprof) is served for the worker's lifetime and its bound address is
// advertised in "<dir>/rank<R>.addr" for post-run scraping.
func RunFabricWorker(joinAddr string, logf func(format string, args ...any)) error {
	return RunFabricWorkerDebugAddr(joinAddr, "", logf)
}

// RunFabricWorkerDebugAddr is RunFabricWorker with an explicit debug
// endpoint listen address ("" defers to REPRO_DEBUG_DIR, which binds an
// ephemeral localhost port and drops a rank addr file).
func RunFabricWorkerDebugAddr(joinAddr, debugAddr string, logf func(format string, args ...any)) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	reg := obs.New(-1)
	fr := obs.RecorderFromEnv(-1)
	nd, err := fabric.Join(fabric.JoinConfig{
		Join:     joinAddr,
		Addr:     ln.Addr().String(),
		Listener: ln,
		Dialer:   transport.NetDialer{},
		Logf:     logf,
		Obs:      reg,
		Flight:   fr,
	})
	if err != nil {
		return err
	}
	defer nd.Close()
	debugDir := os.Getenv(obs.EnvDebugDir)
	if debugAddr == "" && debugDir != "" {
		debugAddr = "127.0.0.1:0"
	}
	if debugAddr != "" {
		srv, err := obs.Serve(debugAddr, reg, fr)
		if err != nil {
			return fmt.Errorf("cluster: debug endpoint: %w", err)
		}
		defer srv.Close()
		if logf != nil {
			logf("rank %d debug endpoint at %s", nd.Rank(), srv.Addr)
		}
		if debugDir != "" {
			if err := obs.WriteAddrFile(debugDir, nd.Rank(), srv.Addr); err != nil {
				return fmt.Errorf("cluster: debug addr file: %w", err)
			}
		}
	}
	wl, err := decodeWorkloadMeta(nd.Meta())
	if err != nil {
		return err
	}
	if wl.Mode != ModeCausal {
		return fmt.Errorf("cluster: fabric worker got workload mode %d, supports only causal", wl.Mode)
	}
	for p := nd.Phase(); p < wl.Phases; p++ {
		if err := wl.RunPhase(nd, nil, nd.Rank(), p); err != nil {
			return err
		}
		if err := nd.Sync(); err != nil {
			return err
		}
	}
	nd.AwaitShutdown()
	return nil
}

// CollectFabric gathers the final windows of a finished coordinatorless
// run: it polls any member for the membership table until every rank's
// watermark reaches phases (each completed epoch bumps it by one), then
// fetches every member's self-hosted window. Returns the windows in rank
// order.
func CollectFabric(anyAddr string, wl Workload, timeout time.Duration) ([][]uint64, error) {
	d := transport.NetDialer{}
	deadline := time.Now().Add(timeout)
	var members []fabric.Member
	for {
		ms, _, err := fabric.FetchMembers(d, anyAddr)
		if err == nil && len(ms) == wl.Ranks {
			done := true
			for _, m := range ms {
				if !m.Alive || m.Watermark < wl.Phases {
					done = false
					break
				}
			}
			if done {
				members = ms
				break
			}
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("cluster: fabric run did not finish within %v (members %+v, err %v)", timeout, members, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	out := make([][]uint64, wl.Ranks)
	for _, m := range members {
		w, err := fabric.FetchWindow(d, m.Addr)
		if err != nil {
			return nil, fmt.Errorf("cluster: fetch rank %d window: %v", m.Rank, err)
		}
		if len(w) != wl.WindowWords() {
			return nil, fmt.Errorf("cluster: rank %d window has %d words, want %d", m.Rank, len(w), wl.WindowWords())
		}
		out[m.Rank] = w
	}
	return out, nil
}

// ShutdownFabric tells every member the run is over (best effort).
func ShutdownFabric(anyAddr string) {
	d := transport.NetDialer{}
	ms, _, err := fabric.FetchMembers(d, anyAddr)
	if err != nil {
		return
	}
	for _, m := range ms {
		if m.Alive {
			fabric.NotifyShutdown(d, m.Addr)
		}
	}
}
