package cluster

import (
	"fmt"
	"time"

	"repro/internal/apps/kvstore"
	"repro/internal/rma"
)

// WorkloadMode selects the cluster workload's communication pattern —
// and with it which recovery path a mid-run kill exercises.
type WorkloadMode int

const (
	// ModeCombining is the original kvstore + beacon benchmark: the
	// per-round combining accumulates set M flags at every peer (§4.2),
	// steering recovery to the coordinated fallback.
	ModeCombining WorkloadMode = iota
	// ModeCausal is conflict-free: per-(rank, phase) disjoint replacing
	// puts, single-frame blocking gets, no combining accesses — a kill
	// leaves no N or M flag behind, so recovery takes the paper's cheap
	// causal-replay path.
	ModeCausal
	// ModeLocked is ModeCausal plus a user-locked critical section per
	// phase (with the phase delay spent inside it), so a kill likely
	// lands while the victim holds a lock — the lock-aware crisis tests'
	// workload.
	ModeLocked
)

// Workload is the cluster's bulk-synchronous benchmark; Mode picks the
// communication pattern. Every rank runs Phases rounds of per-rank work,
// closing each round with a gsync (where the ftRMA layer transparently
// takes its coordinated checkpoint).
//
// All modes are globally deterministic and conflict-free: no two ranks
// ever write the same word (the kvstore schedule is collision-free; the
// causal modes write per-(rank, phase) disjoint blocks), so the final
// window contents are a pure function of the phases executed, independent
// of inter-rank timing. That is what makes the kill -9 smoke tests'
// bit-identical oracle comparison meaningful: a run that loses a rank
// mid-flight and recovers must converge to exactly the failure-free
// windows.
//
// ModeCombining's beacons guarantee every rank's put log towards every
// peer holds a combining access each round, forcing the coordinated
// fallback (§4.2 M flags); the causal modes guarantee the opposite, so
// both of the paper's recovery paths are driven by real workloads.
type Workload struct {
	// Ranks is the number of compute processes.
	Ranks int
	// Phases is the number of bulk-synchronous rounds.
	Phases int
	// InsertsPerPhase is the number of DHT inserts (combining) or put
	// words per peer (causal modes) per rank per round.
	InsertsPerPhase int
	// TableSlots is the per-volume hash-table size (ModeCombining only).
	TableSlots int
	// PhaseDelay is wall-clock think time per rank per round (virtual
	// time is unaffected); the kill -9 smoke uses it to stretch the run so
	// a signal lands mid-flight. In ModeLocked it is spent inside the
	// critical section, so kills land while holding the lock. Zero for
	// full speed.
	PhaseDelay time.Duration
	// Mode selects the communication pattern; the zero value is the
	// original combining benchmark.
	Mode WorkloadMode
}

// Validate rejects nonsensical workloads with descriptive errors.
func (wl Workload) Validate() error {
	if wl.Mode < ModeCombining || wl.Mode > ModeLocked {
		return fmt.Errorf("cluster: unknown workload mode %d", wl.Mode)
	}
	if wl.Ranks < 2 {
		return fmt.Errorf("cluster: workload needs at least 2 ranks, got %d", wl.Ranks)
	}
	if wl.Phases < 1 {
		return fmt.Errorf("cluster: workload needs at least 1 phase, got %d", wl.Phases)
	}
	if wl.InsertsPerPhase < 1 {
		return fmt.Errorf("cluster: workload needs at least 1 insert per phase, got %d", wl.InsertsPerPhase)
	}
	if wl.Mode == ModeCombining {
		need := wl.Ranks * wl.Phases * wl.InsertsPerPhase
		if wl.TableSlots < 2*need/wl.Ranks {
			return fmt.Errorf("cluster: %d table slots per volume cannot hold %d conflict-free inserts; need at least %d",
				wl.TableSlots, need, 2*need/wl.Ranks)
		}
	}
	if wl.PhaseDelay < 0 {
		return fmt.Errorf("cluster: negative phase delay %v", wl.PhaseDelay)
	}
	return nil
}

// kvConfig returns the DHT configuration of the workload. Heap cells are
// zero: the conflict-free schedule never overflows, keeping the final
// state schedule-independent.
func (wl Workload) kvConfig() kvstore.Config {
	return kvstore.Config{TableSlots: wl.TableSlots}
}

// beaconOff is the window offset of the per-source beacon counters, past
// the DHT volume.
func (wl Workload) beaconOff() int { return wl.kvConfig().WindowWords() }

// WindowWords is the per-rank window size. ModeCombining: the DHT volume
// plus one beacon word per source rank. Causal modes: one
// InsertsPerPhase-word block per (source, phase), one scratch word per
// phase (the replayable local landing zone of the per-phase get), and in
// ModeLocked one lock-protected word per (source, phase).
func (wl Workload) WindowWords() int {
	if wl.Mode == ModeCombining {
		return wl.beaconOff() + wl.Ranks
	}
	words := wl.lockedOff(0, 0)
	if wl.Mode == ModeLocked {
		words += wl.Ranks * wl.Phases
	}
	return words
}

// causalOff is the window offset of source src's phase-p put block: the
// blocks are disjoint per (src, phase), making every causal-mode put a
// write-once replacing access.
func (wl Workload) causalOff(src, phase int) int {
	return (src*wl.Phases + phase) * wl.InsertsPerPhase
}

// scratchOff is the window offset of the local phase-p get landing zone,
// past all put blocks. Each phase gets its own word so replayed gets
// (which re-deposit into the scratch slot) stay write-once too.
func (wl Workload) scratchOff(phase int) int {
	return wl.causalOff(wl.Ranks, 0) + phase
}

// lockedOff is the window offset of source src's phase-p lock-protected
// word (ModeLocked), past the scratch words.
func (wl Workload) lockedOff(src, phase int) int {
	return wl.scratchOff(wl.Phases) + src*wl.Phases + phase
}

// causalVal is the deterministic payload rank writes in phase p, word i.
// Rank, phase, and index occupy disjoint bit ranges so a misplaced word
// is self-describing in test failures.
func causalVal(rank, phase, i int) uint64 {
	return uint64(rank+1)<<40 | uint64(phase+1)<<20 | uint64(i+1)
}

// Schedule builds the global key schedule: Schedule()[phase][rank] lists
// the keys that rank inserts in that phase. Keys are scanned in order and
// accepted only when their (volume, slot) pair is unused, so no insert
// ever collides — every process (workers, oracle) derives the identical
// schedule locally.
func (wl Workload) Schedule() [][][]uint64 {
	if wl.Mode != ModeCombining {
		return nil // causal modes derive their pattern from (rank, phase) alone
	}
	cfg := wl.kvConfig()
	used := make(map[int]bool)
	sched := make([][][]uint64, wl.Phases)
	key := uint64(0)
	for p := range sched {
		sched[p] = make([][]uint64, wl.Ranks)
		for r := range sched[p] {
			keys := make([]uint64, 0, wl.InsertsPerPhase)
			for len(keys) < wl.InsertsPerPhase {
				key++
				owner, slot := cfg.Placement(key, wl.Ranks)
				id := owner*wl.TableSlots + slot
				if used[id] {
					continue
				}
				used[id] = true
				keys = append(keys, key)
			}
			sched[p][r] = keys
		}
	}
	return sched
}

// RunPhase executes one rank's round p work against an API (the cluster
// client on a worker, a raw Proc in the oracle): the beacon accumulates,
// the scheduled inserts, and for later rounds a few lookups of the
// previous round's keys (exercising the get path). The caller closes the
// round with Gsync.
func (wl Workload) RunPhase(api rma.API, sched [][][]uint64, rank, phase int) error {
	if wl.Mode != ModeCombining {
		return wl.runCausalPhase(api, rank, phase)
	}
	for t := 0; t < wl.Ranks; t++ {
		api.Accumulate(t, wl.beaconOff()+rank, []uint64{uint64(phase + 1)}, rma.OpSum)
	}
	s, err := kvstore.New(api, wl.kvConfig(), 0)
	if err != nil {
		return err
	}
	for _, k := range sched[phase][rank] {
		if !s.Insert(k) {
			return fmt.Errorf("cluster: rank %d phase %d: insert of key %d failed", rank, phase, k)
		}
	}
	if phase > 0 {
		prev := sched[phase-1][rank]
		for i := 0; i < 2 && i < len(prev); i++ {
			if !s.Lookup(prev[i]) {
				return fmt.Errorf("cluster: rank %d phase %d: key %d from phase %d missing", rank, phase, prev[i], phase-1)
			}
		}
	}
	if wl.PhaseDelay > 0 {
		time.Sleep(wl.PhaseDelay)
	}
	return nil
}

// runCausalPhase is round p of the causal modes: disjoint replacing puts
// to every peer, a blocking verify of the previous round's own writes,
// and a copy-get landing in the local scratch word. Every get closes its
// epoch in the frame that issues it (GetBlocking, or GetCopy followed
// immediately by Flush), so a kill can never strand an in-flight get's N
// flag at the target — which is exactly what keeps this workload on the
// causal-replay path.
func (wl Workload) runCausalPhase(api rma.API, rank, phase int) error {
	data := make([]uint64, wl.InsertsPerPhase)
	for i := range data {
		data[i] = causalVal(rank, phase, i)
	}
	for t := 0; t < wl.Ranks; t++ {
		if t != rank {
			api.Put(t, wl.causalOff(rank, phase), data)
		}
	}
	peer := (rank + 1) % wl.Ranks
	if phase > 0 {
		got := api.GetBlocking(peer, wl.causalOff(rank, phase-1), wl.InsertsPerPhase)
		for i, v := range got {
			if want := causalVal(rank, phase-1, i); v != want {
				return fmt.Errorf("cluster: rank %d phase %d: readback word %d = %#x, want %#x", rank, phase, i, v, want)
			}
		}
	}
	// A get that lands inside the local window: its LG record carries a
	// local offset, so replay re-deposits it (§4.1 get logs).
	api.GetCopy(peer, wl.causalOff(rank, phase), 1, wl.scratchOff(phase))
	api.Flush(peer)
	if wl.Mode == ModeLocked {
		// One global critical section: every rank contends for rank 0's
		// user lock and spends its think time inside it, so a kill lands
		// on a lock holder while survivors block acquiring — the
		// lock-aware crisis' worst case. The protected words are still
		// per-(rank, phase) disjoint; the lock is protocol exercise, not
		// a correctness need.
		api.Lock(0, rma.NumStructures)
		api.Put(0, wl.lockedOff(rank, phase), []uint64{causalVal(rank, phase, 0) | 1<<60})
		if wl.PhaseDelay > 0 {
			time.Sleep(wl.PhaseDelay) // die here and you die holding the lock
		}
		api.Unlock(0, rma.NumStructures)
	} else if wl.PhaseDelay > 0 {
		time.Sleep(wl.PhaseDelay)
	}
	return nil
}

// Oracle runs the whole workload failure-free in-process (raw runtime, no
// FT layer — the protocol layers never alter window contents) and returns
// every rank's final window: the bit-exact reference the cluster run must
// reproduce, kill -9 or not.
func (wl Workload) Oracle() ([][]uint64, error) {
	if err := wl.Validate(); err != nil {
		return nil, err
	}
	oracle := wl
	oracle.PhaseDelay = 0
	sched := oracle.Schedule()
	w := rma.NewWorld(rma.Config{N: wl.Ranks, WindowWords: wl.WindowWords(), ExtraLocks: 1})
	var firstErr error
	w.Run(func(r int) {
		p := w.Proc(r)
		for phase := 0; phase < wl.Phases; phase++ {
			if err := oracle.RunPhase(p, sched, r, phase); err != nil {
				firstErr = err
				return
			}
			p.Gsync()
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	out := make([][]uint64, wl.Ranks)
	for r := range out {
		out[r] = w.Proc(r).ReadAt(0, wl.WindowWords())
	}
	return out, nil
}
