package cluster

import (
	"fmt"
	"time"

	"repro/internal/apps/kvstore"
	"repro/internal/rma"
)

// Workload is the cluster's bulk-synchronous kvstore benchmark: every rank
// runs Phases rounds of InsertsPerPhase DHT inserts plus one combining
// "beacon" accumulate towards every rank, closing each round with a gsync
// (where the ftRMA layer transparently takes its coordinated checkpoint).
//
// The key schedule is globally deterministic and conflict-free — no two
// keys share a (volume, slot) pair, so every insert is a single CAS into
// an empty slot and the final window contents are a pure function of the
// phases executed, independent of inter-rank timing. That is what makes
// the kill -9 smoke test's bit-identical oracle comparison meaningful: a
// run that loses a rank mid-flight and recovers must converge to exactly
// the failure-free windows.
//
// The beacons guarantee every rank's put log towards every peer holds a
// combining access each round, steering recovery towards the coordinated
// fallback (§4.2 M flags) — the rollback-and-reexecute path whose
// semantics BSP re-execution needs.
type Workload struct {
	// Ranks is the number of compute processes.
	Ranks int
	// Phases is the number of bulk-synchronous rounds.
	Phases int
	// InsertsPerPhase is the number of DHT inserts per rank per round.
	InsertsPerPhase int
	// TableSlots is the per-volume hash-table size.
	TableSlots int
	// PhaseDelay is wall-clock think time per rank per round (virtual
	// time is unaffected); the kill -9 smoke uses it to stretch the run so
	// a signal lands mid-flight. Zero for full speed.
	PhaseDelay time.Duration
}

// Validate rejects nonsensical workloads with descriptive errors.
func (wl Workload) Validate() error {
	if wl.Ranks < 2 {
		return fmt.Errorf("cluster: workload needs at least 2 ranks, got %d", wl.Ranks)
	}
	if wl.Phases < 1 {
		return fmt.Errorf("cluster: workload needs at least 1 phase, got %d", wl.Phases)
	}
	if wl.InsertsPerPhase < 1 {
		return fmt.Errorf("cluster: workload needs at least 1 insert per phase, got %d", wl.InsertsPerPhase)
	}
	need := wl.Ranks * wl.Phases * wl.InsertsPerPhase
	if wl.TableSlots < 2*need/wl.Ranks {
		return fmt.Errorf("cluster: %d table slots per volume cannot hold %d conflict-free inserts; need at least %d",
			wl.TableSlots, need, 2*need/wl.Ranks)
	}
	if wl.PhaseDelay < 0 {
		return fmt.Errorf("cluster: negative phase delay %v", wl.PhaseDelay)
	}
	return nil
}

// kvConfig returns the DHT configuration of the workload. Heap cells are
// zero: the conflict-free schedule never overflows, keeping the final
// state schedule-independent.
func (wl Workload) kvConfig() kvstore.Config {
	return kvstore.Config{TableSlots: wl.TableSlots}
}

// beaconOff is the window offset of the per-source beacon counters, past
// the DHT volume.
func (wl Workload) beaconOff() int { return wl.kvConfig().WindowWords() }

// WindowWords is the per-rank window size: the DHT volume plus one beacon
// word per source rank.
func (wl Workload) WindowWords() int { return wl.beaconOff() + wl.Ranks }

// Schedule builds the global key schedule: Schedule()[phase][rank] lists
// the keys that rank inserts in that phase. Keys are scanned in order and
// accepted only when their (volume, slot) pair is unused, so no insert
// ever collides — every process (workers, oracle) derives the identical
// schedule locally.
func (wl Workload) Schedule() [][][]uint64 {
	cfg := wl.kvConfig()
	used := make(map[int]bool)
	sched := make([][][]uint64, wl.Phases)
	key := uint64(0)
	for p := range sched {
		sched[p] = make([][]uint64, wl.Ranks)
		for r := range sched[p] {
			keys := make([]uint64, 0, wl.InsertsPerPhase)
			for len(keys) < wl.InsertsPerPhase {
				key++
				owner, slot := cfg.Placement(key, wl.Ranks)
				id := owner*wl.TableSlots + slot
				if used[id] {
					continue
				}
				used[id] = true
				keys = append(keys, key)
			}
			sched[p][r] = keys
		}
	}
	return sched
}

// RunPhase executes one rank's round p work against an API (the cluster
// client on a worker, a raw Proc in the oracle): the beacon accumulates,
// the scheduled inserts, and for later rounds a few lookups of the
// previous round's keys (exercising the get path). The caller closes the
// round with Gsync.
func (wl Workload) RunPhase(api rma.API, sched [][][]uint64, rank, phase int) error {
	for t := 0; t < wl.Ranks; t++ {
		api.Accumulate(t, wl.beaconOff()+rank, []uint64{uint64(phase + 1)}, rma.OpSum)
	}
	s, err := kvstore.New(api, wl.kvConfig(), 0)
	if err != nil {
		return err
	}
	for _, k := range sched[phase][rank] {
		if !s.Insert(k) {
			return fmt.Errorf("cluster: rank %d phase %d: insert of key %d failed", rank, phase, k)
		}
	}
	if phase > 0 {
		prev := sched[phase-1][rank]
		for i := 0; i < 2 && i < len(prev); i++ {
			if !s.Lookup(prev[i]) {
				return fmt.Errorf("cluster: rank %d phase %d: key %d from phase %d missing", rank, phase, prev[i], phase-1)
			}
		}
	}
	if wl.PhaseDelay > 0 {
		time.Sleep(wl.PhaseDelay)
	}
	return nil
}

// Oracle runs the whole workload failure-free in-process (raw runtime, no
// FT layer — the protocol layers never alter window contents) and returns
// every rank's final window: the bit-exact reference the cluster run must
// reproduce, kill -9 or not.
func (wl Workload) Oracle() ([][]uint64, error) {
	if err := wl.Validate(); err != nil {
		return nil, err
	}
	oracle := wl
	oracle.PhaseDelay = 0
	sched := oracle.Schedule()
	w := rma.NewWorld(rma.Config{N: wl.Ranks, WindowWords: wl.WindowWords()})
	var firstErr error
	w.Run(func(r int) {
		p := w.Proc(r)
		for phase := 0; phase < wl.Phases; phase++ {
			if err := oracle.RunPhase(p, sched, r, phase); err != nil {
				firstErr = err
				return
			}
			p.Gsync()
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	out := make([][]uint64, wl.Ranks)
	for r := range out {
		out[r] = w.Proc(r).ReadAt(0, wl.WindowWords())
	}
	return out, nil
}
