package cluster

import (
	"errors"
	"fmt"
	"net"
	"os"
	"time"

	"repro/internal/ftrma"
	"repro/internal/rma"
	"repro/internal/transport/flaky"
	"repro/internal/transport/wire"
)

// Cluster frame types (distinct from the tcp peer protocol's). The 0x2X
// range flows worker -> coordinator (the op protocol); the 0x3X range
// flows coordinator -> worker (the host-service protocol: the worker
// process is the residence of its rank's ftRMA recovery state). See
// docs/WIRE.md for the normative layouts.
const (
	cJoin   byte = 0x20
	cBatch  byte = 0x21
	cAtomic byte = 0x22
	cSync   byte = 0x23
	cLock   byte = 0x24
	cLocal  byte = 0x25
	cAwait  byte = 0x26
	cFinish byte = 0x27
	cReplay byte = 0x28 // causal replacement catch-up: per-phase records / done

	cHostInit      byte = 0x30 // build the log residence (arena tuning)
	cLogAppend     byte = 0x31 // append one LP/LG record -> footprint after
	cLogSetN       byte = 0x32 // write an N flag (Algorithm 1 lines 1/8)
	cLogTrim       byte = 0x33 // §6.2 covered-record trim -> bytes freed
	cLogClear      byte = 0x34 // clear (CC subsumption) or reset (rollback)
	cLogQuery      byte = 0x35 // footprint / largest-peer victim scan
	cLogFetch      byte = 0x36 // recovery log fetch: flags + LP + LG records
	cParityHandoff byte = 0x37 // install (group, level) shards at this worker
	cParityFold    byte = 0x38 // fold a member's checkpoint delta into shards
	cParityFetch   byte = 0x39 // read shards back (recovery reconstruction)
	cReplayInstall byte = 0x3A // stream causally ordered replay records to the replacement
)

// cReplay modes.
const (
	replayPhase byte = 0 // apply one phase's causally ordered records
	replayDone  byte = 1 // catch-up complete: adopt phase, re-checkpoint all ranks
)

// cBatch close modes.
const (
	closeNone   byte = 0
	closeFlush  byte = 1
	closeUnlock byte = 2
)

// cAtomic kinds.
const (
	atomCAS byte = iota
	atomFAO
	atomGetAcc
)

// cSync kinds.
const (
	syncFlushAll byte = iota
	syncGsync
	syncBarrier
)

// cLocal kinds.
const (
	localReadAt byte = iota
	localWriteAt
	localCompute
	localAdvance
	localNow
	localUCCkpt
)

// RolledBack is the panic value a cluster client raises when the
// coordinator reports that a failure rolled the computation back to the
// last coordinated checkpoint. The worker's phase loop recovers it and
// resumes from Resume.
type RolledBack struct{ Resume int }

func (r RolledBack) Error() string {
	return fmt.Sprintf("cluster: rolled back, resume at phase %d", r.Resume)
}

// bufOp is one client-buffered non-blocking access of an open epoch.
type bufOp struct {
	kind     byte // 0 put, 1 acc, 2 get
	red      uint8
	off      int
	data     []uint64
	n        int
	localOff int
	seq      uint64
	dest     []uint64
}

// Client drives one rank of a Cluster from a worker process. It
// implements rma.API over the coordinator connection: puts, gets, and
// accumulates are buffered locally per target and travel as one batch
// frame when the epoch towards that target closes — exactly the runtime's
// own epoch semantics, paid as one round trip per close — while blocking
// atomics, synchronization, and local window accesses are single
// request/response frames.
//
// A Client is owned by one goroutine (the rank's application), like a
// rma.Proc.
type Client struct {
	conn  *wire.Conn
	host  *stateHost
	rank  int
	n     int
	words int
	wl    Workload
	start int

	// replayTo, when > 0 (with replay set), marks this worker as a causal
	// replacement: before running phases normally it must catch up from
	// start to replayTo, driving a replay frame per phase between
	// re-executions.
	replay   bool
	replayTo int

	pend    map[int][]bufOp
	dests   map[uint64][]uint64
	nextSeq uint64
	gen     uint64 // rollback generation last synchronized with
}

var _ rma.API = (*Client)(nil)

// DialConfig tunes a worker's connection.
type DialConfig struct {
	// Addr is the coordinator's address.
	Addr string
	// DialTimeout bounds connection establishment. Default 10s.
	DialTimeout time.Duration
	// HeartbeatInterval is the liveness beacon period towards the
	// coordinator (and the patience granted to it). Default 100ms.
	HeartbeatInterval time.Duration
	// HeartbeatMiss is how many silent intervals declare the coordinator
	// gone. Default 50 (collective waits legitimately take a while; the
	// coordinator heartbeats too, so real deaths are still caught fast).
	HeartbeatMiss int
}

func (c DialConfig) withDefaults() DialConfig {
	if c.DialTimeout == 0 {
		c.DialTimeout = 10 * time.Second
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 100 * time.Millisecond
	}
	if c.HeartbeatMiss == 0 {
		c.HeartbeatMiss = 50
	}
	return c
}

// Validate rejects nonsensical dial configurations.
func (c DialConfig) Validate() error {
	if _, _, err := net.SplitHostPort(c.Addr); err != nil {
		return fmt.Errorf("cluster: coordinator address %q: %v", c.Addr, err)
	}
	if c.DialTimeout < 0 {
		return fmt.Errorf("cluster: negative dial timeout %v", c.DialTimeout)
	}
	if c.HeartbeatInterval < 0 {
		return fmt.Errorf("cluster: negative heartbeat interval %v", c.HeartbeatInterval)
	}
	if c.HeartbeatMiss < 0 {
		return fmt.Errorf("cluster: negative heartbeat miss count %d", c.HeartbeatMiss)
	}
	return nil
}

// Dial connects to a coordinator and joins the cluster: the membership
// handshake assigns this worker the lowest free rank id (a replacement
// inherits the failed rank) and returns the workload and resume phase.
func Dial(cfg DialConfig) (*Client, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	nc, err := net.DialTimeout("tcp", cfg.Addr, cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s: %w", cfg.Addr, err)
	}
	// The worker is not just an op driver: it hosts its rank's ftRMA
	// recovery state (access logs, replay-install streams, and any parity
	// shards elected onto this rank), served from the connection handler
	// on per-frame goroutines — so host frames are answered even while the
	// rank's own op blocks in a collective. Seeded host-frame fault
	// injection (REPRO_CLUSTER_HOSTFRAME_FAULTS) wraps the handler here,
	// perturbing exactly the 0x30–0x3A service path.
	host := newStateHost()
	conn := wire.New(nc, wire.Config{
		Handler:     hostFaultsFromEnv(host.handle),
		Heartbeat:   cfg.HeartbeatInterval,
		ReadTimeout: time.Duration(cfg.HeartbeatMiss) * cfg.HeartbeatInterval,
	})
	reply, err := conn.Call(cJoin, nil)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("cluster: join: %w", err)
	}
	d := wire.NewDec(reply)
	c := &Client{
		conn:  conn,
		host:  host,
		rank:  d.I(),
		n:     d.I(),
		words: d.I(),
		start: d.I(),
		gen:   d.U(),
		wl: Workload{
			Ranks:           d.I(),
			Phases:          d.I(),
			InsertsPerPhase: d.I(),
			TableSlots:      d.I(),
			PhaseDelay:      time.Duration(d.U()),
		},
		pend:  make(map[int][]bufOp),
		dests: make(map[uint64][]uint64),
	}
	c.wl.Mode = WorkloadMode(d.B())
	c.replay = d.B() != 0
	c.replayTo = d.I()
	if d.Failed() {
		conn.Close()
		return nil, errors.New("cluster: malformed join reply")
	}
	return c, nil
}

// Workload returns the coordinator-assigned workload.
func (c *Client) Workload() Workload { return c.wl }

// WindowWords returns the hosted window's size in words.
func (c *Client) WindowWords() int { return c.words }

// StartPhase returns the phase to resume from (0 for a fresh cluster, the
// restored phase for a replacement joining after a recovery).
func (c *Client) StartPhase() int { return c.start }

// Close tears the connection down.
func (c *Client) Close() { c.conn.Close() }

// reset drops all buffered epoch state (after a rollback: the aborted
// epoch's accesses were rolled back host-side too).
func (c *Client) reset() {
	c.pend = make(map[int][]bufOp)
	c.dests = make(map[uint64][]uint64)
}

// enc starts an op payload, stamped with the rollback generation the
// coordinator checks on every frame.
func (c *Client) enc() *wire.Enc {
	var e wire.Enc
	e.U(c.gen)
	return &e
}

// call performs one request, translating a coordinator-reported crisis
// into the rollback protocol: park on Await until the recovery completes,
// then unwind the worker's phase with RolledBack.
func (c *Client) call(t byte, payload []byte) []byte {
	reply, err := c.conn.Call(t, payload)
	if err == nil {
		return reply
	}
	var rf wire.RemoteFail
	if errors.As(err, &rf) && rf.Code == wire.CodeCrisis {
		c.awaitRecovery()
	}
	panic(fmt.Errorf("cluster: rank %d: %w", c.rank, err))
}

// awaitRecovery parks until the coordinator finishes the pending recovery
// and unwinds with the restored phase.
func (c *Client) awaitRecovery() {
	reply, err := c.conn.Call(cAwait, nil)
	if err != nil {
		panic(fmt.Errorf("cluster: rank %d: await recovery: %w", c.rank, err))
	}
	d := wire.NewDec(reply)
	resume := d.I()
	gen := d.U()
	if d.Failed() {
		panic(errors.New("cluster: malformed await reply"))
	}
	c.gen = gen
	c.reset()
	panic(RolledBack{Resume: resume})
}

// ---- rma.API ---------------------------------------------------------------

func (c *Client) Rank() int { return c.rank }
func (c *Client) N() int    { return c.n }

// Local is unavailable across processes: there is no window memory to
// alias in a worker. Use ReadAt/WriteAt.
func (c *Client) Local() []uint64 {
	panic("cluster: Local() is unavailable in a worker process; use ReadAt/WriteAt")
}

func (c *Client) ReadAt(off, n int) []uint64 {
	e := c.enc()
	e.B(localReadAt)
	e.I(off)
	e.I(n)
	reply := c.call(cLocal, e.Bytes())
	out := make([]uint64, n)
	if !wire.NewDec(reply).WordsInto(out) {
		panic(errors.New("cluster: malformed readat reply"))
	}
	return out
}

// ReadInto is ReadAt into a caller-provided buffer (the apps' hot loops
// discover it by interface assertion).
func (c *Client) ReadInto(off int, dst []uint64) {
	e := c.enc()
	e.B(localReadAt)
	e.I(off)
	e.I(len(dst))
	if !wire.NewDec(c.call(cLocal, e.Bytes())).WordsInto(dst) {
		panic(errors.New("cluster: malformed readat reply"))
	}
}

func (c *Client) WriteAt(off int, data []uint64) {
	e := c.enc()
	e.B(localWriteAt)
	e.I(off)
	e.Words(data)
	c.call(cLocal, e.Bytes())
}

func (c *Client) Put(target, off int, data []uint64) {
	buf := append([]uint64(nil), data...)
	c.pend[target] = append(c.pend[target], bufOp{kind: 0, off: off, data: buf})
}

func (c *Client) PutValue(target, off int, v uint64) { c.Put(target, off, []uint64{v}) }

func (c *Client) Accumulate(target, off int, data []uint64, op rma.ReduceOp) {
	buf := append([]uint64(nil), data...)
	c.pend[target] = append(c.pend[target], bufOp{kind: 1, red: uint8(op), off: off, data: buf})
}

func (c *Client) get(target, off, n, localOff int) []uint64 {
	c.nextSeq++
	dest := make([]uint64, n)
	c.pend[target] = append(c.pend[target], bufOp{kind: 2, off: off, n: n, localOff: localOff, seq: c.nextSeq, dest: dest})
	c.dests[c.nextSeq] = dest
	return dest
}

func (c *Client) Get(target, off, n int) []uint64 { return c.get(target, off, n, -1) }

// GetInto lands the data in the local (coordinator-hosted) window exactly
// like GetCopy; a cross-process client cannot hand out a window alias, so
// both names map to the non-aliasing variant.
func (c *Client) GetInto(target, off, n, localOff int) []uint64 {
	return c.get(target, off, n, localOff)
}

func (c *Client) GetCopy(target, off, n, localOff int) []uint64 {
	return c.get(target, off, n, localOff)
}

func (c *Client) GetBlocking(target, off, n int) []uint64 {
	dest := c.get(target, off, n, -1)
	c.Flush(target)
	return dest
}

// sendBatch ships target's buffered epoch as one frame; close selects the
// epoch-closing action executed host-side after the ops are issued.
func (c *Client) sendBatch(target int, close byte, str int) {
	ops := c.pend[target]
	if len(ops) == 0 && close == closeNone {
		return
	}
	delete(c.pend, target)
	e := c.enc()
	e.I(target)
	e.B(close)
	e.I(str)
	e.I(len(ops))
	for i := range ops {
		op := &ops[i]
		e.B(op.kind)
		switch op.kind {
		case 2:
			e.I(op.off)
			e.I(op.n)
			e.I(op.localOff + 1)
			e.U(op.seq)
		default:
			e.B(op.red)
			e.I(op.off)
			e.Words(op.data)
		}
	}
	reply := c.call(cBatch, e.Bytes())
	if close != closeNone {
		// Only an epoch-closing batch defines gets; a plain ship-ahead
		// batch has an empty reply.
		c.fillGets(reply)
	}
}

// fillGets decodes (seq, words) pairs of an epoch-closing reply into the
// destinations handed out at issue time.
func (c *Client) fillGets(reply []byte) {
	d := wire.NewDec(reply)
	count := d.I()
	for i := 0; i < count; i++ {
		seq := d.U()
		dest := c.dests[seq]
		if dest == nil || !d.WordsInto(dest) {
			panic(errors.New("cluster: malformed get fill"))
		}
		delete(c.dests, seq)
	}
	if d.Failed() {
		panic(errors.New("cluster: malformed epoch-close reply"))
	}
}

func (c *Client) Flush(target int) { c.sendBatch(target, closeFlush, 0) }

func (c *Client) FlushAll() {
	for target := range c.pend {
		c.sendBatch(target, closeNone, 0)
	}
	e := c.enc()
	e.B(syncFlushAll)
	c.fillGets(c.call(cSync, e.Bytes()))
}

func (c *Client) Gsync() {
	for target := range c.pend {
		c.sendBatch(target, closeNone, 0)
	}
	e := c.enc()
	e.B(syncGsync)
	c.fillGets(c.call(cSync, e.Bytes()))
}

func (c *Client) Barrier() {
	e := c.enc()
	e.B(syncBarrier)
	c.call(cSync, e.Bytes())
}

func (c *Client) atomic(kind byte, target, off int, payload func(*wire.Enc)) []byte {
	e := c.enc()
	e.B(kind)
	e.I(target)
	e.I(off)
	payload(e)
	return c.call(cAtomic, e.Bytes())
}

func (c *Client) CompareAndSwap(target, off int, old, new uint64) uint64 {
	reply := c.atomic(atomCAS, target, off, func(e *wire.Enc) {
		e.W64(old)
		e.W64(new)
	})
	return wire.NewDec(reply).W64()
}

func (c *Client) FetchAndOp(target, off int, operand uint64, op rma.ReduceOp) uint64 {
	reply := c.atomic(atomFAO, target, off, func(e *wire.Enc) {
		e.W64(operand)
		e.B(uint8(op))
	})
	return wire.NewDec(reply).W64()
}

func (c *Client) GetAccumulate(target, off int, data []uint64, op rma.ReduceOp) []uint64 {
	reply := c.atomic(atomGetAcc, target, off, func(e *wire.Enc) {
		e.B(uint8(op))
		e.Words(data)
	})
	prev := make([]uint64, len(data))
	if !wire.NewDec(reply).WordsInto(prev) {
		panic(errors.New("cluster: malformed get-accumulate reply"))
	}
	return prev
}

func (c *Client) Lock(target, str int) {
	e := c.enc()
	e.B(0)
	e.I(target)
	e.I(str)
	c.call(cLock, e.Bytes())
}

func (c *Client) Unlock(target, str int) {
	// An unlock closes the epoch towards target: ship the buffered batch
	// with the unlock as its closing action — still one frame.
	c.sendBatch(target, closeUnlock, str)
}

func (c *Client) Compute(flops float64) {
	e := c.enc()
	e.B(localCompute)
	e.F(flops)
	c.call(cLocal, e.Bytes())
}

// AdvanceTime charges think time to the rank's virtual clock (kvstore's
// think model discovers it via interface assertion).
func (c *Client) AdvanceTime(dt float64) {
	e := c.enc()
	e.B(localAdvance)
	e.F(dt)
	c.call(cLocal, e.Bytes())
}

func (c *Client) Now() float64 {
	e := c.enc()
	e.B(localNow)
	return wire.NewDec(c.call(cLocal, e.Bytes())).F()
}

// UCCheckpoint asks the host to take an uncoordinated checkpoint of this
// rank now (the stencil/fft Checkpointer contract).
func (c *Client) UCCheckpoint() {
	e := c.enc()
	e.B(localUCCkpt)
	c.call(cLocal, e.Bytes())
}

// Finish reports this rank's completion and blocks until every rank has
// finished (or a rollback demands more phases, surfacing as RolledBack).
func (c *Client) Finish() {
	_, err := c.conn.Call(cFinish, c.enc().Bytes())
	if err == nil {
		return
	}
	var rf wire.RemoteFail
	if errors.As(err, &rf) && rf.Code == wire.CodeCrisis {
		c.awaitRecovery()
	}
	if errors.Is(err, wire.ErrDown) {
		// The coordinator tears connections down right after the run
		// completes; the finish rendezvous had already admitted us, so a
		// dead connection here is the normal end of life. (A coordinator
		// crash also lands here — its own exit status is authoritative.)
		return
	}
	panic(fmt.Errorf("cluster: rank %d: finish: %w", c.rank, err))
}

// hostFaultsEnv, when set to "seed:maxdelay_ms", arms seeded fault
// injection on this worker's host-service frames (delays that genuinely
// reorder the per-frame goroutines) — the chaos tests shake the
// log-fetch, parity-fold, and replay-install paths with it.
const hostFaultsEnv = "REPRO_CLUSTER_HOSTFRAME_FAULTS"

func hostFaultsFromEnv(h wire.Handler) wire.Handler {
	spec := os.Getenv(hostFaultsEnv)
	if spec == "" {
		return h
	}
	var seed int64
	var ms int
	if _, err := fmt.Sscanf(spec, "%d:%d", &seed, &ms); err != nil {
		return h
	}
	return flaky.WrapFrameFaults(h, flaky.FrameConfig{
		Seed:     seed,
		MaxDelay: time.Duration(ms) * time.Millisecond,
		MinType:  cHostInit,
		MaxType:  cReplayInstall,
	})
}

// RunWorker drives one rank end to end: join, execute phases (resuming
// across rollbacks), finish. It is the whole main loop of a rankd worker.
// A causal replacement first catches up to the survivors' phase:
// Algorithm 2 over the wire — await the coordinator's replay-install
// stream, then per missed phase send the phase's causally ordered records
// (the replay half) and re-execute the deterministic phase work (the
// recomputation half), closing with the done frame that re-checkpoints
// the cluster and lifts the crisis.
func RunWorker(cfg DialConfig) error {
	c, err := Dial(cfg)
	if err != nil {
		return err
	}
	defer c.Close()
	wl := c.Workload()
	sched := wl.Schedule()
	phase := c.StartPhase()
	if c.replay {
		next, err := runReplay(c, wl, sched)
		if err != nil {
			return err
		}
		phase = next
	}
	for phase < wl.Phases+1 {
		next, err := runStep(c, wl, sched, phase)
		if err != nil {
			return err
		}
		phase = next
	}
	return nil
}

// runReplay performs a replacement's whole catch-up and returns the phase
// to continue from. A rollback mid-catch-up (another failure forced the
// coordinated path after all) surfaces as RolledBack and simply moves the
// resume point.
func runReplay(c *Client, wl Workload, sched [][][]uint64) (next int, err error) {
	defer func() {
		if e := recover(); e != nil {
			if rb, ok := e.(RolledBack); ok {
				next = rb.Resume
				return
			}
			if pe, ok := e.(error); ok {
				err = pe
				return
			}
			panic(e)
		}
	}()
	puts, gets := c.host.AwaitReplayLogs()
	for phase := c.start; phase < c.replayTo; phase++ {
		c.sendReplayPhase(phase, puts, gets)
		if err := wl.RunPhase(c, sched, c.rank, phase); err != nil {
			return 0, err
		}
		// No gsync: the survivors already completed these phases'
		// collectives; re-entering them would wait forever. FlushAll
		// closes the re-executed epochs without a rendezvous.
		c.FlushAll()
	}
	e := c.enc()
	e.B(replayDone)
	c.call(cReplay, e.Bytes())
	return c.replayTo, nil
}

// sendReplayPhase streams one phase's slice of the installed records
// back as a replay frame; the host applies them to the respawned rank in
// their causal order (the filter is stable, so the stream's Theorem-4.2
// order is preserved). The first frame also carries any straggler records
// below the restored phase — their effects are in the checkpoint already,
// but untrimmed stragglers replay harmlessly in order rather than being
// silently dropped.
func (c *Client) sendReplayPhase(phase int, puts, gets []ftrma.LogRecord) {
	e := c.enc()
	e.B(replayPhase)
	e.I(phase)
	sel := func(recs []ftrma.LogRecord) []ftrma.LogRecord {
		out := recs[:0:0]
		for _, r := range recs {
			if r.GNC == phase || (phase == c.start && r.GNC < phase) {
				out = append(out, r)
			}
		}
		return out
	}
	p, g := sel(puts), sel(gets)
	e.I(len(p))
	for _, r := range p {
		encRecord(e, r)
	}
	e.I(len(g))
	for _, r := range g {
		encRecord(e, r)
	}
	c.call(cReplay, e.Bytes())
}

// runStep executes one phase (or, past the last phase, the finish
// rendezvous), converting a RolledBack unwind into the phase to resume.
func runStep(c *Client, wl Workload, sched [][][]uint64, phase int) (next int, err error) {
	defer func() {
		if e := recover(); e != nil {
			if rb, ok := e.(RolledBack); ok {
				next = rb.Resume
				return
			}
			if pe, ok := e.(error); ok {
				err = pe
				return
			}
			panic(e)
		}
	}()
	if phase >= wl.Phases {
		c.Finish()
		return wl.Phases + 1, nil
	}
	if err := wl.RunPhase(c, sched, c.rank, phase); err != nil {
		return 0, err
	}
	c.Gsync()
	return phase + 1, nil
}
