package cluster

// Coordinatorless kill -9 smoke: N worker processes bootstrap through a
// seed, then run the causal workload entirely peer-to-peer. The test
// SIGKILLs a live rank mid-run — including rank 0, the bootstrap seed's
// first-assigned rank and the fabric's default crisis arbiter — starts a
// replacement that joins through a surviving member, and demands the
// final windows match the failure-free oracle bit for bit with the seed
// serving zero frames after bootstrap (for the rank-0 case the seed is
// closed outright before the kill, so no coordinator is even alive).

import (
	"os"
	"os/exec"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/transport"
)

// spawnFabricWorker launches one symmetric worker joining through addr.
func spawnFabricWorker(t *testing.T, addr string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestMain")
	cmd.Env = append(os.Environ(), fabricWorkerEnv+"="+addr)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawn fabric worker: %v", err)
	}
	return cmd
}

// awaitFabricBootstrap spawns the workers one at a time (so OS process i
// holds rank i) and returns the bootstrapped membership.
func awaitFabricBootstrap(t *testing.T, seed *fabric.Seed, ranks int) ([]*exec.Cmd, []fabric.Member) {
	t.Helper()
	procs := make([]*exec.Cmd, ranks)
	for i := range procs {
		procs[i] = spawnFabricWorker(t, seed.Addr())
		deadline := time.Now().Add(30 * time.Second)
		for seed.Joined() < i+1 {
			if time.Now().After(deadline) {
				t.Fatalf("worker %d did not join within 30s", i)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if ms := seed.Members(); len(ms) == ranks {
			return procs, ms
		}
		if time.Now().After(deadline) {
			t.Fatalf("bootstrap rendezvous did not complete within 30s")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// awaitWatermark polls the member at addr until every live rank's
// watermark (completed epochs) reaches wm — "the run is mid-flight".
func awaitWatermark(t *testing.T, addr string, wm int) {
	t.Helper()
	d := transport.NetDialer{}
	deadline := time.Now().Add(60 * time.Second)
	for {
		ms, _, err := fabric.FetchMembers(d, addr)
		if err == nil && len(ms) > 0 {
			min := int(^uint(0) >> 1)
			for _, m := range ms {
				if m.Alive && m.Watermark < min {
					min = m.Watermark
				}
			}
			if min >= wm {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("fabric never reached watermark %d (last err %v)", wm, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// smokeTuning is the fabric timing for the multi-process smokes: a
// kill -9 is detected instantly through the TCP reset, so the lease is
// pure backstop and can be generous — the full test suite runs many
// packages in parallel and a starved worker process must not read as a
// death.
var smokeTuning = fabric.Tuning{
	LeaseInterval:  250 * time.Millisecond,
	LeaseMiss:      40, // 10s of patience before a silent peer is condemned
	GossipInterval: 25 * time.Millisecond,
}

// TestClusterCoordinatorlessKill9 is the symmetric fabric's acceptance
// test: a multi-rank tcp run survives kill -9 of any single rank via
// peer-to-peer causal replay, with the seed's frame counter frozen after
// bootstrap (steady state makes zero coordinator round trips).
func TestClusterCoordinatorlessKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process fabric smoke skipped in -short")
	}
	wl := Workload{Ranks: 4, Phases: 10, InsertsPerPhase: 4, PhaseDelay: 100 * time.Millisecond, Mode: ModeCausal}
	for _, tc := range []struct {
		name      string
		victim    int
		closeSeed bool // close the seed before the kill: no coordinator alive at all
	}{
		{"victim-rank0-seed-closed", 0, true},
		{"victim-last-seed-idle", wl.Ranks - 1, false},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			seed, err := NewFabricSeed(Config{Listen: "127.0.0.1:0", Workload: wl, Fabric: smokeTuning})
			if err != nil {
				t.Fatalf("fabric seed: %v", err)
			}
			defer seed.Close()
			procs, members := awaitFabricBootstrap(t, seed, wl.Ranks)
			for _, p := range procs {
				defer p.Process.Kill()
			}
			frames := seed.FramesServed()
			if frames != uint64(wl.Ranks) {
				t.Fatalf("bootstrap served %d frames, want exactly %d (one per join)", frames, wl.Ranks)
			}
			if tc.closeSeed {
				seed.Close()
			}
			survivor := members[(tc.victim+1)%wl.Ranks].Addr

			awaitWatermark(t, survivor, 2)
			if err := procs[tc.victim].Process.Kill(); err != nil { // SIGKILL
				t.Fatalf("kill rank %d: %v", tc.victim, err)
			}
			procs[tc.victim].Wait()
			t.Logf("killed rank %d, spawning replacement via %s", tc.victim, survivor)
			repl := spawnFabricWorker(t, survivor)
			defer repl.Process.Kill()

			got, err := CollectFabric(survivor, wl, 90*time.Second)
			if err != nil {
				t.Fatalf("collect: %v", err)
			}
			compareToOracle(t, wl, got)

			// The recovery really was a fabric crisis: the victim's rank
			// must be back under a bumped incarnation.
			ms, _, err := fabric.FetchMembers(transport.NetDialer{}, survivor)
			if err != nil {
				t.Fatalf("members after recovery: %v", err)
			}
			for _, m := range ms {
				if m.Rank == tc.victim {
					if !m.Alive || m.Incarnation < 1 {
						t.Fatalf("victim rank %d after recovery: %+v", tc.victim, m)
					}
				}
			}
			if !tc.closeSeed {
				if after := seed.FramesServed(); after != frames {
					t.Fatalf("seed served %d frames after bootstrap — steady state is not coordinatorless", after-frames)
				}
			}

			ShutdownFabric(survivor)
			for i, p := range procs {
				if i == tc.victim {
					continue
				}
				if err := p.Wait(); err != nil {
					t.Fatalf("survivor rank %d exited: %v", i, err)
				}
			}
			if err := repl.Wait(); err != nil {
				t.Fatalf("replacement exited: %v", err)
			}
		})
	}
}

// TestClusterFabricFaultFree runs the symmetric fabric to completion
// with no faults: bit-identical windows, zero recoveries, frozen seed.
func TestClusterFabricFaultFree(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process fabric smoke skipped in -short")
	}
	wl := Workload{Ranks: 4, Phases: 6, InsertsPerPhase: 5, Mode: ModeCausal}
	seed, err := NewFabricSeed(Config{Listen: "127.0.0.1:0", Workload: wl, Fabric: smokeTuning})
	if err != nil {
		t.Fatalf("fabric seed: %v", err)
	}
	defer seed.Close()
	procs, members := awaitFabricBootstrap(t, seed, wl.Ranks)
	for _, p := range procs {
		defer p.Process.Kill()
	}
	frames := seed.FramesServed()
	got, err := CollectFabric(members[0].Addr, wl, 60*time.Second)
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	compareToOracle(t, wl, got)
	if after := seed.FramesServed(); after != frames {
		t.Fatalf("seed served %d frames after bootstrap", after-frames)
	}
	ms, _, err := fabric.FetchMembers(transport.NetDialer{}, members[0].Addr)
	if err != nil {
		t.Fatalf("members: %v", err)
	}
	for _, m := range ms {
		if !m.Alive || m.Incarnation != 0 {
			t.Fatalf("fault-free run perturbed membership: %+v", m)
		}
	}
	ShutdownFabric(members[0].Addr)
	for i, p := range procs {
		if err := p.Wait(); err != nil {
			t.Fatalf("rank %d exited: %v", i, err)
		}
	}
}
