package cluster

// Coordinatorless kill -9 smoke: N worker processes bootstrap through a
// seed, then run the causal workload entirely peer-to-peer. The test
// SIGKILLs a live rank mid-run — including rank 0, the bootstrap seed's
// first-assigned rank and the fabric's default crisis arbiter — starts a
// replacement that joins through a surviving member, and demands the
// final windows match the failure-free oracle bit for bit with the seed
// serving zero frames after bootstrap (for the rank-0 case the seed is
// closed outright before the kill, so no coordinator is even alive).

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/transport"
)

// spawnFabricWorker launches one symmetric worker joining through addr;
// extraEnv entries ("KEY=value") arm worker-side knobs such as the debug
// endpoint directory.
func spawnFabricWorker(t *testing.T, addr string, extraEnv ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestMain")
	cmd.Env = append(os.Environ(), fabricWorkerEnv+"="+addr)
	cmd.Env = append(cmd.Env, extraEnv...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawn fabric worker: %v", err)
	}
	return cmd
}

// awaitFabricBootstrap spawns the workers one at a time (so OS process i
// holds rank i) and returns the bootstrapped membership.
func awaitFabricBootstrap(t *testing.T, seed *fabric.Seed, ranks int, extraEnv ...string) ([]*exec.Cmd, []fabric.Member) {
	t.Helper()
	procs := make([]*exec.Cmd, ranks)
	for i := range procs {
		procs[i] = spawnFabricWorker(t, seed.Addr(), extraEnv...)
		deadline := time.Now().Add(30 * time.Second)
		for seed.Joined() < i+1 {
			if time.Now().After(deadline) {
				t.Fatalf("worker %d did not join within 30s", i)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if ms := seed.Members(); len(ms) == ranks {
			return procs, ms
		}
		if time.Now().After(deadline) {
			t.Fatalf("bootstrap rendezvous did not complete within 30s")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// awaitWatermark polls the member at addr until every live rank's
// watermark (completed epochs) reaches wm — "the run is mid-flight".
func awaitWatermark(t *testing.T, addr string, wm int) {
	t.Helper()
	d := transport.NetDialer{}
	deadline := time.Now().Add(60 * time.Second)
	for {
		ms, _, err := fabric.FetchMembers(d, addr)
		if err == nil && len(ms) > 0 {
			min := int(^uint(0) >> 1)
			for _, m := range ms {
				if m.Alive && m.Watermark < min {
					min = m.Watermark
				}
			}
			if min >= wm {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("fabric never reached watermark %d (last err %v)", wm, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// scrapeFabricDebug reads every rank's advertised debug address from
// dir and scrapes its Prometheus endpoint, the same way the chaos
// harness scrape (scripts/check_metrics.sh) does.
func scrapeFabricDebug(t *testing.T, dir string, ranks int) map[int]map[string]float64 {
	t.Helper()
	byRank := make(map[int]map[string]float64, ranks)
	for r := 0; r < ranks; r++ {
		data, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("rank%d.addr", r)))
		if err != nil {
			t.Fatalf("rank %d advertised no debug address: %v", r, err)
		}
		addr := strings.TrimSpace(string(data))
		samples, err := obs.Scrape(addr)
		if err != nil {
			t.Fatalf("scrape rank %d at %s: %v", r, addr, err)
		}
		byRank[r] = samples
	}
	return byRank
}

// smokeTuning is the fabric timing for the multi-process smokes: a
// kill -9 is detected instantly through the TCP reset, so the lease is
// pure backstop and can be generous — the full test suite runs many
// packages in parallel and a starved worker process must not read as a
// death.
var smokeTuning = fabric.Tuning{
	LeaseInterval:  250 * time.Millisecond,
	LeaseMiss:      40, // 10s of patience before a silent peer is condemned
	GossipInterval: 25 * time.Millisecond,
}

// TestClusterCoordinatorlessKill9 is the symmetric fabric's acceptance
// test: a multi-rank tcp run survives kill -9 of any single rank via
// peer-to-peer causal replay, with the seed's frame counter frozen after
// bootstrap (steady state makes zero coordinator round trips).
func TestClusterCoordinatorlessKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process fabric smoke skipped in -short")
	}
	wl := Workload{Ranks: 4, Phases: 10, InsertsPerPhase: 4, PhaseDelay: 100 * time.Millisecond, Mode: ModeCausal}
	for _, tc := range []struct {
		name      string
		victim    int
		closeSeed bool // close the seed before the kill: no coordinator alive at all
	}{
		{"victim-rank0-seed-closed", 0, true},
		{"victim-last-seed-idle", wl.Ranks - 1, false},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			seed, err := NewFabricSeed(Config{Listen: "127.0.0.1:0", Workload: wl, Fabric: smokeTuning})
			if err != nil {
				t.Fatalf("fabric seed: %v", err)
			}
			defer seed.Close()
			// Every worker binds a debug endpoint and dumps its flight ring
			// on crisis close; the test scrapes all of it post-run.
			debugDir := t.TempDir()
			procs, members := awaitFabricBootstrap(t, seed, wl.Ranks,
				obs.EnvDebugDir+"="+debugDir, obs.EnvFlightDir+"="+debugDir)
			for _, p := range procs {
				defer reap(p)
			}
			frames := seed.FramesServed()
			if frames != uint64(wl.Ranks) {
				t.Fatalf("bootstrap served %d frames, want exactly %d (one per join)", frames, wl.Ranks)
			}
			if tc.closeSeed {
				seed.Close()
			}
			survivor := members[(tc.victim+1)%wl.Ranks].Addr

			awaitWatermark(t, survivor, 2)
			if err := procs[tc.victim].Process.Kill(); err != nil { // SIGKILL
				t.Fatalf("kill rank %d: %v", tc.victim, err)
			}
			procs[tc.victim].Wait()
			t.Logf("killed rank %d, spawning replacement via %s", tc.victim, survivor)
			repl := spawnFabricWorker(t, survivor,
				obs.EnvDebugDir+"="+debugDir, obs.EnvFlightDir+"="+debugDir)
			defer reap(repl)

			got, err := CollectFabric(survivor, wl, 90*time.Second)
			if err != nil {
				t.Fatalf("collect: %v", err)
			}
			compareToOracle(t, wl, got)

			// The recovery really was a fabric crisis: the victim's rank
			// must be back under a bumped incarnation.
			ms, _, err := fabric.FetchMembers(transport.NetDialer{}, survivor)
			if err != nil {
				t.Fatalf("members after recovery: %v", err)
			}
			for _, m := range ms {
				if m.Rank == tc.victim {
					if !m.Alive || m.Incarnation < 1 {
						t.Fatalf("victim rank %d after recovery: %+v", tc.victim, m)
					}
				}
			}
			if !tc.closeSeed {
				if after := seed.FramesServed(); after != frames {
					t.Fatalf("seed served %d frames after bootstrap — steady state is not coordinatorless", after-frames)
				}
			}

			// Scrape every rank's live debug endpoint (the workers still
			// serve until the shutdown notify) and demand the recovery left
			// a full crisis timeline: nonzero span durations for every
			// stage on at least one rank (the crisis arbiter).
			byRank := scrapeFabricDebug(t, debugDir, wl.Ranks)
			t.Logf("per-rank metrics report:\n%s", obs.FormatReport(byRank))
			arbiter := -1
			for r, samples := range byRank {
				ok := true
				for _, st := range obs.CrisisStages {
					if samples[obs.PromName(st.HistName())+"_sum"] <= 0 {
						ok = false
						break
					}
				}
				if ok {
					arbiter = r
				}
			}
			if arbiter < 0 {
				t.Fatalf("no rank exposes nonzero crisis span durations for every stage:\n%s", obs.FormatReport(byRank))
			}
			if byRank[arbiter]["fabric_crises"] < 1 {
				t.Fatalf("arbiter rank %d counted no crisis", arbiter)
			}
			t.Logf("crisis timeline on arbiter rank %d: quiesce=%.0fus gather=%.0fus rebuild=%.0fus install=%.0fus total=%.0fus",
				arbiter,
				byRank[arbiter]["crisis_quiesce_us_sum"], byRank[arbiter]["crisis_gather_us_sum"],
				byRank[arbiter]["crisis_rebuild_us_sum"], byRank[arbiter]["crisis_install_us_sum"],
				byRank[arbiter]["crisis_total_us_sum"])
			// The crisis close dumped flight rings to disk; the arbiter's
			// ring carries the staged crisis events.
			dumps, err := filepath.Glob(filepath.Join(debugDir, "flightrec-rank*-crisis*.jsonl"))
			if err != nil || len(dumps) == 0 {
				t.Fatalf("no flight-recorder dumps in %s (err %v)", debugDir, err)
			}
			sawCrisis := false
			for _, path := range dumps {
				data, err := os.ReadFile(path)
				if err != nil || len(data) == 0 {
					t.Fatalf("flight dump %s unreadable or empty (err %v)", path, err)
				}
				sawCrisis = sawCrisis || strings.Contains(string(data), `"ev":"crisis"`)
			}
			if !sawCrisis {
				t.Fatalf("no flight dump in %s carries crisis events: %v", debugDir, dumps)
			}

			ShutdownFabric(survivor)
			for i, p := range procs {
				if i == tc.victim {
					continue
				}
				if err := p.Wait(); err != nil {
					t.Fatalf("survivor rank %d exited: %v", i, err)
				}
			}
			if err := repl.Wait(); err != nil {
				t.Fatalf("replacement exited: %v", err)
			}
		})
	}
}

// TestClusterFabricFaultFree runs the symmetric fabric to completion
// with no faults: bit-identical windows, zero recoveries, frozen seed.
func TestClusterFabricFaultFree(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process fabric smoke skipped in -short")
	}
	wl := Workload{Ranks: 4, Phases: 6, InsertsPerPhase: 5, Mode: ModeCausal}
	seed, err := NewFabricSeed(Config{Listen: "127.0.0.1:0", Workload: wl, Fabric: smokeTuning})
	if err != nil {
		t.Fatalf("fabric seed: %v", err)
	}
	defer seed.Close()
	procs, members := awaitFabricBootstrap(t, seed, wl.Ranks)
	for _, p := range procs {
		defer reap(p)
	}
	frames := seed.FramesServed()
	got, err := CollectFabric(members[0].Addr, wl, 60*time.Second)
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	compareToOracle(t, wl, got)
	if after := seed.FramesServed(); after != frames {
		t.Fatalf("seed served %d frames after bootstrap", after-frames)
	}
	ms, _, err := fabric.FetchMembers(transport.NetDialer{}, members[0].Addr)
	if err != nil {
		t.Fatalf("members: %v", err)
	}
	for _, m := range ms {
		if !m.Alive || m.Incarnation != 0 {
			t.Fatalf("fault-free run perturbed membership: %+v", m)
		}
	}
	ShutdownFabric(members[0].Addr)
	for i, p := range procs {
		if err := p.Wait(); err != nil {
			t.Fatalf("rank %d exited: %v", i, err)
		}
	}
}
