// Package cluster is the process-per-rank, peer-to-peer runtime: a
// Coordinator process arbitrates membership and crises and hosts the
// simulated runtime fabric (windows, virtual clocks, barriers), while
// one worker process per rank drives its rank's computation over the
// epoch-batched wire protocol AND is the residence of that rank's ftRMA
// recovery state. Each rank's access-log records and N/M flags live in
// its own worker (fed by log-append frames, fetched during recovery via
// log-fetch request/responses), and every checkpoint-parity (group,
// level) is hosted at an elected worker rank (fed by parity-fold frames
// — the shard arithmetic runs where the shards live; re-seeded onto a
// new host via parity-handoff frames when its host dies). Ranks live in
// separate OS processes and die for real: a kill -9 drops the
// connection, the heartbeat failure detector condemns the rank, the
// coordinator maps the death onto the runtime's fail-stop Kill, and the
// ftRMA recovery path — wire log gathering, M/N-flag inspection, parity
// rebuild + re-election for state that died with its host, parity
// reconstruction for the victim, and (for this BSP workload) the
// coordinated rollback — restores a consistent cut that the surviving
// and replacement workers re-execute to a bit-identical final state.
// See docs/ARCHITECTURE.md for the who-hosts-what table and
// docs/WIRE.md for every frame.
//
// # State residence invariants
//
//   - The op pipeline opens only after the initial membership is
//     complete and the recovery state is distributed (Coordinator.Started);
//     a record can never target a residence that does not exist.
//   - Host-state writes towards a dead residence degrade silently
//     (records and shards die with their process — the paper's model);
//     writes towards an alive-but-unbound rank wait for its replacement
//     worker's join. Nothing fails before the crisis protocol Kills the
//     rank at a quiescent point.
//   - After a completed run, PeerHosted() reports true: the coordinator
//     holds no log payload and no parity shards of its own.
//
// # Membership
//
// Workers join with a handshake that assigns the lowest free rank id; a
// replacement for a failed rank inherits its id and resume phase. The
// bulk-synchronous rendezvous needs no extra start barrier: a worker that
// races ahead simply blocks in its first gsync until the last rank joins.
//
// # The crisis protocol
//
// Recovery must run on a quiescent, consistent machine. When a worker
// dies the coordinator first lets the system drain naturally: surviving
// workers keep executing (the victim's window is still hosted, so nothing
// fails) until each blocks in the phase gsync that the victim can no
// longer join, or parks. Only then does the coordinator — with every rank
// provably inside or outside the collective, none mid-decision — suspend
// the coordinated-checkpoint schedule, impersonate the dead rank's
// barrier arrival with a raw runtime gsync so the blocked round drains
// without checkpointing, Kill the rank, and run Recover. The suspension
// ordering guarantees the rolled-back cut is always a completed
// phase-boundary checkpoint round, which is exactly what BSP
// re-execution needs.
//
// # Recovery paths
//
// Recovery takes the paper's cheap path whenever it genuinely applies:
// if the victim's gathered flags are clean (no in-flight get, no
// combining access — §3.2.3/§4.2), the coordinator respawns the rank in
// the runtime, admits a replacement worker mid-crisis, streams the
// causally ordered log records to it over the wire (replay-install
// frames), and the replacement drives its own catch-up — alternating a
// replay frame per phase with re-execution of its deterministic phase
// work, Algorithm 2's replay/recompute interleaving — while the
// survivors stay parked; nothing rolls back. Only when ftrma.Recover
// reports ErrFallback (or a concurrent failure) does the cluster take
// the coordinated rollback, re-executing from the last coordinated cut.
// Stats().CausalRecoveries / Fallbacks distinguish the paths.
//
// # Lock-aware crisis
//
// The crisis protocol quiesces at collective boundaries: gsync and
// barrier both drain through the shared rendezvous the victim's
// impersonated arrival completes. A rank that dies between a Lock and
// its Unlock would leave a survivor's blocked Lock un-drainable, so
// condemnation force-releases every structure and user lock the dead
// rank holds anywhere (World.ReleaseLocksHeldBy), and the rendezvous
// wait re-sweeps on every wake — a condemned rank's own parked Lock
// request may acquire a freshly released lock and must be broken again.
// Cluster workloads may therefore lock across frames; the shipped
// ModeLocked workload does exactly that to prove it.
package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/fabric"
	"repro/internal/ftrma"
	"repro/internal/obs"
	"repro/internal/rma"
	"repro/internal/transport/wire"
)

// debugCrisis dumps crisis-protocol decisions to stdout (tests flip it).
var debugCrisis = false

// rankStatus is one rank slot's membership state.
type rankStatus int

const (
	rankEmpty     rankStatus = iota // no worker bound (initial, or awaiting a replacement)
	rankJoined                      // worker connected and presumed alive
	rankCondemned                   // failure detector fired; recovery pending
	rankFinished                    // all phases completed
)

// TransportConfig groups the wire-level liveness knobs (Config.Transport):
// the heartbeat beacon and the failure detector's patience.
type TransportConfig struct {
	// HeartbeatInterval is the liveness beacon period on worker
	// connections; with HeartbeatMiss it sets the failure detector's
	// patience. Defaults: 50ms and 10 (500ms of silence condemns a rank;
	// a kill -9's connection reset is usually caught instantly).
	HeartbeatInterval time.Duration
	HeartbeatMiss     int
}

// Config describes a Coordinator.
type Config struct {
	// Listen is the address workers dial ("127.0.0.1:0" for tests).
	// Alternatively supply a pre-bound Listener.
	Listen   string
	Listener net.Listener
	// Workload is the bulk-synchronous workload the cluster executes.
	Workload Workload
	// FT overrides the ftRMA protocol configuration; nil selects the
	// cluster default (logging on, streaming demand checkpoints, a
	// coordinated checkpoint at every phase gsync).
	FT *ftrma.Config
	// Transport groups the wire-level liveness knobs.
	Transport TransportConfig
	// Fabric groups the symmetric (coordinatorless) runtime's membership
	// knobs; only the fabric path (NewFabricSeed / RunFabricWorker) reads
	// them.
	Fabric fabric.Tuning
	// HeartbeatInterval is deprecated: set Transport.HeartbeatInterval.
	HeartbeatInterval time.Duration
	// HeartbeatMiss is deprecated: set Transport.HeartbeatMiss.
	HeartbeatMiss int
	// Timeout aborts the whole run if it has not completed in time (a
	// missing replacement worker parks the cluster forever otherwise).
	// Zero means no limit.
	Timeout time.Duration
}

func (c Config) withDefaults() Config {
	// One-release deprecation shim: flat heartbeat knobs fold into the
	// Transport group where the group is unset.
	if c.Transport.HeartbeatInterval == 0 {
		c.Transport.HeartbeatInterval = c.HeartbeatInterval
	}
	if c.Transport.HeartbeatMiss == 0 {
		c.Transport.HeartbeatMiss = c.HeartbeatMiss
	}
	if c.Transport.HeartbeatInterval == 0 {
		c.Transport.HeartbeatInterval = 50 * time.Millisecond
	}
	if c.Transport.HeartbeatMiss == 0 {
		c.Transport.HeartbeatMiss = 10
	}
	c.HeartbeatInterval = c.Transport.HeartbeatInterval
	c.HeartbeatMiss = c.Transport.HeartbeatMiss
	c.Fabric = c.Fabric.WithDefaults()
	return c
}

// Validate rejects nonsensical configurations with descriptive errors.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Listener == nil && c.Listen == "" {
		return errors.New("cluster: need a Listen address or Listener for worker connections")
	}
	if c.Listener == nil {
		if _, _, err := net.SplitHostPort(c.Listen); err != nil {
			return fmt.Errorf("cluster: listen address %q: %v", c.Listen, err)
		}
	}
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	if c.Transport.HeartbeatInterval < 0 {
		return fmt.Errorf("cluster: negative heartbeat interval (Transport.HeartbeatInterval) %v", c.Transport.HeartbeatInterval)
	}
	if c.Transport.HeartbeatMiss < 1 {
		return fmt.Errorf("cluster: Transport.HeartbeatMiss %d, need at least 1 interval of patience", c.Transport.HeartbeatMiss)
	}
	if c.Timeout < 0 {
		return fmt.Errorf("cluster: negative timeout %v", c.Timeout)
	}
	if err := c.Fabric.Validate(); err != nil {
		return err
	}
	if c.FT != nil {
		if err := c.FT.Validate(c.Workload.Ranks); err != nil {
			return err
		}
	}
	return nil
}

// defaultFT is the cluster's ftRMA configuration: full access logging, a
// coordinated checkpoint at every phase boundary (tiny fixed interval
// under the Gsync scheme), and a small log budget so demand checkpoints
// and their streaming pipeline are exercised by real traffic.
func defaultFT(n int) ftrma.Config {
	groups := 2
	if n < 4 {
		groups = 1
	}
	return ftrma.Config{
		Groups:            groups,
		ChecksumsPerGroup: 1,
		Log:               ftrma.LogConfig{Puts: true, Gets: true, BudgetBytes: 2 << 10},
		Stream:            ftrma.StreamConfig{Demand: true, ChunkBytes: 512},
		Scheme:            ftrma.CCGsync,
		FixedInterval:     1e-12,
	}
}

// hostGet is a get issued host-side whose value is reported to the worker
// at the epoch close that defines it.
type hostGet struct {
	seq  uint64
	dest []uint64
}

// session is one worker connection's server state.
type session struct {
	c        *Coordinator
	conn     *wire.Conn
	rank     int
	pendGets map[int][]hostGet
}

// Coordinator hosts the world and serves the workers.
type Coordinator struct {
	cfg   Config
	wl    Workload
	w     *rma.World
	sys   *ftrma.System
	obs   *obs.Registry
	ln    net.Listener
	ftCfg ftrma.Config

	// sessMu guards the rank -> session binding alone. It is a leaf lock:
	// the ftRMA recovery path calls back into sessionConn/sessionAlive
	// while the coordinator holds mu, so the binding must be readable
	// without mu.
	sessMu   sync.Mutex
	sessions []*session

	// hostingOnce fires the peer-hosting installation exactly once, when
	// the initial membership completes.
	hostingOnce sync.Once

	mu      sync.Mutex
	cond    *sync.Cond
	started bool // initial membership complete, state distributed, ops admitted
	status  []rankStatus
	busy    []bool
	inGsync []bool
	parked  []bool
	gsyncs  []int
	resume  int
	// generation counts completed rollbacks. Every worker frame carries
	// the generation its sender last synchronized with; a stale frame is
	// bounced to Await even after the crisis window has closed — without
	// this, a survivor whose drained gsync "succeeded" during the crisis
	// would charge ahead into a phase the rollback just erased.
	generation uint64
	crisis     bool
	doneErr    error

	// Causal-replay crisis state (all mu-guarded). While a causal
	// recovery is in flight, crisis stays true and replaying names the
	// victim rank: its replacement worker is the only rank admitted
	// through beginOp, catching up from replayFrom (the restored
	// checkpoint's phase) to replayTarget (the survivors' phase) before
	// the crisis lifts. replayLogs holds the gathered records until they
	// are streamed to the replacement's residence; replayDone flips when
	// the replacement's done frame has been finalized.
	replaying    int
	replayFrom   int
	replayTarget int
	replayLogs   *ftrma.ReplayLogs
	replayDone   bool

	// watchdog aborts the run at Config.Timeout; it is stopped when the
	// run completes so a clean run does not leave the timer's goroutine
	// (and its reference to the whole coordinator) behind.
	watchdog *time.Timer

	deaths chan int
}

// NewCoordinator validates cfg, builds the hosted world and protocol
// state, binds the listener, and starts accepting workers.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	wl := cfg.Workload
	ftCfg := defaultFT(wl.Ranks)
	if cfg.FT != nil {
		ftCfg = *cfg.FT
	}
	// One user lock beyond the standard structures: the ModeLocked
	// workload's critical sections (and the lock-aware crisis tests) use
	// it; it costs nothing when unused.
	// One registry for the whole coordinator process: the hosted world's
	// fault events, the ftRMA protocol counters, and the recovery spans
	// all land in it, and rankd's -debug-addr endpoint serves it.
	reg := ftCfg.Metrics
	if reg == nil {
		reg = obs.New(-1)
		ftCfg.Metrics = reg
	}
	w := rma.NewWorld(rma.Config{N: wl.Ranks, WindowWords: wl.WindowWords(), ExtraLocks: 1, Metrics: reg})
	sys, err := ftrma.NewSystem(w, ftCfg)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:       cfg,
		wl:        wl,
		w:         w,
		sys:       sys,
		obs:       reg,
		ftCfg:     ftCfg,
		sessions:  make([]*session, wl.Ranks),
		status:    make([]rankStatus, wl.Ranks),
		busy:      make([]bool, wl.Ranks),
		inGsync:   make([]bool, wl.Ranks),
		parked:    make([]bool, wl.Ranks),
		gsyncs:    make([]int, wl.Ranks),
		replaying: -1,
		deaths:    make(chan int, 4*wl.Ranks),
	}
	c.cond = sync.NewCond(&c.mu)
	c.ln = cfg.Listener
	if c.ln == nil {
		ln, err := net.Listen("tcp", cfg.Listen)
		if err != nil {
			return nil, fmt.Errorf("cluster: listen %s: %w", cfg.Listen, err)
		}
		c.ln = ln
	}
	go c.acceptLoop()
	go c.controller()
	if cfg.Timeout > 0 {
		c.watchdog = time.AfterFunc(cfg.Timeout, func() {
			err := fmt.Errorf("cluster: run exceeded timeout %v", cfg.Timeout)
			// fatal needs mu, and the very hang the watchdog exists to
			// abort can be a coordinator goroutine holding mu across a
			// host call towards a live-but-unresponsive worker — the
			// connection's ReadTimeout never fires while heartbeats keep
			// arriving, so the call (and mu) wedge forever. If fatal
			// cannot land within a grace period, down every worker
			// connection: the wedged call fails with ErrDown, its holder
			// unwinds and releases mu, and the abort proceeds.
			done := make(chan struct{})
			go func() {
				c.fatal(err)
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(2 * time.Second):
				c.downSessions()
				<-done
			}
		})
	}
	return c, nil
}

// Addr returns the bound listen address.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Stats returns the hosted protocol's counters (the smoke test asserts a
// genuine recovery happened).
func (c *Coordinator) Stats() ftrma.Stats { return c.sys.Stats() }

// Obs returns the coordinator's metrics registry — the world's fault
// events, the ftRMA protocol instruments, and (after a Stats read) the
// ftrma.stats.* gauges. rankd serves it on -debug-addr.
func (c *Coordinator) Obs() *obs.Registry {
	c.sys.Stats() // refresh the stats gauges before a scrape
	return c.obs
}

// PhasesDone returns how many phase gsyncs rank r has completed — the
// kill scheduler of the smoke test watches it.
func (c *Coordinator) PhasesDone(r int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gsyncs[r]
}

// Close shuts the listener down. Worker connections die with their
// sessions; call after Run returns.
func (c *Coordinator) Close() {
	if c.watchdog != nil {
		c.watchdog.Stop()
	}
	c.ln.Close()
}

func (c *Coordinator) fatal(err error) {
	c.mu.Lock()
	if c.doneErr == nil && c.countFinished() < c.wl.Ranks {
		c.doneErr = err
	}
	c.mu.Unlock()
	c.cond.Broadcast()
}

// Run blocks until every rank finishes (returning each rank's final
// window contents) or the run aborts.
func (c *Coordinator) Run() ([][]uint64, error) {
	c.mu.Lock()
	for c.doneErr == nil && c.countFinished() < c.wl.Ranks {
		c.cond.Wait()
	}
	err := c.doneErr
	c.mu.Unlock()
	if c.watchdog != nil {
		// The run is over either way; a clean run must not leave the
		// timeout goroutine (and its coordinator reference) behind.
		c.watchdog.Stop()
	}
	c.cond.Broadcast() // release finish-parked sessions
	if err != nil {
		return nil, err
	}
	out := make([][]uint64, c.wl.Ranks)
	for r := range out {
		out[r] = c.sys.Process(r).Inner().ReadAt(0, c.wl.WindowWords())
	}
	return out, nil
}

func (c *Coordinator) countFinished() int {
	n := 0
	for _, s := range c.status {
		if s == rankFinished {
			n++
		}
	}
	return n
}

// ---- Accept / sessions ------------------------------------------------------

func (c *Coordinator) acceptLoop() {
	for {
		nc, err := c.ln.Accept()
		if err != nil {
			return
		}
		sess := &session{c: c, rank: -1, pendGets: make(map[int][]hostGet)}
		// wire.New serves frames immediately; hold them until sess.conn is
		// published (the join handler initializes the worker's log
		// residence over that very connection).
		ready := make(chan struct{})
		sess.conn = wire.New(nc, wire.Config{
			Handler: func(t byte, payload []byte) (byte, []byte, error) {
				<-ready
				return sess.handle(t, payload)
			},
			Heartbeat:   c.cfg.Transport.HeartbeatInterval,
			ReadTimeout: time.Duration(c.cfg.Transport.HeartbeatMiss) * c.cfg.Transport.HeartbeatInterval,
			OnDown: func(error) {
				c.mu.Lock()
				r := sess.rank
				c.mu.Unlock()
				c.unbindSession(r, sess)
				if r >= 0 {
					select {
					case c.deaths <- r:
					default:
					}
					// Wake any staging wait so it absorbs this death.
					c.cond.Broadcast()
				}
			},
		})
		close(ready)
	}
}

var errCrisis = wire.RemoteFail{Code: wire.CodeCrisis, Msg: "recovery pending; await and resume"}

// beginOp admits one API execution for rank r (a crisis, a stale
// rollback generation, or an unbound rank denies it) and marks the rank
// busy; the c.mu bracket also publishes the session's state between the
// per-frame goroutines.
func (c *Coordinator) beginOp(r int, gsync bool, gen uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	// The op pipeline opens only once the initial membership is complete
	// and the recovery state has been distributed to its peer hosts: an
	// early worker's first op must not log into a residence that does not
	// exist yet.
	for !c.started && c.doneErr == nil {
		c.cond.Wait()
	}
	if c.doneErr != nil {
		return wire.RemoteFail{Code: wire.CodeGeneric, Msg: c.doneErr.Error()}
	}
	// A crisis bounces every rank except the causal replacement: the
	// replaying rank's catch-up (replay frames interleaved with
	// re-executed phase work) is the crisis' whole business.
	if (c.crisis && r != c.replaying) || c.status[r] != rankJoined || gen != c.generation {
		return errCrisis
	}
	c.busy[r] = true
	c.inGsync[r] = gsync
	c.cond.Broadcast()
	return nil
}

func (c *Coordinator) endOp(r int) {
	c.mu.Lock()
	c.busy[r] = false
	c.inGsync[r] = false
	c.mu.Unlock()
	c.cond.Broadcast()
}

// bumpPhase records a completed phase gsync for the progress watchers.
func (c *Coordinator) bumpPhase(r int) {
	c.mu.Lock()
	c.gsyncs[r]++
	c.mu.Unlock()
	c.cond.Broadcast()
}

// exec runs one API execution for the session's rank, translating the
// runtime's fail-stop panics into the crisis protocol.
func (c *Coordinator) exec(sess *session, collective bool, gen uint64, fn func(p *ftrma.Process)) (err error) {
	if err := c.beginOp(sess.rank, collective, gen); err != nil {
		return err
	}
	defer func() {
		c.endOp(sess.rank)
		if e := recover(); e != nil {
			switch {
			case rma.IsKillUnwind(e):
				err = errCrisis
			default:
				if _, is := e.(rma.TargetFailedError); is {
					err = errCrisis
					return
				}
				err = wire.RemoteFail{Code: wire.CodeGeneric, Msg: fmt.Sprint(e)}
			}
		}
	}()
	fn(c.sys.Process(sess.rank))
	return nil
}

// handle serves one frame of the cluster protocol.
func (s *session) handle(t byte, payload []byte) (byte, []byte, error) {
	d := wire.NewDec(payload)
	switch t {
	case cJoin:
		return s.handleJoin()
	case cAwait:
		return s.handleAwait()
	}
	if s.rank < 0 {
		return 0, nil, wire.RemoteFail{Code: wire.CodeGeneric, Msg: "not joined"}
	}
	gen := d.U() // the rollback generation this frame was issued under
	if d.Failed() {
		return 0, nil, wire.RemoteFail{Code: wire.CodeGeneric, Msg: "malformed frame"}
	}
	switch t {
	case cFinish:
		return s.handleFinish(gen)
	case cBatch:
		return s.handleBatch(d, gen)
	case cAtomic:
		return s.handleAtomic(d, gen)
	case cSync:
		return s.handleSync(d, gen)
	case cLock:
		return s.handleLock(d, gen)
	case cLocal:
		return s.handleLocal(d, gen)
	case cReplay:
		return s.handleReplay(d, gen)
	}
	return 0, nil, wire.RemoteFail{Code: wire.CodeGeneric, Msg: fmt.Sprintf("unknown frame type %#x", t)}
}

// handleJoin assigns the lowest free rank (waiting out a pending
// recovery, so a replacement binds to the freshly respawned slot).
func (s *session) handleJoin() (byte, []byte, error) {
	c := s.c
	c.mu.Lock()
	for {
		if c.doneErr != nil {
			c.mu.Unlock()
			return 0, nil, wire.RemoteFail{Code: wire.CodeGeneric, Msg: c.doneErr.Error()}
		}
		r := -1
		if c.crisis {
			// Mid-crisis the only admissible join is the causal
			// replacement: the recovery loop freed exactly the replaying
			// rank's slot and is waiting for a worker to inherit it.
			if c.replaying >= 0 && c.status[c.replaying] == rankEmpty {
				r = c.replaying
			}
		} else {
			for i, st := range c.status {
				if st == rankEmpty {
					r = i
					break
				}
			}
		}
		if r >= 0 {
			c.status[r] = rankJoined
			s.rank = r
			resume := c.resume
			catchup := false
			if c.crisis && r == c.replaying {
				resume = c.replayFrom
				catchup = true
			}
			replayTo := c.replayTarget
			gen := c.generation
			full := true
			for _, st := range c.status {
				if st == rankEmpty {
					full = false
				}
			}
			c.mu.Unlock()
			c.cond.Broadcast()
			// Every worker — original or replacement — becomes the
			// residence of its rank's log records the moment it joins; a
			// replacement naturally starts empty, which is exactly the
			// post-rollback state of its rank. The residence is built
			// BEFORE the session is published: the moment bindSession
			// lands, other ranks' epoch closes may append here.
			if err := c.initLogHost(s); err != nil {
				return 0, nil, wire.RemoteFail{Code: wire.CodeGeneric, Msg: fmt.Sprintf("log residence init: %v", err)}
			}
			c.bindSession(r, s)
			if full {
				// Initial membership (or any later full house — the Once
				// makes repeats free): distribute the recovery state and
				// open the op pipeline.
				go c.hostingOnce.Do(c.startPeerHosting)
			}
			var e wire.Enc
			e.I(r)
			e.I(c.wl.Ranks)
			e.I(c.wl.WindowWords())
			e.I(resume)
			e.U(gen)
			e.I(c.wl.Ranks)
			e.I(c.wl.Phases)
			e.I(c.wl.InsertsPerPhase)
			e.I(c.wl.TableSlots)
			e.U(uint64(c.wl.PhaseDelay))
			e.B(byte(c.wl.Mode))
			if catchup {
				e.B(1)
				e.I(replayTo)
			} else {
				e.B(0)
				e.I(0)
			}
			return cJoin, e.Bytes(), nil
		}
		pending := c.crisis
		for _, st := range c.status {
			if st == rankCondemned {
				pending = true
			}
		}
		if r < 0 && !pending {
			c.mu.Unlock()
			return 0, nil, wire.RemoteFail{Code: wire.CodeGeneric, Msg: "cluster full"}
		}
		// A slot will free up once the pending recovery completes.
		c.cond.Wait()
	}
}

// handleAwait parks a crisis-bounced worker until the recovery completes
// and returns the restored phase.
func (s *session) handleAwait() (byte, []byte, error) {
	c := s.c
	c.mu.Lock()
	s.pendGets = make(map[int][]hostGet) // the aborted epoch is rolled back
	if s.rank >= 0 {
		c.parked[s.rank] = true
	}
	c.cond.Broadcast()
	for c.crisis && c.doneErr == nil {
		c.cond.Wait()
	}
	if s.rank >= 0 {
		c.parked[s.rank] = false
	}
	resume := c.resume
	gen := c.generation
	err := c.doneErr
	c.mu.Unlock()
	c.cond.Broadcast()
	if err != nil {
		return 0, nil, wire.RemoteFail{Code: wire.CodeGeneric, Msg: err.Error()}
	}
	var e wire.Enc
	e.I(resume)
	e.U(gen)
	return cAwait, e.Bytes(), nil
}

// handleFinish records completion and parks until every rank is done — or
// a late failure rolls the cluster back, in which case the worker resumes
// phases like everyone else.
func (s *session) handleFinish(gen uint64) (byte, []byte, error) {
	c := s.c
	c.mu.Lock()
	if s.rank < 0 || c.status[s.rank] != rankJoined || c.crisis || gen != c.generation {
		c.mu.Unlock()
		return 0, nil, errCrisis
	}
	c.status[s.rank] = rankFinished
	c.cond.Broadcast()
	for c.countFinished() < c.wl.Ranks && !c.crisis && c.doneErr == nil {
		c.cond.Wait()
	}
	if c.doneErr != nil {
		err := c.doneErr
		c.mu.Unlock()
		return 0, nil, wire.RemoteFail{Code: wire.CodeGeneric, Msg: err.Error()}
	}
	if c.crisis {
		c.status[s.rank] = rankJoined
		c.mu.Unlock()
		c.cond.Broadcast()
		return 0, nil, errCrisis
	}
	c.mu.Unlock()
	c.cond.Broadcast()
	return cFinish, nil, nil
}

func (s *session) handleBatch(d *wire.Dec, gen uint64) (byte, []byte, error) {
	target := d.I()
	closeMode := d.B()
	str := d.I()
	nops := d.I()
	if d.Failed() || nops > wire.MaxFrame/8 {
		return 0, nil, wire.RemoteFail{Code: wire.CodeGeneric, Msg: "malformed batch"}
	}
	type decOp struct {
		kind     byte
		red      uint8
		off, n   int
		localOff int
		seq      uint64
		data     []uint64
	}
	// Capacity capped: nops is wire-controlled and must not drive a large
	// allocation before the per-op decode has validated the payload.
	ops := make([]decOp, 0, min(nops, 1024))
	getWords := 0
	for i := 0; i < nops; i++ {
		kind := d.B()
		switch kind {
		case 2:
			op := decOp{kind: kind, off: d.I(), n: d.I()}
			op.localOff = d.I() - 1
			op.seq = d.U()
			getWords += op.n
			// The host allocates every get destination before the epoch
			// closes; bound the batch's total get volume by what one
			// reply frame could legally carry.
			if op.n > wire.MaxFrame/8 || getWords > wire.MaxFrame/8 {
				return 0, nil, wire.RemoteFail{Code: wire.CodeGeneric, Msg: "malformed get op"}
			}
			ops = append(ops, op)
		case 0, 1:
			op := decOp{kind: kind, red: d.B(), off: d.I()}
			op.data = d.Words()
			ops = append(ops, op)
		default:
			return 0, nil, wire.RemoteFail{Code: wire.CodeGeneric, Msg: "unknown batch op"}
		}
	}
	if d.Failed() {
		return 0, nil, wire.RemoteFail{Code: wire.CodeGeneric, Msg: "malformed batch op"}
	}
	var reply wire.Enc
	err := s.c.exec(s, false, gen, func(p *ftrma.Process) {
		for i := range ops {
			op := &ops[i]
			switch op.kind {
			case 0:
				p.Put(target, op.off, op.data)
			case 1:
				p.Accumulate(target, op.off, op.data, rma.ReduceOp(op.red))
			case 2:
				var dest []uint64
				if op.localOff >= 0 {
					dest = p.GetCopy(target, op.off, op.n, op.localOff)
				} else {
					dest = p.Get(target, op.off, op.n)
				}
				s.pendGets[target] = append(s.pendGets[target], hostGet{seq: op.seq, dest: dest})
			}
		}
		switch closeMode {
		case closeFlush:
			p.Flush(target)
		case closeUnlock:
			p.Unlock(target, str)
		}
		if closeMode != closeNone {
			s.encodeGets(&reply, target)
		}
	})
	if err != nil {
		return 0, nil, err
	}
	return cBatch, reply.Bytes(), nil
}

// encodeGets reports the now-defined gets towards target and clears them.
func (s *session) encodeGets(e *wire.Enc, target int) {
	gets := s.pendGets[target]
	delete(s.pendGets, target)
	e.I(len(gets))
	for _, g := range gets {
		e.U(g.seq)
		e.Words(g.dest)
	}
}

// encodeAllGets reports every pending get (a full epoch close).
func (s *session) encodeAllGets(e *wire.Enc) {
	total := 0
	for _, gets := range s.pendGets {
		total += len(gets)
	}
	e.I(total)
	for target, gets := range s.pendGets {
		for _, g := range gets {
			e.U(g.seq)
			e.Words(g.dest)
		}
		delete(s.pendGets, target)
	}
}

func (s *session) handleAtomic(d *wire.Dec, gen uint64) (byte, []byte, error) {
	kind := d.B()
	target := d.I()
	off := d.I()
	var old, new, operand uint64
	var red uint8
	var data []uint64
	switch kind {
	case atomCAS:
		old, new = d.W64(), d.W64()
	case atomFAO:
		operand, red = d.W64(), d.B()
	case atomGetAcc:
		red = d.B()
		data = d.Words()
	default:
		return 0, nil, wire.RemoteFail{Code: wire.CodeGeneric, Msg: "unknown atomic"}
	}
	if d.Failed() {
		return 0, nil, wire.RemoteFail{Code: wire.CodeGeneric, Msg: "malformed atomic"}
	}
	var reply wire.Enc
	err := s.c.exec(s, false, gen, func(p *ftrma.Process) {
		switch kind {
		case atomCAS:
			reply.W64(p.CompareAndSwap(target, off, old, new))
		case atomFAO:
			reply.W64(p.FetchAndOp(target, off, operand, rma.ReduceOp(red)))
		case atomGetAcc:
			reply.Words(p.GetAccumulate(target, off, data, rma.ReduceOp(red)))
		}
	})
	if err != nil {
		return 0, nil, err
	}
	return cAtomic, reply.Bytes(), nil
}

func (s *session) handleSync(d *wire.Dec, gen uint64) (byte, []byte, error) {
	kind := d.B()
	if d.Failed() {
		return 0, nil, wire.RemoteFail{Code: wire.CodeGeneric, Msg: "malformed sync"}
	}
	var reply wire.Enc
	err := s.c.exec(s, kind == syncGsync || kind == syncBarrier, gen, func(p *ftrma.Process) {
		switch kind {
		case syncFlushAll:
			p.FlushAll()
			s.encodeAllGets(&reply)
		case syncGsync:
			p.Gsync()
			s.encodeAllGets(&reply)
		case syncBarrier:
			p.Barrier()
		default:
			panic(fmt.Sprintf("unknown sync kind %d", kind))
		}
	})
	if err != nil {
		return 0, nil, err
	}
	if kind == syncGsync {
		s.c.bumpPhase(s.rank)
	}
	return cSync, reply.Bytes(), nil
}

func (s *session) handleLock(d *wire.Dec, gen uint64) (byte, []byte, error) {
	d.B() // reserved
	target := d.I()
	str := d.I()
	if d.Failed() {
		return 0, nil, wire.RemoteFail{Code: wire.CodeGeneric, Msg: "malformed lock"}
	}
	err := s.c.exec(s, false, gen, func(p *ftrma.Process) { p.Lock(target, str) })
	if err != nil {
		return 0, nil, err
	}
	return cLock, nil, nil
}

func (s *session) handleLocal(d *wire.Dec, gen uint64) (byte, []byte, error) {
	kind := d.B()
	var reply wire.Enc
	var off, n int
	var data []uint64
	var f float64
	switch kind {
	case localReadAt:
		off, n = d.I(), d.I()
	case localWriteAt:
		off = d.I()
		data = d.Words()
	case localCompute, localAdvance:
		f = d.F()
	}
	if d.Failed() {
		return 0, nil, wire.RemoteFail{Code: wire.CodeGeneric, Msg: "malformed local op"}
	}
	err := s.c.exec(s, false, gen, func(p *ftrma.Process) {
		switch kind {
		case localReadAt:
			reply.Words(p.ReadAt(off, n))
		case localWriteAt:
			p.WriteAt(off, data)
		case localCompute:
			p.Compute(f)
		case localAdvance:
			p.AdvanceTime(f)
		case localNow:
			reply.F(p.Now())
		case localUCCkpt:
			p.UCCheckpoint()
		default:
			panic(fmt.Sprintf("unknown local kind %d", kind))
		}
	})
	if err != nil {
		return 0, nil, err
	}
	return cLocal, reply.Bytes(), nil
}

// handleReplay serves the causal replacement's catch-up frames. A phase
// frame carries the causally ordered records of one gsync phase (the
// slice of the coordinator's replay-install stream the worker filtered
// out) and applies them to the respawned rank — Algorithm 2's replay
// half; the worker re-executes its own phase work between frames. The
// done frame finalizes the recovery: the replacement adopts the
// survivors' gsync counter and every rank takes an uncoordinated
// checkpoint, re-establishing log coverage (the victim's source-side
// records died with it — without fresh checkpoints a later survivor
// failure would silently miss them).
func (s *session) handleReplay(d *wire.Dec, gen uint64) (byte, []byte, error) {
	c := s.c
	mode := d.B()
	switch mode {
	case replayPhase:
		d.I() // phase, informational: the frame's records carry their own GNC
		puts, ok1 := decRecordList(d)
		gets, ok2 := decRecordList(d)
		if d.Failed() || !ok1 || !ok2 {
			return 0, nil, wire.RemoteFail{Code: wire.CodeGeneric, Msg: "malformed replay frame"}
		}
		err := c.exec(s, false, gen, func(p *ftrma.Process) {
			// ReplayAll walks the frame's GNCs in ascending order: for a
			// steady-state frame (one phase's records) it is ReplayPhase;
			// for the first frame it also applies the straggler records
			// below the restored phase, oldest first.
			p.ReplayAll(&ftrma.ReplayLogs{Puts: puts, Gets: gets})
		})
		if err != nil {
			return 0, nil, err
		}
		return cReplay, nil, nil
	case replayDone:
		if d.Failed() {
			return 0, nil, wire.RemoteFail{Code: wire.CodeGeneric, Msg: "malformed replay frame"}
		}
		c.mu.Lock()
		valid := c.crisis && c.replaying == s.rank && !c.replayDone &&
			c.status[s.rank] == rankJoined
		target := c.replayTarget
		c.mu.Unlock()
		if !valid {
			return 0, nil, errCrisis
		}
		err := c.exec(s, false, gen, func(p *ftrma.Process) {
			p.SyncGNC(target)
			for r := 0; r < c.wl.Ranks; r++ {
				if c.w.Alive(r) {
					c.sys.Process(r).UCCheckpoint()
				}
			}
		})
		if err != nil {
			return 0, nil, err
		}
		c.mu.Lock()
		c.replayDone = true
		c.mu.Unlock()
		c.cond.Broadcast()
		return cReplay, nil, nil
	}
	return 0, nil, wire.RemoteFail{Code: wire.CodeGeneric, Msg: "unknown replay mode"}
}

// ---- Failure handling -------------------------------------------------------

// controller serializes death handling. Deaths that arrive while one
// recovery is staging are absorbed immediately (condemned ranks count as
// quiesced once idle) and recovered sequentially afterwards.
func (c *Coordinator) controller() {
	for v := range c.deaths {
		c.mu.Lock()
		c.condemnLocked(v)
		for c.doneErr == nil {
			next := c.nextCondemnedLocked()
			if next < 0 {
				break
			}
			c.recoverLocked(next)
		}
		c.mu.Unlock()
		c.cond.Broadcast()
	}
}

// condemnLocked marks a freshly dead rank for recovery (mu held). The
// broadcast releases any residence writes parked in awaitSessionConn for
// the rank — they drop their records (lost with the dying rank) and let
// the machine quiesce.
func (c *Coordinator) condemnLocked(r int) {
	if r >= 0 && r < len(c.status) && c.status[r] == rankJoined {
		c.status[r] = rankCondemned
		// Lock-aware crisis: break every structure and user lock the dead
		// rank holds anywhere, immediately — a survivor blocked in Lock on
		// one of them could otherwise never drain into the rendezvous that
		// gates the Kill (which would be the only other lock breaker).
		c.w.ReleaseLocksHeldBy(r)
		c.cond.Broadcast()
	}
}

// sweepCondemnedLocksLocked re-runs the condemnation lock sweep for every
// condemned rank (mu held). The one-shot sweep in condemnLocked is not
// enough: a dead rank's own host-side Lock goroutine may still be parked
// on a lock a *live* rank holds, acquire it the moment that rank unlocks,
// and wedge it all over again — so the rendezvous waits sweep on every
// wake. Releasing a condemned rank's locks is idempotent and can never
// corrupt a critical section (the rank is dead; nothing of it will run
// again except unwinds).
func (c *Coordinator) sweepCondemnedLocksLocked() {
	for r, st := range c.status {
		if st == rankCondemned {
			c.w.ReleaseLocksHeldBy(r)
		}
	}
}

// drainDeathsLocked absorbs queued death events (mu held) so ranks dying
// while a recovery is already staging flip to condemned — which the
// quiescence predicate treats as "idle is enough" — instead of being
// waited on as live ranks that will never move again.
func (c *Coordinator) drainDeathsLocked() {
	for {
		select {
		case r := <-c.deaths:
			c.condemnLocked(r)
		default:
			return
		}
	}
}

// nextCondemnedLocked returns a rank awaiting recovery, or -1.
func (c *Coordinator) nextCondemnedLocked() int {
	c.drainDeathsLocked()
	for r, st := range c.status {
		if st == rankCondemned {
			return r
		}
	}
	return -1
}

// quiescedFor reports (mu held) whether the machine has drained around
// the condemned victim: the victim's session idle, and every other bound
// rank either blocked in the phase gsync, parked, or finished.
func (c *Coordinator) quiescedFor(v int) bool {
	if c.busy[v] {
		return false
	}
	for r, st := range c.status {
		if r == v {
			continue
		}
		switch st {
		case rankEmpty, rankFinished:
		case rankCondemned:
			if c.busy[r] {
				return false
			}
		case rankJoined:
			if c.busy[r] && c.inGsync[r] { // blocked in a collective (gsync or barrier)
				continue
			}
			if c.parked[r] {
				continue
			}
			return false
		}
	}
	return true
}

// recoverLocked runs the crisis protocol for one condemned rank (mu
// held; cond.Wait releases it across the rendezvous waits); see the
// package comment for the staging argument.
func (c *Coordinator) recoverLocked(v int) {
	c.cond.Broadcast()

	// Phase A: rendezvous — wait until the survivors have drained into
	// the victim-blocked collective (or all the way to the finish line).
	// Concurrent deaths are absorbed each pass so a second victim's
	// silence cannot stall the wait.
	for {
		c.drainDeathsLocked()
		c.sweepCondemnedLocksLocked()
		if c.quiescedFor(v) || c.doneErr != nil {
			break
		}
		c.cond.Wait()
	}
	if c.doneErr != nil {
		return
	}

	// A rank that died after its last gsync has already contributed all
	// its effects; its work is done, no recovery needed.
	if c.sys.Process(v).GNC() >= c.wl.Phases {
		c.status[v] = rankFinished
		return
	}

	// Phase B: the machine is staged. Suspend the checkpoint schedule
	// (every gsync-blocked rank is inside the barrier, so the skip
	// decision lands uniformly), drain the blocked round by impersonating
	// each dead rank's barrier arrival with a raw runtime gsync, and wait
	// for every session to come to rest.
	c.crisis = true
	c.sys.SetCCSuspended(true)
	anyGsync := false
	for r := range c.inGsync {
		if c.inGsync[r] {
			anyGsync = true
		}
	}
	if anyGsync {
		injections := 0
		injected := 0
		for r, st := range c.status {
			if st == rankCondemned && !c.busy[r] {
				injections++
				proc := c.sys.Process(r).Inner()
				go func() {
					defer func() {
						recover() // a kill unwind cannot happen pre-Kill; belt and braces
						c.mu.Lock()
						injected++
						c.mu.Unlock()
						c.cond.Broadcast()
					}()
					proc.Gsync()
				}()
			}
		}
		for (injected < injections || c.anyBusy()) && c.doneErr == nil {
			c.cond.Wait()
			c.drainDeathsLocked()
			c.sweepCondemnedLocksLocked()
		}
	} else {
		for c.anyBusy() && c.doneErr == nil {
			c.cond.Wait()
			c.drainDeathsLocked()
			c.sweepCondemnedLocksLocked()
		}
	}
	if c.doneErr != nil {
		return
	}

	// Phase C: fail-stop the condemned ranks for real and run the ftRMA
	// recovery for v. The cheap path is taken whenever Recover grants it;
	// ErrFallback (forced by in-flight gets, combining accesses, or a
	// concurrent failure) selects the coordinated rollback.
	began := time.Now()
	var res *ftrma.RecoverResult
	err := func() (err error) {
		// The recovery path crosses the wire (log fetches from the
		// survivors' residences, parity fetches and handoffs): a worker
		// dying at exactly the wrong moment surfaces as a panic, which
		// must condemn the run, not the coordinator process.
		defer func() {
			if e := recover(); e != nil {
				err = fmt.Errorf("recovery interrupted: %v", e)
			}
		}()
		// Kill every condemned rank, not just v: a second condemned rank
		// left World-alive would be gathered from as a "survivor", and its
		// unbound session would abort the run. Killing it makes Recover
		// see the concurrent failure and choose the fallback, which
		// restores all the dead at once. Likewise a rank whose slot is
		// empty but whose replacement never joined is no log residence —
		// kill it so it rides the same fallback.
		c.w.Kill(v)
		for r, st := range c.status {
			if r != v && st == rankCondemned {
				c.w.Kill(r)
			}
			if c.started && st == rankEmpty && !c.sessionAlive(r) && c.w.Alive(r) {
				c.w.Kill(r)
			}
		}
		res, err = c.sys.Recover(v)
		return err
	}()

	switch {
	case err == nil:
		// The cheap path: nothing rolled back. Stream the gathered records
		// to a replacement worker and let it replay/re-execute its way to
		// the survivors' phase; the crisis stays open until it is done.
		c.recoverCausalLocked(v, res, began)
		return
	case errors.Is(err, ftrma.ErrFallback):
		err = nil
	}
	if err != nil {
		c.doneErr = fmt.Errorf("cluster: recovery of rank %d: %w", v, err)
		return
	}
	// The fallback restored every rank — including v — to the same
	// coordinated cut, so the victim's own restored counter is the
	// resume phase. The progress counters roll back with it (the drained
	// and re-executed rounds would otherwise over-report progress to the
	// smoke watchers).
	c.resume = c.sys.Process(v).GNC()
	for r := range c.gsyncs {
		c.gsyncs[r] = c.resume
	}
	c.generation++
	if debugCrisis {
		fmt.Printf("cluster debug: recovered rank %d (fallback), resume=%d, gsyncs=%v, stats=%+v\n", v, c.resume, c.gsyncs, c.sys.Stats())
	}
	// The fallback restored (and respawned) every dead rank; all their
	// slots now await replacement workers.
	for r, st := range c.status {
		if st == rankCondemned {
			c.status[r] = rankEmpty
		}
	}
	c.status[v] = rankEmpty
	c.crisis = false
	c.sys.SetCCSuspended(false)
	c.sys.NoteFallbackRecovery(float64(time.Since(began)) / float64(time.Microsecond))
}

// recoverCausalLocked drives the cheap recovery path after a successful
// ftrma.Recover (mu held, crisis open): free v's slot so a replacement
// worker can inherit it mid-crisis, stream the causally ordered records
// into the replacement's residence, and wait for its catch-up — phase
// replay frames interleaved with re-executed phase work — to finish. If
// the replacement itself dies mid-replay, the crisis stays open and the
// controller loop re-enters recoverLocked(v): the respawned rank is
// killed for real this time, the survivors' records about v are still in
// place (nothing trimmed them), and a fresh Recover reproduces the same
// result for the next replacement.
func (c *Coordinator) recoverCausalLocked(v int, res *ftrma.RecoverResult, began time.Time) {
	target := c.replayTargetLocked(v)
	c.replaying = v
	c.replayFrom = res.Proc.GNC()
	c.replayTarget = target
	c.replayLogs = res.Logs
	c.replayDone = false
	c.status[v] = rankEmpty // handleJoin admits the replacement mid-crisis
	if debugCrisis {
		fmt.Printf("cluster debug: causal recovery of rank %d, replay [%d..%d), %d records\n",
			v, c.replayFrom, target, res.Logs.Len())
	}
	c.cond.Broadcast()

	abort := func() {
		// The replacement died (or never came) — leave the crisis open and
		// let the controller loop re-run recoverLocked for v.
		c.replaying = -1
		c.replayLogs = nil
		c.replayDone = false
	}

	// Wait for the replacement worker to join and bind.
	for c.status[v] != rankJoined || !c.sessionAlive(v) {
		if c.doneErr != nil {
			return
		}
		if c.status[v] == rankCondemned {
			abort()
			return
		}
		c.cond.Wait()
		c.drainDeathsLocked()
		c.sweepCondemnedLocksLocked()
	}

	// Stream the gathered records into the replacement's residence. The
	// worker's host handler never calls back into the coordinator, so
	// holding mu across the calls cannot deadlock — and everyone else is
	// parked anyway. A failed stream means the replacement died; the
	// OnDown condemnation surfaces in the wait below.
	c.streamReplayLogs(v, res.Logs)
	c.replayLogs = nil // handed off (or lost with the replacement)
	// A failed stream needs no special case: only a dying replacement can
	// fail it, and its OnDown condemnation ends this wait.
	for !c.replayDone && c.status[v] == rankJoined && c.doneErr == nil {
		c.cond.Wait()
		c.drainDeathsLocked()
		c.sweepCondemnedLocksLocked()
	}
	if c.doneErr != nil {
		return
	}
	if !c.replayDone {
		abort()
		return
	}

	// Catch-up complete: the replacement is at the survivors' phase, all
	// ranks hold fresh uncoordinated checkpoints, nothing was rolled
	// back. Close the crisis without bumping the rollback generation —
	// no survivor state was invalidated.
	c.resume = target
	c.gsyncs[v] = target
	c.replaying = -1
	c.replayDone = false
	if debugCrisis {
		fmt.Printf("cluster debug: causal recovery of rank %d complete, resume=%d, stats=%+v\n", v, c.resume, c.sys.Stats())
	}
	c.crisis = false
	c.sys.SetCCSuspended(false)
	c.sys.NoteCausalRecovery(float64(time.Since(began)) / float64(time.Microsecond))
}

// replayTargetLocked returns the phase the survivors stand at (mu held,
// post-drain): the phase the causal replacement must catch up to. In BSP
// lockstep every live rank agrees; finished ranks sit at Phases.
func (c *Coordinator) replayTargetLocked(v int) int {
	target := 0
	for r, st := range c.status {
		if r == v {
			continue
		}
		if st == rankJoined || st == rankFinished {
			if g := c.sys.Process(r).GNC(); g > target {
				target = g
			}
		}
	}
	return target
}

// streamReplayLogs ships the replay records to rank v's residence as
// replay-install frames, chunked so no frame outgrows the host-frame
// budget; the final chunk carries the done marker that releases the
// worker's catch-up. Returns false if the residence died mid-stream (the
// caller's wait resolves via the replacement's condemnation either way).
func (c *Coordinator) streamReplayLogs(v int, logs *ftrma.ReplayLogs) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false // a malformed reply; the worker is condemned by OnDown or timeout
		}
	}()
	conn := c.sessionConn(v)
	if conn == nil {
		return false
	}
	send := func(done bool, puts, gets []ftrma.LogRecord) bool {
		var e wire.Enc
		if done {
			e.B(1)
		} else {
			e.B(0)
		}
		e.I(len(puts))
		for _, r := range puts {
			encRecord(&e, r)
		}
		e.I(len(gets))
		for _, r := range gets {
			encRecord(&e, r)
		}
		_, sent := c.callConn(conn, v, cReplayInstall, e.Bytes())
		return sent
	}
	var puts, gets []ftrma.LogRecord
	words := 0
	flush := func(done bool) bool {
		sent := send(done, puts, gets)
		puts, gets = nil, nil
		words = 0
		return sent
	}
	for _, r := range logs.Puts {
		puts = append(puts, r)
		if words += len(r.Data) + 12; words >= hostFrameWords {
			if !flush(false) {
				return false
			}
		}
	}
	for _, r := range logs.Gets {
		gets = append(gets, r)
		if words += len(r.Data) + 12; words >= hostFrameWords {
			if !flush(false) {
				return false
			}
		}
	}
	return flush(true)
}

func (c *Coordinator) anyBusy() bool {
	for _, b := range c.busy {
		if b {
			return true
		}
	}
	return false
}

// ---- Peer-hosted recovery state ---------------------------------------------

func (c *Coordinator) bindSession(r int, s *session) {
	c.sessMu.Lock()
	c.sessions[r] = s
	c.sessMu.Unlock()
	// Appends may be parked in awaitSessionConn for this rank's residence.
	c.cond.Broadcast()
}

// downSessions force-closes every bound worker connection. Leaf-locked
// (sessMu only): the timeout watchdog calls it precisely when mu may be
// wedged under a host call that will never complete, so it must not need
// mu. Closing a connection fails that call with ErrDown and lets the
// holder unwind.
func (c *Coordinator) downSessions() {
	c.sessMu.Lock()
	defer c.sessMu.Unlock()
	for _, s := range c.sessions {
		if s != nil && s.conn != nil {
			s.conn.Close()
		}
	}
}

func (c *Coordinator) unbindSession(r int, s *session) {
	c.sessMu.Lock()
	if r >= 0 && r < len(c.sessions) && c.sessions[r] == s {
		c.sessions[r] = nil
	}
	c.sessMu.Unlock()
}

// sessionConn returns the live wire connection of rank r's worker, or nil
// when the rank is unbound (dead, or its replacement has not joined yet).
// Leaf-locked: safe from any goroutine, including recovery paths holding
// the coordinator mutex.
func (c *Coordinator) sessionConn(r int) *wire.Conn {
	c.sessMu.Lock()
	defer c.sessMu.Unlock()
	if r < 0 || r >= len(c.sessions) || c.sessions[r] == nil {
		return nil
	}
	return c.sessions[r].conn
}

// awaitSessionConn returns rank's live session connection, waiting out
// the window in which the rank is alive in the runtime but its
// replacement worker has not bound yet. The paper's model hands p_new to
// the batch system before computation resumes; here survivors may race
// ahead of the replacement's join, and a record destined for the rank's
// residence must wait for the residence rather than vanish.
//
// It gives up (nil) once the rank is genuinely dying or dead: a
// condemned rank is about to be Killed — records bound for it are lost
// with it by design, and waiting for it would wedge the very quiescence
// the crisis protocol needs (the waiter counts as busy). Likewise for a
// World-dead rank and a finished run.
func (c *Coordinator) awaitSessionConn(rank int) *wire.Conn {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if conn := c.sessionConn(rank); conn != nil {
			return conn
		}
		if c.doneErr != nil || rank < 0 || rank >= c.wl.Ranks ||
			!c.w.Alive(rank) || c.status[rank] == rankCondemned {
			return nil
		}
		c.cond.Wait()
	}
}

// sessionAlive is the liveness predicate the ftRMA host elections use: a
// rank can host recovery state only while a worker session is bound to
// it. (World.Alive is weaker — a respawned rank is World-alive before its
// replacement worker joins.)
func (c *Coordinator) sessionAlive(r int) bool { return c.sessionConn(r) != nil }

// startPeerHosting distributes the ftRMA recovery state to its peer
// residences and opens the op pipeline. It runs once, triggered by the
// join that completes the initial membership, and retries after any
// worker death that interrupts the distribution (the replacement's join
// refills the house).
func (c *Coordinator) startPeerHosting() {
	for {
		c.mu.Lock()
		for c.doneErr == nil && !c.fullHouseLocked() {
			c.cond.Wait()
		}
		done := c.doneErr != nil
		c.mu.Unlock()
		if done {
			return
		}
		if c.distributeState() {
			c.mu.Lock()
			c.started = true
			c.mu.Unlock()
			c.cond.Broadcast()
			return
		}
	}
}

// fullHouseLocked reports whether every rank slot has a bound, live
// worker session (mu held; sessMu is a leaf and may be taken under it).
func (c *Coordinator) fullHouseLocked() bool {
	for r, st := range c.status {
		if st == rankEmpty || !c.sessionAlive(r) {
			return false
		}
	}
	return true
}

// distributeState moves the recovery state onto the workers: every
// rank's log residence is initialized with the coordinator's resolved
// arena tuning (so the byte accounting driving the demand-checkpoint
// budget is computed identically on both sides), the System's log and
// liveness hooks are re-bound to the wire, and every group's parity
// levels are elected onto peer ranks and seeded there. Returns false if
// a worker died mid-distribution; the retry re-elects and re-installs
// idempotently.
func (c *Coordinator) distributeState() (ok bool) {
	defer func() {
		if e := recover(); e != nil {
			ok = false // a residence died mid-install; retry on the next full house
		}
	}()
	c.sys.SetHostAlive(c.sessionAlive)
	c.sys.SetLogHosting(func(rank int) ftrma.LogHost {
		return &remoteLogHost{c: c, rank: rank}
	})
	c.sys.EnablePeerParityHosts(c.newRemoteParityHost)
	return true
}

// initLogHost builds a freshly joined worker's log residence with the
// coordinator's resolved arena tuning, so the byte accounting that drives
// the §6.2 demand-checkpoint budget is computed from identical structures
// on both sides of the wire.
func (c *Coordinator) initLogHost(s *session) error {
	slab, seg, compact := c.ftCfg.ResolvedLogTuning()
	var e wire.Enc
	e.I(slab)
	e.I(seg)
	e.F(compact)
	_, err := s.conn.Call(cHostInit, e.Bytes())
	return err
}

func (c *Coordinator) newRemoteParityHost(group, level, hostRank int) ftrma.ParityHost {
	return &remoteParityHost{
		c:     c,
		group: group,
		level: level,
		rank:  hostRank,
		k:     len(c.sys.Grouping().ComputeMembers(group)),
		m:     c.ftCfg.ChecksumsPerGroup,
		words: c.wl.WindowWords(),
	}
}

// ParityHostRank returns the rank whose worker hosts (group, level)'s
// parity shards, or -1 before the state is distributed. The parity-host
// kill smoke aims with it.
func (c *Coordinator) ParityHostRank(group, level int) int {
	return c.sys.ParityHostRank(group, level)
}

// PeerHosted reports whether the recovery state fully resides in worker
// processes — every rank's log records at its own worker, every parity
// level at an elected host rank — leaving the coordinator with membership,
// the runtime windows, and crisis arbitration only.
func (c *Coordinator) PeerHosted() bool { return c.sys.PeerHosted() }

// Started reports whether the initial membership completed and the
// recovery state was distributed (the op pipeline is open).
func (c *Coordinator) Started() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.started
}

// Replaying returns the rank whose causal replacement is currently being
// fed (joined, streamed, or catching up), or -1 when no causal recovery
// is in flight. The chaos tests aim their kill-the-replacement-mid-replay
// schedules with it.
func (c *Coordinator) Replaying() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.replaying
}

// RanksJoined counts the rank slots currently bound to a worker. Tests
// spawn workers one at a time against it to pin the rank <-> process
// correspondence.
func (c *Coordinator) RanksJoined() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, st := range c.status {
		if st != rankEmpty {
			n++
		}
	}
	return n
}
