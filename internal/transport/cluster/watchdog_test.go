package cluster

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/transport/wire"
)

// TestClusterTimeoutAbortsWedgedRun pins the watchdog's last line of
// defense. The hang it guards against: a coordinator goroutine holds mu
// across a host call towards a live-but-unresponsive worker — the
// connection stays healthy (heartbeats flow, the failure detector never
// fires), the call never completes, and mu never frees. fatal needs mu,
// so without the grace-period fallback the Timeout watchdog would wedge
// right behind the hang it exists to abort. The fallback downs every
// worker connection, which fails the stuck call with ErrDown, unwinds
// the holder, and lets the abort land.
func TestClusterTimeoutAbortsWedgedRun(t *testing.T) {
	wl := Workload{Ranks: 2, Phases: 1, InsertsPerPhase: 1, TableSlots: 64}
	c, err := NewCoordinator(Config{Listen: "127.0.0.1:0", Workload: wl, Timeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A live-but-unresponsive worker: its handler parks forever, so a
	// call towards it never completes — and never trips the failure
	// detector, because the connection itself stays up.
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	park := make(chan struct{})
	defer close(park)
	wire.New(b, wire.Config{Handler: func(byte, []byte) (byte, []byte, error) {
		<-park
		return 0, nil, nil
	}})
	conn := wire.New(a, wire.Config{})
	c.sessMu.Lock()
	c.sessions[0] = &session{c: c, rank: 0, conn: conn}
	c.sessMu.Unlock()

	// Wedge mu exactly the way a crisis-path host call would.
	wedged := make(chan error, 1)
	go func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		_, err := conn.Call(0x42, nil)
		wedged <- err
	}()

	done := make(chan error, 1)
	go func() {
		_, err := c.Run()
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "timeout") {
			t.Fatalf("Run: err = %v, want the timeout abort", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not abort: the watchdog could not land past the wedged mutex")
	}
	if err := <-wedged; err == nil {
		t.Fatal("the wedged call completed cleanly; want ErrDown from the watchdog downing the session")
	}
}
