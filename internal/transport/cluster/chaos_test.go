package cluster

// Multi-failure chaos harness: seeded kill schedules — correlated
// whole-node deaths derived from internal/failure's TSUBAME PDFs over a
// machine placement, a kill of the causal replacement mid-replay, and a
// kill of a user-lock holder mid-critical-section — driven against the
// multi-process cluster, each asserting a bit-identical finish against
// the failure-free oracle. The causal smoke is the PR's acceptance
// criterion: a single conflict-free failure must recover via wire replay
// with NO coordinated fallback, and Stats must say so.

import (
	"fmt"
	"math/rand"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/failure"
	"repro/internal/machine"
	"repro/internal/resilience"
)

// chaosCoordinator builds a coordinator for wl with the chaos default
// timeout: generous enough for slow CI, small enough that a wedged crisis
// (a survivor waiting on a dead rank's lock, say) fails the test rather
// than hanging the suite.
func chaosCoordinator(t *testing.T, wl Workload) *Coordinator {
	t.Helper()
	c, err := NewCoordinator(Config{Listen: "127.0.0.1:0", Workload: wl, Timeout: 120 * time.Second})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	return c
}

// spawnRanked spawns one worker per rank, pinned so workers[i] hosts rank
// i, and registers cleanup kills.
func spawnRanked(t *testing.T, c *Coordinator, wl Workload) []*exec.Cmd {
	t.Helper()
	workers := make([]*exec.Cmd, wl.Ranks)
	for i := 0; i < wl.Ranks; i++ {
		workers[i] = spawnWorkerForRank(t, c, i)
		w := workers[i]
		t.Cleanup(func() { reap(w) })
	}
	return workers
}

// awaitPhase blocks until rank r has completed at least p phase gsyncs.
func awaitPhase(t *testing.T, c *Coordinator, r, p int) {
	t.Helper()
	deadline := time.Now().Add(90 * time.Second)
	for c.PhasesDone(r) < p {
		if time.Now().After(deadline) {
			t.Fatalf("rank %d never reached phase %d (at %d)", r, p, c.PhasesDone(r))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func kill9(t *testing.T, w *exec.Cmd) {
	t.Helper()
	if err := w.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("kill -9: %v", err)
	}
	w.Wait()
}

// TestClusterCausalReplayKill9 is the acceptance smoke for the causal
// path over the wire: under the conflict-free workload a single kill -9
// must recover by streaming the survivors' logs to a replacement worker
// and replaying them — no coordinated rollback, and the Stats must
// distinguish the paths — finishing bit-identical to the oracle.
func TestClusterCausalReplayKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos skipped in -short")
	}
	const victim = 1
	wl := Workload{
		Ranks:           4,
		Phases:          10,
		InsertsPerPhase: 4,
		Mode:            ModeCausal,
		PhaseDelay:      60 * time.Millisecond,
	}
	c := chaosCoordinator(t, wl)
	defer c.Close()
	workers := spawnRanked(t, c, wl)

	awaitPhase(t, c, victim, 3)
	// Land the kill inside the victim's phase think time (its wire frames
	// are all issued back-to-back right after the gsync), so no epoch is
	// mid-flight — the conflict-free death the causal path covers.
	time.Sleep(wl.PhaseDelay / 2)
	kill9(t, workers[victim])

	replacement := spawnWorker(t, c.Addr())
	defer reap(replacement)

	got, err := c.Run()
	if err != nil {
		t.Fatalf("run after causal kill -9: %v", err)
	}
	st := c.Stats()
	if st.Recoveries < 1 {
		t.Fatalf("kill -9 did not trigger a recovery: %+v", st)
	}
	if st.CausalRecoveries < 1 {
		t.Fatalf("recovery did not take the causal path: %+v", st)
	}
	if st.Fallbacks != 0 {
		t.Fatalf("conflict-free failure fell back to coordinated rollback: %+v", st)
	}
	if st.ActionsReplayed == 0 {
		t.Fatalf("causal recovery replayed nothing: %+v", st)
	}
	if st.CausalRecoveryUs <= 0 {
		t.Fatalf("causal recovery wall time not recorded: %+v", st)
	}
	compareToOracle(t, wl, got)
	t.Logf("causal replay over the wire: %d recoveries (%d causal, %d fallbacks), %d actions replayed, %.0fus",
		st.Recoveries, st.CausalRecoveries, st.Fallbacks, st.ActionsReplayed, st.CausalRecoveryUs)
}

// correlatedNodeCrash samples seeded failure schedules from the TSUBAME
// PDFs over a block placement until one contains a whole-node crash (>= 2
// ranks at once) of the requested placement node, and returns its
// victims. The machinery is the simulation stack's own: placement M map,
// per-level PDFs, Poisson arrivals — the cluster harness just executes
// the draw for real.
func correlatedNodeCrash(t *testing.T, ranks, perNode, node int) []int {
	t.Helper()
	fdh := machine.FDH{LevelNames: []string{"node"}, Counts: []int{ranks / perNode}}
	pl, err := machine.BlockPlacement(fdh, ranks, perNode)
	if err != nil {
		t.Fatalf("placement: %v", err)
	}
	// The same (node, slot) -> rank map the correlated-failure simulation
	// uses must agree with the block placement, or the "whole node" we
	// kill is not a placement node.
	cc := resilience.CorrelatedConfig{Nodes: ranks / perNode, RanksPerNode: perNode, TAware: true}
	for node := 0; node < cc.Nodes; node++ {
		for slot := 0; slot < perNode; slot++ {
			if r := cc.RankOfSlot(node, slot); pl.NodeOf[r] != node {
				t.Fatalf("placement disagreement: rank %d on node %d, RankOfSlot says node %d", r, pl.NodeOf[r], node)
			}
		}
	}
	pdfs := failure.TSUBAMEPDFs()
	for seed := int64(1); seed < 500; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sched := failure.SampleSchedule(rng, pl, pdfs, 90*86400, perNode)
		for _, crash := range sched {
			if len(crash.Ranks) >= 2 && pl.NodeOf[crash.Ranks[0]] == node {
				t.Logf("seed %d: correlated crash of ranks %v at t=%.0fs", seed, crash.Ranks, crash.Time)
				return crash.Ranks
			}
		}
	}
	t.Fatalf("no seed produced a correlated crash of node %d", node)
	return nil
}

// TestClusterCorrelatedVerdictMatch closes the loop between the
// simulation stack and the real cluster: for every placement node, the
// expected outcome of a whole-node kill is not hardcoded but computed by
// resilience.PredictCrash — the in-process run of the same grouping,
// parity election, and reconstruction math — and the multi-process
// cluster must land on exactly that verdict: a fallback-survivable node
// loss finishes bit-identical with coordinated rollbacks, a catastrophic
// one reports promptly and cleanly.
func TestClusterCorrelatedVerdictMatch(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos skipped in -short")
	}
	wl := Workload{
		Ranks:           4,
		Phases:          10,
		InsertsPerPhase: 4,
		Mode:            ModeCausal,
		PhaseDelay:      60 * time.Millisecond,
	}
	const perNode = 2
	pred := resilience.CorrelatedConfig{
		Nodes: wl.Ranks / perNode, RanksPerNode: perNode, Iters: 8,
		TAware: true, Groups: defaultFT(wl.Ranks).Groups,
		PeerParityHosts: true, // the cluster hosts parity on peer ranks
	}
	sawFallback, sawCatastrophic := false, false
	for node := 0; node < pred.Nodes; node++ {
		node := node
		t.Run(fmt.Sprintf("node%d", node), func(t *testing.T) {
			victims := correlatedNodeCrash(t, wl.Ranks, perNode, node)
			verdict, err := pred.PredictCrash(3, victims)
			if err != nil {
				t.Fatalf("predict: %v", err)
			}
			t.Logf("resilience predicts %v for node %d (ranks %v)", verdict, node, victims)

			c := chaosCoordinator(t, wl)
			defer c.Close()
			workers := spawnRanked(t, c, wl)
			awaitPhase(t, c, victims[0], 3)
			time.Sleep(wl.PhaseDelay / 2)
			for _, v := range victims {
				kill9(t, workers[v])
			}
			if verdict != resilience.VerdictCatastrophic {
				for range victims {
					r := spawnWorker(t, c.Addr())
					defer reap(r)
				}
			}

			got, err := c.Run()
			switch verdict {
			case resilience.VerdictFallback:
				sawFallback = true
				if err != nil {
					t.Fatalf("predicted-survivable node kill failed the run: %v", err)
				}
				if st := c.Stats(); st.Fallbacks < 1 {
					t.Fatalf("predicted fallback, but the run took none: %+v", st)
				}
				compareToOracle(t, wl, got)
			case resilience.VerdictCatastrophic:
				sawCatastrophic = true
				if err == nil {
					t.Fatal("predicted-catastrophic node kill reported success")
				}
				if !strings.Contains(err.Error(), "catastrophic") {
					t.Fatalf("expected a catastrophic-failure report, got: %v", err)
				}
			default:
				t.Fatalf("whole-node kill of %v predicted %v — the multi-rank case cannot be causal", victims, verdict)
			}
		})
	}
	// The 2x2 machine must exercise both sides of the prediction, or the
	// match proves nothing.
	if !t.Failed() && (!sawFallback || !sawCatastrophic) {
		t.Fatalf("verdicts covered fallback=%v catastrophic=%v — need both", sawFallback, sawCatastrophic)
	}
}

// TestClusterCorrelatedNodeKill9 drives a correlated multi-failure — both
// ranks of one placement node SIGKILLed back to back, victims drawn from
// a seeded TSUBAME failure schedule. The mutual logs die together, so
// causal recovery is impossible by construction; the cluster must detect
// the concurrent failure, take the coordinated rollback for all the dead
// at once, admit two replacements, and finish bit-identical — without
// tripping the run timeout.
//
// The kill aims at placement node 0 (ranks {0, 1}): the deterministic
// parity election hosts group 0's coordinated parity at rank 3 and group
// 1's at rank 2 (out-of-group, levels spread), so node 0's loss leaves
// both CC levels alive and each group misses exactly the one member its
// XOR parity covers. Node 1's loss is the paper's Fig. 8 worst case —
// TestClusterCorrelatedCatastrophicKill9 covers that side.
func TestClusterCorrelatedNodeKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos skipped in -short")
	}
	wl := Workload{
		Ranks:           4,
		Phases:          10,
		InsertsPerPhase: 4,
		Mode:            ModeCausal,
		PhaseDelay:      60 * time.Millisecond,
	}
	victims := correlatedNodeCrash(t, wl.Ranks, 2, 0)
	c := chaosCoordinator(t, wl)
	defer c.Close()
	workers := spawnRanked(t, c, wl)

	awaitPhase(t, c, victims[0], 3)
	time.Sleep(wl.PhaseDelay / 2)
	for _, v := range victims {
		kill9(t, workers[v])
	}
	for range victims {
		r := spawnWorker(t, c.Addr())
		defer reap(r)
	}

	got, err := c.Run()
	if err != nil {
		t.Fatalf("run after correlated node kill: %v", err)
	}
	st := c.Stats()
	if st.Recoveries < 1 {
		t.Fatalf("correlated kill did not trigger a recovery: %+v", st)
	}
	if st.Fallbacks < 1 {
		t.Fatalf("concurrent failure did not take the coordinated rollback: %+v", st)
	}
	compareToOracle(t, wl, got)
	t.Logf("correlated node kill of %v: %d recoveries, %d causal, %d fallbacks",
		victims, st.Recoveries, st.CausalRecoveries, st.Fallbacks)
}

// TestClusterCorrelatedCatastrophicKill9 kills the node whose loss
// exceeds the parity's tolerance: node 1 holds rank 3 (a group-1 member)
// and rank 2 (group 1's elected coordinated-parity host), so the group's
// checkpoint copy and the parity guarding it die together — the paper's
// §5.1 catastrophic failure. The cluster must not hang or time out: the
// run has to return promptly with the catastrophic-failure report.
func TestClusterCorrelatedCatastrophicKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos skipped in -short")
	}
	wl := Workload{
		Ranks:           4,
		Phases:          10,
		InsertsPerPhase: 4,
		Mode:            ModeCausal,
		PhaseDelay:      60 * time.Millisecond,
	}
	victims := correlatedNodeCrash(t, wl.Ranks, 2, 1)
	c := chaosCoordinator(t, wl)
	defer c.Close()
	workers := spawnRanked(t, c, wl)

	awaitPhase(t, c, victims[0], 3)
	time.Sleep(wl.PhaseDelay / 2)
	for _, v := range victims {
		kill9(t, workers[v])
	}

	began := time.Now()
	_, err := c.Run()
	if err == nil {
		t.Fatal("losing a member and its group's CC parity host together reported success")
	}
	if !strings.Contains(err.Error(), "catastrophic") {
		t.Fatalf("expected a catastrophic-failure report, got: %v", err)
	}
	if since := time.Since(began); since > 60*time.Second {
		t.Fatalf("catastrophic report took %v — close to the run timeout", since)
	}
	t.Logf("catastrophic node kill of %v reported in %v: %v", victims, time.Since(began), err)
}

// TestClusterKillReplacementMidReplay kills the causal replacement while
// it is catching up — the crisis must stay open, the respawned rank be
// condemned and recovered again (causally or, if its death stranded an
// in-flight get, via the fallback), and a second replacement still drive
// the run to the bit-identical finish.
func TestClusterKillReplacementMidReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos skipped in -short")
	}
	const victim = 2
	wl := Workload{
		Ranks:           4,
		Phases:          10,
		InsertsPerPhase: 4,
		Mode:            ModeCausal,
		PhaseDelay:      60 * time.Millisecond,
	}
	c := chaosCoordinator(t, wl)
	defer c.Close()
	workers := spawnRanked(t, c, wl)

	// Let the victim get far enough that the replacement's catch-up spans
	// several phases (each with think time) — a wide window to kill into.
	awaitPhase(t, c, victim, 5)
	time.Sleep(wl.PhaseDelay / 2)
	kill9(t, workers[victim])

	first := spawnWorker(t, c.Addr())
	defer reap(first)

	// Wait until the causal recovery has admitted the replacement
	// (Replaying pins the rank, RanksJoined confirms the join), then kill
	// it mid-catch-up.
	deadline := time.Now().Add(90 * time.Second)
	for !(c.Replaying() == victim && c.RanksJoined() == wl.Ranks) {
		if time.Now().After(deadline) {
			t.Fatalf("causal replacement never joined (replaying=%d, joined=%d)", c.Replaying(), c.RanksJoined())
		}
		time.Sleep(2 * time.Millisecond)
	}
	kill9(t, first)

	second := spawnWorker(t, c.Addr())
	defer reap(second)

	got, err := c.Run()
	if err != nil {
		t.Fatalf("run after mid-replay kill: %v", err)
	}
	st := c.Stats()
	if st.Recoveries < 2 {
		t.Fatalf("killing the replacement did not force a second recovery: %+v", st)
	}
	compareToOracle(t, wl, got)
	t.Logf("mid-replay kill survived: %d recoveries, %d causal, %d fallbacks, %d replayed",
		st.Recoveries, st.CausalRecoveries, st.Fallbacks, st.ActionsReplayed)
}

// TestClusterLockHolderKill9 kills a rank that spends its think time
// inside a user-locked critical section, so the SIGKILL lands (with
// overwhelming probability) while the victim holds the lock and a
// survivor is blocked acquiring it. Condemnation must force-release the
// lock — otherwise the survivor can never drain into the crisis
// rendezvous and the run times out — and the finish must still be
// bit-identical.
func TestClusterLockHolderKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos skipped in -short")
	}
	const victim = 0
	wl := Workload{
		Ranks:           4,
		Phases:          10,
		InsertsPerPhase: 4,
		Mode:            ModeLocked,
		PhaseDelay:      60 * time.Millisecond,
	}
	c := chaosCoordinator(t, wl)
	defer c.Close()
	workers := spawnRanked(t, c, wl)

	awaitPhase(t, c, victim, 3)
	// ModeLocked spends PhaseDelay inside the critical section: half a
	// delay after a phase boundary the victim holds the user lock.
	time.Sleep(wl.PhaseDelay / 2)
	kill9(t, workers[victim])

	replacement := spawnWorker(t, c.Addr())
	defer reap(replacement)

	began := time.Now()
	got, err := c.Run()
	if err != nil {
		t.Fatalf("run after lock-holder kill: %v", err)
	}
	st := c.Stats()
	if st.Recoveries < 1 {
		t.Fatalf("lock-holder kill did not trigger a recovery: %+v", st)
	}
	compareToOracle(t, wl, got)
	t.Logf("lock-holder kill recovered in %v: %d recoveries, %d causal, %d fallbacks",
		time.Since(began), st.Recoveries, st.CausalRecoveries, st.Fallbacks)
}

// TestClusterHostFrameFaults re-runs the combining kill smoke with seeded
// host-service frame faults armed in every worker (delays on the
// 0x30–0x3A plane: log appends, fetches, parity folds, replay installs),
// proving the recovery protocol's indifference to host-frame timing: the
// finish must still be bit-identical and the recovery still complete.
func TestClusterHostFrameFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos skipped in -short")
	}
	const victim = 2
	wl := Workload{
		Ranks:           4,
		Phases:          8,
		InsertsPerPhase: 5,
		TableSlots:      512,
		PhaseDelay:      60 * time.Millisecond,
	}
	c := chaosCoordinator(t, wl)
	defer c.Close()
	faults := hostFaultsEnv + "=7:3"
	workers := make([]*exec.Cmd, wl.Ranks)
	for i := 0; i < wl.Ranks; i++ {
		workers[i] = spawnWorker(t, c.Addr(), faults)
		w := workers[i]
		t.Cleanup(func() { reap(w) })
	}

	awaitPhase(t, c, victim, 3)
	kill9(t, workers[victim])

	replacement := spawnWorker(t, c.Addr(), faults)
	defer reap(replacement)

	got, err := c.Run()
	if err != nil {
		t.Fatalf("run under host-frame faults: %v", err)
	}
	st := c.Stats()
	if st.Recoveries < 1 {
		t.Fatalf("kill under host-frame faults did not recover: %+v", st)
	}
	compareToOracle(t, wl, got)
	t.Logf("host-frame faults survived: %d recoveries, %d fallbacks, %d puts logged",
		st.Recoveries, st.Fallbacks, st.PutsLogged)
}
