package cluster

// Multi-process smoke tests: the coordinator runs in-test (so the final
// windows and protocol stats are directly inspectable), while every rank
// runs in its own OS process — the test binary re-executed in worker mode
// via TestMain. The kill test SIGKILLs a live worker mid-run, starts a
// replacement, and demands the final windows match the failure-free
// oracle bit for bit via the existing ftRMA recovery path.

import (
	"fmt"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"
)

const (
	workerEnv       = "REPRO_CLUSTER_WORKER"
	fabricWorkerEnv = "REPRO_FABRIC_WORKER"
)

// TestMain turns the test binary into a rankd worker when re-executed
// with an address environment variable set: a coordinator-attached
// worker under workerEnv, a symmetric fabric worker under
// fabricWorkerEnv (whose value is the seed — or, for a replacement, any
// surviving member — to join through).
func TestMain(m *testing.M) {
	if addr := os.Getenv(workerEnv); addr != "" {
		if err := RunWorker(DialConfig{Addr: addr}); err != nil {
			fmt.Fprintf(os.Stderr, "cluster worker: %v\n", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	if addr := os.Getenv(fabricWorkerEnv); addr != "" {
		logf := func(format string, args ...any) { fmt.Fprintf(os.Stderr, "fabric worker: "+format+"\n", args...) }
		if err := RunFabricWorker(addr, logf); err != nil {
			fmt.Fprintf(os.Stderr, "fabric worker: %v\n", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// spawnWorker launches one worker process bound to the coordinator;
// extraEnv entries ("KEY=value") arm worker-side knobs such as the
// host-frame fault injection.
func spawnWorker(t *testing.T, addr string, extraEnv ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestMain")
	cmd.Env = append(os.Environ(), workerEnv+"="+addr)
	cmd.Env = append(cmd.Env, extraEnv...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawn worker: %v", err)
	}
	return cmd
}

// reap kills w and waits for the kernel to reap it. Cleanup paths use
// this instead of a bare Kill so a test never returns while its worker
// processes are still dying and writing output — on a one-core box that
// tail bleeds CPU into whichever test the shuffle runs next. Both calls
// are best-effort: the worker may already be dead (the kill under test)
// or already reaped (an explicit Wait in the test body).
func reap(w *exec.Cmd) {
	w.Process.Kill()
	w.Wait()
}

func compareToOracle(t *testing.T, wl Workload, got [][]uint64) {
	t.Helper()
	want, err := wl.Oracle()
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	for r := range want {
		for i := range want[r] {
			if got[r][i] != want[r][i] {
				t.Fatalf("rank %d word %d: got %#x, want %#x", r, i, got[r][i], want[r][i])
			}
		}
	}
}

// TestClusterMultiProcess runs 4 worker processes to completion with no
// faults and checks the final windows against the in-process oracle.
func TestClusterMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke skipped in -short")
	}
	wl := Workload{Ranks: 4, Phases: 5, InsertsPerPhase: 6, TableSlots: 512}
	c, err := NewCoordinator(Config{Listen: "127.0.0.1:0", Workload: wl, Timeout: 90 * time.Second})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer c.Close()
	for i := 0; i < wl.Ranks; i++ {
		w := spawnWorker(t, c.Addr())
		defer reap(w)
	}
	got, err := c.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	compareToOracle(t, wl, got)
	st := c.Stats()
	if st.Recoveries != 0 {
		t.Fatalf("fault-free run recovered %d times", st.Recoveries)
	}
	if st.CCCheckpoints == 0 {
		t.Fatalf("no coordinated checkpoints were taken")
	}
	if st.PutsLogged == 0 || st.GetsLogged == 0 {
		t.Fatalf("access logging saw no traffic: %+v", st)
	}
	// The recovery state must have been peer-hosted: every rank's logs at
	// its own worker, every (group, level) parity at an elected worker
	// rank — the coordinator arbitrates, it does not host.
	if !c.PeerHosted() {
		t.Fatalf("recovery state still hosted by the coordinator")
	}
	for g := 0; g < 2; g++ {
		for l := 0; l < 2; l++ {
			if h := c.ParityHostRank(g, l); h < 0 || h >= wl.Ranks {
				t.Fatalf("group %d level %d parity host rank = %d", g, l, h)
			}
		}
	}
}

// spawnWorkerForRank spawns one worker and waits until the coordinator
// has bound it, so worker process i corresponds to rank i exactly (joins
// assign the lowest free rank, and we admit them one at a time).
func spawnWorkerForRank(t *testing.T, c *Coordinator, rank int) *exec.Cmd {
	t.Helper()
	w := spawnWorker(t, c.Addr())
	deadline := time.Now().Add(30 * time.Second)
	for c.RanksJoined() < rank+1 {
		if time.Now().After(deadline) {
			t.Fatalf("worker for rank %d never joined", rank)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return w
}

// TestClusterParityHostKill9 is the peer-to-peer acceptance smoke: the
// rank elected to host group 0's UC parity is SIGKILLed mid-run. The
// coordinator must detect the death, rebuild the lost shards from the
// surviving members' checkpoint copies, hand them to a freshly elected
// host (a parity handoff over the wire), recover the dead rank itself
// through the ordinary crisis protocol, and still finish bit-identical to
// the failure-free oracle.
func TestClusterParityHostKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke skipped in -short")
	}
	wl := Workload{
		Ranks:           4,
		Phases:          10,
		InsertsPerPhase: 5,
		TableSlots:      512,
		PhaseDelay:      60 * time.Millisecond,
	}
	c, err := NewCoordinator(Config{Listen: "127.0.0.1:0", Workload: wl, Timeout: 90 * time.Second})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer c.Close()
	workers := make([]*exec.Cmd, wl.Ranks)
	for i := 0; i < wl.Ranks; i++ {
		workers[i] = spawnWorkerForRank(t, c, i)
		defer reap(workers[i])
	}

	// Wait for the state distribution, find the elected host of group 0's
	// UC parity, and let it survive a few checkpointed phase boundaries
	// before the kill.
	deadline := time.Now().Add(60 * time.Second)
	for !c.Started() {
		if time.Now().After(deadline) {
			t.Fatal("cluster never distributed its recovery state")
		}
		time.Sleep(5 * time.Millisecond)
	}
	victim := c.ParityHostRank(0, 0)
	if victim < 0 || victim >= wl.Ranks {
		t.Fatalf("no peer host elected for group 0 UC parity: rank %d", victim)
	}
	for c.PhasesDone(victim) < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("cluster never reached phase 3")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := workers[victim].Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("kill -9 parity host: %v", err)
	}
	workers[victim].Wait()

	replacement := spawnWorker(t, c.Addr())
	defer reap(replacement)

	got, err := c.Run()
	if err != nil {
		t.Fatalf("run after parity-host kill -9: %v", err)
	}
	st := c.Stats()
	if st.Recoveries < 1 {
		t.Fatalf("parity-host kill did not trigger a recovery: %+v", st)
	}
	if st.ParityRebuilds < 1 {
		t.Fatalf("killed host's parity was never rebuilt: %+v", st)
	}
	if st.ParityHandoffs < 1 {
		t.Fatalf("no parity handoff to a new host: %+v", st)
	}
	if h := c.ParityHostRank(0, 0); h == victim {
		t.Fatalf("group 0 UC parity still registered at the dead rank %d", victim)
	}
	compareToOracle(t, wl, got)
	t.Logf("recovered from parity-host kill -9 of rank %d: %d recoveries, %d fallbacks, %d rebuilds, %d handoffs, new host %d",
		victim, st.Recoveries, st.Fallbacks, st.ParityRebuilds, st.ParityHandoffs, c.ParityHostRank(0, 0))
}

// TestClusterKill9Recovery is the acceptance smoke: 4 rank processes, a
// real SIGKILL of one mid-run, heartbeat detection, the existing ftRMA
// recovery path (log fetch, M flags, parity reconstruction, coordinated
// rollback), a replacement process inheriting the rank, and a final state
// bit-identical to the failure-free oracle.
func TestClusterKill9Recovery(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke skipped in -short")
	}
	const victim = 2
	wl := Workload{
		Ranks:           4,
		Phases:          10,
		InsertsPerPhase: 5,
		TableSlots:      512,
		PhaseDelay:      60 * time.Millisecond,
	}
	c, err := NewCoordinator(Config{Listen: "127.0.0.1:0", Workload: wl, Timeout: 90 * time.Second})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer c.Close()
	workers := make([]*exec.Cmd, wl.Ranks)
	for i := 0; i < wl.Ranks; i++ {
		workers[i] = spawnWorker(t, c.Addr())
		defer reap(workers[i])
	}

	// Wait until the victim rank has survived a couple of checkpointed
	// phase boundaries, then kill -9 the worker that holds it. Join order
	// is connection order, so ranks and processes correspond 1:1 only via
	// the coordinator — but killing any live process is equally good;
	// we watch the victim rank's progress and kill the process list's
	// victim slot (which may or may not host rank `victim` — the test's
	// assertions don't depend on which rank dies).
	deadline := time.Now().Add(60 * time.Second)
	for c.PhasesDone(victim) < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("cluster never reached phase 3; phases done: %v",
				[]int{c.PhasesDone(0), c.PhasesDone(1), c.PhasesDone(2), c.PhasesDone(3)})
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := workers[victim].Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("kill -9: %v", err)
	}
	workers[victim].Wait()

	// The batch system provides p_new: a fresh process joins and inherits
	// the failed rank and the rolled-back resume phase.
	replacement := spawnWorker(t, c.Addr())
	defer reap(replacement)

	got, err := c.Run()
	if err != nil {
		t.Fatalf("run after kill -9: %v", err)
	}
	st := c.Stats()
	if st.Recoveries < 1 {
		t.Fatalf("kill -9 did not trigger a recovery: %+v", st)
	}
	if st.Fallbacks < 1 {
		t.Fatalf("recovery did not take the coordinated rollback path: %+v", st)
	}
	if st.UCCheckpoints < 1 {
		t.Fatalf("the log budget never forced a streaming demand checkpoint: %+v", st)
	}
	compareToOracle(t, wl, got)
	t.Logf("recovered from kill -9: %d recoveries, %d fallbacks, %d UC ckpts, %d CC rounds, resume phases honored",
		st.Recoveries, st.Fallbacks, st.UCCheckpoints, st.CCCheckpoints)
}

// TestClusterConfigValidate pins the descriptive rejections of the
// cluster and workload knobs.
func TestClusterConfigValidate(t *testing.T) {
	wl := Workload{Ranks: 4, Phases: 3, InsertsPerPhase: 4, TableSlots: 256}
	base := func() Config { return Config{Listen: "127.0.0.1:0", Workload: wl} }
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"ok", func(c *Config) {}, ""},
		{"no-listen", func(c *Config) { c.Listen = "" }, "Listen address"},
		{"bad-listen", func(c *Config) { c.Listen = "nonsense" }, "listen address"},
		{"one-rank", func(c *Config) { c.Workload.Ranks = 1 }, "at least 2 ranks"},
		{"no-phases", func(c *Config) { c.Workload.Phases = 0 }, "at least 1 phase"},
		{"no-inserts", func(c *Config) { c.Workload.InsertsPerPhase = 0 }, "at least 1 insert"},
		{"tiny-table", func(c *Config) { c.Workload.TableSlots = 1 }, "conflict-free"},
		{"negative-delay", func(c *Config) { c.Workload.PhaseDelay = -time.Second }, "phase delay"},
		{"negative-heartbeat", func(c *Config) { c.HeartbeatInterval = -time.Second }, "heartbeat interval"},
		{"zero-patience", func(c *Config) { c.HeartbeatMiss = -4 }, "patience"},
		{"negative-timeout", func(c *Config) { c.Timeout = -time.Second }, "timeout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mut(&cfg)
			err := cfg.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("valid config rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid config accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	dial := DialConfig{Addr: "bogus"}
	if err := dial.Validate(); err == nil || !strings.Contains(err.Error(), "coordinator address") {
		t.Fatalf("bad dial address accepted: %v", err)
	}
}
