package cluster

// Coordinator-side stubs of the peer-hosted ftRMA state: remoteLogHost
// and remoteParityHost implement the ftrma residence seams by framing
// every operation towards the worker process that owns the state. Both
// resolve the owning rank's session at call time — membership changes
// (a death, a replacement joining) never invalidate a stub, only the
// frames it would send.
//
// Failure mapping follows the crisis protocol's core invariant — nothing
// may fail before the coordinator Kills the rank at a quiescent point:
//
//   - State *writes* (appends, N flags, parity folds, trims, clears)
//     towards a dead residence degrade silently: the state at a dead rank
//     is destroyed anyway (the paper's own semantics — records and shards
//     die with their process), and these writes run inside epoch closes
//     and barrier-bracketed checkpoint rounds, where an unwind would
//     strand the surviving ranks in the collective rendezvous.
//   - Recovery-time *reads* (log fetch, parity fetch) target survivors
//     only; if one dies mid-recovery regardless, the raised
//     rma.TargetFailedError is caught by the coordinator's recovery guard
//     and condemns the run, not the process.

import (
	"errors"
	"fmt"

	"repro/internal/ftrma"
	"repro/internal/rma"
	"repro/internal/transport/wire"
)

// hostFrameWords caps how many delta words one parity-fold frame carries;
// larger folds split into consecutive frames (folds commute, so the split
// is invisible).
const hostFrameWords = 1 << 17 // 1 MiB of payload words

// remoteCall performs one host-service call towards rank's worker,
// converting connection loss into the fail-stop TargetFailedError.
func (c *Coordinator) remoteCall(rank int, t byte, payload []byte) []byte {
	conn := c.sessionConn(rank)
	if conn == nil {
		panic(rma.TargetFailedError{Rank: rank})
	}
	reply, err := conn.Call(t, payload)
	if err != nil {
		if errors.Is(err, wire.ErrDown) {
			panic(rma.TargetFailedError{Rank: rank})
		}
		panic(fmt.Errorf("cluster: host frame %#x to rank %d: %w", t, rank, err))
	}
	return reply
}

// remoteCallIdempotent is remoteCall for destructive no-ops: a dead or
// unbound target returns (nil, false) instead of failing.
func (c *Coordinator) remoteCallIdempotent(rank int, t byte, payload []byte) ([]byte, bool) {
	return c.callConn(c.sessionConn(rank), rank, t, payload)
}

// remoteCallAwait is remoteCallIdempotent that first waits out a live
// rank's unbound window (its replacement worker joining): records and
// flags bound for an alive rank's residence must land there, not vanish.
func (c *Coordinator) remoteCallAwait(rank int, t byte, payload []byte) ([]byte, bool) {
	return c.callConn(c.awaitSessionConn(rank), rank, t, payload)
}

func (c *Coordinator) callConn(conn *wire.Conn, rank int, t byte, payload []byte) ([]byte, bool) {
	if conn == nil {
		return nil, false
	}
	reply, err := conn.Call(t, payload)
	if err != nil {
		if errors.Is(err, wire.ErrDown) {
			return nil, false
		}
		panic(fmt.Errorf("cluster: host frame %#x to rank %d: %w", t, rank, err))
	}
	return reply, true
}

// ---- remoteLogHost ----------------------------------------------------------

// remoteLogHost is the coordinator's handle on the log records resident
// in rank's worker process.
type remoteLogHost struct {
	c    *Coordinator
	rank int
}

var _ ftrma.LogHost = (*remoteLogHost)(nil)

// append ships one record to the residence. A dead residence drops the
// record silently — that is the paper's own semantics (a rank's records
// die with it), and the protocol invariant demands it: appends run inside
// epoch closes and barrier-bracketed checkpoint rounds, where unwinding a
// survivor would strand the other ranks in the collective. Nothing is
// lost semantically: state at a dead rank is unreachable for recovery
// anyway, and the round it was appended in is rolled back or re-executed.
func (h *remoteLogHost) append(mode byte, peer int, rec ftrma.LogRecord) int {
	var e wire.Enc
	e.B(mode)
	e.I(peer)
	encRecord(&e, rec)
	reply, ok := h.c.remoteCallAwait(h.rank, cLogAppend, e.Bytes())
	if !ok {
		return 0
	}
	d := wire.NewDec(reply)
	after := d.I()
	if d.Failed() {
		panic(errors.New("cluster: malformed log-append reply"))
	}
	return after
}

func (h *remoteLogHost) AppendLP(target int, rec ftrma.LogRecord) int {
	return h.append(logModeLP, target, rec)
}

func (h *remoteLogHost) AppendLG(src int, rec ftrma.LogRecord) int {
	return h.append(logModeLG, src, rec)
}

// SetN degrades like append: an N flag at a dead rank no longer guards
// anything.
func (h *remoteLogHost) SetN(src int, v bool) {
	var e wire.Enc
	e.I(src)
	if v {
		e.B(1)
	} else {
		e.B(0)
	}
	h.c.remoteCallAwait(h.rank, cLogSetN, e.Bytes())
}

// fetch runs the recovery's log-fetch request/response about one peer.
func (h *remoteLogHost) fetch(peer int) (n, m bool, lp, lg []ftrma.LogRecord) {
	var e wire.Enc
	e.I(peer)
	d := wire.NewDec(h.c.remoteCall(h.rank, cLogFetch, e.Bytes()))
	n = d.B() != 0
	m = d.B() != 0
	decList := func() []ftrma.LogRecord {
		count := d.I()
		if d.Failed() || count > wire.MaxFrame/16 {
			panic(errors.New("cluster: malformed log-fetch reply"))
		}
		out := make([]ftrma.LogRecord, 0, min(count, 4096))
		for i := 0; i < count; i++ {
			rec, ok := decRecord(d)
			if !ok {
				panic(errors.New("cluster: malformed log-fetch record"))
			}
			out = append(out, rec)
		}
		return out
	}
	lp = decList()
	lg = decList()
	if d.Failed() {
		panic(errors.New("cluster: malformed log-fetch reply"))
	}
	return n, m, lp, lg
}

// FetchAbout implements ftrma.LogFetcher: the recovery's whole gathering
// about one peer in a single log-fetch request/response.
func (h *remoteLogHost) FetchAbout(peer int) (n, m bool, lp, lg []ftrma.LogRecord) {
	return h.fetch(peer)
}

func (h *remoteLogHost) FlagN(src int) bool {
	n, _, _, _ := h.fetch(src)
	return n
}

func (h *remoteLogHost) FlagM(target int) bool {
	_, m, _, _ := h.fetch(target)
	return m
}

func (h *remoteLogHost) CopyLP(target int) []ftrma.LogRecord {
	_, _, lp, _ := h.fetch(target)
	return lp
}

func (h *remoteLogHost) CopyLG(src int) []ftrma.LogRecord {
	_, _, _, lg := h.fetch(src)
	return lg
}

func (h *remoteLogHost) trim(mode byte, peer, a, b int) int {
	var e wire.Enc
	e.B(mode)
	e.I(peer)
	e.I(a)
	e.I(b)
	reply, ok := h.c.remoteCallIdempotent(h.rank, cLogTrim, e.Bytes())
	if !ok {
		return 0
	}
	d := wire.NewDec(reply)
	freed := d.I()
	if d.Failed() {
		panic(errors.New("cluster: malformed log-trim reply"))
	}
	return freed
}

func (h *remoteLogHost) TrimLP(target, epochNow int) int {
	return h.trim(logModeLP, target, epochNow, 0)
}

func (h *remoteLogHost) TrimLG(src, snapGNC, snapGC int) int {
	return h.trim(logModeLG, src, snapGNC, snapGC)
}

func (h *remoteLogHost) clear(mode byte) int {
	var e wire.Enc
	e.B(mode)
	reply, ok := h.c.remoteCallIdempotent(h.rank, cLogClear, e.Bytes())
	if !ok {
		return 0 // a dead worker's records are already gone
	}
	d := wire.NewDec(reply)
	freed := d.I()
	if d.Failed() {
		panic(errors.New("cluster: malformed log-clear reply"))
	}
	return freed
}

func (h *remoteLogHost) Clear() int { return h.clear(clearModeClear) }

func (h *remoteLogHost) Reset() { h.clear(clearModeReset) }

func (h *remoteLogHost) Bytes() int {
	var e wire.Enc
	e.B(queryModeBytes)
	reply, ok := h.c.remoteCallIdempotent(h.rank, cLogQuery, e.Bytes())
	if !ok {
		return 0
	}
	d := wire.NewDec(reply)
	b := d.I()
	if d.Failed() {
		panic(errors.New("cluster: malformed log-query reply"))
	}
	return b
}

func (h *remoteLogHost) LargestPeer() (int, int) {
	var e wire.Enc
	e.B(queryModeLargestPeer)
	reply, ok := h.c.remoteCallIdempotent(h.rank, cLogQuery, e.Bytes())
	if !ok {
		return -1, 0
	}
	d := wire.NewDec(reply)
	peer := d.I() - 1
	bytes := d.I()
	if d.Failed() {
		panic(errors.New("cluster: malformed log-query reply"))
	}
	return peer, bytes
}

// ---- remoteParityHost -------------------------------------------------------

// remoteParityHost is the coordinator's handle on the parity shards of
// one (group, level), resident at the elected hosting rank's worker.
type remoteParityHost struct {
	c     *Coordinator
	group int
	level int
	rank  int
	k     int // group members (data shards)
	m     int // checksums (parity shards)
	words int // shard length
}

var _ ftrma.ParityHost = (*remoteParityHost)(nil)

// FoldRanges ships the member's checkpoint change as parity-fold frames:
// the coordinator computes each range's xor-delta once (old is its base
// copy, which never leaves it) and the host folds the delta into every
// shard where the shards live. Frames are split at hostFrameWords; folds
// commute, so the split is invisible in the resulting bits. A residence
// that died under the fold returns false — the shards are lost and the
// group marks the level invalid; panicking here is forbidden (folds run
// inside barrier-bracketed collectives).
func (h *remoteParityHost) FoldRanges(memberIdx int, oldData, newData []uint64, ranges []rma.DirtyRange, workers int) bool {
	i := 0
	var delta []uint64 // xor-delta scratch, reused across frames
	for i < len(ranges) {
		var e wire.Enc
		e.I(h.group)
		e.I(h.level)
		e.I(memberIdx)
		// Count how many ranges fit this frame.
		n, words := 0, 0
		for i+n < len(ranges) && (n == 0 || words+ranges[i+n].Len <= hostFrameWords) {
			words += ranges[i+n].Len
			n++
		}
		e.I(n)
		for _, r := range ranges[i : i+n] {
			e.I(r.Off)
			if cap(delta) < r.Len {
				delta = make([]uint64, r.Len)
			}
			delta = delta[:r.Len]
			for j := range delta {
				delta[j] = oldData[r.Off+j] ^ newData[r.Off+j]
			}
			e.Words(delta)
		}
		if _, ok := h.c.remoteCallIdempotent(h.rank, cParityFold, e.Bytes()); !ok {
			return false
		}
		i += n
	}
	return true
}

func (h *remoteParityHost) Shards() [][]uint64 {
	var e wire.Enc
	e.I(h.group)
	e.I(h.level)
	d := wire.NewDec(h.c.remoteCall(h.rank, cParityFetch, e.Bytes()))
	m := d.I()
	if d.Failed() || m != h.m {
		panic(errors.New("cluster: malformed parity-fetch reply"))
	}
	shards := make([][]uint64, m)
	for i := range shards {
		shards[i] = make([]uint64, h.words)
		if !d.WordsInto(shards[i]) {
			panic(errors.New("cluster: malformed parity-fetch shard"))
		}
	}
	return shards
}

func (h *remoteParityHost) Install(shards [][]uint64) {
	var e wire.Enc
	e.I(h.group)
	e.I(h.level)
	e.I(h.k)
	e.I(h.m)
	e.I(h.words)
	for _, s := range shards {
		e.Words(s)
	}
	h.c.remoteCall(h.rank, cParityHandoff, e.Bytes())
}
