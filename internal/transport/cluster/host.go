package cluster

// Worker-side state hosting: the peer-to-peer half of the cluster's ftRMA
// protocol. Before this service existed the coordinator held every rank's
// access logs and every group's parity shards next to the runtime; now a
// worker process is the *residence* of (a) its own rank's LP/LG records
// and N/M flags and (b) the parity shards of any group whose host
// election landed on its rank. The coordinator drives the state over the
// wire — log-append and parity-fold frames on the hot path, log-fetch and
// parity-fetch request/responses during recovery, parity-handoff when a
// dead host's shards are rebuilt onto a new rank — so a kill -9 of a
// worker genuinely destroys the records and shards it hosted, which is
// exactly the failure model the paper's recovery protocol is built for.
//
// All host frames are served from the worker's wire connection Handler on
// per-frame goroutines; the stateHost mutex makes them atomic against
// each other. The coordinator serializes protocol-level access exactly as
// it did for local state (structure locks for logs, the group mutex for
// parity), so the per-frame locking is memory safety, not protocol order.

import (
	"fmt"
	"sync"

	"repro/internal/erasure"
	"repro/internal/ftrma"
	"repro/internal/rma"
	"repro/internal/transport"
	"repro/internal/transport/wire"
)

// parityKey addresses one hosted shard set.
type parityKey struct {
	group int
	level int
}

// hostedParity is one (group, level)'s resident shards plus the code that
// folds into them.
type hostedParity struct {
	k      int // members (data shards)
	rs     *erasure.RS
	shards [][]uint64
}

// stateHost is a worker process's resident ftRMA recovery state.
type stateHost struct {
	mu     sync.Mutex
	logs   ftrma.LogHost
	parity map[parityKey]*hostedParity

	// Replay-install stream: a causal replacement's coordinator feeds the
	// gathered records here in chunks; the done marker releases the
	// client's catch-up loop blocked in AwaitReplayLogs.
	replayPuts  []ftrma.LogRecord
	replayGets  []ftrma.LogRecord
	replayReady chan struct{}
}

func newStateHost() *stateHost {
	return &stateHost{
		parity:      make(map[parityKey]*hostedParity),
		replayReady: make(chan struct{}),
	}
}

// AwaitReplayLogs blocks until the coordinator's replay-install stream is
// complete and returns the causally ordered records (puts, gets).
func (h *stateHost) AwaitReplayLogs() ([]ftrma.LogRecord, []ftrma.LogRecord) {
	<-h.replayReady
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.replayPuts, h.replayGets
}

// handle serves one host-service frame; it is the worker connection's
// wire.Handler (workers never receive cluster op frames — those flow the
// other way).
func (h *stateHost) handle(t byte, payload []byte) (byte, []byte, error) {
	d := wire.NewDec(payload)
	var reply wire.Enc
	err := func() error {
		h.mu.Lock()
		defer h.mu.Unlock()
		switch t {
		case cHostInit:
			return h.init(d)
		case cLogAppend:
			return h.logAppend(d, &reply)
		case cLogSetN:
			return h.logSetN(d)
		case cLogTrim:
			return h.logTrim(d, &reply)
		case cLogClear:
			return h.logClear(d, &reply)
		case cLogQuery:
			return h.logQuery(d, &reply)
		case cLogFetch:
			return h.logFetch(d, &reply)
		case cParityHandoff:
			return h.parityHandoff(d)
		case cParityFold:
			return h.parityFold(d)
		case cParityFetch:
			return h.parityFetch(d, &reply)
		case cReplayInstall:
			return h.replayInstall(d)
		}
		return fmt.Errorf("unknown host frame type %#x", t)
	}()
	if err != nil {
		return 0, nil, wire.RemoteFail{Code: wire.CodeGeneric, Msg: err.Error()}
	}
	return t, reply.Bytes(), nil
}

// init builds the log residence with the coordinator's resolved arena
// tuning, so byte accounting (the §6.2 demand-checkpoint budget) is
// computed from identical structures on both sides.
func (h *stateHost) init(d *wire.Dec) error {
	slabWords := d.I()
	segRecords := d.I()
	compact := d.F()
	if d.Failed() {
		return fmt.Errorf("malformed host init")
	}
	h.logs = ftrma.NewLocalLogHost(slabWords, segRecords, compact)
	return nil
}

func (h *stateHost) store() (ftrma.LogHost, error) {
	if h.logs == nil {
		return nil, fmt.Errorf("log host not initialized")
	}
	return h.logs, nil
}

// Log-frame trim/clear modes.
const (
	logModeLP byte = 0 // cLogAppend/cLogTrim: put log
	logModeLG byte = 1 // cLogAppend/cLogTrim: get log

	clearModeClear byte = 0 // cLogClear: Clear (N flags survive)
	clearModeReset byte = 1 // cLogClear: Reset (post-rollback wipe)

	queryModeBytes       byte = 0 // cLogQuery: total footprint
	queryModeLargestPeer byte = 1 // cLogQuery: §6.2 victim scan
)

func (h *stateHost) logAppend(d *wire.Dec, reply *wire.Enc) error {
	mode := d.B()
	peer := d.I()
	rec, ok := decRecord(d)
	if !ok || d.Failed() {
		return fmt.Errorf("malformed log append")
	}
	logs, err := h.store()
	if err != nil {
		return err
	}
	var after int
	switch mode {
	case logModeLP:
		after = logs.AppendLP(peer, rec)
	case logModeLG:
		after = logs.AppendLG(peer, rec)
	default:
		return fmt.Errorf("unknown log append mode %d", mode)
	}
	reply.I(after)
	return nil
}

func (h *stateHost) logSetN(d *wire.Dec) error {
	src := d.I()
	v := d.B()
	if d.Failed() {
		return fmt.Errorf("malformed set-n")
	}
	logs, err := h.store()
	if err != nil {
		return err
	}
	logs.SetN(src, v != 0)
	return nil
}

func (h *stateHost) logTrim(d *wire.Dec, reply *wire.Enc) error {
	mode := d.B()
	peer := d.I()
	a := d.I()
	b := d.I()
	if d.Failed() {
		return fmt.Errorf("malformed log trim")
	}
	logs, err := h.store()
	if err != nil {
		return err
	}
	switch mode {
	case logModeLP:
		reply.I(logs.TrimLP(peer, a))
	case logModeLG:
		reply.I(logs.TrimLG(peer, a, b))
	default:
		return fmt.Errorf("unknown log trim mode %d", mode)
	}
	return nil
}

func (h *stateHost) logClear(d *wire.Dec, reply *wire.Enc) error {
	mode := d.B()
	if d.Failed() {
		return fmt.Errorf("malformed log clear")
	}
	logs, err := h.store()
	if err != nil {
		return err
	}
	switch mode {
	case clearModeClear:
		reply.I(logs.Clear())
	case clearModeReset:
		logs.Reset()
		reply.I(0)
	default:
		return fmt.Errorf("unknown log clear mode %d", mode)
	}
	return nil
}

func (h *stateHost) logQuery(d *wire.Dec, reply *wire.Enc) error {
	mode := d.B()
	if d.Failed() {
		return fmt.Errorf("malformed log query")
	}
	logs, err := h.store()
	if err != nil {
		return err
	}
	switch mode {
	case queryModeBytes:
		reply.I(logs.Bytes())
	case queryModeLargestPeer:
		peer, bytes := logs.LargestPeer()
		reply.I(peer + 1) // -1 encodes as 0
		reply.I(bytes)
	default:
		return fmt.Errorf("unknown log query mode %d", mode)
	}
	return nil
}

// logFetch serves a recovery's log gathering about one failed peer: the N
// and M flags plus the materialized LP and LG records, in one
// request/response frame.
func (h *stateHost) logFetch(d *wire.Dec, reply *wire.Enc) error {
	peer := d.I()
	if d.Failed() {
		return fmt.Errorf("malformed log fetch")
	}
	logs, err := h.store()
	if err != nil {
		return err
	}
	boolByte := func(v bool) byte {
		if v {
			return 1
		}
		return 0
	}
	reply.B(boolByte(logs.FlagN(peer)))
	reply.B(boolByte(logs.FlagM(peer)))
	lp := logs.CopyLP(peer)
	lg := logs.CopyLG(peer)
	reply.I(len(lp))
	for _, r := range lp {
		encRecord(reply, r)
	}
	reply.I(len(lg))
	for _, r := range lg {
		encRecord(reply, r)
	}
	return nil
}

// replayInstall accumulates one chunk of the coordinator's causal replay
// stream; the done marker completes the stream and wakes the client's
// catch-up loop. Order within and across chunks is the coordinator's
// sorted causal order and is preserved verbatim.
func (h *stateHost) replayInstall(d *wire.Dec) error {
	done := d.B()
	puts, ok1 := decRecordList(d)
	gets, ok2 := decRecordList(d)
	if d.Failed() || !ok1 || !ok2 {
		return fmt.Errorf("malformed replay install")
	}
	h.replayPuts = append(h.replayPuts, puts...)
	h.replayGets = append(h.replayGets, gets...)
	if done != 0 {
		select {
		case <-h.replayReady:
			return fmt.Errorf("duplicate replay-install done marker")
		default:
			close(h.replayReady)
		}
	}
	return nil
}

// parityHandoff installs (group, level)'s shard contents at this worker:
// the initial seeding at the membership gate, or the rebuilt shards after
// the previous host died.
func (h *stateHost) parityHandoff(d *wire.Dec) error {
	group := d.I()
	level := d.I()
	k := d.I()
	m := d.I()
	words := d.I()
	if d.Failed() || m < 1 || k < 1 || words < 0 || m > 64 || words > wire.MaxFrame/8 {
		return fmt.Errorf("malformed parity handoff")
	}
	shards := make([][]uint64, m)
	for i := range shards {
		shards[i] = make([]uint64, words)
		if !d.WordsInto(shards[i]) {
			return fmt.Errorf("malformed parity handoff shard %d", i)
		}
	}
	hp := &hostedParity{k: k, shards: shards}
	if m > 1 {
		rs, err := erasure.NewRS(k, m)
		if err != nil {
			return err
		}
		hp.rs = rs
	}
	h.parity[parityKey{group, level}] = hp
	return nil
}

// parityFold folds one member's checkpoint delta into the resident
// shards, where they live: shards[0] ^= delta for XOR, coef-multiplied
// under Reed–Solomon — bit-identical to the coordinator's old local fold.
func (h *stateHost) parityFold(d *wire.Dec) error {
	group := d.I()
	level := d.I()
	memberIdx := d.I()
	count := d.I()
	// Cap before allocating: a corrupt count must produce an error reply,
	// not a fatal OOM in the hosting worker (the same guard the sibling
	// decoders apply).
	if d.Failed() || count > wire.MaxFrame/16 {
		return fmt.Errorf("malformed parity fold")
	}
	hp := h.parity[parityKey{group, level}]
	if hp == nil {
		return fmt.Errorf("group %d level %d parity is not hosted here", group, level)
	}
	if memberIdx >= hp.k {
		return fmt.Errorf("member index %d out of range", memberIdx)
	}
	words := len(hp.shards[0])
	// Decode and validate every range before folding the first one, so a
	// malformed tail can never leave the shards half-folded.
	offs := make([]int, 0, min(count, 4096))
	deltas := make([][]uint64, 0, min(count, 4096))
	for i := 0; i < count; i++ {
		off := d.I()
		delta := d.Words()
		if d.Failed() || len(delta) > words || off > words-len(delta) {
			return fmt.Errorf("malformed parity fold range %d", i)
		}
		offs = append(offs, off)
		deltas = append(deltas, delta)
	}
	for i := range offs {
		ftrma.FoldDelta(hp.rs, hp.shards, memberIdx, offs[i], deltas[i])
	}
	return nil
}

func (h *stateHost) parityFetch(d *wire.Dec, reply *wire.Enc) error {
	group := d.I()
	level := d.I()
	if d.Failed() {
		return fmt.Errorf("malformed parity fetch")
	}
	hp := h.parity[parityKey{group, level}]
	if hp == nil {
		return fmt.Errorf("group %d level %d parity is not hosted here", group, level)
	}
	reply.I(len(hp.shards))
	for _, s := range hp.shards {
		reply.Words(s)
	}
	return nil
}

// ---- LogRecord wire form ----------------------------------------------------

// encRecord appends one log record (docs/WIRE.md "record" production).
func encRecord(e *wire.Enc, r ftrma.LogRecord) {
	e.B(byte(r.Kind))
	e.I(r.Src)
	e.I(r.Trg)
	e.I(r.Off)
	e.I(r.LocalOff + 1) // -1 (private destination) encodes as 0
	e.B(byte(r.Op))
	if r.Combine {
		e.B(1)
	} else {
		e.B(0)
	}
	e.I(r.EC)
	e.I(r.GC)
	e.I(r.SC)
	e.I(r.GNC)
	e.Words(r.Data)
}

// decRecordList reads a counted record list (the shared production of the
// log-fetch, replay-install, and replay frames).
func decRecordList(d *wire.Dec) ([]ftrma.LogRecord, bool) {
	count := d.I()
	if d.Failed() || count > wire.MaxFrame/16 {
		return nil, false
	}
	out := make([]ftrma.LogRecord, 0, min(count, 4096))
	for i := 0; i < count; i++ {
		rec, ok := decRecord(d)
		if !ok {
			return nil, false
		}
		out = append(out, rec)
	}
	return out, true
}

// decRecord reads one log record.
func decRecord(d *wire.Dec) (ftrma.LogRecord, bool) {
	var r ftrma.LogRecord
	r.Kind = ftrma.LogKind(d.B())
	r.Src = d.I()
	r.Trg = d.I()
	r.Off = d.I()
	r.LocalOff = d.I() - 1
	op := d.B()
	if !transport.ValidRed(op) {
		return r, false
	}
	r.Op = rma.ReduceOp(op)
	r.Combine = d.B() != 0
	r.EC = d.I()
	r.GC = d.I()
	r.SC = d.I()
	r.GNC = d.I()
	r.Data = d.Words()
	return r, !d.Failed()
}
