package cluster

import "os"

func init() {
	if os.Getenv("REPRO_CLUSTER_DEBUG") != "" {
		debugCrisis = true
	}
}
