package transport_test

// Fabric observability conformance: the lease near-miss accounting, the
// crisis span/metric surface, and the allocation cost of the fBatch-path
// instrumentation, all over the same in-process harness as the fabric
// conformance scenarios.

import (
	"net"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/transport/flaky"
)

// startObsFabric is startFabric with per-rank obs registries and flight
// recorders threaded through JoinConfig.
func startObsFabric(t *testing.T, n, groups int, tun fabric.Tuning) ([]*fabNode, []*obs.Registry, []*obs.Recorder) {
	t.Helper()
	seedLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("seed listener: %v", err)
	}
	seed, err := fabric.NewSeed(fabric.SeedConfig{
		N: n, WindowWords: fabWindowWords(n), Groups: groups,
		Tuning: tun, Listener: seedLn, Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("seed: %v", err)
	}
	t.Cleanup(func() { seed.Close() })

	// Joins race for ranks, so registries are claimed post-join by rank.
	type joined struct {
		fn  *fabNode
		reg *obs.Registry
		fr  *obs.Recorder
		err error
	}
	ch := make(chan joined, n)
	for i := 0; i < n; i++ {
		go func() {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				ch <- joined{err: err}
				return
			}
			d := flaky.WrapDialer(transport.NetDialer{})
			reg := obs.New(-1)
			fr := obs.NewRecorder(-1, 256)
			fr.SetEnabled(true)
			nd, err := fabric.Join(fabric.JoinConfig{
				Join: seed.Addr(), Addr: ln.Addr().String(),
				Listener: ln, Dialer: d, Logf: t.Logf,
				Obs: reg, Flight: fr,
			})
			ch <- joined{fn: &fabNode{nd: nd, dialer: d}, reg: reg, fr: fr, err: err}
		}()
	}
	nodes := make([]*fabNode, n)
	regs := make([]*obs.Registry, n)
	frs := make([]*obs.Recorder, n)
	for i := 0; i < n; i++ {
		j := <-ch
		if j.err != nil {
			t.Fatalf("join: %v", j.err)
		}
		r := j.fn.nd.Rank()
		nodes[r], regs[r], frs[r] = j.fn, j.reg, j.fr
	}
	for _, fn := range nodes {
		fn := fn
		t.Cleanup(func() { fn.nd.Close() })
	}
	return nodes, regs, frs
}

func driveBoth(t *testing.T, nodes []*fabNode, n, from, to int) {
	t.Helper()
	errs := make(chan error, len(nodes))
	for _, fn := range nodes {
		fn := fn
		go func() { errs <- drive(fn.nd, n, from, to) }()
	}
	for range nodes {
		if err := <-errs; err != nil {
			t.Fatalf("drive: %v", err)
		}
	}
}

// TestFabricLeaseNearMiss: a deliberately tight lease shows nonzero
// near-miss accounting (fabric.lease.close_calls) without a single
// condemnation. The dial-side mute starves rank 0's reads for longer
// than the near-miss threshold (ReadTimeout - Heartbeat, the last lease
// window slice) but well short of the lease itself; the first frame
// through after the unmute lands as a near miss on a still-live peer.
func TestFabricLeaseNearMiss(t *testing.T) {
	const n = 2
	tun := fabric.Tuning{
		LeaseInterval:  500 * time.Millisecond,
		LeaseMiss:      3, // 1.5s lease, near-miss threshold at 1s
		GossipInterval: 25 * time.Millisecond,
	}
	nodes, regs, frs := startObsFabric(t, n, 1, tun)
	for _, fr := range frs {
		obs.DumpOnFailure(t, fr)
	}

	// Phase 0 establishes the dialed conns and pins "last frame seen" on
	// rank 0's conn to rank 1 at roughly now.
	driveBoth(t, nodes, n, 0, 1)

	// Starve rank 0's reads from rank 1 for 1.1s: past the 1s near-miss
	// threshold, 400ms short of lease expiry.
	addr1 := nodes[1].nd.Addr()
	nodes[0].dialer.Mute(addr1)
	time.Sleep(1100 * time.Millisecond)
	nodes[0].dialer.Unmute(addr1)

	// Phase 1 forces immediate frames through the starved conn (the
	// fBatch reply ends the read gap, no waiting on heartbeat timing).
	driveBoth(t, nodes, n, 1, 2)

	s0 := regs[0].Snapshot()
	if s0.Counters["fabric.lease.close_calls"] == 0 {
		t.Fatalf("no lease near miss recorded on rank 0: %v", s0.Counters)
	}
	for r, reg := range regs {
		s := reg.Snapshot()
		if s.Counters["fabric.condemnations"] != 0 {
			t.Fatalf("rank %d condemned a peer under a near-miss-only fault: %v", r, s.Counters)
		}
		if rec := nodes[r].nd.Recoveries(); rec != 0 {
			t.Fatalf("rank %d recovered %d times, want 0", r, rec)
		}
	}
	// The near miss is also on the flight ring with its gap.
	var miss bool
	for _, e := range frs[0].Events() {
		if e.Code == obs.EvLeaseNearMiss && e.A == 1 && e.B >= 1000*1000 {
			miss = true
		}
	}
	if !miss {
		t.Fatalf("no EvLeaseNearMiss (peer 1, gap >= 1s) on rank 0's flight ring: %+v", frs[0].Events())
	}
}

// TestFabricBatchMetrics pins the benign-path metric surface: batch
// send/recv counts, flush and gsync latency samples, fold accounting,
// and matching epoch events on the flight ring.
func TestFabricBatchMetrics(t *testing.T) {
	const n = 2
	nodes, regs, frs := startObsFabric(t, n, 1, confTuning)
	driveBoth(t, nodes, n, 0, fabPhases)

	for r, reg := range regs {
		s := reg.Snapshot()
		if s.Counters["fabric.batch.sent"] < fabPhases || s.Counters["fabric.batch.recv"] < fabPhases {
			t.Fatalf("rank %d batch counters too low: %v", r, s.Counters)
		}
		for _, h := range []string{"fabric.flush.us", "fabric.gsync.wait.us", "fabric.fold.us"} {
			if s.Histograms[h].Count == 0 || s.Histograms[h].Sum == 0 {
				t.Fatalf("rank %d histogram %s empty: %+v", r, h, s.Histograms[h])
			}
		}
		if s.Counters["fabric.fold.sent"] != fabPhases {
			t.Fatalf("rank %d fold.sent = %d, want %d", r, s.Counters["fabric.fold.sent"], fabPhases)
		}
		if s.Counters["fabric.condemnations"] != 0 || s.Counters["fabric.crises"] != 0 {
			t.Fatalf("rank %d failure counters nonzero on the benign path: %v", r, s.Counters)
		}
		var opens, closes uint64
		for _, e := range frs[r].Events() {
			switch e.Code {
			case obs.EvEpochOpen:
				opens++
			case obs.EvEpochClose:
				closes++
			}
		}
		if opens != fabPhases || closes != fabPhases {
			t.Fatalf("rank %d epoch events: %d opens, %d closes, want %d each", r, opens, closes, fabPhases)
		}
	}
	// The single parity host folded every member each phase.
	hosted := regs[0].Snapshot().Counters["fabric.fold.hosted"] + regs[1].Snapshot().Counters["fabric.fold.hosted"]
	if hosted != n*fabPhases {
		t.Fatalf("fold.hosted total = %d, want %d", hosted, n*fabPhases)
	}
}

// TestFabricBatchAllocsSteadyState pins the allocation budget of the
// instrumented fBatch path: a steady-state single-put flush, with the
// metrics registry attached and the flight recorder disabled (the
// production default), must stay within the same budget the path had
// before instrumentation — the added counters, histogram samples, and
// disabled-recorder checks are allocation-free.
func TestFabricBatchAllocsSteadyState(t *testing.T) {
	const n = 2
	nodes, _, frs := startObsFabric(t, n, 1, confTuning)
	for _, fr := range frs {
		fr.SetEnabled(false)
	}
	nd := nodes[0].nd
	data := []uint64{0xabc}
	flush := func() {
		nd.Put(1, 0, data)
		nd.Flush(1)
	}
	for i := 0; i < 50; i++ {
		flush()
	}
	avg := testing.AllocsPerRun(100, flush)
	// The uninstrumented path allocates ~15/op (pend slice, payload copy,
	// wire encode, reply decode); 25 leaves headroom for pool misses while
	// still catching an accidental per-op allocation in the obs hooks.
	if avg > 25 {
		t.Fatalf("instrumented fBatch flush allocates %.1f/op steady state, want <= 25", avg)
	}
	t.Logf("instrumented fBatch flush steady state: %.1f allocs/op", avg)
	if total := frs[0].Total(); total != 0 {
		t.Fatalf("disabled flight recorder stored %d events", total)
	}
}
