// Package transport is the delivery seam of the RMA runtime: the interface
// between a rank's communication engine (package rma buffers puts, gets and
// accumulates per target and releases them when the epoch towards that
// target closes) and the mechanism that moves those accesses into the
// target's window.
//
// The package defines three contracts:
//
//   - Endpoint is the target side: one rank's exposed window. It applies
//     puts/accumulates, serves reads, and executes the blocking atomics and
//     structure locks, all atomically with respect to each other.
//   - Handler is the source side of the wire: "deliver this epoch's batch
//     to target", plus the blocking request/response operations. Flush
//     receives the entire buffered epoch towards one target at once —
//     implementations are expected to move it as a single unit (the
//     loopback applies it in one critical pass, the tcp transport frames
//     it as one flush message), so closing an epoch costs one round trip
//     no matter how many accesses it carries.
//   - Transport is a closable Handler; rma.World plugs one in per rank.
//
// Implementations live in the subpackages: loopback (direct window access,
// the semantics the in-process World always had), tcp (a length-prefixed
// binary wire protocol between OS processes), and flaky (a fault-injecting
// wrapper for tests). The cluster subpackage builds a process-per-rank
// runtime on top of the same wire format, including the host-service
// frames that carry the peer-hosted ftRMA recovery state.
//
// # Invariants
//
//   - One frame per epoch close: closing an epoch towards a target is
//     exactly one Flush call, and on the tcp transport exactly one framed
//     flush message (and one reply) however many accesses the epoch
//     buffered. TestTCPFlushIsOneFrame asserts it; BENCH_transport.json's
//     frames_per_flush gates it in CI.
//   - Observational equivalence: the conformance suite runs one scenario
//     table (intra-epoch ordering, epoch visibility, atomics, locks,
//     kill-mid-epoch) against every transport and demands bit-identical
//     window outcomes.
//   - Fail-stop surfacing: transports report an unreachable or condemned
//     peer as PeerDeadError, which package rma maps onto its fail-stop
//     TargetFailedError; failure detection is heartbeat + read-deadline
//     based (see the wire subpackage's rules, normative in docs/WIRE.md).
package transport

import (
	"fmt"
	"net"
	"time"
)

// Reduce-op codes carried on the wire. They mirror rma.ReduceOp value for
// value (package rma compile-checks the correspondence); transport cannot
// import rma, as rma imports transport.
const (
	RedReplace uint8 = iota
	RedSum
	RedMax
	RedMin
	RedXor
	numRed
)

// ValidRed reports whether a wire reduce-op code is in range (decoders
// reject frames with out-of-range codes instead of panicking later).
func ValidRed(r uint8) bool { return r < numRed }

// Op kinds of a flush batch.
const (
	// KindPut replaces target words at Off with Data.
	KindPut uint8 = iota
	// KindAcc combines Data into the target words at Off with Red.
	KindAcc
	// KindGet reads len(Dest) words from Off into Dest.
	KindGet
	numKinds
)

// Op is one buffered access of an epoch. Puts and accumulates carry their
// payload in Data; gets carry their destination buffer in Dest, which the
// transport fills before Flush returns (the caller handed out that buffer
// at issue time with "contents defined when the epoch closes" semantics).
type Op struct {
	Kind uint8
	Red  uint8 // reduce op for KindAcc
	Off  int   // target window word offset
	Data []uint64
	Dest []uint64
}

// Words returns the payload size of the op in 64-bit words.
func (o Op) Words() int {
	if o.Kind == KindGet {
		return len(o.Dest)
	}
	return len(o.Data)
}

// PeerDeadError reports that the target rank's process is unreachable or
// has been declared failed by the failure detector. Package rma maps it to
// its fail-stop TargetFailedError.
type PeerDeadError struct{ Rank int }

func (e PeerDeadError) Error() string {
	return fmt.Sprintf("transport: peer rank %d is dead", e.Rank)
}

// RemoteError carries a failure reported by the remote side of the wire
// (usage errors such as out-of-window accesses or mismatched unlocks that
// would panic in-process).
type RemoteError struct{ Msg string }

func (e RemoteError) Error() string { return "transport: remote: " + e.Msg }

// Endpoint is one rank's window as seen by a transport: the apply/read/
// atomic surface the delivery path needs, nothing more. rma adapts its
// windows to this interface; every method is atomic with respect to the
// others (the window lock).
//
// Lock and Unlock carry the virtual-time cost model of the runtime's
// structure locks: now is the requester's virtual clock, latency the
// modeled one-way lock-traffic latency, and Lock's return value is the
// requester's virtual time after acquisition. Transports forward these
// numbers opaquely.
type Endpoint interface {
	ApplyPut(off int, data []uint64)
	ApplyAccumulate(off int, data []uint64, red uint8)
	ReadInto(off int, dst []uint64)
	CompareAndSwap(off int, old, new uint64) uint64
	FetchAndOp(off int, operand uint64, red uint8) uint64
	GetAccumulate(off int, data []uint64, red uint8) []uint64
	Lock(str, src int, now, latency float64) float64
	Unlock(str, src int, now, latency float64)
}

// Handler is the source-side delivery contract. src identifies the calling
// rank, target the rank whose window is addressed. Every method is
// synchronous: when Flush returns, all puts are applied and all get
// destinations are filled.
type Handler interface {
	// Flush delivers one epoch's buffered accesses towards target as a
	// single unit, in order.
	Flush(src, target int, ops []Op) error
	CompareAndSwap(src, target, off int, old, new uint64) (uint64, error)
	FetchAndOp(src, target, off int, operand uint64, red uint8) (uint64, error)
	GetAccumulate(src, target, off int, data []uint64, red uint8) ([]uint64, error)
	Lock(src, target, str int, now, latency float64) (float64, error)
	Unlock(src, target, str int, now, latency float64) error
}

// Transport is a closable Handler — what rma.World owns per rank.
type Transport interface {
	Handler
	Close() error
}

// Dialer abstracts connection establishment between nodes: given an
// address, it opens a byte stream that the framed wire protocol is spoken
// over. The address syntax is dialer-specific — "host:port" for the TCP
// dialer, a ring id for the shared-memory fabric's dialer — which is what
// lets one constructor serve every medium: the tcp transport dials its
// peers through a Dialer, the shm transport plugs in a ring-pair Dialer,
// the flaky package wraps any Dialer with fault injection, and the
// symmetric fabric runtime dials the addresses its membership table
// gossips, never caring which medium carries the frames.
//
// Implementations must be safe for concurrent use.
type Dialer interface {
	Dial(addr string) (net.Conn, error)
}

// DialerFunc adapts a function to the Dialer interface.
type DialerFunc func(addr string) (net.Conn, error)

// Dial implements Dialer.
func (f DialerFunc) Dial(addr string) (net.Conn, error) { return f(addr) }

// NetDialer is the production Dialer: a TCP socket per address, with a
// bounded connect. The zero value uses a 5s timeout.
type NetDialer struct {
	// Timeout bounds connection establishment; 0 means 5s.
	Timeout time.Duration
}

// Dial implements Dialer over net.DialTimeout.
func (d NetDialer) Dial(addr string) (net.Conn, error) {
	to := d.Timeout
	if to == 0 {
		to = 5 * time.Second
	}
	return net.DialTimeout("tcp", addr, to)
}
