// Package tcp is the out-of-process transport: the same delivery contract
// as the loopback, spoken between OS processes over a length-prefixed
// binary wire protocol (package wire).
//
// One epoch's buffered accesses towards a target travel as a single flush
// frame — closing an epoch costs one round trip however many puts, gets,
// and accumulates it carries. Blocking atomics and structure locks are
// request/response frames; a lock request may block server-side for as
// long as the structure is held (each incoming frame is served on its own
// goroutine, so a blocked lock never stalls the connection). Put payloads
// and get replies are fixed-width 64-bit words on the wire, decoded in one
// word-aligned pass and applied to window memory under the window lock via
// the non-aliasing Endpoint write path.
//
// Liveness: every connection exchanges heartbeats; a peer that misses the
// read deadline (or whose connection resets — a kill -9 does both) is
// declared dead, OnPeerDown fires, and every subsequent operation towards
// it fails with transport.PeerDeadError, which the rma runtime maps onto
// its fail-stop TargetFailedError.
package tcp

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transport"
	"repro/internal/transport/wire"
)

// Frame types of the RMA wire protocol.
const (
	tHello  byte = 0x10
	tFlush  byte = 0x11
	tCAS    byte = 0x12
	tFAO    byte = 0x13
	tGetAcc byte = 0x14
	tLock   byte = 0x15
	tUnlock byte = 0x16
)

// Config describes one rank's tcp transport.
type Config struct {
	// Self is this rank's id.
	Self int
	// N is the world size; peer ranks are 0..N-1.
	N int
	// Listener accepts inbound peer connections. Alternatively set Listen
	// to an address ("127.0.0.1:0") and New binds it.
	Listener net.Listener
	Listen   string
	// Peers maps rank -> dial address for every other rank.
	Peers map[int]string
	// Local handles operations that target Self (and is served to remote
	// peers). Typically the world's loopback over its window endpoints.
	Local transport.Handler
	// DialTimeout bounds connection establishment. Default 5s.
	DialTimeout time.Duration
	// HeartbeatInterval is the liveness beacon period. Default 500ms;
	// negative disables heartbeats (and the read deadline).
	HeartbeatInterval time.Duration
	// HeartbeatMiss is how many intervals of silence declare a peer dead.
	// Default 4.
	HeartbeatMiss int
	// OnPeerDown is called (once per rank, from a connection goroutine)
	// when a peer is declared dead.
	OnPeerDown func(rank int)
}

// withDefaults resolves zero values.
func (c Config) withDefaults() Config {
	if c.DialTimeout == 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 500 * time.Millisecond
	}
	if c.HeartbeatMiss == 0 {
		c.HeartbeatMiss = 4
	}
	return c
}

// Validate rejects nonsensical configurations with descriptive errors.
// Zero-valued tuning knobs mean "default" and pass.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.N < 1 {
		return fmt.Errorf("tcp: world size %d, need at least one rank", c.N)
	}
	if c.Self < 0 || c.Self >= c.N {
		return fmt.Errorf("tcp: self rank %d outside world of %d ranks", c.Self, c.N)
	}
	if c.Listener == nil && c.Listen == "" {
		return errors.New("tcp: need a Listener or a Listen address for inbound peer connections")
	}
	if c.Listener == nil {
		if _, _, err := net.SplitHostPort(c.Listen); err != nil {
			return fmt.Errorf("tcp: listen address %q: %v", c.Listen, err)
		}
	}
	if c.Local == nil {
		return errors.New("tcp: need a Local handler for operations targeting this rank")
	}
	if c.DialTimeout < 0 {
		return fmt.Errorf("tcp: negative dial timeout %v", c.DialTimeout)
	}
	if c.HeartbeatMiss < 0 {
		return fmt.Errorf("tcp: negative heartbeat miss count %d", c.HeartbeatMiss)
	}
	for r, addr := range c.Peers {
		if r < 0 || r >= c.N {
			return fmt.Errorf("tcp: peer rank %d outside world of %d ranks", r, c.N)
		}
		if _, _, err := net.SplitHostPort(addr); err != nil {
			return fmt.Errorf("tcp: peer %d address %q: %v", r, addr, err)
		}
	}
	return nil
}

// Peer is one rank's tcp transport: a server for its own window, dialed
// connections to its peers.
type Peer struct {
	cfg Config
	ln  net.Listener

	mu      sync.Mutex
	conns   map[int]*wire.Conn // outbound, by target rank
	inbound []*wire.Conn
	dead    map[int]bool
	closed  bool
}

var _ transport.Transport = (*Peer)(nil)

// New validates cfg, binds the listener if needed, and starts accepting.
func New(cfg Config) (*Peer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	p := &Peer{cfg: cfg, ln: cfg.Listener, conns: make(map[int]*wire.Conn), dead: make(map[int]bool)}
	if p.ln == nil {
		ln, err := net.Listen("tcp", cfg.Listen)
		if err != nil {
			return nil, fmt.Errorf("tcp: listen %s: %w", cfg.Listen, err)
		}
		p.ln = ln
	}
	go p.acceptLoop()
	return p, nil
}

// Addr returns the bound listen address (for :0 listeners).
func (p *Peer) Addr() string { return p.ln.Addr().String() }

// Close shuts the listener and every connection down.
func (p *Peer) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	conns := make([]*wire.Conn, 0, len(p.conns)+len(p.inbound))
	for _, c := range p.conns {
		conns = append(conns, c)
	}
	conns = append(conns, p.inbound...)
	p.mu.Unlock()
	p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	return nil
}

func (p *Peer) wireConfig(onDown func(error)) wire.Config {
	cfg := wire.Config{Handler: p.serve, OnDown: onDown}
	if p.cfg.HeartbeatInterval > 0 {
		cfg.Heartbeat = p.cfg.HeartbeatInterval
		cfg.ReadTimeout = time.Duration(p.cfg.HeartbeatMiss) * p.cfg.HeartbeatInterval
	}
	return cfg
}

func (p *Peer) acceptLoop() {
	for {
		nc, err := p.ln.Accept()
		if err != nil {
			return
		}
		// src is learned from the connection's Hello frame; until then the
		// peer is anonymous and its death needs no bookkeeping.
		var src atomic.Int32
		src.Store(-1)
		handler := func(t byte, payload []byte) (byte, []byte, error) {
			if t == tHello {
				d := wire.NewDec(payload)
				r := d.I()
				if d.Failed() {
					return 0, nil, transport.RemoteError{Msg: "malformed hello"}
				}
				src.Store(int32(r))
				return tHello, nil, nil
			}
			return p.serve(t, payload)
		}
		cfg := p.wireConfig(nil)
		cfg.Handler = handler
		cfg.OnDown = func(error) {
			if s := src.Load(); s >= 0 {
				p.declareDead(int(s))
			}
		}
		wc := wire.New(nc, cfg)
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			wc.Close()
			continue
		}
		p.inbound = append(p.inbound, wc)
		p.mu.Unlock()
	}
}

func (p *Peer) declareDead(rank int) {
	if rank == p.cfg.Self {
		return
	}
	p.mu.Lock()
	already := p.dead[rank]
	p.dead[rank] = true
	closed := p.closed
	p.mu.Unlock()
	if !already && !closed && p.cfg.OnPeerDown != nil {
		p.cfg.OnPeerDown(rank)
	}
}

// conn returns (dialing lazily) the outbound connection to target.
func (p *Peer) conn(target int) (*wire.Conn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, transport.PeerDeadError{Rank: target}
	}
	if p.dead[target] {
		p.mu.Unlock()
		return nil, transport.PeerDeadError{Rank: target}
	}
	if c := p.conns[target]; c != nil {
		p.mu.Unlock()
		return c, nil
	}
	addr, ok := p.cfg.Peers[target]
	p.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("tcp: no address for peer rank %d", target)
	}
	nc, err := net.DialTimeout("tcp", addr, p.cfg.DialTimeout)
	if err != nil {
		p.declareDead(target)
		return nil, transport.PeerDeadError{Rank: target}
	}
	c := wire.New(nc, p.wireConfig(func(error) { p.declareDead(target) }))
	var e wire.Enc
	e.I(p.cfg.Self)
	if _, err := c.Call(tHello, e.Bytes()); err != nil {
		c.Close()
		p.declareDead(target)
		return nil, transport.PeerDeadError{Rank: target}
	}
	p.mu.Lock()
	if prev := p.conns[target]; prev != nil {
		p.mu.Unlock()
		c.Close()
		return prev, nil
	}
	p.conns[target] = c
	p.mu.Unlock()
	return c, nil
}

// FramesTo returns the number of data frames sent so far on the outbound
// connection to target (0 if never dialed). The conformance suite asserts
// one flush frame per epoch close with it.
func (p *Peer) FramesTo(target int) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if c := p.conns[target]; c != nil {
		return c.Sent()
	}
	return 0
}

// call performs one request/response towards target, mapping wire-level
// failures onto transport errors.
func (p *Peer) call(target int, t byte, payload []byte) ([]byte, error) {
	c, err := p.conn(target)
	if err != nil {
		return nil, err
	}
	reply, err := c.Call(t, payload)
	if err == nil {
		return reply, nil
	}
	var rf wire.RemoteFail
	if errors.As(err, &rf) {
		if rf.Code == wire.CodePeerDead {
			return nil, transport.PeerDeadError{Rank: rf.Rank}
		}
		return nil, transport.RemoteError{Msg: rf.Msg}
	}
	if errors.Is(err, wire.ErrDown) {
		p.declareDead(target)
		return nil, transport.PeerDeadError{Rank: target}
	}
	return nil, err
}

// ---- Transport (client side) ------------------------------------------------

// Flush frames the epoch's whole batch as one message, sends it, and
// decodes the reply's get data into the ops' destination buffers.
func (p *Peer) Flush(src, target int, ops []transport.Op) error {
	if target == p.cfg.Self {
		return p.cfg.Local.Flush(src, target, ops)
	}
	var e wire.Enc
	e.I(src)
	e.I(target)
	encodeOps(&e, ops)
	reply, err := p.call(target, tFlush, e.Bytes())
	if err != nil {
		return err
	}
	d := wire.NewDec(reply)
	for i := range ops {
		if ops[i].Kind != transport.KindGet {
			continue
		}
		if !d.WordsInto(ops[i].Dest) {
			return transport.RemoteError{Msg: "malformed flush reply"}
		}
	}
	return nil
}

func (p *Peer) CompareAndSwap(src, target, off int, old, new uint64) (uint64, error) {
	if target == p.cfg.Self {
		return p.cfg.Local.CompareAndSwap(src, target, off, old, new)
	}
	var e wire.Enc
	e.I(src)
	e.I(target)
	e.I(off)
	e.W64(old)
	e.W64(new)
	reply, err := p.call(target, tCAS, e.Bytes())
	if err != nil {
		return 0, err
	}
	return wire.NewDec(reply).W64(), nil
}

func (p *Peer) FetchAndOp(src, target, off int, operand uint64, red uint8) (uint64, error) {
	if target == p.cfg.Self {
		return p.cfg.Local.FetchAndOp(src, target, off, operand, red)
	}
	var e wire.Enc
	e.I(src)
	e.I(target)
	e.I(off)
	e.W64(operand)
	e.B(red)
	reply, err := p.call(target, tFAO, e.Bytes())
	if err != nil {
		return 0, err
	}
	return wire.NewDec(reply).W64(), nil
}

func (p *Peer) GetAccumulate(src, target, off int, data []uint64, red uint8) ([]uint64, error) {
	if target == p.cfg.Self {
		return p.cfg.Local.GetAccumulate(src, target, off, data, red)
	}
	var e wire.Enc
	e.I(src)
	e.I(target)
	e.I(off)
	e.B(red)
	e.Words(data)
	reply, err := p.call(target, tGetAcc, e.Bytes())
	if err != nil {
		return nil, err
	}
	prev := make([]uint64, len(data))
	if !wire.NewDec(reply).WordsInto(prev) {
		return nil, transport.RemoteError{Msg: "malformed get-accumulate reply"}
	}
	return prev, nil
}

func (p *Peer) Lock(src, target, str int, now, latency float64) (float64, error) {
	if target == p.cfg.Self {
		return p.cfg.Local.Lock(src, target, str, now, latency)
	}
	var e wire.Enc
	e.I(src)
	e.I(target)
	e.I(str)
	e.F(now)
	e.F(latency)
	reply, err := p.call(target, tLock, e.Bytes())
	if err != nil {
		return 0, err
	}
	return wire.NewDec(reply).F(), nil
}

func (p *Peer) Unlock(src, target, str int, now, latency float64) error {
	if target == p.cfg.Self {
		return p.cfg.Local.Unlock(src, target, str, now, latency)
	}
	var e wire.Enc
	e.I(src)
	e.I(target)
	e.I(str)
	e.F(now)
	e.F(latency)
	_, err := p.call(target, tUnlock, e.Bytes())
	return err
}

// ---- Server side ------------------------------------------------------------

// serve handles one incoming request frame against the local handler.
func (p *Peer) serve(t byte, payload []byte) (byte, []byte, error) {
	d := wire.NewDec(payload)
	switch t {
	case tFlush:
		src, target := d.I(), d.I()
		ops, err := decodeOps(d)
		if err != nil {
			return 0, nil, err
		}
		if err := p.cfg.Local.Flush(src, target, ops); err != nil {
			return 0, nil, failOf(err)
		}
		var e wire.Enc
		for i := range ops {
			if ops[i].Kind == transport.KindGet {
				e.Words(ops[i].Dest)
			}
		}
		return t, e.Bytes(), nil
	case tCAS:
		src, target, off := d.I(), d.I(), d.I()
		old, new := d.W64(), d.W64()
		if d.Failed() {
			return 0, nil, transport.RemoteError{Msg: "malformed cas"}
		}
		prev, err := p.cfg.Local.CompareAndSwap(src, target, off, old, new)
		if err != nil {
			return 0, nil, failOf(err)
		}
		var e wire.Enc
		e.W64(prev)
		return t, e.Bytes(), nil
	case tFAO:
		src, target, off := d.I(), d.I(), d.I()
		operand, red := d.W64(), d.B()
		if d.Failed() || !transport.ValidRed(red) {
			return 0, nil, transport.RemoteError{Msg: "malformed fetch-and-op"}
		}
		prev, err := p.cfg.Local.FetchAndOp(src, target, off, operand, red)
		if err != nil {
			return 0, nil, failOf(err)
		}
		var e wire.Enc
		e.W64(prev)
		return t, e.Bytes(), nil
	case tGetAcc:
		src, target, off := d.I(), d.I(), d.I()
		red := d.B()
		data := d.Words()
		if d.Failed() || !transport.ValidRed(red) {
			return 0, nil, transport.RemoteError{Msg: "malformed get-accumulate"}
		}
		prev, err := p.cfg.Local.GetAccumulate(src, target, off, data, red)
		if err != nil {
			return 0, nil, failOf(err)
		}
		var e wire.Enc
		e.Words(prev)
		return t, e.Bytes(), nil
	case tLock:
		src, target, str := d.I(), d.I(), d.I()
		now, latency := d.F(), d.F()
		if d.Failed() {
			return 0, nil, transport.RemoteError{Msg: "malformed lock"}
		}
		after, err := p.cfg.Local.Lock(src, target, str, now, latency)
		if err != nil {
			return 0, nil, failOf(err)
		}
		var e wire.Enc
		e.F(after)
		return t, e.Bytes(), nil
	case tUnlock:
		src, target, str := d.I(), d.I(), d.I()
		now, latency := d.F(), d.F()
		if d.Failed() {
			return 0, nil, transport.RemoteError{Msg: "malformed unlock"}
		}
		if err := p.cfg.Local.Unlock(src, target, str, now, latency); err != nil {
			return 0, nil, failOf(err)
		}
		return t, nil, nil
	}
	return 0, nil, transport.RemoteError{Msg: fmt.Sprintf("unknown frame type %#x", t)}
}

// failOf maps a local handler error onto a wire error reply.
func failOf(err error) error {
	if pd, ok := err.(transport.PeerDeadError); ok {
		return wire.RemoteFail{Code: wire.CodePeerDead, Rank: pd.Rank, Msg: pd.Error()}
	}
	return err
}

// encodeOps frames one epoch batch: kind, reduce op, offset, and for
// puts/accumulates the payload words; gets carry only offset and length.
func encodeOps(e *wire.Enc, ops []transport.Op) {
	e.I(len(ops))
	for i := range ops {
		op := &ops[i]
		e.B(op.Kind)
		switch op.Kind {
		case transport.KindGet:
			e.I(op.Off)
			e.I(len(op.Dest))
		default:
			e.B(op.Red)
			e.I(op.Off)
			e.Words(op.Data)
		}
	}
}

// decodeOps is the server-side inverse, in two word-aligned passes over
// the frame: the first validates every op header and sums the payload and
// destination volumes (no allocation driven by unvalidated wire counts),
// the second converts every payload into one shared backing buffer that
// the window applies then copy straight out of — two allocations per
// flush frame however many ops it carries.
func decodeOps(d *wire.Dec) ([]transport.Op, error) {
	n := d.I()
	if d.Failed() || n < 0 || n > wire.MaxFrame/8 {
		return nil, transport.RemoteError{Msg: "malformed op batch"}
	}
	// Pass 1: walk a value copy of the decoder to validate and size.
	scan := *d
	totalWords, getWords := 0, 0
	for i := 0; i < n; i++ {
		kind := scan.B()
		switch kind {
		case transport.KindGet:
			scan.I()
			ln := scan.I()
			getWords += ln
			totalWords += ln
			// Get destinations are allocated before the reply proves the
			// peer honest, so the batch's total get volume is bounded by
			// what a single reply frame could legally carry.
			if scan.Failed() || ln > wire.MaxFrame/8 || getWords > wire.MaxFrame/8 {
				return nil, transport.RemoteError{Msg: "malformed get op"}
			}
		case transport.KindPut, transport.KindAcc:
			red := scan.B()
			scan.I()
			totalWords += scan.SkipWords()
			if scan.Failed() || !transport.ValidRed(red) {
				return nil, transport.RemoteError{Msg: "malformed put op"}
			}
		default:
			return nil, transport.RemoteError{Msg: fmt.Sprintf("unknown op kind %d", kind)}
		}
	}
	// Pass 2: decode into the shared buffer.
	ops := make([]transport.Op, 0, n)
	buf := make([]uint64, totalWords)
	for i := 0; i < n; i++ {
		kind := d.B()
		switch kind {
		case transport.KindGet:
			off, ln := d.I(), d.I()
			dest := buf[:ln:ln]
			buf = buf[ln:]
			ops = append(ops, transport.Op{Kind: kind, Off: off, Dest: dest})
		default:
			red := d.B()
			off := d.I()
			w := d.WordsIntoPrefix(buf)
			data := buf[:w:w]
			buf = buf[w:]
			ops = append(ops, transport.Op{Kind: kind, Red: red, Off: off, Data: data})
		}
	}
	if d.Failed() {
		return nil, transport.RemoteError{Msg: "malformed op batch payload"}
	}
	return ops, nil
}
