// Package tcp is the out-of-process transport: the same delivery contract
// as the loopback, spoken between OS processes over a length-prefixed
// binary wire protocol (package wire).
//
// One epoch's buffered accesses towards a target travel as a single flush
// frame — closing an epoch costs one round trip however many puts, gets,
// and accumulates it carries. Blocking atomics and structure locks are
// request/response frames; a lock request may block server-side for as
// long as the structure is held (each incoming frame is served on its own
// goroutine, so a blocked lock never stalls the connection).
//
// The flush path is zero-copy in both directions. Sending, the frame is
// assembled as a wire.Vec whose put payloads alias the rma layer's
// epoch arenas and goes out as one vectored write — no staging copy.
// Receiving, the two-pass decode validates then hands out WordsView
// aliases of the frame buffer, which land in window memory under the
// window lock via the non-aliasing Endpoint write path; get replies
// gather straight from the ops' destination scratch, which returns to
// its pool once the reply frame is written.
//
// Liveness: every connection exchanges heartbeats; a peer that misses the
// read deadline (or whose connection resets — a kill -9 does both) is
// declared dead, OnPeerDown fires, and every subsequent operation towards
// it fails with transport.PeerDeadError, which the rma runtime maps onto
// its fail-stop TargetFailedError.
//
// The dialing side is a seam: Config.Dialer (a transport.Dialer)
// substitutes any net.Conn factory for the TCP socket, which is how the
// shm transport speaks this exact protocol over shared-memory rings and
// how the flaky package injects connection-level faults.
package tcp

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/transport/wire"
)

// Frame types of the RMA wire protocol.
const (
	tHello  byte = 0x10
	tFlush  byte = 0x11
	tCAS    byte = 0x12
	tFAO    byte = 0x13
	tGetAcc byte = 0x14
	tLock   byte = 0x15
	tUnlock byte = 0x16
)

// Config describes one rank's tcp transport.
type Config struct {
	// Self is this rank's id.
	Self int
	// N is the world size; peer ranks are 0..N-1.
	N int
	// Listener accepts inbound peer connections. Alternatively set Listen
	// to an address ("127.0.0.1:0") and New binds it.
	Listener net.Listener
	Listen   string
	// Peers maps rank -> dial address for every other rank. The address
	// syntax belongs to the Dialer (host:port for the default TCP dialer).
	Peers map[int]string
	// Dialer establishes peer connections from the Peers addresses; nil
	// means transport.NetDialer (a TCP socket per peer, DialTimeout
	// bounded). The shm transport plugs its ring-pair dialer in here, and
	// the flaky package wraps any Dialer with fault injection — one
	// constructor, three media.
	Dialer transport.Dialer
	// Dial, when set, replaces socket dialing by target rank; Peers is
	// then not consulted.
	//
	// Deprecated: implement transport.Dialer and set Dialer (with Peers
	// carrying the dialer's addresses) instead. This shim is removed next
	// release.
	Dial func(target int) (net.Conn, error)
	// Local handles operations that target Self (and is served to remote
	// peers). Typically the world's loopback over its window endpoints.
	Local transport.Handler
	// DialTimeout bounds connection establishment. Default 5s.
	DialTimeout time.Duration
	// HeartbeatInterval is the liveness beacon period. Default 500ms;
	// negative disables heartbeats (and the read deadline).
	HeartbeatInterval time.Duration
	// HeartbeatMiss is how many intervals of silence declare a peer dead.
	// Default 4.
	HeartbeatMiss int
	// OnPeerDown is called (once per rank, from a connection goroutine)
	// when a peer is declared dead.
	OnPeerDown func(rank int)
	// Metrics optionally mirrors the transport's activity into a per-rank
	// registry under tcp.* names (docs/OBSERVABILITY.md): flush latency,
	// atomic round trips, lease near misses. nil disables; the
	// instrumentation itself is alloc-free either way.
	Metrics *obs.Registry
	// Flight optionally records frame-level flight events. nil (or a
	// disabled recorder) costs one pointer check per flush.
	Flight *obs.Recorder
}

// withDefaults resolves zero values.
func (c Config) withDefaults() Config {
	if c.DialTimeout == 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 500 * time.Millisecond
	}
	if c.HeartbeatMiss == 0 {
		c.HeartbeatMiss = 4
	}
	return c
}

// Validate rejects nonsensical configurations with descriptive errors.
// Zero-valued tuning knobs mean "default" and pass.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.N < 1 {
		return fmt.Errorf("tcp: world size %d, need at least one rank", c.N)
	}
	if c.Self < 0 || c.Self >= c.N {
		return fmt.Errorf("tcp: self rank %d outside world of %d ranks", c.Self, c.N)
	}
	if c.Listener == nil && c.Listen == "" {
		return errors.New("tcp: need a Listener or a Listen address for inbound peer connections")
	}
	if c.Listener == nil {
		if _, _, err := net.SplitHostPort(c.Listen); err != nil {
			return fmt.Errorf("tcp: listen address %q: %v", c.Listen, err)
		}
	}
	if c.Local == nil {
		return errors.New("tcp: need a Local handler for operations targeting this rank")
	}
	if c.DialTimeout < 0 {
		return fmt.Errorf("tcp: negative dial timeout %v", c.DialTimeout)
	}
	if c.HeartbeatMiss < 0 {
		return fmt.Errorf("tcp: negative heartbeat miss count %d", c.HeartbeatMiss)
	}
	for r, addr := range c.Peers {
		if r < 0 || r >= c.N {
			return fmt.Errorf("tcp: peer rank %d outside world of %d ranks", r, c.N)
		}
		if c.Dial == nil && c.Dialer == nil {
			if _, _, err := net.SplitHostPort(addr); err != nil {
				return fmt.Errorf("tcp: peer %d address %q: %v", r, addr, err)
			}
		}
	}
	return nil
}

// Peer is one rank's tcp transport: a server for its own window, dialed
// connections to its peers.
type Peer struct {
	cfg Config
	ln  net.Listener
	m   *peerMetrics
	fr  *obs.Recorder

	mu      sync.Mutex
	conns   map[int]*wire.Conn // outbound, by target rank
	inbound map[*wire.Conn]struct{}
	dead    map[int]bool
	closed  bool
}

// peerMetrics holds the transport's pre-resolved instruments so the hot
// paths pay a plain atomic add, never a name lookup.
type peerMetrics struct {
	flushes   *obs.Counter   // tcp.flush.calls
	flushOps  *obs.Counter   // tcp.flush.ops
	flushUs   *obs.Histogram // tcp.flush.us
	served    *obs.Counter   // tcp.flush.served
	atomicRtt *obs.Histogram // tcp.atomic.rtt.us
	nearMiss  *obs.Counter   // tcp.lease.close_calls
}

func newPeerMetrics(r *obs.Registry) *peerMetrics {
	if r == nil {
		return nil
	}
	return &peerMetrics{
		flushes:   r.Counter("tcp.flush.calls"),
		flushOps:  r.Counter("tcp.flush.ops"),
		flushUs:   r.Histogram("tcp.flush.us"),
		served:    r.Counter("tcp.flush.served"),
		atomicRtt: r.Histogram("tcp.atomic.rtt.us"),
		nearMiss:  r.Counter("tcp.lease.close_calls"),
	}
}

var _ transport.Transport = (*Peer)(nil)

// New validates cfg, binds the listener if needed, and starts accepting.
func New(cfg Config) (*Peer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	p := &Peer{cfg: cfg, ln: cfg.Listener, m: newPeerMetrics(cfg.Metrics), fr: cfg.Flight, conns: make(map[int]*wire.Conn), inbound: make(map[*wire.Conn]struct{}), dead: make(map[int]bool)}
	if p.ln == nil {
		ln, err := net.Listen("tcp", cfg.Listen)
		if err != nil {
			return nil, fmt.Errorf("tcp: listen %s: %w", cfg.Listen, err)
		}
		p.ln = ln
	}
	go p.acceptLoop()
	return p, nil
}

// Addr returns the bound listen address (for :0 listeners).
func (p *Peer) Addr() string { return p.ln.Addr().String() }

// Close shuts the listener and every connection down.
func (p *Peer) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	conns := make([]*wire.Conn, 0, len(p.conns)+len(p.inbound))
	for _, c := range p.conns {
		conns = append(conns, c)
	}
	for c := range p.inbound {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	return nil
}

// InboundCount reports the accepted connections currently tracked — a
// test hook for the churn regression: a connection whose peer died or
// reconnected must be pruned from the set, not accumulated for the
// lifetime of the process.
func (p *Peer) InboundCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.inbound)
}

func (p *Peer) wireConfig(onDown func(error)) wire.Config {
	cfg := wire.Config{VecHandler: p.serve, OnDown: onDown}
	if p.cfg.HeartbeatInterval > 0 {
		cfg.Heartbeat = p.cfg.HeartbeatInterval
		cfg.ReadTimeout = time.Duration(p.cfg.HeartbeatMiss) * p.cfg.HeartbeatInterval
	}
	if p.m != nil {
		nm := p.m.nearMiss
		fr := p.fr
		cfg.OnNearMiss = func(gap time.Duration) {
			nm.Inc()
			fr.Record(obs.EvLeaseNearMiss, -1, int64(gap/time.Microsecond), int64(cfg.ReadTimeout/time.Microsecond))
		}
	}
	return cfg
}

func (p *Peer) acceptLoop() {
	for {
		nc, err := p.ln.Accept()
		if err != nil {
			return
		}
		// src is learned from the connection's Hello frame; until then the
		// peer is anonymous and its death needs no bookkeeping. The hello
		// rank is wire input: it must name a rank of this world, exactly
		// once per connection — a corrupt frame must not drive declareDead
		// (and so OnPeerDown) with a rank that doesn't exist.
		var src atomic.Int32
		src.Store(-1)
		handler := func(t byte, payload []byte) (byte, *wire.Vec, error) {
			if t == tHello {
				d := wire.NewDec(payload)
				r := d.I()
				if d.Failed() || r < 0 || r >= p.cfg.N {
					return 0, nil, transport.RemoteError{Msg: "malformed hello"}
				}
				if !src.CompareAndSwap(-1, int32(r)) {
					return 0, nil, transport.RemoteError{Msg: "duplicate hello"}
				}
				return tHello, nil, nil
			}
			return p.serve(t, payload)
		}
		// The conn's death both declares the peer dead and prunes the conn
		// from the inbound set. wire.New starts the reader immediately, so
		// OnDown can fire before the conn is registered below — the slot
		// records the early death and registration then skips the set.
		slot := &struct {
			c    *wire.Conn
			dead bool
		}{}
		cfg := p.wireConfig(nil)
		cfg.VecHandler = handler
		cfg.OnDown = func(error) {
			if s := src.Load(); s >= 0 {
				p.declareDead(int(s))
			}
			p.mu.Lock()
			if slot.c != nil {
				delete(p.inbound, slot.c)
			} else {
				slot.dead = true
			}
			p.mu.Unlock()
		}
		wc := wire.New(nc, cfg)
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			wc.Close()
			continue
		}
		slot.c = wc
		if !slot.dead {
			p.inbound[wc] = struct{}{}
		}
		p.mu.Unlock()
	}
}

func (p *Peer) declareDead(rank int) {
	if rank == p.cfg.Self {
		return
	}
	p.mu.Lock()
	already := p.dead[rank]
	p.dead[rank] = true
	closed := p.closed
	p.mu.Unlock()
	if !already && !closed && p.cfg.OnPeerDown != nil {
		p.cfg.OnPeerDown(rank)
	}
}

// conn returns (dialing lazily) the outbound connection to target.
func (p *Peer) conn(target int) (*wire.Conn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, transport.PeerDeadError{Rank: target}
	}
	if p.dead[target] {
		p.mu.Unlock()
		return nil, transport.PeerDeadError{Rank: target}
	}
	if c := p.conns[target]; c != nil {
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()
	var nc net.Conn
	var err error
	if p.cfg.Dial != nil {
		// Deprecated rank-keyed seam; Dialer is the supported one.
		nc, err = p.cfg.Dial(target)
	} else {
		addr, ok := p.cfg.Peers[target]
		if !ok {
			return nil, fmt.Errorf("tcp: no address for peer rank %d", target)
		}
		dialer := p.cfg.Dialer
		if dialer == nil {
			dialer = transport.NetDialer{Timeout: p.cfg.DialTimeout}
		}
		nc, err = dialer.Dial(addr)
	}
	if err != nil {
		p.declareDead(target)
		return nil, transport.PeerDeadError{Rank: target}
	}
	c := wire.New(nc, p.wireConfig(func(error) { p.declareDead(target) }))
	var e wire.Enc
	e.I(p.cfg.Self)
	if _, err := c.Call(tHello, e.Bytes()); err != nil {
		c.Close()
		p.declareDead(target)
		return nil, transport.PeerDeadError{Rank: target}
	}
	p.mu.Lock()
	if prev := p.conns[target]; prev != nil {
		p.mu.Unlock()
		c.Close()
		return prev, nil
	}
	p.conns[target] = c
	p.mu.Unlock()
	return c, nil
}

// FramesTo returns the number of data frames sent so far on the outbound
// connection to target (0 if never dialed). The conformance suite asserts
// one flush frame per epoch close with it.
func (p *Peer) FramesTo(target int) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if c := p.conns[target]; c != nil {
		return c.Sent()
	}
	return 0
}

// callVec performs one vectored request/response towards target, mapping
// wire-level failures onto transport errors. v is consumed.
func (p *Peer) callVec(target int, t byte, v *wire.Vec) ([]byte, error) {
	c, err := p.conn(target)
	if err != nil {
		v.Release()
		return nil, err
	}
	reply, err := c.CallVec(t, v)
	if err == nil {
		return reply, nil
	}
	return nil, p.callErr(target, err)
}

func (p *Peer) callErr(target int, err error) error {
	var rf wire.RemoteFail
	if errors.As(err, &rf) {
		if rf.Code == wire.CodePeerDead {
			return transport.PeerDeadError{Rank: rf.Rank}
		}
		return transport.RemoteError{Msg: rf.Msg}
	}
	if errors.Is(err, wire.ErrDown) {
		p.declareDead(target)
		return transport.PeerDeadError{Rank: target}
	}
	return err
}

// ---- Transport (client side) ------------------------------------------------

// Flush frames the epoch's whole batch as one vectored message — put
// payloads alias the caller's buffers until the write completes — sends
// it, and decodes the reply's get data into the ops' destination buffers.
func (p *Peer) Flush(src, target int, ops []transport.Op) error {
	if target == p.cfg.Self {
		return p.cfg.Local.Flush(src, target, ops)
	}
	var t0 time.Time
	if p.m != nil {
		t0 = time.Now()
	}
	p.fr.Record(obs.EvFrameSend, int64(tFlush), int64(target), int64(len(ops)))
	v := wire.NewVec()
	v.I(src)
	v.I(target)
	encodeOpsVec(v, ops)
	reply, err := p.callVec(target, tFlush, v)
	if err != nil {
		return err
	}
	if p.m != nil {
		p.m.flushes.Inc()
		p.m.flushOps.Add(uint64(len(ops)))
		p.m.flushUs.ObserveSince(t0)
	}
	d := wire.NewDec(reply)
	for i := range ops {
		if ops[i].Kind != transport.KindGet {
			continue
		}
		if !d.WordsInto(ops[i].Dest) {
			return transport.RemoteError{Msg: "malformed flush reply"}
		}
	}
	wire.Recycle(reply)
	return nil
}

func (p *Peer) CompareAndSwap(src, target, off int, old, new uint64) (uint64, error) {
	if target == p.cfg.Self {
		return p.cfg.Local.CompareAndSwap(src, target, off, old, new)
	}
	var t0 time.Time
	if p.m != nil {
		t0 = time.Now()
	}
	v := wire.NewVec()
	v.I(src)
	v.I(target)
	v.I(off)
	v.W64(old)
	v.W64(new)
	reply, err := p.callVec(target, tCAS, v)
	if err != nil {
		return 0, err
	}
	if p.m != nil {
		p.m.atomicRtt.ObserveSince(t0)
	}
	prev := wire.NewDec(reply).W64()
	wire.Recycle(reply)
	return prev, nil
}

func (p *Peer) FetchAndOp(src, target, off int, operand uint64, red uint8) (uint64, error) {
	if target == p.cfg.Self {
		return p.cfg.Local.FetchAndOp(src, target, off, operand, red)
	}
	var t0 time.Time
	if p.m != nil {
		t0 = time.Now()
	}
	v := wire.NewVec()
	v.I(src)
	v.I(target)
	v.I(off)
	v.W64(operand)
	v.B(red)
	reply, err := p.callVec(target, tFAO, v)
	if err != nil {
		return 0, err
	}
	if p.m != nil {
		p.m.atomicRtt.ObserveSince(t0)
	}
	prev := wire.NewDec(reply).W64()
	wire.Recycle(reply)
	return prev, nil
}

func (p *Peer) GetAccumulate(src, target, off int, data []uint64, red uint8) ([]uint64, error) {
	if target == p.cfg.Self {
		return p.cfg.Local.GetAccumulate(src, target, off, data, red)
	}
	v := wire.NewVec()
	v.I(src)
	v.I(target)
	v.I(off)
	v.B(red)
	v.Words(data)
	reply, err := p.callVec(target, tGetAcc, v)
	if err != nil {
		return nil, err
	}
	prev := make([]uint64, len(data))
	if !wire.NewDec(reply).WordsInto(prev) {
		return nil, transport.RemoteError{Msg: "malformed get-accumulate reply"}
	}
	wire.Recycle(reply)
	return prev, nil
}

func (p *Peer) Lock(src, target, str int, now, latency float64) (float64, error) {
	if target == p.cfg.Self {
		return p.cfg.Local.Lock(src, target, str, now, latency)
	}
	v := wire.NewVec()
	v.I(src)
	v.I(target)
	v.I(str)
	v.F(now)
	v.F(latency)
	reply, err := p.callVec(target, tLock, v)
	if err != nil {
		return 0, err
	}
	after := wire.NewDec(reply).F()
	wire.Recycle(reply)
	return after, nil
}

func (p *Peer) Unlock(src, target, str int, now, latency float64) error {
	if target == p.cfg.Self {
		return p.cfg.Local.Unlock(src, target, str, now, latency)
	}
	v := wire.NewVec()
	v.I(src)
	v.I(target)
	v.I(str)
	v.F(now)
	v.F(latency)
	_, err := p.callVec(target, tUnlock, v)
	return err
}

// ---- Server side ------------------------------------------------------------

// flushScratch is the pooled per-flush decode state: the op slice, plus
// one backing buffer for get destinations and unaligned put fallbacks.
// The reply frame gathers from the buffer, so the scratch returns to its
// pool only once the reply is written (the Vec's OnRelease hook).
type flushScratch struct {
	ops []transport.Op
	buf []uint64
}

var scratchPool = sync.Pool{New: func() any { return new(flushScratch) }}

func putScratch(s *flushScratch) {
	for i := range s.ops {
		s.ops[i] = transport.Op{} // drop frame-buffer aliases
	}
	s.ops = s.ops[:0]
	scratchPool.Put(s)
}

// serve handles one incoming request frame against the local handler.
func (p *Peer) serve(t byte, payload []byte) (byte, *wire.Vec, error) {
	d := wire.NewDec(payload)
	switch t {
	case tFlush:
		src, target := d.I(), d.I()
		s := scratchPool.Get().(*flushScratch)
		ops, err := decodeOps(d, s)
		if err != nil {
			putScratch(s)
			return 0, nil, err
		}
		if p.m != nil {
			p.m.served.Inc()
		}
		p.fr.Record(obs.EvFrameRecv, int64(tFlush), int64(src), int64(len(ops)))
		if err := p.cfg.Local.Flush(src, target, ops); err != nil {
			putScratch(s)
			return 0, nil, failOf(err)
		}
		v := wire.NewVec()
		for i := range ops {
			if ops[i].Kind == transport.KindGet {
				v.Words(ops[i].Dest)
			}
		}
		v.OnRelease(func() { putScratch(s) })
		return t, v, nil
	case tCAS:
		src, target, off := d.I(), d.I(), d.I()
		old, new := d.W64(), d.W64()
		if d.Failed() {
			return 0, nil, transport.RemoteError{Msg: "malformed cas"}
		}
		prev, err := p.cfg.Local.CompareAndSwap(src, target, off, old, new)
		if err != nil {
			return 0, nil, failOf(err)
		}
		v := wire.NewVec()
		v.W64(prev)
		return t, v, nil
	case tFAO:
		src, target, off := d.I(), d.I(), d.I()
		operand, red := d.W64(), d.B()
		if d.Failed() || !transport.ValidRed(red) {
			return 0, nil, transport.RemoteError{Msg: "malformed fetch-and-op"}
		}
		prev, err := p.cfg.Local.FetchAndOp(src, target, off, operand, red)
		if err != nil {
			return 0, nil, failOf(err)
		}
		v := wire.NewVec()
		v.W64(prev)
		return t, v, nil
	case tGetAcc:
		src, target, off := d.I(), d.I(), d.I()
		red := d.B()
		data := d.Words()
		if d.Failed() || !transport.ValidRed(red) {
			return 0, nil, transport.RemoteError{Msg: "malformed get-accumulate"}
		}
		prev, err := p.cfg.Local.GetAccumulate(src, target, off, data, red)
		if err != nil {
			return 0, nil, failOf(err)
		}
		v := wire.NewVec()
		v.Words(prev)
		return t, v, nil
	case tLock:
		src, target, str := d.I(), d.I(), d.I()
		now, latency := d.F(), d.F()
		if d.Failed() {
			return 0, nil, transport.RemoteError{Msg: "malformed lock"}
		}
		after, err := p.cfg.Local.Lock(src, target, str, now, latency)
		if err != nil {
			return 0, nil, failOf(err)
		}
		v := wire.NewVec()
		v.F(after)
		return t, v, nil
	case tUnlock:
		src, target, str := d.I(), d.I(), d.I()
		now, latency := d.F(), d.F()
		if d.Failed() {
			return 0, nil, transport.RemoteError{Msg: "malformed unlock"}
		}
		if err := p.cfg.Local.Unlock(src, target, str, now, latency); err != nil {
			return 0, nil, failOf(err)
		}
		return t, nil, nil
	}
	return 0, nil, transport.RemoteError{Msg: fmt.Sprintf("unknown frame type %#x", t)}
}

// failOf maps a local handler error onto a wire error reply.
func failOf(err error) error {
	if pd, ok := err.(transport.PeerDeadError); ok {
		return wire.RemoteFail{Code: wire.CodePeerDead, Rank: pd.Rank, Msg: pd.Error()}
	}
	return err
}

// encodeOpsVec frames one epoch batch: kind, reduce op, offset, and for
// puts/accumulates the payload words — gathered by reference, not copied;
// gets carry only offset and length.
func encodeOpsVec(v *wire.Vec, ops []transport.Op) {
	v.I(len(ops))
	for i := range ops {
		op := &ops[i]
		v.B(op.Kind)
		switch op.Kind {
		case transport.KindGet:
			v.I(op.Off)
			v.I(len(op.Dest))
		default:
			v.B(op.Red)
			v.I(op.Off)
			v.Words(op.Data)
		}
	}
}

// encodeOps is the staging-copy equivalent of encodeOpsVec. The wire
// production is identical; fuzz and regression tests build adversarial
// baselines with it.
func encodeOps(e *wire.Enc, ops []transport.Op) {
	e.I(len(ops))
	for i := range ops {
		op := &ops[i]
		e.B(op.Kind)
		switch op.Kind {
		case transport.KindGet:
			e.I(op.Off)
			e.I(len(op.Dest))
		default:
			e.B(op.Red)
			e.I(op.Off)
			e.Words(op.Data)
		}
	}
}

// decodeOps is the server-side inverse, in two word-aligned passes over
// the frame: the first validates every op header and sums the payload and
// destination volumes (no allocation driven by unvalidated wire counts),
// the second hands out WordsView aliases of the frame buffer for put
// payloads (scatter: the window copies them under its lock) and carves
// get destinations out of the scratch buffer the reply will gather from.
// Steady state this allocates nothing — the scratch is pooled.
//
// Trailing bytes after a complete batch are rejected: a frame is exactly
// one batch, and silently ignoring a tail would let a corrupt (or
// desynchronized) peer go undetected until its next frame.
func decodeOps(d *wire.Dec, s *flushScratch) ([]transport.Op, error) {
	n := d.I()
	if d.Failed() || n > wire.MaxFrame/8 {
		return nil, transport.RemoteError{Msg: "malformed op batch"}
	}
	// Pass 1: walk a value copy of the decoder to validate and size.
	scan := *d
	totalWords, getWords := 0, 0
	for i := 0; i < n; i++ {
		kind := scan.B()
		switch kind {
		case transport.KindGet:
			scan.I()
			ln := scan.I()
			getWords += ln
			totalWords += ln
			// Get destinations are allocated before the reply proves the
			// peer honest, so the batch's total get volume is bounded by
			// what a single reply frame could legally carry.
			if scan.Failed() || ln > wire.MaxFrame/8 || getWords > wire.MaxFrame/8 {
				return nil, transport.RemoteError{Msg: "malformed get op"}
			}
		case transport.KindPut, transport.KindAcc:
			red := scan.B()
			scan.I()
			totalWords += scan.SkipWords()
			if scan.Failed() || !transport.ValidRed(red) {
				return nil, transport.RemoteError{Msg: "malformed put op"}
			}
		default:
			return nil, transport.RemoteError{Msg: fmt.Sprintf("unknown op kind %d", kind)}
		}
	}
	if scan.Rem() != 0 {
		return nil, transport.RemoteError{Msg: "trailing bytes after op batch"}
	}
	// Pass 2: get dests carve the scratch; put data views the frame (or
	// falls back into the scratch on an unaligned run).
	if cap(s.buf) < totalWords {
		s.buf = make([]uint64, totalWords)
	}
	buf := s.buf[:totalWords]
	if cap(s.ops) < n {
		s.ops = make([]transport.Op, 0, n)
	}
	ops := s.ops[:0]
	for i := 0; i < n; i++ {
		kind := d.B()
		switch kind {
		case transport.KindGet:
			off, ln := d.I(), d.I()
			dest := buf[:ln:ln]
			buf = buf[ln:]
			ops = append(ops, transport.Op{Kind: kind, Off: off, Dest: dest})
		default:
			red := d.B()
			off := d.I()
			data := d.WordsView(buf)
			buf = buf[len(data):]
			ops = append(ops, transport.Op{Kind: kind, Red: red, Off: off, Data: data})
		}
	}
	s.ops = ops // before the error check: putScratch clears what was appended
	if d.Failed() {
		return nil, transport.RemoteError{Msg: "malformed op batch payload"}
	}
	return ops, nil
}
