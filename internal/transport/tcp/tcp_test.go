package tcp

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/transport/wire"
)

// stubHandler is a minimal window: a word array behind a mutex.
type stubHandler struct {
	mu  sync.Mutex
	mem []uint64
}

func newStub(words int) *stubHandler { return &stubHandler{mem: make([]uint64, words)} }

func (s *stubHandler) Flush(src, target int, ops []transport.Op) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case transport.KindPut:
			copy(s.mem[op.Off:], op.Data)
		case transport.KindAcc:
			for j, w := range op.Data {
				s.mem[op.Off+j] += w
			}
		case transport.KindGet:
			copy(op.Dest, s.mem[op.Off:])
		}
	}
	return nil
}

func (s *stubHandler) CompareAndSwap(src, target, off int, old, new uint64) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev := s.mem[off]
	if prev == old {
		s.mem[off] = new
	}
	return prev, nil
}

func (s *stubHandler) FetchAndOp(src, target, off int, operand uint64, red uint8) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev := s.mem[off]
	s.mem[off] += operand
	return prev, nil
}

func (s *stubHandler) GetAccumulate(src, target, off int, data []uint64, red uint8) ([]uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev := make([]uint64, len(data))
	copy(prev, s.mem[off:])
	for j, w := range data {
		s.mem[off+j] += w
	}
	return prev, nil
}

func (s *stubHandler) Lock(src, target, str int, now, latency float64) (float64, error) {
	return now + latency, nil
}

func (s *stubHandler) Unlock(src, target, str int, now, latency float64) error { return nil }

// newPeer builds one rank of an n-world on a fresh localhost listener,
// heartbeats off. addrs is shared across the world's peers.
func newPeer(t testing.TB, self, n int, addrs map[int]string, lns map[int]net.Listener) *Peer {
	t.Helper()
	p, err := New(Config{
		Self: self, N: n, Listener: lns[self], Peers: addrs,
		Local:             newStub(4096),
		HeartbeatInterval: -1,
	})
	if err != nil {
		t.Fatalf("tcp.New: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func bindWorld(t testing.TB, n int) (map[int]string, map[int]net.Listener) {
	t.Helper()
	addrs := make(map[int]string, n)
	lns := make(map[int]net.Listener, n)
	for r := 0; r < n; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[r] = ln
		addrs[r] = ln.Addr().String()
	}
	return addrs, lns
}

// dialRaw opens a bare framed connection to p — the adversarial stand-in
// for a peer that does not follow the client protocol.
func dialRaw(t *testing.T, p *Peer) *wire.Conn {
	t.Helper()
	nc, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c := wire.New(nc, wire.Config{})
	t.Cleanup(func() { c.Close() })
	return c
}

func helloPayload(rank int) []byte {
	var e wire.Enc
	e.I(rank)
	return e.Bytes()
}

// TestInboundPruned is the regression for the accept-side leak: inbound
// connections must leave the peer's bookkeeping when they die, however
// many come and go.
func TestInboundPruned(t *testing.T) {
	addrs, lns := bindWorld(t, 2)
	p := newPeer(t, 0, 2, addrs, lns)

	const churn = 8
	for i := 0; i < churn; i++ {
		c := dialRaw(t, p)
		if _, err := c.Call(tHello, helloPayload(1)); err != nil {
			t.Fatalf("hello %d: %v", i, err)
		}
		if p.InboundCount() == 0 {
			t.Fatalf("round %d: inbound conn not registered", i)
		}
		c.Close()
		deadline := time.Now().Add(5 * time.Second)
		for p.InboundCount() != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("round %d: InboundCount = %d after close, leak", i, p.InboundCount())
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// TestHelloValidation is the regression for the unchecked hello rank: a
// rank outside the world, a garbage payload, and a second hello on the
// same connection are all rejected.
func TestHelloValidation(t *testing.T) {
	addrs, lns := bindWorld(t, 2)
	p := newPeer(t, 0, 2, addrs, lns)

	for _, tc := range []struct {
		name    string
		payload []byte
	}{
		{"rank beyond world", helloPayload(99)},
		{"empty payload", nil},
		{"poisoned rank", []byte{0x80}}, // dangling uvarint
	} {
		c := dialRaw(t, p)
		_, err := c.Call(tHello, tc.payload)
		if err == nil || !strings.Contains(err.Error(), "malformed hello") {
			t.Fatalf("%s: err = %v, want malformed hello", tc.name, err)
		}
		c.Close()
	}

	c := dialRaw(t, p)
	if _, err := c.Call(tHello, helloPayload(1)); err != nil {
		t.Fatalf("first hello: %v", err)
	}
	_, err := c.Call(tHello, helloPayload(1))
	if err == nil || !strings.Contains(err.Error(), "duplicate hello") {
		t.Fatalf("second hello: err = %v, want duplicate hello", err)
	}
}

// benchOps builds the canonical mixed batch: puts followed by gets.
func benchOps(putOps, getOps, wordsPerOp int) []transport.Op {
	payload := make([]uint64, wordsPerOp)
	for i := range payload {
		payload[i] = uint64(i) * 7
	}
	var ops []transport.Op
	for j := 0; j < putOps; j++ {
		ops = append(ops, transport.Op{Kind: transport.KindPut, Off: j * wordsPerOp, Data: payload})
	}
	for j := 0; j < getOps; j++ {
		ops = append(ops, transport.Op{Kind: transport.KindGet, Off: j * wordsPerOp, Dest: make([]uint64, wordsPerOp)})
	}
	return ops
}

// TestFlushRoundTrip drives a mixed batch across real sockets and checks
// the words that land (scatter) and come back (gather).
func TestFlushRoundTrip(t *testing.T) {
	addrs, lns := bindWorld(t, 2)
	p0 := newPeer(t, 0, 2, addrs, lns)
	newPeer(t, 1, 2, addrs, lns)

	ops := benchOps(4, 4, 64)
	if err := p0.Flush(0, 1, ops); err != nil {
		t.Fatalf("flush: %v", err)
	}
	for _, op := range ops[4:] {
		for i, w := range op.Dest {
			if want := uint64(i) * 7; w != want {
				t.Fatalf("get word %d = %d, want %d", i, w, want)
			}
		}
	}
}

// TestFlushAllocsSteadyState pins the zero-copy promise end to end: after
// warm-up, one epoch close (16 puts + 4 gets, 10 KiB) across real
// sockets — client encode, server scatter, reply gather, client decode —
// stays under a small constant allocation budget. The staging-copy wire
// path this replaced spent 60+ allocations per flush on the same batch.
func TestFlushAllocsSteadyState(t *testing.T) {
	addrs, lns := bindWorld(t, 2)
	p0 := newPeer(t, 0, 2, addrs, lns)
	newPeer(t, 1, 2, addrs, lns)

	ops := benchOps(16, 4, 64)
	flush := func() {
		if err := p0.Flush(0, 1, ops); err != nil {
			t.Fatalf("flush: %v", err)
		}
	}
	for i := 0; i < 100; i++ { // converge every pool
		flush()
	}
	avg := testing.AllocsPerRun(200, flush)
	// The steady-state budget: call bookkeeping (pending channel, serve
	// goroutine, a few interface boxes) but nothing proportional to the
	// batch — 20 ops would already exceed the bound if any per-op copy
	// or decode allocation crept back in.
	if avg > 20 {
		t.Fatalf("flush allocates %.1f/op steady state, want <= 20", avg)
	}
	t.Logf("flush steady state: %.1f allocs/op", avg)
}

// TestDecodeOpsRoundTrip pins encodeOps (the staging twin of the gather
// encoder, same production) against decodeOps.
func TestDecodeOpsRoundTrip(t *testing.T) {
	in := []transport.Op{
		{Kind: transport.KindPut, Off: 3, Data: []uint64{1, 2, 3}},
		{Kind: transport.KindGet, Off: 9, Dest: make([]uint64, 5)},
		{Kind: transport.KindAcc, Red: transport.RedSum, Off: 0, Data: []uint64{42}},
		{Kind: transport.KindGet, Off: 0, Dest: nil},
		{Kind: transport.KindPut, Off: 1, Data: nil},
	}
	var e wire.Enc
	e.I(0)
	e.I(1)
	encodeOps(&e, in)

	d := wire.NewDec(e.Bytes())
	d.I()
	d.I()
	s := &flushScratch{}
	out, err := decodeOps(d, s)
	if err != nil {
		t.Fatalf("decodeOps: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d ops, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Kind != in[i].Kind || out[i].Off != in[i].Off || out[i].Red != in[i].Red {
			t.Fatalf("op %d header = %+v, want %+v", i, out[i], in[i])
		}
		if len(out[i].Data) != len(in[i].Data) || len(out[i].Dest) != len(in[i].Dest) {
			t.Fatalf("op %d sizes = %+v, want %+v", i, out[i], in[i])
		}
		for j := range in[i].Data {
			if out[i].Data[j] != in[i].Data[j] {
				t.Fatalf("op %d data[%d] = %d", i, j, out[i].Data[j])
			}
		}
	}
}

// TestDecodeOpsRejects pins the adversarial-payload policy: trailing
// bytes, truncations, oversold counts, and unknown kinds are errors, not
// panics and not silently tolerated.
func TestDecodeOpsRejects(t *testing.T) {
	valid := func() []byte {
		var e wire.Enc
		encodeOps(&e, []transport.Op{
			{Kind: transport.KindPut, Off: 0, Data: []uint64{1, 2}},
			{Kind: transport.KindGet, Off: 2, Dest: make([]uint64, 2)},
		})
		return e.Bytes()
	}

	decode := func(b []byte) error {
		_, err := decodeOps(wire.NewDec(b), &flushScratch{})
		return err
	}

	if err := decode(valid()); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
	if err := decode(append(valid(), 0x00)); err == nil ||
		!strings.Contains(err.Error(), "trailing bytes") {
		t.Fatalf("trailing byte: err = %v, want trailing-bytes rejection", err)
	}
	full := valid()
	for cut := 0; cut < len(full); cut++ {
		if err := decode(full[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(full))
		}
	}
	var e wire.Enc
	e.I(1)
	e.B(transport.KindGet)
	e.I(0)
	e.U(1 << 31) // one get claiming 16 GiB of reply
	if err := decode(e.Bytes()); err == nil {
		t.Fatal("oversold get length accepted")
	}
	e = wire.Enc{}
	e.I(1)
	e.B(0x7F) // unknown kind
	if err := decode(e.Bytes()); err == nil || !strings.Contains(err.Error(), "unknown op kind") {
		t.Fatalf("unknown kind: err = %v", err)
	}
}

// FuzzDecodeOps feeds arbitrary flush payloads through the exact decode
// the server runs. Property: never panic, and any batch that decodes
// cleanly has internally consistent ops.
func FuzzDecodeOps(f *testing.F) {
	seed := func(ops []transport.Op, tail ...byte) []byte {
		var e wire.Enc
		e.I(0)
		e.I(1)
		encodeOps(&e, ops)
		return append(e.Bytes(), tail...)
	}
	f.Add(seed(nil))
	f.Add(seed(benchOps(2, 2, 8)))
	f.Add(seed(benchOps(1, 0, 4), 0xAB))        // trailing garbage
	f.Add(seed(benchOps(0, 1, 4))[:5])          // truncated mid-op
	f.Add([]byte{0, 1, 0xFF, 0xFF, 0xFF, 0x1F}) // huge op count
	f.Add([]byte{0, 1, 1, transport.KindGet, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F})

	f.Fuzz(func(t *testing.T, b []byte) {
		d := wire.NewDec(b)
		d.I()
		d.I()
		s := &flushScratch{}
		ops, err := decodeOps(d, s)
		if err != nil {
			return
		}
		for i := range ops {
			op := &ops[i]
			switch op.Kind {
			case transport.KindPut, transport.KindAcc:
				if op.Dest != nil || !transport.ValidRed(op.Red) {
					t.Fatalf("op %d inconsistent: %+v", i, op)
				}
			case transport.KindGet:
				if op.Data != nil {
					t.Fatalf("get op %d carries data: %+v", i, op)
				}
			default:
				t.Fatalf("op %d has invalid kind %d", i, op.Kind)
			}
		}
		if d.Rem() != 0 {
			t.Fatalf("decodeOps accepted %d trailing bytes", d.Rem())
		}
	})
}
