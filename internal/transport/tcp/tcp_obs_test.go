package tcp

import (
	"net"
	"testing"

	"repro/internal/obs"
)

func newObsPeer(t testing.TB, self, n int, addrs map[int]string, lns map[int]net.Listener, reg *obs.Registry, fr *obs.Recorder) *Peer {
	t.Helper()
	p, err := New(Config{
		Self: self, N: n, Listener: lns[self], Peers: addrs,
		Local:             newStub(4096),
		HeartbeatInterval: -1,
		Metrics:           reg,
		Flight:            fr,
	})
	if err != nil {
		t.Fatalf("tcp.New: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// TestFlushAllocsInstrumented re-runs the steady-state allocation pin of
// TestFlushAllocsSteadyState with the obs instrumentation wired in —
// metrics registry attached, flight recorder present but disabled (the
// production default). The budget is identical: observability must be
// free on the flush hot path.
func TestFlushAllocsInstrumented(t *testing.T) {
	addrs, lns := bindWorld(t, 2)
	reg0, reg1 := obs.New(0), obs.New(1)
	fr0, fr1 := obs.NewRecorder(0, 1024), obs.NewRecorder(1, 1024)
	p0 := newObsPeer(t, 0, 2, addrs, lns, reg0, fr0)
	newObsPeer(t, 1, 2, addrs, lns, reg1, fr1)

	ops := benchOps(16, 4, 64)
	flush := func() {
		if err := p0.Flush(0, 1, ops); err != nil {
			t.Fatalf("flush: %v", err)
		}
	}
	for i := 0; i < 100; i++ {
		flush()
	}
	avg := testing.AllocsPerRun(200, flush)
	if avg > 20 {
		t.Fatalf("instrumented flush allocates %.1f/op steady state, want <= 20 (same budget as uninstrumented)", avg)
	}
	t.Logf("instrumented flush steady state: %.1f allocs/op", avg)

	s := reg0.Snapshot()
	if s.Counters["tcp.flush.calls"] < 300 {
		t.Fatalf("tcp.flush.calls = %d, want >= 300", s.Counters["tcp.flush.calls"])
	}
	if got, want := s.Counters["tcp.flush.ops"], s.Counters["tcp.flush.calls"]*20; got != want {
		t.Fatalf("tcp.flush.ops = %d, want %d (20 ops per flush)", got, want)
	}
	h := s.Histograms["tcp.flush.us"]
	if h.Count != s.Counters["tcp.flush.calls"] || h.Sum == 0 {
		t.Fatalf("tcp.flush.us count=%d sum=%d, want count=calls and nonzero sum", h.Count, h.Sum)
	}
	if served := reg1.Snapshot().Counters["tcp.flush.served"]; served != s.Counters["tcp.flush.calls"] {
		t.Fatalf("server tcp.flush.served = %d, want %d", served, s.Counters["tcp.flush.calls"])
	}
	// Disabled recorder: the hot path must not have stored anything.
	if fr0.Total() != 0 || fr1.Total() != 0 {
		t.Fatalf("disabled flight recorders stored events: %d/%d", fr0.Total(), fr1.Total())
	}
}

// TestFlushFlightEvents turns the recorder on and checks the frame
// send/recv events of a flush land on both ends.
func TestFlushFlightEvents(t *testing.T) {
	addrs, lns := bindWorld(t, 2)
	fr0, fr1 := obs.NewRecorder(0, 64), obs.NewRecorder(1, 64)
	fr0.SetEnabled(true)
	fr1.SetEnabled(true)
	p0 := newObsPeer(t, 0, 2, addrs, lns, obs.New(0), fr0)
	newObsPeer(t, 1, 2, addrs, lns, obs.New(1), fr1)

	if err := p0.Flush(0, 1, benchOps(2, 1, 8)); err != nil {
		t.Fatalf("flush: %v", err)
	}
	send := fr0.Events()
	if len(send) != 1 || send[0].Code != obs.EvFrameSend || send[0].A != int64(tFlush) || send[0].B != 1 || send[0].C != 3 {
		t.Fatalf("sender events = %+v", send)
	}
	recv := fr1.Events()
	if len(recv) != 1 || recv[0].Code != obs.EvFrameRecv || recv[0].A != int64(tFlush) || recv[0].B != 0 || recv[0].C != 3 {
		t.Fatalf("receiver events = %+v", recv)
	}
}

// TestAtomicRTTHistogram pins the CAS/FAO round-trip latency samples.
func TestAtomicRTTHistogram(t *testing.T) {
	addrs, lns := bindWorld(t, 2)
	reg := obs.New(0)
	p0 := newObsPeer(t, 0, 2, addrs, lns, reg, nil)
	newObsPeer(t, 1, 2, addrs, lns, nil, nil)

	if _, err := p0.CompareAndSwap(0, 1, 0, 0, 7); err != nil {
		t.Fatalf("cas: %v", err)
	}
	if _, err := p0.FetchAndOp(0, 1, 0, 1, 0); err != nil {
		t.Fatalf("fao: %v", err)
	}
	h := reg.Snapshot().Histograms["tcp.atomic.rtt.us"]
	if h.Count != 2 {
		t.Fatalf("tcp.atomic.rtt.us count = %d, want 2", h.Count)
	}
}
