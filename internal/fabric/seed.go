package fabric

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/ftrma"
	"repro/internal/transport/wire"
)

// SeedConfig configures a bootstrap seed.
type SeedConfig struct {
	// N is the world size; WindowWords each rank's window; Groups the
	// number of parity groups (rank r joins group r mod Groups).
	N           int
	WindowWords int
	Groups      int
	// Tuning is distributed to every rank so the whole fabric runs one
	// set of lease/gossip timings.
	Tuning Tuning
	// Meta is an opaque workload blob handed to every rank verbatim
	// (the cluster glue encodes its Workload here).
	Meta []byte
	// Listener accepts join connections. The seed owns it.
	Listener net.Listener
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// Validate rejects unusable seed configurations.
func (c SeedConfig) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("fabric: seed needs N ≥ 2 ranks, got %d", c.N)
	}
	if c.WindowWords < 1 {
		return fmt.Errorf("fabric: seed needs a positive window, got %d words", c.WindowWords)
	}
	if c.Groups < 1 || c.Groups > c.N {
		return fmt.Errorf("fabric: seed needs 1 ≤ Groups ≤ N, got %d groups for %d ranks", c.Groups, c.N)
	}
	if c.Listener == nil {
		return fmt.Errorf("fabric: seed needs a Listener")
	}
	return c.Tuning.Validate()
}

// Seed is the bootstrap join directory — the only asymmetric piece of
// the fabric, and a deliberately boring one: it assigns ranks on a
// first-come basis, blocks every join reply until all N workers have
// arrived (a rendezvous, so each reply can carry the complete membership
// and parity hosting tables), and is never needed again. Workers close
// their seed connection immediately after joining; tests Close the seed
// outright and assert FramesServed stays frozen to prove the steady
// state runs without a coordinator.
type Seed struct {
	cfg    SeedConfig
	ln     net.Listener
	logf   func(string, ...any)
	frames atomic.Uint64

	mu      sync.Mutex
	joined  []string // addr per assigned rank
	waiters []chan []byte
	members []Member
	closed  bool

	conns   []*wire.Conn
	connsMu sync.Mutex
}

// NewSeed starts a seed on cfg.Listener.
func NewSeed(cfg SeedConfig) (*Seed, error) {
	cfg.Tuning = cfg.Tuning.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Seed{cfg: cfg, ln: cfg.Listener, logf: cfg.Logf}
	if s.logf == nil {
		s.logf = func(string, ...any) {}
	}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the seed's listen address.
func (s *Seed) Addr() string { return s.ln.Addr().String() }

// FramesServed counts the frames the seed has answered — exactly one
// per join in a healthy bootstrap. The coordinatorless tests freeze-dry
// this counter after bootstrap to assert zero steady-state round trips.
func (s *Seed) FramesServed() uint64 { return s.frames.Load() }

// Joined counts the ranks assigned so far. Tests spawn workers one at a
// time and wait for this to tick so OS process i holds rank i exactly.
func (s *Seed) Joined() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.joined)
}

// Members returns the bootstrapped membership (nil before all N joined).
func (s *Seed) Members() []Member {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Member(nil), s.members...)
}

// Close stops the seed. Joined workers are unaffected: they hold no
// connection to it.
func (s *Seed) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.connsMu.Lock()
	conns := s.conns
	s.conns = nil
	s.connsMu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return err
}

func (s *Seed) acceptLoop() {
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return
		}
		wc := wire.New(nc, wire.Config{
			Handler:   s.handle,
			Heartbeat: s.cfg.Tuning.LeaseInterval,
		})
		s.connsMu.Lock()
		s.conns = append(s.conns, wc)
		s.connsMu.Unlock()
	}
}

// handle serves fJoin. The handler blocks (it runs on its own goroutine,
// per the wire contract) until the rendezvous completes, then replies
// with the full world.
func (s *Seed) handle(t byte, payload []byte) (byte, []byte, error) {
	s.frames.Add(1)
	if t != fJoin {
		return t, nil, fmt.Errorf("fabric: seed serves only joins, got frame %#x", t)
	}
	d := wire.NewDec(payload)
	addr := d.Str()
	if d.Failed() || addr == "" {
		return t, nil, errBadFrame
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return t, nil, fmt.Errorf("fabric: seed closed")
	}
	if len(s.joined) >= s.cfg.N {
		s.mu.Unlock()
		return t, nil, fmt.Errorf("fabric: world of %d ranks is full", s.cfg.N)
	}
	rank := len(s.joined)
	s.joined = append(s.joined, addr)
	ch := make(chan []byte, 1)
	s.waiters = append(s.waiters, ch)
	if len(s.joined) == s.cfg.N {
		s.bootstrapLocked()
	}
	s.mu.Unlock()
	s.logf("fabric: seed assigned rank %d to %s", rank, addr)
	reply, ok := <-ch
	if !ok {
		return t, nil, fmt.Errorf("fabric: seed closed before rendezvous completed")
	}
	return t, reply, nil
}

// bootstrapLocked computes the initial world — membership and elected
// parity hostings — and releases every parked join reply with it.
func (s *Seed) bootstrapLocked() {
	n := s.cfg.N
	s.members = make([]Member, n)
	for r := 0; r < n; r++ {
		s.members[r] = Member{Rank: r, Addr: s.joined[r], Incarnation: 0, Alive: true}
	}
	hostings := make([]Hosting, s.cfg.Groups)
	alive := func(int) bool { return true }
	for g := 0; g < s.cfg.Groups; g++ {
		host := ftrma.ElectParityHost(n, groupMembers(n, s.cfg.Groups, g), g, 0, alive, -1)
		hostings[g] = Hosting{Group: g, Host: host}
	}
	for r := 0; r < n; r++ {
		var e wire.Enc
		e.B(jmWorld)
		encWorld(&e, world{
			rank: r, n: n, windowWords: s.cfg.WindowWords, groups: s.cfg.Groups,
			tuning: s.cfg.Tuning, meta: s.cfg.Meta,
			members: s.members, hostings: hostings,
		})
		e.B(0) // no install: fresh rank
		s.waiters[r] <- e.Bytes()
	}
	s.logf("fabric: seed bootstrapped %d ranks, %d parity groups", n, s.cfg.Groups)
}
