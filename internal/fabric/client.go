package fabric

// One-shot observer calls against a live node. A probe connection never
// sends fHello, so the node treats it as an anonymous visitor: its
// disappearance is not a death (the accept-side lease only arms after a
// hello), and closing it after one call is the normal pattern.
//
// These are the test harness' and collector's window into a fabric —
// deliberately read-only plus the terminal shutdown notify, so nothing
// here can perturb the run being observed.

import (
	"fmt"

	"repro/internal/transport"
	"repro/internal/transport/wire"
)

// probeCall dials addr, performs one call, and hangs up.
func probeCall(d transport.Dialer, addr string, t byte, payload []byte) ([]byte, error) {
	nc, err := d.Dial(addr)
	if err != nil {
		return nil, err
	}
	wc := wire.New(nc, wire.Config{})
	defer wc.Close()
	return wc.Call(t, payload)
}

// FetchMembers asks the node at addr for its membership and parity
// hosting tables — the observer's progress gauge (watermarks advance
// once per completed epoch).
func FetchMembers(d transport.Dialer, addr string) ([]Member, []Hosting, error) {
	reply, err := probeCall(d, addr, fMembers, nil)
	if err != nil {
		return nil, nil, err
	}
	dec := wire.NewDec(reply)
	ms, ok1 := decMembers(dec)
	hs, ok2 := decHostings(dec)
	if !ok1 || !ok2 || dec.Failed() {
		return nil, nil, fmt.Errorf("fabric: undecodable members reply from %s", addr)
	}
	return ms, hs, nil
}

// FetchWindow reads the full window hosted by the node at addr. In the
// symmetric fabric each rank is the sole authority for its own window,
// so collecting final state means one FetchWindow per member.
func FetchWindow(d transport.Dialer, addr string) ([]uint64, error) {
	reply, err := probeCall(d, addr, fWindowFetch, nil)
	if err != nil {
		return nil, err
	}
	dec := wire.NewDec(reply)
	w := dec.Words()
	if dec.Failed() {
		return nil, fmt.Errorf("fabric: undecodable window reply from %s", addr)
	}
	return w, nil
}

// NotifyShutdown tells the node at addr the run is over; its
// AwaitShutdown returns. Best-effort: an already-dead node is fine.
func NotifyShutdown(d transport.Dialer, addr string) {
	nc, err := d.Dial(addr)
	if err != nil {
		return
	}
	wc := wire.New(nc, wire.Config{})
	wc.Notify(fShutdown, nil)
	wc.Close()
}
