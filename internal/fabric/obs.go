package fabric

import (
	"os"

	"repro/internal/obs"
)

// nodeMetrics is the fabric's pre-resolved instrument set: every name in
// the catalog's fabric section (docs/OBSERVABILITY.md §2) is registered
// at node construction — so a scrape always exposes the full set, zeros
// included — and the hot paths pay one atomic add, never a lookup.
type nodeMetrics struct {
	batchSent   *obs.Counter // fabric.batch.sent
	batchRecv   *obs.Counter // fabric.batch.recv
	foldsSent   *obs.Counter // fabric.fold.sent
	foldsHosted *obs.Counter // fabric.fold.hosted
	condemned   *obs.Counter // fabric.condemnations
	nearMiss    *obs.Counter // fabric.lease.close_calls
	crises      *obs.Counter // fabric.crises

	parityRebuilds *obs.Counter // fabric.parity.rebuilds
	parityHandoffs *obs.Counter // fabric.parity.handoffs
	replayPuts     *obs.Counter // fabric.replay.puts
	replayGets     *obs.Counter // fabric.replay.gets
	replayChunks   *obs.Counter // fabric.replay.chunks

	wireOut *obs.Counter // fabric.wire.bytes.sent
	wireIn  *obs.Counter // fabric.wire.bytes.recv

	flushUs  *obs.Histogram // fabric.flush.us
	gsyncUs  *obs.Histogram // fabric.gsync.wait.us
	foldUs   *obs.Histogram // fabric.fold.us
	ckptUs   *obs.Histogram // fabric.ckpt.us
	replayUs *obs.Histogram // fabric.replay.install.us

	// crisis spans by obs.CrisisStage: crisis.<stage>.us.
	crisis []*obs.Histogram
}

func newNodeMetrics(r *obs.Registry) *nodeMetrics {
	m := &nodeMetrics{
		batchSent:      r.Counter("fabric.batch.sent"),
		batchRecv:      r.Counter("fabric.batch.recv"),
		foldsSent:      r.Counter("fabric.fold.sent"),
		foldsHosted:    r.Counter("fabric.fold.hosted"),
		condemned:      r.Counter("fabric.condemnations"),
		nearMiss:       r.Counter("fabric.lease.close_calls"),
		crises:         r.Counter("fabric.crises"),
		parityRebuilds: r.Counter("fabric.parity.rebuilds"),
		parityHandoffs: r.Counter("fabric.parity.handoffs"),
		replayPuts:     r.Counter("fabric.replay.puts"),
		replayGets:     r.Counter("fabric.replay.gets"),
		replayChunks:   r.Counter("fabric.replay.chunks"),
		wireOut:        r.Counter("fabric.wire.bytes.sent"),
		wireIn:         r.Counter("fabric.wire.bytes.recv"),
		flushUs:        r.Histogram("fabric.flush.us"),
		gsyncUs:        r.Histogram("fabric.gsync.wait.us"),
		foldUs:         r.Histogram("fabric.fold.us"),
		ckptUs:         r.Histogram("fabric.ckpt.us"),
		replayUs:       r.Histogram("fabric.replay.install.us"),
	}
	m.crisis = make([]*obs.Histogram, len(obs.CrisisStages))
	for i, st := range obs.CrisisStages {
		m.crisis[i] = r.Histogram(st.HistName())
	}
	return m
}

// Obs returns the node's metrics registry (never nil once joined).
func (nd *Node) Obs() *obs.Registry { return nd.obs }

// Flight returns the node's flight recorder (never nil once joined; may
// be disabled).
func (nd *Node) Flight() *obs.Recorder { return nd.fr }

// initObs resolves the observability configuration before the join
// handshake, so even a replacement's install replay is instrumented.
// Unlabeled instruments are relabeled by applyWorld once the join
// handshake assigns the rank.
func (nd *Node) initObs(reg *obs.Registry, fr *obs.Recorder, flightDir string) {
	nd.obs = reg
	nd.fr = fr
	nd.flightDir = flightDir
	if nd.flightDir == "" {
		nd.flightDir = os.Getenv(obs.EnvFlightDir)
	}
	if nd.obs == nil {
		nd.obs = obs.New(-1)
	}
	if nd.fr == nil {
		nd.fr = obs.RecorderFromEnv(-1)
	}
	nd.om = newNodeMetrics(nd.obs)
}

// dumpFlight writes the flight ring to the configured dump directory
// (REPRO_FLIGHTREC_DIR or JoinConfig.FlightDir); no-op when unset. The
// fabric calls it on every crisis close so a post-mortem always has the
// per-rank timeline of the recovery.
func (nd *Node) dumpFlight(tag string) {
	if nd.flightDir == "" || !nd.fr.Enabled() {
		return
	}
	if path, err := nd.fr.DumpTo(nd.flightDir, tag); err != nil {
		nd.logf("fabric: rank %d flight dump failed: %v", nd.rank, err)
	} else {
		nd.logf("fabric: rank %d flight ring dumped to %s", nd.rank, path)
	}
}
