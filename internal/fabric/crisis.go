package fabric

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/erasure"
	"repro/internal/ftrma"
	"repro/internal/obs"
	"repro/internal/transport/wire"
)

// maybeArbiter starts the crisis routine when this node is the lowest
// surviving rank and somebody is dead. Arbitration is deterministic —
// every survivor computes the same arbiter from its own table — and
// survives the arbiter's own death: the next-lowest survivor takes over
// the next vacancy (a second failure while a crisis is still open is a
// double failure and fails the run instead).
func (nd *Node) maybeArbiter() {
	if !nd.installed.Load() || nd.failedOrClosed() != nil {
		return
	}
	select {
	case <-nd.shutdown:
		return
	default:
	}
	nd.mmu.Lock()
	lowest := -1
	victims := 0
	victim, vinc := -1, 0
	for _, m := range nd.members {
		if m.Alive {
			if lowest < 0 {
				lowest = m.Rank
			}
		} else {
			victims++
			if victim < 0 {
				victim, vinc = m.Rank, m.Incarnation
			}
		}
	}
	start := lowest == nd.rank && victims > 0 && !nd.crisisBusy
	if start {
		nd.crisisBusy = true
	}
	nd.mmu.Unlock()
	if !start {
		return
	}
	go func() {
		err := nd.runCrisis(victim, vinc, victims)
		nd.mmu.Lock()
		nd.crisisBusy = false
		nd.mmu.Unlock()
		if err != nil {
			nd.broadcastCrisisFail(err)
			nd.fail(err)
		}
	}()
}

// broadcastCrisisFail tells every survivor the crisis is unrecoverable,
// so their Sync calls return the failure instead of parking forever at
// the watermark barrier behind a replacement that cannot come.
func (nd *Node) broadcastCrisisFail(cause error) {
	var e wire.Enc
	e.Str(cause.Error())
	nd.mmu.Lock()
	peers := nd.alivePeersLocked()
	nd.mmu.Unlock()
	payload := e.Bytes()
	for _, p := range peers {
		nd.bestEffortNotify(p, fCrisisFail, payload)
	}
}

// runCrisis is the arbiter's recovery of one dead rank, start to finish:
// quiesce, gather, repair hosting, reconstruct, install, resume.
func (nd *Node) runCrisis(victim, vinc, victims int) error {
	if victims > 1 {
		return fmt.Errorf("fabric: %d ranks dead at once; the fabric recovers single failures", victims)
	}
	nd.logf("fabric: rank %d arbitrates crisis for rank %d (inc %d)", nd.rank, victim, vinc)
	nd.om.crises.Inc()
	nd.fr.Record(obs.EvCrisis, int64(obs.CrisisTotal), int64(victim), 0) // begin marker
	total := obs.StartSpan(nd.om.crisis[obs.CrisisTotal], nd.fr, obs.EvCrisis, int64(obs.CrisisTotal), int64(victim))

	// 1. Quiesce: own checkpoints first (taking ckptMu waits out our own
	// in-flight fold), then every survivor. An ack certifies the
	// survivor's parity/base exchange is at rest until fCrisisEnd.
	quiesce := obs.StartSpan(nd.om.crisis[obs.CrisisQuiesce], nd.fr, obs.EvCrisis, int64(obs.CrisisQuiesce), int64(victim))
	nd.ckptMu.Lock()
	nd.inCrisis = true
	nd.ckptMu.Unlock()
	survivors := nd.surviving(victim)
	var e wire.Enc
	e.I(victim)
	e.I(vinc)
	beginPayload := e.Bytes()
	for _, s := range survivors {
		if _, err := nd.callPeer(s, fCrisisBegin, beginPayload); err != nil {
			return fmt.Errorf("fabric: crisis quiesce of rank %d failed (double failure?): %w", s.Rank, err)
		}
	}
	quiesce.End()

	// 2. Gather the victim's logs from every survivor and from ourselves.
	gather := obs.StartSpan(nd.om.crisis[obs.CrisisGather], nd.fr, obs.EvCrisis, int64(obs.CrisisGather), int64(victim))
	nd.logMu.Lock()
	puts := nd.logs.CopyLP(victim)
	gets := nd.logs.CopyLG(victim)
	flagged := nd.logs.FlagN(victim) || nd.logs.FlagM(victim)
	nd.logMu.Unlock()
	var v wire.Enc
	v.I(victim)
	fetchPayload := v.Bytes()
	for _, s := range survivors {
		reply, err := nd.callPeer(s, fLogFetch, fetchPayload)
		if err != nil {
			return fmt.Errorf("fabric: log fetch from rank %d failed: %w", s.Rank, err)
		}
		d := wire.NewDec(reply)
		n, m := d.B() != 0, d.B() != 0
		lp, ok := decRecordList(d)
		if !ok {
			return fmt.Errorf("fabric: undecodable log fetch reply from rank %d", s.Rank)
		}
		lg, ok := decRecordList(d)
		if !ok {
			return fmt.Errorf("fabric: undecodable log fetch reply from rank %d", s.Rank)
		}
		flagged = flagged || n || m
		puts = append(puts, lp...)
		gets = append(gets, lg...)
	}
	gather.End()
	if flagged {
		return errors.New("fabric: victim has N/M-flagged epochs; non-causal replay needs the coordinator runtime")
	}

	rebuild := obs.StartSpan(nd.om.crisis[obs.CrisisRebuild], nd.fr, obs.EvCrisis, int64(obs.CrisisRebuild), int64(victim))
	// 3. Re-home every parity group the victim hosted: rebuild the
	// shards from the members' committed bases and install them at a
	// freshly elected host. (Quiesce guarantees base/parity agreement.)
	hostings := nd.Hostings()
	alive := func(r int) bool {
		nd.mmu.Lock()
		defer nd.mmu.Unlock()
		return nd.members[r].Alive
	}
	for _, h := range hostings {
		if h.Host != victim {
			continue
		}
		members := groupMembers(nd.n, nd.groups, h.Group)
		bases := make([][]uint64, len(members))
		snaps := make([]snap, len(members))
		folded := make([]int, len(members))
		for i, r := range members {
			if r == victim {
				return fmt.Errorf("fabric: group %d lost both a member and its parity host (rank %d)", h.Group, victim)
			}
			s, base, err := nd.fetchBase(r)
			if err != nil {
				return err
			}
			bases[i] = base
			snaps[i] = s
			folded[i] = s.phase
		}
		rs, err := erasure.NewRS(len(members), 1)
		if err != nil {
			return err
		}
		shards, err := rs.EncodeWords(bases)
		if err != nil {
			return fmt.Errorf("fabric: rebuilding parity of group %d: %w", h.Group, err)
		}
		newHost := ftrma.ElectParityHost(nd.n, members, h.Group, 0, alive, victim)
		if newHost < 0 {
			return fmt.Errorf("fabric: no electable parity host left for group %d", h.Group)
		}
		hg := &hostedGroup{k: len(members), rs: rs, shards: shards, snaps: snaps, folded: folded}
		if newHost == nd.rank {
			nd.parMu.Lock()
			nd.hosted[h.Group] = hg
			nd.parMu.Unlock()
		} else {
			var pe wire.Enc
			pe.I(h.Group)
			encHostedGroup(&pe, hg)
			if _, err := nd.callRank(newHost, fParityInstall, pe.Bytes()); err != nil {
				return fmt.Errorf("fabric: parity install at rank %d failed: %w", newHost, err)
			}
		}
		nd.mmu.Lock()
		nd.hostings[h.Group] = Hosting{Group: h.Group, Host: newHost, Version: h.Version + 1}
		nd.mmu.Unlock()
		nd.om.parityHandoffs.Inc()
		nd.fr.Record(obs.EvParityHandoff, int64(h.Group), int64(newHost), int64(h.Version+1))
		nd.logf("fabric: group %d parity re-homed from rank %d to rank %d", h.Group, victim, newHost)
	}

	// 4. Reconstruct the victim's committed base from its group's parity
	// and the surviving members' bases.
	vg := victim % nd.groups
	vIdx := memberIndex(victim, nd.groups)
	members := groupMembers(nd.n, nd.groups, vg)
	nd.mmu.Lock()
	host := nd.hostings[vg]
	nd.mmu.Unlock()
	if host.Host < 0 || host.Host == victim {
		return fmt.Errorf("fabric: group %d parity unavailable for reconstruction", vg)
	}
	hg, err := nd.fetchParity(host.Host, vg)
	if err != nil {
		return err
	}
	if hg.k != len(members) || vIdx >= hg.k {
		return fmt.Errorf("fabric: parity of group %d has %d members, expected %d", vg, hg.k, len(members))
	}
	shards := make([][]uint64, hg.k+len(hg.shards))
	for i, r := range members {
		if r == victim {
			continue
		}
		_, base, err := nd.fetchBase(r)
		if err != nil {
			return err
		}
		shards[i] = base
	}
	copy(shards[hg.k:], hg.shards)
	if err := hg.rs.ReconstructWords(shards); err != nil {
		return fmt.Errorf("fabric: reconstructing rank %d: %w", victim, err)
	}
	vSnap := hg.snaps[vIdx]
	vBase := shards[vIdx]
	nd.om.parityRebuilds.Inc()
	rebuild.End()

	// 5. Select the replay: records with GNC ≥ the victim's committed
	// phase survive trimming and cover both lost phases and straggler
	// same-phase deliveries that its last checkpoint missed (replay is
	// idempotent under the causal model, so the overlap is safe).
	in := &install{snap: vSnap, base: vBase}
	for _, r := range puts {
		if vSnap.phase < 0 || r.GNC >= vSnap.phase {
			in.puts = append(in.puts, r)
		}
	}
	for _, r := range gets {
		if vSnap.phase < 0 || r.GNC >= vSnap.phase {
			in.gets = append(in.gets, r)
		}
	}
	sortReplayRecords(in.puts, in.gets)

	// 6. Park the install for the replacement's fJoin and wait for the
	// handoff; then publish the post-crisis world and resume.
	installSpan := obs.StartSpan(nd.om.crisis[obs.CrisisInstall], nd.fr, obs.EvCrisis, int64(obs.CrisisInstall), int64(victim))
	pi := &pendingInstall{rank: victim, inc: vinc + 1, in: in, handed: make(chan struct{})}
	nd.mmu.Lock()
	nd.pending = pi
	nd.mmu.Unlock()
	nd.logf("fabric: rank %d reconstructed (phase %d, %d put / %d get replays); awaiting replacement",
		victim, vSnap.phase, len(in.puts), len(in.gets))
	// While parked, watch for further deaths: a second victim now means
	// correlated loss — abandon the install and fail the run instead of
	// waiting forever for a replacement whose install can never complete.
	tick := time.NewTicker(nd.tun().GossipInterval)
	defer tick.Stop()
park:
	for {
		select {
		case <-pi.handed:
			break park
		case <-nd.stop:
			return ErrClosed
		case <-tick.C:
			nd.mmu.Lock()
			dead := 0
			for _, m := range nd.members {
				if !m.Alive {
					dead++
				}
			}
			if dead > 1 {
				if nd.pending == pi {
					nd.pending = nil
				}
				nd.mmu.Unlock()
				return fmt.Errorf("fabric: %d ranks dead while recovering rank %d; the fabric recovers single failures", dead, victim)
			}
			nd.mmu.Unlock()
		}
	}
	installSpan.End()

	var end wire.Enc
	nd.mmu.Lock()
	encMembers(&end, nd.members)
	encHostings(&end, nd.hostings)
	peers := nd.alivePeersLocked()
	nd.recoveries++
	rec := nd.recoveries
	nd.mmu.Unlock()
	endPayload := end.Bytes()
	for _, p := range peers {
		nd.bestEffortNotify(p, fCrisisEnd, endPayload)
	}
	nd.ckptMu.Lock()
	nd.inCrisis = false
	nd.ckptMu.Unlock()
	nd.ckptCond.Broadcast()
	nd.mcond.Broadcast()
	total.End()
	nd.dumpFlight(fmt.Sprintf("crisis%d", rec))
	nd.logf("fabric: crisis for rank %d resolved (inc %d)", victim, vinc+1)
	return nil
}

// surviving snapshots the live peers other than victim and self.
func (nd *Node) surviving(victim int) []Member {
	nd.mmu.Lock()
	defer nd.mmu.Unlock()
	var out []Member
	for _, m := range nd.members {
		if m.Rank != nd.rank && m.Rank != victim && m.Alive {
			out = append(out, m)
		}
	}
	return out
}

// callPeer performs one crisis call towards a known-live member; any
// failure is terminal for the crisis (treated as a double failure).
func (nd *Node) callPeer(m Member, t byte, payload []byte) ([]byte, error) {
	nd.cmu.Lock()
	pc := nd.conns[m.Rank]
	nd.cmu.Unlock()
	if pc == nil || pc.inc != m.Incarnation {
		var err error
		pc, err = nd.dialPeer(m)
		if err != nil {
			return nil, err
		}
	}
	return pc.c.Call(t, payload)
}

func (nd *Node) callRank(rank int, t byte, payload []byte) ([]byte, error) {
	nd.mmu.Lock()
	m := nd.members[rank]
	nd.mmu.Unlock()
	if !m.Alive {
		return nil, fmt.Errorf("fabric: rank %d is down", rank)
	}
	return nd.callPeer(m, t, payload)
}

// fetchBase returns rank's committed base and snapshot — locally or over
// the wire — consistent with its group parity (quiesce is in force).
func (nd *Node) fetchBase(rank int) (snap, []uint64, error) {
	if rank == nd.rank {
		nd.ckptMu.Lock()
		defer nd.ckptMu.Unlock()
		return nd.snapSelf, append([]uint64(nil), nd.base...), nil
	}
	reply, err := nd.callRank(rank, fBaseFetch, nil)
	if err != nil {
		return snap{}, nil, fmt.Errorf("fabric: base fetch from rank %d failed: %w", rank, err)
	}
	d := wire.NewDec(reply)
	s, ok := decSnap(d)
	if !ok {
		return snap{}, nil, fmt.Errorf("fabric: undecodable base fetch reply from rank %d", rank)
	}
	base := d.Words()
	if d.Failed() || len(base) != nd.windowWords {
		return snap{}, nil, fmt.Errorf("fabric: base fetch from rank %d returned %d words, window is %d", rank, len(base), nd.windowWords)
	}
	return s, base, nil
}

// fetchParity returns group g's hosted shard set from host.
func (nd *Node) fetchParity(host, g int) (*hostedGroup, error) {
	if host == nd.rank {
		nd.parMu.Lock()
		defer nd.parMu.Unlock()
		hg := nd.hosted[g]
		if hg == nil {
			return nil, fmt.Errorf("fabric: rank %d is not hosting group %d", nd.rank, g)
		}
		cp := &hostedGroup{k: hg.k, rs: hg.rs, snaps: append([]snap(nil), hg.snaps...), folded: append([]int(nil), hg.folded...)}
		for _, s := range hg.shards {
			cp.shards = append(cp.shards, append([]uint64(nil), s...))
		}
		return cp, nil
	}
	var e wire.Enc
	e.I(g)
	reply, err := nd.callRank(host, fParityFetch, e.Bytes())
	if err != nil {
		return nil, fmt.Errorf("fabric: parity fetch from rank %d failed: %w", host, err)
	}
	hg, err := decHostedGroup(wire.NewDec(reply), nd.windowWords)
	if err != nil {
		return nil, fmt.Errorf("fabric: parity fetch from rank %d: %w", host, err)
	}
	return hg, nil
}

// handleJoin serves fJoin: on the arbiter with a reconstruction parked,
// the reply is the replacement's full install; elsewhere it redirects to
// the arbiter (or asks for a retry while one is still being elected or
// the reconstruction is still running).
func (nd *Node) handleJoin(d *wire.Dec) (byte, []byte, error) {
	addr := d.Str()
	if d.Failed() || addr == "" {
		return fJoin, nil, errBadFrame
	}
	var e wire.Enc
	nd.mmu.Lock()
	if pi := nd.pending; pi != nil {
		nd.pending = nil
		m := &nd.members[pi.rank]
		*m = Member{Rank: pi.rank, Addr: addr, Incarnation: pi.inc, Alive: true, Watermark: pi.in.snap.phase + 1}
		w := world{
			rank: pi.rank, n: nd.n, windowWords: nd.windowWords, groups: nd.groups,
			tuning: nd.tun(), meta: nd.meta,
			members:  append([]Member(nil), nd.members...),
			hostings: append([]Hosting(nil), nd.hostings...),
		}
		nd.mmu.Unlock()
		e.B(jmWorld)
		encWorld(&e, w)
		e.B(1)
		encInstall(&e, pi.in)
		close(pi.handed)
		nd.mcond.Broadcast()
		go nd.gossipNow()
		return fJoin, e.Bytes(), nil
	}
	lowest := -1
	var lowestAddr string
	for _, m := range nd.members {
		if m.Alive {
			lowest = m.Rank
			lowestAddr = m.Addr
			break
		}
	}
	nd.mmu.Unlock()
	if lowest >= 0 && lowest != nd.rank {
		e.B(jmRedirect)
		e.Str(lowestAddr)
		return fJoin, e.Bytes(), nil
	}
	e.B(jmRetry)
	e.I(int(nd.tun().GossipInterval.Milliseconds()) + 1)
	return fJoin, e.Bytes(), nil
}
