package fabric

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/erasure"
	"repro/internal/ftrma"
	"repro/internal/obs"
	"repro/internal/rma"
	"repro/internal/transport"
	"repro/internal/transport/wire"
)

// ErrClosed reports an operation on a node after Close.
var ErrClosed = errors.New("fabric: node closed")

// JoinConfig configures one worker's entry into the fabric.
type JoinConfig struct {
	// Join is the address to join through: the seed during bootstrap, or
	// any live member when rejoining as a replacement (the member
	// redirects to the crisis arbiter if it is not the arbiter itself).
	Join string
	// Addr is the address peers dial this node's Listener at.
	Addr string
	// Listener accepts the node's peer connections. The node owns it.
	Listener net.Listener
	// Dialer opens the node's peer connections.
	Dialer transport.Dialer
	// Logf, when set, receives progress lines (testing.T.Logf shape).
	Logf func(format string, args ...any)
	// Obs, when set, receives the node's metrics (fabric.* counters and
	// histograms, crisis.* spans). Nil builds a private unlabeled
	// registry so instrumentation never needs nil checks.
	Obs *obs.Registry
	// Flight, when set, is the node's flight recorder. Nil builds one
	// from the environment (obs.RecorderFromEnv).
	Flight *obs.Recorder
	// FlightDir, when set, receives a JSONL flight-ring dump on every
	// crisis close; empty falls back to REPRO_FLIGHTREC_DIR.
	FlightDir string
}

// pendOp is one buffered access of the open epoch towards a target.
type pendOp struct {
	put      bool
	off      int
	data     []uint64 // puts: private copy of the payload
	n        int      // gets: word count
	localOff int      // gets: exposed landing offset, -1 private
	dest     []uint64 // gets: the slice handed to the caller
	sc       int      // puts: global source sequence
	gc       int      // gets: global get counter
}

// peerConn is one attributed outbound connection.
type peerConn struct {
	c    *wire.Conn
	rank int
	inc  int
	// quiet marks a deliberate local close (duplicate-dial dedupe, stale
	// replacement, orderly drop): OnDown must not read it as a death.
	quiet atomic.Bool
}

// connState attributes an inbound connection once its fHello arrives.
type connState struct {
	mu      sync.Mutex
	rank    int
	inc     int
	helloed bool
}

// hostedGroup is the parity shard set this node hosts for one group.
type hostedGroup struct {
	k      int
	rs     *erasure.RS
	shards [][]uint64 // m parity shards, each windowWords long
	snaps  []snap     // per memberIdx: counters of the folded base
	folded []int      // per memberIdx: last folded phase (dedupes retries)
}

// pendingInstall is the reconstructed state a crisis arbiter holds for
// the replacement of a dead rank until it joins.
type pendingInstall struct {
	rank   int
	inc    int
	in     *install
	handed chan struct{}
}

// Node is a symmetric fabric worker: it hosts its own rank's window and
// logs, an elected share of parity, and speaks every fabric frame both
// ways. It implements Fabric.
type Node struct {
	rank        int
	n           int
	windowWords int
	groups      int
	inc         int
	addr        string
	meta        []byte
	// tuning is read by the accept loop from the moment the listener is
	// up and replaced once by applyWorld (the seed distributes the whole
	// fabric's timings), hence the atomic pointer.
	tuning atomic.Pointer[Tuning]
	dialer transport.Dialer
	ln          net.Listener
	logf        func(string, ...any)

	// obs/om/fr are set once in Join before any loop starts and are
	// immutable after: hot paths use them without nil checks (om) or
	// with the recorder's own nil/disabled fast path (fr).
	obs       *obs.Registry
	om        *nodeMetrics
	fr        *obs.Recorder
	flightDir string

	// window is the rank's exposed memory; winMu keeps remote batches,
	// local reads/writes, and checkpoint diffs atomic to each other.
	winMu  sync.Mutex
	window []uint64

	// ckptMu serializes the checkpoint protocol (diff, fold, base
	// commit) against crisis quiesce and base fetches; ckptCond parks
	// checkpoints while inCrisis.
	ckptMu   sync.Mutex
	ckptCond *sync.Cond
	inCrisis bool
	base     []uint64
	snapSelf snap

	// logMu guards the access logs and the causal counters.
	logMu sync.Mutex
	logs  ftrma.LogHost
	ec    []int // per-target epoch counters
	sc    int   // global put sequence
	gc    int   // global get counter
	phase int   // the phase executing next (== own watermark)
	ecAt  map[int][]int
	gcAt  map[int]int

	// pend is the open epoch per target; workload-thread only.
	pend [][]pendOp

	// mmu guards the membership and hosting tables and crisis trackers;
	// mcond wakes watermark barriers and parked deliveries.
	mmu        sync.Mutex
	mcond      *sync.Cond
	members    []Member
	hostings   []Hosting
	strikes    map[int]*strike
	crisisBusy bool
	recoveries int
	pending    *pendingInstall
	gossipPos  int // rotating fan-out cursor, guarded by mmu

	parMu  sync.Mutex
	hosted map[int]*hostedGroup

	cmu      sync.Mutex
	conns    map[int]*peerConn
	accepted []*wire.Conn

	installed atomic.Bool
	closed    atomic.Bool
	stop      chan struct{}
	shutdown  chan struct{}
	shutOnce  sync.Once
	closeOnce sync.Once

	failMu  sync.Mutex
	failErr error
}

type strike struct {
	inc int
	n   int
}

var _ Fabric = (*Node)(nil)

// tun returns the node's current timing knobs.
func (nd *Node) tun() Tuning { return *nd.tuning.Load() }

// Join enters the fabric through cfg.Join and returns a ready node: the
// listener is serving, the world (and, for a replacement rank, the
// reconstructed install state) is applied, and gossip is running.
func Join(cfg JoinConfig) (*Node, error) {
	if cfg.Listener == nil || cfg.Dialer == nil {
		return nil, errors.New("fabric: JoinConfig needs a Listener and a Dialer")
	}
	nd := &Node{
		addr:     cfg.Addr,
		dialer:   cfg.Dialer,
		ln:       cfg.Listener,
		logf:     cfg.Logf,
		conns:    make(map[int]*peerConn),
		hosted:   make(map[int]*hostedGroup),
		strikes:  make(map[int]*strike),
		stop:     make(chan struct{}),
		shutdown: make(chan struct{}),
	}
	if nd.logf == nil {
		nd.logf = func(string, ...any) {}
	}
	tun := Tuning{}.WithDefaults()
	nd.tuning.Store(&tun)
	nd.initObs(cfg.Obs, cfg.Flight, cfg.FlightDir)
	nd.ckptCond = sync.NewCond(&nd.ckptMu)
	nd.mcond = sync.NewCond(&nd.mmu)
	go nd.acceptLoop()

	w, in, err := nd.joinLoop(cfg.Join)
	if err != nil {
		nd.Close()
		return nil, err
	}
	if err := nd.applyWorld(w, in); err != nil {
		nd.Close()
		return nil, err
	}
	go nd.gossipLoop()
	return nd, nil
}

// joinLoop walks the retry/redirect protocol until a world arrives. A
// failing address falls back to the original one: a survivor may
// redirect to a stale "lowest alive" rank that is in fact the corpse
// we are replacing, and the survivor itself stays reachable until its
// own failure detector catches up and redirects to the real arbiter.
func (nd *Node) joinLoop(addr string) (world, *install, error) {
	orig := addr
	deadline := time.Now().Add(60 * time.Second)
	for dialErrs := 0; ; {
		if time.Now().After(deadline) {
			return world{}, nil, fmt.Errorf("fabric: join via %s: no world within 60s", addr)
		}
		r, err := nd.joinOnce(addr)
		if err != nil {
			dialErrs++
			if dialErrs > 200 {
				return world{}, nil, fmt.Errorf("fabric: join via %s: %w", addr, err)
			}
			addr = orig
			time.Sleep(nd.tun().GossipInterval)
			continue
		}
		dialErrs = 0
		switch r.mode {
		case jmRetry:
			time.Sleep(time.Duration(r.retryMs) * time.Millisecond)
		case jmRedirect:
			addr = r.redirect
		case jmWorld:
			return r.w, r.in, nil
		}
	}
}

// joinReply is one decoded fJoin exchange.
type joinReply struct {
	mode     byte
	retryMs  int
	redirect string
	w        world
	in       *install
}

func (nd *Node) joinOnce(addr string) (joinReply, error) {
	var r joinReply
	nc, err := nd.dialer.Dial(addr)
	if err != nil {
		return r, err
	}
	wc := wire.New(nc, wire.Config{
		Heartbeat: nd.tun().LeaseInterval,
		BytesOut:  nd.om.wireOut, BytesIn: nd.om.wireIn,
	})
	defer wc.Close()
	var e wire.Enc
	e.Str(nd.addr)
	reply, err := wc.Call(fJoin, e.Bytes())
	if err != nil {
		return r, err
	}
	d := wire.NewDec(reply)
	switch r.mode = d.B(); r.mode {
	case jmRetry:
		r.retryMs = d.I()
	case jmRedirect:
		r.redirect = d.Str()
	case jmWorld:
		var ok bool
		if r.w, ok = decWorld(d); !ok {
			return r, errors.New("fabric: undecodable join world")
		}
		if d.B() != 0 {
			if r.in, ok = decInstall(d); !ok {
				return r, errors.New("fabric: undecodable join install")
			}
		}
	default:
		return r, fmt.Errorf("fabric: unknown join reply mode %d", r.mode)
	}
	if d.Failed() {
		return r, errors.New("fabric: undecodable join reply")
	}
	return r, nil
}

// applyWorld installs the join reply: identity, tables, hosted parity,
// and — for a replacement — the reconstructed base and causal replay.
func (nd *Node) applyWorld(w world, in *install) error {
	if w.n < 2 || w.rank < 0 || w.rank >= w.n || w.windowWords < 1 ||
		w.groups < 1 || w.groups > w.n || len(w.members) != w.n {
		return fmt.Errorf("fabric: malformed world (rank %d of %d, %d window words, %d groups, %d members)",
			w.rank, w.n, w.windowWords, w.groups, len(w.members))
	}
	nd.rank, nd.n, nd.windowWords, nd.groups = w.rank, w.n, w.windowWords, w.groups
	if nd.obs.Rank() < 0 {
		nd.obs.SetRank(nd.rank)
	}
	if nd.fr.Rank() < 0 {
		nd.fr.SetRank(nd.rank)
	}
	tw := w.tuning.WithDefaults()
	nd.tuning.Store(&tw)
	nd.meta = w.meta
	nd.inc = w.members[w.rank].Incarnation
	nd.window = make([]uint64, w.windowWords)
	nd.base = make([]uint64, w.windowWords)
	nd.snapSelf = snap{phase: -1, ec: make([]int, w.n)}
	nd.logs = ftrma.NewLocalLogHost(4096, 128, 0.5)
	nd.ec = make([]int, w.n)
	nd.ecAt = map[int][]int{0: make([]int, w.n)}
	nd.gcAt = map[int]int{0: 0}
	nd.pend = make([][]pendOp, w.n)
	nd.members = append([]Member(nil), w.members...)
	nd.hostings = append([]Hosting(nil), w.hostings...)
	for _, h := range w.hostings {
		if h.Host == nd.rank {
			hg, err := newHostedGroup(nd.n, nd.groups, h.Group, nd.windowWords)
			if err != nil {
				return err
			}
			nd.hosted[h.Group] = hg
		}
	}
	if in != nil {
		if err := nd.applyInstall(in); err != nil {
			return err
		}
	}
	nd.installed.Store(true)
	nd.logf("fabric: rank %d inc %d joined at phase %d", nd.rank, nd.inc, nd.phase)
	return nil
}

// applyInstall replays the reconstructed state of a replacement rank:
// base, counters, then the causally sorted put redeliveries and get
// re-deposits with GNC ≥ the committed phase.
func (nd *Node) applyInstall(in *install) error {
	t0 := time.Now()
	if len(in.base) != nd.windowWords {
		return fmt.Errorf("fabric: install base has %d words, window is %d", len(in.base), nd.windowWords)
	}
	copy(nd.base, in.base)
	copy(nd.window, in.base)
	nd.snapSelf = in.snap
	if len(in.snap.ec) == nd.n {
		copy(nd.ec, in.snap.ec)
	}
	nd.gc = in.snap.gc
	nd.phase = in.snap.phase + 1
	nd.ecAt = map[int][]int{nd.phase: append([]int(nil), nd.ec...)}
	nd.gcAt = map[int]int{nd.phase: nd.gc}
	sortReplayRecords(in.puts, in.gets)
	for _, r := range in.puts {
		if r.Combine || r.Op != rma.OpReplace {
			return fmt.Errorf("fabric: replay of combining put (op %v) is not supported", r.Op)
		}
		if r.Off < 0 || r.Off+len(r.Data) > nd.windowWords {
			return fmt.Errorf("fabric: replay put out of window ([%d,%d) of %d)", r.Off, r.Off+len(r.Data), nd.windowWords)
		}
		copy(nd.window[r.Off:], r.Data)
	}
	for _, r := range in.gets {
		if r.LocalOff < 0 {
			continue // private destination: re-execution re-fetches it
		}
		if r.LocalOff+len(r.Data) > nd.windowWords {
			return fmt.Errorf("fabric: replay get deposit out of window")
		}
		copy(nd.window[r.LocalOff:], r.Data)
	}
	nd.om.replayChunks.Inc()
	nd.om.replayPuts.Add(uint64(len(in.puts)))
	nd.om.replayGets.Add(uint64(len(in.gets)))
	us := time.Since(t0).Microseconds()
	if us < 1 {
		us = 1
	}
	nd.om.replayUs.Observe(uint64(us))
	nd.fr.Record(obs.EvReplayChunk, int64(len(in.puts)), int64(len(in.gets)), us)
	return nil
}

// sortReplayRecords orders replay like ftrma's recovery: puts by
// (GNC, SC, EC), gets by (GNC, GC).
func sortReplayRecords(puts, gets []ftrma.LogRecord) {
	sort.SliceStable(puts, func(i, j int) bool {
		a, b := puts[i], puts[j]
		if a.GNC != b.GNC {
			return a.GNC < b.GNC
		}
		if a.SC != b.SC {
			return a.SC < b.SC
		}
		return a.EC < b.EC
	})
	sort.SliceStable(gets, func(i, j int) bool {
		a, b := gets[i], gets[j]
		if a.GNC != b.GNC {
			return a.GNC < b.GNC
		}
		return a.GC < b.GC
	})
}

func newHostedGroup(n, groups, g, words int) (*hostedGroup, error) {
	k := len(groupMembers(n, groups, g))
	rs, err := erasure.NewRS(k, 1)
	if err != nil {
		return nil, err
	}
	hg := &hostedGroup{
		k:      k,
		rs:     rs,
		shards: [][]uint64{make([]uint64, words)},
		snaps:  make([]snap, k),
		folded: make([]int, k),
	}
	for i := range hg.snaps {
		hg.snaps[i] = snap{phase: -1}
		hg.folded[i] = -1
	}
	return hg, nil
}

// ---- Liveness, failure, shutdown --------------------------------------------

func (nd *Node) fail(err error) {
	nd.failMu.Lock()
	if nd.failErr == nil {
		nd.failErr = err
		nd.logf("fabric: rank %d failed: %v", nd.rank, err)
	}
	nd.failMu.Unlock()
	nd.mcond.Broadcast()
	nd.ckptCond.Broadcast()
}

// failedOrClosed returns the terminal error of the node, if any.
func (nd *Node) failedOrClosed() error {
	if nd.closed.Load() {
		return ErrClosed
	}
	nd.failMu.Lock()
	defer nd.failMu.Unlock()
	return nd.failErr
}

// Close implements Fabric.
func (nd *Node) Close() error {
	nd.closeOnce.Do(func() {
		nd.closed.Store(true)
		close(nd.stop)
		nd.shutOnce.Do(func() { close(nd.shutdown) })
		nd.ln.Close()
		nd.cmu.Lock()
		for _, pc := range nd.conns {
			pc.c.Close()
		}
		acc := nd.accepted
		nd.accepted = nil
		nd.cmu.Unlock()
		for _, c := range acc {
			c.Close()
		}
		nd.mcond.Broadcast()
		nd.ckptCond.Broadcast()
	})
	return nil
}

// AwaitShutdown implements Fabric.
func (nd *Node) AwaitShutdown() { <-nd.shutdown }

// Meta implements Fabric.
func (nd *Node) Meta() []byte { return nd.meta }

// Addr implements Fabric.
func (nd *Node) Addr() string { return nd.addr }

// ---- Membership -------------------------------------------------------------

// Self implements Membership.
func (nd *Node) Self() Member {
	nd.mmu.Lock()
	defer nd.mmu.Unlock()
	return nd.members[nd.rank]
}

// Members implements Membership.
func (nd *Node) Members() []Member {
	nd.mmu.Lock()
	defer nd.mmu.Unlock()
	return append([]Member(nil), nd.members...)
}

// Hostings implements Membership.
func (nd *Node) Hostings() []Hosting {
	nd.mmu.Lock()
	defer nd.mmu.Unlock()
	return append([]Hosting(nil), nd.hostings...)
}

// InCrisis implements Crisis.
func (nd *Node) InCrisis() bool {
	nd.ckptMu.Lock()
	defer nd.ckptMu.Unlock()
	return nd.inCrisis
}

// Recoveries implements Crisis.
func (nd *Node) Recoveries() int {
	nd.mmu.Lock()
	defer nd.mmu.Unlock()
	return nd.recoveries
}

// condemn marks (rank, inc) dead: the local half of the failure
// detector. Verdicts are per-incarnation so a replacement is never
// condemned by stale evidence against its predecessor.
func (nd *Node) condemn(rank, inc int, cause error) {
	if rank == nd.rank || nd.closed.Load() {
		return
	}
	select {
	case <-nd.shutdown: // orderly teardown: peers closing is not a death
		return
	default:
	}
	nd.mmu.Lock()
	m := &nd.members[rank]
	if m.Incarnation != inc || !m.Alive {
		nd.mmu.Unlock()
		return
	}
	m.Alive = false
	nd.mmu.Unlock()
	nd.om.condemned.Inc()
	nd.fr.Record(obs.EvCondemn, int64(rank), int64(inc), 0)
	nd.logf("fabric: rank %d condemns rank %d (inc %d): %v", nd.rank, rank, inc, cause)
	nd.dropConn(rank)
	nd.mcond.Broadcast()
	go func() {
		nd.gossipNow()
		nd.maybeArbiter()
	}()
}

// strikeDial records a failed dial towards (rank, inc); LeaseMiss
// consecutive strikes condemn the peer. This is the detector for peers
// we hold no live connection to (established connections are covered by
// wire heartbeats + OnDown).
func (nd *Node) strikeDial(rank, inc int, cause error) {
	nd.mmu.Lock()
	s := nd.strikes[rank]
	if s == nil || s.inc != inc {
		s = &strike{inc: inc}
		nd.strikes[rank] = s
	}
	s.n++
	hit := s.n >= nd.tun().LeaseMiss
	nd.mmu.Unlock()
	if hit {
		nd.condemn(rank, inc, fmt.Errorf("unreachable after %d dial attempts: %w", nd.tun().LeaseMiss, cause))
	}
}

func (nd *Node) clearStrikes(rank int) {
	nd.mmu.Lock()
	delete(nd.strikes, rank)
	nd.mmu.Unlock()
}

// mergeMembers folds a remote view into ours: higher incarnations win a
// slot outright; within one incarnation deaths are sticky and watermarks
// are monotone.
func (nd *Node) mergeMembers(ms []Member, hs []Hosting) {
	if !nd.installed.Load() {
		return
	}
	changed := false
	nd.mmu.Lock()
	for _, m := range ms {
		if m.Rank < 0 || m.Rank >= nd.n || m.Rank == nd.rank {
			continue
		}
		cur := &nd.members[m.Rank]
		switch {
		case m.Incarnation > cur.Incarnation:
			*cur = m
			changed = true
		case m.Incarnation == cur.Incarnation:
			if cur.Alive && !m.Alive {
				cur.Alive = false
				changed = true
			}
			if m.Watermark > cur.Watermark {
				cur.Watermark = m.Watermark
				changed = true
			}
			if cur.Addr == "" && m.Addr != "" {
				cur.Addr = m.Addr
				changed = true
			}
		}
	}
	for _, h := range hs {
		if h.Group < 0 || h.Group >= len(nd.hostings) {
			continue
		}
		if h.Version > nd.hostings[h.Group].Version {
			nd.hostings[h.Group] = h
			changed = true
		}
	}
	nd.mmu.Unlock()
	if changed {
		nd.mcond.Broadcast()
		nd.maybeArbiter()
	}
}

func (nd *Node) gossipLoop() {
	t := time.NewTicker(nd.tun().GossipInterval)
	defer t.Stop()
	for {
		select {
		case <-nd.stop:
			return
		case <-t.C:
		}
		nd.gossipNow()
		nd.maybeArbiter()
	}
}

// gossipFanout bounds how many peers one gossip round addresses. All-peers
// rounds make the anti-entropy load O(n²) frames per interval fabric-wide,
// which at a couple hundred ranks swamps the heartbeats it is meant to
// backstop; a rotating bounded fan-out keeps per-round load O(n·k) and
// still reaches every peer within ceil((n-1)/k) rounds — epidemic spread
// converges faster than that in practice, and repair is reset-driven
// anyway.
const gossipFanout = 16

func (nd *Node) gossipNow() {
	if nd.failedOrClosed() != nil {
		return
	}
	var e wire.Enc
	nd.mmu.Lock()
	encMembers(&e, nd.members)
	encHostings(&e, nd.hostings)
	peers := nd.alivePeersLocked()
	if len(peers) > gossipFanout {
		start := nd.gossipPos % len(peers)
		nd.gossipPos = (nd.gossipPos + gossipFanout) % len(peers)
		window := make([]Member, 0, gossipFanout)
		for i := 0; i < gossipFanout; i++ {
			window = append(window, peers[(start+i)%len(peers)])
		}
		peers = window
	}
	nd.mmu.Unlock()
	payload := e.Bytes()
	for _, p := range peers {
		nd.bestEffortNotify(p, fGossip, payload)
	}
}

// alivePeersLocked snapshots the live peers (rank, incarnation ≠ self).
func (nd *Node) alivePeersLocked() []Member {
	var out []Member
	for _, m := range nd.members {
		if m.Rank != nd.rank && m.Alive && m.Addr != "" {
			out = append(out, m)
		}
	}
	return out
}

// bestEffortNotify sends one notification towards m, dialing at most
// once; failures feed the dial-strike detector instead of blocking.
func (nd *Node) bestEffortNotify(m Member, t byte, payload []byte) {
	nd.cmu.Lock()
	pc := nd.conns[m.Rank]
	nd.cmu.Unlock()
	if pc == nil || pc.inc != m.Incarnation {
		var err error
		pc, err = nd.dialPeer(m)
		if err != nil {
			nd.strikeDial(m.Rank, m.Incarnation, err)
			return
		}
	}
	pc.c.Notify(t, payload)
}

// dialPeer opens and registers the outbound connection to m.
func (nd *Node) dialPeer(m Member) (*peerConn, error) {
	nc, err := nd.dialer.Dial(m.Addr)
	if err != nil {
		return nil, err
	}
	st := &connState{rank: m.Rank, inc: m.Incarnation, helloed: true}
	pc := &peerConn{rank: m.Rank, inc: m.Incarnation}
	lease := nd.tun().LeaseInterval * time.Duration(nd.tun().LeaseMiss)
	pc.c = wire.New(nc, wire.Config{
		Handler:     func(t byte, p []byte) (byte, []byte, error) { return nd.handle(st, t, p) },
		Heartbeat:   nd.tun().LeaseInterval,
		ReadTimeout: lease,
		BytesOut:    nd.om.wireOut,
		BytesIn:     nd.om.wireIn,
		OnDown: func(err error) {
			if pc.quiet.Load() {
				return
			}
			nd.condemn(m.Rank, m.Incarnation, fmt.Errorf("connection down: %w", err))
		},
		// A frame landing inside the last LeaseMiss window slice was one
		// heartbeat from condemning a live peer: count it so operators see
		// lease pressure long before the first false positive.
		OnNearMiss: func(gap time.Duration) {
			nd.om.nearMiss.Inc()
			nd.fr.Record(obs.EvLeaseNearMiss, int64(m.Rank), gap.Microseconds(), lease.Microseconds())
		},
	})
	var e wire.Enc
	e.I(nd.rank)
	e.I(nd.inc)
	pc.c.Notify(fHello, e.Bytes())
	nd.cmu.Lock()
	if old := nd.conns[m.Rank]; old != nil && old.inc == m.Incarnation {
		nd.cmu.Unlock()
		pc.quiet.Store(true)
		pc.c.Close()
		return old, nil
	} else if old != nil {
		old.quiet.Store(true)
		old.c.Close()
	}
	nd.conns[m.Rank] = pc
	nd.cmu.Unlock()
	nd.clearStrikes(m.Rank)
	return pc, nil
}

func (nd *Node) dropConn(rank int) {
	nd.cmu.Lock()
	pc := nd.conns[rank]
	delete(nd.conns, rank)
	nd.cmu.Unlock()
	if pc != nil {
		pc.quiet.Store(true)
		pc.c.Close()
	}
}

// conn returns a live connection to target, parking (interruptibly)
// while the target is dead and its replacement has not joined yet.
func (nd *Node) conn(target int) (*peerConn, error) {
	for {
		if err := nd.failedOrClosed(); err != nil {
			return nil, err
		}
		nd.mmu.Lock()
		m := nd.members[target]
		nd.mmu.Unlock()
		if m.Alive && m.Addr != "" {
			nd.cmu.Lock()
			pc := nd.conns[target]
			nd.cmu.Unlock()
			if pc != nil && pc.inc == m.Incarnation {
				return pc, nil
			}
			pc, err := nd.dialPeer(m)
			if err == nil {
				return pc, nil
			}
			nd.strikeDial(target, m.Incarnation, err)
			time.Sleep(nd.tun().GossipInterval)
			continue
		}
		// Dead: park until gossip shows a replacement incarnation.
		nd.mmu.Lock()
		if cur := nd.members[target]; cur.Incarnation == m.Incarnation && !cur.Alive {
			nd.mcond.Wait()
		}
		nd.mmu.Unlock()
	}
}

// ---- The rma.API surface ----------------------------------------------------

// Rank implements rma.API.
func (nd *Node) Rank() int { return nd.rank }

// N implements rma.API.
func (nd *Node) N() int { return nd.n }

// ReadAt implements rma.API.
func (nd *Node) ReadAt(off, n int) []uint64 {
	out := make([]uint64, n)
	nd.winMu.Lock()
	copy(out, nd.window[off:off+n])
	nd.winMu.Unlock()
	return out
}

// ReadInto is the allocation-free read path rma.ReadWindow probes for.
func (nd *Node) ReadInto(off int, dst []uint64) {
	nd.winMu.Lock()
	copy(dst, nd.window[off:off+len(dst)])
	nd.winMu.Unlock()
}

// WriteAt implements rma.API. Local writes are captured by the
// content diff of the next checkpoint.
func (nd *Node) WriteAt(off int, data []uint64) {
	nd.winMu.Lock()
	copy(nd.window[off:], data)
	nd.winMu.Unlock()
}

// Put implements rma.API.
func (nd *Node) Put(target, off int, data []uint64) {
	if target == nd.rank {
		nd.WriteAt(off, data)
		return
	}
	cp := append([]uint64(nil), data...)
	nd.logMu.Lock()
	sc := nd.sc
	nd.sc++
	nd.logMu.Unlock()
	nd.pend[target] = append(nd.pend[target], pendOp{put: true, off: off, data: cp, sc: sc})
}

// PutValue implements rma.API.
func (nd *Node) PutValue(target, off int, v uint64) { nd.Put(target, off, []uint64{v}) }

// Get implements rma.API.
func (nd *Node) Get(target, off, n int) []uint64 { return nd.addGet(target, off, n, -1) }

// GetCopy implements rma.API.
func (nd *Node) GetCopy(target, off, n, localOff int) []uint64 {
	return nd.addGet(target, off, n, localOff)
}

// GetInto implements rma.API by rejection: the fabric window never hands
// out aliases (GetCopy covers the recoverable-landing use).
func (nd *Node) GetInto(target, off, n, localOff int) []uint64 {
	panic("fabric: GetInto (window aliasing) is not supported; use GetCopy")
}

// GetBlocking implements rma.API.
func (nd *Node) GetBlocking(target, off, n int) []uint64 {
	if target == nd.rank {
		return nd.ReadAt(off, n)
	}
	dest := nd.addGet(target, off, n, -1)
	nd.Flush(target)
	return dest
}

func (nd *Node) addGet(target, off, n, localOff int) []uint64 {
	dest := make([]uint64, n)
	if target == nd.rank {
		nd.winMu.Lock()
		copy(dest, nd.window[off:off+n])
		if localOff >= 0 {
			copy(nd.window[localOff:], dest)
		}
		nd.winMu.Unlock()
		return dest
	}
	nd.logMu.Lock()
	gc := nd.gc
	nd.gc++
	nd.logMu.Unlock()
	nd.pend[target] = append(nd.pend[target], pendOp{off: off, n: n, localOff: localOff, dest: dest, gc: gc})
	return dest
}

// Flush implements rma.API: it closes the epoch towards target by
// shipping the buffered batch peer-to-peer. Delivery failures park and
// redeliver to the target's replacement (idempotent under the causal
// model); terminal node failures surface at the next Sync.
func (nd *Node) Flush(target int) {
	if target == nd.rank || len(nd.pend[target]) == 0 {
		return
	}
	ops := nd.pend[target]
	nd.pend[target] = nil
	nd.deliver(target, ops)
}

// FlushAll implements rma.API.
func (nd *Node) FlushAll() {
	for t := 0; t < nd.n; t++ {
		nd.Flush(t)
	}
}

func (nd *Node) deliver(target int, ops []pendOp) {
	t0 := time.Now()
	nd.logMu.Lock()
	phase := nd.phase
	nd.logMu.Unlock()
	var e wire.Enc
	e.I(nd.rank)
	e.I(nd.inc)
	e.I(phase)
	nputs, ngets := 0, 0
	for _, op := range ops {
		if op.put {
			nputs++
		} else {
			ngets++
		}
	}
	e.I(nputs)
	for _, op := range ops {
		if op.put {
			e.I(op.off)
			e.Words(op.data)
		}
	}
	e.I(ngets)
	for _, op := range ops {
		if !op.put {
			e.I(op.off)
			e.I(op.n)
			e.I(op.localOff + 1)
			e.I(op.gc)
		}
	}
	payload := e.Bytes()
	for {
		if nd.failedOrClosed() != nil {
			return
		}
		pc, err := nd.conn(target)
		if err != nil {
			return
		}
		reply, err := pc.c.Call(fBatch, payload)
		if err == nil {
			nd.om.batchSent.Inc()
			nd.om.flushUs.ObserveSince(t0)
			nd.fr.Record(obs.EvFrameSend, int64(fBatch), int64(target), int64(len(payload)))
			nd.ackBatch(target, phase, ops, reply)
			return
		}
		var rf wire.RemoteFail
		if errors.As(err, &rf) {
			if rf.Code == wire.CodeCrisis {
				// Replacement still installing: retry shortly.
				time.Sleep(nd.tun().GossipInterval)
				continue
			}
			nd.fail(fmt.Errorf("fabric: batch to rank %d rejected: %w", target, err))
			return
		}
		// Connection death: OnDown condemns, conn() parks for the
		// replacement, and redelivery is idempotent.
		time.Sleep(nd.tun().GossipInterval)
	}
}

// ackBatch commits a delivered epoch: source-side put logs and get
// result placement.
func (nd *Node) ackBatch(target, phase int, ops []pendOp, reply []byte) {
	nd.logMu.Lock()
	epoch := nd.ec[target]
	for _, op := range ops {
		if !op.put {
			continue
		}
		nd.logs.AppendLP(target, ftrma.LogRecord{
			Kind: ftrma.LogPut, Src: nd.rank, Trg: target,
			Off: op.off, Data: op.data, LocalOff: -1,
			EC: epoch, SC: op.sc, GNC: phase,
		})
	}
	nd.ec[target] = epoch + 1
	nd.logMu.Unlock()
	d := wire.NewDec(reply)
	count := d.I()
	for _, op := range ops {
		if op.put {
			continue
		}
		if count <= 0 {
			nd.fail(fmt.Errorf("fabric: batch reply from rank %d misses get results", target))
			return
		}
		count--
		if !d.WordsInto(op.dest) {
			nd.fail(fmt.Errorf("fabric: undecodable batch reply from rank %d", target))
			return
		}
		if op.localOff >= 0 {
			nd.winMu.Lock()
			copy(nd.window[op.localOff:], op.dest)
			nd.winMu.Unlock()
		}
	}
}

// Unsupported coordinator-runtime surface (see the package doc: the
// fabric is scoped to causal workloads).
func (nd *Node) Accumulate(target, off int, data []uint64, op rma.ReduceOp) {
	if op == rma.OpReplace {
		nd.Put(target, off, data)
		return
	}
	panic("fabric: combining Accumulate requires the coordinator runtime")
}

// CompareAndSwap implements rma.API by rejection.
func (nd *Node) CompareAndSwap(target, off int, old, new uint64) uint64 {
	panic("fabric: CompareAndSwap requires the coordinator runtime")
}

// FetchAndOp implements rma.API by rejection.
func (nd *Node) FetchAndOp(target, off int, operand uint64, op rma.ReduceOp) uint64 {
	panic("fabric: FetchAndOp requires the coordinator runtime")
}

// GetAccumulate implements rma.API by rejection.
func (nd *Node) GetAccumulate(target, off int, data []uint64, op rma.ReduceOp) []uint64 {
	panic("fabric: GetAccumulate requires the coordinator runtime")
}

// Lock implements rma.API by rejection.
func (nd *Node) Lock(target, str int) {
	panic("fabric: structure locks require the coordinator runtime")
}

// Unlock implements rma.API by rejection.
func (nd *Node) Unlock(target, str int) {
	panic("fabric: structure locks require the coordinator runtime")
}

// Barrier implements rma.API by rejection (Gsync is the fabric's only
// collective).
func (nd *Node) Barrier() {
	panic("fabric: Barrier requires the coordinator runtime; use Gsync")
}

// Compute implements rma.API (the fabric carries no virtual clock).
func (nd *Node) Compute(flops float64) {}

// Now implements rma.API.
func (nd *Node) Now() float64 { return 0 }

// Gsync implements rma.API on top of Sync.
func (nd *Node) Gsync() {
	if err := nd.Sync(); err != nil {
		panic(fmt.Sprintf("fabric: gsync: %v", err))
	}
}

// ---- Epoch ------------------------------------------------------------------

// Phase implements Epoch.
func (nd *Node) Phase() int {
	nd.logMu.Lock()
	defer nd.logMu.Unlock()
	return nd.phase
}

// Sync implements Epoch: flush everything, commit the phase checkpoint
// to the group's parity host, pass the hub-free watermark barrier, then
// trim logs that checkpoints now cover.
func (nd *Node) Sync() error {
	nd.FlushAll()
	if err := nd.failedOrClosed(); err != nil {
		return err
	}
	nd.logMu.Lock()
	p := nd.phase
	nd.logMu.Unlock()
	ckpt := time.Now()
	if err := nd.checkpoint(p); err != nil {
		return err
	}
	nd.om.ckptUs.ObserveSince(ckpt)
	nd.logMu.Lock()
	nd.phase = p + 1
	nd.ecAt[p+1] = append([]int(nil), nd.ec...)
	nd.gcAt[p+1] = nd.gc
	nd.logMu.Unlock()
	nd.fr.Record(obs.EvEpochClose, int64(p), int64(nd.n-1), 0)
	nd.broadcastReady(p + 1)
	wait := time.Now()
	if err := nd.awaitWatermarks(p + 1); err != nil {
		return err
	}
	us := time.Since(wait).Microseconds()
	if us < 1 {
		us = 1
	}
	nd.om.gsyncUs.Observe(uint64(us))
	nd.fr.Record(obs.EvGsync, int64(p+1), 0, us)
	nd.fr.Record(obs.EvEpochOpen, int64(p+1), 0, 0)
	nd.trimAt(p + 1)
	return nil
}

func (nd *Node) broadcastReady(wm int) {
	nd.mmu.Lock()
	if nd.members[nd.rank].Watermark < wm {
		nd.members[nd.rank].Watermark = wm
	}
	peers := nd.alivePeersLocked()
	nd.mmu.Unlock()
	nd.mcond.Broadcast()
	var e wire.Enc
	e.I(nd.rank)
	e.I(nd.inc)
	e.I(wm)
	payload := e.Bytes()
	for _, p := range peers {
		nd.bestEffortNotify(p, fGsyncReady, payload)
	}
}

// awaitWatermarks is the barrier: every rank — dead ranks' frozen
// entries included, so a victim blocks progress until its replacement
// climbs past — must have committed watermark wm. Lost ready frames are
// repaired by gossip, which carries watermarks.
func (nd *Node) awaitWatermarks(wm int) error {
	nd.mmu.Lock()
	defer nd.mmu.Unlock()
	for {
		if err := nd.failedOrClosed(); err != nil {
			return err
		}
		ok := true
		for i := range nd.members {
			if nd.members[i].Watermark < wm {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
		nd.mcond.Wait()
	}
}

// trimAt drops log records two barriers behind: after barrier b every
// rank's checkpoint covers phase b-1, so records with GNC ≤ b-2 can
// never be replayed again.
func (nd *Node) trimAt(b int) {
	if b < 2 {
		return
	}
	nd.logMu.Lock()
	defer nd.logMu.Unlock()
	ecAt := nd.ecAt[b-1]
	for q := 0; q < nd.n; q++ {
		if q == nd.rank {
			continue
		}
		if ecAt != nil {
			nd.logs.TrimLP(q, ecAt[q])
		}
		nd.logs.TrimLG(q, b-1, 0)
	}
	for ph := range nd.ecAt {
		if ph < b-1 {
			delete(nd.ecAt, ph)
			delete(nd.gcAt, ph)
		}
	}
}

// ---- Checkpoint fold --------------------------------------------------------

// checkpoint commits phase p: content-diff the window against the
// committed base, ship the (off, delta) ranges plus the counter snapshot
// to the group's parity host in one fParityFold, then fold the delta
// into the local base. ckptMu makes the whole exchange atomic against
// crisis quiesce and base fetches; parity is always updated before the
// base commit, so parity = encode(committed bases) holds whenever the
// lock is free.
func (nd *Node) checkpoint(p int) error {
	t0 := time.Now()
	g := nd.rank % nd.groups
	memberIdx := memberIndex(nd.rank, nd.groups)
	nd.ckptMu.Lock()
	defer nd.ckptMu.Unlock()
	for {
		if err := nd.failedOrClosed(); err != nil {
			return err
		}
		if nd.inCrisis {
			nd.ckptCond.Wait()
			continue
		}
		nd.mmu.Lock()
		h := nd.hostings[g]
		nd.mmu.Unlock()
		if h.Host < 0 {
			return fmt.Errorf("fabric: group %d has no electable parity host", g)
		}
		offs, deltas := nd.diffRanges()
		s := nd.snapNow(p)
		if h.Host == nd.rank {
			if err := nd.foldLocal(g, memberIdx, p, s, offs, deltas); err != nil {
				return err
			}
			nd.commitBase(offs, deltas, s)
			nd.noteFold(g, p, len(offs), t0)
			return nil
		}
		var e wire.Enc
		e.I(nd.rank)
		e.I(nd.inc)
		e.I(g)
		e.I(memberIdx)
		e.I(p)
		encSnap(&e, s)
		e.I(len(offs))
		for i := range offs {
			e.I(offs[i])
			e.Words(deltas[i])
		}
		pc, err := nd.tryConn(h.Host)
		if err == nil {
			_, err = pc.c.Call(fParityFold, e.Bytes())
			if err == nil {
				nd.commitBase(offs, deltas, s)
				nd.noteFold(g, p, len(offs), t0)
				return nil
			}
		}
		var rf wire.RemoteFail
		if errors.As(err, &rf) && !strings.Contains(rf.Msg, "not hosting") {
			return fmt.Errorf("fabric: parity fold at rank %d: %w", h.Host, err)
		}
		// Host unreachable or the hosting table moved under us: park
		// outside the lock so crisis quiesce can proceed, then retry —
		// the host-side phase dedupe makes a replayed fold harmless.
		nd.ckptMu.Unlock()
		time.Sleep(nd.tun().GossipInterval)
		nd.ckptMu.Lock()
	}
}

// tryConn is conn() without the parked wait: checkpoint retries must not
// block inside ckptMu.
func (nd *Node) tryConn(target int) (*peerConn, error) {
	nd.mmu.Lock()
	m := nd.members[target]
	nd.mmu.Unlock()
	if !m.Alive || m.Addr == "" {
		return nil, fmt.Errorf("fabric: rank %d is down", target)
	}
	nd.cmu.Lock()
	pc := nd.conns[target]
	nd.cmu.Unlock()
	if pc != nil && pc.inc == m.Incarnation {
		return pc, nil
	}
	pc, err := nd.dialPeer(m)
	if err != nil {
		nd.strikeDial(target, m.Incarnation, err)
		return nil, err
	}
	return pc, nil
}

// diffRanges computes the changed runs of the window vs the committed
// base as XOR deltas. Caller holds ckptMu.
func (nd *Node) diffRanges() (offs []int, deltas [][]uint64) {
	nd.winMu.Lock()
	defer nd.winMu.Unlock()
	w, b := nd.window, nd.base
	for i := 0; i < len(w); {
		if w[i] == b[i] {
			i++
			continue
		}
		j := i + 1
		for j < len(w) && w[j] != b[j] {
			j++
		}
		delta := make([]uint64, j-i)
		for k := i; k < j; k++ {
			delta[k-i] = w[k] ^ b[k]
		}
		offs = append(offs, i)
		deltas = append(deltas, delta)
		i = j
	}
	return offs, deltas
}

// snapNow captures the counters the committed base of phase p stands at.
func (nd *Node) snapNow(p int) snap {
	nd.logMu.Lock()
	defer nd.logMu.Unlock()
	return snap{phase: p, ec: append([]int(nil), nd.ec...), gc: nd.gc}
}

// commitBase advances the committed base by the folded deltas. Caller
// holds ckptMu; the parity host has already acknowledged the same
// deltas.
func (nd *Node) commitBase(offs []int, deltas [][]uint64, s snap) {
	for i := range offs {
		for k, d := range deltas[i] {
			nd.base[offs[i]+k] ^= d
		}
	}
	nd.snapSelf = s
}

// noteFold records one committed checkpoint fold.
func (nd *Node) noteFold(g, p, nRanges int, t0 time.Time) {
	nd.om.foldsSent.Inc()
	nd.om.foldUs.ObserveSince(t0)
	nd.fr.Record(obs.EvParityFold, int64(g), int64(p), int64(nRanges))
}

// foldLocal applies a fold into parity this node hosts itself.
func (nd *Node) foldLocal(g, memberIdx, p int, s snap, offs []int, deltas [][]uint64) error {
	nd.parMu.Lock()
	defer nd.parMu.Unlock()
	hg := nd.hosted[g]
	if hg == nil {
		return fmt.Errorf("fabric: rank %d is not hosting group %d", nd.rank, g)
	}
	hg.fold(memberIdx, p, s, offs, deltas)
	nd.om.foldsHosted.Inc()
	return nil
}

// fold applies one member's checkpoint delta; a duplicate phase is
// acknowledged without re-applying so fold retries stay idempotent.
func (hg *hostedGroup) fold(memberIdx, p int, s snap, offs []int, deltas [][]uint64) {
	if memberIdx < 0 || memberIdx >= hg.k {
		panic(fmt.Sprintf("fabric: fold for member %d of a %d-member group", memberIdx, hg.k))
	}
	if hg.folded[memberIdx] == p {
		return
	}
	for i := range offs {
		ftrma.FoldDelta(hg.rs, hg.shards, memberIdx, offs[i], deltas[i])
	}
	hg.snaps[memberIdx] = s
	hg.folded[memberIdx] = p
}
