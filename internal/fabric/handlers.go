package fabric

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/erasure"
	"repro/internal/ftrma"
	"repro/internal/obs"
	"repro/internal/transport/wire"
)

// errBadFrame is the shared reply for undecodable payloads.
var errBadFrame = errors.New("fabric: undecodable frame")

func (nd *Node) acceptLoop() {
	for {
		nc, err := nd.ln.Accept()
		if err != nil {
			return
		}
		st := &connState{rank: -1}
		wc := wire.New(nc, wire.Config{
			Handler: func(t byte, p []byte) (byte, []byte, error) { return nd.handle(st, t, p) },
			// Heartbeat keeps transient joiner connections alive through
			// long rendezvous waits; the lease (ReadTimeout) only runs on
			// attributed peer connections — probe connections from tests
			// and joiners never hello and may idle.
			Heartbeat: nd.tun().LeaseInterval,
			BytesOut:  nd.om.wireOut, BytesIn: nd.om.wireIn,
			OnDown: func(err error) {
				st.mu.Lock()
				rank, inc, helloed := st.rank, st.inc, st.helloed
				st.mu.Unlock()
				if helloed {
					nd.condemn(rank, inc, fmt.Errorf("inbound connection down: %w", err))
				}
			},
		})
		nd.cmu.Lock()
		nd.accepted = append(nd.accepted, wc)
		nd.cmu.Unlock()
	}
}

// handle dispatches one fabric frame. It runs on a per-frame goroutine
// (wire.Handler contract), so handlers may block on node locks.
func (nd *Node) handle(st *connState, t byte, payload []byte) (byte, []byte, error) {
	d := wire.NewDec(payload)
	switch t {
	case fHello:
		rank, inc := d.I(), d.I()
		if d.Failed() {
			return t, nil, errBadFrame
		}
		st.mu.Lock()
		st.rank, st.inc, st.helloed = rank, inc, true
		st.mu.Unlock()
		return t, nil, nil
	case fJoin:
		return nd.handleJoin(d)
	case fGossip:
		ms, ok := decMembers(d)
		if !ok {
			return t, nil, errBadFrame
		}
		hs, ok := decHostings(d)
		if !ok {
			return t, nil, errBadFrame
		}
		nd.mergeMembers(ms, hs)
		return t, nil, nil
	case fGsyncReady:
		rank, inc, wm := d.I(), d.I(), d.I()
		if d.Failed() {
			return t, nil, errBadFrame
		}
		nd.mergeMembers([]Member{{Rank: rank, Incarnation: inc, Alive: true, Watermark: wm}}, nil)
		return t, nil, nil
	case fShutdown:
		nd.shutOnce.Do(func() { close(nd.shutdown) })
		return t, nil, nil
	case fCrisisFail:
		msg := d.Str()
		if d.Failed() {
			return t, nil, errBadFrame
		}
		nd.fail(fmt.Errorf("fabric: crisis failed at arbiter: %s", msg))
		return t, nil, nil
	}
	// Everything below touches rank state: refuse it until the world
	// (and a replacement's install) is applied, so a survivor's parked
	// redelivery cannot race the install's base restore.
	if !nd.installed.Load() {
		return t, nil, wire.RemoteFail{Code: wire.CodeCrisis, Msg: "fabric: node is installing"}
	}
	switch t {
	case fBatch:
		return nd.handleBatch(d)
	case fParityFold:
		return nd.handleParityFold(d)
	case fParityFetch:
		return nd.handleParityFetch(d)
	case fParityInstall:
		return nd.handleParityInstall(d)
	case fBaseFetch:
		return nd.handleBaseFetch()
	case fLogFetch:
		return nd.handleLogFetch(d)
	case fCrisisBegin:
		return nd.handleCrisisBegin(d)
	case fCrisisEnd:
		nd.handleCrisisEnd(d)
		return t, nil, nil
	case fMembers:
		var e wire.Enc
		nd.mmu.Lock()
		encMembers(&e, nd.members)
		encHostings(&e, nd.hostings)
		nd.mmu.Unlock()
		return t, e.Bytes(), nil
	case fWindowFetch:
		var e wire.Enc
		nd.winMu.Lock()
		e.Words(nd.window)
		nd.winMu.Unlock()
		return t, e.Bytes(), nil
	}
	return t, nil, fmt.Errorf("fabric: unknown frame type %#x", t)
}

// handleBatch applies one epoch close from a peer: puts land in the
// window, gets are served and logged target-side (LG) so a requester
// crash can re-deposit its exposed get landings.
func (nd *Node) handleBatch(d *wire.Dec) (byte, []byte, error) {
	src, _, phase := d.I(), d.I(), d.I()
	nputs := d.I()
	if d.Failed() || nputs < 0 || nputs > wire.MaxFrame/8 {
		return fBatch, nil, errBadFrame
	}
	type putOp struct {
		off  int
		data []uint64
	}
	type getOp struct {
		off, n, localOff, gc int
	}
	puts := make([]putOp, nputs)
	for i := range puts {
		puts[i].off = d.I()
		puts[i].data = d.Words() // private copy: the frame payload is pooled
	}
	ngets := d.I()
	if d.Failed() || ngets < 0 || ngets > wire.MaxFrame/8 {
		return fBatch, nil, errBadFrame
	}
	gets := make([]getOp, ngets)
	for i := range gets {
		gets[i].off = d.I()
		gets[i].n = d.I()
		gets[i].localOff = d.I() - 1
		gets[i].gc = d.I()
	}
	if d.Failed() || src < 0 || src >= nd.n {
		return fBatch, nil, errBadFrame
	}
	got := make([][]uint64, ngets)
	nd.winMu.Lock()
	for _, p := range puts {
		if p.off < 0 || p.off+len(p.data) > nd.windowWords {
			nd.winMu.Unlock()
			return fBatch, nil, fmt.Errorf("fabric: put out of window ([%d,%d) of %d)", p.off, p.off+len(p.data), nd.windowWords)
		}
		copy(nd.window[p.off:], p.data)
	}
	for i, g := range gets {
		if g.off < 0 || g.n < 0 || g.off+g.n > nd.windowWords {
			nd.winMu.Unlock()
			return fBatch, nil, fmt.Errorf("fabric: get out of window ([%d,%d) of %d)", g.off, g.off+g.n, nd.windowWords)
		}
		got[i] = append([]uint64(nil), nd.window[g.off:g.off+g.n]...)
	}
	nd.winMu.Unlock()
	if len(gets) > 0 {
		nd.logMu.Lock()
		for i, g := range gets {
			nd.logs.AppendLG(src, ftrma.LogRecord{
				Kind: ftrma.LogGet, Src: src, Trg: nd.rank,
				Off: g.off, Data: got[i], LocalOff: g.localOff,
				GC: g.gc, GNC: phase,
			})
		}
		nd.logMu.Unlock()
	}
	nd.om.batchRecv.Inc()
	nd.fr.Record(obs.EvFrameRecv, int64(fBatch), int64(src), int64(nputs+ngets))
	var e wire.Enc
	e.I(ngets)
	for i := range got {
		e.Words(got[i])
	}
	return fBatch, e.Bytes(), nil
}

// handleParityFold folds one member's checkpoint delta into hosted
// parity and stores its counter snapshot atomically with it.
func (nd *Node) handleParityFold(d *wire.Dec) (byte, []byte, error) {
	_, _, g, memberIdx, phase := d.I(), d.I(), d.I(), d.I(), d.I()
	s, ok := decSnap(d)
	if !ok {
		return fParityFold, nil, errBadFrame
	}
	nranges := d.I()
	if d.Failed() || nranges < 0 || nranges > wire.MaxFrame/8 {
		return fParityFold, nil, errBadFrame
	}
	offs := make([]int, nranges)
	deltas := make([][]uint64, nranges)
	for i := 0; i < nranges; i++ {
		offs[i] = d.I()
		deltas[i] = d.Words()
	}
	if d.Failed() {
		return fParityFold, nil, errBadFrame
	}
	nd.parMu.Lock()
	defer nd.parMu.Unlock()
	hg := nd.hosted[g]
	if hg == nil {
		return fParityFold, nil, fmt.Errorf("fabric: rank %d is not hosting group %d", nd.rank, g)
	}
	if memberIdx < 0 || memberIdx >= hg.k {
		return fParityFold, nil, fmt.Errorf("fabric: fold for member %d of a %d-member group", memberIdx, hg.k)
	}
	for i := range offs {
		if offs[i] < 0 || offs[i]+len(deltas[i]) > nd.windowWords {
			return fParityFold, nil, fmt.Errorf("fabric: fold range out of window")
		}
	}
	hg.fold(memberIdx, phase, s, offs, deltas)
	nd.om.foldsHosted.Inc()
	return fParityFold, nil, nil
}

// handleParityFetch hands a hosted shard set to the crisis arbiter.
func (nd *Node) handleParityFetch(d *wire.Dec) (byte, []byte, error) {
	g := d.I()
	if d.Failed() {
		return fParityFetch, nil, errBadFrame
	}
	nd.parMu.Lock()
	defer nd.parMu.Unlock()
	hg := nd.hosted[g]
	if hg == nil {
		return fParityFetch, nil, fmt.Errorf("fabric: rank %d is not hosting group %d", nd.rank, g)
	}
	var e wire.Enc
	encHostedGroup(&e, hg)
	return fParityFetch, e.Bytes(), nil
}

// handleParityInstall stores a rebuilt shard set the arbiter re-homed
// here after the previous host died.
func (nd *Node) handleParityInstall(d *wire.Dec) (byte, []byte, error) {
	g := d.I()
	if d.Failed() {
		return fParityInstall, nil, errBadFrame
	}
	hg, err := decHostedGroup(d, nd.windowWords)
	if err != nil {
		return fParityInstall, nil, err
	}
	nd.parMu.Lock()
	nd.hosted[g] = hg
	nd.parMu.Unlock()
	return fParityInstall, nil, nil
}

func encHostedGroup(e *wire.Enc, hg *hostedGroup) {
	e.I(hg.k)
	e.I(len(hg.shards))
	for i := range hg.snaps {
		e.I(hg.folded[i] + 1)
		encSnap(e, hg.snaps[i])
	}
	for _, s := range hg.shards {
		e.Words(s)
	}
}

func decHostedGroup(d *wire.Dec, words int) (*hostedGroup, error) {
	k := d.I()
	m := d.I()
	if d.Failed() || k < 1 || m != 1 {
		return nil, errBadFrame
	}
	rs, err := erasure.NewRS(k, 1)
	if err != nil {
		return nil, err
	}
	hg := &hostedGroup{k: k, rs: rs, snaps: make([]snap, k), folded: make([]int, k)}
	for i := 0; i < k; i++ {
		hg.folded[i] = d.I() - 1
		s, ok := decSnap(d)
		if !ok {
			return nil, errBadFrame
		}
		hg.snaps[i] = s
	}
	hg.shards = make([][]uint64, m)
	for i := range hg.shards {
		hg.shards[i] = d.Words()
		if len(hg.shards[i]) != words {
			return nil, fmt.Errorf("fabric: parity shard has %d words, window is %d", len(hg.shards[i]), words)
		}
	}
	if d.Failed() {
		return nil, errBadFrame
	}
	return hg, nil
}

// handleBaseFetch hands the last committed base and its counter snapshot
// to the crisis arbiter, under the checkpoint lock so the copy is
// consistent with the group parity.
func (nd *Node) handleBaseFetch() (byte, []byte, error) {
	nd.ckptMu.Lock()
	defer nd.ckptMu.Unlock()
	var e wire.Enc
	encSnap(&e, nd.snapSelf)
	e.Words(nd.base)
	return fBaseFetch, e.Bytes(), nil
}

// handleLogFetch hands everything this node logged by or about the
// victim: its own puts towards the victim (LP) and the gets the victim
// issued against this window (LG).
func (nd *Node) handleLogFetch(d *wire.Dec) (byte, []byte, error) {
	victim := d.I()
	if d.Failed() || victim < 0 || victim >= nd.n {
		return fLogFetch, nil, errBadFrame
	}
	nd.logMu.Lock()
	lp := nd.logs.CopyLP(victim)
	lg := nd.logs.CopyLG(victim)
	n := nd.logs.FlagN(victim)
	m := nd.logs.FlagM(victim)
	nd.logMu.Unlock()
	var e wire.Enc
	if n {
		e.B(1)
	} else {
		e.B(0)
	}
	if m {
		e.B(1)
	} else {
		e.B(0)
	}
	encRecordList(&e, lp)
	encRecordList(&e, lg)
	return fLogFetch, e.Bytes(), nil
}

// handleCrisisBegin quiesces this node for a recovery: the victim is
// condemned and the ack — which waits for any in-flight checkpoint fold
// to finish — promises the arbiter that parity equals the encoded
// committed bases until fCrisisEnd.
func (nd *Node) handleCrisisBegin(d *wire.Dec) (byte, []byte, error) {
	victim, inc := d.I(), d.I()
	if d.Failed() || victim < 0 || victim >= nd.n {
		return fCrisisBegin, nil, errBadFrame
	}
	nd.condemn(victim, inc, errors.New("crisis verdict from arbiter"))
	nd.ckptMu.Lock()
	nd.inCrisis = true
	nd.ckptMu.Unlock()
	return fCrisisBegin, nil, nil
}

// handleCrisisEnd applies the arbiter's post-crisis world and unparks
// checkpoints.
func (nd *Node) handleCrisisEnd(d *wire.Dec) {
	ms, ok := decMembers(d)
	if !ok {
		return
	}
	hs, ok := decHostings(d)
	if !ok {
		return
	}
	nd.mergeMembers(ms, hs)
	nd.ckptMu.Lock()
	was := nd.inCrisis
	nd.inCrisis = false
	nd.ckptMu.Unlock()
	nd.ckptCond.Broadcast()
	if was {
		nd.mmu.Lock()
		nd.recoveries++
		rec := nd.recoveries
		nd.mmu.Unlock()
		// Survivor-side crisis close: dump the flight ring so every rank's
		// timeline of the recovery lands on disk, not just the arbiter's.
		nd.dumpFlight(fmt.Sprintf("crisis%d", rec))
	}
	nd.mcond.Broadcast()
}

// sleepUnlessStopped is a stop-aware sleep for retry loops.
func (nd *Node) sleepUnlessStopped(dur time.Duration) {
	select {
	case <-nd.stop:
	case <-time.After(dur):
	}
}
