package fabric

import (
	"time"

	"repro/internal/ftrma"
	"repro/internal/rma"
	"repro/internal/transport"
	"repro/internal/transport/wire"
)

// Fabric frame types, 0x40–0x4F, disjoint from the coordinator protocol's
// 0x20–0x3A so a misdirected frame fails loudly instead of aliasing.
// docs/WIRE.md §5 is the normative payload spec; the enc/dec helpers in
// this file are the implementation of record.
const (
	// fJoin (call, joiner → seed or any live node): {addr}. The reply
	// carries a mode byte: jmRetry{delayMs}, jmRedirect{addr}, or
	// jmWorld{world, install?} — the world snapshot doubles as the
	// crisis install channel for a replacement rank.
	fJoin = 0x40
	// fHello (notify, first frame on a peer conn): {rank, incarnation}
	// attributes the connection so its death is charged to the right
	// member.
	fHello = 0x41
	// fGossip (notify): {members, hostings} anti-entropy broadcast.
	fGossip = 0x42
	// fBatch (call, source → target): one epoch close worth of puts and
	// gets: {src, inc, phase, puts{off, words}*, gets{off, n, localOff+1,
	// gc}*}; the reply concatenates the get data in order.
	fBatch = 0x43
	// fGsyncReady (notify): {rank, inc, watermark} — the sender finished
	// phase watermark-1 and committed its checkpoint.
	fGsyncReady = 0x44
	// fParityFold (call, member → group host): {rank, inc, group,
	// memberIdx, phase, snap{ec*, gc}, ranges{off, delta-words}*}. The
	// host folds the deltas into the group parity and stores the snap
	// atomically; a duplicate (same member, same phase) is acked without
	// re-applying, making fold retries after a connection loss safe.
	fParityFold = 0x45
	// fParityFetch (call, arbiter → group host): {group} → {k, m,
	// snaps k×{phase+1, ec*, gc}, shards m×words}.
	fParityFetch = 0x46
	// fParityInstall (call, arbiter → new group host): the payload of a
	// fParityFetch reply prefixed with {group, version}; installs a
	// rebuilt shard set.
	fParityInstall = 0x47
	// fBaseFetch (call, arbiter → member): {} → {phase+1, ec*, gc,
	// base-words}: the member's last committed base under the checkpoint
	// lock, so it is consistent with the group parity.
	fBaseFetch = 0x48
	// fLogFetch (call, arbiter → survivor): {victim} → {n, m, lp*, lg*}:
	// everything the survivor logged by or about the victim.
	fLogFetch = 0x49
	// fCrisisBegin (call, arbiter → survivor): {victim, inc}. The ack
	// means the survivor marked the victim dead and has no checkpoint
	// fold in flight; folds stay parked until fCrisisEnd.
	fCrisisBegin = 0x4A
	// fCrisisEnd (notify, arbiter → survivors): {members, hostings}
	// publishes the post-crisis world and unparks checkpoints.
	fCrisisEnd = 0x4C
	// fMembers (call, anyone → node): {} → {members, hostings} snapshot
	// (observability; the smoke tests collect through it).
	fMembers = 0x4D
	// fWindowFetch (call, anyone → node): {} → {window-words} snapshot
	// under the window lock (observability/collection).
	fWindowFetch = 0x4E
	// fShutdown (notify): orderly end of the run; AwaitShutdown returns.
	fShutdown = 0x4F
	// fCrisisFail (notify, arbiter → survivors): {msg}. The crisis is
	// unrecoverable (correlated loss, a second death mid-recovery);
	// survivors fail their run immediately instead of waiting forever at
	// the watermark barrier for a replacement that cannot come.
	fCrisisFail = 0x50
)

// fJoin reply modes.
const (
	jmRetry    = 0 // slot not ready (crisis in progress): {delayMs}
	jmRedirect = 1 // not the arbiter: {addr of current arbiter}
	jmWorld    = 2 // welcome: {world, install?}
)

// snap is a member's counter snapshot at its last committed checkpoint:
// the phase the base covers, the per-target epoch counters, and the get
// counter. It rides every fold so the host can reconstruct not just the
// victim's words but its position in the causal order.
type snap struct {
	phase int // -1 before the first checkpoint
	ec    []int
	gc    int
}

func encSnap(e *wire.Enc, s snap) {
	e.I(s.phase + 1)
	e.I(len(s.ec))
	for _, v := range s.ec {
		e.I(v)
	}
	e.I(s.gc)
}

func decSnap(d *wire.Dec) (snap, bool) {
	var s snap
	s.phase = d.I() - 1
	n := d.I()
	if d.Failed() || n < 0 || n > wire.MaxFrame/8 {
		return s, false
	}
	s.ec = make([]int, n)
	for i := range s.ec {
		s.ec[i] = d.I()
	}
	s.gc = d.I()
	return s, !d.Failed()
}

func encMembers(e *wire.Enc, ms []Member) {
	e.I(len(ms))
	for _, m := range ms {
		e.I(m.Rank)
		e.Str(m.Addr)
		e.I(m.Incarnation)
		if m.Alive {
			e.B(1)
		} else {
			e.B(0)
		}
		e.I(m.Watermark)
	}
}

func decMembers(d *wire.Dec) ([]Member, bool) {
	n := d.I()
	if d.Failed() || n < 0 || n > wire.MaxFrame/8 {
		return nil, false
	}
	ms := make([]Member, n)
	for i := range ms {
		ms[i].Rank = d.I()
		ms[i].Addr = d.Str()
		ms[i].Incarnation = d.I()
		ms[i].Alive = d.B() != 0
		ms[i].Watermark = d.I()
	}
	return ms, !d.Failed()
}

func encHostings(e *wire.Enc, hs []Hosting) {
	e.I(len(hs))
	for _, h := range hs {
		e.I(h.Group)
		e.I(h.Host+1) // -1 (no host electable) encodes as 0
		e.I(h.Version)
	}
}

func decHostings(d *wire.Dec) ([]Hosting, bool) {
	n := d.I()
	if d.Failed() || n < 0 || n > wire.MaxFrame/8 {
		return nil, false
	}
	hs := make([]Hosting, n)
	for i := range hs {
		hs[i].Group = d.I()
		hs[i].Host = d.I() - 1
		hs[i].Version = d.I()
	}
	return hs, !d.Failed()
}

// encRecord mirrors the coordinator protocol's record production
// (cluster/host.go) so the two runtimes stay wire-compatible at the
// record level; fabric keeps its own copy because the cluster package
// layers above fabric, not below it.
func encRecord(e *wire.Enc, r ftrma.LogRecord) {
	e.B(byte(r.Kind))
	e.I(r.Src)
	e.I(r.Trg)
	e.I(r.Off)
	e.I(r.LocalOff + 1) // -1 (private destination) encodes as 0
	e.B(byte(r.Op))
	if r.Combine {
		e.B(1)
	} else {
		e.B(0)
	}
	e.I(r.EC)
	e.I(r.GC)
	e.I(r.SC)
	e.I(r.GNC)
	e.Words(r.Data)
}

func encRecordList(e *wire.Enc, recs []ftrma.LogRecord) {
	e.I(len(recs))
	for _, r := range recs {
		encRecord(e, r)
	}
}

func decRecord(d *wire.Dec) (ftrma.LogRecord, bool) {
	var r ftrma.LogRecord
	r.Kind = ftrma.LogKind(d.B())
	r.Src = d.I()
	r.Trg = d.I()
	r.Off = d.I()
	r.LocalOff = d.I() - 1
	op := d.B()
	if !transport.ValidRed(op) {
		return r, false
	}
	r.Op = rma.ReduceOp(op)
	r.Combine = d.B() != 0
	r.EC = d.I()
	r.GC = d.I()
	r.SC = d.I()
	r.GNC = d.I()
	r.Data = d.Words()
	return r, !d.Failed()
}

func decRecordList(d *wire.Dec) ([]ftrma.LogRecord, bool) {
	count := d.I()
	if d.Failed() || count < 0 || count > wire.MaxFrame/16 {
		return nil, false
	}
	out := make([]ftrma.LogRecord, 0, count)
	for i := 0; i < count; i++ {
		rec, ok := decRecord(d)
		if !ok {
			return nil, false
		}
		out = append(out, rec)
	}
	return out, true
}

// world is the static shape of the run every join reply carries.
type world struct {
	rank        int
	n           int
	windowWords int
	groups      int
	tuning      Tuning
	meta        []byte
	members     []Member
	hostings    []Hosting
}

func encWorld(e *wire.Enc, w world) {
	e.I(w.rank)
	e.I(w.n)
	e.I(w.windowWords)
	e.I(w.groups)
	e.I(int(w.tuning.LeaseInterval))
	e.I(w.tuning.LeaseMiss)
	e.I(int(w.tuning.GossipInterval))
	e.Str(string(w.meta))
	encMembers(e, w.members)
	encHostings(e, w.hostings)
}

func decWorld(d *wire.Dec) (world, bool) {
	var w world
	w.rank = d.I()
	w.n = d.I()
	w.windowWords = d.I()
	w.groups = d.I()
	w.tuning.LeaseInterval = time.Duration(d.I())
	w.tuning.LeaseMiss = d.I()
	w.tuning.GossipInterval = time.Duration(d.I())
	w.meta = []byte(d.Str())
	var ok bool
	if w.members, ok = decMembers(d); !ok {
		return w, false
	}
	if w.hostings, ok = decHostings(d); !ok {
		return w, false
	}
	return w, !d.Failed()
}

// install is the state a replacement rank receives inside its join reply:
// the victim's reconstructed base, its committed counter snapshot, and
// the causally sorted records to replay on top.
type install struct {
	snap snap
	base []uint64
	puts []ftrma.LogRecord
	gets []ftrma.LogRecord
}

func encInstall(e *wire.Enc, in *install) {
	encSnap(e, in.snap)
	e.Words(in.base)
	encRecordList(e, in.puts)
	encRecordList(e, in.gets)
}

func decInstall(d *wire.Dec) (*install, bool) {
	var in install
	var ok bool
	if in.snap, ok = decSnap(d); !ok {
		return nil, false
	}
	in.base = d.Words()
	if in.puts, ok = decRecordList(d); !ok {
		return nil, false
	}
	if in.gets, ok = decRecordList(d); !ok {
		return nil, false
	}
	return &in, !d.Failed()
}

// groupMembers lists the ranks of group g under the fixed r mod groups
// placement, in memberIdx order.
func groupMembers(n, groups, g int) []int {
	var ms []int
	for r := g; r < n; r += groups {
		ms = append(ms, r)
	}
	return ms
}

// memberIndex is the inverse: rank r's shard slot within its group.
func memberIndex(r, groups int) int { return r / groups }
