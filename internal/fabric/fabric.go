// Package fabric is the symmetric, coordinatorless runtime of the
// cluster: every worker hosts its own rank's window, access logs, and an
// elected share of checkpoint parity, and the ranks speak the wire
// protocol directly to each other — epoch closes, gsync readies,
// checkpoint folds, membership gossip, and crisis recovery all flow
// peer-to-peer. The only asymmetric piece left is the bootstrap Seed, a
// pure join directory that hands each worker its rank and the initial
// membership table and is never contacted again (workers close their seed
// connection right after joining, so the steady-state put/get path has
// zero coordinator round trips by construction — the frame accounting in
// the cluster's coordinatorless smoke test asserts it).
//
// # Who hosts what
//
//   - Window: each rank's window lives in its own process. Remote puts
//     and gets arrive as fBatch frames (one per epoch close, the same
//     batching contract as the tcp transport).
//   - Access logs: each rank logs its own puts towards every target
//     (LP, source-side) and the gets peers issue against its window (LG,
//     target-side) in a local ftrma.LogHost. A rank's death therefore
//     loses none of the logs needed to replay it: they all live on
//     survivors.
//   - Checkpoint parity: ranks form Groups groups (rank r belongs to
//     group r mod Groups); each group's m=1 parity shard set is hosted
//     on a rank elected by ftrma.ElectParityHost, preferring hosts
//     outside the group so one failure never takes a member's base copy
//     down together with the parity guarding it. At every phase boundary
//     each rank diffs its window against its last committed base and
//     ships the (off, delta) ranges to its group's host in one
//     fParityFold frame; the host applies them with
//     erasure.UpdateParityWords (ftrma.FoldDelta) and records the
//     member's counter snapshot atomically with the fold, so
//     parity = encode(members' committed bases) holds at every instant
//     the checkpoint lock is free.
//
// # Membership, leases, gossip
//
// Liveness is lease-based: every peer connection carries wire heartbeats
// with a rolling read deadline of LeaseInterval × LeaseMiss, and a
// connection going down (reset, or lease expiry on a silent peer) marks
// the peer dead under the fail-stop model. Deaths, gsync watermarks, and
// the parity hosting table spread by gossip (fGossip) every
// GossipInterval; entries merge by incarnation (higher wins; within one
// incarnation a death verdict is sticky and watermarks are monotone).
//
// The gsync barrier itself is hub-free: a rank finishing phase p
// broadcasts fGsyncReady with watermark p+1 and passes the barrier when
// its local view shows every rank's watermark ≥ p+1. A dead rank's
// watermark freezes, parking survivors at most one phase ahead until the
// replacement climbs past them — nobody ever impersonates the victim.
//
// # Crisis
//
// The arbiter — the lowest-ranked survivor, recomputed from the local
// table so arbitration survives the arbiter's own death — drives
// recovery: quiesce checkpoint folds (fCrisisBegin, acked by each
// survivor once no fold is in flight; no new fold can start because the
// next one needs a barrier pass that the victim's frozen watermark
// blocks), gather the victim's logs from every survivor (fLogFetch),
// re-elect and rebuild any parity the victim hosted (fBaseFetch +
// fParityInstall), reconstruct the victim's base from its group's parity
// and the surviving members' bases (erasure.ReconstructWords), and hand
// the reconstructed state — base, counter snapshot, and the causally
// sorted replay records with GNC ≥ the committed phase — to the
// replacement when it joins (the fJoin reply doubles as the install
// frame). Survivors' parked flushes towards the victim redeliver to the
// replacement once it gossips alive; the disjoint write-once causal
// workload makes redelivery and re-execution idempotent.
//
// The fabric is deliberately scoped to the paper's cheap path: causal
// (conflict-free) workloads, coordinated checkpoints at every gsync, one
// failure at a time. Combining accumulates, structure locks, and demand
// checkpoints stay on the legacy coordinator runtime; a second failure
// mid-crisis (or an arbiter death mid-crisis) is reported as an error
// rather than recovered.
//
// docs/WIRE.md §5 is the normative spec of the fabric frames (0x40–0x4F);
// docs/ARCHITECTURE.md draws the hub-free topology.
package fabric

import (
	"fmt"
	"time"

	"repro/internal/rma"
)

// Member is one rank's membership entry as this node sees it.
type Member struct {
	// Rank is the slot; Addr the address its fabric listener is dialed
	// at (dialer-specific syntax, see transport.Dialer).
	Rank int
	Addr string
	// Incarnation counts replacements of the slot: the seed assigns 0,
	// every crisis install bumps it. Higher incarnations win merges.
	Incarnation int
	// Alive is the fail-stop verdict. Within one incarnation a death is
	// sticky: only a new incarnation revives the slot.
	Alive bool
	// Watermark is the rank's gsync progress: the number of phases it
	// has completed and committed a checkpoint for. Monotone within an
	// incarnation.
	Watermark int
}

// Hosting is one entry of the parity hosting table: group's shards live
// at Host. The table is explicit state — gossiped, versioned, and
// reassigned only by a crisis arbiter — never recomputed from the live
// set, so hosting cannot silently move without a shard handoff.
type Hosting struct {
	Group   int
	Host    int
	Version int
}

// Tuning groups the fabric's membership timing knobs: the lease that
// detects silent peers and the gossip cadence that spreads verdicts.
// cluster.Config.Fabric carries one of these; the seed distributes it so
// every rank runs identical timings.
type Tuning struct {
	// LeaseInterval is the heartbeat period on peer connections; with
	// LeaseMiss it sets the failure detector's patience (a peer silent
	// for LeaseInterval × LeaseMiss is declared dead). Default 50ms.
	LeaseInterval time.Duration
	// LeaseMiss is how many silent lease intervals condemn a peer.
	// Default 10.
	LeaseMiss int
	// GossipInterval is the membership gossip period. Default 25ms.
	GossipInterval time.Duration
}

// WithDefaults resolves zero values to the defaults.
func (t Tuning) WithDefaults() Tuning {
	if t.LeaseInterval == 0 {
		t.LeaseInterval = 50 * time.Millisecond
	}
	if t.LeaseMiss == 0 {
		t.LeaseMiss = 10
	}
	if t.GossipInterval == 0 {
		t.GossipInterval = 25 * time.Millisecond
	}
	return t
}

// Validate rejects nonsensical tunings with descriptive errors.
func (t Tuning) Validate() error {
	if t.LeaseInterval < 0 {
		return fmt.Errorf("fabric: negative Fabric.LeaseInterval %v", t.LeaseInterval)
	}
	if t.LeaseMiss < 0 {
		return fmt.Errorf("fabric: negative Fabric.LeaseMiss %d", t.LeaseMiss)
	}
	if t.GossipInterval < 0 {
		return fmt.Errorf("fabric: negative Fabric.GossipInterval %v", t.GossipInterval)
	}
	return nil
}

// Membership is a node's view of the world: who holds each rank, whether
// they are alive, and how far they have progressed.
type Membership interface {
	// Self returns this node's own entry.
	Self() Member
	// Members returns a snapshot of the full table, indexed by rank.
	Members() []Member
	// Hostings returns a snapshot of the parity hosting table.
	Hostings() []Hosting
}

// Epoch is the peer-to-peer bulk-synchronous surface: the phase cursor
// and the gsync that closes it (checkpoint fold, ready broadcast,
// watermark barrier, log trim).
type Epoch interface {
	// Phase returns the phase the node executes next (its watermark).
	Phase() int
	// Sync closes the current phase. It is rma.API's Gsync with an error
	// return: crisis waits happen inside, and unrecoverable states
	// (double failure) surface here instead of panicking.
	Sync() error
}

// Crisis is the recovery surface of a node.
type Crisis interface {
	// InCrisis reports whether a recovery is pending somewhere in the
	// world (checkpoint folds are parked while it is).
	InCrisis() bool
	// Recoveries counts the crises this node has observed complete.
	Recoveries() int
}

// Fabric is the full runtime surface a worker programs against: the rma
// API for its application work plus the fabric's membership, epoch, and
// crisis views. *Node is the implementation.
type Fabric interface {
	rma.API
	Membership
	Epoch
	Crisis
	// Meta returns the opaque workload blob the seed distributed.
	Meta() []byte
	// Addr returns the address this node advertises.
	Addr() string
	// AwaitShutdown blocks until a peer sends fShutdown or the node is
	// closed.
	AwaitShutdown()
	// Close tears the node down (without marking it failed to peers
	// beyond the fail-stop signal of its connections dropping).
	Close() error
}
