package mlog

import (
	"testing"

	"repro/internal/rma"
)

func newSys(t *testing.T, n, words int, cfg Config) (*rma.World, *System) {
	t.Helper()
	w := rma.NewWorld(rma.Config{N: n, WindowWords: words})
	s, err := NewSystem(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w, s
}

func TestConfigRejected(t *testing.T) {
	w := rma.NewWorld(rma.Config{N: 2, WindowWords: 4})
	if _, err := NewSystem(w, Config{RanksPerLogger: 0}); err == nil {
		t.Error("accepted zero ranks per logger")
	}
}

func TestPutsRecorded(t *testing.T) {
	w, s := newSys(t, 2, 8, Config{RanksPerLogger: 2})
	w.Run(func(r int) {
		if r == 0 {
			p := s.Process(0)
			p.Put(1, 0, []uint64{1, 2})
			p.PutValue(1, 2, 3)
			p.Flush(1)
		}
	})
	recs := s.Records(0)
	if len(recs) != 2 {
		t.Fatalf("%d records, want 2", len(recs))
	}
	if recs[0].Kind != "put" || len(recs[0].Data) != 2 {
		t.Errorf("record 0 = %+v", recs[0])
	}
	// Semantics unchanged: data arrived.
	if got := w.Proc(1).Local()[2]; got != 3 {
		t.Errorf("window = %d, want 3", got)
	}
}

func TestGetLoggingToggle(t *testing.T) {
	for _, logGets := range []bool{false, true} {
		w, s := newSys(t, 2, 8, Config{RanksPerLogger: 2, LogGets: logGets})
		w.Run(func(r int) {
			if r == 0 {
				p := s.Process(0)
				p.GetBlocking(1, 0, 2)
			}
		})
		want := 0
		if logGets {
			want = 1
		}
		if got := s.TotalRecords(); got != want {
			t.Errorf("logGets=%v: %d records, want %d", logGets, got, want)
		}
	}
}

func TestAtomicsRecorded(t *testing.T) {
	w, s := newSys(t, 2, 8, Config{RanksPerLogger: 1, LogGets: true})
	w.Run(func(r int) {
		if r == 0 {
			p := s.Process(0)
			p.CompareAndSwap(1, 0, 0, 5)
			p.FetchAndOp(1, 0, 2, rma.OpSum)
		}
	})
	// Each atomic: one put-side and one get-side record.
	if got := s.TotalRecords(); got != 4 {
		t.Errorf("%d records, want 4", got)
	}
}

func TestLoggingCostsTime(t *testing.T) {
	runPut := func(logged bool) float64 {
		w := rma.NewWorld(rma.Config{N: 2, WindowWords: 1 << 12})
		var api rma.API = w.Proc(0)
		if logged {
			s, err := NewSystem(w, Config{RanksPerLogger: 2})
			if err != nil {
				t.Fatal(err)
			}
			api = s.Process(0)
		}
		w.Run(func(r int) {
			if r == 0 {
				for i := 0; i < 50; i++ {
					api.Put(1, 0, make([]uint64, 256))
					api.Flush(1)
				}
			}
		})
		return w.Proc(0).Now()
	}
	plain := runPut(false)
	logged := runPut(true)
	if logged <= plain {
		t.Errorf("ML logging added no cost: %g vs %g", logged, plain)
	}
}

func TestLoggerSharding(t *testing.T) {
	w, s := newSys(t, 4, 8, Config{RanksPerLogger: 2})
	if len(s.loggers) != 2 {
		t.Fatalf("%d loggers, want 2", len(s.loggers))
	}
	w.Run(func(r int) {
		p := s.Process(r)
		p.PutValue((r+1)%4, 0, 1)
		p.Flush((r + 1) % 4)
	})
	// Ranks 0,1 share logger 0; ranks 2,3 share logger 1.
	l0, l1 := 0, 0
	for _, rec := range append(s.Records(0), s.Records(1)...) {
		if rec.Src/2 == 0 {
			l0++
		}
	}
	for _, rec := range append(s.Records(2), s.Records(3)...) {
		if rec.Src/2 == 1 {
			l1++
		}
	}
	if l0 != 2 || l1 != 2 {
		t.Errorf("sharding counts = %d, %d; want 2, 2", l0, l1)
	}
}
