// Package mlog is the message-logging baseline of §7.2 ("to compare the
// logging overheads in MP and RMA we also developed a simple message
// logging scheme"), modeled on sender-based logging with dedicated logger
// processes (Riesen et al.): every access is recorded at a logger process
// via explicit protocol messages — the data is shipped to the logger, and
// control messages flow between the participants — rather than through
// ftRMA's one-sided in-memory log structures. That per-access inter-process
// protocol interaction is exactly the overhead ftRMA avoids (≈9% slower on
// the NAS FFT, Fig. 11b).
package mlog

import (
	"fmt"
	"sync"

	"repro/internal/rma"
	"repro/internal/sim"
)

// Config tunes the baseline.
type Config struct {
	// RanksPerLogger maps this many application ranks to one dedicated
	// logger process (modeled as passive storage with its own bandwidth).
	RanksPerLogger int
	// LogGets mirrors ftRMA's f-puts vs f-puts-gets distinction.
	LogGets bool
}

// Record is one logged access at a logger process.
type Record struct {
	Kind string // "put", "get", "atomic"
	Src  int
	Trg  int
	Off  int
	Data []uint64
}

// logger is a dedicated logging process: serialized storage, like the
// paper's "additional processes to store protocol-specific access logs".
type logger struct {
	res *sim.SharedResource
	mu  sync.Mutex
	log []Record
}

// System is the per-world message-logging state.
type System struct {
	world   *rma.World
	cfg     Config
	loggers []*logger
	procs   []*Process
}

// NewSystem attaches the baseline to a world.
func NewSystem(w *rma.World, cfg Config) (*System, error) {
	if cfg.RanksPerLogger < 1 {
		return nil, fmt.Errorf("mlog: ranks per logger = %d", cfg.RanksPerLogger)
	}
	n := (w.N() + cfg.RanksPerLogger - 1) / cfg.RanksPerLogger
	s := &System{world: w, cfg: cfg}
	s.loggers = make([]*logger, n)
	for i := range s.loggers {
		// Determinant streams to a logger are pipelined: bandwidth is
		// shared, but no per-record latency accrues at the logger (the
		// sender already pays the injection latency).
		s.loggers[i] = &logger{res: sim.NewSharedResource(w.Params().NetBW, 0)}
	}
	s.procs = make([]*Process, w.N())
	for r := 0; r < w.N(); r++ {
		s.procs[r] = &Process{Proc: w.Proc(r), sys: s}
	}
	return s, nil
}

// Process returns the wrapper of a rank.
func (s *System) Process(r int) *Process { return s.procs[r] }

// loggerOf returns the logger serving a rank.
func (s *System) loggerOf(r int) *logger { return s.loggers[r/s.cfg.RanksPerLogger] }

// Records returns all records captured for the given source rank.
func (s *System) Records(src int) []Record {
	var out []Record
	for _, lg := range s.loggers {
		lg.mu.Lock()
		for _, rec := range lg.log {
			if rec.Src == src {
				out = append(out, rec)
			}
		}
		lg.mu.Unlock()
	}
	return out
}

// TotalRecords counts all captured records.
func (s *System) TotalRecords() int {
	n := 0
	for _, lg := range s.loggers {
		lg.mu.Lock()
		n += len(lg.log)
		lg.mu.Unlock()
	}
	return n
}

// Process wraps an rma.Proc with per-access logger interaction.
type Process struct {
	*rma.Proc
	sys *System
}

var _ rma.API = (*Process)(nil)

// shipToLogger charges the protocol interaction of recording an access:
// the access *data* stays at the sender's (or receiver's) side — a local
// copy — while the protocol-specific record (the determinant) travels to
// the dedicated logger process, as in the sender-based scheme the baseline
// models. The logger's inbound link serializes the records of the ranks it
// serves.
func (p *Process) shipToLogger(rec Record) {
	params := p.sys.world.Params()
	lg := p.sys.loggerOf(p.Rank())
	// Local copy of the payload at the logging side.
	p.Proc.AdvanceTime(params.CopyTime(8 * len(rec.Data)))
	// Determinant to the logger plus acknowledgement.
	const determinantBytes = 64
	p.Proc.AdvanceTime(params.InjectTime(determinantBytes) + params.NetLatency)
	end := lg.res.Transfer(p.Now(), determinantBytes)
	p.Proc.AdvanceTo(end)
	lg.mu.Lock()
	lg.log = append(lg.log, rec)
	lg.mu.Unlock()
}

// Put logs at the sender's logger, then issues.
func (p *Process) Put(target, off int, data []uint64) {
	p.shipToLogger(Record{Kind: "put", Src: p.Rank(), Trg: target, Off: off,
		Data: append([]uint64(nil), data...)})
	p.Proc.Put(target, off, data)
}

// PutValue is a single-word Put.
func (p *Process) PutValue(target, off int, v uint64) {
	p.Put(target, off, []uint64{v})
}

// Accumulate logs and issues a combining put.
func (p *Process) Accumulate(target, off int, data []uint64, op rma.ReduceOp) {
	p.shipToLogger(Record{Kind: "put", Src: p.Rank(), Trg: target, Off: off,
		Data: append([]uint64(nil), data...)})
	p.Proc.Accumulate(target, off, data, op)
}

// Get issues and, if get logging is on, records at the receiver's logger
// on the epoch close (here: charged immediately with an extra control
// exchange, the receiver-side logging cost of the MP scheme).
func (p *Process) Get(target, off, n int) []uint64 {
	dest := p.Proc.Get(target, off, n)
	p.logGet(target, off, n)
	return dest
}

// GetInto issues into the window and records like Get.
func (p *Process) GetInto(target, off, n, localOff int) []uint64 {
	dest := p.Proc.GetInto(target, off, n, localOff)
	p.logGet(target, off, n)
	return dest
}

// GetCopy issues the non-aliasing window get and records like Get.
func (p *Process) GetCopy(target, off, n, localOff int) []uint64 {
	dest := p.Proc.GetCopy(target, off, n, localOff)
	p.logGet(target, off, n)
	return dest
}

// GetBlocking gets and closes the epoch.
func (p *Process) GetBlocking(target, off, n int) []uint64 {
	dest := p.Get(target, off, n)
	p.Proc.Flush(target)
	return dest
}

func (p *Process) logGet(target, off, n int) {
	if !p.sys.cfg.LogGets {
		return
	}
	// Receiver-based logging needs the remote side's participation before
	// the record can be shipped (one extra round trip on top of the logger
	// transfer) — the per-access protocol interaction ftRMA's one-sided
	// append avoids (§7.2.2).
	p.Proc.AdvanceTime(2 * p.sys.world.Params().NetLatency)
	p.shipToLogger(Record{Kind: "get", Src: p.Rank(), Trg: target, Off: off,
		Data: make([]uint64, n)})
}

// CompareAndSwap logs the atomic as a put and a get.
func (p *Process) CompareAndSwap(target, off int, old, new uint64) uint64 {
	p.shipToLogger(Record{Kind: "atomic", Src: p.Rank(), Trg: target, Off: off,
		Data: []uint64{new}})
	prev := p.Proc.CompareAndSwap(target, off, old, new)
	p.logGet(target, off, 1)
	return prev
}

// GetAccumulate logs the vector atomic as a put and a get.
func (p *Process) GetAccumulate(target, off int, data []uint64, op rma.ReduceOp) []uint64 {
	p.shipToLogger(Record{Kind: "atomic", Src: p.Rank(), Trg: target, Off: off,
		Data: append([]uint64(nil), data...)})
	prev := p.Proc.GetAccumulate(target, off, data, op)
	p.logGet(target, off, len(data))
	return prev
}

// FetchAndOp logs the atomic as a put and a get.
func (p *Process) FetchAndOp(target, off int, operand uint64, op rma.ReduceOp) uint64 {
	p.shipToLogger(Record{Kind: "atomic", Src: p.Rank(), Trg: target, Off: off,
		Data: []uint64{operand}})
	prev := p.Proc.FetchAndOp(target, off, operand, op)
	p.logGet(target, off, 1)
	return prev
}
