package machine

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTSUBAME2Valid(t *testing.T) {
	f := TSUBAME2()
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if f.Levels() != 4 {
		t.Fatalf("levels = %d, want 4", f.Levels())
	}
	if f.Count(1) != 1408 || f.Count(4) != 44 {
		t.Fatalf("counts = %v", f.Counts)
	}
	if f.LevelIndex("switches") != 3 {
		t.Fatalf("LevelIndex(switches) = %d, want 3", f.LevelIndex("switches"))
	}
	if f.LevelIndex("gpus") != 0 {
		t.Fatal("LevelIndex of unknown level should be 0")
	}
}

func TestFDHValidateRejectsBad(t *testing.T) {
	cases := []FDH{
		{},
		{LevelNames: []string{"a"}, Counts: []int{0}},
		{LevelNames: []string{"a", "b"}, Counts: []int{2, 4}}, // increasing
		{LevelNames: []string{"a"}, Counts: []int{1, 2}},      // mismatched
	}
	for i, f := range cases {
		if err := f.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid FDH %+v", i, f)
		}
	}
}

func TestAncestorNesting(t *testing.T) {
	f := TSUBAME2()
	// Node 0 is in the first element of every level.
	for j := 1; j <= f.Levels(); j++ {
		if got := f.Ancestor(0, j); got != 0 {
			t.Errorf("Ancestor(0,%d) = %d, want 0", j, got)
		}
	}
	// The last node is in the last element of every level.
	last := f.Count(1) - 1
	for j := 1; j <= f.Levels(); j++ {
		if got := f.Ancestor(last, j); got != f.Count(j)-1 {
			t.Errorf("Ancestor(%d,%d) = %d, want %d", last, j, got, f.Count(j)-1)
		}
	}
	// Nodes within one rack share all coarser ancestors: 1408/44 = 32
	// nodes per rack.
	if f.Ancestor(0, 4) != f.Ancestor(31, 4) {
		t.Error("nodes 0 and 31 should share a rack")
	}
	if f.Ancestor(31, 4) == f.Ancestor(32, 4) {
		t.Error("nodes 31 and 32 should be in different racks")
	}
}

func TestAncestorMonotone(t *testing.T) {
	// Property: the ancestor function is monotone in the node index, and
	// distinct coarse ancestors imply distinct fine ancestors.
	f := TSUBAME2()
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(1))}
	prop := func(a, b uint16) bool {
		na := int(a) % f.Count(1)
		nb := int(b) % f.Count(1)
		if na > nb {
			na, nb = nb, na
		}
		for j := 1; j <= f.Levels(); j++ {
			if f.Ancestor(na, j) > f.Ancestor(nb, j) {
				return false
			}
		}
		// Tree nesting: same node => same rack; different racks => different nodes.
		if na != nb && f.Ancestor(na, 4) != f.Ancestor(nb, 4) && na == nb {
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestGrouping(t *testing.T) {
	g, err := NewGrouping(16, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.TotalRanks() != 20 || g.NumChecksum() != 4 {
		t.Fatalf("totals wrong: %+v", g)
	}
	if g.GroupSize() != 5 {
		t.Fatalf("|G| = %d, want 5", g.GroupSize())
	}
	// Round-robin compute assignment.
	if g.GroupOf(0) != 0 || g.GroupOf(5) != 1 || g.GroupOf(15) != 3 {
		t.Fatal("round-robin group assignment broken")
	}
	// Checksum ranks.
	if !g.IsChecksum(16) || g.IsChecksum(15) {
		t.Fatal("IsChecksum wrong")
	}
	if g.GroupOf(17) != 1 {
		t.Fatalf("GroupOf(17) = %d, want 1", g.GroupOf(17))
	}
	ms := g.Members(2)
	want := []int{2, 6, 10, 14, 18}
	if len(ms) != len(want) {
		t.Fatalf("Members(2) = %v", ms)
	}
	for i := range ms {
		if ms[i] != want[i] {
			t.Fatalf("Members(2) = %v, want %v", ms, want)
		}
	}
}

func TestGroupingRejectsBad(t *testing.T) {
	if _, err := NewGrouping(0, 1, 1); err == nil {
		t.Error("accepted zero compute processes")
	}
	if _, err := NewGrouping(4, 8, 1); err == nil {
		t.Error("accepted more groups than processes")
	}
	if _, err := NewGrouping(4, 2, -1); err == nil {
		t.Error("accepted negative m")
	}
}

func TestGroupingPartition(t *testing.T) {
	// Property: groups partition the rank space.
	prop := func(nc, ng uint8) bool {
		numCompute := int(nc)%200 + 1
		numGroups := int(ng)%numCompute + 1
		g, err := NewGrouping(numCompute, numGroups, 1)
		if err != nil {
			return false
		}
		seen := make(map[int]bool)
		for grp := 0; grp < g.NumGroups; grp++ {
			for _, r := range g.Members(grp) {
				if seen[r] || g.GroupOf(r) != grp {
					return false
				}
				seen[r] = true
			}
		}
		return len(seen) == g.TotalRanks()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBlockPlacement(t *testing.T) {
	f := TSUBAME2()
	pl, err := BlockPlacement(f, 64, 32)
	if err != nil {
		t.Fatal(err)
	}
	if pl.NodeOf[0] != 0 || pl.NodeOf[31] != 0 || pl.NodeOf[32] != 1 {
		t.Fatalf("block placement wrong: %v", pl.NodeOf[:33])
	}
	if _, err := BlockPlacement(f, 1408*32+1, 32); err == nil {
		t.Error("accepted more ranks than the machine holds")
	}
	if _, err := BlockPlacement(f, 4, 0); err == nil {
		t.Error("accepted zero cores per node")
	}
}

func TestTAwarePlacementSatisfiesEq6(t *testing.T) {
	f := TSUBAME2()
	g, err := NewGrouping(4000, 200, 1) // |G| = 21
	if err != nil {
		t.Fatal(err)
	}
	for level := 1; level <= f.Levels(); level++ {
		pl, err := TAwarePlacement(f, g, level)
		if err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		if err := CheckTAware(pl, g, level); err != nil {
			t.Errorf("level %d: Eq. 6 violated: %v", level, err)
		}
	}
}

func TestTAwarePlacementInfeasible(t *testing.T) {
	f := TSUBAME2()
	// 40 groups of 4000 CMs: |G| = 101 > 44 racks.
	g, err := NewGrouping(4000, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TAwarePlacement(f, g, 4); err == nil {
		t.Error("accepted unsatisfiable rack-level t-awareness")
	}
}

func TestTAwareProperty(t *testing.T) {
	// Property: for random feasible configurations, the constructed
	// placement always satisfies Eq. 6 at its level.
	f := TSUBAME2()
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(7))}
	prop := func(ncRaw, ngRaw uint16, lvlRaw uint8) bool {
		numCompute := int(ncRaw)%2000 + 1
		numGroups := int(ngRaw)%numCompute + 1
		level := int(lvlRaw)%f.Levels() + 1
		g, err := NewGrouping(numCompute, numGroups, 1)
		if err != nil {
			return true // skip invalid configs
		}
		pl, err := TAwarePlacement(f, g, level)
		if err != nil {
			return g.GroupSize() > f.Count(level) // only legal failure mode
		}
		return CheckTAware(pl, g, level) == nil
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestCheckTAwareDetectsViolation(t *testing.T) {
	f := TSUBAME2()
	g, err := NewGrouping(8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// All ranks on node 0: every group trivially violates Eq. 6.
	pl := Placement{FDH: f, NodeOf: make([]int, g.TotalRanks())}
	if err := CheckTAware(pl, g, 1); err == nil {
		t.Error("violation not detected")
	}
}
