// Package machine models the hardware a distributed RMA program runs on:
// the failure-domain hierarchy (FDH) of §5 of the paper, placement of
// processes onto that hierarchy (the map M), topology-aware (t-aware)
// placement per Eq. 6, and process-group construction with checksum ranks.
package machine

import (
	"errors"
	"fmt"
)

// FDH is a failure-domain hierarchy. Level 1 is the smallest failure domain
// (a node, per the paper: single cores do not fail alone in the TSUBAME2.0
// history); higher levels are progressively larger domains. Counts[j-1] is
// H_j, the number of elements at level j. Nesting is uniform and contiguous:
// each level-j element contains H_1/H_j consecutive nodes.
type FDH struct {
	LevelNames []string
	Counts     []int
}

// Levels returns h, the number of hierarchy levels.
func (f FDH) Levels() int { return len(f.Counts) }

// Count returns H_j for 1-based level j.
func (f FDH) Count(j int) int {
	if j < 1 || j > len(f.Counts) {
		panic(fmt.Sprintf("machine: level %d out of range 1..%d", j, len(f.Counts)))
	}
	return f.Counts[j-1]
}

// LevelName returns the name of 1-based level j.
func (f FDH) LevelName(j int) string {
	if j < 1 || j > len(f.LevelNames) {
		panic(fmt.Sprintf("machine: level %d out of range 1..%d", j, len(f.LevelNames)))
	}
	return f.LevelNames[j-1]
}

// LevelIndex returns the 1-based level with the given name, or 0 if absent.
func (f FDH) LevelIndex(name string) int {
	for i, n := range f.LevelNames {
		if n == name {
			return i + 1
		}
	}
	return 0
}

// Ancestor returns the index of the level-j element that contains the given
// level-1 element (node). Nesting is uniform: node n belongs to element
// n*H_j/H_1 at level j.
func (f FDH) Ancestor(node, j int) int {
	h1 := f.Counts[0]
	hj := f.Count(j)
	if node < 0 || node >= h1 {
		panic(fmt.Sprintf("machine: node %d out of range 0..%d", node, h1-1))
	}
	return node * hj / h1
}

// Validate checks structural invariants: at least one level, counts
// non-increasing with level (larger domains are fewer), all positive,
// and names matching counts.
func (f FDH) Validate() error {
	if len(f.Counts) == 0 {
		return errors.New("machine: FDH has no levels")
	}
	if len(f.LevelNames) != len(f.Counts) {
		return fmt.Errorf("machine: %d level names but %d counts", len(f.LevelNames), len(f.Counts))
	}
	for j, c := range f.Counts {
		if c <= 0 {
			return fmt.Errorf("machine: level %d has non-positive count %d", j+1, c)
		}
		if j > 0 && c > f.Counts[j-1] {
			return fmt.Errorf("machine: level %d count %d exceeds level %d count %d",
				j+1, c, j, f.Counts[j-1])
		}
	}
	return nil
}

// TSUBAME2 returns the four-level FDH of the TSUBAME2.0 supercomputer used
// in §7.1: nodes, power supply units, edge switches, and racks. The element
// counts follow the machine's public configuration (1408 thin nodes, ~32
// nodes per rack); PSU and switch counts are chosen so that each rack holds
// four PSUs and two edge switches, matching the published enclosure layout.
func TSUBAME2() FDH {
	return FDH{
		LevelNames: []string{"nodes", "PSUs", "switches", "racks"},
		Counts:     []int{1408, 176, 88, 44},
	}
}

// CrayXE6 returns a small two-level FDH (nodes, cabinets) approximating the
// Monte Rosa system used for the performance experiments.
func CrayXE6(nodes int) FDH {
	cab := nodes / 96
	if cab < 1 {
		cab = 1
	}
	return FDH{
		LevelNames: []string{"nodes", "cabinets"},
		Counts:     []int{nodes, cab},
	}
}
