package machine

import (
	"errors"
	"fmt"
)

// Grouping splits compute processes (CMs) into g equally sized groups and
// attaches m checksum processes (CHs) to each group, as in §5 and §6 of the
// paper. Compute ranks are 0..NumCompute-1 and are assigned to groups round
// robin; checksum ranks follow at NumCompute..NumCompute+NumGroups*M-1.
type Grouping struct {
	NumCompute int
	NumGroups  int
	M          int
}

// NewGrouping validates and constructs a grouping.
func NewGrouping(numCompute, numGroups, m int) (Grouping, error) {
	switch {
	case numCompute <= 0:
		return Grouping{}, errors.New("machine: no compute processes")
	case numGroups <= 0:
		return Grouping{}, errors.New("machine: no groups")
	case numGroups > numCompute:
		return Grouping{}, fmt.Errorf("machine: %d groups for %d compute processes", numGroups, numCompute)
	case m < 0:
		return Grouping{}, errors.New("machine: negative checksum count")
	}
	return Grouping{NumCompute: numCompute, NumGroups: numGroups, M: m}, nil
}

// TotalRanks returns the total number of processes, CMs plus CHs.
func (g Grouping) TotalRanks() int { return g.NumCompute + g.NumGroups*g.M }

// NumChecksum returns the total number of checksum processes |CH|.
func (g Grouping) NumChecksum() int { return g.NumGroups * g.M }

// GroupSize returns |G| = |P|/g + m, the paper's group size (compute members
// plus checksum members). Uses ceiling division for uneven splits.
func (g Grouping) GroupSize() int {
	return (g.NumCompute+g.NumGroups-1)/g.NumGroups + g.M
}

// IsChecksum reports whether rank is a checksum process.
func (g Grouping) IsChecksum(rank int) bool {
	return rank >= g.NumCompute && rank < g.TotalRanks()
}

// GroupOf returns the group index of a rank (compute or checksum).
func (g Grouping) GroupOf(rank int) int {
	if rank < 0 || rank >= g.TotalRanks() {
		panic(fmt.Sprintf("machine: rank %d out of range 0..%d", rank, g.TotalRanks()-1))
	}
	if g.IsChecksum(rank) {
		return (rank - g.NumCompute) / g.M
	}
	return rank % g.NumGroups
}

// ChecksumRanks returns the checksum ranks of the given group.
func (g Grouping) ChecksumRanks(group int) []int {
	out := make([]int, g.M)
	for k := 0; k < g.M; k++ {
		out[k] = g.NumCompute + group*g.M + k
	}
	return out
}

// ComputeMembers returns the compute ranks of the given group.
func (g Grouping) ComputeMembers(group int) []int {
	var out []int
	for r := group; r < g.NumCompute; r += g.NumGroups {
		out = append(out, r)
	}
	return out
}

// Members returns all ranks of a group: compute members then checksum ranks.
func (g Grouping) Members(group int) []int {
	return append(g.ComputeMembers(group), g.ChecksumRanks(group)...)
}

// Placement maps every rank to a node of an FDH; M(p,k) follows from the
// FDH's uniform nesting. It corresponds to the map M of Eq. 5.
type Placement struct {
	FDH    FDH
	NodeOf []int
	// Level is the t-awareness level this placement was built for (0 when
	// the placement is topology-oblivious).
	Level int
}

// M returns the index of the failure-domain element at level k on which
// rank p runs — the paper's M(p, k).
func (pl Placement) M(p, k int) int {
	return pl.FDH.Ancestor(pl.NodeOf[p], k)
}

// BlockPlacement packs ranks onto nodes contiguously, coresPerNode ranks per
// node, with no topology awareness (the "no-topo" policy of Fig. 10c).
func BlockPlacement(fdh FDH, ranks, coresPerNode int) (Placement, error) {
	if coresPerNode <= 0 {
		return Placement{}, errors.New("machine: non-positive cores per node")
	}
	nodesNeeded := (ranks + coresPerNode - 1) / coresPerNode
	if nodesNeeded > fdh.Count(1) {
		return Placement{}, fmt.Errorf("machine: need %d nodes, FDH has %d", nodesNeeded, fdh.Count(1))
	}
	nodeOf := make([]int, ranks)
	for r := range nodeOf {
		nodeOf[r] = r / coresPerNode
	}
	return Placement{FDH: fdh, NodeOf: nodeOf}, nil
}

// TAwarePlacement distributes the ranks of each group across distinct
// level-n failure-domain elements, satisfying Eq. 6 for m=1 (no two members
// of the same group share an element at any level k <= n). Member j of group
// i is placed on level-n element (i+j) mod H_n; within the element, ranks
// spread across its nodes round robin.
//
// It fails when a group has more members than there are level-n elements,
// in which case Eq. 6 is unsatisfiable.
func TAwarePlacement(fdh FDH, g Grouping, level int) (Placement, error) {
	if level < 1 || level > fdh.Levels() {
		return Placement{}, fmt.Errorf("machine: t-awareness level %d out of range 1..%d", level, fdh.Levels())
	}
	hn := fdh.Count(level)
	if g.GroupSize() > hn {
		return Placement{}, fmt.Errorf("machine: group size %d exceeds %d %s; Eq. 6 unsatisfiable",
			g.GroupSize(), hn, fdh.LevelName(level))
	}
	nodesPerElem := fdh.Count(1) / hn
	if nodesPerElem < 1 {
		nodesPerElem = 1
	}
	nodeOf := make([]int, g.TotalRanks())
	// next[e] counts ranks already placed on element e, to spread within it.
	next := make([]int, hn)
	place := func(rank, group, member int) {
		e := (group + member) % hn
		node := e*nodesPerElem + next[e]%nodesPerElem
		next[e]++
		nodeOf[rank] = node
	}
	for grp := 0; grp < g.NumGroups; grp++ {
		member := 0
		for _, r := range g.ComputeMembers(grp) {
			place(r, grp, member)
			member++
		}
		for _, r := range g.ChecksumRanks(grp) {
			place(r, grp, member)
			member++
		}
	}
	return Placement{FDH: fdh, NodeOf: nodeOf, Level: level}, nil
}

// CheckTAware verifies Eq. 6 for m=1: within every group, no two members map
// to the same failure-domain element at any level k <= n. It returns nil if
// the invariant holds.
func CheckTAware(pl Placement, g Grouping, level int) error {
	for grp := 0; grp < g.NumGroups; grp++ {
		members := g.Members(grp)
		for k := 1; k <= level; k++ {
			seen := make(map[int]int, len(members))
			for _, r := range members {
				e := pl.M(r, k)
				if prev, ok := seen[e]; ok {
					return fmt.Errorf("machine: group %d ranks %d and %d share %s element %d",
						grp, prev, r, pl.FDH.LevelName(k), e)
				}
				seen[e] = r
			}
		}
	}
	return nil
}
