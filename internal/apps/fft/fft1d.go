// Package fft implements the NAS-style 3D Fast Fourier Transform benchmark
// of §7.2.1: a distributed 3D FFT with a 2D (pencil) process decomposition
// whose transposes are non-blocking RMA puts separated by gsyncs — the
// exact communication pattern the paper uses to evaluate ftRMA's
// coordinated checkpointing and logging layers.
package fft

import (
	"fmt"
	"math"
	"math/bits"
)

// FFT1D performs an in-place radix-2 decimation-in-time FFT on a; len(a)
// must be a power of two. inverse selects the inverse transform (without
// the 1/n scaling; callers scale if they need a round trip).
func FFT1D(a []complex128, inverse bool) {
	n := len(a)
	if n&(n-1) != 0 || n == 0 {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			a[i], a[j] = a[j], a[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		ang := sign * 2 * math.Pi / float64(size)
		wStep := complex(math.Cos(ang), math.Sin(ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				u := a[start+k]
				v := a[start+k+half] * w
				a[start+k] = u + v
				a[start+k+half] = u - v
				w *= wStep
			}
		}
	}
}

// FlopsPerLine returns the conventional 5*n*log2(n) flop count of one
// length-n FFT line, used for performance accounting.
func FlopsPerLine(n int) float64 {
	return 5 * float64(n) * math.Log2(float64(n))
}

// Serial3D computes a forward 3D FFT of an n^3 cube laid out
// cube[(z*n+y)*n+x], transforming the x, then y, then z dimension with the
// same 1D kernel the distributed version uses — so results match
// bit-for-bit. It is the verification reference.
func Serial3D(cube []complex128, n int) {
	if len(cube) != n*n*n {
		panic(fmt.Sprintf("fft: cube has %d elements, want %d", len(cube), n*n*n))
	}
	line := make([]complex128, n)
	// X lines (contiguous).
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			base := (z*n + y) * n
			copy(line, cube[base:base+n])
			FFT1D(line, false)
			copy(cube[base:base+n], line)
		}
	}
	// Y lines.
	for z := 0; z < n; z++ {
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				line[y] = cube[(z*n+y)*n+x]
			}
			FFT1D(line, false)
			for y := 0; y < n; y++ {
				cube[(z*n+y)*n+x] = line[y]
			}
		}
	}
	// Z lines.
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			for z := 0; z < n; z++ {
				line[z] = cube[(z*n+y)*n+x]
			}
			FFT1D(line, false)
			for z := 0; z < n; z++ {
				cube[(z*n+y)*n+x] = line[z]
			}
		}
	}
}
