package fft

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"repro/internal/ftrma"
	"repro/internal/rma"
)

func TestFFT1DKnownValues(t *testing.T) {
	// FFT of a constant signal: all energy in bin 0.
	a := []complex128{1, 1, 1, 1}
	FFT1D(a, false)
	want := []complex128{4, 0, 0, 0}
	for i := range a {
		if cmplx.Abs(a[i]-want[i]) > 1e-12 {
			t.Fatalf("FFT(const) = %v", a)
		}
	}
	// FFT of a unit impulse: flat spectrum.
	b := []complex128{1, 0, 0, 0}
	FFT1D(b, false)
	for i := range b {
		if cmplx.Abs(b[i]-1) > 1e-12 {
			t.Fatalf("FFT(impulse) = %v", b)
		}
	}
}

func TestFFT1DMatchesNaiveDFT(t *testing.T) {
	const n = 16
	a := make([]complex128, n)
	for i := range a {
		a[i] = InitialValue(i, 0, 0, n)
	}
	naive := make([]complex128, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k*j) / float64(n)
			naive[k] += a[j] * cmplx.Exp(complex(0, ang))
		}
	}
	FFT1D(a, false)
	for k := range a {
		if cmplx.Abs(a[k]-naive[k]) > 1e-9 {
			t.Fatalf("bin %d: fft %v, naive %v", k, a[k], naive[k])
		}
	}
}

func TestFFT1DRoundTrip(t *testing.T) {
	prop := func(seed uint32) bool {
		const n = 32
		a := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range a {
			a[i] = InitialValue(i, int(seed%97), 0, n)
			orig[i] = a[i]
		}
		FFT1D(a, false)
		FFT1D(a, true)
		for i := range a {
			if cmplx.Abs(a[i]/complex(float64(n), 0)-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFFT1DRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("accepted length 6")
		}
	}()
	FFT1D(make([]complex128, 6), false)
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{N: 16, Q: 2}).Validate(4); err != nil {
		t.Fatal(err)
	}
	if (Config{N: 16, Q: 2}).Validate(5) == nil {
		t.Error("accepted non-square rank count")
	}
	if (Config{N: 12, Q: 2}).Validate(4) == nil {
		t.Error("accepted non-power-of-two N")
	}
	if (Config{N: 16, Q: 3}).Validate(9) == nil {
		t.Error("accepted N not divisible by Q")
	}
}

// runDistributed runs a forward FFT on a fresh world and returns it.
func runDistributed(t *testing.T, cfg Config) *rma.World {
	t.Helper()
	w := rma.NewWorld(rma.Config{N: cfg.Q * cfg.Q, WindowWords: cfg.WindowWords()})
	w.Run(func(r int) {
		p := w.Proc(r)
		Init(p, cfg)
		Run(p, cfg, 0, cfg.Iters)
	})
	return w
}

func TestDistributedMatchesSerial(t *testing.T) {
	for _, cfg := range []Config{
		{N: 8, Q: 2, Iters: 1},
		{N: 16, Q: 2, Iters: 1},
		{N: 16, Q: 4, Iters: 1},
	} {
		w := runDistributed(t, cfg)
		got := Gather(w, cfg)

		ref := make([]complex128, cfg.N*cfg.N*cfg.N)
		for z := 0; z < cfg.N; z++ {
			for y := 0; y < cfg.N; y++ {
				for x := 0; x < cfg.N; x++ {
					ref[(z*cfg.N+y)*cfg.N+x] = InitialValue(x, y, z, cfg.N)
				}
			}
		}
		Serial3D(ref, cfg.N)
		for i := range ref {
			if got[i] != ref[i] { // same kernel, same order: bit-identical
				t.Fatalf("cfg %+v: element %d = %v, want %v", cfg, i, got[i], ref[i])
			}
		}
	}
}

func TestMultipleIterationsDeterministic(t *testing.T) {
	cfg := Config{N: 8, Q: 2, Iters: 3, Evolve: true, Alpha: 1e-4}
	w1 := runDistributed(t, cfg)
	w2 := runDistributed(t, cfg)
	a := Gather(w1, cfg)
	b := Gather(w2, cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestVirtualTimeAdvances(t *testing.T) {
	cfg := Config{N: 16, Q: 2, Iters: 2}
	w := runDistributed(t, cfg)
	if w.MaxTime() <= 0 {
		t.Fatal("no virtual time charged")
	}
	// Twice the iterations, roughly twice the time.
	cfg2 := cfg
	cfg2.Iters = 4
	w2 := runDistributed(t, cfg2)
	ratio := w2.MaxTime() / w.MaxTime()
	if ratio < 1.5 || ratio > 3 {
		t.Errorf("time ratio for 2x iterations = %g", ratio)
	}
}

func TestFFTWithFtRMACausalRecovery(t *testing.T) {
	// The headline integration test: run the FFT under ftRMA with put
	// logging, kill a rank at an iteration boundary, causally recover it,
	// finish the run, and compare bit-for-bit with a fault-free run.
	cfg := Config{N: 8, Q: 2, Iters: 4}
	const killAt, victim = 2, 3

	// Fault-free reference.
	ref := runDistributed(t, cfg)
	want := Gather(ref, cfg)

	w := rma.NewWorld(rma.Config{N: 4, WindowWords: cfg.WindowWords()})
	sys, err := ftrma.NewSystem(w, ftrma.Config{
		Groups: 1, ChecksumsPerGroup: 1, LogPuts: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Run(func(r int) {
		p := sys.Process(r)
		Init(p, cfg)
		Run(p, cfg, 0, killAt)
	})
	w.Kill(victim)
	res, err := sys.Recover(victim)
	if err != nil {
		t.Fatal(err)
	}
	if res.FellBack {
		t.Fatal("unexpected fallback (no gets, no atomics in this run)")
	}
	// App-assisted causal recovery: re-execute lost phases, replaying
	// remote accesses from the logs (the victim's own transpose blocks are
	// recomputed — their source-side logs died with it).
	w.RunRank(victim, func() { Recover(res.Proc, res.Logs, cfg) })
	// All ranks (p_new included) resume at iteration killAt.
	w.Run(func(r int) {
		Run(sys.Process(r), cfg, killAt, cfg.Iters)
	})
	got := Gather(w, cfg)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recovered run differs at %d: %v vs %v", i, got[i], want[i])
		}
	}
	if sys.Stats().Recoveries != 1 {
		t.Errorf("stats: %+v", sys.Stats())
	}
}

func TestFFTWithDemandCheckpointsStaysCorrect(t *testing.T) {
	// A tight log budget forces demand checkpoints mid-run; the numeric
	// result must be unaffected.
	cfg := Config{N: 8, Q: 2, Iters: 3}
	ref := runDistributed(t, cfg)
	want := Gather(ref, cfg)

	w := rma.NewWorld(rma.Config{N: 4, WindowWords: cfg.WindowWords()})
	sys, err := ftrma.NewSystem(w, ftrma.Config{
		Groups: 1, ChecksumsPerGroup: 1, LogPuts: true,
		LogBudgetBytes: 16 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Run(func(r int) {
		p := sys.Process(r)
		Init(p, cfg)
		Run(p, cfg, 0, cfg.Iters)
	})
	got := Gather(w, cfg)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("demand-checkpointed run differs at %d", i)
		}
	}
	if sys.Stats().UCCheckpoints == 0 {
		t.Error("tight budget triggered no demand checkpoints")
	}
}

func TestLoggingOverheadOrdering(t *testing.T) {
	// Virtual-time sanity for Fig. 11b: no-FT < ftRMA logging.
	cfg := Config{N: 16, Q: 2, Iters: 2}
	plain := runDistributed(t, cfg).MaxTime()

	w := rma.NewWorld(rma.Config{N: 4, WindowWords: cfg.WindowWords()})
	sys, err := ftrma.NewSystem(w, ftrma.Config{Groups: 1, ChecksumsPerGroup: 1, LogPuts: true})
	if err != nil {
		t.Fatal(err)
	}
	w.Run(func(r int) {
		p := sys.Process(r)
		Init(p, cfg)
		Run(p, cfg, 0, cfg.Iters)
	})
	logged := w.MaxTime()
	if logged <= plain {
		t.Errorf("logging added no overhead: %g vs %g", logged, plain)
	}
	if logged > plain*2 {
		t.Errorf("logging overhead implausibly high: %g vs %g", logged, plain)
	}
}
