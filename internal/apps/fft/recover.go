package fft

import (
	"repro/internal/ftrma"
	"repro/internal/rma"
)

// Recover brings a causally recovered FFT rank back to its pre-failure
// state. The ftRMA layer has already restored the last uncoordinated
// checkpoint; this routine re-executes the rank's lost iterations
// deterministically (access determinism, §4.1), interleaving the causal
// replay of logged remote accesses with recomputation of the rank's own
// work, gsync phase by gsync phase:
//
//   - remote transpose blocks arrive from the put logs (ReplayPhase);
//   - the rank's own transpose block — whose source-side log died with it
//     (Fig. 3: put logs live at the source) — is recomputed and applied
//     locally;
//   - no outgoing communication is issued: the survivors already received
//     the original puts.
//
// Each iteration spans three gsync phases (one per transpose), so the
// restart iteration is GNC/3 and the last lost phase is Logs.MaxGNC().
func Recover(p *ftrma.Process, logs *ftrma.ReplayLogs, cfg Config) {
	if err := cfg.Validate(p.N()); err != nil {
		panic(err)
	}
	rank := p.Rank()
	r, cc := rank/cfg.Q, rank%cfg.Q
	line := make([]complex128, cfg.N)
	buf := make([]uint64, cfg.blockWords())
	maxG := logs.MaxGNC()

	// Like the forward path, every phase reads the window through the
	// non-aliasing read path into a reused private snapshot; the self
	// transpose block is stored back through WriteAt (the survivors'
	// blocks arrive from the logs), so the fresh window's dirty stamps
	// stay exact through the whole recovery.
	win := make([]uint64, cfg.WindowWords())
	for it := p.GNC() / 3; 3*it <= maxG; it++ {
		// Phase 1: recompute FFT_x and the self block of transpose A->B,
		// then let the survivors' blocks arrive from the logs.
		rma.ReadWindow(p, win)
		fftX(win, cfg, line)
		packA(win, cfg, r, buf)
		p.WriteAt(cfg.offB()+r*cfg.blockWords(), buf)
		p.ReplayPhase(logs, 3*it)

		// Phase 2: same for FFT_y and transpose B->C.
		rma.ReadWindow(p, win)
		fftY(win, cfg, line)
		packB(win, cfg, cc, buf)
		p.WriteAt(cfg.offC()+cc*cfg.blockWords(), buf)
		p.ReplayPhase(logs, 3*it+1)

		// Phase 3: FFT_z (+ evolution) and transpose C->A. This rank is a
		// destination of its own put only when its row equals its column.
		rma.ReadWindow(p, win)
		fftZ(win, cfg, line, r, cc, it)
		if r == cc {
			packC(win, cfg, cc, buf)
			p.WriteAt(cfg.offA()+r*cfg.blockWords(), buf)
		}
		p.ReplayPhase(logs, 3*it+2)
	}
}
