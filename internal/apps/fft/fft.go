package fft

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/rma"
)

// Config describes a distributed 3D FFT instance.
type Config struct {
	// N is the cube edge; the grid is N^3 complex values. Must be a power
	// of two.
	N int
	// Q is the process-grid edge: P = Q*Q ranks, rank = r*Q + c. N must
	// be divisible by Q.
	Q int
	// Iters is the number of iterations (each is one full forward 3D FFT
	// with its three all-to-all transposes).
	Iters int
	// Evolve applies the NAS FT evolution factor in spectral space each
	// iteration.
	Evolve bool
	// Alpha is the evolution diffusion constant.
	Alpha float64
}

// Validate checks the configuration for p ranks.
func (c Config) Validate(p int) error {
	if c.Q*c.Q != p {
		return fmt.Errorf("fft: %d ranks is not the square of Q=%d", p, c.Q)
	}
	if c.N <= 0 || c.N&(c.N-1) != 0 {
		return fmt.Errorf("fft: N=%d is not a power of two", c.N)
	}
	if c.N%c.Q != 0 {
		return fmt.Errorf("fft: N=%d not divisible by Q=%d", c.N, c.Q)
	}
	if c.N/c.Q < 1 {
		return fmt.Errorf("fft: empty pencils")
	}
	return nil
}

// nl returns the pencil edge N/Q.
func (c Config) nl() int { return c.N / c.Q }

// blockWords returns the size of one source block in window words
// (complex128 = 2 words).
func (c Config) blockWords() int { nl := c.nl(); return 2 * nl * nl * nl }

// regionWords returns the size of one stage region (Q source blocks).
func (c Config) regionWords() int { return c.Q * c.blockWords() }

// Stage region offsets within the window.
func (c Config) offA() int { return 0 }
func (c Config) offB() int { return c.regionWords() }
func (c Config) offC() int { return 2 * c.regionWords() }

// WindowWords returns the per-rank window size the benchmark needs.
func (c Config) WindowWords() int { return 3 * c.regionWords() }

// TotalFlops returns the flop count of the given number of iterations
// (3 dimensions x N^2 lines x 5 N log2 N).
func (c Config) TotalFlops(iters int) float64 {
	return float64(iters) * 3 * float64(c.N) * float64(c.N) * FlopsPerLine(c.N)
}

// Checkpointer is implemented by FT layers (ftrma) that support explicit
// uncoordinated checkpoints; the benchmark checkpoints once after
// initialization so the initial state is recoverable.
type Checkpointer interface{ UCCheckpoint() }

// InitialValue is the deterministic pseudo-random initial field, defined
// globally so every decomposition (and the serial reference) agrees.
func InitialValue(x, y, z, n int) complex128 {
	// A cheap splitmix-style hash of the coordinates.
	h := uint64(x) + uint64(y)*uint64(n) + uint64(z)*uint64(n)*uint64(n)
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	re := float64(h&0xffff)/65536.0 - 0.5
	im := float64((h>>16)&0xffff)/65536.0 - 0.5
	return complex(re, im)
}

// word/complex conversions.

func putComplex(w []uint64, off int, v complex128) {
	w[off] = math.Float64bits(real(v))
	w[off+1] = math.Float64bits(imag(v))
}

func getComplex(w []uint64, off int) complex128 {
	return complex(math.Float64frombits(w[off]), math.Float64frombits(w[off+1]))
}

// Block element offsets (relative to the window), per stage layout:
// A block rs: (zl, yl, xl), x fastest — gathered into x lines.
// B block rs: (zl, xl, yl), y fastest — gathered into y lines.
// C block cs: (yl, xl, zl), z fastest — gathered into z lines.

func (c Config) idxA(rs, zl, yl, xl int) int {
	nl := c.nl()
	return c.offA() + rs*c.blockWords() + 2*((zl*nl+yl)*nl+xl)
}

func (c Config) idxB(rs, zl, xl, yl int) int {
	nl := c.nl()
	return c.offB() + rs*c.blockWords() + 2*((zl*nl+xl)*nl+yl)
}

func (c Config) idxC(cs, yl, xl, zl int) int {
	nl := c.nl()
	return c.offC() + cs*c.blockWords() + 2*((yl*nl+xl)*nl+zl)
}

// Init fills the rank's stage-A region with the initial field and, when the
// FT layer supports it, takes an uncoordinated checkpoint so the state is
// recoverable from time zero.
func Init(api rma.API, cfg Config) {
	rank := api.Rank()
	r, cc := rank/cfg.Q, rank%cfg.Q
	nl := cfg.nl()
	// Stage the initial field privately and store it through the
	// non-aliasing WriteAt path: no Local() alias escapes, so the window's
	// generation-stamp dirty tracking survives this writer app.
	win := make([]uint64, cfg.WindowWords())
	for rs := 0; rs < cfg.Q; rs++ {
		for zl := 0; zl < nl; zl++ {
			for yl := 0; yl < nl; yl++ {
				for xl := 0; xl < nl; xl++ {
					v := InitialValue(rs*nl+xl, r*nl+yl, cc*nl+zl, cfg.N)
					putComplex(win, cfg.idxA(rs, zl, yl, xl), v)
				}
			}
		}
	}
	api.WriteAt(0, win)
	api.Barrier()
	if ck, ok := api.(Checkpointer); ok {
		ck.UCCheckpoint()
	}
	api.Barrier()
}

// Run executes iterations [from, to): each is a full forward 3D FFT whose
// three transposes are non-blocking puts closed by gsyncs. Use from=0,
// to=cfg.Iters for a whole run; recovery tests resume mid-way.
func Run(api rma.API, cfg Config, from, to int) {
	if err := cfg.Validate(api.N()); err != nil {
		panic(err)
	}
	for it := from; it < to; it++ {
		iteration(api, cfg, it)
	}
}

// fftX transforms every x line of the stage-A region in place.
func fftX(win []uint64, cfg Config, line []complex128) {
	nl := cfg.nl()
	for zl := 0; zl < nl; zl++ {
		for yl := 0; yl < nl; yl++ {
			for rs := 0; rs < cfg.Q; rs++ {
				for xl := 0; xl < nl; xl++ {
					line[rs*nl+xl] = getComplex(win, cfg.idxA(rs, zl, yl, xl))
				}
			}
			FFT1D(line, false)
			for rs := 0; rs < cfg.Q; rs++ {
				for xl := 0; xl < nl; xl++ {
					putComplex(win, cfg.idxA(rs, zl, yl, xl), line[rs*nl+xl])
				}
			}
		}
	}
}

// packA relayouts stage-A block rd into the wire format of a stage-B block.
func packA(win []uint64, cfg Config, rd int, buf []uint64) {
	nl := cfg.nl()
	for zl := 0; zl < nl; zl++ {
		for yl := 0; yl < nl; yl++ {
			for xl := 0; xl < nl; xl++ {
				src := cfg.idxA(rd, zl, yl, xl)
				dst := 2 * ((zl*nl+xl)*nl + yl)
				buf[dst] = win[src]
				buf[dst+1] = win[src+1]
			}
		}
	}
}

// fftY transforms every y line of the stage-B region in place.
func fftY(win []uint64, cfg Config, line []complex128) {
	nl := cfg.nl()
	for zl := 0; zl < nl; zl++ {
		for xl := 0; xl < nl; xl++ {
			for rs := 0; rs < cfg.Q; rs++ {
				for yl := 0; yl < nl; yl++ {
					line[rs*nl+yl] = getComplex(win, cfg.idxB(rs, zl, xl, yl))
				}
			}
			FFT1D(line, false)
			for rs := 0; rs < cfg.Q; rs++ {
				for yl := 0; yl < nl; yl++ {
					putComplex(win, cfg.idxB(rs, zl, xl, yl), line[rs*nl+yl])
				}
			}
		}
	}
}

// packB relayouts stage-B block cd into the wire format of a stage-C block.
func packB(win []uint64, cfg Config, cd int, buf []uint64) {
	nl := cfg.nl()
	for zl := 0; zl < nl; zl++ {
		for xl := 0; xl < nl; xl++ {
			for yl := 0; yl < nl; yl++ {
				src := cfg.idxB(cd, zl, xl, yl)
				dst := 2 * ((yl*nl+xl)*nl + zl)
				buf[dst] = win[src]
				buf[dst+1] = win[src+1]
			}
		}
	}
}

// fftZ transforms every z line of the stage-C region in place and applies
// the evolution factor.
func fftZ(win []uint64, cfg Config, line []complex128, r, cc, it int) {
	nl := cfg.nl()
	for yl := 0; yl < nl; yl++ {
		for xl := 0; xl < nl; xl++ {
			for cs := 0; cs < cfg.Q; cs++ {
				for zl := 0; zl < nl; zl++ {
					line[cs*nl+zl] = getComplex(win, cfg.idxC(cs, yl, xl, zl))
				}
			}
			FFT1D(line, false)
			if cfg.Evolve {
				kx := r*nl + xl
				ky := cc*nl + yl
				for z := 0; z < cfg.N; z++ {
					k2 := float64(kx*kx + ky*ky + z*z)
					line[z] *= cmplx.Exp(complex(0, -cfg.Alpha*k2*float64(it+1)))
				}
			}
			for cs := 0; cs < cfg.Q; cs++ {
				for zl := 0; zl < nl; zl++ {
					putComplex(win, cfg.idxC(cs, yl, xl, zl), line[cs*nl+zl])
				}
			}
		}
	}
}

// packC relayouts stage-C block cd into the wire format of a stage-A block.
func packC(win []uint64, cfg Config, cd int, buf []uint64) {
	nl := cfg.nl()
	for yl := 0; yl < nl; yl++ {
		for xl := 0; xl < nl; xl++ {
			for zl := 0; zl < nl; zl++ {
				src := cfg.idxC(cd, yl, xl, zl)
				dst := 2 * ((zl*nl+yl)*nl + xl)
				buf[dst] = win[src]
				buf[dst+1] = win[src+1]
			}
		}
	}
}

// iteration performs one forward 3D FFT: three local transform phases, each
// followed by an all-to-all transpose of non-blocking puts closed by a
// gsync.
func iteration(api rma.API, cfg Config, it int) {
	rank := api.Rank()
	r, cc := rank/cfg.Q, rank%cfg.Q
	line := make([]complex128, cfg.N)
	buf := make([]uint64, cfg.blockWords())
	nl := cfg.nl()
	lineFlops := FlopsPerLine(cfg.N)
	// Pack cost: every byte of the block is touched once; charged at the
	// machine's byte-per-flop ratio through Compute.
	packFlops := float64(8 * cfg.blockWords() / 2)

	// Each phase reads the window through the non-aliasing read path into
	// a reused private snapshot; the transposed blocks reach the windows
	// only as runtime puts (every stage region is fully rewritten by its
	// transpose, self-block included, so no aliasing write is ever needed
	// and generation-stamp dirty tracking survives).
	win := make([]uint64, cfg.WindowWords())

	// Phase 1: FFT along x, transpose A -> B within the process row.
	rma.ReadWindow(api, win)
	fftX(win, cfg, line)
	api.Compute(float64(nl*nl) * lineFlops)
	for rd := 0; rd < cfg.Q; rd++ {
		packA(win, cfg, rd, buf)
		api.Put(rd*cfg.Q+cc, cfg.offB()+r*cfg.blockWords(), buf)
		api.Compute(packFlops)
	}
	api.Gsync()

	// Phase 2: FFT along y, transpose B -> C within the process column.
	rma.ReadWindow(api, win) // fresh stage B from the gsync
	fftY(win, cfg, line)
	api.Compute(float64(nl*nl) * lineFlops)
	for cd := 0; cd < cfg.Q; cd++ {
		packB(win, cfg, cd, buf)
		api.Put(r*cfg.Q+cd, cfg.offC()+cc*cfg.blockWords(), buf)
		api.Compute(packFlops)
	}
	api.Gsync()

	// Phase 3: FFT along z (+ evolution), transpose C -> A. The y chunk
	// this rank owns in stage C is its column index, so the destinations
	// form process row c.
	rma.ReadWindow(api, win) // fresh stage C from the gsync
	fftZ(win, cfg, line, r, cc, it)
	api.Compute(float64(nl*nl) * lineFlops)
	for cd := 0; cd < cfg.Q; cd++ {
		packC(win, cfg, cd, buf)
		api.Put(cc*cfg.Q+cd, cfg.offA()+r*cfg.blockWords(), buf)
		api.Compute(packFlops)
	}
	api.Gsync()
}

// windowReader exposes the two ways tests read windows: a live world or a
// plain slice table.
type windowReader interface {
	Proc(r int) *rma.Proc
}

// Gather assembles the full cube from the stage-A regions of every rank
// (the layout element (x,y,z) occupies after a completed iteration, which
// equals the initial layout). Test/verification helper.
func Gather(w windowReader, cfg Config) []complex128 {
	n := cfg.N
	nl := cfg.nl()
	cube := make([]complex128, n*n*n)
	for r := 0; r < cfg.Q; r++ {
		for cc := 0; cc < cfg.Q; cc++ {
			win := w.Proc(r*cfg.Q+cc).ReadAt(0, cfg.WindowWords())
			for rs := 0; rs < cfg.Q; rs++ {
				for zl := 0; zl < nl; zl++ {
					for yl := 0; yl < nl; yl++ {
						for xl := 0; xl < nl; xl++ {
							x := rs*nl + xl
							y := r*nl + yl
							z := cc*nl + zl
							cube[(z*n+y)*n+x] = getComplex(win, cfg.idxA(rs, zl, yl, xl))
						}
					}
				}
			}
		}
	}
	return cube
}
