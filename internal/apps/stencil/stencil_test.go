package stencil

import (
	"math"
	"testing"

	"repro/internal/ftrma"
	"repro/internal/rma"
)

func TestConfigValidate(t *testing.T) {
	good := Config{Width: 16, RowsPerRank: 4, K: 0.2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Config{
		{Width: 2, RowsPerRank: 4, K: 0.2},
		{Width: 16, RowsPerRank: 0, K: 0.2},
		{Width: 16, RowsPerRank: 4, K: 0.5},
		{Width: 16, RowsPerRank: 4, K: 0},
	} {
		if bad.Validate() == nil {
			t.Errorf("accepted %+v", bad)
		}
	}
}

func runDistributed(t *testing.T, cfg Config, n int) *rma.World {
	t.Helper()
	w := rma.NewWorld(rma.Config{N: n, WindowWords: cfg.WindowWords()})
	w.Run(func(r int) {
		p := w.Proc(r)
		Init(p, cfg)
		Run(p, cfg, 0, cfg.Iters)
	})
	return w
}

func TestMatchesSerialReference(t *testing.T) {
	cfg := Config{Width: 24, RowsPerRank: 5, Iters: 7, K: 0.2}
	const n = 4
	w := runDistributed(t, cfg, n)
	got := Gather(w, cfg, n, cfg.Iters)
	want := SerialReference(cfg, n, cfg.Iters)
	for i := range want {
		if got[i] != want[i] { // identical arithmetic: bit-exact
			t.Fatalf("cell %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEnergyBounded(t *testing.T) {
	// Diffusion with zero boundaries must not increase the max
	// temperature.
	cfg := Config{Width: 16, RowsPerRank: 4, Iters: 20, K: 0.25}
	const n = 3
	w := runDistributed(t, cfg, n)
	got := Gather(w, cfg, n, cfg.Iters)
	maxInit := 0.0
	for i := 0; i < n*cfg.RowsPerRank; i++ {
		for j := 0; j < cfg.Width; j++ {
			if v := math.Abs(InitialValue(i, j)); v > maxInit {
				maxInit = v
			}
		}
	}
	for i, v := range got {
		if math.Abs(v) > maxInit+1e-9 {
			t.Fatalf("cell %d = %g exceeds initial max %g", i, v, maxInit)
		}
	}
}

func TestCausalRecoveryMatchesFaultFree(t *testing.T) {
	cfg := Config{Width: 16, RowsPerRank: 4, Iters: 8, K: 0.2}
	const n, killAt, victim = 4, 5, 2

	ref := runDistributed(t, cfg, n)
	want := Gather(ref, cfg, n, cfg.Iters)

	w := rma.NewWorld(rma.Config{N: n, WindowWords: cfg.WindowWords()})
	sys, err := ftrma.NewSystem(w, ftrma.Config{Groups: 1, ChecksumsPerGroup: 1, LogPuts: true})
	if err != nil {
		t.Fatal(err)
	}
	w.Run(func(r int) {
		p := sys.Process(r)
		Init(p, cfg)
		Run(p, cfg, 0, killAt)
	})
	w.Kill(victim)
	res, err := sys.Recover(victim)
	if err != nil {
		t.Fatal(err)
	}
	w.RunRank(victim, func() { Recover(res.Proc, res.Logs, cfg) })
	w.Run(func(r int) { Run(sys.Process(r), cfg, killAt, cfg.Iters) })

	got := Gather(w, cfg, n, cfg.Iters)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recovered cell %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestRecoveryAfterDemandCheckpoint(t *testing.T) {
	// With a tiny log budget, demand checkpoints trim the logs mid-run;
	// recovery then starts from the latest demand checkpoint rather than
	// iteration 0, and must still reproduce the fault-free state.
	cfg := Config{Width: 16, RowsPerRank: 4, Iters: 10, K: 0.2}
	const n, killAt, victim = 3, 8, 1

	ref := runDistributed(t, cfg, n)
	want := Gather(ref, cfg, n, cfg.Iters)

	w := rma.NewWorld(rma.Config{N: n, WindowWords: cfg.WindowWords()})
	sys, err := ftrma.NewSystem(w, ftrma.Config{
		Groups: 1, ChecksumsPerGroup: 1, LogPuts: true,
		LogBudgetBytes: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Run(func(r int) {
		p := sys.Process(r)
		Init(p, cfg)
		Run(p, cfg, 0, killAt)
	})
	if sys.Stats().UCCheckpoints <= n {
		t.Fatalf("expected demand checkpoints beyond the initial ones, got %d", sys.Stats().UCCheckpoints)
	}
	w.Kill(victim)
	res, err := sys.Recover(victim)
	if err != nil {
		t.Fatal(err)
	}
	if res.Proc.GNC() == 0 {
		t.Log("victim restored from iteration 0 (no demand checkpoint hit it)")
	}
	w.RunRank(victim, func() { Recover(res.Proc, res.Logs, cfg) })
	w.Run(func(r int) { Run(sys.Process(r), cfg, killAt, cfg.Iters) })

	got := Gather(w, cfg, n, cfg.Iters)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recovered cell %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSingleRankRun(t *testing.T) {
	cfg := Config{Width: 8, RowsPerRank: 3, Iters: 4, K: 0.1}
	w := runDistributed(t, cfg, 1)
	got := Gather(w, cfg, 1, cfg.Iters)
	want := SerialReference(cfg, 1, cfg.Iters)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cell %d differs", i)
		}
	}
}
