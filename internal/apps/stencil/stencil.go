// Package stencil implements a 2D heat-diffusion kernel with a 1D row
// decomposition: every iteration each rank updates its interior rows and
// exchanges halo rows with its neighbours via non-blocking puts closed by a
// gsync. It is the third workload of this reproduction (a structured
// near-neighbour pattern complementing the FFT's all-to-all and the
// key-value store's atomics) and demonstrates the app-assisted causal
// recovery pattern on a stencil code.
package stencil

import (
	"fmt"
	"math"

	"repro/internal/ftrma"
	"repro/internal/rma"
)

// Config describes a stencil instance.
type Config struct {
	// Width is the number of columns of the global grid.
	Width int
	// RowsPerRank is the number of interior rows each rank owns.
	RowsPerRank int
	// Iters is the number of diffusion steps.
	Iters int
	// K is the diffusion coefficient (stability requires K <= 0.25).
	K float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Width < 3 {
		return fmt.Errorf("stencil: width %d too small", c.Width)
	}
	if c.RowsPerRank < 1 {
		return fmt.Errorf("stencil: rows per rank = %d", c.RowsPerRank)
	}
	if c.K <= 0 || c.K > 0.25 {
		return fmt.Errorf("stencil: unstable diffusion coefficient %g", c.K)
	}
	return nil
}

// bufWords returns the size of one buffer: interior rows plus two halo
// rows.
func (c Config) bufWords() int { return (c.RowsPerRank + 2) * c.Width }

// WindowWords returns the window size: two buffers (double buffering).
func (c Config) WindowWords() int { return 2 * c.bufWords() }

// rowOff returns the window offset of row i (0 = top halo,
// RowsPerRank+1 = bottom halo) of buffer b.
func (c Config) rowOff(b, i int) int { return b*c.bufWords() + i*c.Width }

// InitialValue is the deterministic initial temperature at a global cell.
func InitialValue(row, col int) float64 {
	return 50 + 40*math.Sin(float64(row)*0.31)*math.Cos(float64(col)*0.17)
}

// Checkpointer is implemented by FT layers with explicit UC checkpoints.
type Checkpointer interface{ UCCheckpoint() }

// Init fills buffer 0 — interior and halos — with the initial field. Halos
// are computable locally because the initial condition is a closed form; no
// communication is needed. The field is staged in private memory and
// stored through the non-aliasing WriteAt path, so the window's
// generation-stamp dirty tracking survives (no Local() alias). When
// supported, an uncoordinated checkpoint makes the initial state
// recoverable.
func Init(api rma.API, cfg Config) {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	win := make([]uint64, cfg.WindowWords())
	rank := api.Rank()
	for i := 0; i <= cfg.RowsPerRank+1; i++ {
		globalRow := rank*cfg.RowsPerRank + i - 1
		for j := 0; j < cfg.Width; j++ {
			v := 0.0
			if globalRow >= 0 && globalRow < api.N()*cfg.RowsPerRank {
				v = InitialValue(globalRow, j)
			}
			win[cfg.rowOff(0, i)+j] = math.Float64bits(v)
			win[cfg.rowOff(1, i)+j] = 0
		}
	}
	api.WriteAt(0, win)
	api.Barrier()
	if ck, ok := api.(Checkpointer); ok {
		ck.UCCheckpoint()
	}
	api.Barrier()
}

// computePhase updates the interior of buffer (it+1)%2 from buffer it%2.
// Pure local work, shared by Run and Recover.
func computePhase(win []uint64, cfg Config, it int) {
	cur, next := it%2, (it+1)%2
	w := cfg.Width
	get := func(b, i, j int) float64 { return math.Float64frombits(win[cfg.rowOff(b, i)+j]) }
	put := func(b, i, j int, v float64) { win[cfg.rowOff(b, i)+j] = math.Float64bits(v) }
	for i := 1; i <= cfg.RowsPerRank; i++ {
		put(next, i, 0, get(cur, i, 0))
		put(next, i, w-1, get(cur, i, w-1))
		for j := 1; j < w-1; j++ {
			c := get(cur, i, j)
			v := c + cfg.K*(get(cur, i-1, j)+get(cur, i+1, j)+get(cur, i, j-1)+get(cur, i, j+1)-4*c)
			put(next, i, j, v)
		}
	}
}

// Run executes iterations [from, to): compute the next buffer, push halo
// rows to the neighbours with non-blocking puts, and close the phase with a
// gsync (one gsync per iteration, so GNC equals the iteration index).
//
// Each iteration reads the window through the non-aliasing ReadAt path,
// computes the next buffer in that private snapshot, and stores the
// updated interior back through WriteAt — no Local() alias ever escapes,
// so the window's generation-stamp dirty tracking stays exact and
// incremental checkpoints keep skipping the content-diff scan even for
// this writer-heavy kernel.
func Run(api rma.API, cfg Config, from, to int) {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	rank, n := api.Rank(), api.N()
	w := cfg.Width
	win := make([]uint64, cfg.WindowWords())
	for it := from; it < to; it++ {
		rma.ReadWindow(api, win)
		computePhase(win, cfg, it)
		api.Compute(float64(cfg.RowsPerRank*(w-2)) * 7) // 7 flops per cell
		next := (it + 1) % 2
		api.WriteAt(cfg.rowOff(next, 1),
			win[cfg.rowOff(next, 1):cfg.rowOff(next, cfg.RowsPerRank+1)])
		if rank > 0 {
			api.Put(rank-1, cfg.rowOff(next, cfg.RowsPerRank+1),
				win[cfg.rowOff(next, 1):cfg.rowOff(next, 1)+w])
		}
		if rank < n-1 {
			api.Put(rank+1, cfg.rowOff(next, 0),
				win[cfg.rowOff(next, cfg.RowsPerRank):cfg.rowOff(next, cfg.RowsPerRank)+w])
		}
		api.Gsync()
	}
}

// Recover re-executes a causally recovered rank's lost iterations: the
// ftRMA layer restored the last checkpoint; each lost phase recomputes the
// rank's interior (deterministic local work) and replays the neighbours'
// halo puts from the logs (their own source-side copies of this rank's
// outgoing halos are already applied at the survivors).
func Recover(p *ftrma.Process, logs *ftrma.ReplayLogs, cfg Config) {
	maxG := logs.MaxGNC()
	win := make([]uint64, cfg.WindowWords())
	for it := p.GNC(); it <= maxG; it++ {
		// Same non-aliasing read/compute/write cycle as Run, so the
		// recovered rank's window evolves bit-identically to the normal
		// path; the neighbours' halo puts arrive from the logs instead of
		// the wire.
		rma.ReadWindow(p, win)
		computePhase(win, cfg, it)
		next := (it + 1) % 2
		p.WriteAt(cfg.rowOff(next, 1),
			win[cfg.rowOff(next, 1):cfg.rowOff(next, cfg.RowsPerRank+1)])
		p.ReplayPhase(logs, it)
	}
}

// Gather assembles the global grid (interior rows only) from buffer
// iters%2 of every rank.
func Gather(w interface{ Proc(int) *rma.Proc }, cfg Config, n, iters int) []float64 {
	b := iters % 2
	out := make([]float64, n*cfg.RowsPerRank*cfg.Width)
	for r := 0; r < n; r++ {
		win := w.Proc(r).ReadAt(0, cfg.WindowWords())
		for i := 1; i <= cfg.RowsPerRank; i++ {
			globalRow := r*cfg.RowsPerRank + i - 1
			for j := 0; j < cfg.Width; j++ {
				out[globalRow*cfg.Width+j] = math.Float64frombits(win[cfg.rowOff(b, i)+j])
			}
		}
	}
	return out
}

// SerialReference computes the same diffusion serially for verification.
func SerialReference(cfg Config, n, iters int) []float64 {
	rows := n * cfg.RowsPerRank
	w := cfg.Width
	cur := make([]float64, rows*w)
	next := make([]float64, rows*w)
	for i := 0; i < rows; i++ {
		for j := 0; j < w; j++ {
			cur[i*w+j] = InitialValue(i, j)
		}
	}
	at := func(g []float64, i, j int) float64 {
		if i < 0 || i >= rows {
			return 0
		}
		return g[i*w+j]
	}
	for it := 0; it < iters; it++ {
		for i := 0; i < rows; i++ {
			next[i*w] = cur[i*w]
			next[i*w+w-1] = cur[i*w+w-1]
			for j := 1; j < w-1; j++ {
				c := cur[i*w+j]
				next[i*w+j] = c + cfg.K*(at(cur, i-1, j)+at(cur, i+1, j)+cur[i*w+j-1]+cur[i*w+j+1]-4*c)
			}
		}
		cur, next = next, cur
	}
	return cur
}
