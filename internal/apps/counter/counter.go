// Package counter is a lock-based workload: a distributed set of counters
// updated under window locks with read-modify-write puts — the
// "synchronize with locks and communicate with puts" class of codes that
// §4.3's Algorithm 3 recovers. It complements the other applications (the
// FFT is gsync-based, the key-value store atomics-based) and exercises the
// Locks coordinated-checkpointing scheme (§3.1.2) end to end.
package counter

import (
	"fmt"

	"repro/internal/ftrma"
	"repro/internal/rma"
)

// Config describes a counter workload.
type Config struct {
	// Slots is the number of counters per rank.
	Slots int
	// Rounds is the number of update rounds. In each round every rank
	// locks a peer, reads a counter, and writes back an updated value.
	Rounds int
	// CheckpointEvery inserts a Locks-scheme coordinated checkpoint after
	// this many rounds (0 = never). Every rank participates.
	CheckpointEvery int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Slots < 1 {
		return fmt.Errorf("counter: slots = %d", c.Slots)
	}
	if c.Rounds < 1 {
		return fmt.Errorf("counter: rounds = %d", c.Rounds)
	}
	return nil
}

// WindowWords returns the per-rank window size.
func (c Config) WindowWords() int { return c.Slots }

// Checkpointer matches ftrma's Locks-scheme collective checkpoint.
type Checkpointer interface{ CheckpointLocks() }

// Run executes rounds [from, to). Each round, rank r updates the counter
// slot (round mod Slots) at peer (r+round) mod N: lock, get-modify-put,
// unlock. The lock makes the read-modify-write exclusive; the update
// function is deterministic in (round, source), so recovery by lock-ordered
// replay reproduces the exact final values.
func Run(api rma.API, cfg Config, from, to int) {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	rank, n := api.Rank(), api.N()
	for round := from; round < to; round++ {
		// Cycle through every peer but never self: a self-put's log would
		// die with the rank (Fig. 3), making pure-replay recovery lossy.
		trg := (rank + 1 + round%(n-1)) % n
		slot := round % cfg.Slots
		api.Lock(trg, rma.StrWindow)
		cur := api.GetBlocking(trg, slot, 1)[0]
		api.PutValue(trg, slot, cur*3+uint64(rank)+1)
		api.Unlock(trg, rma.StrWindow)
		if cfg.CheckpointEvery > 0 && (round+1)%cfg.CheckpointEvery == 0 {
			if ck, ok := api.(Checkpointer); ok {
				ck.CheckpointLocks()
			} else {
				api.Barrier() // keep schedules aligned without FT
			}
		}
		api.Barrier() // rounds are globally separated
	}
}

// Gather collects all counters.
func Gather(w interface{ Proc(int) *rma.Proc }, cfg Config, n int) []uint64 {
	out := make([]uint64, 0, n*cfg.Slots)
	for r := 0; r < n; r++ {
		out = append(out, w.Proc(r).ReadAt(0, cfg.Slots)...)
	}
	return out
}

// Recover restores a failed rank: the ftRMA layer already reloaded the last
// checkpoint; the remaining state is rebuilt purely from the lock-ordered
// replay of the logged puts and gets (Algorithm 3) — unlike the FFT, a
// counter rank's window is written only through remote accesses, so no
// re-execution is needed.
func Recover(p *ftrma.Process, logs *ftrma.ReplayLogs) {
	p.ReplayAll(logs)
}
