package counter

import (
	"testing"

	"repro/internal/ftrma"
	"repro/internal/rma"
)

func TestConfigValidate(t *testing.T) {
	if err := (Config{Slots: 2, Rounds: 3}).Validate(); err != nil {
		t.Fatal(err)
	}
	if (Config{Slots: 0, Rounds: 3}).Validate() == nil {
		t.Error("accepted zero slots")
	}
	if (Config{Slots: 1, Rounds: 0}).Validate() == nil {
		t.Error("accepted zero rounds")
	}
}

func runPlain(t *testing.T, cfg Config, n int) *rma.World {
	t.Helper()
	w := rma.NewWorld(rma.Config{N: n, WindowWords: cfg.WindowWords()})
	w.Run(func(r int) { Run(w.Proc(r), cfg, 0, cfg.Rounds) })
	return w
}

func TestDeterministic(t *testing.T) {
	cfg := Config{Slots: 3, Rounds: 9}
	a := Gather(runPlain(t, cfg, 4), cfg, 4)
	b := Gather(runPlain(t, cfg, 4), cfg, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %d vs %d", i, a[i], b[i])
		}
	}
	// Counters did change.
	allZero := true
	for _, v := range a {
		if v != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("no counter was updated")
	}
}

func TestAlgorithm3EndToEndRecovery(t *testing.T) {
	// The lock-based workload under full logging: kill a rank mid-run,
	// recover it purely by lock-ordered replay (Algorithm 3), finish, and
	// compare with a fault-free run.
	cfg := Config{Slots: 3, Rounds: 12}
	const n, killAt, victim = 4, 7, 2

	want := Gather(runPlain(t, cfg, n), cfg, n)

	w := rma.NewWorld(rma.Config{N: n, WindowWords: cfg.WindowWords()})
	sys, err := ftrma.NewSystem(w, ftrma.Config{
		Groups: 2, ChecksumsPerGroup: 1, LogPuts: true, LogGets: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Run(func(r int) { Run(sys.Process(r), cfg, 0, killAt) })
	w.Kill(victim)
	res, err := sys.Recover(victim)
	if err != nil {
		t.Fatal(err)
	}
	if res.FellBack {
		t.Fatal("unexpected fallback: replacing puts only")
	}
	// The replay must be ordered by SC (all records share GNC 0).
	lastSC := -1
	for _, rec := range res.Logs.Puts {
		if rec.GNC != 0 {
			t.Fatalf("lock-based code has GNC %d", rec.GNC)
		}
		if rec.SC < lastSC {
			t.Fatalf("puts not SC-ordered: %d after %d", rec.SC, lastSC)
		}
		lastSC = rec.SC
	}
	w.RunRank(victim, func() { Recover(res.Proc, res.Logs) })
	w.Run(func(r int) { Run(sys.Process(r), cfg, killAt, cfg.Rounds) })

	got := Gather(w, cfg, n)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("counter %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestLocksSchemeCheckpointingDuringRun(t *testing.T) {
	// The Locks CC scheme embedded in the workload: checkpoints happen
	// collectively at LC=0 points without deadlock (Theorem 3.2), and the
	// numbers are unaffected.
	cfg := Config{Slots: 2, Rounds: 8, CheckpointEvery: 3}
	const n = 3
	want := Gather(runPlain(t, cfg, n), cfg, n)

	w := rma.NewWorld(rma.Config{N: n, WindowWords: cfg.WindowWords()})
	sys, err := ftrma.NewSystem(w, ftrma.Config{
		Groups: 1, ChecksumsPerGroup: 1, Scheme: ftrma.CCLocks, LogPuts: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Run(func(r int) { Run(sys.Process(r), cfg, 0, cfg.Rounds) })
	if sys.Stats().CCCheckpoints == 0 {
		t.Fatal("no Locks-scheme checkpoints taken")
	}
	got := Gather(w, cfg, n)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("counter %d differs under Locks-scheme checkpointing", i)
		}
	}
}
