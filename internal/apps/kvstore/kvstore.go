// Package kvstore implements the distributed key-value store of §7.2.2: a
// distributed hashtable (DHT) of fixed-size local volumes storing 8-byte
// integers. Inserts use atomic Compare-And-Swap and Fetch-And-Op; hash
// collisions go to an overflow heap inside the owner's local volume, whose
// next-free and last-element pointers are updated atomically. Memory
// consistency is ensured with flushes. This access mix — a put-and-get
// atomic per collision-free insert, several on collision — is the paper's
// worst case for access logging (Fig. 11c).
package kvstore

import (
	"fmt"
	"math/rand"

	"repro/internal/rma"
)

// Volume layout (in words) within each rank's window:
//
//	[0]                 next-free pointer of the overflow heap
//	[1]                 last-element pointer (index of most recent overflow cell)
//	[2 .. 2+T)          hash table: T slots, 0 = empty, otherwise the key
//	[2+T .. 2+T+2H)     overflow heap: H cells of (key, link) pairs
const (
	offNextFree = 0
	offLast     = 1
	headerWords = 2
)

// Config describes a DHT instance.
type Config struct {
	// TableSlots is T, the hash-table size per local volume.
	TableSlots int
	// HeapCells is H, the overflow-heap capacity per local volume.
	HeapCells int
	// ThinkScale and ThinkRate parametrize the exponential think time
	// f*delta*exp(-delta*x) between inserts (§7.2.2); zero disables it.
	ThinkScale float64
	ThinkRate  float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.TableSlots < 1 {
		return fmt.Errorf("kvstore: table slots = %d", c.TableSlots)
	}
	if c.HeapCells < 0 {
		return fmt.Errorf("kvstore: heap cells = %d", c.HeapCells)
	}
	return nil
}

// WindowWords returns the per-rank window size the store needs.
func (c Config) WindowWords() int {
	return headerWords + c.TableSlots + 2*c.HeapCells
}

// Store is a handle bound to one rank's API.
type Store struct {
	api rma.API
	cfg Config
	rng *rand.Rand

	// Inserted counts successful inserts by this rank.
	Inserted int
	// Collisions counts inserts that went to an overflow heap.
	Collisions int
	// Failed counts inserts dropped because a heap was full.
	Failed int
}

// New binds a store to a rank. Seed fixes the think-time stream.
func New(api rma.API, cfg Config, seed int64) (*Store, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Store{api: api, cfg: cfg, rng: rand.New(rand.NewSource(seed))}, nil
}

// hash is a 64-bit mix (splitmix64 finalizer).
func hash(k uint64) uint64 {
	k = (k ^ (k >> 30)) * 0xbf58476d1ce4e5b9
	k = (k ^ (k >> 27)) * 0x94d049bb133111eb
	return k ^ (k >> 31)
}

// Placement returns the rank owning a key's home volume and the key's
// table slot within it, for n ranks. Deterministic workload generators
// (the multi-process cluster's conflict-free schedules) use it to steer
// keys; Store uses the same mapping internally.
func (c Config) Placement(key uint64, n int) (owner, slot int) {
	h := hash(key)
	return int(h % uint64(n)), int((h >> 17) % uint64(c.TableSlots))
}

// owner returns the rank owning a key's home volume.
func (s *Store) owner(key uint64) int {
	o, _ := s.cfg.Placement(key, s.api.N())
	return o
}

// slot returns the key's table slot within its volume.
func (s *Store) slot(key uint64) int {
	_, sl := s.cfg.Placement(key, s.api.N())
	return sl
}

// Insert stores a non-zero key in the DHT. The fast path is a single CAS
// into the home slot; on collision the element is appended to the owner's
// overflow heap by atomically bumping the next-free pointer, writing the
// cell, linking it to the previous last element, and updating the
// last-element pointer. Consistency is enforced with a flush (§7.2.2).
func (s *Store) Insert(key uint64) bool {
	if key == 0 {
		panic("kvstore: zero key is the empty marker")
	}
	target := s.owner(key)
	slotOff := headerWords + s.slot(key)
	prev := s.api.CompareAndSwap(target, slotOff, 0, key)
	ok := true
	switch prev {
	case 0:
		// Fast path: slot taken.
	default:
		ok = s.insertOverflow(target, key)
	}
	s.api.Flush(target)
	if ok {
		s.Inserted++
	} else {
		s.Failed++
	}
	s.think()
	return ok
}

// insertOverflow appends to the owner's overflow heap.
func (s *Store) insertOverflow(target int, key uint64) bool {
	s.Collisions++
	idx := s.api.FetchAndOp(target, offNextFree, 1, rma.OpSum)
	if int(idx) >= s.cfg.HeapCells {
		// Heap exhausted; undo not needed (pointer saturates harmlessly).
		return false
	}
	cell := headerWords + s.cfg.TableSlots + 2*int(idx)
	s.api.PutValue(target, cell, key)
	// Link to the previous last element and publish ourselves as last.
	last := s.api.FetchAndOp(target, offLast, idx+1, rma.OpReplace)
	s.api.PutValue(target, cell+1, last)
	s.api.Flush(target)
	return true
}

// Lookup reports whether the key is present (table slot or overflow scan).
func (s *Store) Lookup(key uint64) bool {
	target := s.owner(key)
	slotOff := headerWords + s.slot(key)
	if got := s.api.GetBlocking(target, slotOff, 1); got[0] == key {
		return true
	}
	n := s.api.GetBlocking(target, offNextFree, 1)[0]
	if int(n) > s.cfg.HeapCells {
		n = uint64(s.cfg.HeapCells)
	}
	if n == 0 {
		return false
	}
	heap := s.api.GetBlocking(target, headerWords+s.cfg.TableSlots, 2*int(n))
	for i := 0; i < int(n); i++ {
		if heap[2*i] == key {
			return true
		}
	}
	return false
}

// think waits the exponential think time between requests.
func (s *Store) think() {
	if s.cfg.ThinkScale <= 0 || s.cfg.ThinkRate <= 0 {
		return
	}
	x := s.rng.ExpFloat64() / s.cfg.ThinkRate
	if p, ok := s.api.(interface{ AdvanceTime(float64) }); ok {
		p.AdvanceTime(s.cfg.ThinkScale * x)
	}
}
