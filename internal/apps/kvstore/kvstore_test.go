package kvstore

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/ftrma"
	"repro/internal/mlog"
	"repro/internal/rma"
)

func TestConfigValidate(t *testing.T) {
	if err := (Config{TableSlots: 8, HeapCells: 4}).Validate(); err != nil {
		t.Fatal(err)
	}
	if (Config{TableSlots: 0}).Validate() == nil {
		t.Error("accepted zero slots")
	}
	if (Config{TableSlots: 1, HeapCells: -1}).Validate() == nil {
		t.Error("accepted negative heap")
	}
}

func TestInsertAndLookup(t *testing.T) {
	cfg := Config{TableSlots: 64, HeapCells: 64}
	w := rma.NewWorld(rma.Config{N: 4, WindowWords: cfg.WindowWords()})
	w.Run(func(r int) {
		s, err := New(w.Proc(r), cfg, int64(r))
		if err != nil {
			t.Error(err)
			return
		}
		base := uint64(r*1000 + 1)
		for i := uint64(0); i < 50; i++ {
			if !s.Insert(base + i) {
				t.Errorf("insert %d failed", base+i)
			}
		}
		w.Proc(r).Barrier()
		for i := uint64(0); i < 50; i++ {
			if !s.Lookup(base + i) {
				t.Errorf("rank %d: key %d not found", r, base+i)
			}
		}
		if s.Lookup(999999999) {
			t.Error("found a key never inserted")
		}
	})
}

func TestConcurrentInsertsAllFound(t *testing.T) {
	// All ranks hammer the same small table: heavy collisions, overflow
	// heap usage, and still no lost keys (atomicity of CAS/FAO).
	cfg := Config{TableSlots: 16, HeapCells: 4096}
	const n, per = 8, 100
	w := rma.NewWorld(rma.Config{N: n, WindowWords: cfg.WindowWords()})
	var mu sync.Mutex
	inserted := map[uint64]bool{}
	stores := make([]*Store, n)
	w.Run(func(r int) {
		s, err := New(w.Proc(r), cfg, int64(r))
		if err != nil {
			t.Error(err)
			return
		}
		stores[r] = s
		for i := 0; i < per; i++ {
			k := uint64(r*per + i + 1)
			if s.Insert(k) {
				mu.Lock()
				inserted[k] = true
				mu.Unlock()
			}
		}
	})
	if len(inserted) != n*per {
		t.Fatalf("inserted %d keys, want %d", len(inserted), n*per)
	}
	collisions := 0
	for _, s := range stores {
		collisions += s.Collisions
	}
	if collisions == 0 {
		t.Error("tiny table produced no collisions")
	}
	// Verify every key from one verifier rank.
	w.Run(func(r int) {
		if r != 0 {
			return
		}
		s, _ := New(w.Proc(0), cfg, 0)
		for k := range inserted {
			if !s.Lookup(k) {
				t.Errorf("key %d lost", k)
			}
		}
	})
}

func TestHeapExhaustion(t *testing.T) {
	cfg := Config{TableSlots: 1, HeapCells: 3}
	w := rma.NewWorld(rma.Config{N: 1, WindowWords: cfg.WindowWords()})
	w.Run(func(r int) {
		s, err := New(w.Proc(0), cfg, 1)
		if err != nil {
			t.Error(err)
			return
		}
		okCount := 0
		for k := uint64(1); k <= 10; k++ {
			if s.Insert(k) {
				okCount++
			}
		}
		// 1 table slot + 3 heap cells.
		if okCount != 4 {
			t.Errorf("accepted %d inserts, want 4", okCount)
		}
		if s.Failed != 6 {
			t.Errorf("failed = %d, want 6", s.Failed)
		}
	})
}

func TestInsertZeroKeyPanics(t *testing.T) {
	cfg := Config{TableSlots: 4, HeapCells: 4}
	w := rma.NewWorld(rma.Config{N: 1, WindowWords: cfg.WindowWords()})
	defer func() {
		if recover() == nil {
			t.Fatal("zero key accepted")
		}
	}()
	w.Run(func(r int) {
		s, _ := New(w.Proc(0), cfg, 1)
		s.Insert(0)
	})
}

func TestInsertLookupProperty(t *testing.T) {
	cfg := Config{TableSlots: 32, HeapCells: 256}
	prop := func(keysRaw []uint32) bool {
		w := rma.NewWorld(rma.Config{N: 2, WindowWords: cfg.WindowWords()})
		ok := true
		w.Run(func(r int) {
			if r != 0 {
				return
			}
			s, err := New(w.Proc(0), cfg, 7)
			if err != nil {
				ok = false
				return
			}
			seen := map[uint64]bool{}
			for _, kr := range keysRaw {
				k := uint64(kr) + 1
				if seen[k] {
					continue
				}
				seen[k] = true
				if !s.Insert(k) {
					continue // heap full is legal
				}
				if !s.Lookup(k) {
					ok = false
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestThinkTimeAdvancesClock(t *testing.T) {
	cfg := Config{TableSlots: 64, HeapCells: 64, ThinkScale: 1e-3, ThinkRate: 2}
	w := rma.NewWorld(rma.Config{N: 2, WindowWords: cfg.WindowWords()})
	w.Run(func(r int) {
		if r != 0 {
			return
		}
		s, _ := New(w.Proc(0), cfg, 3)
		before := w.Proc(0).Now()
		for k := uint64(1); k <= 20; k++ {
			s.Insert(k)
		}
		// 20 inserts of ~0.5ms mean think time must dominate the clock.
		if w.Proc(0).Now()-before < 20*1e-4 {
			t.Errorf("think time too small: %g", w.Proc(0).Now()-before)
		}
	})
}

func TestLoggingOverheadOrdering(t *testing.T) {
	// Fig. 11c sanity at small scale: no-FT < f-puts < f-puts-gets < ML
	// in virtual insert time. To keep the measurement deterministic each
	// rank inserts keys homed at a private target (no lock contention)
	// and gets a private logger.
	cfg := Config{TableSlots: 256, HeapCells: 256}
	const n, per = 4, 64
	// keysFor[r] are keys owned by rank (r+1)%n.
	keysFor := make([][]uint64, n)
	probe, _ := New(rma.NewWorld(rma.Config{N: n, WindowWords: cfg.WindowWords()}).Proc(0), cfg, 0)
	for k := uint64(1); ; k++ {
		owner := probe.owner(k)
		r := (owner + n - 1) % n
		if len(keysFor[r]) < per {
			keysFor[r] = append(keysFor[r], k)
		}
		done := true
		for _, ks := range keysFor {
			if len(ks) < per {
				done = false
			}
		}
		if done {
			break
		}
	}
	run := func(kind string) float64 {
		w := rma.NewWorld(rma.Config{N: n, WindowWords: cfg.WindowWords()})
		var apiFor func(r int) rma.API
		switch kind {
		case "noft":
			apiFor = func(r int) rma.API { return w.Proc(r) }
		case "fputs", "fputsgets":
			sys, err := ftrma.NewSystem(w, ftrma.Config{
				Groups: 1, ChecksumsPerGroup: 1,
				LogPuts: true, LogGets: kind == "fputsgets",
			})
			if err != nil {
				t.Fatal(err)
			}
			apiFor = func(r int) rma.API { return sys.Process(r) }
		case "ml":
			sys, err := mlog.NewSystem(w, mlog.Config{RanksPerLogger: 1, LogGets: true})
			if err != nil {
				t.Fatal(err)
			}
			apiFor = func(r int) rma.API { return sys.Process(r) }
		}
		w.Run(func(r int) {
			s, err := New(apiFor(r), cfg, int64(r))
			if err != nil {
				t.Error(err)
				return
			}
			for _, k := range keysFor[r] {
				s.Insert(k)
			}
		})
		return w.MaxTime()
	}
	noft := run("noft")
	fputs := run("fputs")
	fboth := run("fputsgets")
	ml := run("ml")
	if !(noft < fputs && fputs < fboth && fboth < ml) {
		t.Errorf("ordering violated: noft=%g fputs=%g fputsgets=%g ml=%g", noft, fputs, fboth, ml)
	}
}
