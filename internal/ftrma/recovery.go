package ftrma

import (
	"errors"
	"fmt"

	"repro/internal/obs"
	"repro/internal/rma"
)

// ErrFallback reports that causal recovery was impossible — a surviving
// rank had an in-flight get towards the failed rank (N flag, §3.2.3) or an
// undeleted combining put (M flag, §4.2) — and the system rolled every rank
// back to the last coordinated checkpoint instead.
var ErrFallback = errors.New("ftrma: causal recovery impossible, rolled back to coordinated checkpoint")

// RecoverResult describes the outcome of a recovery.
type RecoverResult struct {
	// Proc is the replacement process p_new, wrapped in the protocol.
	Proc *Process
	// Logs are the causally ordered accesses to replay (nil after a
	// coordinated fallback).
	Logs *ReplayLogs
	// FellBack reports whether the coordinated fallback was taken; the
	// caller must then restart every rank from its restored state.
	FellBack bool
}

// Recover replaces the failed rank f, following §4.3: spawn p_new, fetch
// its last (uncoordinated) checkpoint — reconstructed from the group parity
// and the surviving members' local copies — fetch the put and get logs
// about f from every survivor, and return them causally ordered for replay
// (Algorithm 2; for lock-based codes the same ordering degenerates to
// Algorithm 3's (SC, EC) order because GNC never changes).
//
// Recover must be called when no application code is running (the batch
// system has quiesced the survivors; they resume with p_new afterwards).
func (s *System) Recover(f int) (*RecoverResult, error) {
	if s.world.Alive(f) {
		return nil, fmt.Errorf("ftrma: rank %d has not failed", f)
	}
	s.bumpStats(func(st *Stats) { st.Recoveries++ })
	s.om.recoveries.Inc()
	total := obs.StartSpan(s.om.recoverUs, nil, 0, 0, 0)
	// Parity that resided at a now-dead rank is gone: rebuild what the
	// surviving member copies allow and re-elect hosts, before anything
	// below consults a shard.
	s.repairParityHosts()
	// Concurrent failures: the logs held at another dead rank died with it,
	// so Algorithm 2's fetch (lines 4-11) cannot be complete — causal
	// recovery is impossible and the coordinated level (whose parity
	// tolerates m losses per group) takes over directly.
	concurrent := false
	for q := 0; q < s.world.N(); q++ {
		if q != f && !s.world.Alive(q) {
			concurrent = true
		}
	}
	inner := s.world.Respawn(f)
	pnew := newProcess(s, inner)
	s.procs[f] = pnew

	var puts, gets []LogRecord
	// A group whose uncoordinated parity died with its host (and could not
	// be rebuilt because a member copy is missing too — necessarily f's
	// own) cannot reconstruct f causally: fall back directly.
	fallback := concurrent || !s.groupOf(f).parityValid(LevelUC)
	gather := obs.StartSpan(s.om.gatherUs, nil, 0, 0, 0)
	s.world.RunRank(f, func() {
		if fallback {
			return
		}
		// Gather logs (Algorithm 2 lines 4-11), under the survivors'
		// structure locks to exclude concurrent cleanups.
		for q := 0; q < s.world.N(); q++ {
			if q == f || !s.world.Alive(q) {
				continue
			}
			qp := s.procs[q]
			// One gathering per survivor, under all three structure locks
			// (the protocol-level exclusion the separate reads used to
			// bracket individually): the flags plus the materialized
			// LP/LG records, owned copies that later trims or slab
			// compaction at the survivor cannot perturb. Over the wire
			// this is a single log-fetch request/response frame.
			inner.Lock(q, rma.StrMeta)
			inner.Lock(q, rma.StrLP)
			inner.Lock(q, rma.StrLG)
			n, m, lp, lg := fetchAbout(qp.logs, f)
			inner.Unlock(q, rma.StrLG)
			inner.Unlock(q, rma.StrLP)
			inner.Unlock(q, rma.StrMeta)
			if n || m {
				// Algorithm 2 line 6: stop and fall back.
				fallback = true
				return
			}
			bytes := 0
			for _, r := range lp {
				bytes += r.Bytes()
			}
			for _, r := range lg {
				bytes += r.Bytes()
			}
			inner.AdvanceTime(s.world.Params().TransferTime(bytes))
			puts = append(puts, lp...)
			gets = append(gets, lg...)
		}
	})
	gather.End()
	if fallback {
		s.om.fallbacks.Inc()
		if err := s.FallbackToCC(f); err != nil {
			return nil, err
		}
		total.End()
		return &RecoverResult{Proc: s.procs[f], FellBack: true}, ErrFallback
	}

	// fetch_checkpoint_data: reconstruct f's last UC checkpoint from the
	// parity and the survivors' local copies, then load it.
	restore := obs.StartSpan(s.om.restoreUs, nil, 0, 0, 0)
	data, snap, err := s.reconstructUC(f)
	if err != nil {
		return nil, err
	}
	s.restoreRank(pnew, data, snap)
	restore.End()
	// p_new must agree with the survivors on the coordinated-checkpoint
	// schedule, or the next gsync's collective decision diverges and the
	// checkpoint barrier deadlocks.
	for q := 0; q < s.world.N(); q++ {
		if q != f && s.world.Alive(q) {
			sp := s.procs[q]
			pnew.lastCC, pnew.ccDelta, pnew.ccInterval = sp.lastCC, sp.ccDelta, sp.ccInterval
			break
		}
	}
	s.om.causal.Inc()
	total.End()
	return &RecoverResult{Proc: pnew, Logs: sortReplay(puts, gets)}, nil
}

// reconstructUC rebuilds rank f's latest uncoordinated checkpoint.
func (s *System) reconstructUC(f int) ([]uint64, memberSnap, error) {
	grp := s.groupOf(f)
	survivors := make(map[int][]uint64, len(grp.members))
	for _, r := range grp.members {
		if r == f {
			continue
		}
		if !s.world.Alive(r) {
			continue // multi-failure: RS handles up to m missing
		}
		rp := s.procs[r]
		rp.ckptMu.Lock()
		survivors[r] = cloneWords(rp.ucData)
		rp.ckptMu.Unlock()
	}
	rec, err := grp.reconstruct(LevelUC, survivors, missingMembers(s, grp, f))
	if err != nil {
		return nil, memberSnap{}, err
	}
	grp.mu.Lock()
	snap := grp.ucSnaps[f]
	grp.mu.Unlock()
	if snap.epochs == nil {
		snap.epochs = make([]int, s.world.N())
	}
	return rec[f], snap, nil
}

// missingMembers lists the group members whose copies are unavailable
// (the failed rank plus any other currently dead member).
func missingMembers(s *System, grp *chGroup, f int) []int {
	var out []int
	for _, r := range grp.members {
		if r == f || !s.world.Alive(r) {
			out = append(out, r)
		}
	}
	return out
}

// restoreRank loads checkpoint data and counters into a fresh process.
func (s *System) restoreRank(p *Process, data []uint64, snap memberSnap) {
	p.inner.LocalWrite(0, data)
	p.inner.AdvanceTime(s.world.Params().CopyTime(8 * len(data)))
	p.gc.Store(int64(snap.snap.GC))
	p.gnc.Store(int64(snap.snap.GNC))
	p.scSelf.Store(int64(snap.snap.SC))
	for q, e := range snap.epochs {
		p.appliedEpochs[q].Store(int64(e))
	}
	p.ckptMu.Lock()
	p.ucData = cloneWords(data)
	p.ckptMu.Unlock()
	// After a single-rank causal recovery the UC parity is untouched and
	// `data` is exactly f's folded contribution, so base and parity agree.
	// Global rollbacks instead re-seed the parity from scratch (see
	// reseedGroupParity).
}

// reseedGroupParity rebuilds every group's UC and CC parity from the
// ranks' current checkpoint copies. Rollback paths call it after restoring
// the copies: the pre-rollback contributions of failed ranks died with
// them, so the incremental parities cannot be patched — only re-encoded.
// Levels whose hosting rank died are handed to a freshly elected host on
// the way (every rank is alive again at this point, so a host is always
// found).
func (s *System) reseedGroupParity() {
	for _, grp := range s.groups {
		uc := make([][]uint64, len(grp.members))
		cc := make([][]uint64, len(grp.members))
		for j, r := range grp.members {
			rp := s.procs[r]
			rp.ckptMu.Lock()
			uc[j] = cloneWords(rp.ucData)
			cc[j] = cloneWords(rp.ccData)
			rp.ckptMu.Unlock()
		}
		ucShards := grp.encodeShards(uc)
		ccShards := grp.encodeShards(cc)
		grp.mu.Lock()
		s.reinstallLevelLocked(grp, LevelUC, ucShards)
		s.reinstallLevelLocked(grp, LevelCC, ccShards)
		grp.mu.Unlock()
	}
}

// reinstallLevelLocked refreshes one level's shards after a rollback,
// re-electing the hosting rank first if the previous one died (grp.mu
// held).
func (s *System) reinstallLevelLocked(grp *chGroup, level int, shards [][]uint64) {
	pr := &grp.parity[level]
	if pr.rank >= 0 && (!pr.valid || !s.parityAlive(pr.rank)) {
		s.placeLevelLocked(grp, level, shards)
		s.bumpStats(func(st *Stats) { st.ParityHandoffs++ })
		return
	}
	pr.host.Install(shards)
	pr.valid = true
}

// ReplayAll applies every fetched record in causal order (the recovery loop
// of Algorithm 2 lines 12-25, or Algorithm 3 for lock-based codes).
func (p *Process) ReplayAll(l *ReplayLogs) {
	maxPhase := l.MaxGNC()
	for phase := 0; phase <= maxPhase; phase++ {
		p.ReplayPhase(l, phase)
	}
}

// ReplayPhase applies the records of one gsync phase (equal GNC), puts in
// (SC, EC) order then gets in GC order — the inner loop of Algorithm 2.
// Applications recovering a rank alternate ReplayPhase with recomputation
// of their local work for that phase.
func (p *Process) ReplayPhase(l *ReplayLogs, gnc int) {
	params := p.sys.world.Params()
	replayed := 0
	for _, r := range l.Puts {
		if r.GNC != gnc {
			continue
		}
		p.applyRecord(r, params.CopyTime(8*len(r.Data)))
		replayed++
	}
	for _, r := range l.Gets {
		if r.GNC != gnc {
			continue
		}
		if r.LocalOff >= 0 {
			// The get's data lands where the original get put it.
			p.inner.LocalWrite(r.LocalOff, r.Data)
			p.inner.AdvanceTime(params.CopyTime(8 * len(r.Data)))
		}
		replayed++
	}
	if replayed > 0 {
		p.sys.bumpStats(func(st *Stats) { st.ActionsReplayed += replayed })
	}
}

// applyRecord re-executes one logged put against the local window.
func (p *Process) applyRecord(r LogRecord, cost float64) {
	switch {
	case r.Kind == LogPut && r.Op == rma.OpReplace:
		p.inner.LocalWrite(r.Off, r.Data)
	case r.Kind == LogPut:
		// Combining puts only reach replay via explicit opt-in paths
		// (they normally force the fallback through the M flag); apply
		// with the original op. The read goes through the non-aliasing
		// path so replay never downgrades the fresh window's stamps.
		cur := p.inner.ReadAt(r.Off, len(r.Data))
		for i, v := range r.Data {
			cur[i] = applyOp(r.Op, cur[i], v)
		}
		p.inner.LocalWrite(r.Off, cur)
	}
	p.inner.AdvanceTime(cost)
}

// applyOp mirrors rma's reduce semantics for replay.
func applyOp(op rma.ReduceOp, old, operand uint64) uint64 {
	switch op {
	case rma.OpReplace:
		return operand
	case rma.OpSum:
		return old + operand
	case rma.OpMax:
		if operand > old {
			return operand
		}
		return old
	case rma.OpMin:
		if operand < old {
			return operand
		}
		return old
	case rma.OpXor:
		return old ^ operand
	}
	panic("ftrma: unknown reduce op in replay")
}

// FallbackToCC rolls the whole computation back to the last coordinated
// checkpoint: every lost rank's copy — f plus any concurrently failed rank
// — is reconstructed from its group's CC parity, every survivor restores
// its own local CC copy, all logs are dropped, and the uncoordinated layer
// is re-seeded from the coordinated state. It fails (a catastrophic
// failure, §5.1) when some group lost more members than its parity
// tolerates. The caller restarts the application from the restored
// iteration.
func (s *System) FallbackToCC(f int) error {
	s.bumpStats(func(st *Stats) { st.Fallbacks++ })
	// Direct callers (the cluster's BSP policy) may reach here without
	// passing through Recover: repair dead-host parity first. Idempotent —
	// levels Recover already repaired have live hosts again.
	s.repairParityHosts()
	// Every rank whose coordinated copy is gone: f itself (it may already
	// have been respawned with empty state by Recover) plus all currently
	// dead ranks.
	lost := map[int]bool{f: true}
	for r := 0; r < s.world.N(); r++ {
		if !s.world.Alive(r) {
			lost[r] = true
		}
	}
	rec := make(map[int][]uint64)
	for _, grp := range s.groups {
		var missing []int
		survivors := make(map[int][]uint64)
		for _, r := range grp.members {
			if lost[r] {
				missing = append(missing, r)
				continue
			}
			rp := s.procs[r]
			rp.ckptMu.Lock()
			survivors[r] = cloneWords(rp.ccData)
			rp.ckptMu.Unlock()
		}
		if len(missing) == 0 {
			continue
		}
		out, err := grp.reconstruct(LevelCC, survivors, missing)
		if err != nil {
			return fmt.Errorf("ftrma: catastrophic failure: %w", err)
		}
		for r, d := range out {
			rec[r] = d
		}
	}

	// Replace every failed rank.
	for r := range lost {
		if !s.world.Alive(r) {
			inner := s.world.Respawn(r)
			s.procs[r] = newProcess(s, inner)
		}
	}

	// Restore every rank from its coordinated copy and drop all logs; both
	// checkpoint bases are re-seeded from the coordinated state.
	for r := 0; r < s.world.N(); r++ {
		rp := s.procs[r]
		var data []uint64
		grp := s.groupOf(r)
		if d, ok := rec[r]; ok {
			data = d
		} else {
			rp.ckptMu.Lock()
			data = cloneWords(rp.ccData)
			rp.ckptMu.Unlock()
		}
		grp.mu.Lock()
		snap, ok := grp.ccSnaps[r]
		grp.mu.Unlock()
		if !ok || snap.epochs == nil {
			snap = memberSnap{epochs: make([]int, s.world.N())}
		}
		s.world.RunRank(r, func() {
			s.restoreRank(rp, data, snap)
		})
		rp.ckptMu.Lock()
		rp.ucData = cloneWords(data)
		rp.ccData = cloneWords(data)
		rp.ckptMu.Unlock()
		grp.mu.Lock()
		grp.ucSnaps[r] = snap
		grp.mu.Unlock()
		rp.resetVolatileProtocolState()
	}
	// The parities still fold the pre-rollback contributions (for dead
	// ranks those copies are gone, so no delta can repair them): rebuild
	// both levels from the restored bases.
	s.reseedGroupParity()
	return nil
}

// resetVolatileProtocolState drops logs, flags, and pending protocol state
// after a coordinated rollback, and resets the coordinated-checkpoint
// schedule so every rank re-anchors at the same future gsync.
func (p *Process) resetVolatileProtocolState() {
	p.logs.Reset()
	p.qPending = make(map[int][]pendingGet)
	p.nOpen = make(map[int]bool)
	p.scHeld = make(map[int]int)
	p.lc = 0
	p.demandFlag.Store(false)
	p.lastCC = 0
	p.initCCSchedule()
}
